#!/usr/bin/env bash
# End-to-end smoke test for the doppeld service: boot it on a kernel-chosen
# free port, execute one run through the HTTP API, then assert the /metrics
# endpoint exposes simulator metric families. Used by `make smoke` and CI.
set -euo pipefail

# :0 lets the kernel pick a free port; the bound address is parsed from the
# server's "listening on" log line. SMOKE_ADDR overrides for debugging.
REQ_ADDR="${SMOKE_ADDR:-127.0.0.1:0}"
BIN="$(mktemp -d)/doppeld"
LOG="$(mktemp)"
PID=""

cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/doppeld

"$BIN" -addr "$REQ_ADDR" >"$LOG" 2>&1 &
PID=$!

# Wait for the server to log its bound address, then for it to be healthy.
ADDR=""
i=0
while [ -z "$ADDR" ]; do
    ADDR=$(sed -n 's/.*doppeld: listening on \([0-9.:]*\).*/\1/p' "$LOG" | head -1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "smoke: doppeld exited before binding" >&2
        cat "$LOG" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: doppeld never logged its address" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

i=0
until curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: doppeld did not become healthy on ${ADDR}" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

# One traced run: must succeed and return events. (A `case` match, not a
# pipe into grep -q: the response can be large, and under pipefail an
# early-exiting reader would turn the writer's SIGPIPE into a failure.)
RUN=$(curl -sf -X POST "http://${ADDR}/v1/run" \
    -H 'Content-Type: application/json' \
    -d '{"workload":"stream","scheme":"dom","ap":true,"scale":"test","trace":true}')
case "$RUN" in
*'"events":'*) ;;
*)
    echo "smoke: traced run returned no events: $RUN" >&2
    exit 1
    ;;
esac

# The metrics endpoint must expose simulator and engine families.
METRICS=$(curl -sf "http://${ADDR}/metrics")
for family in sim_cycles_total sim_cache_hits_total sim_shadow_lifetime_cycles engine_jobs_total; do
    grep -q "^${family}" <<<"$METRICS" || {
        echo "smoke: /metrics missing ${family}" >&2
        head -40 <<<"$METRICS" >&2
        exit 1
    }
done

echo "smoke: ok on ${ADDR} (traced run + $(grep -c '^[a-z]' <<<"$METRICS") metric lines)"
