#!/usr/bin/env bash
# Checkpoint warm-start smoke: warm one workload once, snapshot it, then
# restore the snapshot under every scheme (with and without doppelganger
# loads) and assert each warm run reaches the same architectural checksum as
# the straight-line cold run of that cell. Also asserts the file format's
# refusal discipline: a corrupted checkpoint must be rejected, not restored.
# Used by `make checkpoint-smoke` and CI.
set -euo pipefail

WORKLOAD="${CKPT_SMOKE_WORKLOAD:-stream}"
WARMUP="${CKPT_SMOKE_WARMUP:-5000}"

DIR="$(mktemp -d)"
cleanup() { rm -rf "$DIR"; }
trap cleanup EXIT
BIN="$DIR/doppelsim"
CKPT="$DIR/${WORKLOAD}.dgck"

go build -o "$BIN" ./cmd/doppelsim

"$BIN" -workload "$WORKLOAD" -scale test -checkpoint-out "$CKPT" -warmup-insts "$WARMUP"

# Architectural checksum of one cell's JSON result.
checksum() {
    sed -n 's/.*"Checksum": \([0-9][0-9]*\).*/\1/p' | head -1
}

CELLS=0
for scheme in unsafe nda-p stt dom; do
    for ap in "" "-ap"; do
        # shellcheck disable=SC2086 — $ap is deliberately word-split.
        cold=$("$BIN" -workload "$WORKLOAD" -scale test -scheme "$scheme" $ap -json | checksum)
        warm=$("$BIN" -checkpoint-in "$CKPT" -scheme "$scheme" $ap -json | checksum)
        if [ -z "$cold" ] || [ "$cold" != "$warm" ]; then
            echo "checkpoint-smoke: FAIL: $WORKLOAD/$scheme$ap cold checksum '$cold' != warm '$warm'" >&2
            exit 1
        fi
        CELLS=$((CELLS + 1))
    done
done

# A corrupted checkpoint must be refused with a clear error.
CORRUPT="$DIR/corrupt.dgck"
cp "$CKPT" "$CORRUPT"
# Flip one payload byte past the header.
printf '\377' | dd of="$CORRUPT" bs=1 seek=64 count=1 conv=notrunc 2>/dev/null
if "$BIN" -checkpoint-in "$CORRUPT" -scheme dom -json >/dev/null 2>"$DIR/err"; then
    echo "checkpoint-smoke: FAIL: corrupted checkpoint was accepted" >&2
    exit 1
fi
grep -qi "checkpoint" "$DIR/err" || {
    echo "checkpoint-smoke: FAIL: corruption error does not mention the checkpoint:" >&2
    cat "$DIR/err" >&2
    exit 1
}

echo "checkpoint-smoke: ok ($WORKLOAD warmed once at $WARMUP insts; $CELLS scheme cells checksum-identical warm vs cold; corrupt file refused)"
