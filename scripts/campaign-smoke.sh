#!/usr/bin/env bash
# Campaign end-to-end smoke: run a small coverage-guided leakcheck campaign
# with a persistent corpus, restart it against the same corpus and assert
# the second run resumes (replays inputs instead of re-simulating, dedups
# known reproducers), then assert the corpus file format's refusal
# discipline: a corrupted record and a wrong-version header must both be
# rejected, not silently re-explored. Used by `make campaign-smoke` and CI.
#
# CAMPAIGN_SMOKE_BUDGET overrides the first run's evaluation budget.
set -euo pipefail

DIR="$(mktemp -d)"
cleanup() { rm -rf "$DIR"; }
trap cleanup EXIT

BIN="$DIR/leakcheck"
CORPUS="$DIR/corpus.dgcf"
BUDGET="${CAMPAIGN_SMOKE_BUDGET:-16}"

go build -o "$BIN" ./cmd/leakcheck

echo "campaign-smoke: fresh campaign (budget $BUDGET)"
OUT1="$("$BIN" -campaign -budget "$BUDGET" -schemes unsafe,dom -ap off \
    -seed 1 -corpus "$CORPUS")"
echo "$OUT1" | sed 's/^/  /'
case "$OUT1" in
*"ok: no unmutated secure config leaks"*) ;;
*)
    echo "campaign-smoke: first run did not report a clean secure verdict" >&2
    exit 1
    ;;
esac
case "$OUT1" in
*"(0 resumed)"*) ;;
*)
    echo "campaign-smoke: fresh run claims to have resumed inputs" >&2
    exit 1
    ;;
esac
if [ "$(head -c 4 "$CORPUS")" != "DGCF" ]; then
    echo "campaign-smoke: corpus file missing its format magic" >&2
    exit 1
fi

echo "campaign-smoke: restart against the same corpus"
OUT2="$("$BIN" -campaign -budget 8 -schemes unsafe,dom -ap off \
    -seed 2 -corpus "$CORPUS")"
echo "$OUT2" | sed 's/^/  /'
RESUMED="$(printf '%s\n' "$OUT2" | sed -n 's/.*inputs (\([0-9]*\) resumed).*/\1/p')"
if [ -z "$RESUMED" ] || [ "$RESUMED" -eq 0 ]; then
    echo "campaign-smoke: restarted run resumed nothing from the corpus" >&2
    exit 1
fi
echo "campaign-smoke: resumed $RESUMED corpus inputs"

echo "campaign-smoke: planted cleanup weakening must be hunted down"
OUT3="$("$BIN" -campaign -budget 32 -schemes 'cleanup!cleanup-no-lru-undo' \
    -ap off -seed 1 -corpus "$DIR/cleanup.dgcf")"
echo "$OUT3" | sed 's/^/  /'
case "$OUT3" in
*"cleanup!cleanup-no-lru-undo"*) ;;
*)
    echo "campaign-smoke: campaign found no leak for the planted cleanup weakening" >&2
    exit 1
    ;;
esac
case "$OUT3" in
*"ok: no unmutated secure config leaks"*) ;;
*)
    echo "campaign-smoke: mutated-config leaks must not fail the secure verdict" >&2
    exit 1
    ;;
esac

echo "campaign-smoke: corrupted corpus must be refused"
cp "$CORPUS" "$DIR/corrupt.dgcf"
printf '\xff' | dd of="$DIR/corrupt.dgcf" bs=1 seek=40 conv=notrunc 2>/dev/null
if ERR="$("$BIN" -campaign -budget 4 -schemes unsafe -ap off \
    -corpus "$DIR/corrupt.dgcf" 2>&1)"; then
    echo "campaign-smoke: corrupted corpus was accepted" >&2
    exit 1
fi
case "$ERR" in
*corrupt*) ;;
*)
    echo "campaign-smoke: corruption refusal did not name the cause: $ERR" >&2
    exit 1
    ;;
esac

echo "campaign-smoke: wrong-version corpus must be refused"
cp "$CORPUS" "$DIR/future.dgcf"
printf '\xee' | dd of="$DIR/future.dgcf" bs=1 seek=4 conv=notrunc 2>/dev/null
if ERR="$("$BIN" -campaign -budget 4 -schemes unsafe -ap off \
    -corpus "$DIR/future.dgcf" 2>&1)"; then
    echo "campaign-smoke: wrong-version corpus was accepted" >&2
    exit 1
fi
case "$ERR" in
*"corpus format version"*) ;;
*)
    echo "campaign-smoke: version refusal did not name the versions: $ERR" >&2
    exit 1
    ;;
esac

echo "campaign-smoke: OK"
