#!/usr/bin/env bash
# End-to-end smoke test for the doppeld cluster fabric: boot a coordinator
# with a persistent result store plus two workers, stream a sweep, kill one
# worker mid-sweep, and assert the sweep still completes with zero errors
# (the coordinator re-shards the dead worker's cells onto the survivor).
# Then fire a short doppelbench burst at the coordinator and assert the
# cluster metric families are exposed. Used by `make cluster-smoke` and CI.
#
# CLUSTER_SMOKE_RACE=1 builds the binaries with the race detector.
set -euo pipefail

DIR="$(mktemp -d)"
LOG_C="$DIR/coordinator.log"
LOG_W1="$DIR/worker1.log"
LOG_W2="$DIR/worker2.log"
STREAM="$DIR/sweep.ndjson"

# Bounded waits poll at 0.2s; WAIT_ITERS is scaled up under the race
# detector because race-built simulators run ~10x slower and the first
# sweep cell can take tens of seconds on a loaded single-CPU machine.
BUILDFLAGS=""
WAIT_ITERS=150
if [ "${CLUSTER_SMOKE_RACE:-0}" = "1" ]; then
    BUILDFLAGS="-race"
    WAIT_ITERS=900
fi
go build $BUILDFLAGS -o "$DIR/doppeld" ./cmd/doppeld
go build $BUILDFLAGS -o "$DIR/doppelbench" ./cmd/doppelbench

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

# wait_addr LOGFILE: echo the bound address once the process logs it.
wait_addr() {
    i=0
    while :; do
        addr=$(sed -n 's/.*doppeld: listening on \([0-9.:]*\).*/\1/p' "$1" | head -1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        i=$((i + 1))
        if [ "$i" -ge "$WAIT_ITERS" ]; then
            echo "cluster-smoke: no address in $1" >&2
            cat "$1" >&2
            return 1
        fi
        sleep 0.2
    done
}

"$DIR/doppeld" -role coordinator -addr 127.0.0.1:0 -store "$DIR/results.dgrs" \
    -heartbeat 250ms >"$LOG_C" 2>&1 &
PIDS="$PIDS $!"
COORD=$(wait_addr "$LOG_C")

"$DIR/doppeld" -role worker -addr 127.0.0.1:0 -coordinator "http://$COORD" \
    -worker-id smoke-w1 -workers 1 >"$LOG_W1" 2>&1 &
W1_PID=$!
PIDS="$PIDS $W1_PID"

"$DIR/doppeld" -role worker -addr 127.0.0.1:0 -coordinator "http://$COORD" \
    -worker-id smoke-w2 -workers 1 >"$LOG_W2" 2>&1 &
W2_PID=$!
PIDS="$PIDS $W2_PID"

# Wait until both workers are registered.
i=0
until curl -sf "http://$COORD/v1/cluster/workers" | grep -q smoke-w1 &&
    curl -sf "http://$COORD/v1/cluster/workers" | grep -q smoke-w2; do
    i=$((i + 1))
    if [ "$i" -ge "$WAIT_ITERS" ]; then
        echo "cluster-smoke: workers never joined" >&2
        cat "$LOG_C" "$LOG_W1" "$LOG_W2" >&2
        exit 1
    fi
    sleep 0.2
done
echo "cluster-smoke: coordinator on $COORD with 2 workers"

# Stream a sweep (NDJSON) into a file so we can watch progress and strike
# one worker while cells are demonstrably still in flight.
curl -sfN -X POST "http://$COORD/v1/sweep" \
    -H 'Content-Type: application/json' \
    -d '{"workloads":["stream","pointer_chase","stencil"],"scale":"test","stream":"ndjson"}' \
    >"$STREAM" &
CURL_PID=$!
PIDS="$PIDS $CURL_PID"

i=0
until [ -s "$STREAM" ] && grep -q '"type":"progress"' "$STREAM"; do
    i=$((i + 1))
    if [ "$i" -ge "$WAIT_ITERS" ]; then
        echo "cluster-smoke: sweep produced no progress events" >&2
        cat "$STREAM" "$LOG_C" >&2
        exit 1
    fi
    sleep 0.2
done

echo "cluster-smoke: killing worker smoke-w2 mid-sweep"
kill -9 "$W2_PID" 2>/dev/null || true

if ! wait "$CURL_PID"; then
    echo "cluster-smoke: sweep stream failed" >&2
    tail -5 "$STREAM" >&2
    cat "$LOG_C" >&2
    exit 1
fi

tail -1 "$STREAM" | grep -q '"type":"done"' || {
    echo "cluster-smoke: sweep never finished" >&2
    tail -5 "$STREAM" >&2
    exit 1
}
tail -1 "$STREAM" | grep -q '"errors":0' || {
    echo "cluster-smoke: sweep completed with errors after worker kill" >&2
    tail -1 "$STREAM" >&2
    cat "$LOG_C" >&2
    exit 1
}
CELLS=$(grep -c '"type":"progress"' "$STREAM")
echo "cluster-smoke: sweep completed all $CELLS cells despite mid-sweep worker kill"

# A short doppelbench burst: repeated cells now come from the result tier.
"$DIR/doppelbench" -target "http://$COORD" -duration 2s -concurrency 2 \
    -workloads stream,pointer_chase -schemes unsafe,dom -client smoke | tee "$DIR/bench.out"
grep -q 'latency: p50=' "$DIR/bench.out" || {
    echo "cluster-smoke: doppelbench produced no latency report" >&2
    exit 1
}

# Cluster metric families must be exposed.
METRICS=$(curl -sf "http://$COORD/metrics")
for family in cluster_workers_live cluster_result_source_total cluster_worker_failures_total; do
    grep -q "^${family}" <<<"$METRICS" || {
        echo "cluster-smoke: /metrics missing ${family}" >&2
        grep '^cluster' <<<"$METRICS" >&2 || true
        exit 1
    }
done

echo "cluster-smoke: ok ($CELLS cells, 1 worker killed, store $(wc -c <"$DIR/results.dgrs") bytes)"
