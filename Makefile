GO ?= go
STATICCHECK ?= staticcheck

.PHONY: build test vet race staticcheck check fmt figures smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine and service are concurrent; the race detector is part of the
# standard gate, not an extra.
race:
	$(GO) test -race ./...

# Runs staticcheck when the binary is on PATH; skips (successfully) when it
# is not, so `make check` works in minimal containers. CI installs it.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

check: vet staticcheck race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

figures:
	$(GO) run ./cmd/figures -scale test

# End-to-end smoke: start doppeld, run one traced simulation through the
# HTTP API, and assert the Prometheus endpoint exposes simulator metrics.
smoke:
	./scripts/smoke.sh
