GO ?= go

.PHONY: build test vet race check fmt figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine and service are concurrent; the race detector is part of the
# standard gate, not an extra.
race:
	$(GO) test -race ./...

check: vet race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

figures:
	$(GO) run ./cmd/figures -scale test
