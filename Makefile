GO ?= go
STATICCHECK ?= staticcheck

# Minimum acceptable total statement coverage for `make cover` (percent).
COVER_MIN ?= 70.0
# Benchmark-regression gate: geomean slowdown beyond this ratio fails.
BENCH_THRESHOLD ?= 1.10
# Allocation gate: any gated benchmark whose allocs/op grows beyond this
# ratio of its baseline fails (allocs are near-deterministic, so this is
# tight).
ALLOC_THRESHOLD ?= 1.10

.PHONY: build test vet race staticcheck check cover fmt figures smoke \
	cluster-smoke checkpoint-smoke campaign-smoke bench benchcheck \
	benchbaseline leakcheck campaign contract-matrix contract-matrix-update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine and service are concurrent; the race detector is part of the
# standard gate, not an extra.
race:
	$(GO) test -race ./...

# Runs staticcheck when the binary is on PATH; skips (successfully) when it
# is not, so `make check` works in minimal containers. CI installs it.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

check: vet staticcheck race cover contract-matrix

# Coverage gate: run the full suite with a merged statement-coverage profile
# and fail when the total drops below COVER_MIN.
cover:
	$(GO) test ./... -coverprofile=coverage.out -count=1
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total statement coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t + 0 < m + 0) ? 1 : 0 }' || \
		{ echo "coverage gate: FAIL: $$total% < $(COVER_MIN)%"; exit 1; }

# Benchmark-regression gate for the simulator hot path. Compares the gated
# benchmarks (./sim, median of 6 counts) against the committed
# BENCH_baseline.json and fails on a >10% geomean slowdown or on any gated
# benchmark's allocs/op growing past ALLOC_THRESHOLD. Absolute ns/op is
# machine-dependent: after an intentional perf change, or when moving the
# reference machine, refresh the baseline with `make benchbaseline` and
# commit the resulting BENCH_baseline.json alongside the change.
benchcheck:
	$(GO) test -run '^$$' -bench . -benchmem -count=6 ./sim | \
		$(GO) run ./cmd/benchcheck -baseline BENCH_baseline.json \
			-threshold $(BENCH_THRESHOLD) -alloc-threshold $(ALLOC_THRESHOLD)

benchbaseline:
	$(GO) test -run '^$$' -bench . -benchmem -count=6 ./sim | \
		$(GO) run ./cmd/benchcheck -write BENCH_baseline.json

# Full benchmark sweep (paper figures included); informational, not a gate.
bench:
	$(GO) test -run '^$$' -bench . ./...

# Differential leakage sweep over the scheme matrix plus the mutation
# gauntlet; `cmd/leakcheck -h` documents the flags.
leakcheck:
	$(GO) run ./cmd/leakcheck -seeds 256

# Coverage-guided leakage campaign over the default scheme matrix with a
# persistent corpus; the nightly CI job caches CAMPAIGN_CORPUS across runs
# so every night extends the same exploration instead of restarting it.
CAMPAIGN_BUDGET ?= 256
CAMPAIGN_CORPUS ?= .campaign/corpus.dgcf
campaign:
	@mkdir -p $(dir $(CAMPAIGN_CORPUS))
	$(GO) run ./cmd/leakcheck -campaign -budget $(CAMPAIGN_BUDGET) \
		-corpus $(CAMPAIGN_CORPUS)

# Campaign end-to-end smoke: fresh run, kill-and-restart resume against the
# same corpus file, and refusal of corrupted or wrong-version corpora.
campaign-smoke:
	./scripts/campaign-smoke.sh

# Contract-matrix gate: evaluate the full observer lattice per scheme and
# diff the verdict matrix against the committed golden. Also asserts every
# planted mutation of the gauntlet downgrades at least one contract cell.
# After an intentional contract change, regenerate the golden with
# `make contract-matrix-update` and commit the JSON alongside the change.
CONTRACT_GOLDEN = internal/leakcheck/testdata/contract_matrix.json
contract-matrix:
	$(GO) run ./cmd/leakcheck -contracts -seeds 48 -golden $(CONTRACT_GOLDEN)

contract-matrix-update:
	$(GO) run ./cmd/leakcheck -contracts -seeds 48 -mutations=false \
		-golden $(CONTRACT_GOLDEN) -update-golden

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

figures:
	$(GO) run ./cmd/figures -scale test

# End-to-end smoke: start doppeld, run one traced simulation through the
# HTTP API, and assert the Prometheus endpoint exposes simulator metrics.
smoke:
	./scripts/smoke.sh

# Cluster end-to-end smoke: coordinator + 2 workers + persistent store,
# streamed sweep with a worker killed mid-sweep, doppelbench burst, cluster
# metrics scrape. CLUSTER_SMOKE_RACE=1 builds the fleet with -race.
cluster-smoke:
	./scripts/cluster-smoke.sh

# Checkpoint end-to-end smoke: warm a workload once with doppelsim, restore
# the snapshot under every scheme, and assert warm == cold architectural
# checksums plus refusal of a corrupted file.
checkpoint-smoke:
	./scripts/checkpoint-smoke.sh
