// Threat-model tour: runs one dependent-load workload under every scheme
// variant in the repository — the paper's three schemes plus the strict-NDA
// and Spectre-model-STT extensions — and under both recovery mechanisms
// (doppelganger loads vs. DoM value prediction).
//
//	go run ./examples/threatmodels
package main

import (
	"fmt"
	"log"

	"doppelganger/sim"
)

func main() {
	w, ok := sim.WorkloadByName("stream")
	if !ok {
		log.Fatal("stream workload missing")
	}
	prog := w.Build(sim.ScaleTest)

	type row struct {
		label string
		cfg   sim.Config
	}
	mk := func(scheme sim.Scheme, ap bool) sim.Config {
		return sim.Config{Scheme: scheme, AddressPrediction: ap}
	}
	vpCfg := func() sim.Config {
		cc := sim.DefaultCoreConfig()
		cc.ValuePrediction = true
		return sim.Config{Scheme: sim.DoM, Core: &cc}
	}
	rows := []row{
		{"unsafe baseline", mk(sim.Unsafe, false)},
		{"nda-p", mk(sim.NDAP, false)},
		{"nda-p + doppelganger", mk(sim.NDAP, true)},
		{"nda-s (strict)", mk(sim.NDAS, false)},
		{"nda-s + doppelganger", mk(sim.NDAS, true)},
		{"stt (futuristic)", mk(sim.STT, false)},
		{"stt + doppelganger", mk(sim.STT, true)},
		{"stt-spectre", mk(sim.STTSpectre, false)},
		{"stt-spectre + doppelganger", mk(sim.STTSpectre, true)},
		{"dom", mk(sim.DoM, false)},
		{"dom + doppelganger", mk(sim.DoM, true)},
		{"dom + value prediction", vpCfg()},
	}

	fmt.Println("One workload (the gated dependent gather), every protection level.")
	fmt.Println("Stronger threat models cost more; doppelganger loads recover MLP")
	fmt.Println("inside each threat model without weakening it.")
	fmt.Println()
	fmt.Printf("%-28s %10s %8s %12s\n", "configuration", "cycles", "IPC", "vs baseline")
	var base uint64
	for _, r := range rows {
		res, err := sim.Run(prog, r.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-28s %10d %8.2f %11.1f%%\n",
			r.label, res.Cycles, res.IPC, float64(base)/float64(res.Cycles)*100)
	}
	fmt.Println()
	fmt.Println("Threat models, weakest to strongest:")
	fmt.Println("  stt-spectre  control speculation only (Spectre universal read)")
	fmt.Println("  stt          adds memory-dependence speculation (futuristic model)")
	fmt.Println("  nda-p        blocks all speculative propagation of loaded values")
	fmt.Println("  nda-s        strict: values release only at the head of the window")
	fmt.Println("  dom          hides the memory hierarchy, protects register secrets")
}
