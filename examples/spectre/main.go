// Spectre demo: a bounds-check-bypass (Spectre v1) gadget leaks a secret
// through the cache on the unprotected core, while NDA-P, STT and DoM block
// it — with and without doppelganger loads, demonstrating the paper's
// threat-model transparency.
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	"doppelganger/sim"
)

const (
	idxTable = 0x10_000
	array1   = 0x20_000
	probe    = 0x40_000
	guard    = 0x60_000
	rounds   = 24
	secret   = int64(37)
)

// gadget builds the classic pattern:
//
//	if idx < bound {          // bound loaded from a cold line: slow check
//	    x := array1[idx]      // speculative out-of-bounds read
//	    _ = probe[x*64]       // transmit: caches a secret-selected line
//	}
//
// The attack trains the branch in-bounds, then supplies idx=64 so the
// mispredicted path reads the secret at array1[64].
func gadget() *sim.Program {
	b := sim.NewBuilder("spectre")
	for i := 0; i < rounds; i++ {
		v := int64(i % 8)
		if i == rounds-1 {
			v = 64 // out of bounds
		}
		b.InitMem(idxTable+uint64(i)*8, v)
		b.InitMem(guard+uint64(i)*64, 8) // the bound, one cold line per round
	}
	for i := 0; i < 8; i++ {
		b.InitMem(array1+uint64(i)*8, int64(i))
	}
	b.InitMem(array1+64*8, secret)

	// Victim phase: the victim touches its own secret (warming the line).
	b.LoadI(10, array1)
	b.Load(10, 10, 64*8)

	b.LoadI(1, idxTable)
	b.LoadI(2, idxTable+rounds*8)
	b.LoadI(9, guard)
	b.LoadI(8, 0)
	loop := b.Here()
	b.Load(3, 1, 0) // idx
	b.Load(4, 9, 0) // bound: cold line, slow to arrive
	skip := b.NewLabel()
	b.Bge(3, 4, skip) // bounds check
	b.ShlI(5, 3, 3)
	b.AddI(5, 5, array1)
	b.Load(6, 5, 0) // speculative secret access
	b.ShlI(5, 6, 6)
	b.AddI(5, 5, probe)
	b.Load(7, 5, 0) // transmitter
	b.Add(8, 8, 7)
	b.Bind(skip)
	b.AddI(1, 1, 8)
	b.AddI(9, 9, 64)
	b.Blt(1, 2, loop)
	b.Store(8, 2, 0)
	b.Halt()
	return b.MustBuild()
}

// attackerProbe plays the attacker's reload phase: it inspects which probe
// lines are observable. In a real attack this is done with timing; the
// simulator lets us read the cache state directly.
func attackerProbe(core *sim.Core) (recovered []int64) {
	h := core.Hierarchy()
	for line := int64(8); line < 256; line++ { // lines 0..7 are architectural
		la := uint64(probe + line*64)
		if h.L1D.Present(la) || h.L2.Present(la) || h.L3.Present(la) {
			recovered = append(recovered, line)
		}
	}
	return recovered
}

func main() {
	fmt.Printf("secret value: %d\n\n", secret)
	fmt.Printf("%-8s %-6s %-22s %s\n", "scheme", "dopp", "out-of-bounds lines", "verdict")
	for _, scheme := range sim.Schemes() {
		for _, ap := range []bool{false, true} {
			cfg := sim.Config{Scheme: scheme, AddressPrediction: ap}
			cc := sim.DefaultCoreConfig()
			cc.PrefetchDegree = 0 // keep prefetch extrapolation out of the demo
			cfg.Core = &cc
			core, err := sim.NewCore(gadget(), cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := core.Run(0, 10_000_000); err != nil {
				log.Fatal(err)
			}
			lines := attackerProbe(core)
			verdict := "SAFE: nothing secret observable"
			for _, l := range lines {
				if l == secret {
					verdict = fmt.Sprintf("LEAKED: attacker reads secret=%d from the cache", l)
				}
			}
			fmt.Printf("%-8v %-6v %-24s %s\n", scheme, ap, fmt.Sprint(lines), verdict)
		}
	}
	fmt.Println("\nDoppelganger accesses may appear at predictor-trained addresses")
	fmt.Println("(stride extrapolations), but those are independent of the secret:")
	fmt.Println("the schemes' guarantees survive the optimization unchanged.")
}
