// MLP demo: visualises how secure speculation schemes destroy memory-level
// parallelism on dependent loads and how doppelganger loads restore it.
//
// The kernel issues a window of dependent gathers behind slow "gate"
// branches. The demo reports, per scheme, the cycle cost, the number of
// delayed/stalled events, and where committed loads were satisfied — then
// repeats the run with doppelganger loads enabled.
//
//	go run ./examples/mlp
package main

import (
	"fmt"
	"log"

	"doppelganger/sim"
)

func buildKernel(iters int) *sim.Program {
	b := sim.NewBuilder("mlp-demo")
	const (
		baseIdx  = 0x10_0000
		baseData = 0x80_0000
	)
	for i := 0; i < iters; i++ {
		b.InitMem(baseIdx+uint64(i)*8, int64(i)*8) // sequential indices
	}
	const (
		pi, end, idx, t, x, acc, thr = 1, 2, 3, 4, 5, 6, 7
	)
	b.LoadI(pi, baseIdx)
	b.LoadI(end, baseIdx+int64(iters)*8)
	b.LoadI(acc, 0)
	b.LoadI(thr, 50)
	loop := b.Here()
	b.Load(idx, pi, 0) // fast index load
	b.ShlI(t, idx, 3)
	b.AddI(t, t, baseData)
	b.Load(x, t, 0) // dependent gather: misses, line stride
	skip := b.NewLabel()
	b.Blt(x, thr, skip) // gate: resolution waits for the gather
	b.AddI(acc, acc, 1)
	b.Bind(skip)
	b.AddI(pi, pi, 8)
	b.Blt(pi, end, loop)
	b.Store(acc, end, 0)
	b.Halt()
	return b.MustBuild()
}

func main() {
	const iters = 6000
	prog := buildKernel(iters)

	fmt.Println("Dependent gathers behind load-gated branches: the pattern where")
	fmt.Println("secure speculation schemes lose MLP (paper §2.4).")
	fmt.Println()
	fmt.Printf("%-8s %-6s %9s %9s | %9s %9s %9s | %s\n",
		"scheme", "dopp", "cycles", "IPC",
		"delayed", "stalls", "doppel", "committed loads by level (L1/L2/L3/mem)")

	var baseline uint64
	for _, scheme := range sim.Schemes() {
		for _, ap := range []bool{false, true} {
			res, err := sim.Run(prog, sim.Config{Scheme: scheme, AddressPrediction: ap})
			if err != nil {
				log.Fatal(err)
			}
			if scheme == sim.Unsafe && !ap {
				baseline = res.Cycles
			}
			st := res.Stats
			fmt.Printf("%-8v %-6v %9d %9.2f | %9d %9d %9d | %v   (%.0f%% of baseline)\n",
				scheme, ap, res.Cycles, res.IPC,
				st.DoMDelayedMisses, st.STTTaintStalls, st.DoppIssued,
				st.CommittedLoadLevel, float64(baseline)/float64(res.Cycles)*100)
		}
	}

	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - NDA-P and STT delay the gather's issue (stalls) because its")
	fmt.Println("    address flows from a speculative load; DoM delays its miss")
	fmt.Println("    outright (delayed). All three lose the parallel misses the")
	fmt.Println("    unsafe core enjoys.")
	fmt.Println("  - With doppelganger loads the predicted-address accesses (doppel)")
	fmt.Println("    start the misses early and safely; the schemes approach the")
	fmt.Println("    baseline again.")
}
