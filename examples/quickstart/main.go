// Quickstart: assemble a small program and run it under every secure
// speculation scheme, with and without doppelganger loads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"doppelganger/sim"
)

// The kernel sums a table through an index indirection — the dependent-load
// pattern that secure speculation schemes slow down and doppelganger loads
// recover. The index values are sequential, so the dependent load's
// addresses are stride-predictable even though they flow through a load.
const source = `
; for i in 0..n-1: acc += data[idx[i]]
.entry start
start:  loadi r1, 0x10000      ; idx pointer
        loadi r2, 0x14000      ; idx end (2048 entries)
        loadi r3, 0            ; acc
        loadi r7, 95
loop:   load  r4, [r1]         ; idx value
        shli  r5, r4, 3
        addi  r5, r5, 0x100000 ; &data[idx]
        load  r6, [r5]         ; dependent load
        blt   r6, r7, skip     ; gate on the loaded value
        addi  r3, r3, 1
skip:   add   r3, r3, r6
        addi  r1, r1, 8
        blt   r1, r2, loop
        store r3, [r2]
        halt
`

func main() {
	prog, err := sim.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}
	// Initial memory: sequential indices, pseudo-random data.
	for i := 0; i < 2048; i++ {
		prog.InitMem[0x10000+uint64(i)*8] = int64(i * 4) // stride-predictable
		prog.InitMem[0x100000+uint64(i*4)*8] = int64((i*2654435761 + 7) % 100)
	}

	// Functional reference: what the program computes.
	ref := sim.Interpret(prog, 1_000_000)
	fmt.Printf("program computes acc = %d over %d instructions\n\n", ref.Regs[3], ref.Insts)

	fmt.Printf("%-8s %-6s %10s %8s %10s %10s\n",
		"scheme", "dopp", "cycles", "IPC", "coverage", "accuracy")
	var baseline uint64
	for _, scheme := range sim.Schemes() {
		for _, ap := range []bool{false, true} {
			res, err := sim.Run(prog, sim.Config{Scheme: scheme, AddressPrediction: ap})
			if err != nil {
				log.Fatal(err)
			}
			if scheme == sim.Unsafe && !ap {
				baseline = res.Cycles
			}
			rel := float64(baseline) / float64(res.Cycles) * 100
			fmt.Printf("%-8v %-6v %10d %8.2f %9.1f%% %9.1f%%   (%5.1f%% of baseline)\n",
				scheme, ap, res.Cycles, res.IPC, res.Coverage*100, res.Accuracy*100, rel)
		}
	}
	fmt.Println("\nThe secure schemes lose cycles on the dependent load; enabling")
	fmt.Println("doppelganger loads (dopp=true) recovers most of them without")
	fmt.Println("touching the memory hierarchy.")
}
