; memcpy.asm — copy 256 words from 0x2000 to 0x4000, then checksum them.
; Run with: go run ./cmd/doppelsim -file examples/asm/memcpy.asm -scheme dom -ap
.mem 0x2000 = 11
.mem 0x2008 = 22
.mem 0x2010 = 33
        loadi r1, 0x2000   ; src
        loadi r2, 0x4000   ; dst
        loadi r3, 256      ; words
        loadi r4, 0
copy:   load  r5, [r1]
        store r5, [r2]
        addi  r1, r1, 8
        addi  r2, r2, 8
        addi  r4, r4, 1
        blt   r4, r3, copy
        ; checksum the destination
        loadi r2, 0x4000
        loadi r4, 0
        loadi r6, 0
sum:    load  r5, [r2]
        add   r6, r6, r5
        addi  r2, r2, 8
        addi  r4, r4, 1
        blt   r4, r3, sum
        loadi r7, 0x6000
        store r6, [r7]
        halt
