; fib.asm — iterative Fibonacci; result (fib(30)) is stored at 0x1000.
; Run with: go run ./cmd/doppelsim -file examples/asm/fib.asm -verify
        loadi r1, 0        ; a
        loadi r2, 1        ; b
        loadi r3, 30       ; n
        loadi r4, 0        ; i
loop:   add   r5, r1, r2   ; t = a + b
        addi  r1, r2, 0    ; a = b
        addi  r2, r5, 0    ; b = t
        addi  r4, r4, 1
        blt   r4, r3, loop
        loadi r6, 0x1000
        store r1, [r6]
        halt
