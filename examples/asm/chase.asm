; chase.asm — a small pointer chase: each cell holds the address of the
; next; the walk ends at a zero link.
; Run with: go run ./cmd/doppelsim -file examples/asm/chase.asm -all
.mem 0x1000 = 0x1040
.mem 0x1040 = 0x1100
.mem 0x1100 = 0x10c0
.mem 0x10c0 = 0x1200
.mem 0x1200 = 0
        loadi r1, 0x1000
        loadi r2, 0
        loadi r3, 0
walk:   load  r1, [r1]
        addi  r3, r3, 1
        bne   r1, r2, walk
        loadi r4, 0x2000
        store r3, [r4]
        halt
