// Predictor exploration: how the shared stride table behaves in address
// prediction mode on different access patterns, and what that means for
// coverage and accuracy (the paper's Figure 7 axes).
//
//	go run ./examples/predictor
package main

import (
	"fmt"
	"log"

	"doppelganger/sim"
)

// patterns builds three programs with one interesting load each:
// a perfect stride, a jump-broken stride, and a random walk.
func patterns() map[string]*sim.Program {
	mk := func(name string, addrOf func(i int) uint64) *sim.Program {
		b := sim.NewBuilder(name)
		const idxT = 0x10_0000
		const iters = 4000
		for i := 0; i < iters; i++ {
			b.InitMem(idxT+uint64(i)*8, int64(addrOf(i)))
		}
		b.LoadI(1, idxT)
		b.LoadI(2, idxT+iters*8)
		b.LoadI(4, 0)
		loop := b.Here()
		b.Load(3, 1, 0) // pointer from the table
		b.Load(3, 3, 0) // the measured load: dependent, pattern-controlled
		b.Add(4, 4, 3)
		b.AddI(1, 1, 8)
		b.Blt(1, 2, loop)
		b.Store(4, 2, 0)
		b.Halt()
		return b.MustBuild()
	}
	st := uint64(99)
	rnd := func(n int) int {
		st = st*6364136223846793005 + 1442695040888963407
		return int(st>>33) % n
	}
	return map[string]*sim.Program{
		"perfect-stride": mk("perfect-stride", func(i int) uint64 {
			return 0x80_0000 + uint64(i)*64
		}),
		"jumpy-stride": mk("jumpy-stride", func(i int) uint64 {
			// Runs of ~200, then a jump.
			return 0x80_0000 + uint64(i%200)*64 + uint64(i/200)*0x40_000
		}),
		"random-walk": mk("random-walk", func(i int) uint64 {
			return 0x80_0000 + uint64(rnd(1<<14))*64
		}),
	}
}

func main() {
	fmt.Println("Address prediction mode on three access patterns (DoM+AP,")
	fmt.Println("the configuration the paper reports Figure 7 under):")
	fmt.Println()
	fmt.Printf("%-16s %10s %10s %12s %12s\n",
		"pattern", "coverage", "accuracy", "dopp issued", "mispredicted")
	for _, name := range []string{"perfect-stride", "jumpy-stride", "random-walk"} {
		prog := patterns()[name]
		res, err := sim.Run(prog, sim.Config{Scheme: sim.DoM, AddressPrediction: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9.1f%% %9.1f%% %12d %12d\n",
			name, res.Coverage*100, res.Accuracy*100,
			res.Stats.DoppIssued, res.Stats.DoppMispredicted)
	}
	fmt.Println()
	fmt.Println("Each iteration runs two loads: the index-table walk (always")
	fmt.Println("stride-covered) and the pattern-controlled dependent load, so")
	fmt.Println("coverage floors near 50% when the pattern itself is unpredictable")
	fmt.Println("and its PC simply produces no predictions.")
	fmt.Println("The table is trained only at commit (non-speculative addresses),")
	fmt.Println("uses full PC tags, and predictions are read-only — the security")
	fmt.Println("requirements of §5 of the paper. Coverage tracks how much of the")
	fmt.Println("access stream is stride-like; accuracy falls when predictions")
	fmt.Println("extrapolate across pattern breaks.")
}
