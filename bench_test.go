// Benchmarks that regenerate the paper's evaluation artifacts, one per
// table and figure (see DESIGN.md §4 for the experiment index), plus
// ablations over the design choices the paper calls out. The figure
// benchmarks run the experiment matrix at test scale and publish the
// headline numbers as custom metrics; `go run ./cmd/figures` prints the
// full-scale tables.
package doppelganger

import (
	"testing"

	"doppelganger/internal/harness"
	"doppelganger/internal/pipeline"
	"doppelganger/internal/secure"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// runMatrix executes the experiment matrix once per benchmark iteration.
func runMatrix(b *testing.B, names []string) *harness.Matrix {
	b.Helper()
	var m *harness.Matrix
	for i := 0; i < b.N; i++ {
		var err error
		m, err = harness.Run(harness.Options{Scale: workload.ScaleTest, Workloads: names})
		if err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkTable1Config regenerates Table 1: it builds the paper's system
// configuration and reports its headline parameters as metrics.
func BenchmarkTable1Config(b *testing.B) {
	w, _ := workload.ByName("matrix_blocked")
	p := w.Build(workload.ScaleTest)
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.New(pipeline.DefaultConfig(), p); err != nil {
			b.Fatal(err)
		}
	}
	cfg := pipeline.DefaultConfig()
	b.ReportMetric(float64(cfg.ROBSize), "rob-entries")
	b.ReportMetric(float64(cfg.LQSize), "lq-entries")
	b.ReportMetric(float64(cfg.Stride.Entries), "predictor-entries")
	b.ReportMetric(float64(cfg.Memory.L1MSHRs), "l1-mshrs")
}

// BenchmarkFigure1Summary regenerates the Figure 1 headline: geomean
// normalized performance per scheme with and without doppelganger loads,
// and the slowdown reduction each achieves.
func BenchmarkFigure1Summary(b *testing.B) {
	m := runMatrix(b, nil)
	for _, s := range harness.Schemes {
		name := s.String()
		b.ReportMetric(m.GeomeanNormIPC(s, false)*100, name+"-%base")
		b.ReportMetric(m.GeomeanNormIPC(s, true)*100, name+"+AP-%base")
		b.ReportMetric(m.SlowdownReduction(s)*100, name+"-%reduction")
	}
}

// BenchmarkFigure6NormalizedIPC regenerates Figure 6 per workload: the
// normalized IPC of each scheme with and without address prediction.
func BenchmarkFigure6NormalizedIPC(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			m := runMatrix(b, []string{name})
			for _, s := range harness.Schemes {
				b.ReportMetric(m.NormIPC(name, s, false)*100, s.String()+"-%base")
				b.ReportMetric(m.NormIPC(name, s, true)*100, s.String()+"+AP-%base")
			}
		})
	}
}

// BenchmarkFigure7CoverageAccuracy regenerates Figure 7: address predictor
// coverage and accuracy per workload under DoM+AP.
func BenchmarkFigure7CoverageAccuracy(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			w, _ := workload.ByName(name)
			p := w.Build(workload.ScaleTest)
			var res sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = sim.Run(p, sim.Config{Scheme: secure.DoM, AddressPrediction: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Coverage*100, "%coverage")
			b.ReportMetric(res.Accuracy*100, "%accuracy")
		})
	}
}

// BenchmarkFigure8CacheAccesses regenerates Figure 8: L1 and L2 accesses
// normalized to the unsafe baseline, per scheme with and without AP.
func BenchmarkFigure8CacheAccesses(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			m := runMatrix(b, []string{name})
			for _, s := range harness.Schemes {
				b.ReportMetric(m.NormL1(name, s, true), s.String()+"+AP-L1x")
				b.ReportMetric(m.NormL2(name, s, true), s.String()+"+AP-L2x")
			}
		})
	}
}

// BenchmarkBaselineAddressPrediction regenerates the §7 "Unsafe Baseline +
// Address Prediction" comparison (the paper measures ~+0.5% geomean).
func BenchmarkBaselineAddressPrediction(b *testing.B) {
	m := runMatrix(b, nil)
	vals := make([]float64, 0, len(m.Workloads))
	for _, w := range m.Workloads {
		vals = append(vals, m.NormIPC(w, secure.Unsafe, true))
	}
	b.ReportMetric(harness.Geomean(vals)*100, "unsafe+AP-%base")
}

// benchSchemeOn runs one workload under one configuration and reports the
// cycle count and simulator throughput.
func benchSchemeOn(b *testing.B, name string, mutate func(*pipeline.Config)) sim.Result {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	p := w.Build(workload.ScaleTest)
	var res sim.Result
	for i := 0; i < b.N; i++ {
		cc := pipeline.DefaultConfig()
		cfg := sim.Config{Core: &cc}
		mutate(&cc)
		cfg.Scheme = cc.Scheme
		cfg.AddressPrediction = cc.AddressPrediction
		var err error
		res, err = sim.Run(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "cycles")
	return res
}

// BenchmarkAblationPredictorSize sweeps the shared stride table size on the
// stream workload under DoM+AP — the paper's "better predictors are future
// work" knob.
func BenchmarkAblationPredictorSize(b *testing.B) {
	for _, entries := range []int{128, 512, 1024, 4096} {
		b.Run(map[int]string{128: "128", 512: "512", 1024: "1024-paper", 4096: "4096"}[entries],
			func(b *testing.B) {
				res := benchSchemeOn(b, "stream", func(c *pipeline.Config) {
					c.Scheme = secure.DoM
					c.AddressPrediction = true
					c.Stride.Entries = entries
				})
				b.ReportMetric(res.Coverage*100, "%coverage")
			})
	}
}

// BenchmarkAblationPrefetcher sweeps the prefetcher configuration shared
// with the address predictor (degree x distance).
func BenchmarkAblationPrefetcher(b *testing.B) {
	cases := []struct {
		name             string
		degree, distance int
	}{
		{"off", 0, 0},
		{"deg1-dist4", 1, 4},
		{"deg2-dist12-paper", 2, 12},
		{"deg4-dist24", 4, 24},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			benchSchemeOn(b, "stream", func(cc *pipeline.Config) {
				cc.Scheme = secure.DoM
				cc.PrefetchDegree = c.degree
				cc.PrefetchDistance = c.distance
			})
		})
	}
}

// BenchmarkAblationLoadPorts sweeps the memory issue bandwidth shared
// between real loads and doppelgangers (§5's port-filling policy).
func BenchmarkAblationLoadPorts(b *testing.B) {
	for _, ports := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1", 2: "2-paper", 4: "4"}[ports], func(b *testing.B) {
			benchSchemeOn(b, "stream", func(c *pipeline.Config) {
				c.Scheme = secure.NDAP
				c.AddressPrediction = true
				c.LoadPorts = ports
			})
		})
	}
}

// BenchmarkAblationDelayedVerification measures STT+AP when address-
// predicted loads are forced to wait until non-speculative before
// propagating (the stricter alternative §5.2 investigates) — approximated
// by running NDA-P's propagation rule on the same workload.
func BenchmarkAblationDelayedVerification(b *testing.B) {
	b.Run("stt-immediate-paper", func(b *testing.B) {
		benchSchemeOn(b, "stream", func(c *pipeline.Config) {
			c.Scheme = secure.STT
			c.AddressPrediction = true
		})
	})
	b.Run("nda-until-nonspec", func(b *testing.B) {
		benchSchemeOn(b, "stream", func(c *pipeline.Config) {
			c.Scheme = secure.NDAP
			c.AddressPrediction = true
		})
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall second), the practical cost of running the suite.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workload.ByName("matrix_blocked")
	p := w.Build(workload.ScaleTest)
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p, sim.Config{Scheme: secure.DoM, AddressPrediction: true})
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Insts
	}
	b.ReportMetric(float64(insts*uint64(b.N))/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkAblationValueVsAddressPrediction reproduces the paper's §2.3
// argument quantitatively: on the same DoM-delayed workload, doppelganger
// (address) prediction beats value prediction, which pays for in-order
// validation and rollback squashes.
func BenchmarkAblationValueVsAddressPrediction(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*pipeline.Config)
	}{
		{"dom-plain", func(c *pipeline.Config) { c.Scheme = secure.DoM }},
		{"dom+vp", func(c *pipeline.Config) { c.Scheme = secure.DoM; c.ValuePrediction = true }},
		{"dom+ap-paper", func(c *pipeline.Config) { c.Scheme = secure.DoM; c.AddressPrediction = true }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			res := benchSchemeOn(b, "stream", c.mutate)
			if res.Stats.VPPredictions > 0 {
				b.ReportMetric(float64(res.Stats.VPMispredicted), "vp-squashes")
			}
		})
	}
}

// BenchmarkAblationHybridPredictor measures the future-work predictor on
// the pointer-chasing workload the stride table cannot cover.
func BenchmarkAblationHybridPredictor(b *testing.B) {
	for _, c := range []struct {
		name string
		kind pipeline.AddressPredictorKind
	}{
		{"stride-paper", pipeline.PredictorStride},
		{"context", pipeline.PredictorContext},
		{"hybrid", pipeline.PredictorHybrid},
	} {
		b.Run(c.name, func(b *testing.B) {
			res := benchSchemeOn(b, "pointer_chase", func(cc *pipeline.Config) {
				cc.Scheme = secure.DoM
				cc.AddressPrediction = true
				cc.AddressPredictorKind = c.kind
			})
			b.ReportMetric(res.Coverage*100, "%coverage")
		})
	}
}

// BenchmarkAblationSchemeVariants compares the paper's schemes with the
// reproduction's extension variants on the gated-gather stream.
func BenchmarkAblationSchemeVariants(b *testing.B) {
	for _, s := range []secure.Scheme{secure.NDAP, secure.NDAS, secure.STT, secure.STTSpectre} {
		b.Run(s.String(), func(b *testing.B) {
			benchSchemeOn(b, "stream", func(c *pipeline.Config) { c.Scheme = s })
		})
	}
}

// BenchmarkAblationBranchPredictor measures how direction-predictor quality
// changes scheme overheads (shadow lifetimes scale with resolution rate).
func BenchmarkAblationBranchPredictor(b *testing.B) {
	for _, k := range []struct {
		name string
		kind pipeline.BranchPredictorKind
	}{
		{"bimodal-paper", pipeline.BranchBimodal},
		{"gshare", pipeline.BranchGShare},
	} {
		b.Run(k.name, func(b *testing.B) {
			res := benchSchemeOn(b, "graph_path", func(c *pipeline.Config) {
				c.Scheme = secure.DoM
				c.BranchPredictorKind = k.kind
			})
			b.ReportMetric(float64(res.Stats.BranchMispredicts), "mispredicts")
		})
	}
}

// BenchmarkAblationMemDepPrediction measures store-set memory dependence
// prediction (assumed by the paper's §4.4 discussion) on an aliasing
// microbenchmark in which a load repeatedly conflicts with a late-resolving
// store.
func BenchmarkAblationMemDepPrediction(b *testing.B) {
	prog := aliasingProgram(600)
	for _, on := range []bool{false, true} {
		name := map[bool]string{false: "speculate-always", true: "store-sets"}[on]
		b.Run(name, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				cc := pipeline.DefaultConfig()
				cc.MemDepPrediction = on
				cc.PrefetchDegree = 0
				var err error
				res, err = sim.Run(prog, sim.Config{Core: &cc})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(float64(res.Stats.MemOrderViolations), "violations")
		})
	}
}

// aliasingProgram builds a loop where a load aliases a store whose address
// resolves only after a cold-line miss.
func aliasingProgram(iters int) *sim.Program {
	bld := sim.NewBuilder("aliasing-bench")
	const (
		slow = 0x8000
		data = 0x20000
	)
	for i := 0; i < iters; i++ {
		bld.InitMem(slow+uint64(i)*64, 0)
	}
	bld.LoadI(1, 0)
	bld.LoadI(2, int64(iters))
	bld.LoadI(3, slow)
	bld.LoadI(4, data)
	bld.LoadI(9, 0)
	bld.LoadI(10, 777)
	loop := bld.Here()
	bld.Load(5, 3, 0)
	bld.AndI(5, 5, 0)
	bld.Add(6, 4, 5)
	bld.Store(10, 6, 0)
	bld.Load(7, 4, 0)
	bld.Add(9, 9, 7)
	bld.AddI(3, 3, 64)
	bld.AddI(4, 4, 8)
	bld.AddI(1, 1, 1)
	bld.Blt(1, 2, loop)
	bld.Halt()
	return bld.MustBuild()
}

// BenchmarkAblationExceptionShadows measures the E-shadow variant of the
// speculation tracker (Ghost Loads' full shadow set) against the paper's
// control+store-address shadows.
func BenchmarkAblationExceptionShadows(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := map[bool]string{false: "cd-shadows-paper", true: "cde-shadows"}[on]
		b.Run(name, func(b *testing.B) {
			res := benchSchemeOn(b, "stream", func(c *pipeline.Config) {
				c.Scheme = secure.DoM
				c.ExceptionShadows = on
			})
			b.ReportMetric(float64(res.Stats.DoMDelayedMisses), "delayed-misses")
		})
	}
}

// BenchmarkWorkloads measures each suite kernel on the unsafe baseline:
// simulator throughput per workload and the cycle counts behind the
// Figure 6 normalizations.
func BenchmarkWorkloads(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			w, _ := workload.ByName(name)
			p := w.Build(workload.ScaleTest)
			var res sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = sim.Run(p, sim.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(res.IPC, "ipc")
		})
	}
}
