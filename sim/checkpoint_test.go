package sim_test

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"

	"doppelganger/internal/obs"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// checkpointWarmup is the commit count the tests snapshot at. Small enough
// that every ScaleTest workload still has work left after it, large enough
// to leave real state in the caches and predictors.
const checkpointWarmup = 5_000

func testProgram(t *testing.T, name string) *sim.Program {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return w.Build(workload.ScaleTest)
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := testProgram(t, "stream")
	ck, err := sim.Snapshot(p, sim.Config{}, checkpointWarmup)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Digest() == "" || len(ck.Digest()) != 64 {
		t.Fatalf("bad digest %q", ck.Digest())
	}
	dec, err := sim.DecodeCheckpoint(ck.Encode())
	if err != nil {
		t.Fatalf("decoding our own encoding: %v", err)
	}
	if dec.Digest() != ck.Digest() {
		t.Fatalf("digest changed across encode/decode: %s vs %s", dec.Digest(), ck.Digest())
	}
	if got := ck.Meta().WarmupInsts; got != checkpointWarmup {
		t.Errorf("meta warmup insts = %d, want %d", got, checkpointWarmup)
	}
	if st := ck.State(); st.Stats.Committed < checkpointWarmup {
		t.Errorf("checkpoint committed %d insts, want >= %d", st.Stats.Committed, checkpointWarmup)
	}

	// A decoded checkpoint must restore identically to the original.
	a, err := sim.RunFromCheckpoint(context.Background(), p, sim.Config{Scheme: sim.DoM, AddressPrediction: true}, ck)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunFromCheckpoint(context.Background(), nil, sim.Config{Scheme: sim.DoM, AddressPrediction: true}, dec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.Cycles != b.Cycles || a.Insts != b.Insts {
		t.Errorf("original and decoded checkpoints diverged: %+v vs %+v", a, b)
	}
}

func TestSnapshotRejectsZeroWarmup(t *testing.T) {
	if _, err := sim.Snapshot(testProgram(t, "stream"), sim.Config{}, 0); err == nil {
		t.Fatal("Snapshot(0) should be rejected")
	}
}

func TestRunFromCheckpointIncompatibleProgram(t *testing.T) {
	ck, err := sim.Snapshot(testProgram(t, "stream"), sim.Config{}, checkpointWarmup)
	if err != nil {
		t.Fatal(err)
	}
	other := testProgram(t, "pointer_chase")
	if _, err := sim.RunFromCheckpoint(context.Background(), other, sim.Config{}, ck); err == nil {
		t.Fatal("restoring a checkpoint into a different program should be rejected")
	} else if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("unhelpful incompatibility error: %v", err)
	}
}

// TestRunFromCheckpointBoundedInsts pins the composition rule: MaxInsts
// after a restore counts total committed instructions including warmup,
// so a bounded warm-started run stops at the same architectural point as
// the bounded straight-line run.
func TestRunFromCheckpointBoundedInsts(t *testing.T) {
	p := testProgram(t, "stream")
	const bound = 20_000
	cfg := sim.Config{Scheme: sim.STT, MaxInsts: bound}
	straight, err := sim.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := sim.Snapshot(p, sim.Config{}, checkpointWarmup)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sim.RunFromCheckpoint(context.Background(), p, cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if straight.Checksum != warm.Checksum {
		t.Errorf("bounded runs diverged architecturally: straight %x, warm %x", straight.Checksum, warm.Checksum)
	}
	if straight.Insts < bound || warm.Insts < bound {
		t.Errorf("bounds not reached: straight %d, warm %d insts", straight.Insts, warm.Insts)
	}
}

// TestSnapshotUnderCleanup pins warm-start equivalence for the undo-based
// scheme: the snapshot is taken under Cleanup itself, so the drain that
// precedes capture must retire or roll back every open speculative epoch —
// an undrained undo journal or buffered trace fold makes the core refuse to
// capture. The warm-started remainder must then match the straight-line
// run's architectural checksum, with and without address prediction.
func TestSnapshotUnderCleanup(t *testing.T) {
	p := testProgram(t, "stream")
	ck, err := sim.Snapshot(p, sim.Config{Scheme: sim.Cleanup}, checkpointWarmup)
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range []bool{false, true} {
		cfg := sim.Config{Scheme: sim.Cleanup, AddressPrediction: ap}
		straight, err := sim.Run(p, cfg)
		if err != nil {
			t.Fatalf("ap=%v straight-line: %v", ap, err)
		}
		warm, err := sim.RunFromCheckpoint(context.Background(), p, cfg, ck)
		if err != nil {
			t.Fatalf("ap=%v from checkpoint: %v", ap, err)
		}
		if straight.Checksum != warm.Checksum {
			t.Errorf("ap=%v: architectural divergence: straight %x, warm %x", ap, straight.Checksum, warm.Checksum)
		}
		if straight.Insts != warm.Insts {
			t.Errorf("ap=%v: committed %d straight vs %d warm", ap, straight.Insts, warm.Insts)
		}
	}
}

// TestRunFromCheckpointEquivalenceMatrix is the tentpole's acceptance
// proof: across the full workload × scheme × ±AP matrix (168 cells), a
// run warmed once under the unsafe baseline and forked from the
// checkpoint produces a Result.Checksum identical to the straight-line
// run. The checksum digests final architectural state, which is
// scheme-invariant — so one warmup seeds every cell.
func TestRunFromCheckpointEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix equivalence proof skipped in -short mode")
	}
	names := workload.Names()
	schemes := sim.AllSchemes()
	if cells := len(names) * len(schemes) * 2; cells != 168 {
		t.Logf("matrix is %d cells (suite changed size; still proving all of them)", cells)
	}

	// Warm every workload once, in parallel, under the unsafe baseline.
	ckpts := make(map[string]*sim.Checkpoint, len(names))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			ck, err := sim.Snapshot(testProgram(t, name), sim.Config{}, checkpointWarmup)
			if err != nil {
				t.Errorf("warming %s: %v", name, err)
				return
			}
			mu.Lock()
			ckpts[name] = ck
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	type cell struct {
		wl     string
		scheme sim.Scheme
		ap     bool
	}
	var cells []cell
	for _, name := range names {
		for _, sc := range schemes {
			for _, ap := range []bool{false, true} {
				cells = append(cells, cell{name, sc, ap})
			}
		}
	}
	work := make(chan cell)
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				cfg := sim.Config{Scheme: c.scheme, AddressPrediction: c.ap}
				p := testProgram(t, c.wl)
				straight, err := sim.Run(p, cfg)
				if err != nil {
					t.Errorf("%s/%v/ap=%v straight-line: %v", c.wl, c.scheme, c.ap, err)
					continue
				}
				warm, err := sim.RunFromCheckpoint(context.Background(), p, cfg, ckpts[c.wl])
				if err != nil {
					t.Errorf("%s/%v/ap=%v from checkpoint: %v", c.wl, c.scheme, c.ap, err)
					continue
				}
				if straight.Checksum != warm.Checksum {
					t.Errorf("%s/%v/ap=%v: architectural divergence: straight %x, warm %x",
						c.wl, c.scheme, c.ap, straight.Checksum, warm.Checksum)
				}
				if straight.Insts != warm.Insts {
					t.Errorf("%s/%v/ap=%v: committed %d straight vs %d warm",
						c.wl, c.scheme, c.ap, straight.Insts, warm.Insts)
				}
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()
}

// TestRunFromCheckpointTracedEquivalence covers restore under
// observability: a traced warm-started run emits the same metric families
// as a traced straight-line run, never emits an event from before the
// restore point (no phantom warmup events, including through the batched
// flush path), and tracing does not perturb the simulation.
func TestRunFromCheckpointTracedEquivalence(t *testing.T) {
	p := testProgram(t, "stream")
	cfg := sim.Config{Scheme: sim.DoM, AddressPrediction: true}

	straightMet := sim.NewMetrics()
	straightSink := obs.NewCountingSink(nil)
	straight, err := sim.RunContext(context.Background(), p, cfg,
		sim.WithTracer(straightSink), sim.WithMetrics(straightMet))
	if err != nil {
		t.Fatal(err)
	}

	ck, err := sim.Snapshot(p, sim.Config{}, checkpointWarmup)
	if err != nil {
		t.Fatal(err)
	}
	ckptCycle := ck.State().Cycle

	ring := obs.NewRingSink(1 << 20)
	warmMet := sim.NewMetrics()
	warmSink := obs.NewCountingSink(ring)
	warm, err := sim.RunFromCheckpoint(context.Background(), p, cfg, ck,
		sim.WithTracer(warmSink), sim.WithMetrics(warmMet))
	if err != nil {
		t.Fatal(err)
	}

	// Tracing is passive: the traced warm run matches an untraced one.
	plain, err := sim.RunFromCheckpoint(context.Background(), p, cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Checksum != plain.Checksum || warm.Cycles != plain.Cycles {
		t.Errorf("tracing perturbed the warm run: traced %+v, untraced %+v", warm, plain)
	}
	if warm.Checksum != straight.Checksum {
		t.Errorf("architectural divergence: straight %x, warm %x", straight.Checksum, warm.Checksum)
	}

	// No phantom warmup events: everything the restored run emitted is
	// stamped after the checkpoint cycle. The ring holds the tail of the
	// stream (including the final batched flush), which is exactly where
	// late duplicate emission would land.
	if warmSink.Total() == 0 {
		t.Fatal("traced warm run emitted no events")
	}
	if warmSink.Total() >= straightSink.Total() {
		t.Errorf("warm run emitted %d events, straight-line only %d — warmup events duplicated?",
			warmSink.Total(), straightSink.Total())
	}
	for _, e := range ring.Events() {
		if e.Cycle <= ckptCycle {
			t.Fatalf("phantom pre-restore event at cycle %d (checkpoint cycle %d): %+v", e.Cycle, ckptCycle, e)
		}
	}

	// Same metric families, warm and straight.
	if got, want := familyNames(t, warmMet), familyNames(t, straightMet); got != want {
		t.Errorf("metric families diverged:\nwarm:     %s\nstraight: %s", got, want)
	}
}

func familyNames(t *testing.T, m *sim.Metrics) string {
	t.Helper()
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var names []string
	seen := map[string]bool{}
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return strings.Join(names, ",")
}
