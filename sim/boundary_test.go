package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"doppelganger/sim"
)

// A maxInsts limit is checked at commit: the run may only overshoot by the
// commits of the cycle that crossed the limit, never by more than
// CommitWidth-1 instructions.
func TestRunMaxInstsStopsAtCommitBoundary(t *testing.T) {
	p := sim.MustAssemble("spin", "loop: jmp loop\nhalt")
	cc := sim.DefaultCoreConfig()
	core, err := sim.NewCore(p, sim.Config{Core: &cc})
	if err != nil {
		t.Fatal(err)
	}
	const maxInsts = 1000
	if err := core.Run(maxInsts, 1_000_000); err != nil {
		t.Fatal(err)
	}
	got := core.Stats.Committed
	if got < maxInsts {
		t.Errorf("committed %d, want >= %d", got, maxInsts)
	}
	if got > maxInsts+uint64(cc.CommitWidth)-1 {
		t.Errorf("committed %d, overshoot past the limit must stay under CommitWidth=%d",
			got, cc.CommitWidth)
	}
}

// Hitting the cycle limit is an error, but the core's statistics must
// survive it so the caller can see how far the run got.
func TestRunCycleLimitPreservesStats(t *testing.T) {
	p := sim.MustAssemble("spin", "loop: jmp loop\nhalt")
	core, err := sim.NewCore(p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const limit = 500
	runErr := core.Run(0, limit)
	if runErr == nil {
		t.Fatal("spin loop under a 500-cycle budget should hit the cycle limit")
	}
	if core.Stats.Cycles != limit {
		t.Errorf("Stats.Cycles = %d, want exactly %d", core.Stats.Cycles, limit)
	}
	if core.Stats.Committed == 0 {
		t.Error("Stats.Committed = 0; the spin loop commits instructions before the limit")
	}
	if want := fmt.Sprintf("%d committed", core.Stats.Committed); !strings.Contains(runErr.Error(), want) {
		t.Errorf("error %q should report the preserved commit count (%s)", runErr, want)
	}
}

// Every suite workload's architectural state after a pipelined run must
// match the reference interpreter exactly, and the core's streaming
// Checksum must agree with the one derived from the full ArchState map.
func TestArchStateMatchesInterpreterAllWorkloads(t *testing.T) {
	for _, w := range sim.Workloads() {
		for _, cfg := range []sim.Config{
			{},
			{Scheme: sim.DoM, AddressPrediction: true},
		} {
			name := fmt.Sprintf("%s/%v", w.Name, cfg.Scheme)
			if cfg.AddressPrediction {
				name += "+ap"
			}
			t.Run(name, func(t *testing.T) {
				p := w.Build(sim.ScaleTest)
				core, err := sim.NewCore(p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := core.Run(0, sim.DefaultMaxCycles); err != nil {
					t.Fatal(err)
				}
				if !core.Halted() {
					t.Fatal("core did not halt")
				}
				st := core.ArchState()
				ref := sim.Interpret(p, 500_000_000)
				if st.Checksum() != ref.Checksum() {
					t.Errorf("ArchState checksum %#x differs from reference interpreter %#x",
						st.Checksum(), ref.Checksum())
				}
				if core.Checksum() != st.Checksum() {
					t.Errorf("streaming Checksum %#x differs from ArchState().Checksum() %#x",
						core.Checksum(), st.Checksum())
				}
			})
		}
	}
}
