package sim

import (
	"context"
	"fmt"

	"doppelganger/internal/obs"
	"doppelganger/internal/pipeline"
)

// RunOption customises a RunContext invocation. Options carry the run's
// observability attachments and limit overrides; the Config struct stays a
// pure, comparable description of *what* to simulate (it is fingerprinted
// for result caching, so side-effecting attachments must never live there).
type RunOption func(*runOpts)

type runOpts struct {
	sink      obs.TraceSink
	metrics   *obs.Metrics
	winOn     bool
	winFrom   uint64
	winTo     uint64
	maxCycles uint64
	digest    *MicroDigest
	observe   []obsRequest
}

// WithTracer attaches a trace sink: the core emits typed obs.Events for
// load issue/propagation, doppelganger issue/verify/squash, taint
// propagation, shadow open/close, cache accesses and branch squashes.
// Tracing never changes simulated behaviour — a traced run produces a
// byte-identical Result.Checksum to an untraced one.
func WithTracer(s obs.TraceSink) RunOption {
	return func(o *runOpts) { o.sink = s }
}

// WithMetrics attaches a metrics registry. During the run the core observes
// shadow lifetimes, load latencies and ROB/IQ occupancy into histograms and
// the hierarchy counts per-level hits and misses; at the end the run's
// counter totals are flushed via RecordMetrics. The registry may be shared
// across runs (it is safe for concurrent use) and aggregates.
func WithMetrics(m *obs.Metrics) RunOption {
	return func(o *runOpts) { o.metrics = m }
}

// WithTraceWindow restricts trace emission to cycles in [from, to]
// inclusive. Unlike the deprecated Core.SetTraceWindow, a window starting
// at cycle 0 is valid. Metrics are unaffected by the window.
func WithTraceWindow(from, to uint64) RunOption {
	return func(o *runOpts) { o.winOn, o.winFrom, o.winTo = true, from, to }
}

// WithMaxCycles overrides the run's cycle budget (taking precedence over
// Config.MaxCycles).
func WithMaxCycles(n uint64) RunOption {
	return func(o *runOpts) { o.maxCycles = n }
}

// MicroDigest fingerprints the attacker-observable micro-architectural
// state of a finished run: cycle count, cache tag/LRU contents at every
// level, the MSHR occupancy timeline, traffic counters, and predictor
// tables. It is the oracle of the differential leakage checker — see
// internal/leakcheck and WithMicroArchDigest.
type MicroDigest = pipeline.MicroDigest

// WithMicroArchDigest fills *d with the run's final micro-architectural
// digest. Two runs of programs differing only in secret data must produce
// equal digests under a secure speculation scheme; any component that
// differs names a side channel through which the secret escaped.
//
// Deprecated: use Observe, which exposes the same nine µarch components
// (as Observation.Micro, captured identically) plus per-clause contract
// visibility, secret labeling and trace digests. WithMicroArchDigest is
// the projection of the full-lattice observation onto its µarch
// components: for any run,
//
//	var d MicroDigest              var o Observation
//	..., WithMicroArchDigest(&d)   ..., Observe(&o)
//
// yield d == o.Micro, checksum-identical component by component.
func WithMicroArchDigest(d *MicroDigest) RunOption {
	return func(o *runOpts) { o.digest = d }
}

// stepChunk is how many cycles RunContext simulates between context
// checks when the context is cancellable.
const stepChunk = 1 << 16

// RunContext simulates the program to completion under the configuration,
// honouring context cancellation and any run options. It is the primary
// entry point; Run is a convenience wrapper over it.
//
// With a non-cancellable context (context.Background()) and no options the
// run takes the same uninterrupted path as Run — the observability hooks
// cost one predictable branch each when nothing is attached.
func RunContext(ctx context.Context, p *Program, cfg Config, opts ...RunOption) (Result, error) {
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	c, err := NewCore(p, cfg)
	if err != nil {
		return Result{}, err
	}
	if o.sink != nil {
		c.SetTraceSink(o.sink)
	}
	if o.winOn {
		c.SetCycleWindow(o.winFrom, o.winTo)
	}
	if o.metrics != nil {
		c.SetMetrics(o.metrics)
	}
	if needsTraces(o.observe) {
		c.EnableObsTraces()
	}
	maxCycles := o.maxCycles
	if maxCycles == 0 {
		maxCycles = cfg.MaxCycles
	}
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	err = runCore(ctx, c, cfg.MaxInsts, maxCycles)
	// The chunked (cancellable) path steps the core directly, bypassing
	// Core.Run's exit flush; deliver buffered trace events and batched
	// metrics on every outcome so attached sinks and registries are
	// complete even for failed runs.
	c.FlushTrace()
	c.FlushMetrics()
	if err != nil {
		return Result{}, fmt.Errorf("sim: %q under %v: %w", p.Name, cfg.Scheme, err)
	}
	res := Summarize(p, cfg, c)
	if o.digest != nil {
		*o.digest = c.MicroDigest()
	}
	for _, r := range o.observe {
		r.capture(c, p)
	}
	if o.metrics != nil {
		RecordMetrics(o.metrics, res)
	}
	if f, ok := o.sink.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			return res, fmt.Errorf("sim: flushing trace sink: %w", err)
		}
	}
	return res, nil
}

// runCore drives the core to completion. A non-cancellable context takes
// the direct path; otherwise the run is chunked so cancellation is observed
// within stepChunk cycles.
func runCore(ctx context.Context, c *Core, maxInsts, maxCycles uint64) error {
	if ctx.Done() == nil {
		return c.Run(maxInsts, maxCycles)
	}
	for !c.Halted() {
		if maxInsts > 0 && c.Stats.Committed >= maxInsts {
			return nil
		}
		if c.Cycle() >= maxCycles {
			return fmt.Errorf("pipeline: cycle limit %d reached at %d committed instructions (possible deadlock)",
				maxCycles, c.Stats.Committed)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		end := c.Cycle() + stepChunk
		if end > maxCycles {
			end = maxCycles
		}
		for !c.Halted() && c.Cycle() < end {
			if maxInsts > 0 && c.Stats.Committed >= maxInsts {
				return nil
			}
			c.Step()
		}
	}
	return nil
}

// RecordMetrics flushes a finished run's counter totals into the registry.
// RunContext with WithMetrics does this automatically; call it directly to
// aggregate results obtained elsewhere (e.g. from a result cache).
func RecordMetrics(m *Metrics, res Result) {
	pipeline.RecordStats(m, res.Stats, res.Memory)
}
