package sim_test

import (
	"context"
	"testing"

	"doppelganger/sim"
)

func benchProgram(b *testing.B) *sim.Program {
	b.Helper()
	w, ok := sim.WorkloadByName("stream")
	if !ok {
		b.Fatal("no stream workload")
	}
	return w.Build(sim.ScaleTest)
}

// BenchmarkRunUntraced is the baseline the observability layer must not
// slow down: no sink, no metrics — the disabled fast path.
func BenchmarkRunUntraced(b *testing.B) {
	p := benchProgram(b)
	cfg := sim.Config{Scheme: sim.DoM, AddressPrediction: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTracedCounting measures the tracing-enabled path with the
// cheapest possible sink, isolating emit overhead from encoding cost.
func BenchmarkRunTracedCounting(b *testing.B) {
	p := benchProgram(b)
	cfg := sim.Config{Scheme: sim.DoM, AddressPrediction: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink := &sim.CountingSink{}
		if _, err := sim.RunContext(context.Background(), p, cfg, sim.WithTracer(sink)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunWithMetrics measures the metrics-attached path: per-event
// histogram observations plus the end-of-run counter flush.
func BenchmarkRunWithMetrics(b *testing.B) {
	p := benchProgram(b)
	cfg := sim.Config{Scheme: sim.DoM, AddressPrediction: true}
	m := sim.NewMetrics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunContext(context.Background(), p, cfg, sim.WithMetrics(m)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCleanup measures the undo-journal path: Cleanup speculates
// like the unsafe core but journals every speculative cache side effect
// and rolls the hierarchy back on squash, so this gates the journaling
// overhead on the common no-squash fast path as well as rollback cost.
func BenchmarkRunCleanup(b *testing.B) {
	p := benchProgram(b)
	cfg := sim.Config{Scheme: sim.Cleanup}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFromCheckpoint measures the warm-start path: restore from a
// mid-run snapshot and finish. The snapshot itself is taken once outside
// the loop, matching how the harness amortizes one warmup across every
// scheme cell.
func BenchmarkRunFromCheckpoint(b *testing.B) {
	p := benchProgram(b)
	cfg := sim.Config{Scheme: sim.DoM, AddressPrediction: true}
	ck, err := sim.Snapshot(p, cfg, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunFromCheckpoint(context.Background(), p, cfg, ck); err != nil {
			b.Fatal(err)
		}
	}
}
