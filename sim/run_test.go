package sim_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"doppelganger/sim"
)

func traceConfig() sim.Config {
	return sim.Config{Scheme: sim.DoM, AddressPrediction: true}
}

// TestTracedChecksumIdentity: a traced run streaming JSONL must produce the
// exact same architectural result as an untraced one.
func TestTracedChecksumIdentity(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	plain, err := sim.Run(p, traceConfig())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	traced, err := sim.RunContext(context.Background(), p, traceConfig(),
		sim.WithTracer(sim.NewJSONLSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if traced.Checksum != plain.Checksum {
		t.Errorf("traced checksum %#x != untraced %#x", traced.Checksum, plain.Checksum)
	}
	if traced.Cycles != plain.Cycles || traced.Insts != plain.Insts {
		t.Errorf("traced timing diverged: %d/%d vs %d/%d cycles/insts",
			traced.Cycles, traced.Insts, plain.Cycles, plain.Insts)
	}
	if buf.Len() == 0 {
		t.Fatal("traced run wrote no JSONL")
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if _, ok := e["kind"]; !ok {
			t.Fatalf("line %d has no kind field: %s", lines, sc.Text())
		}
	}
	if lines == 0 {
		t.Fatal("JSONL stream had no lines")
	}
}

// TestTracedChecksumIdentityParallel runs traced and untraced simulations of
// the same program concurrently and checks every run agrees — tracing state
// is per-core, so parallel traced runs must not interfere.
func TestTracedChecksumIdentityParallel(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	want, err := sim.Run(p, traceConfig())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	sums := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var opts []sim.RunOption
			if i%2 == 0 {
				opts = append(opts, sim.WithTracer(sim.NewRingSink(1024)))
			}
			res, err := sim.RunContext(context.Background(), p, traceConfig(), opts...)
			errs[i], sums[i] = err, res.Checksum
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if sums[i] != want.Checksum {
			t.Errorf("worker %d (traced=%v): checksum %#x != %#x", i, i%2 == 0, sums[i], want.Checksum)
		}
	}
}

func TestRunContextCancelled(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunContext(ctx, p, traceConfig()); err == nil {
		t.Fatal("RunContext with a cancelled context succeeded")
	}
}

func TestWithMaxCycles(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	if _, err := sim.RunContext(context.Background(), p, traceConfig(), sim.WithMaxCycles(10)); err == nil {
		t.Fatal("10-cycle budget should not be enough to halt")
	}
	if _, err := sim.RunContext(context.Background(), p, traceConfig(), sim.WithMaxCycles(1_000_000)); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

func TestWithTraceWindow(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	ring := sim.NewRingSink(1 << 16)
	if _, err := sim.RunContext(context.Background(), p, traceConfig(),
		sim.WithTracer(ring), sim.WithTraceWindow(0, 20)); err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("window [0, 20] captured no events")
	}
	for _, e := range events {
		if e.Cycle > 20 {
			t.Errorf("event %v at cycle %d escaped window [0, 20]", e.Kind, e.Cycle)
		}
	}
}

// TestWithMetrics checks the run flushes its counters into the registry and
// the registry renders them in Prometheus text format.
func TestWithMetrics(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	m := sim.NewMetrics()
	if _, err := sim.RunContext(context.Background(), p, traceConfig(), sim.WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"sim_cycles_total",
		"sim_instructions_total",
		"sim_cache_hits_total",
		"sim_shadow_lifetime_cycles",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("Prometheus output missing %s", family)
		}
	}
}
