package sim

import (
	"doppelganger/internal/workload"
)

// Workload is a synthetic benchmark from the evaluation suite; each stands
// in for a SPEC benchmark class from the paper (see DESIGN.md §5).
type Workload = workload.Workload

// WorkloadScale selects how large a benchmark instance to build.
type WorkloadScale = workload.Scale

// Workload scales: ScaleTest builds small instances for fast iteration,
// ScaleFull the instances used to regenerate the paper's figures.
const (
	ScaleTest = workload.ScaleTest
	ScaleFull = workload.ScaleFull
)

// Workloads lists the benchmark suite in name order.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks a benchmark up by its registry name.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// WorkloadNames lists the registry names in sorted order.
func WorkloadNames() []string { return workload.Names() }
