package sim_test

import (
	"context"
	"fmt"

	"doppelganger/sim"
)

// ExampleRun assembles a tiny program and runs it under Delay-on-Miss with
// doppelganger loads enabled.
func ExampleRun() {
	p := sim.MustAssemble("example", `
        loadi r1, 0x1000
        loadi r2, 5
        loadi r3, 0
loop:   load  r4, [r1]
        add   r3, r3, r4
        addi  r1, r1, 8
        addi  r2, r2, -1
        bne   r2, r3, skip
skip:   loadi r5, 0
        bne   r2, r5, loop
        halt
`)
	for i := 0; i < 5; i++ {
		p.InitMem[0x1000+uint64(i)*8] = int64(i + 1)
	}
	res, err := sim.Run(p, sim.Config{Scheme: sim.DoM, AddressPrediction: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("halted:", res.Insts > 0, "scheme:", res.Scheme.String())
	// Output: halted: true scheme: dom
}

// ExampleInterpret shows the functional reference interpreter, the oracle
// the pipeline is validated against.
func ExampleInterpret() {
	p := sim.MustAssemble("sum", `
        loadi r1, 10
        loadi r2, 0
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        loadi r3, 0
        bne   r1, r3, loop
        halt
`)
	st := sim.Interpret(p, 1000)
	fmt.Println("sum 1..10 =", st.Regs[2])
	// Output: sum 1..10 = 55
}

// ExampleNewBuilder constructs a program with the builder API instead of
// assembly text.
func ExampleNewBuilder() {
	b := sim.NewBuilder("mul")
	b.LoadI(1, 6)
	b.LoadI(2, 7)
	b.Mul(3, 1, 2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(sim.Interpret(p, 10).Regs[3])
	// Output: 42
}

// ExampleWorkloads lists the first benchmarks of the synthetic suite.
func ExampleWorkloads() {
	for _, w := range sim.Workloads()[:3] {
		fmt.Println(w.Name)
	}
	// Output:
	// compile_ir
	// compress
	// event_queue
}

// ExampleObserve runs a differential pair — two executions identical but
// for a labeled secret word — and compares what different observers see.
// The probe load's address depends on the secret, so a constant-time
// observer distinguishes the runs; the architectural observer, which
// filters secret-tainted state, does not.
func ExampleObserve() {
	build := func(secret int64) *sim.Program {
		b := sim.NewBuilder("probe")
		b.SecretWord(0x1000, secret) // label the word as secret
		b.LoadI(1, 0x1000)
		b.Load(2, 1, 0) // r2 = secret
		b.ShlI(2, 2, 6) // r2 = secret * 64 (one cache line apart)
		b.LoadI(3, 0x2000)
		b.Add(2, 2, 3)
		b.Load(4, 2, 0) // probe: address depends on the secret
		b.Halt()
		return b.MustBuild()
	}
	cfg := sim.Config{Scheme: sim.Unsafe}
	var oa, ob sim.Observation
	if _, err := sim.RunContext(context.Background(), build(1), cfg,
		sim.Observe(&oa, sim.ArchSeq, sim.CTSeq)); err != nil {
		panic(err)
	}
	if _, err := sim.RunContext(context.Background(), build(2), cfg,
		sim.Observe(&ob, sim.ArchSeq, sim.CTSeq)); err != nil {
		panic(err)
	}
	fmt.Println("arch-seq sees:", oa.Diff(&ob, sim.ArchSeq))
	fmt.Println("ct-seq sees:  ", oa.Diff(&ob, sim.CTSeq))
	// Output:
	// arch-seq sees: []
	// ct-seq sees:   [addr-trace-commit stride-predictor]
}

// ExampleClause_Covers shows the partial order of the contract lattice:
// ct-spec is the strongest clause; ct-seq and pc-spec are incomparable.
func ExampleClause_Covers() {
	fmt.Println(sim.CTSpec.Covers(sim.ArchSeq))
	fmt.Println(sim.CTSeq.Covers(sim.PCSpec))
	fmt.Println(sim.PCSpec.Covers(sim.CTSeq))
	// Output:
	// true
	// false
	// false
}

// ExampleClause_VisibleComponents walks the lattice from weakest to
// strongest observer, showing how visibility grows monotonically.
func ExampleClause_VisibleComponents() {
	for _, c := range sim.Lattice() {
		fmt.Printf("%-9s %d components\n", c, len(c.VisibleComponents()))
	}
	// Output:
	// arch-seq  1 components
	// arch-spec 1 components
	// pc-seq    3 components
	// pc-spec   4 components
	// ct-seq    6 components
	// ct-spec   14 components
}
