package sim_test

import (
	"fmt"

	"doppelganger/sim"
)

// ExampleRun assembles a tiny program and runs it under Delay-on-Miss with
// doppelganger loads enabled.
func ExampleRun() {
	p := sim.MustAssemble("example", `
        loadi r1, 0x1000
        loadi r2, 5
        loadi r3, 0
loop:   load  r4, [r1]
        add   r3, r3, r4
        addi  r1, r1, 8
        addi  r2, r2, -1
        bne   r2, r3, skip
skip:   loadi r5, 0
        bne   r2, r5, loop
        halt
`)
	for i := 0; i < 5; i++ {
		p.InitMem[0x1000+uint64(i)*8] = int64(i + 1)
	}
	res, err := sim.Run(p, sim.Config{Scheme: sim.DoM, AddressPrediction: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("halted:", res.Insts > 0, "scheme:", res.Scheme.String())
	// Output: halted: true scheme: dom
}

// ExampleInterpret shows the functional reference interpreter, the oracle
// the pipeline is validated against.
func ExampleInterpret() {
	p := sim.MustAssemble("sum", `
        loadi r1, 10
        loadi r2, 0
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        loadi r3, 0
        bne   r1, r3, loop
        halt
`)
	st := sim.Interpret(p, 1000)
	fmt.Println("sum 1..10 =", st.Regs[2])
	// Output: sum 1..10 = 55
}

// ExampleNewBuilder constructs a program with the builder API instead of
// assembly text.
func ExampleNewBuilder() {
	b := sim.NewBuilder("mul")
	b.LoadI(1, 6)
	b.LoadI(2, 7)
	b.Mul(3, 1, 2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(sim.Interpret(p, 10).Regs[3])
	// Output: 42
}

// ExampleWorkloads lists the first benchmarks of the synthetic suite.
func ExampleWorkloads() {
	for _, w := range sim.Workloads()[:3] {
		fmt.Println(w.Name)
	}
	// Output:
	// compile_ir
	// compress
	// event_queue
}
