package sim_test

import (
	"strings"
	"testing"

	"doppelganger/sim"
)

const quickSource = `
.reg r1 = 0
        loadi r2, 100
        loadi r3, 0
loop:   add   r3, r3, r1
        addi  r1, r1, 1
        blt   r1, r2, loop
        loadi r4, 0x1000
        store r3, [r4]
        halt
`

func TestRunQuickProgram(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	for _, scheme := range sim.Schemes() {
		res, err := sim.Run(p, sim.Config{Scheme: scheme, AddressPrediction: true})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Insts == 0 || res.Cycles == 0 || res.IPC <= 0 {
			t.Errorf("%v: empty result %+v", scheme, res)
		}
		if res.Scheme != scheme || !res.AP || res.Program != "quick" {
			t.Errorf("%v: result metadata wrong", scheme)
		}
	}
}

func TestRunMatchesInterpreter(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	ref := sim.Interpret(p, 10_000)
	if !ref.Halted {
		t.Fatal("reference did not halt")
	}
	core, err := sim.NewCore(p, sim.Config{Scheme: sim.DoM, AddressPrediction: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if core.ArchState().Checksum() != ref.Checksum() {
		t.Error("core disagrees with interpreter")
	}
	if core.ReadMem(0x1000) != 4950 {
		t.Errorf("mem[0x1000] = %d, want 4950", core.ReadMem(0x1000))
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"unsafe", "nda-p", "stt", "dom"} {
		if _, err := sim.ParseScheme(name); err != nil {
			t.Errorf("ParseScheme(%q): %v", name, err)
		}
	}
	if _, err := sim.ParseScheme("nope"); err == nil {
		t.Error("ParseScheme should reject unknown names")
	}
}

func TestRunMaxInsts(t *testing.T) {
	p := sim.MustAssemble("spin", "loop: jmp loop\nhalt")
	res, err := sim.Run(p, sim.Config{MaxInsts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts < 1000 {
		t.Errorf("committed %d, want >= 1000", res.Insts)
	}
}

func TestRunCycleLimitError(t *testing.T) {
	p := sim.MustAssemble("spin", "loop: jmp loop\nhalt")
	_, err := sim.Run(p, sim.Config{MaxCycles: 500})
	if err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Errorf("expected cycle-limit error, got %v", err)
	}
}

func TestCustomCoreConfig(t *testing.T) {
	p := sim.MustAssemble("quick", quickSource)
	cc := sim.DefaultCoreConfig()
	cc.ROBSize = 32
	cc.IQSize = 16
	res, err := sim.Run(p, sim.Config{Core: &cc})
	if err != nil {
		t.Fatal(err)
	}
	// A smaller window can only slow things down.
	base, err := sim.Run(p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < base.Cycles {
		t.Errorf("small window (%d cycles) beat the default (%d)", res.Cycles, base.Cycles)
	}
}

func TestBuilderAPI(t *testing.T) {
	b := sim.NewBuilder("api")
	b.LoadI(1, 7)
	b.MulI(2, 1, 6)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Interpret(p, 100)
	if st.Regs[2] != 42 {
		t.Errorf("r2 = %d, want 42", st.Regs[2])
	}
}

func TestTable1Defaults(t *testing.T) {
	cfg := sim.DefaultCoreConfig()
	// Pin the paper's Table 1 values.
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"decode width", cfg.DecodeWidth, 5},
		{"issue width", cfg.IssueWidth, 8},
		{"commit width", cfg.CommitWidth, 8},
		{"IQ", cfg.IQSize, 160},
		{"ROB", cfg.ROBSize, 352},
		{"LQ", cfg.LQSize, 128},
		{"SQ", cfg.SQSize, 72},
		{"predictor entries", cfg.Stride.Entries, 1024},
		{"predictor ways", cfg.Stride.Ways, 8},
		{"L1D size", cfg.Memory.L1D.SizeBytes, 48 << 10},
		{"L1D ways", cfg.Memory.L1D.Ways, 12},
		{"L1 MSHRs", cfg.Memory.L1MSHRs, 16},
		{"L2 size", cfg.Memory.L2.SizeBytes, 2 << 20},
		{"L2 ways", cfg.Memory.L2.Ways, 8},
		{"L3 size", cfg.Memory.L3.SizeBytes, 16 << 20},
		{"L3 ways", cfg.Memory.L3.Ways, 16},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Table 1)", c.name, c.got, c.want)
		}
	}
	if cfg.Memory.L1D.Latency != 5 || cfg.Memory.L2.Latency != 15 || cfg.Memory.L3.Latency != 40 {
		t.Error("cache latencies deviate from Table 1")
	}
}
