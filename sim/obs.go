package sim

import (
	"io"

	"doppelganger/internal/obs"
)

// Observability re-exports: the sink and metrics types accepted by the
// WithTracer and WithMetrics run options. See internal/obs for the full
// sink toolbox.

// TraceSink receives simulator trace events; implementations must be cheap
// (Emit is called from the simulated pipeline's inner loop).
type TraceSink = obs.TraceSink

// TraceEvent is one typed simulator event.
type TraceEvent = obs.Event

// TraceKind discriminates trace events.
type TraceKind = obs.Kind

// Trace event kinds.
const (
	TraceLoadIssue      = obs.KindLoadIssue
	TraceLoadPropagate  = obs.KindLoadPropagate
	TraceDoppIssue      = obs.KindDoppIssue
	TraceDoppVerify     = obs.KindDoppVerify
	TraceDoppMispredict = obs.KindDoppMispredict
	TraceTaintSet       = obs.KindTaintSet
	TraceShadowOpen     = obs.KindShadowOpen
	TraceShadowClose    = obs.KindShadowClose
	TraceCacheAccess    = obs.KindCacheAccess
	TraceBranchSquash   = obs.KindBranchSquash
)

// JSONLSink writes events as JSON Lines; RingSink keeps the most recent
// events in memory; CountingSink tallies per kind; FilterSink selects by
// kind and cycle window; TextSink renders human-readable lines.
type (
	JSONLSink    = obs.JSONLSink
	RingSink     = obs.RingSink
	CountingSink = obs.CountingSink
	FilterSink   = obs.FilterSink
	TextSink     = obs.TextSink
)

// NewJSONLSink returns a sink writing one JSON object per event to w.
// Call Flush (or Close) when the run finishes; RunContext flushes the
// attached sink automatically.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewRingSink returns a sink retaining the last capacity events.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewTextSink returns a sink writing human-readable trace lines to w.
func NewTextSink(w io.Writer) *TextSink { return obs.NewTextSink(w) }

// MultiSink fans events out to several sinks.
func MultiSink(sinks ...TraceSink) TraceSink { return obs.Multi(sinks...) }

// Metrics is a process-wide metrics registry (counters, gauges and
// fixed-bucket histograms) with Prometheus text exposition via
// WritePrometheus. Safe for concurrent use and shareable across runs.
type Metrics = obs.Metrics

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }
