// Package sim is the public API of the doppelganger simulator: it composes
// the out-of-order core, the memory hierarchy, the secure speculation
// schemes (NDA-P, STT, Delay-on-Miss) and the doppelganger-load mechanism
// from the paper "Doppelganger Loads: A Safe, Complexity-Effective
// Optimization for Secure Speculation Schemes" (ISCA 2023).
//
// Typical use:
//
//	p := sim.MustAssemble("demo", src)
//	res, err := sim.Run(p, sim.Config{Scheme: sim.DoM, AddressPrediction: true})
//	fmt.Println(res.IPC, res.Coverage)
package sim

import (
	"context"

	"doppelganger/internal/pipeline"
	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// Scheme selects the secure speculation scheme; see the constants below.
type Scheme = secure.Scheme

// The available schemes.
const (
	// Unsafe is the unprotected out-of-order baseline.
	Unsafe = secure.Unsafe
	// NDAP is Non-speculative Data Access with permissive propagation.
	NDAP = secure.NDAP
	// STT is Speculative Taint Tracking.
	STT = secure.STT
	// DoM is Delay-on-Miss.
	DoM = secure.DoM
	// NDAS is NDA with strict propagation (extension beyond the paper's
	// evaluation).
	NDAS = secure.NDAS
	// STTSpectre is STT under the Spectre threat model (extension).
	STTSpectre = secure.STTSpectre
	// Cleanup is the undo-based scheme: speculate like Unsafe, roll the
	// cache hierarchy back on squash (extension; CleanupSpec-style).
	Cleanup = secure.Cleanup
)

// ParseScheme maps a scheme name ("unsafe", "nda-p", "stt", "dom") to its
// Scheme value.
func ParseScheme(name string) (Scheme, error) { return secure.ParseScheme(name) }

// Schemes lists the paper's evaluated schemes in evaluation order.
func Schemes() []Scheme { return secure.Schemes() }

// AllSchemes additionally includes this reproduction's extension variants
// (nda-s, stt-spectre).
func AllSchemes() []Scheme { return secure.AllSchemes() }

// Program is an executable program image (instructions plus initial state).
type Program = program.Program

// Builder constructs programs imperatively; see NewBuilder.
type Builder = program.Builder

// SecretRegion is a byte range of data memory labeled as holding secrets
// (Program.Secrets, Builder.Secret). The contract oracle seeds its taint
// tracking from these labels; execution is unaffected.
type SecretRegion = program.Region

// TaintState is the result of taint-tracking architectural execution; see
// InterpretTainted.
type TaintState = program.TaintState

// ArchState is the architectural machine state produced by Interpret and by
// a finished Core.
type ArchState = program.ArchState

// Core is the underlying cycle-level machine, exposed for advanced uses
// (custom stepping, invalidation injection, predictor inspection).
type Core = pipeline.Core

// CoreConfig holds the full microarchitectural configuration (Table 1 of
// the paper by default; see DefaultCoreConfig).
type CoreConfig = pipeline.Config

// Stats are the raw event counters collected by a run.
type Stats = pipeline.Stats

// MemoryStats are the per-level cache access counts of a run.
type MemoryStats = pipeline.MemoryStats

// NewBuilder returns a program builder.
func NewBuilder(name string) *Builder { return program.NewBuilder(name) }

// Assemble parses textual assembly into a Program.
func Assemble(name, src string) (*Program, error) { return program.Assemble(name, src) }

// MustAssemble is Assemble that panics on error.
func MustAssemble(name, src string) *Program { return program.MustAssemble(name, src) }

// Interpret executes the program functionally (no microarchitecture) for at
// most maxInsts instructions and returns the architectural state. It is the
// reference oracle the pipeline is tested against.
func Interpret(p *Program, maxInsts uint64) *ArchState { return program.Run(p, maxInsts) }

// InterpretTainted executes the program functionally while tracking secret
// taint from its Secrets labels. The arch observer's digest (PubChecksum)
// and the constant-time diagnosis both come from here; sim.Observe runs it
// automatically.
func InterpretTainted(p *Program, maxInsts uint64) *TaintState {
	return program.RunTainted(p, maxInsts)
}

// DefaultCoreConfig returns the paper's Table 1 configuration.
func DefaultCoreConfig() CoreConfig { return pipeline.DefaultConfig() }

// Predictor and branch-predictor kind re-exports for Config.Core overrides.
const (
	// PredictorStride is the paper's PC-stride table.
	PredictorStride = pipeline.PredictorStride
	// PredictorContext is the Markov address predictor (extension).
	PredictorContext = pipeline.PredictorContext
	// PredictorHybrid tries stride first, then context (extension).
	PredictorHybrid = pipeline.PredictorHybrid
	// BranchBimodal is the default direction predictor.
	BranchBimodal = pipeline.BranchBimodal
	// BranchGShare is the history-based direction predictor (extension).
	BranchGShare = pipeline.BranchGShare
)

// Config selects what to simulate.
type Config struct {
	// Scheme is the secure speculation scheme (default Unsafe).
	Scheme Scheme
	// AddressPrediction enables doppelganger loads.
	AddressPrediction bool
	// MaxInsts bounds committed instructions (0 = run to Halt).
	MaxInsts uint64
	// MaxCycles bounds simulated cycles (0 = a generous default); hitting
	// it is reported as an error since it indicates a stuck machine or a
	// program that never halts.
	MaxCycles uint64
	// Core overrides the microarchitectural configuration; nil uses
	// DefaultCoreConfig with Scheme and AddressPrediction applied.
	Core *CoreConfig
}

// DefaultMaxCycles bounds runs that do not specify their own cycle budget.
const DefaultMaxCycles = 2_000_000_000

// Result summarises a run.
type Result struct {
	Program string
	Scheme  Scheme
	AP      bool

	Cycles uint64
	Insts  uint64
	IPC    float64

	// Coverage is the fraction of committed loads correctly address
	// predicted; Accuracy is correct predictions over predictions made
	// (Figure 7 definitions).
	Coverage float64
	Accuracy float64

	// Checksum digests the final architectural state (registers and
	// memory). Equal checksums across schemes certify that a secure
	// scheme preserved the baseline's architectural behaviour, and they
	// let cached or remotely-computed results be verified without
	// re-simulating.
	Checksum uint64

	Stats  Stats
	Memory MemoryStats
}

// NewCore builds a core for the program under the given configuration
// without running it.
func NewCore(p *Program, cfg Config) (*Core, error) {
	cc := cfg.Core
	if cc == nil {
		d := pipeline.DefaultConfig()
		cc = &d
	}
	core := *cc
	core.Scheme = cfg.Scheme
	core.AddressPrediction = cfg.AddressPrediction
	return pipeline.New(core, p)
}

// Run simulates the program to completion under the configuration and
// returns the result summary. It is equivalent to RunContext with a
// background context and no options; use RunContext to attach tracing or
// metrics, or to make the run cancellable.
func Run(p *Program, cfg Config) (Result, error) {
	return RunContext(context.Background(), p, cfg)
}

// Summarize assembles a Result from a finished core.
func Summarize(p *Program, cfg Config, c *Core) Result {
	st := c.StatsSnapshot()
	return Result{
		Program:  p.Name,
		Scheme:   cfg.Scheme,
		AP:       cfg.AddressPrediction,
		Cycles:   st.Cycles,
		Insts:    st.Committed,
		IPC:      st.IPC(),
		Coverage: st.Coverage(),
		Accuracy: st.Accuracy(),
		Checksum: c.Checksum(),
		Stats:    st,
		Memory:   pipeline.SnapshotMemory(c.Hierarchy()),
	}
}
