package sim

import (
	"context"
	"fmt"

	"doppelganger/internal/checkpoint"
	"doppelganger/internal/isa"
	"doppelganger/internal/pipeline"
)

// Checkpoint is a serializable, versioned, checksum-verified snapshot of
// complete simulation state: architectural registers and memory, the cache
// hierarchy (tags, LRU, MSHRs), and every predictor table, plus the
// program it was taken of. Create one with Snapshot, or load one with
// ReadCheckpoint / DecodeCheckpoint; fork runs from it with
// RunFromCheckpoint.
type Checkpoint = checkpoint.Checkpoint

// CheckpointMeta is a checkpoint's provenance metadata.
type CheckpointMeta = checkpoint.Meta

// ReadCheckpoint loads and verifies a checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) { return checkpoint.ReadFile(path) }

// DecodeCheckpoint parses and verifies an encoded checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return checkpoint.Decode(data) }

// resolvedCoreConfig materialises the full core configuration a Config
// describes (the same resolution NewCore applies).
func resolvedCoreConfig(cfg Config) CoreConfig {
	cc := cfg.Core
	if cc == nil {
		d := pipeline.DefaultConfig()
		cc = &d
	}
	core := *cc
	core.Scheme = cfg.Scheme
	core.AddressPrediction = cfg.AddressPrediction
	return core
}

// Snapshot simulates the program under the configuration until
// warmupInsts instructions have committed, drains the pipeline to
// quiescence, and captures the complete simulation state as a checkpoint.
// The drain lets the in-flight window complete (a few more instructions
// may commit than requested; the checkpoint records the actual count in
// its Stats), so the snapshot carries no transient pipeline state.
//
// The captured architectural state is scheme-invariant — every scheme
// computes the same architectural results — so a checkpoint warmed under
// one scheme can seed runs under any other; the µarch tables (caches,
// predictors) reflect warmup under the snapshot configuration, which is
// the standard warm-start trade-off.
func Snapshot(p *Program, cfg Config, warmupInsts uint64) (*Checkpoint, error) {
	if warmupInsts == 0 {
		return nil, fmt.Errorf("sim: snapshot requires a positive warmup instruction count")
	}
	c, err := NewCore(p, cfg)
	if err != nil {
		return nil, err
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	if err := c.Run(warmupInsts, maxCycles); err != nil {
		return nil, fmt.Errorf("sim: warming %q under %v: %w", p.Name, cfg.Scheme, err)
	}
	if err := c.Drain(0); err != nil {
		return nil, fmt.Errorf("sim: %q under %v: %w", p.Name, cfg.Scheme, err)
	}
	st, err := c.CaptureState()
	if err != nil {
		return nil, fmt.Errorf("sim: %q under %v: %w", p.Name, cfg.Scheme, err)
	}
	meta := CheckpointMeta{
		ProgramName:  p.Name,
		ProgramEntry: p.Entry,
		Code:         append([]isa.Instruction(nil), p.Code...),
		WarmScheme:   cfg.Scheme.String(),
		WarmAP:       cfg.AddressPrediction,
		WarmupInsts:  warmupInsts,
		WarmConfig:   resolvedCoreConfig(cfg),
	}
	return checkpoint.New(meta, st)
}

// NewCoreFromCheckpoint builds a core that continues from the checkpoint
// under the given configuration, without running it. The configuration's
// Scheme and AddressPrediction may differ from the checkpoint's warm
// configuration — that is how one warmup seeds every scheme×AP cell —
// but structural parameters (cache geometry, predictor tables) must
// match the captured state. Passing a nil program uses the checkpoint's
// embedded one; a non-nil program must be code-compatible.
func NewCoreFromCheckpoint(p *Program, cfg Config, ck *Checkpoint) (*Core, *Program, error) {
	if ck == nil {
		return nil, nil, fmt.Errorf("sim: nil checkpoint")
	}
	if p == nil {
		p = ck.Program()
	} else if err := ck.CompatibleWith(p); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	c, err := pipeline.NewFromState(resolvedCoreConfig(cfg), p, ck.State())
	if err != nil {
		return nil, nil, err
	}
	return c, p, nil
}

// RunFromCheckpoint restores the checkpoint under the configuration and
// simulates to completion, honouring context cancellation and the same
// run options as RunContext. Config.MaxInsts bounds *total* committed
// instructions including the checkpoint's warmup (the restored core's
// commit counter carries over), so a bounded straight-line run and the
// equivalent warm-started run stop at the same architectural point and
// produce identical Result.Checksums.
//
// Passing a nil program runs the checkpoint's embedded program.
func RunFromCheckpoint(ctx context.Context, p *Program, cfg Config, ck *Checkpoint, opts ...RunOption) (Result, error) {
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	c, p, err := NewCoreFromCheckpoint(p, cfg, ck)
	if err != nil {
		return Result{}, err
	}
	if o.sink != nil {
		c.SetTraceSink(o.sink)
	}
	if o.winOn {
		c.SetCycleWindow(o.winFrom, o.winTo)
	}
	if o.metrics != nil {
		c.SetMetrics(o.metrics)
	}
	if needsTraces(o.observe) {
		// Observation traces cover the post-restore window only; both
		// halves of a differential pair restore from checkpoints taken at
		// the same architectural point, so their traces stay comparable.
		c.EnableObsTraces()
	}
	maxCycles := o.maxCycles
	if maxCycles == 0 {
		maxCycles = cfg.MaxCycles
	}
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	err = runCore(ctx, c, cfg.MaxInsts, maxCycles)
	c.FlushTrace()
	c.FlushMetrics()
	if err != nil {
		return Result{}, fmt.Errorf("sim: %q under %v: %w", p.Name, cfg.Scheme, err)
	}
	res := Summarize(p, cfg, c)
	if o.digest != nil {
		*o.digest = c.MicroDigest()
	}
	for _, r := range o.observe {
		r.capture(c, p)
	}
	if o.metrics != nil {
		RecordMetrics(o.metrics, res)
	}
	if f, ok := o.sink.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			return res, fmt.Errorf("sim: flushing trace sink: %w", err)
		}
	}
	return res, nil
}
