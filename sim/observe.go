package sim

import (
	"fmt"
	"sort"
	"strings"

	"doppelganger/internal/pipeline"
	"doppelganger/internal/program"
)

// ObserverMode selects *what* an attacker-observer can see. Modes are
// cumulative, forming the observer axis of the hardware-software-contract
// lattice (Guarnieri et al.): a pc observer sees everything the arch
// observer does plus the control-flow trace; a ct observer additionally
// sees memory-address traces and all cache/MSHR/DRAM timing state.
type ObserverMode uint8

const (
	// ObsArch sees final architectural state an attacker could read
	// through the ISA: registers and memory, minus anything the program
	// labeled (or derived from) secret.
	ObsArch ObserverMode = iota
	// ObsPC additionally sees the control-flow trace: branch outcomes and
	// fetch PCs, plus branch-predictor state.
	ObsPC
	// ObsCT additionally sees the constant-time observables: load/store
	// address traces, cache tag/LRU contents at every level, the MSHR
	// timeline, DRAM traffic and cycle counts, plus the address-predictor
	// tables.
	ObsCT
)

// String returns the mode's contract-notation name.
func (m ObserverMode) String() string {
	switch m {
	case ObsArch:
		return "arch"
	case ObsPC:
		return "pc"
	case ObsCT:
		return "ct"
	default:
		return fmt.Sprintf("observer(%d)", uint8(m))
	}
}

// ExecMode selects *when* the observer watches: only committed
// (architecturally retired) execution, or everything the machine performs
// including transient wrong-path work.
type ExecMode uint8

const (
	// ExecSeq observes committed execution only — the sequential contract.
	ExecSeq ExecMode = iota
	// ExecSpec observes speculative execution too: wrong-path fetches and
	// every performed cache-hierarchy access, transient or not.
	ExecSpec
)

// String returns the mode's contract-notation name.
func (e ExecMode) String() string {
	switch e {
	case ExecSeq:
		return "seq"
	case ExecSpec:
		return "spec"
	default:
		return fmt.Sprintf("exec(%d)", uint8(e))
	}
}

// Clause is one point of the contract lattice: an observer mode paired
// with an execution mode. Clauses are ordered by Covers; the strongest
// clause is CTSpec (see everything, always), the weakest ArchSeq.
type Clause struct {
	Observer ObserverMode
	Exec     ExecMode
}

// The six clauses of the lattice, weakest to strongest along each axis.
// ArchSpec is distinct in the lattice but observes the same state as
// ArchSeq on this machine: a squash fully restores architectural state, so
// transient execution never changes what an arch observer can read.
var (
	ArchSeq  = Clause{ObsArch, ExecSeq}
	ArchSpec = Clause{ObsArch, ExecSpec}
	PCSeq    = Clause{ObsPC, ExecSeq}
	PCSpec   = Clause{ObsPC, ExecSpec}
	CTSeq    = Clause{ObsCT, ExecSeq}
	CTSpec   = Clause{ObsCT, ExecSpec}
)

// Lattice returns all six clauses in canonical order: weakest observer
// first, seq before spec.
func Lattice() []Clause {
	return []Clause{ArchSeq, ArchSpec, PCSeq, PCSpec, CTSeq, CTSpec}
}

// String renders the clause in contract notation, e.g. "ct-spec".
func (c Clause) String() string {
	return c.Observer.String() + "-" + c.Exec.String()
}

// ParseClause parses contract notation ("arch-seq", "ct-spec", ...).
func ParseClause(s string) (Clause, error) {
	for _, c := range Lattice() {
		if c.String() == s {
			return c, nil
		}
	}
	return Clause{}, fmt.Errorf("sim: unknown contract clause %q", s)
}

// Covers reports the lattice order: c sees everything d sees (c ⊒ d).
// Both axes are cumulative, so c covers d when its observer and execution
// modes are each at least d's. Clauses with incomparable axes (e.g. ct-seq
// and pc-spec) cover each other in neither direction.
func (c Clause) Covers(d Clause) bool {
	return c.Observer >= d.Observer && c.Exec >= d.Exec
}

// valid reports whether the clause is one of the six lattice points.
func (c Clause) valid() bool {
	return c.Observer <= ObsCT && c.Exec <= ExecSpec
}

// component ties one observable digest to the weakest clause that sees it.
type component struct {
	name   string
	clause Clause
}

// components lists every observable, grouped by owning clause. A clause
// sees the union of the components owned by every clause it covers; CTSpec
// sees all of them, and its nine µarch components are exactly the legacy
// MicroDigest.
var components = []component{
	{"arch-public", ArchSeq},
	{"ctrl-trace-commit", PCSeq},
	{"branch-predictor", PCSeq},
	{"ctrl-trace-spec", PCSpec},
	{"addr-trace-commit", CTSeq},
	{"stride-predictor", CTSeq},
	{"context-predictor", CTSeq},
	{"cycles", CTSpec},
	{"L1", CTSpec},
	{"L2", CTSpec},
	{"L3", CTSpec},
	{"mshr-timeline", CTSpec},
	{"traffic", CTSpec},
	{"addr-trace-spec", CTSpec},
}

// VisibleComponents returns the names of the observables the clause sees,
// in reporting order.
func (c Clause) VisibleComponents() []string {
	var out []string
	for _, cm := range components {
		if c.Covers(cm.clause) {
			out = append(out, cm.name)
		}
	}
	return out
}

// Observation is what a contract observer saw during one run: a digest per
// observable component, with per-clause visibility. Fill one by passing
// Observe(&obs, clauses...) to RunContext or RunFromCheckpoint; then Diff
// two observations of a differential pair under any observed clause.
type Observation struct {
	// PubArch digests the final architectural state minus secrets: the
	// taint-tracking reference interpreter seeds taint from the program's
	// Secrets labels, propagates it through data flow, and excludes every
	// secret-derived register and memory word. [arch-seq]
	PubArch uint64 `json:"arch_public"`
	// AddrSeq digests the committed load/store address trace in commit
	// order. [ct-seq]
	AddrSeq uint64 `json:"addr_trace_commit"`
	// CtrlSeq digests the committed branch trace: pc, direction, target.
	// [pc-seq]
	CtrlSeq uint64 `json:"ctrl_trace_commit"`
	// AddrSpec digests every performed cache-hierarchy access — demand,
	// doppelganger, prefetch, writeback — including transient ones.
	// [ct-spec]
	AddrSpec uint64 `json:"addr_trace_spec"`
	// CtrlSpec digests the full fetch-PC stream, wrong paths included.
	// [pc-spec]
	CtrlSpec uint64 `json:"ctrl_trace_spec"`
	// Micro is the legacy µarch digest: cycles, per-level cache
	// fingerprints, MSHR timeline, traffic, predictor tables. Its
	// predictor components are seq-visible (they train at commit only);
	// the rest is ct-spec.
	Micro MicroDigest `json:"micro"`
	// SecretControlFlow and SecretAddressing report the reference
	// interpreter's constant-time diagnosis: the program's *architectural*
	// control flow (resp. memory addressing) depends on labeled secrets.
	// A program with either set leaks under every observer stronger than
	// arch — by its own doing, not the hardware's.
	SecretControlFlow bool `json:"secret_control_flow,omitempty"`
	SecretAddressing  bool `json:"secret_addressing,omitempty"`
	// Cover summarises where in the hierarchy the run left state: one
	// occupied-set bitmap per cache level. It feeds campaign-mode coverage
	// maps and is deliberately absent from the components list — it is
	// fuzzing feedback, not an attacker observable, so it never
	// participates in Diff.
	Cover CoverMap `json:"cover"`

	clauses []Clause
}

// CoverMap is the per-level cache-footprint summary of an Observation: bit
// (s mod 64) of a level's word is set when cache set s held at least one
// valid line at the end of the run.
type CoverMap struct {
	L1 uint64 `json:"l1,omitempty"`
	L2 uint64 `json:"l2,omitempty"`
	L3 uint64 `json:"l3,omitempty"`
}

// Clauses returns the canonical (deduplicated, sorted, covered-clauses
// implied) set of clauses this observation was requested with.
func (o *Observation) Clauses() []Clause {
	return append([]Clause(nil), o.clauses...)
}

// Observed reports whether the observation can answer Diff for the clause:
// some requested clause covers it.
func (o *Observation) Observed(c Clause) bool {
	for _, r := range o.clauses {
		if r.Covers(c) {
			return true
		}
	}
	return false
}

// value returns the digest of the named component.
func (o *Observation) value(name string) uint64 {
	switch name {
	case "arch-public":
		return o.PubArch
	case "ctrl-trace-commit":
		return o.CtrlSeq
	case "branch-predictor":
		return o.Micro.Branch
	case "ctrl-trace-spec":
		return o.CtrlSpec
	case "addr-trace-commit":
		return o.AddrSeq
	case "addr-trace-spec":
		return o.AddrSpec
	case "stride-predictor":
		return o.Micro.Stride
	case "context-predictor":
		return o.Micro.Context
	case "cycles":
		return o.Micro.Cycles
	case "L1":
		return o.Micro.L1
	case "L2":
		return o.Micro.L2
	case "L3":
		return o.Micro.L3
	case "mshr-timeline":
		return o.Micro.MSHR
	case "traffic":
		return o.Micro.Traffic
	default:
		panic(fmt.Sprintf("sim: unknown observation component %q", name))
	}
}

// Diff compares two observations under the given clause and returns the
// names of the visible components in which they differ, in reporting
// order; empty means the runs are indistinguishable to that observer. It
// panics when the clause was not observed (requesting a clause observes
// everything it covers, so an Observe(o, CTSpec) observation can Diff
// under all six).
func (o *Observation) Diff(p *Observation, c Clause) []string {
	if !o.Observed(c) || !p.Observed(c) {
		panic(fmt.Sprintf("sim: Diff under unobserved clause %v (observed: %v)", c, o.clauses))
	}
	var out []string
	for _, cm := range components {
		if c.Covers(cm.clause) && o.value(cm.name) != p.value(cm.name) {
			out = append(out, cm.name)
		}
	}
	return out
}

// DiffAll compares under the strongest observed clause — every observed
// component.
func (o *Observation) DiffAll(p *Observation) []string {
	strongest := ArchSeq
	for _, c := range o.clauses {
		if c.Covers(strongest) {
			strongest = c
		}
	}
	return o.Diff(p, strongest)
}

// canonClauses deduplicates and sorts a clause set into canonical lattice
// order. An empty request means the full lattice (the top clause covers
// all six). Invalid clauses panic — they are programming errors, as with
// out-of-range registers in the program builder.
func canonClauses(cs []Clause) []Clause {
	if len(cs) == 0 {
		return []Clause{CTSpec}
	}
	seen := map[Clause]bool{}
	var out []Clause
	for _, c := range cs {
		if !c.valid() {
			panic(fmt.Sprintf("sim: invalid contract clause %+v", c))
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Observer != out[j].Observer {
			return out[i].Observer < out[j].Observer
		}
		return out[i].Exec < out[j].Exec
	})
	return out
}

// needsTraces reports whether any requested clause sees a trace component
// (anything beyond the arch observer), so the core must capture the
// rolling trace digests during the run.
func needsTraces(reqs []obsRequest) bool {
	for _, r := range reqs {
		for _, c := range r.clauses {
			if c.Observer != ObsArch {
				return true
			}
		}
	}
	return false
}

// obsRequest is one Observe option's target and clause set.
type obsRequest struct {
	out     *Observation
	clauses []Clause
}

// capture fills the observation from a finished core. The committed
// instruction count drives the taint-tracking reference interpreter, which
// replays architectural execution exactly (commit order is architectural
// order), so warm-started and straight-line runs observe identically.
func (r obsRequest) capture(c *pipeline.Core, p *Program) {
	o := r.out
	o.clauses = r.clauses
	o.Micro = c.MicroDigest()
	o.AddrSeq, o.CtrlSeq, o.AddrSpec, o.CtrlSpec = c.ObsTraces()
	ts := program.RunTainted(p, c.Stats.Committed)
	o.PubArch = ts.PubChecksum()
	o.SecretControlFlow = ts.BranchOnSecret
	o.SecretAddressing = ts.AddrOnSecret
	h := c.Hierarchy()
	o.Cover = CoverMap{
		L1: h.L1D.OccupiedSets(),
		L2: h.L2.OccupiedSets(),
		L3: h.L3.OccupiedSets(),
	}
}

// CaptureObservation fills *out from a finished core, exactly as Observe
// does at the end of RunContext. It exists for executors that drive cores
// directly (the engine worker pool): call ClausesNeedTraces before the run
// to know whether Core.EnableObsTraces is required, run to completion, then
// capture.
func CaptureObservation(out *Observation, c *Core, p *Program, clauses ...Clause) {
	obsRequest{out: out, clauses: canonClauses(clauses)}.capture(c, p)
}

// CanonicalClauses returns the canonical form of a clause set — validated,
// deduplicated and sorted in lattice order, exactly the set an Observation
// requested with it would report from Clauses. An empty set canonises to
// the full lattice (CTSpec, the top clause).
func CanonicalClauses(cs []Clause) []Clause {
	return canonClauses(cs)
}

// ClausesNeedTraces reports whether observing the clause set requires the
// core's rolling trace digests (Core.EnableObsTraces before the run). An
// empty set means the full lattice, which does.
func ClausesNeedTraces(cs []Clause) bool {
	return needsTraces([]obsRequest{{clauses: canonClauses(cs)}})
}

// Observe fills *out with what a contract observer saw, for each requested
// clause. Passing no clauses observes the full lattice (equivalent to
// passing CTSpec, the top clause, which covers all six). The option
// composes: repeating a clause or reordering the clause list yields an
// identical observation, and several Observe options may be attached to
// one run.
//
// Observe replaces WithMicroArchDigest as the leakage oracle's hook: the
// legacy digest is exactly the nine µarch components of the full-lattice
// observation (Observation.Micro).
func Observe(out *Observation, clauses ...Clause) RunOption {
	canon := canonClauses(clauses)
	return func(o *runOpts) {
		o.observe = append(o.observe, obsRequest{out: out, clauses: canon})
	}
}

// ContractTable renders per-clause verdict strings (produced elsewhere)
// under the canonical lattice order — a small formatting helper shared by
// cmd/leakcheck and doppeld.
func ContractTable(verdicts map[Clause]string) string {
	var sb strings.Builder
	for i, c := range Lattice() {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%s", c, verdicts[c])
	}
	return sb.String()
}
