package sim_test

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// TestClauseLatticeOrdering pins the partial order: both axes cumulative,
// CTSpec top, ArchSeq bottom, ct-seq and pc-spec incomparable.
func TestClauseLatticeOrdering(t *testing.T) {
	all := sim.Lattice()
	if len(all) != 6 {
		t.Fatalf("lattice has %d clauses, want 6", len(all))
	}
	for _, c := range all {
		if !c.Covers(c) {
			t.Errorf("%v does not cover itself", c)
		}
		if !sim.CTSpec.Covers(c) {
			t.Errorf("top clause ct-spec does not cover %v", c)
		}
		if !c.Covers(sim.ArchSeq) {
			t.Errorf("%v does not cover bottom clause arch-seq", c)
		}
	}
	covers := []struct {
		hi, lo sim.Clause
	}{
		{sim.CTSpec, sim.ArchSeq},
		{sim.CTSpec, sim.CTSeq},
		{sim.CTSpec, sim.PCSpec},
		{sim.CTSeq, sim.PCSeq},
		{sim.PCSpec, sim.PCSeq},
		{sim.PCSeq, sim.ArchSeq},
		{sim.ArchSpec, sim.ArchSeq},
	}
	for _, tc := range covers {
		if !tc.hi.Covers(tc.lo) {
			t.Errorf("%v should cover %v", tc.hi, tc.lo)
		}
		if tc.hi != tc.lo && tc.lo.Covers(tc.hi) {
			t.Errorf("%v should not cover %v (antisymmetry)", tc.lo, tc.hi)
		}
	}
	// Incomparable pairs: neither covers the other.
	for _, pair := range [][2]sim.Clause{
		{sim.CTSeq, sim.PCSpec},
		{sim.CTSeq, sim.ArchSpec},
		{sim.PCSeq, sim.ArchSpec},
	} {
		if pair[0].Covers(pair[1]) || pair[1].Covers(pair[0]) {
			t.Errorf("%v and %v should be incomparable", pair[0], pair[1])
		}
	}
}

func TestClauseStringParseRoundTrip(t *testing.T) {
	want := []string{"arch-seq", "arch-spec", "pc-seq", "pc-spec", "ct-seq", "ct-spec"}
	for i, c := range sim.Lattice() {
		if c.String() != want[i] {
			t.Errorf("Lattice()[%d] = %q, want %q", i, c, want[i])
		}
		got, err := sim.ParseClause(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClause(%q) = %v, %v", c, got, err)
		}
	}
	if _, err := sim.ParseClause("ct-transient"); err == nil {
		t.Error("ParseClause accepted an unknown clause")
	}
}

// TestClauseVisibilityMonotone: a covering clause sees a superset of
// components, and the top clause sees all of them.
func TestClauseVisibilityMonotone(t *testing.T) {
	vis := map[sim.Clause]map[string]bool{}
	for _, c := range sim.Lattice() {
		m := map[string]bool{}
		for _, n := range c.VisibleComponents() {
			m[n] = true
		}
		vis[c] = m
	}
	for _, hi := range sim.Lattice() {
		for _, lo := range sim.Lattice() {
			if !hi.Covers(lo) {
				continue
			}
			for n := range vis[lo] {
				if !vis[hi][n] {
					t.Errorf("%v covers %v but does not see its component %s", hi, lo, n)
				}
			}
		}
	}
	if got := len(vis[sim.CTSpec]); got != 14 {
		t.Errorf("top clause sees %d components, want 14", got)
	}
	if got := vis[sim.ArchSeq]; len(got) != 1 || !got["arch-public"] {
		t.Errorf("arch-seq sees %v, want only arch-public", got)
	}
	// The rollback argument: transient execution cannot change committed
	// architectural state, so arch-spec observes exactly what arch-seq does.
	if !reflect.DeepEqual(sim.ArchSpec.VisibleComponents(), sim.ArchSeq.VisibleComponents()) {
		t.Error("arch-spec and arch-seq must see identical components")
	}
}

func observeRun(t *testing.T, opts ...sim.RunOption) sim.Result {
	t.Helper()
	w, _ := workload.ByName("stream")
	p := w.Build(workload.ScaleTest)
	res, err := sim.RunContext(context.Background(), p,
		sim.Config{Scheme: sim.DoM, AddressPrediction: true}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObserveIdempotentCommutative: repeating a clause, reordering the
// clause list, and attaching several Observe options to one run all
// produce identical observations.
func TestObserveIdempotentCommutative(t *testing.T) {
	var a, b, c, d sim.Observation
	observeRun(t,
		sim.Observe(&a, sim.CTSpec, sim.ArchSeq),
		sim.Observe(&b, sim.ArchSeq, sim.CTSpec, sim.CTSpec, sim.ArchSeq),
		sim.Observe(&c),
	)
	observeRun(t, sim.Observe(&d, sim.CTSpec))

	if !reflect.DeepEqual(a.Clauses(), b.Clauses()) {
		t.Errorf("duplicate clauses changed the canonical set: %v vs %v", a.Clauses(), b.Clauses())
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("idempotence: duplicated+reordered clause list changed the observation")
	}
	if a.Micro != c.Micro || a.AddrSpec != c.AddrSpec || a.PubArch != c.PubArch {
		t.Error("empty clause list (full lattice) differs from explicit request")
	}
	// Determinism across runs: a separate run observes identically.
	if d.Micro != a.Micro || d.AddrSeq != a.AddrSeq || d.CtrlSpec != a.CtrlSpec {
		t.Error("identical runs produced different observations")
	}
	if len(a.DiffAll(&d)) != 0 {
		t.Errorf("identical runs diff: %v", a.DiffAll(&d))
	}
}

// TestObserveClauseGating: an arch-only observation answers arch diffs but
// panics on unobserved clauses; requesting a clause observes everything it
// covers.
func TestObserveClauseGating(t *testing.T) {
	var arch, ctseq sim.Observation
	observeRun(t, sim.Observe(&arch, sim.ArchSeq), sim.Observe(&ctseq, sim.CTSeq))

	if !arch.Observed(sim.ArchSeq) || arch.Observed(sim.CTSpec) {
		t.Error("arch-seq observation has wrong Observed set")
	}
	if !ctseq.Observed(sim.PCSeq) || !ctseq.Observed(sim.ArchSeq) {
		t.Error("ct-seq must observe the clauses it covers")
	}
	if ctseq.Observed(sim.PCSpec) || ctseq.Observed(sim.CTSpec) {
		t.Error("ct-seq must not observe spec clauses")
	}
	var arch2 sim.Observation
	observeRun(t, sim.Observe(&arch2, sim.ArchSeq))
	if d := arch.Diff(&arch2, sim.ArchSeq); len(d) != 0 {
		t.Errorf("identical arch runs diff: %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Diff under an unobserved clause did not panic")
		}
	}()
	arch.Diff(&arch2, sim.CTSpec)
}

// TestObserveDoesNotPerturb: attaching Observe changes neither the
// architectural result nor the µarch digest of a run.
func TestObserveDoesNotPerturb(t *testing.T) {
	var d sim.MicroDigest
	plain := observeRun(t, sim.WithMicroArchDigest(&d))
	var o sim.Observation
	observed := observeRun(t, sim.Observe(&o))
	if plain.Checksum != observed.Checksum {
		t.Error("Observe changed the architectural checksum")
	}
	if d != o.Micro {
		t.Errorf("Observe changed the µarch digest:\n  plain    %+v\n  observed %+v", d, o.Micro)
	}
}

// TestDigestEquivalenceMatrix is the deprecation contract: across the full
// workload × scheme × ±AP matrix, WithMicroArchDigest and the full-lattice
// Observe composition capture checksum-identical µarch digests.
func TestDigestEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix digest equivalence skipped in -short mode")
	}
	names := workload.Names()
	schemes := sim.AllSchemes()
	if cells := len(names) * len(schemes) * 2; cells != 168 {
		t.Logf("matrix is %d cells (suite changed size; still proving all of them)", cells)
	}
	type cell struct {
		wl     string
		scheme sim.Scheme
		ap     bool
	}
	var cells []cell
	for _, name := range names {
		for _, sc := range schemes {
			for _, ap := range []bool{false, true} {
				cells = append(cells, cell{name, sc, ap})
			}
		}
	}
	work := make(chan cell)
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				cfg := sim.Config{Scheme: c.scheme, AddressPrediction: c.ap}
				p := testProgram(t, c.wl)
				var d sim.MicroDigest
				if _, err := sim.RunContext(context.Background(), p, cfg, sim.WithMicroArchDigest(&d)); err != nil {
					t.Errorf("%s/%v/ap=%v legacy: %v", c.wl, c.scheme, c.ap, err)
					continue
				}
				var o sim.Observation
				if _, err := sim.RunContext(context.Background(), p, cfg, sim.Observe(&o, sim.Lattice()...)); err != nil {
					t.Errorf("%s/%v/ap=%v observe: %v", c.wl, c.scheme, c.ap, err)
					continue
				}
				if d != o.Micro {
					t.Errorf("%s/%v/ap=%v: digest != observation:\n  legacy  %+v\n  observe %+v",
						c.wl, c.scheme, c.ap, d, o.Micro)
				}
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()
}
