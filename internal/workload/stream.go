package workload

import "doppelganger/internal/program"

func init() {
	register(Workload{
		Name: "stream",
		Spec: "libquantum",
		Description: "gated sequential gather: an index stream feeds line-stride " +
			"dependent loads over an L2/L3-resident region, each gating a rarely " +
			"taken branch — the schemes lose the dependent-load MLP and the stride " +
			"predictor recovers nearly all of it (the paper's standout AP win)",
		Build: buildStream,
	})
	register(Workload{
		Name: "stencil",
		Spec: "GemsFDTD/wrf",
		Description: "three-stream word-stride stencil over DRAM-sized arrays with a " +
			"per-iteration value check; DoM loses the long-latency MLP, AP restores it",
		Build: buildStencil,
	})
	register(Workload{
		Name: "matrix_blocked",
		Spec: "dense SPECfp (calculix-like)",
		Description: "blocked matrix kernel, cache-resident, perfectly strided and " +
			"predictable; all schemes near baseline, high coverage",
		Build: buildMatrixBlocked,
	})
}

// buildStream is the canonical AP-recovery kernel. Per iteration:
//
//	idx := I[i]                  // prefetched stream, L1 hit
//	x := D[idx*8]                // dependent gather; idx values are
//	                             // sequential, so the gather is line-stride
//	                             // (predictable) but data-flow dependent
//	if x >= 97 { ... }           // gate on the gathered value
//
// Under NDA-P/STT the gather cannot issue until idx propagates/untaints,
// which waits on older gates; under DoM its miss is delayed. All of that is
// exactly what a doppelganger hides, and the stride predictor covers the
// gather almost perfectly.
func buildStream(s Scale) *program.Program {
	iters := pick(s, 6000, 56000)
	const wrap = 1 << 18 // gather region: 262144 lines = 16 MiB, stays cold
	const (
		baseI = 0x40_0000
		baseD = 0x800_0000
	)
	const baseR = 0x1800_0000 // random-gather region (uncovered PC)
	b := program.NewBuilder("stream")
	r := newRNG(101)
	for i := 0; i < iters; i++ {
		b.InitMem(baseI+uint64(i)*8, int64(i%wrap)*8)
		b.InitMem(baseI+0x200_0000+uint64(i)*8, int64(r.intn(wrap))*8)
	}
	for i := 0; i < iters; i += 8 {
		b.InitMem(baseD+uint64(i%wrap)*64, int64(r.intn(100)))
	}
	const (
		pi   = 1
		end  = 2
		idx  = 3
		t    = 4
		x    = 5
		acc  = 6
		thr  = 7
		cnt  = 8
		m    = 9
		zero = 10
	)
	b.LoadI(pi, baseI)
	b.LoadI(end, baseI+int64(iters)*8)
	b.LoadI(acc, 0)
	b.LoadI(thr, 97)
	b.LoadI(cnt, 0)
	b.LoadI(zero, 0)
	loop := b.Here()
	b.Load(idx, pi, 0) // index stream: L1 via prefetch
	b.ShlI(t, idx, 3)
	b.AddI(t, t, baseD)
	b.Load(x, t, 0) // dependent gather: misses, stride-predictable
	// Second dependent gather from a shuffled index: same delays under the
	// schemes, but no stride for the predictor — half the suite-realistic
	// coverage the paper reports.
	b.Load(m, pi, 0x200_0000)
	b.ShlI(m, m, 3)
	b.AddI(m, m, baseR)
	b.Load(m, m, 0)
	b.Add(acc, acc, m)
	skip := b.NewLabel()
	b.Blt(x, thr, skip) // gate on the gathered value (rarely taken)
	b.Xor(acc, acc, x)
	b.Bind(skip)
	b.AddI(acc, acc, 1)
	b.AddI(cnt, cnt, 1)
	b.AddI(pi, pi, 8)
	b.Blt(pi, end, loop)
	b.Store(acc, end, 0)
	b.Halt()
	return b.MustBuild()
}

// buildStencil sums two source streams into a destination at word stride
// over DRAM-sized arrays, with a value check per iteration so shadows are
// load-gated. Seven of eight loads hit the open line; the eighth misses far
// down the hierarchy.
func buildStencil(s Scale) *program.Program {
	words := pick(s, 8000, 100000)
	const (
		baseA = 0x100_0000
		baseB = 0x1000_0000
		baseC = 0x1800_0000
	)
	b := program.NewBuilder("stencil")
	r := newRNG(1313)
	for i := 0; i < words; i += 8 {
		b.InitMem(baseA+uint64(i)*8, int64(r.intn(1000)))
	}
	const (
		pa  = 1
		pb  = 2
		pc  = 3
		cnt = 4
		lim = 5
		va  = 6
		vb  = 7
		vc  = 8
		acc = 9
		thr = 10
	)
	b.LoadI(pa, baseA)
	b.LoadI(pb, baseB)
	b.LoadI(pc, baseC)
	b.LoadI(cnt, 0)
	b.LoadI(lim, int64(words))
	b.LoadI(acc, 0)
	b.LoadI(thr, 995)
	loop := b.Here()
	b.Load(va, pa, 0)
	b.Load(vb, pb, 0)
	b.Load(vc, pa, 8) // forward neighbour
	b.Add(vb, va, vb)
	b.Add(vb, vb, vc)
	b.Store(vb, pc, 0)
	skip := b.NewLabel()
	b.Blt(va, thr, skip) // value check: gates younger iterations
	b.AddI(acc, acc, 1)
	b.Bind(skip)
	b.AddI(pa, pa, 8)
	b.AddI(pb, pb, 8)
	b.AddI(pc, pc, 8)
	b.AddI(cnt, cnt, 1)
	b.Blt(cnt, lim, loop)
	b.Store(acc, pc, 0)
	b.Halt()
	return b.MustBuild()
}

// buildMatrixBlocked is a matrix-product slice: for a band of rows of C,
// inner-product loops over A (unit stride) and B (column stride). Fully
// strided loads and counter branches: every scheme stays near baseline and
// the predictor covers both streams.
func buildMatrixBlocked(s Scale) *program.Program {
	const dim = 64
	rows := pick(s, 3, 12)
	const (
		baseA = 0x50_0000
		baseB = 0x60_0000
		baseC = 0x70_0000
	)
	b := program.NewBuilder("matrix_blocked")
	r := newRNG(202)
	for i := 0; i < dim*dim; i++ {
		b.InitMem(baseA+uint64(i)*8, int64(r.intn(16)))
		b.InitMem(baseB+uint64(i)*8, int64(r.intn(16)))
	}
	const (
		ri   = 1 // row counter
		rj   = 2 // column counter
		rk   = 3 // depth counter
		rdim = 4 // dim
		pA   = 5 // &A[i][k]
		pB   = 6 // &B[k][j]
		acc  = 7 // accumulator
		va   = 8
		vb   = 9
		pC   = 10 // &C[i][j]
		rowA = 11 // &A[i][0]
		rEnd = 12 // rows limit
	)
	b.LoadI(ri, 0)
	b.LoadI(rdim, dim)
	b.LoadI(rEnd, int64(rows))
	b.LoadI(pC, baseC)
	b.LoadI(rowA, baseA)
	iloop := b.Here()
	b.LoadI(rj, 0)
	jloop := b.Here()
	b.AddI(pA, rowA, 0)
	b.MulI(pB, rj, 8)
	b.AddI(pB, pB, baseB)
	b.LoadI(acc, 0)
	b.LoadI(rk, 0)
	kloop := b.Here()
	b.Load(va, pA, 0)
	b.Load(vb, pB, 0)
	b.Mul(va, va, vb)
	b.Add(acc, acc, va)
	b.AddI(pA, pA, 8)
	b.AddI(pB, pB, dim*8)
	b.AddI(rk, rk, 1)
	b.Blt(rk, rdim, kloop)
	b.Store(acc, pC, 0)
	b.AddI(pC, pC, 8)
	b.AddI(rj, rj, 1)
	b.Blt(rj, rdim, jloop)
	b.AddI(rowA, rowA, dim*8)
	b.AddI(ri, ri, 1)
	b.Blt(ri, rEnd, iloop)
	b.Halt()
	return b.MustBuild()
}
