package workload

import "doppelganger/internal/program"

func init() {
	register(Workload{
		Name: "pointer_chase",
		Spec: "mcf",
		Description: "linked-list walk in randomised order over an L3-resident arena " +
			"with 50/50 data-dependent branches; addresses are unpredictable, so " +
			"coverage stays near zero and AP cannot help",
		Build: buildPointerChase,
	})
	register(Workload{
		Name: "sparse_spmv",
		Spec: "sparse SPECfp (soplex-like)",
		Description: "CSR SpMV: strided index/value streams feed a random gather " +
			"x[col[j]] — the streams are covered by AP, the dependent gather is not, " +
			"recovering part of the lost MLP",
		Build: buildSpMV,
	})
	register(Workload{
		Name: "compile_ir",
		Spec: "gcc",
		Description: "IR-node walk (strided records) with operand lookups into a " +
			"symbol table via loaded indices and multiway branching; moderate " +
			"coverage and a solid AP speedup",
		Build: buildCompileIR,
	})
}

// buildPointerChase lays nodes out at random 64-byte slots in a large arena
// and walks next pointers. Every hop is a dependent load whose address is
// the previous load's value.
func buildPointerChase(s Scale) *program.Program {
	nodes := pick(s, 4000, 60000) // full: 60000*64B = 3.75 MiB arena
	hops := pick(s, 3500, 24000)
	const arena = 0x400_0000
	b := program.NewBuilder("pointer_chase")
	r := newRNG(303)
	order := r.perm(nodes)
	// node k occupies arena + order[k]*64: {next, payload}
	addrOf := func(k int) uint64 { return arena + uint64(order[k])*64 }
	for k := 0; k < nodes; k++ {
		next := addrOf((k + 1) % nodes)
		b.InitMem(addrOf(k), int64(next))
		b.InitMem(addrOf(k)+8, int64(r.intn(100)))
	}
	const sideWords = 1 << 16 // 512 KiB side table for payload-indexed gathers
	const baseSide = 0x480_0000
	const (
		p    = 1 // current node
		pay  = 2
		acc  = 3
		half = 4
		i    = 5
		lim  = 6
		t    = 7
		y    = 8
	)
	b.InitReg(p, int64(addrOf(0)))
	b.LoadI(half, 50)
	b.LoadI(acc, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(hops))
	loop := b.Here()
	b.Load(pay, p, 8) // payload
	// Side gather indexed by the (random) payload: dependent and
	// unpredictable. The baseline overlaps it with the chain miss; the
	// schemes cannot, and no doppelganger can stand in for it.
	b.MulI(t, pay, 1031)
	b.AndI(t, t, sideWords-1)
	b.ShlI(t, t, 3)
	b.AddI(t, t, baseSide)
	b.Load(y, t, 0)
	skip := b.NewLabel()
	b.Blt(pay, half, skip) // ~50/50: mispredicts and long shadows
	b.Add(acc, acc, y)
	b.Bind(skip)
	b.Load(p, p, 0) // next: dependent, address-unpredictable
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(acc, half, 0)
	b.Halt()
	return b.MustBuild()
}

// buildSpMV streams CSR col/val arrays (strided) and gathers x[col[j]]
// (dependent, pseudorandom). Row lengths are fixed to keep control flow
// predictable; the interesting dynamics are in the loads.
func buildSpMV(s Scale) *program.Program {
	rows := pick(s, 400, 3200)
	const nnzPerRow = 16
	xWords := pick(s, 1<<13, 1<<16) // full: 512 KiB x vector
	const (
		baseCol = 0x80_0000  // column indices
		baseVal = 0x100_0000 // matrix values
		baseX   = 0x180_0000 // dense vector
		baseY   = 0x200_0000 // result
	)
	b := program.NewBuilder("sparse_spmv")
	r := newRNG(404)
	nnz := rows * nnzPerRow
	for j := 0; j < nnz; j++ {
		col := r.intn(xWords)
		b.InitMem(baseCol+uint64(j)*8, int64(col))
		b.InitMem(baseVal+uint64(j)*8, int64(r.intn(9)+1))
	}
	// x entries default to zero except a sample, which is fine: timing
	// depends on addresses, not values.
	for k := 0; k < xWords; k += 64 {
		b.InitMem(baseX+uint64(k)*8, int64(r.intn(5)))
	}
	const (
		pcol = 1
		pval = 2
		py   = 3
		rrow = 4
		rlim = 5
		rk   = 6
		col  = 7
		val  = 8
		xv   = 9
		acc  = 10
		addr = 11
		knnz = 12
	)
	b.LoadI(pcol, baseCol)
	b.LoadI(pval, baseVal)
	b.LoadI(py, baseY)
	b.LoadI(rrow, 0)
	b.LoadI(rlim, int64(rows))
	b.LoadI(knnz, nnzPerRow)
	rowLoop := b.Here()
	b.LoadI(acc, 0)
	b.LoadI(rk, 0)
	innerLoop := b.Here()
	b.Load(col, pcol, 0) // strided: AP covers
	b.Load(val, pval, 0) // strided: AP covers
	b.ShlI(addr, col, 3)
	b.AddI(addr, addr, baseX)
	b.Load(xv, addr, 0) // dependent gather: AP cannot cover
	b.Mul(xv, xv, val)
	b.Add(acc, acc, xv)
	b.AddI(pcol, pcol, 8)
	b.AddI(pval, pval, 8)
	b.AddI(rk, rk, 1)
	b.Blt(rk, knnz, innerLoop)
	b.Store(acc, py, 0)
	// Gate each row on the accumulated (gathered) value: its
	// resolution waits for every gather in the row, casting long shadows
	// over the following rows.
	big := b.NewLabel()
	b.LoadI(rk, 1_000_000)
	b.Blt(acc, rk, big)
	b.AddI(py, py, 0)
	b.Bind(big)
	b.AddI(py, py, 8)
	b.AddI(rrow, rrow, 1)
	b.Blt(rrow, rlim, rowLoop)
	b.Halt()
	return b.MustBuild()
}

// buildCompileIR walks fixed-size IR records (stride 32B) over an
// L2-resident pool; each record's op field selects among branch paths and
// its operand field indexes a symbol table (dependent lookup in a smaller,
// warmer region).
func buildCompileIR(s Scale) *program.Program {
	recs := pick(s, 3000, 28000) // full: 28000*32B = 896 KiB pool
	symWords := 1 << 16          // 512 KiB symbol table: operand lookups miss the L1
	const (
		basePool = 0x280_0000
		baseSym  = 0x300_0000
	)
	b := program.NewBuilder("compile_ir")
	r := newRNG(505)
	for i := 0; i < recs; i++ {
		rec := basePool + uint64(i)*32
		b.InitMem(rec, int64(r.intn(4)))          // op kind
		b.InitMem(rec+8, int64(r.intn(symWords))) // operand index
		b.InitMem(rec+16, int64(r.intn(64)))      // weight
	}
	const (
		p    = 1
		end  = 2
		op   = 3
		idx  = 4
		w    = 5
		sym  = 6
		acc  = 7
		addr = 8
		one  = 9
		two  = 10
	)
	b.LoadI(p, basePool)
	b.LoadI(end, basePool+int64(recs)*32)
	b.LoadI(acc, 0)
	b.LoadI(one, 1)
	b.LoadI(two, 2)
	loop := b.Here()
	b.Load(op, p, 0)
	b.Load(idx, p, 8)
	b.Load(w, p, 16)
	// Multiway dispatch on the loaded op kind (chained compares).
	caseB := b.NewLabel()
	caseC := b.NewLabel()
	next := b.NewLabel()
	b.Beq(op, one, caseB)
	b.Beq(op, two, caseC)
	// case 0/3: accumulate weight
	b.Add(acc, acc, w)
	b.Jmp(next)
	b.Bind(caseB) // case 1: symbol lookup (dependent load)
	b.ShlI(addr, idx, 3)
	b.AddI(addr, addr, baseSym)
	b.Load(sym, addr, 0)
	b.Add(acc, acc, sym)
	b.Jmp(next)
	b.Bind(caseC) // case 2: symbol update
	b.ShlI(addr, idx, 3)
	b.AddI(addr, addr, baseSym)
	b.Load(sym, addr, 0)
	b.Add(sym, sym, w)
	b.Store(sym, addr, 0)
	b.Bind(next)
	b.AddI(p, p, 32)
	b.Blt(p, end, loop)
	b.Store(acc, end, 0)
	b.Halt()
	return b.MustBuild()
}
