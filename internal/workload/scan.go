package workload

import "doppelganger/internal/program"

func init() {
	register(Workload{
		Name: "scan_match",
		Spec: "hmmer",
		Description: "three lock-step strided streams with multiply-accumulate and a " +
			"load-gated acceptance branch: the highest stride coverage in the suite",
		Build: buildScanMatch,
	})
	register(Workload{
		Name: "compress",
		Spec: "bzip2",
		Description: "two-phase block transform over an L2-resident buffer: strided " +
			"loads with phase changes, predictable skewed branches; AP raises L1 " +
			"traffic without growing L2 traffic",
		Build: buildCompress,
	})
}

// buildScanMatch streams a query table, a score table, and a transition
// table in lock step (the hmmer inner loop shape). The acceptance branch
// depends on loaded scores, keeping shadows alive over strided loads AP can
// fully cover.
func buildScanMatch(s Scale) *program.Program {
	n := pick(s, 4096, 32768) // full: 32768*8B = 256 KiB per stream, 3 streams
	const (
		baseQ = 0xa00_0000
		baseS = 0xa80_0000
		baseT = 0xb00_0000
	)
	b := program.NewBuilder("scan_match")
	r := newRNG(1111)
	for k := 0; k < n; k++ {
		b.InitMem(baseQ+uint64(k)*8, int64(k))
		b.InitMem(baseS+uint64(k)*8, int64(r.intn(100)))
		b.InitMem(baseT+uint64(k)*8, int64(r.intn(16)))
	}
	const (
		pq   = 1
		ps   = 2
		pt   = 3
		vq   = 4
		vs   = 5
		vt   = 6
		best = 7
		i    = 8
		lim  = 9
		thr  = 10
		t    = 11
	)
	b.LoadI(pq, baseQ)
	b.LoadI(ps, baseS)
	b.LoadI(pt, baseT)
	b.LoadI(best, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(n))
	b.LoadI(thr, 95)
	loop := b.Here()
	b.Load(vq, pq, 0) // query index stream: L1 via prefetch
	// Dependent score lookup: the loaded query value (sequential) indexes
	// the score table, so the load is data-dependent yet stride-covered.
	b.ShlI(t, vq, 3)
	b.AddI(t, t, baseS)
	b.Load(vs, t, 0)
	b.Load(vt, pt, 0) // transition stream
	// Uncovered dependent lookup: the transition value (pseudorandom)
	// indexes the score table, so this PC never gains stride confidence.
	b.MulI(t, vt, 2048+511)
	b.AndI(t, t, int64(n-1))
	b.ShlI(t, t, 3)
	b.AddI(t, t, baseS)
	b.Load(t, t, 0)
	b.Add(vq, vq, t) // second accumulator halves the serial chain
	b.Mul(t, vq, vt)
	b.Add(t, t, vs)
	b.Add(best, best, t) // MAC chain through loaded values (ILP under STT)
	keep := b.NewLabel()
	b.Blt(vs, thr, keep) // acceptance gate on the loaded score (skewed)
	b.Xor(best, best, vq)
	b.Bind(keep)
	b.AddI(pq, pq, 8)
	b.AddI(pt, pt, 8)
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(best, lim, 0)
	b.Halt()
	return b.MustBuild()
}

// buildCompress performs two passes over a block buffer: a forward
// byte-count pass at word stride and a reordering pass at double stride.
// Branches are skewed (~85/15) on loaded values.
func buildCompress(s Scale) *program.Program {
	words := pick(s, 2600, 12000) // full: 12000*8B = 94 KiB buffer, mostly L1/L2
	const (
		baseBuf = 0xb80_0000
		baseOut = 0xc00_0000
	)
	b := program.NewBuilder("compress")
	r := newRNG(1212)
	for k := 0; k < words; k++ {
		b.InitMem(baseBuf+uint64(k)*8, int64(r.intn(256)))
	}
	const (
		p   = 1
		q   = 2
		end = 3
		v   = 4
		acc = 5
		thr = 6
		t   = 7
	)
	// Pass 1: word stride, count high bytes.
	b.LoadI(p, baseBuf)
	b.LoadI(end, baseBuf+int64(words)*8)
	b.LoadI(acc, 0)
	b.LoadI(thr, 216) // ~85% of byte values fall below
	p1 := b.Here()
	b.Load(v, p, 0)
	low := b.NewLabel()
	b.Blt(v, thr, low)
	b.AddI(acc, acc, 1)
	b.Bind(low)
	b.AddI(p, p, 8)
	b.Blt(p, end, p1)
	// Pass 2: double stride, transform and write out.
	b.LoadI(p, baseBuf)
	b.LoadI(q, baseOut)
	p2 := b.Here()
	b.Load(v, p, 0)
	b.MulI(t, v, 167)
	b.AddI(t, t, 13)
	b.Store(t, q, 0)
	b.AddI(p, p, 16)
	b.AddI(q, q, 8)
	b.Blt(p, end, p2)
	b.Store(acc, q, 0)
	b.Halt()
	return b.MustBuild()
}
