// Package workload provides the synthetic benchmark suite used to reproduce
// the paper's evaluation. SPEC CPU2006/2017 binaries cannot run on this
// simulator, so each kernel is a purpose-built stand-in that dials the
// traits that explain its SPEC counterpart's behaviour in the paper:
// stride predictability (address-predictor coverage), address entropy
// (accuracy), working-set cache level, branch behaviour (shadow lifetimes),
// and load-dependence depth (memory parallelism lost under the secure
// schemes). See DESIGN.md §5 for the full mapping.
package workload

import (
	"fmt"
	"sort"

	"doppelganger/internal/program"
)

// Scale selects how large a kernel instance to build. Tests use ScaleTest
// (seconds per run); the figure harness uses ScaleFull.
type Scale int

// Scales.
const (
	ScaleTest Scale = iota
	ScaleFull
)

// Workload is one synthetic benchmark.
type Workload struct {
	// Name is the kernel's short identifier.
	Name string
	// Spec names the SPEC benchmark(s) this kernel stands in for.
	Spec string
	// Description states the dialled traits.
	Description string
	// Build constructs the program at the given scale. Programs are
	// deterministic: same scale, same program.
	Build func(Scale) *program.Program
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration %q", w.Name))
	}
	registry[w.Name] = w
}

// All returns every workload, sorted by name for deterministic iteration.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns all workload names, sorted.
func Names() []string {
	ws := All()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// ByName looks a workload up.
func ByName(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// rng is a deterministic xorshift64* generator for reproducible data.
type rng uint64

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// perm returns a deterministic pseudorandom permutation of [0, n).
func (r *rng) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// pick scales an (test, full) pair by the requested scale.
func pick(s Scale, test, full int) int {
	if s == ScaleTest {
		return test
	}
	return full
}
