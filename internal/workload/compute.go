package workload

import "doppelganger/internal/program"

func init() {
	register(Workload{
		Name: "tree_search",
		Spec: "sjeng / exchange2_s",
		Description: "branch-heavy game-tree style search with an explicit stack in " +
			"an L1-resident region and long ALU chains; few loads, so AP has little " +
			"to offer and low accuracy costs nothing",
		Build: buildTreeSearch,
	})
	register(Workload{
		Name: "md_particles",
		Spec: "gromacs",
		Description: "neighbour-pair distance arithmetic over L2-resident coordinate " +
			"arrays; compute-bound multiply/divide chains dominate, AP minor",
		Build: buildMDParticles,
	})
	register(Workload{
		Name: "graph_path",
		Spec: "astar",
		Description: "grid pathfinding with data-dependent direction branches; decent " +
			"coverage from neighbour strides but performance bound by branch " +
			"resolution, so AP gains stay small",
		Build: buildGraphPath,
	})
}

// buildTreeSearch models a minimax-style search: positions pushed to and
// popped from a stack in memory, evaluation via multiply/xor chains, lots of
// semi-predictable branching, small memory footprint.
func buildTreeSearch(s Scale) *program.Program {
	steps := pick(s, 3000, 26000)
	stackWords := 1 << 10 // 8 KiB stack: L1-resident
	const base = 0x780_0000
	b := program.NewBuilder("tree_search")
	const (
		sp   = 1 // stack pointer (index)
		pos  = 2 // position hash
		ev   = 3 // evaluation
		acc  = 4
		i    = 5
		lim  = 6
		mask = 7
		addr = 8
		t    = 9
		thr  = 10
		d    = 11
	)
	b.InitReg(pos, 0x123456789)
	b.LoadI(sp, 0)
	b.LoadI(acc, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(steps))
	b.LoadI(mask, int64(stackWords-1))
	b.LoadI(thr, 0)
	loop := b.Here()
	// Evaluate: ev = ((pos*31) ^ (pos>>9)) % small — a latency chain.
	b.MulI(ev, pos, 31)
	b.ShrI(t, pos, 9)
	b.Xor(ev, ev, t)
	b.LoadI(d, 1021)
	b.Div(d, ev, d) // divide keeps the units busy
	b.Xor(ev, ev, d)
	// Branch on evaluation sign-ish bit: semi-predictable.
	b.AndI(t, ev, 0x18)
	push := b.NewLabel()
	join := b.NewLabel()
	b.Bne(t, thr, push)
	// Pop path: sp--; pos = stack[sp]
	b.AddI(sp, sp, -1)
	b.And(sp, sp, mask)
	b.ShlI(addr, sp, 3)
	b.AddI(addr, addr, base)
	b.Load(pos, addr, 0)
	b.Xor(pos, pos, ev)
	b.Jmp(join)
	b.Bind(push) // Push path: stack[sp] = pos; sp++; descend
	b.ShlI(addr, sp, 3)
	b.AddI(addr, addr, base)
	b.Store(pos, addr, 0)
	b.AddI(sp, sp, 1)
	b.And(sp, sp, mask)
	b.MulI(pos, pos, 6364136223846793005)
	b.AddI(pos, pos, 1442695040888963407)
	b.Bind(join)
	b.Add(acc, acc, ev)
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(acc, mask, 0)
	b.Halt()
	return b.MustBuild()
}

// buildMDParticles walks coordinate arrays computing pair distances: three
// strided loads feed multiply-heavy arithmetic, with an occasional cutoff
// branch on the computed (not loaded) distance.
func buildMDParticles(s Scale) *program.Program {
	pairs := pick(s, 2500, 22000)
	const (
		baseX = 0x800_0000 // full: 22000*8B = 172 KiB per array
		baseY = 0x880_0000
		baseZ = 0x900_0000
	)
	b := program.NewBuilder("md_particles")
	r := newRNG(909)
	for k := 0; k < pairs; k++ {
		b.InitMem(baseX+uint64(k)*8, int64(r.intn(1000)))
		b.InitMem(baseY+uint64(k)*8, int64(r.intn(1000)))
		b.InitMem(baseZ+uint64(k)*8, int64(r.intn(1000)))
	}
	const (
		px   = 1
		py   = 2
		pz   = 3
		vx   = 4
		vy   = 5
		vz   = 6
		d2   = 7
		acc  = 8
		i    = 9
		lim  = 10
		cut  = 11
		t    = 12
		zero = 13
	)
	b.LoadI(px, baseX)
	b.LoadI(py, baseY)
	b.LoadI(pz, baseZ)
	b.LoadI(acc, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(pairs))
	b.LoadI(cut, 500000)
	b.LoadI(zero, 0)
	loop := b.Here()
	b.Load(vx, px, 0)
	b.Load(vy, py, 0)
	b.Load(vz, pz, 0)
	b.Mul(vx, vx, vx)
	b.Mul(vy, vy, vy)
	b.Mul(vz, vz, vz)
	b.Add(d2, vx, vy)
	b.Add(d2, d2, vz)
	far := b.NewLabel()
	b.AndI(t, i, 1)
	b.Bne(t, zero, far) // register filter: gate every other pair
	b.Bge(d2, cut, far) // cutoff on the computed (load-derived) distance
	b.Div(t, cut, d2)
	b.Add(acc, acc, t)
	b.Bind(far)
	b.AddI(px, px, 8)
	b.AddI(py, py, 8)
	b.AddI(pz, pz, 8)
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(acc, lim, 0)
	b.Halt()
	return b.MustBuild()
}

// buildGraphPath walks a grid: each step loads the current cell's cost,
// branches on it to pick a direction (east or south), and advances. The
// neighbour loads are short-stride and partially predictable, but progress
// is bound by the data-dependent direction branch.
func buildGraphPath(s Scale) *program.Program {
	const dim = 64 // 64x64 grid of words = 32 KiB: L1-resident once warm
	steps := pick(s, 2800, 24000)
	const base = 0x980_0000
	b := program.NewBuilder("graph_path")
	r := newRNG(1010)
	for k := 0; k < dim*dim; k += 2 {
		b.InitMem(base+uint64(k)*8, int64(r.intn(100)))
	}
	const (
		pos  = 1 // cell index
		v    = 2
		ve   = 3
		vs   = 4
		acc  = 5
		i    = 6
		lim  = 7
		mask = 8
		addr = 9
		half = 10
	)
	b.LoadI(pos, 0)
	b.LoadI(acc, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(steps))
	b.LoadI(mask, int64(dim*dim-1))
	b.LoadI(half, 90)
	loop := b.Here()
	b.ShlI(addr, pos, 3)
	b.AddI(addr, addr, base)
	b.Load(v, addr, 0)      // current cell
	b.Load(ve, addr, 8)     // east neighbour (stride-friendly)
	b.Load(vs, addr, dim*8) // south neighbour
	south := b.NewLabel()
	join := b.NewLabel()
	b.Blt(v, half, south) // direction depends on loaded cost
	b.AddI(pos, pos, 1)   // go east
	b.Add(acc, acc, ve)
	b.Jmp(join)
	b.Bind(south)
	b.AddI(pos, pos, dim) // go south
	b.Add(acc, acc, vs)
	b.Bind(join)
	b.And(pos, pos, mask)
	// Heuristic-evaluation filler: keeps the in-flight instance count of
	// the neighbour loads low, so predictions rarely extrapolate across a
	// direction change (decent accuracy, as astar shows in the paper).
	b.MulI(v, v, 31)
	b.ShrI(ve, v, 7)
	b.Xor(acc, acc, ve)
	b.MulI(vs, acc, 17)
	b.ShrI(vs, vs, 9)
	b.Add(acc, acc, vs)
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(acc, mask, 0)
	b.Halt()
	return b.MustBuild()
}
