package workload_test

import (
	"testing"

	"doppelganger/internal/secure"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// TestWorkloadTraits pins the characterisation each kernel was designed
// for, using the DoM+AP configuration the paper reports coverage/accuracy
// under (Figure 7).
func TestWorkloadTraits(t *testing.T) {
	runDoMAP := func(name string) sim.Result {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		res, err := sim.Run(w.Build(workload.ScaleTest), sim.Config{Scheme: secure.DoM, AddressPrediction: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Streaming kernels must be covered by the stride predictor.
	for _, name := range []string{"stream", "scan_match", "compress", "stencil"} {
		if res := runDoMAP(name); res.Coverage < 0.4 {
			t.Errorf("%s: coverage %.2f, want >= 0.4", name, res.Coverage)
		}
	}
	// Pointer chasing and random access must not be covered.
	for _, name := range []string{"pointer_chase", "random_walk"} {
		if res := runDoMAP(name); res.Coverage > 0.05 {
			t.Errorf("%s: coverage %.2f, want ~0 (unpredictable addresses)", name, res.Coverage)
		}
	}
	// The xalancbmk stand-in needs predictions with poor accuracy.
	res := runDoMAP("hash_irregular")
	if res.Stats.DoppPredictions == 0 {
		t.Error("hash_irregular: no predictions at all — the flooding signature needs confident wrong predictions")
	}
	if res.Accuracy > 0.9 {
		t.Errorf("hash_irregular: accuracy %.2f, want low (jump-broken runs)", res.Accuracy)
	}
}
