package workload

import (
	"testing"

	"doppelganger/internal/program"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Errorf("suite has %d workloads, want 14: %v", len(names), names)
	}
	for _, n := range names {
		w, ok := ByName(n)
		if !ok {
			t.Fatalf("ByName(%q) failed", n)
		}
		if w.Spec == "" || w.Description == "" || w.Build == nil {
			t.Errorf("%s: incomplete registration", n)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should fail for unknown workloads")
	}
}

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, w := range All() {
		p := w.Build(ScaleTest)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if p.Name != w.Name {
			t.Errorf("program name %q != workload name %q", p.Name, w.Name)
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		a := program.Run(w.Build(ScaleTest), 50_000_000)
		b := program.Run(w.Build(ScaleTest), 50_000_000)
		if !a.Halted || !b.Halted {
			t.Errorf("%s: did not halt", w.Name)
			continue
		}
		if a.Checksum() != b.Checksum() || a.Insts != b.Insts {
			t.Errorf("%s: not deterministic", w.Name)
		}
	}
}

func TestWorkloadsHaltWithinBudget(t *testing.T) {
	for _, w := range All() {
		st := program.Run(w.Build(ScaleTest), 1_000_000)
		if !st.Halted {
			t.Errorf("%s: exceeded 1M instructions at test scale (%d committed)", w.Name, st.Insts)
		}
		if st.Insts < 5_000 {
			t.Errorf("%s: only %d instructions at test scale — too small to measure", w.Name, st.Insts)
		}
	}
}

func TestFullScaleBiggerThanTest(t *testing.T) {
	for _, w := range All() {
		small := program.Run(w.Build(ScaleTest), 100_000_000)
		big := program.Run(w.Build(ScaleFull), 100_000_000)
		if big.Insts <= small.Insts {
			t.Errorf("%s: full scale (%d insts) not larger than test scale (%d)",
				w.Name, big.Insts, small.Insts)
		}
	}
}

func TestPickScales(t *testing.T) {
	if pick(ScaleTest, 1, 2) != 1 || pick(ScaleFull, 1, 2) != 2 {
		t.Error("pick wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed must still produce values")
	}
	p := newRNG(3).perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatal("perm is not a permutation")
		}
		seen[v] = true
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	register(Workload{Name: "stream", Build: buildStream})
}
