package workload

import "doppelganger/internal/program"

func init() {
	register(Workload{
		Name: "hash_irregular",
		Spec: "xalancbmk_s",
		Description: "strided runs broken by hash jumps: the predictor stays confident " +
			"while every post-jump prediction (and every prediction extrapolated " +
			"across a jump) is wrong — decent coverage, low accuracy, and wasted " +
			"doppelganger traffic that floods the L1 (hurts DoM most)",
		Build: buildHashIrregular,
	})
	register(Workload{
		Name: "event_queue",
		Spec: "omnetpp_s",
		Description: "heap-shaped hot set just above L1 capacity plus an event-list " +
			"scan with jump-broken runs; mispredicted doppelgangers evict hot lines, " +
			"raising L2 traffic under AP",
		Build: buildEventQueue,
	})
	register(Workload{
		Name: "random_walk",
		Spec: "adversarial microbenchmark",
		Description: "register-PRNG addresses over an L2/L3-resident region: zero " +
			"stride coverage; stresses DoM's delayed misses and the harmlessness of " +
			"the misprediction path",
		Build: buildRandomWalk,
	})
}

// buildHashIrregular walks a dependent pointer chain through a table a few
// times the L1 capacity. Links mostly point to the next word but jump to a
// hashed position at run boundaries. Because each address comes from the
// previous load, the secure schemes delay the chain and doppelgangers stand
// in for it — but predictions extrapolated across a jump are wrong, so a
// sizable fraction of the doppelganger traffic floods the L1 with useless
// lines (the xalancbmk signature: decent coverage, low accuracy).
func buildHashIrregular(s Scale) *program.Program {
	tableWords := 1 << 18 // 2 MiB table: chain hops miss the L1
	hops := pick(s, 3000, 24000)
	const runLen = 64
	const base = 0x500_0000
	b := program.NewBuilder("hash_irregular")
	r := newRNG(606)
	// Build the link chain as one cycle visiting every position exactly
	// once: runs of consecutive positions, broken by a hash jump every
	// runLen hops. Writing each link exactly once keeps the intended run
	// structure intact (overwrites would make the chain degenerate).
	visited := make([]bool, tableWords)
	pickFree := func() int {
		for {
			n := r.intn(tableWords)
			if !visited[n] {
				return n
			}
		}
	}
	pos := 0
	visited[0] = true
	for k := 1; k < tableWords; k++ {
		var next int
		if k%runLen == 0 {
			next = pickFree()
		} else {
			next = pos + 1
			for next < tableWords && visited[next] {
				next++
			}
			if next >= tableWords {
				next = pickFree()
			}
		}
		b.InitMem(base+uint64(pos)*8, int64(base)+int64(next)*8)
		visited[next] = true
		pos = next
	}
	b.InitMem(base+uint64(pos)*8, int64(base)) // close the cycle
	const (
		p   = 1 // chain pointer
		acc = 2
		i   = 3
		lim = 4
	)
	b.InitReg(p, base)
	b.LoadI(acc, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(hops))
	loop := b.Here()
	b.Load(p, p, 0) // dependent chain: stride 8 with a jump every run
	b.Add(acc, acc, p)
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(acc, lim, 0)
	b.Halt()
	return b.MustBuild()
}

// buildEventQueue mixes heap-style sift loads over a hot set just above L1
// capacity with a small, reused strided scan. The sift addresses depend on
// loaded data with no learnable stride, so under the secure schemes their
// doppelgangers are issued with garbage extrapolated addresses: useless
// fills that evict the hot set and the scan, raising L2 traffic under AP —
// the omnetpp signature.
func buildEventQueue(s Scale) *program.Program {
	hotWords := 1 << 13  // 64 KiB hot heap: slightly above the 48 KiB L1
	scanWords := 1 << 11 // 16 KiB scan buffer, reused every pass
	events := pick(s, 2500, 20000)
	const (
		baseHot  = 0x580_0000
		baseScan = 0x600_0000
	)
	b := program.NewBuilder("event_queue")
	r := newRNG(707)
	for k := 0; k < hotWords; k++ {
		b.InitMem(baseHot+uint64(k)*8, int64(r.intn(1<<20)))
	}
	const (
		h    = 1 // position in heap
		x    = 2
		pay  = 3
		acc  = 4
		i    = 5
		lim  = 6
		mask = 7
		addr = 8
		thr  = 9
		scan = 10
		smsk = 11
	)
	b.LoadI(h, 1)
	b.LoadI(acc, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(events))
	b.LoadI(mask, int64(hotWords-1))
	b.LoadI(thr, 1<<19)
	b.LoadI(scan, 0)
	b.LoadI(smsk, int64(scanWords-1))
	loop := b.Here()
	// Sift step over the hot heap: the next heap address depends on loaded
	// data, and strides break constantly (no AP coverage, garbage
	// doppelgangers under the schemes).
	b.ShlI(addr, h, 3)
	b.AddI(addr, addr, baseHot)
	b.Load(x, addr, 0)
	b.ShlI(h, h, 1)
	down := b.NewLabel()
	b.Blt(x, thr, down) // data-dependent direction (~50/50)
	b.AddI(h, h, 1)
	b.Bind(down)
	b.And(h, h, mask)
	b.Xor(h, h, x)
	b.And(h, h, mask)
	// Reused strided scan: L1-resident while nothing evicts it.
	b.And(scan, i, smsk)
	b.ShlI(addr, scan, 3)
	b.AddI(addr, addr, baseScan)
	b.Load(pay, addr, 0)
	b.Add(acc, acc, pay)
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(acc, mask, 0)
	b.Halt()
	return b.MustBuild()
}

// buildRandomWalk visits register-PRNG addresses over an L2/L3 region, with
// a loaded-value gate every fourth step. DoM must delay every speculative
// miss, and no stride exists for AP to learn: the adversarial corner.
func buildRandomWalk(s Scale) *program.Program {
	regionWords := 1 << 16 // 512 KiB: L2-resident
	steps := pick(s, 2500, 20000)
	const base = 0x700_0000
	b := program.NewBuilder("random_walk")
	r := newRNG(808)
	for k := 0; k < regionWords; k += 32 {
		b.InitMem(base+uint64(k)*8, int64(r.intn(100)))
	}
	const (
		x    = 1 // PRNG state
		p    = 2
		v    = 3
		acc  = 4
		i    = 5
		lim  = 6
		mask = 7
		t    = 8
		bit  = 9
		zero = 10
	)
	b.InitReg(x, 0x1e3779b97f4a7c15)
	b.LoadI(acc, 0)
	b.LoadI(i, 0)
	b.LoadI(lim, int64(steps))
	b.LoadI(mask, int64(regionWords-1))
	b.LoadI(zero, 0)
	loop := b.Here()
	// xorshift64
	b.ShlI(t, x, 13)
	b.Xor(x, x, t)
	b.ShrI(t, x, 7)
	b.Xor(x, x, t)
	b.ShlI(t, x, 17)
	b.Xor(x, x, t)
	b.And(p, x, mask)
	b.ShlI(p, p, 3)
	b.AddI(p, p, base)
	b.Load(v, p, 0) // random address: misses, unpredictable
	b.AndI(bit, i, 3)
	skip := b.NewLabel()
	b.Bne(bit, zero, skip) // register-resolved filter: fast
	b.LoadI(bit, 97)
	b.Blt(v, bit, skip) // every 4th iteration gates on the loaded value
	b.Add(acc, acc, v)
	b.Bind(skip)
	b.AddI(i, i, 1)
	b.Blt(i, lim, loop)
	b.Store(acc, mask, 0)
	b.Halt()
	return b.MustBuild()
}
