// Package leakcheck is a differential side-channel tester for the secure
// speculation schemes. It generates randomized transient-execution gadgets
// on top of internal/program's builder, runs each gadget twice with only
// the secret bytes differing, and diffs the attacker-observable
// micro-architectural state (sim.MicroDigest): cache tag/LRU contents at
// every level, the MSHR occupancy timeline, predictor tables, traffic
// counters and cycle counts. Any divergence is a leak.
//
// The oracle is the standard hardware-software-contract formulation: under
// a secure scheme, executions that differ only in secret data must be
// indistinguishable to a co-resident attacker. The unsafe baseline must
// diverge (otherwise the oracle is vacuous), and the planted mutations of
// secure.Mutation must each be caught (otherwise the oracle is blind).
package leakcheck

import (
	"fmt"
	"math/rand"
	"strings"

	"doppelganger/internal/isa"
	"doppelganger/internal/predictor"
	"doppelganger/internal/program"
	"doppelganger/sim"
)

// Kind selects the gadget family.
type Kind uint8

// Gadget kinds.
const (
	// KindBoundsCheck is a Spectre-v1 shape: a bounds check whose bound
	// loads from a cold cache line mispredicts on the final round, and the
	// wrong path loads the secret and transmits it through a
	// secret-indexed probe-array load.
	KindBoundsCheck Kind = iota
	// KindStoreBypass is a Spectre-v4 shape: a store to the secret cell
	// whose address operand arrives late is speculatively bypassed by a
	// younger load, which reads the stale secret and transmits it before
	// the memory-order violation squash.
	KindStoreBypass
	// KindBranchPoison is a Spectre-v2 shape realised through gshare
	// counter aliasing: the gadget runs under a small gshare predictor, an
	// attacker phase steers the global history and trains a never-taken
	// branch so that its 2-bit counter aliases the victim branch's
	// (pc XOR history) index, and the victim's always-taken final bounds
	// check — whose bound arrives from a cold line — is steered down the
	// never-executed fall-through, where the secret is loaded and
	// transmitted. Without the poisoning pass the counter sits at its
	// weakly-taken reset state and the wrong path is never fetched.
	KindBranchPoison
	// KindContention transmits through pure MSHR/port pressure instead of
	// a probe-line address: the wrong path extracts one secret bit and
	// issues either PressureWidth loads to one line (a single merged MSHR)
	// or to PressureWidth distinct lines (that many parallel misses). The
	// only secret-dependent observable is the shape of the resulting
	// contention — the MSHR timeline, per-level traffic and occupancy —
	// not any individually secret-addressed line.
	KindContention

	numKinds

	// numSeedKinds is how many kinds Generate samples. Blind generation is
	// frozen at the two original families so every historical seed keeps
	// producing the identical gadget (the contract-matrix golden and the
	// reproducer corpus both depend on that); the newer families are
	// reached by Normalize — and therefore by the fuzzer and the
	// campaign's mutation scheduler — not by seeds.
	numSeedKinds = 2
)

var kindNames = [numKinds]string{
	KindBoundsCheck:  "bounds-check",
	KindStoreBypass:  "store-bypass",
	KindBranchPoison: "branch-poison",
	KindContention:   "contention",
}

// Kinds returns every gadget family in declaration order, including the
// families Generate's frozen seed stream never samples. The campaign's
// mutation scheduler ranges over this.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String returns the kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Gadget parameter bounds. Rounds needs a floor so the branch predictor has
// time to train toward the architectural direction before the final-round
// mispredict.
const (
	minRounds      = 6
	maxRounds      = 24
	maxShadowDepth = 3
	maxChainLen    = 6
	maxTrainLoops  = 2

	// Branch-poison bounds. The floor of two aliasing passes is what makes
	// the attack deterministic: the victim loop can train the target
	// counter up to strongly-taken (3), and each pass decrements it once,
	// so >= 2 passes guarantee it ends weakly-not-taken or lower.
	minAliasTrainings = 2
	maxAliasTrainings = 4
	maxAliasPad       = 16

	// Contention bounds: how many distinct lines the one-bit pressure
	// burst can spread over. The floor of 2 keeps the two pressure shapes
	// (1 line vs PressureWidth lines) distinguishable.
	minPressureWidth = 2
	maxPressureWidth = 6
)

// Exported parameter bounds, for generators that want to sample the
// post-Normalize working ranges directly (internal/campaign's stratified
// exploration arm) instead of over-drawing and letting Normalize clamp.
const (
	MinRounds         = minRounds
	MaxRounds         = maxRounds
	MaxShadowDepth    = maxShadowDepth
	MaxChainLen       = maxChainLen
	MaxTrainLoops     = maxTrainLoops
	MaxAliasTrainings = maxAliasTrainings
	MaxAliasPad       = maxAliasPad
	MaxPressureWidth  = maxPressureWidth

	// minSecret keeps secrets above every probe index reachable from
	// public execution, so the wrong-path probe line is guaranteed cold
	// and distinct from every committed or prefetched line in both runs.
	// The transmission chain is affine mod 256, so the publicly
	// reachable probe indices are exactly f({0..7} + prefetch reach);
	// with PrefetchDistance 12 and degree 2 that is f({0..21}).
	// Without this margin a secret could alias a publicly warmed line
	// and mask — or, under DoM's hit/miss asymmetry, falsely time — the
	// transmission.
	minSecret = 24
)

// Gadget memory layout (byte addresses). Regions are far apart so the only
// cache lines two runs can disagree on are the secret-indexed probe lines.
const (
	idxTableBase = 0x10_000  // per-round index sequence (bounds-check kind)
	arrBase      = 0x20_000  // victim array; the secret sits past its end
	probeBase    = 0x40_000  // 256-line transmission array
	probe2Base   = 0x48_000  // second transmission array (DoubleTransmit)
	guardBase    = 0x60_000  // cold lines producing late-arriving operands
	trainBase    = 0x80_000  // committed streaming loads (predictor warm-up)
	cellBase     = 0xA0_000  // secret cell (store-bypass kind)
	ptabBase     = 0xC0_000  // per-round pointers into the guard region
	cptabBase    = 0xD0_000  // per-round pointers into the pressure region
	contBase     = 0xE0_000  // pressure-burst lines (contention kind)
	primeBase    = 0x140_000 // L1-priming pad (Prime feature)

	lineSize   = 64
	secretWord = 64 // word offset of the secret past arrBase (line-disjoint)
	boundValue = 8  // architectural bound: in-bounds indices are 0..7
	pubValue   = 77 // public value the bypassed store writes

	// primeLines covers the default L1D exactly: 48 KB of 64-byte lines is
	// 64 sets x 12 ways = 768 lines, so a committed walk over this many
	// consecutive prime-pad lines leaves every L1 set completely full of
	// valid lines. From then on every fill must evict — which is what makes
	// rollback fidelity observable (see Params.Prime).
	primeLines = 768
)

// Register allocation. The builder panics on out-of-range registers, so
// these stay well inside isa.NumRegs.
const (
	rAcc    = isa.Reg(1)  // committed accumulator (keeps loads live)
	rPIdx   = isa.Reg(2)  // index-table cursor
	rPEnd   = isa.Reg(3)  // index-table end
	rPGuard = isa.Reg(4)  // guard-region cursor
	rIdx    = isa.Reg(5)  // current index / round counter
	rBound  = isa.Reg(6)  // late-arriving bound
	rT      = isa.Reg(7)  // address temporary
	rX      = isa.Reg(8)  // transmitted value
	rY      = isa.Reg(9)  // probe result
	rZ      = isa.Reg(10) // second-channel temporary
	rPtr    = isa.Reg(11) // train-loop cursor
	rCnt    = isa.Reg(12) // train-loop counter
	rLim    = isa.Reg(13) // train-loop limit
	rTmp    = isa.Reg(14) // victim warm-up scratch
	rPCell  = isa.Reg(15) // secret-cell pointer (store-bypass)
	rPub    = isa.Reg(16) // public store value (store-bypass)
	rSBase  = isa.Reg(17) // late-resolving store base (store-bypass)
	rPTab   = isa.Reg(18) // guard-pointer-table cursor
	rGB     = isa.Reg(19) // this round's guard base (loaded from the table)
	rZero   = isa.Reg(20) // always-zero operand for history-steering branches
	rCPT    = isa.Reg(21) // pressure-pointer-table cursor (contention)
	rCB     = isa.Reg(22) // this round's pressure base (loaded from the table)
)

// gshare sizing for the branch-poison kind: small enough that one steered
// pass per training covers the aliased counter deterministically, and the
// (pc XOR history) index arithmetic below can align on a 64-entry table.
const (
	gshareEntries     = 64
	gshareHistoryBits = 6
)

// Params fully determines a gadget program (together with the secret byte
// passed to Build). All fields are derived deterministically from Seed by
// Generate, but the fuzzer mutates them directly, so Build accepts any
// combination after Normalize.
type Params struct {
	Seed int64
	Kind Kind
	// Rounds is the number of trips through the access loop. In the
	// bounds-check kind all but the last are in-bounds training rounds.
	Rounds int
	// ShadowDepth adds extra speculation shadows around the transmission:
	// nested bounds checks whose bounds load from cold lines.
	ShadowDepth int
	// ChainLen inserts extra ALU operations between the secret load and
	// the transmitting access. Operations are restricted to bijections
	// mod 256 (AddI, MulI by an odd constant) so distinct secrets always
	// transmit through distinct probe lines.
	ChainLen int
	// TrainLoops prepends committed streaming loops that warm the stride
	// predictor/prefetcher table with public patterns.
	TrainLoops int
	// DoubleTransmit adds a second secret-dependent load into a disjoint
	// probe array.
	DoubleTransmit bool
	// AliasTrainings (branch-poison kind) is how many times the attacker
	// phase trains the aliased gshare counter toward not-taken. At least
	// minAliasTrainings passes are needed to defeat a counter the victim
	// loop saturated at strongly-taken.
	AliasTrainings int
	// AliasPad (branch-poison kind) inserts padding between the poisoning
	// phase and the victim's final round, perturbing code placement (and
	// with it fetch alignment) without changing the aliased index — the
	// emitter re-aligns the victim branch after the pad.
	AliasPad int
	// PressureWidth (contention kind) is how many loads the wrong-path
	// pressure burst issues: all to one line when the probed secret bit is
	// 0, to PressureWidth distinct lines when it is 1.
	PressureWidth int
	// SecretBit (contention kind) selects which bit of the secret byte
	// drives the pressure shape. The contention channel is one bit wide: a
	// differential pair whose secrets agree at this bit is (correctly)
	// indistinguishable even unprotected.
	SecretBit int
	// Prime prepends a committed walk over exactly one L1's worth of pad
	// lines, leaving every L1 set full before the gadget body runs. With
	// sets full, the wrong-path probe fill must evict a victim, so schemes
	// that undo speculation (Cleanup) are tested on eviction rollback, not
	// just on fills into invalid ways: dropping the evicted line leaves a
	// secret-shaped hole, and skipping the LRU undo leaves the reinstated
	// victim with the speculative recency stamp. Generate never samples
	// this field — the frozen seed stream (contract-matrix golden, corpus)
	// is unchanged — it is reached by the campaign's mutation and
	// exploration arms and by the mutation gauntlet's bias for undo
	// schemes.
	Prime bool
	// SecretA and SecretB are the two secret bytes; the differential pair
	// is (Build(SecretA), Build(SecretB)).
	SecretA, SecretB uint8
}

// Generate derives the gadget parameters for a seed. The same seed always
// yields the same Params, so a leak report is reproducible from its seed
// alone. Generate samples only the frozen numSeedKinds families; the newer
// families enter through Normalize (fuzzing and campaign mutation).
func Generate(seed int64) Params {
	r := rand.New(rand.NewSource(seed))
	p := Params{
		Seed:           seed,
		Kind:           Kind(r.Intn(numSeedKinds)),
		Rounds:         minRounds + r.Intn(maxRounds-minRounds+1),
		ShadowDepth:    r.Intn(maxShadowDepth + 1),
		ChainLen:       r.Intn(maxChainLen + 1),
		TrainLoops:     r.Intn(maxTrainLoops + 1),
		DoubleTransmit: r.Intn(2) == 1,
	}
	p.SecretA = uint8(minSecret + r.Intn(256-minSecret))
	p.SecretB = uint8(minSecret + r.Intn(256-minSecret-1))
	if p.SecretB >= p.SecretA {
		p.SecretB++
	}
	return p
}

// Normalize clamps the parameters into the ranges Build supports and
// forces the secrets into [minSecret, 255] with SecretA != SecretB. The
// fuzzer feeds arbitrary field values through this.
func (p Params) Normalize() Params {
	p.Kind %= numKinds
	p.Rounds = clamp(p.Rounds, minRounds, maxRounds)
	p.ShadowDepth = clamp(p.ShadowDepth, 0, maxShadowDepth)
	p.ChainLen = clamp(p.ChainLen, 0, maxChainLen)
	p.TrainLoops = clamp(p.TrainLoops, 0, maxTrainLoops)
	// Kind-specific fields clamp to their working range on the owning kind
	// and to [0, max] elsewhere, so legacy params (all zeros) stay fixed
	// points and normalization is idempotent either way.
	minAlias, minPress := 0, 0
	if p.Kind == KindBranchPoison {
		minAlias = minAliasTrainings
	}
	if p.Kind == KindContention {
		minPress = minPressureWidth
	}
	p.AliasTrainings = clamp(p.AliasTrainings, minAlias, maxAliasTrainings)
	p.AliasPad = clamp(p.AliasPad, 0, maxAliasPad)
	p.PressureWidth = clamp(p.PressureWidth, minPress, maxPressureWidth)
	p.SecretBit = clamp(p.SecretBit, 0, 7)
	if p.SecretA < minSecret {
		p.SecretA += minSecret
	}
	if p.SecretB < minSecret {
		p.SecretB += minSecret
	}
	if p.SecretA == p.SecretB {
		// Flipping bit 0 preserves >= minSecret and guarantees distinctness.
		p.SecretB = p.SecretA ^ 1
	}
	return p
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String renders the parameters compactly for leak reports. Kind-specific
// fields are appended only for the kinds that read them.
func (p Params) String() string {
	s := fmt.Sprintf("seed=%d kind=%s rounds=%d depth=%d chain=%d train=%d double=%t secrets=0x%02x/0x%02x",
		p.Seed, p.Kind, p.Rounds, p.ShadowDepth, p.ChainLen, p.TrainLoops,
		p.DoubleTransmit, p.SecretA, p.SecretB)
	switch p.Kind {
	case KindBranchPoison:
		s += fmt.Sprintf(" alias=%d pad=%d", p.AliasTrainings, p.AliasPad)
	case KindContention:
		s += fmt.Sprintf(" width=%d bit=%d", p.PressureWidth, p.SecretBit)
	}
	if p.Prime {
		// Appended only when set, so every historical rendering (corpus
		// keys, golden matrix entries) is byte-identical.
		s += " prime=true"
	}
	return s
}

// chainOp is one ALU step of the transmission chain. Both forms are
// bijective mod 256 (k is odd when mul), so composed chains keep distinct
// secrets on distinct probe lines.
type chainOp struct {
	mul bool
	k   int64
}

// chainOps derives the chain from the seed. The stream depends only on
// Seed, so a shorter ChainLen is a strict prefix — minimization can shrink
// the chain without changing the surviving steps.
func (p Params) chainOps() []chainOp {
	r := rand.New(rand.NewSource(p.Seed ^ 0x5bf0_3635))
	ops := make([]chainOp, 0, p.ChainLen)
	for i := 0; i < p.ChainLen; i++ {
		if r.Intn(2) == 0 {
			ops = append(ops, chainOp{mul: false, k: int64(1 + r.Intn(255))})
		} else {
			ops = append(ops, chainOp{mul: true, k: int64(1 + 2*r.Intn(128))})
		}
	}
	return ops
}

// initGuardTable lays out the guard region and the per-round pointer table.
// Each round owns ShadowDepth+1 consecutive guard lines, but rounds visit
// the region in a seed-derived pseudorandom order read through the pointer
// table. The indirection matters: a linear walk has a constant stride, so
// the commit-trained prefetcher would warm future guard lines and collapse
// the speculation window the gadget needs. The table itself is
// stride-prefetchable — its contents are not.
//
// Guard line d of round i holds boundVal[d]; the returned per-round base
// addresses are what the table holds.
func (p Params) initGuardTable(b *program.Builder, boundVal func(d int) int64) {
	perRound := uint64(p.ShadowDepth+1) * lineSize
	order := rand.New(rand.NewSource(p.Seed ^ 0x7f4a_7c15)).Perm(p.Rounds)
	for i := 0; i < p.Rounds; i++ {
		base := guardBase + uint64(order[i])*perRound
		b.InitMem(ptabBase+uint64(i)*program.WordSize, int64(base))
		for d := 0; d <= p.ShadowDepth; d++ {
			b.InitMem(base+uint64(d)*lineSize, boundVal(d))
		}
	}
}

// Build constructs the gadget program with the given secret byte planted.
// Two builds of the same Params differ only in the one initial-memory word
// holding the secret — everything an attacker may legitimately observe is
// identical by construction.
func (p Params) Build(secret uint8) *program.Program {
	p = p.Normalize()
	switch p.Kind {
	case KindStoreBypass:
		return p.buildStoreBypass(secret)
	case KindBranchPoison:
		return p.buildBranchPoison(secret)
	case KindContention:
		return p.buildContention(secret)
	default:
		return p.buildBoundsCheck(secret)
	}
}

// CoreConfig returns the micro-architectural configuration the gadget is
// checked under. The branch-poison kind swaps in the small gshare direction
// predictor its aliasing arithmetic is built against; every other kind uses
// the paper's default core unchanged, so historical observations are
// untouched.
func (p Params) CoreConfig() sim.CoreConfig {
	cc := sim.DefaultCoreConfig()
	if p.Kind == KindBranchPoison {
		cc.BranchPredictorKind = sim.BranchGShare
		cc.GShare = predictor.GShareConfig{Entries: gshareEntries, HistoryBits: gshareHistoryBits}
	}
	return cc
}

// emitPrime emits the L1-priming walk when Params.Prime is set: a committed
// loop loading one word from each of primeLines consecutive pad lines. The
// walk is public and identical across the differential pair, and it runs
// before everything else, so after it (and inductively forever after, since
// fills into a full set evict rather than occupy invalid ways) every L1 set
// holds only valid lines. The pad words are never initialized — loads of
// uninitialized memory read zero, and only the fills matter.
func (p Params) emitPrime(b *program.Builder) {
	if !p.Prime {
		return
	}
	b.LoadI(rPtr, primeBase)
	b.LoadI(rCnt, 0)
	b.LoadI(rLim, primeLines)
	loop := b.Here()
	b.Load(rT, rPtr, 0)
	b.AddI(rPtr, rPtr, lineSize)
	b.AddI(rCnt, rCnt, 1)
	b.Blt(rCnt, rLim, loop)
}

// emitTrainLoops prepends committed streaming loops over public data,
// giving the stride predictor/prefetcher table confident public entries
// before the gadget body runs.
func (p Params) emitTrainLoops(b *program.Builder) {
	for l := 0; l < p.TrainLoops; l++ {
		base := uint64(trainBase + l*0x1000)
		for i := 0; i < 16; i++ {
			b.InitMem(base+uint64(i)*program.WordSize, int64(i+1))
		}
		b.LoadI(rPtr, int64(base))
		b.LoadI(rCnt, 0)
		b.LoadI(rLim, 16)
		loop := b.Here()
		b.Load(rT, rPtr, 0)
		b.AddI(rPtr, rPtr, program.WordSize)
		b.AddI(rCnt, rCnt, 1)
		b.Blt(rCnt, rLim, loop)
	}
}

// emitTransmit lowers the chain and the probe access(es): rX holds the
// value to transmit; after the chain it indexes the probe array at line
// granularity. On the committed path rX is always public.
func (p Params) emitTransmit(b *program.Builder) {
	for _, op := range p.chainOps() {
		if op.mul {
			b.MulI(rX, rX, op.k)
		} else {
			b.AddI(rX, rX, op.k)
		}
	}
	b.AndI(rX, rX, 255)
	b.ShlI(rT, rX, 6)
	b.AddI(rT, rT, probeBase)
	b.Load(rY, rT, 0)
	b.Add(rAcc, rAcc, rY)
	if p.DoubleTransmit {
		// A second, independently mixed channel: x*3+11 is bijective mod
		// 256, so the probe2 line is also distinct across distinct secrets.
		b.MulI(rZ, rX, 3)
		b.AddI(rZ, rZ, 11)
		b.AndI(rZ, rZ, 255)
		b.ShlI(rZ, rZ, 6)
		b.AddI(rZ, rZ, probe2Base)
		b.Load(rZ, rZ, 0)
		b.Add(rAcc, rAcc, rZ)
	}
}

// buildBoundsCheck emits the Spectre-v1 shape. The index table holds
// in-bounds values for every round but the last, whose entry points at the
// secret word past the array's end. Each round's bound loads from a fresh
// cold guard line, holding the bounds checks unresolved while the wrong
// path runs.
func (p Params) buildBoundsCheck(secret uint8) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("leakcheck/%s/seed%d", p.Kind, p.Seed))

	// In-bounds indices are seed-random, not cyclic: a repeating ramp
	// would give the committed probe accesses a near-constant stride for
	// the prefetcher to extend.
	idxr := rand.New(rand.NewSource(p.Seed ^ 0x2545_f491))
	for i := 0; i < p.Rounds; i++ {
		v := int64(idxr.Intn(boundValue))
		if i == p.Rounds-1 {
			v = secretWord
		}
		b.InitMem(idxTableBase+uint64(i)*program.WordSize, v)
	}
	p.initGuardTable(b, func(int) int64 { return boundValue })
	for i := 0; i < boundValue; i++ {
		b.InitMem(arrBase+uint64(i)*program.WordSize, int64(i))
	}
	b.SecretWord(arrBase+secretWord*program.WordSize, int64(secret))

	p.emitPrime(b)

	// Victim phase: the victim touches its own secret architecturally,
	// leaving the line warm so the wrong-path load hits the L1 and the
	// transmission races ahead of the late bounds check.
	b.LoadI(rTmp, arrBase)
	b.Load(rTmp, rTmp, secretWord*program.WordSize)

	p.emitTrainLoops(b)

	b.LoadI(rAcc, 0)
	b.LoadI(rPIdx, idxTableBase)
	b.LoadI(rPEnd, idxTableBase+int64(p.Rounds)*program.WordSize)
	b.LoadI(rPTab, ptabBase)
	loop := b.NewLabel()
	skip := b.NewLabel()
	b.Bind(loop)
	b.Load(rIdx, rPIdx, 0)
	b.Load(rGB, rPTab, 0)
	// The in-bounds direction is TAKEN (Blt to the access), matching the
	// bimodal counters' weakly-taken reset state. With the inverse sense
	// the first rounds would all mispredict toward skip and the wrong
	// path would stream ahead through the remaining rounds, transiently
	// warming every guard line and collapsing the speculation window the
	// final round needs.
	for d := 0; d <= p.ShadowDepth; d++ {
		next := b.NewLabel()
		b.Load(rBound, rGB, int64(d)*lineSize)
		b.Blt(rIdx, rBound, next)
		b.Jmp(skip)
		b.Bind(next)
	}
	b.ShlI(rT, rIdx, 3)
	b.AddI(rT, rT, arrBase)
	b.Load(rX, rT, 0)
	p.emitTransmit(b)
	b.Bind(skip)
	b.AddI(rPIdx, rPIdx, program.WordSize)
	b.AddI(rPTab, rPTab, program.WordSize)
	b.Blt(rPIdx, rPEnd, loop)
	b.Store(rAcc, rPEnd, 0)
	b.Halt()
	return b.MustBuild()
}

// buildStoreBypass emits the Spectre-v4 shape. Each round stores a public
// value to the secret cell through a base register that arrives from a
// cold guard line, so the store's address resolves late; the younger load
// of the cell issues first and reads the stale value — the secret on round
// one — and transmits it before the violation squash. ShadowDepth adds
// never-taken bounds checks with cold bounds, deepening the shadow without
// changing the architectural path.
func (p Params) buildStoreBypass(secret uint8) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("leakcheck/%s/seed%d", p.Kind, p.Seed))

	// Guard line 0 of each round holds the store's base address (the
	// secret cell); the remaining lines hold never-exceeded bounds.
	p.initGuardTable(b, func(d int) int64 {
		if d == 0 {
			return cellBase
		}
		return 1 << 40
	})
	b.SecretWord(cellBase, int64(secret))

	p.emitPrime(b)

	// Victim phase: warm the cell line so the bypassing load is an L1 hit
	// (and thus propagates even under Delay-on-Miss).
	b.LoadI(rPCell, cellBase)
	b.Load(rTmp, rPCell, 0)

	p.emitTrainLoops(b)

	b.LoadI(rAcc, 0)
	b.LoadI(rPub, pubValue)
	b.LoadI(rPTab, ptabBase)
	b.LoadI(rCnt, 0)
	b.LoadI(rLim, int64(p.Rounds))
	loop := b.NewLabel()
	skip := b.NewLabel()
	b.Bind(loop)
	b.Load(rGB, rPTab, 0)
	// Never-exceeded bounds, checked in the taken sense so the reset-state
	// predictor is correct from round one (see buildBoundsCheck).
	for d := 1; d <= p.ShadowDepth; d++ {
		next := b.NewLabel()
		b.Load(rBound, rGB, int64(d)*lineSize)
		b.Blt(rCnt, rBound, next)
		b.Jmp(skip)
		b.Bind(next)
	}
	b.Load(rSBase, rGB, 0)
	b.Store(rPub, rSBase, 0)
	b.Load(rX, rPCell, 0)
	p.emitTransmit(b)
	b.Bind(skip)
	b.AddI(rPTab, rPTab, program.WordSize)
	b.AddI(rCnt, rCnt, 1)
	b.Blt(rCnt, rLim, loop)
	b.Store(rAcc, rPCell, program.WordSize)
	b.Halt()
	return b.MustBuild()
}

// emitNeverTaken emits one never-taken branch whose taken target hops over
// a Nop. The hop is load-bearing: fetch shifts the PREDICTED outcome into
// the speculative history, and a branch whose taken target equals its
// fall-through never registers as a mispredict, so a wrong predicted bit
// would stay in the history (and in u.hist, which commit-time training
// indexes with) forever. With the targets distinct, any wrong prediction is
// a detected mispredict: the squash repairs the history with the
// architectural bit and refetches everything younger. By induction every
// downstream fetch — and every commit-time training — then sees the
// architectural history.
func emitNeverTaken(b *program.Builder) {
	nxt := b.NewLabel()
	b.Bne(rZero, rZero, nxt)
	b.Nop()
	b.Bind(nxt)
}

// emitHistoryFlush emits gshareHistoryBits never-taken branches, shifting
// architectural zeros through the entire history register — regardless of
// what ran before, and regardless of which direction the hardware folds
// outcomes in. Under all-zero history a branch's table index is simply its
// pc masked to the table, which is what lets the emitter align aliases at
// build time.
func emitHistoryFlush(b *program.Builder) {
	for i := 0; i < gshareHistoryBits; i++ {
		emitNeverTaken(b)
	}
}

// alignPC pads with Nops until the next instruction's pc aliases target in
// the gshare table (equal modulo the table size). Nops leave the branch
// history untouched, so alignment composes with emitHistoryFlush.
func alignPC(b *program.Builder, target int) {
	for b.PC()&(gshareEntries-1) != target&(gshareEntries-1) {
		b.Nop()
	}
}

// buildBranchPoison emits the Spectre-v2 shape. The victim's bounds check
// is architecturally ALWAYS taken (the index is constant and out of
// bounds), so — unlike the Spectre-v1 kind — no amount of the victim's own
// history can steer it wrong: gshare counters reset weakly-taken and only
// ever see taken outcomes from this branch. The transient window exists
// only because a separate attacker phase trains an unrelated never-taken
// branch whose (pc XOR history) index aliases the victim's: with the
// history register zeroed by not-taken filler branches, aliasing reduces to
// pc congruence modulo the table size, which the emitter arranges exactly.
// A cold-operand commit barrier between the phases guarantees the poisoning
// passes have retired (training happens at commit) before the victim's
// final round is fetched, making the mispredict deterministic rather than
// fetch-depth dependent.
func (p Params) buildBranchPoison(secret uint8) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("leakcheck/%s/seed%d", p.Kind, p.Seed))

	for i := 0; i < boundValue; i++ {
		b.InitMem(arrBase+uint64(i)*program.WordSize, int64(i))
	}
	b.SecretWord(arrBase+secretWord*program.WordSize, int64(secret))
	// Guard line 0 holds the final round's late-arriving bound; line 1
	// feeds the commit barrier. Both stay cold until their single use.
	b.InitMem(guardBase, boundValue)
	b.InitMem(guardBase+lineSize, 1)

	p.emitPrime(b)

	// Victim phase: warm the secret line so the wrong-path load hits L1
	// and the transmission races the late bounds check.
	b.LoadI(rTmp, arrBase)
	b.Load(rTmp, rTmp, secretWord*program.WordSize)

	p.emitTrainLoops(b)

	b.LoadI(rAcc, 0)
	b.LoadI(rZero, 0)
	b.LoadI(rIdx, secretWord)   // constant, always out of bounds
	b.LoadI(rBound, boundValue) // warm: training trips resolve immediately

	// Victim loop: Rounds-1 trips through the single branch site, all
	// taken. The access path below it is dead code on every trip — fetch
	// never goes there while the counters lean taken.
	b.LoadI(rCnt, 0)
	b.LoadI(rLim, int64(p.Rounds-1))
	loop := b.NewLabel()
	cont := b.NewLabel()
	b.Bind(loop)
	b.Bge(rIdx, rBound, cont)
	b.ShlI(rT, rIdx, 3)
	b.AddI(rT, rT, arrBase)
	b.Load(rX, rT, 0)
	p.emitTransmit(b)
	b.Bind(cont)
	b.AddI(rCnt, rCnt, 1)
	b.Blt(rCnt, rLim, loop)

	// Attacker phase: each pass flushes the history to zero and trains two
	// never-taken poison branches — one aliasing the victim's final branch
	// (poisonPC), one aliasing the commit barrier (barrierPC). Not-taken
	// training decrements the 2-bit counters; after minAliasTrainings
	// passes both sit at weakly-not-taken or lower even if the victim loop
	// had saturated them taken.
	b.LoadI(rCnt, 0)
	b.LoadI(rLim, int64(p.AliasTrainings))
	ploop := b.NewLabel()
	b.Bind(ploop)
	emitHistoryFlush(b)
	poisonPC := b.PC()
	emitNeverTaken(b)
	barrierPC := b.PC() // nearby pc: a distinct counter from poisonPC's
	emitNeverTaken(b)
	b.AddI(rCnt, rCnt, 1)
	b.Blt(rCnt, rLim, ploop)

	for i := 0; i < p.AliasPad; i++ {
		b.Nop()
	}

	// Commit barrier: a branch at the barrier-aliased pc whose operand
	// arrives from a cold line. It predicts not-taken (its counter was
	// just poisoned), resolves taken only when DRAM answers, and the
	// squash refetches at bar — by which point every poisoning pass has
	// retired and the training is architectural. Its own taken commit
	// re-trains only the barrier counter, never the victim's.
	b.LoadI(rPGuard, guardBase)
	b.Load(rY, rPGuard, lineSize)
	emitHistoryFlush(b)
	alignPC(b, barrierPC)
	bar := b.NewLabel()
	b.Bge(rY, rZero, bar) // architecturally taken: the cold line holds 1
	b.Nop()
	b.Nop()
	b.Bind(bar)

	// Final round: the bound now loads cold, the history is flushed to
	// zero, and the branch pc aliases the poisoned counter — fetch is
	// steered down the never-executed access path while the check
	// resolves, and the secret transmits from inside the shadow.
	b.Load(rBound, rPGuard, 0)
	emitHistoryFlush(b)
	alignPC(b, poisonPC)
	done := b.NewLabel()
	b.Bge(rIdx, rBound, done)
	b.ShlI(rT, rIdx, 3)
	b.AddI(rT, rT, arrBase)
	b.Load(rX, rT, 0)
	p.emitTransmit(b)
	b.Bind(done)
	b.Store(rAcc, rZero, trainBase)
	b.Halt()
	return b.MustBuild()
}

// buildContention emits the MSHR/port-pressure shape. The skeleton is the
// Spectre-v1 bounds check — trained-taken rounds, a final round whose index
// is out of bounds and whose bound arrives cold — but the wrong path does
// not touch any secret-indexed line. It extracts one bit of the value and
// issues PressureWidth loads whose ADDRESS SET depends only on that bit:
// all to one line (one merged MSHR) for 0, to PressureWidth distinct lines
// (that many parallel misses) for 1. What diverges between the runs is the
// shape of the contention — the MSHR timeline, traffic, fills — not the
// identity of any secret-indexed probe line.
//
// Every round draws its burst lines from its own disjoint block of the
// pressure region, visited in seed-random order through a pointer table
// (the same indirection initGuardTable uses, for the same reason: a linear
// walk would let the stride prefetcher warm future blocks). Committed
// in-bounds rounds therefore warm only their own block, and the final
// round's burst lines are cold in both runs — so under Delay-on-Miss every
// secret-shaped load is a delayed speculative miss that never issues, and
// the pair stays indistinguishable, while the unsafe baseline's burst
// reaches the MSHRs and diverges.
func (p Params) buildContention(secret uint8) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("leakcheck/%s/seed%d", p.Kind, p.Seed))

	idxr := rand.New(rand.NewSource(p.Seed ^ 0x2545_f491))
	for i := 0; i < p.Rounds; i++ {
		v := int64(idxr.Intn(boundValue))
		if i == p.Rounds-1 {
			v = secretWord
		}
		b.InitMem(idxTableBase+uint64(i)*program.WordSize, v)
	}
	p.initGuardTable(b, func(int) int64 { return boundValue })
	for i := 0; i < boundValue; i++ {
		b.InitMem(arrBase+uint64(i)*program.WordSize, int64(i))
	}
	b.SecretWord(arrBase+secretWord*program.WordSize, int64(secret))

	// Per-round pressure blocks: maxPressureWidth+1 lines each, in their
	// own pseudorandom round order.
	perBlock := uint64(maxPressureWidth+1) * lineSize
	order := rand.New(rand.NewSource(p.Seed ^ 0x51_7cc1)).Perm(p.Rounds)
	for i := 0; i < p.Rounds; i++ {
		base := contBase + uint64(order[i])*perBlock
		b.InitMem(cptabBase+uint64(i)*program.WordSize, int64(base))
		for d := 0; d <= maxPressureWidth; d++ {
			b.InitMem(base+uint64(d)*lineSize, int64(d+1))
		}
	}

	p.emitPrime(b)

	// Victim phase, training loops and the round loop mirror the
	// bounds-check kind; see buildBoundsCheck for the reasoning.
	b.LoadI(rTmp, arrBase)
	b.Load(rTmp, rTmp, secretWord*program.WordSize)

	p.emitTrainLoops(b)

	b.LoadI(rAcc, 0)
	b.LoadI(rPIdx, idxTableBase)
	b.LoadI(rPEnd, idxTableBase+int64(p.Rounds)*program.WordSize)
	b.LoadI(rPTab, ptabBase)
	b.LoadI(rCPT, cptabBase)
	loop := b.NewLabel()
	skip := b.NewLabel()
	b.Bind(loop)
	b.Load(rIdx, rPIdx, 0)
	b.Load(rGB, rPTab, 0)
	b.Load(rCB, rCPT, 0)
	for d := 0; d <= p.ShadowDepth; d++ {
		next := b.NewLabel()
		b.Load(rBound, rGB, int64(d)*lineSize)
		b.Blt(rIdx, rBound, next)
		b.Jmp(skip)
		b.Bind(next)
	}
	b.ShlI(rT, rIdx, 3)
	b.AddI(rT, rT, arrBase)
	b.Load(rX, rT, 0)
	// The pressure burst. In-bounds rounds run it architecturally with the
	// public array values, so the committed pressure patterns are
	// identical across the pair; only the final wrong-path burst carries
	// the secret bit.
	b.ShrI(rZ, rX, int64(p.SecretBit))
	b.AndI(rZ, rZ, 1)
	for i := 1; i <= p.PressureWidth; i++ {
		b.MulI(rT, rZ, int64(i*lineSize))
		b.Add(rT, rT, rCB)
		b.Load(rY, rT, 0)
		b.Add(rAcc, rAcc, rY)
	}
	b.Bind(skip)
	b.AddI(rPIdx, rPIdx, program.WordSize)
	b.AddI(rPTab, rPTab, program.WordSize)
	b.AddI(rCPT, rCPT, program.WordSize)
	b.Blt(rPIdx, rPEnd, loop)
	b.Store(rAcc, rPEnd, 0)
	b.Halt()
	return b.MustBuild()
}

// Disassemble renders the gadget (built with SecretA) as annotated
// assembly, for leak reports and reproducers.
func (p Params) Disassemble() string {
	p = p.Normalize()
	prog := p.Build(p.SecretA)
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s\n", p)
	for pc, in := range prog.Code {
		fmt.Fprintf(&sb, "%4d: %s\n", pc, in.String())
	}
	return sb.String()
}
