// Package leakcheck is a differential side-channel tester for the secure
// speculation schemes. It generates randomized transient-execution gadgets
// on top of internal/program's builder, runs each gadget twice with only
// the secret bytes differing, and diffs the attacker-observable
// micro-architectural state (sim.MicroDigest): cache tag/LRU contents at
// every level, the MSHR occupancy timeline, predictor tables, traffic
// counters and cycle counts. Any divergence is a leak.
//
// The oracle is the standard hardware-software-contract formulation: under
// a secure scheme, executions that differ only in secret data must be
// indistinguishable to a co-resident attacker. The unsafe baseline must
// diverge (otherwise the oracle is vacuous), and the planted mutations of
// secure.Mutation must each be caught (otherwise the oracle is blind).
package leakcheck

import (
	"fmt"
	"math/rand"
	"strings"

	"doppelganger/internal/isa"
	"doppelganger/internal/program"
)

// Kind selects the gadget family.
type Kind uint8

// Gadget kinds.
const (
	// KindBoundsCheck is a Spectre-v1 shape: a bounds check whose bound
	// loads from a cold cache line mispredicts on the final round, and the
	// wrong path loads the secret and transmits it through a
	// secret-indexed probe-array load.
	KindBoundsCheck Kind = iota
	// KindStoreBypass is a Spectre-v4 shape: a store to the secret cell
	// whose address operand arrives late is speculatively bypassed by a
	// younger load, which reads the stale secret and transmits it before
	// the memory-order violation squash.
	KindStoreBypass

	numKinds
)

var kindNames = [numKinds]string{
	KindBoundsCheck: "bounds-check",
	KindStoreBypass: "store-bypass",
}

// String returns the kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Gadget parameter bounds. Rounds needs a floor so the branch predictor has
// time to train toward the architectural direction before the final-round
// mispredict.
const (
	minRounds      = 6
	maxRounds      = 24
	maxShadowDepth = 3
	maxChainLen    = 6
	maxTrainLoops  = 2

	// minSecret keeps secrets above every probe index reachable from
	// public execution, so the wrong-path probe line is guaranteed cold
	// and distinct from every committed or prefetched line in both runs.
	// The transmission chain is affine mod 256, so the publicly
	// reachable probe indices are exactly f({0..7} + prefetch reach);
	// with PrefetchDistance 12 and degree 2 that is f({0..21}).
	// Without this margin a secret could alias a publicly warmed line
	// and mask — or, under DoM's hit/miss asymmetry, falsely time — the
	// transmission.
	minSecret = 24
)

// Gadget memory layout (byte addresses). Regions are far apart so the only
// cache lines two runs can disagree on are the secret-indexed probe lines.
const (
	idxTableBase = 0x10_000 // per-round index sequence (bounds-check kind)
	arrBase      = 0x20_000 // victim array; the secret sits past its end
	probeBase    = 0x40_000 // 256-line transmission array
	probe2Base   = 0x48_000 // second transmission array (DoubleTransmit)
	guardBase    = 0x60_000 // cold lines producing late-arriving operands
	trainBase    = 0x80_000 // committed streaming loads (predictor warm-up)
	cellBase     = 0xA0_000 // secret cell (store-bypass kind)
	ptabBase     = 0xC0_000 // per-round pointers into the guard region

	lineSize   = 64
	secretWord = 64 // word offset of the secret past arrBase (line-disjoint)
	boundValue = 8  // architectural bound: in-bounds indices are 0..7
	pubValue   = 77 // public value the bypassed store writes
)

// Register allocation. The builder panics on out-of-range registers, so
// these stay well inside isa.NumRegs.
const (
	rAcc    = isa.Reg(1)  // committed accumulator (keeps loads live)
	rPIdx   = isa.Reg(2)  // index-table cursor
	rPEnd   = isa.Reg(3)  // index-table end
	rPGuard = isa.Reg(4)  // guard-region cursor
	rIdx    = isa.Reg(5)  // current index / round counter
	rBound  = isa.Reg(6)  // late-arriving bound
	rT      = isa.Reg(7)  // address temporary
	rX      = isa.Reg(8)  // transmitted value
	rY      = isa.Reg(9)  // probe result
	rZ      = isa.Reg(10) // second-channel temporary
	rPtr    = isa.Reg(11) // train-loop cursor
	rCnt    = isa.Reg(12) // train-loop counter
	rLim    = isa.Reg(13) // train-loop limit
	rTmp    = isa.Reg(14) // victim warm-up scratch
	rPCell  = isa.Reg(15) // secret-cell pointer (store-bypass)
	rPub    = isa.Reg(16) // public store value (store-bypass)
	rSBase  = isa.Reg(17) // late-resolving store base (store-bypass)
	rPTab   = isa.Reg(18) // guard-pointer-table cursor
	rGB     = isa.Reg(19) // this round's guard base (loaded from the table)
)

// Params fully determines a gadget program (together with the secret byte
// passed to Build). All fields are derived deterministically from Seed by
// Generate, but the fuzzer mutates them directly, so Build accepts any
// combination after Normalize.
type Params struct {
	Seed int64
	Kind Kind
	// Rounds is the number of trips through the access loop. In the
	// bounds-check kind all but the last are in-bounds training rounds.
	Rounds int
	// ShadowDepth adds extra speculation shadows around the transmission:
	// nested bounds checks whose bounds load from cold lines.
	ShadowDepth int
	// ChainLen inserts extra ALU operations between the secret load and
	// the transmitting access. Operations are restricted to bijections
	// mod 256 (AddI, MulI by an odd constant) so distinct secrets always
	// transmit through distinct probe lines.
	ChainLen int
	// TrainLoops prepends committed streaming loops that warm the stride
	// predictor/prefetcher table with public patterns.
	TrainLoops int
	// DoubleTransmit adds a second secret-dependent load into a disjoint
	// probe array.
	DoubleTransmit bool
	// SecretA and SecretB are the two secret bytes; the differential pair
	// is (Build(SecretA), Build(SecretB)).
	SecretA, SecretB uint8
}

// Generate derives the gadget parameters for a seed. The same seed always
// yields the same Params, so a leak report is reproducible from its seed
// alone.
func Generate(seed int64) Params {
	r := rand.New(rand.NewSource(seed))
	p := Params{
		Seed:           seed,
		Kind:           Kind(r.Intn(int(numKinds))),
		Rounds:         minRounds + r.Intn(maxRounds-minRounds+1),
		ShadowDepth:    r.Intn(maxShadowDepth + 1),
		ChainLen:       r.Intn(maxChainLen + 1),
		TrainLoops:     r.Intn(maxTrainLoops + 1),
		DoubleTransmit: r.Intn(2) == 1,
	}
	p.SecretA = uint8(minSecret + r.Intn(256-minSecret))
	p.SecretB = uint8(minSecret + r.Intn(256-minSecret-1))
	if p.SecretB >= p.SecretA {
		p.SecretB++
	}
	return p
}

// Normalize clamps the parameters into the ranges Build supports and
// forces the secrets into [minSecret, 255] with SecretA != SecretB. The
// fuzzer feeds arbitrary field values through this.
func (p Params) Normalize() Params {
	p.Kind %= numKinds
	p.Rounds = clamp(p.Rounds, minRounds, maxRounds)
	p.ShadowDepth = clamp(p.ShadowDepth, 0, maxShadowDepth)
	p.ChainLen = clamp(p.ChainLen, 0, maxChainLen)
	p.TrainLoops = clamp(p.TrainLoops, 0, maxTrainLoops)
	if p.SecretA < minSecret {
		p.SecretA += minSecret
	}
	if p.SecretB < minSecret {
		p.SecretB += minSecret
	}
	if p.SecretA == p.SecretB {
		// Flipping bit 0 preserves >= minSecret and guarantees distinctness.
		p.SecretB = p.SecretA ^ 1
	}
	return p
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String renders the parameters compactly for leak reports.
func (p Params) String() string {
	return fmt.Sprintf("seed=%d kind=%s rounds=%d depth=%d chain=%d train=%d double=%t secrets=0x%02x/0x%02x",
		p.Seed, p.Kind, p.Rounds, p.ShadowDepth, p.ChainLen, p.TrainLoops,
		p.DoubleTransmit, p.SecretA, p.SecretB)
}

// chainOp is one ALU step of the transmission chain. Both forms are
// bijective mod 256 (k is odd when mul), so composed chains keep distinct
// secrets on distinct probe lines.
type chainOp struct {
	mul bool
	k   int64
}

// chainOps derives the chain from the seed. The stream depends only on
// Seed, so a shorter ChainLen is a strict prefix — minimization can shrink
// the chain without changing the surviving steps.
func (p Params) chainOps() []chainOp {
	r := rand.New(rand.NewSource(p.Seed ^ 0x5bf0_3635))
	ops := make([]chainOp, 0, p.ChainLen)
	for i := 0; i < p.ChainLen; i++ {
		if r.Intn(2) == 0 {
			ops = append(ops, chainOp{mul: false, k: int64(1 + r.Intn(255))})
		} else {
			ops = append(ops, chainOp{mul: true, k: int64(1 + 2*r.Intn(128))})
		}
	}
	return ops
}

// initGuardTable lays out the guard region and the per-round pointer table.
// Each round owns ShadowDepth+1 consecutive guard lines, but rounds visit
// the region in a seed-derived pseudorandom order read through the pointer
// table. The indirection matters: a linear walk has a constant stride, so
// the commit-trained prefetcher would warm future guard lines and collapse
// the speculation window the gadget needs. The table itself is
// stride-prefetchable — its contents are not.
//
// Guard line d of round i holds boundVal[d]; the returned per-round base
// addresses are what the table holds.
func (p Params) initGuardTable(b *program.Builder, boundVal func(d int) int64) {
	perRound := uint64(p.ShadowDepth+1) * lineSize
	order := rand.New(rand.NewSource(p.Seed ^ 0x7f4a_7c15)).Perm(p.Rounds)
	for i := 0; i < p.Rounds; i++ {
		base := guardBase + uint64(order[i])*perRound
		b.InitMem(ptabBase+uint64(i)*program.WordSize, int64(base))
		for d := 0; d <= p.ShadowDepth; d++ {
			b.InitMem(base+uint64(d)*lineSize, boundVal(d))
		}
	}
}

// Build constructs the gadget program with the given secret byte planted.
// Two builds of the same Params differ only in the one initial-memory word
// holding the secret — everything an attacker may legitimately observe is
// identical by construction.
func (p Params) Build(secret uint8) *program.Program {
	p = p.Normalize()
	switch p.Kind {
	case KindStoreBypass:
		return p.buildStoreBypass(secret)
	default:
		return p.buildBoundsCheck(secret)
	}
}

// emitTrainLoops prepends committed streaming loops over public data,
// giving the stride predictor/prefetcher table confident public entries
// before the gadget body runs.
func (p Params) emitTrainLoops(b *program.Builder) {
	for l := 0; l < p.TrainLoops; l++ {
		base := uint64(trainBase + l*0x1000)
		for i := 0; i < 16; i++ {
			b.InitMem(base+uint64(i)*program.WordSize, int64(i+1))
		}
		b.LoadI(rPtr, int64(base))
		b.LoadI(rCnt, 0)
		b.LoadI(rLim, 16)
		loop := b.Here()
		b.Load(rT, rPtr, 0)
		b.AddI(rPtr, rPtr, program.WordSize)
		b.AddI(rCnt, rCnt, 1)
		b.Blt(rCnt, rLim, loop)
	}
}

// emitTransmit lowers the chain and the probe access(es): rX holds the
// value to transmit; after the chain it indexes the probe array at line
// granularity. On the committed path rX is always public.
func (p Params) emitTransmit(b *program.Builder) {
	for _, op := range p.chainOps() {
		if op.mul {
			b.MulI(rX, rX, op.k)
		} else {
			b.AddI(rX, rX, op.k)
		}
	}
	b.AndI(rX, rX, 255)
	b.ShlI(rT, rX, 6)
	b.AddI(rT, rT, probeBase)
	b.Load(rY, rT, 0)
	b.Add(rAcc, rAcc, rY)
	if p.DoubleTransmit {
		// A second, independently mixed channel: x*3+11 is bijective mod
		// 256, so the probe2 line is also distinct across distinct secrets.
		b.MulI(rZ, rX, 3)
		b.AddI(rZ, rZ, 11)
		b.AndI(rZ, rZ, 255)
		b.ShlI(rZ, rZ, 6)
		b.AddI(rZ, rZ, probe2Base)
		b.Load(rZ, rZ, 0)
		b.Add(rAcc, rAcc, rZ)
	}
}

// buildBoundsCheck emits the Spectre-v1 shape. The index table holds
// in-bounds values for every round but the last, whose entry points at the
// secret word past the array's end. Each round's bound loads from a fresh
// cold guard line, holding the bounds checks unresolved while the wrong
// path runs.
func (p Params) buildBoundsCheck(secret uint8) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("leakcheck/%s/seed%d", p.Kind, p.Seed))

	// In-bounds indices are seed-random, not cyclic: a repeating ramp
	// would give the committed probe accesses a near-constant stride for
	// the prefetcher to extend.
	idxr := rand.New(rand.NewSource(p.Seed ^ 0x2545_f491))
	for i := 0; i < p.Rounds; i++ {
		v := int64(idxr.Intn(boundValue))
		if i == p.Rounds-1 {
			v = secretWord
		}
		b.InitMem(idxTableBase+uint64(i)*program.WordSize, v)
	}
	p.initGuardTable(b, func(int) int64 { return boundValue })
	for i := 0; i < boundValue; i++ {
		b.InitMem(arrBase+uint64(i)*program.WordSize, int64(i))
	}
	b.SecretWord(arrBase+secretWord*program.WordSize, int64(secret))

	// Victim phase: the victim touches its own secret architecturally,
	// leaving the line warm so the wrong-path load hits the L1 and the
	// transmission races ahead of the late bounds check.
	b.LoadI(rTmp, arrBase)
	b.Load(rTmp, rTmp, secretWord*program.WordSize)

	p.emitTrainLoops(b)

	b.LoadI(rAcc, 0)
	b.LoadI(rPIdx, idxTableBase)
	b.LoadI(rPEnd, idxTableBase+int64(p.Rounds)*program.WordSize)
	b.LoadI(rPTab, ptabBase)
	loop := b.NewLabel()
	skip := b.NewLabel()
	b.Bind(loop)
	b.Load(rIdx, rPIdx, 0)
	b.Load(rGB, rPTab, 0)
	// The in-bounds direction is TAKEN (Blt to the access), matching the
	// bimodal counters' weakly-taken reset state. With the inverse sense
	// the first rounds would all mispredict toward skip and the wrong
	// path would stream ahead through the remaining rounds, transiently
	// warming every guard line and collapsing the speculation window the
	// final round needs.
	for d := 0; d <= p.ShadowDepth; d++ {
		next := b.NewLabel()
		b.Load(rBound, rGB, int64(d)*lineSize)
		b.Blt(rIdx, rBound, next)
		b.Jmp(skip)
		b.Bind(next)
	}
	b.ShlI(rT, rIdx, 3)
	b.AddI(rT, rT, arrBase)
	b.Load(rX, rT, 0)
	p.emitTransmit(b)
	b.Bind(skip)
	b.AddI(rPIdx, rPIdx, program.WordSize)
	b.AddI(rPTab, rPTab, program.WordSize)
	b.Blt(rPIdx, rPEnd, loop)
	b.Store(rAcc, rPEnd, 0)
	b.Halt()
	return b.MustBuild()
}

// buildStoreBypass emits the Spectre-v4 shape. Each round stores a public
// value to the secret cell through a base register that arrives from a
// cold guard line, so the store's address resolves late; the younger load
// of the cell issues first and reads the stale value — the secret on round
// one — and transmits it before the violation squash. ShadowDepth adds
// never-taken bounds checks with cold bounds, deepening the shadow without
// changing the architectural path.
func (p Params) buildStoreBypass(secret uint8) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("leakcheck/%s/seed%d", p.Kind, p.Seed))

	// Guard line 0 of each round holds the store's base address (the
	// secret cell); the remaining lines hold never-exceeded bounds.
	p.initGuardTable(b, func(d int) int64 {
		if d == 0 {
			return cellBase
		}
		return 1 << 40
	})
	b.SecretWord(cellBase, int64(secret))

	// Victim phase: warm the cell line so the bypassing load is an L1 hit
	// (and thus propagates even under Delay-on-Miss).
	b.LoadI(rPCell, cellBase)
	b.Load(rTmp, rPCell, 0)

	p.emitTrainLoops(b)

	b.LoadI(rAcc, 0)
	b.LoadI(rPub, pubValue)
	b.LoadI(rPTab, ptabBase)
	b.LoadI(rCnt, 0)
	b.LoadI(rLim, int64(p.Rounds))
	loop := b.NewLabel()
	skip := b.NewLabel()
	b.Bind(loop)
	b.Load(rGB, rPTab, 0)
	// Never-exceeded bounds, checked in the taken sense so the reset-state
	// predictor is correct from round one (see buildBoundsCheck).
	for d := 1; d <= p.ShadowDepth; d++ {
		next := b.NewLabel()
		b.Load(rBound, rGB, int64(d)*lineSize)
		b.Blt(rCnt, rBound, next)
		b.Jmp(skip)
		b.Bind(next)
	}
	b.Load(rSBase, rGB, 0)
	b.Store(rPub, rSBase, 0)
	b.Load(rX, rPCell, 0)
	p.emitTransmit(b)
	b.Bind(skip)
	b.AddI(rPTab, rPTab, program.WordSize)
	b.AddI(rCnt, rCnt, 1)
	b.Blt(rCnt, rLim, loop)
	b.Store(rAcc, rPCell, program.WordSize)
	b.Halt()
	return b.MustBuild()
}

// Disassemble renders the gadget (built with SecretA) as annotated
// assembly, for leak reports and reproducers.
func (p Params) Disassemble() string {
	p = p.Normalize()
	prog := p.Build(p.SecretA)
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s\n", p)
	for pc, in := range prog.Code {
		fmt.Fprintf(&sb, "%4d: %s\n", pc, in.String())
	}
	return sb.String()
}
