package leakcheck

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"doppelganger/internal/secure"
	"doppelganger/sim"
)

// Config names one cell of the scheme matrix a gadget is checked under.
type Config struct {
	Scheme secure.Scheme
	// AP enables doppelganger loads (address prediction).
	AP bool
	// Mutation plants a deliberate weakening of the scheme's protection
	// (mutation mode only; MutNone for real checking).
	Mutation secure.Mutation
	// WarmupInsts, when positive, routes each gadget run through the
	// checkpoint subsystem: warm this many instructions under the target
	// scheme, snapshot, restore, and run the remainder from the
	// checkpoint. Both halves of a differential pair get the identical
	// treatment, so the within-pair digest comparison — the leak oracle —
	// is unchanged; what this sweeps for is divergence *introduced by*
	// snapshot/restore itself.
	WarmupInsts uint64
}

// String renders the config as e.g. "dom+ap" or "stt!stt-no-taint".
func (c Config) String() string {
	s := c.Scheme.String()
	if c.AP {
		s += "+ap"
	}
	if c.Mutation != secure.MutNone {
		s += "!" + c.Mutation.String()
	}
	return s
}

// Secure reports whether the config is expected to be leak-free: a secure
// scheme with its protection intact. The unsafe baseline and every planted
// mutation are expected to leak.
func (c Config) Secure() bool {
	return c.Scheme != secure.Unsafe && c.Mutation == secure.MutNone
}

// DefaultConfigs is the full scheme matrix the checker sweeps:
// {unsafe, NDA-P, STT, DoM} x {address prediction off, on}.
func DefaultConfigs() []Config {
	var out []Config
	for _, s := range secure.Schemes() {
		for _, ap := range []bool{false, true} {
			out = append(out, Config{Scheme: s, AP: ap})
		}
	}
	return out
}

// defaultMaxCycles bounds one gadget run. Gadgets are a few thousand
// cycles; anything near this bound is a wedged machine, reported as an
// error rather than a leak.
const defaultMaxCycles = 10_000_000

// Leak reports a divergence between the two runs of a differential pair:
// the named digest components are attacker-observable state in which the
// runs — identical but for the secret byte — disagree. ObsA and ObsB hold
// the full-lattice observations, so the leak can be re-examined under any
// contract clause; DigestA/DigestB are their legacy µarch projections.
type Leak struct {
	Params     Params
	Config     Config
	Components []string
	DigestA    sim.MicroDigest
	DigestB    sim.MicroDigest
	ObsA       sim.Observation
	ObsB       sim.Observation
}

// String summarises the leak on one line.
func (l *Leak) String() string {
	return fmt.Sprintf("leak under %s via %v (%s)", l.Config, l.Components, l.Params)
}

// LeakingClauses returns the contract clauses under which the pair is
// distinguishable, in canonical lattice order — the cells this leak
// downgrades. A transient-only leak names ct-spec (and pc-spec if control
// flow diverged); a predictor leak trained at commit also names seq cells.
func (l *Leak) LeakingClauses() []sim.Clause {
	var out []sim.Clause
	for _, c := range sim.Lattice() {
		if len(l.ObsA.Diff(&l.ObsB, c)) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Check runs the gadget's differential pair under the config and returns
// the leak, or nil if the runs are indistinguishable under the strongest
// contract clause (the full observation lattice: every µarch component,
// the committed and transient address/control traces, and the
// secret-filtered architectural state). The error path is infrastructure
// failure (context cancellation, wedged simulation), never a leak.
func Check(ctx context.Context, p Params, cfg Config) (*Leak, error) {
	p = p.Normalize()
	oa, err := observationOf(ctx, p, cfg, p.SecretA)
	if err != nil {
		return nil, err
	}
	ob, err := observationOf(ctx, p, cfg, p.SecretB)
	if err != nil {
		return nil, err
	}
	if diff := oa.DiffAll(&ob); len(diff) > 0 {
		return &Leak{Params: p, Config: cfg, Components: diff,
			DigestA: oa.Micro, DigestB: ob.Micro, ObsA: oa, ObsB: ob}, nil
	}
	return nil, nil
}

// SimConfig lowers the scheme-matrix cell to a full simulator config for
// one gadget's runs: the gadget's own core requirements (the branch-poison
// kind swaps in its gshare predictor) with the config's mutation applied.
// The campaign runner shares this lowering so engine-run and in-process
// checks agree on what "the same pair" means.
func (c Config) SimConfig(p Params) sim.Config {
	core := p.CoreConfig()
	core.Mutation = c.Mutation
	return sim.Config{
		Scheme:            c.Scheme,
		AddressPrediction: c.AP,
		MaxCycles:         defaultMaxCycles,
		Core:              &core,
	}
}

// observationOf builds the gadget with one secret and runs it to
// completion, observing the full contract lattice. With WarmupInsts set
// the run goes through snapshot/restore midway instead of straight-line;
// both secrets of a pair take the same path, so observations stay
// comparable.
func observationOf(ctx context.Context, p Params, cfg Config, secret uint8) (sim.Observation, error) {
	prog := p.Build(secret)
	simCfg := cfg.SimConfig(p)
	var o sim.Observation
	var err error
	if cfg.WarmupInsts > 0 {
		var ck *sim.Checkpoint
		ck, err = sim.Snapshot(prog, simCfg, cfg.WarmupInsts)
		if err == nil {
			_, err = sim.RunFromCheckpoint(ctx, prog, simCfg, ck, sim.Observe(&o))
		}
	} else {
		_, err = sim.RunContext(ctx, prog, simCfg, sim.Observe(&o))
	}
	if err != nil {
		return sim.Observation{}, fmt.Errorf("leakcheck: %s secret=0x%02x: %w", p, secret, err)
	}
	return o, nil
}

// SeedLeak pairs a leak with the seed that produced its gadget.
type SeedLeak struct {
	Seed int64
	Leak Leak
}

// SweepResult aggregates one config's leaks over a seed range.
type SweepResult struct {
	Config Config
	Seeds  int
	Leaks  []SeedLeak
}

// Verdict classifies the sweep result against the expectation that secure
// configs never leak and the unsafe baseline always can. It returns a
// non-empty failure description, or "" if the result is as expected.
func (r SweepResult) Verdict() string {
	switch {
	case r.Config.Secure() && len(r.Leaks) > 0:
		return fmt.Sprintf("SECURITY: %d/%d seeds leak under %s (first: %s)",
			len(r.Leaks), r.Seeds, r.Config, r.Leaks[0].Leak.String())
	case !r.Config.Secure() && len(r.Leaks) == 0:
		return fmt.Sprintf("VACUOUS: %s leaked on 0/%d seeds — the oracle saw nothing",
			r.Config, r.Seeds)
	default:
		return ""
	}
}

// Sweep checks seeds [firstSeed, firstSeed+seeds) under every config,
// running up to workers gadget checks concurrently. Results are returned
// in config order with leaks sorted by seed. A non-nil error aborts the
// sweep (first infrastructure failure wins).
func Sweep(ctx context.Context, cfgs []Config, firstSeed int64, seeds, workers int) ([]SweepResult, error) {
	if workers < 1 {
		workers = 1
	}
	results := make([]SweepResult, len(cfgs))
	for i, cfg := range cfgs {
		results[i] = SweepResult{Config: cfg, Seeds: seeds}
	}

	type job struct {
		cfg  int
		seed int64
	}
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				leak, err := Check(cctx, Generate(j.seed), cfgs[j.cfg])
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
						cancel()
					}
				} else if leak != nil {
					results[j.cfg].Leaks = append(results[j.cfg].Leaks, SeedLeak{Seed: j.seed, Leak: *leak})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for ci := range cfgs {
		for s := int64(0); s < int64(seeds); s++ {
			select {
			case jobs <- job{cfg: ci, seed: firstSeed + s}:
			case <-cctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range results {
		sort.Slice(results[i].Leaks, func(a, b int) bool {
			return results[i].Leaks[a].Seed < results[i].Leaks[b].Seed
		})
	}
	return results, nil
}

// MutationOutcome reports whether the leak checker caught one planted
// weakening of a scheme's protection.
type MutationOutcome struct {
	Mutation secure.Mutation
	Config   Config
	// Detected is true when some seed's gadget leaked under the mutated
	// scheme; Seed is the first such seed and Leak the divergence.
	Detected   bool
	Seed       int64
	SeedsTried int
	Leak       *Leak
	// Downgrades lists the contract clauses the detecting leak violates:
	// the cells of the scheme's contract matrix the planted weakening
	// demotes from satisfied to leaked.
	Downgrades []sim.Clause
}

// GauntletParams is the gadget stream the mutation gauntlet hunts with:
// Generate's frozen stream, plus a per-target bias the stream itself cannot
// express. Weakenings of an undo scheme (Cleanup) only become observable
// when the wrong-path fill evicts a valid line — rollback into an invalid
// way is identical with or without the planted bug — so for those targets
// every hunted gadget gets Prime set, filling the L1 before the body runs.
func GauntletParams(seed int64, m secure.Mutation) Params {
	p := Generate(seed)
	if scheme, _ := m.Target(); scheme.UndoesSpeculation() {
		p.Prime = true
	}
	return p
}

// MutationGauntlet plants each weakening of secure.Mutations into its
// target scheme and hunts seeds [firstSeed, firstSeed+maxSeeds) for a
// gadget that exposes it. Every mutation must be Detected, or the oracle
// is blind to that protection. Mutations are hunted concurrently; seeds
// within one mutation sequentially (so Seed is the smallest detecting
// seed).
func MutationGauntlet(ctx context.Context, firstSeed int64, maxSeeds int) ([]MutationOutcome, error) {
	muts := secure.Mutations()
	out := make([]MutationOutcome, len(muts))
	errs := make([]error, len(muts))
	var wg sync.WaitGroup
	for i, m := range muts {
		scheme, needAP := m.Target()
		out[i] = MutationOutcome{Mutation: m, Config: Config{Scheme: scheme, AP: needAP, Mutation: m}}
		wg.Add(1)
		go func(i int, m secure.Mutation) {
			defer wg.Done()
			o := &out[i]
			for s := int64(0); s < int64(maxSeeds); s++ {
				seed := firstSeed + s
				leak, err := Check(ctx, GauntletParams(seed, m), o.Config)
				o.SeedsTried++
				if err != nil {
					errs[i] = err
					return
				}
				if leak != nil {
					o.Detected = true
					o.Seed = seed
					o.Leak = leak
					o.Downgrades = leak.LeakingClauses()
					return
				}
			}
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
