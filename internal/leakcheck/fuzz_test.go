package leakcheck

import (
	"context"
	"testing"
)

// FuzzLeakage is the native fuzz entry: the fuzzer mutates raw gadget
// parameters (normalized into the supported ranges), and the oracle
// asserts that no intact secure scheme — with or without doppelganger
// loads — distinguishes the differential pair. A failing input is a
// micro-architectural information leak in one of the protection schemes.
//
// Run locally with:
//
//	go test -run '^$' -fuzz FuzzLeakage -fuzztime 60s ./internal/leakcheck
func FuzzLeakage(f *testing.F) {
	// Corpus: every kind, feature corners, and a couple of Generate points.
	f.Add(int64(1), uint8(KindBoundsCheck), 12, 2, 3, 1, false, 0, 0, 0, 0, uint8(0xcf), uint8(0x26))
	f.Add(int64(2), uint8(KindStoreBypass), 8, 0, 0, 0, false, 0, 0, 0, 0, uint8(0x80), uint8(0x81))
	f.Add(int64(3), uint8(KindBoundsCheck), maxRounds, maxShadowDepth, maxChainLen, maxTrainLoops, true, 0, 0, 0, 0, uint8(0xff), uint8(0x18))
	f.Add(int64(4), uint8(KindStoreBypass), minRounds, maxShadowDepth, 2, 1, true, 0, 0, 0, 0, uint8(0x55), uint8(0xaa))
	f.Add(int64(5), uint8(KindBranchPoison), 12, 0, 2, 1, false, minAliasTrainings, 3, 0, 0, uint8(0xcf), uint8(0x26))
	f.Add(int64(6), uint8(KindBranchPoison), maxRounds, 0, 0, 0, true, maxAliasTrainings, maxAliasPad, 0, 0, uint8(0x41), uint8(0xf0))
	f.Add(int64(7), uint8(KindContention), 10, 1, 0, 0, false, 0, 0, minPressureWidth, 0, uint8(0x55), uint8(0xaa))
	f.Add(int64(8), uint8(KindContention), maxRounds, maxShadowDepth, 3, 1, true, 0, 0, maxPressureWidth, 7, uint8(0x2f), uint8(0xec))

	cfgs := DefaultConfigs()
	f.Fuzz(func(t *testing.T, seed int64, kind uint8, rounds, depth, chain, train int, double bool, alias, pad, width, bit int, sa, sb uint8) {
		p := Params{
			Seed:           seed,
			Kind:           Kind(kind),
			Rounds:         rounds,
			ShadowDepth:    depth,
			ChainLen:       chain,
			TrainLoops:     train,
			DoubleTransmit: double,
			AliasTrainings: alias,
			AliasPad:       pad,
			PressureWidth:  width,
			SecretBit:      bit,
			SecretA:        sa,
			SecretB:        sb,
		}.Normalize()
		ctx := context.Background()
		for _, cfg := range cfgs {
			if !cfg.Secure() {
				continue
			}
			leak, err := Check(ctx, p, cfg)
			if err != nil {
				t.Fatalf("%s: %v", cfg, err)
			}
			if leak != nil {
				t.Errorf("LEAK under %s via %v\ndigest A: %+v\ndigest B: %+v\nreproducer:\n%s",
					cfg, leak.Components, leak.DigestA, leak.DigestB, p.Disassemble())
			}
		}
	})
}
