package leakcheck

import (
	"context"
	"os"
	"runtime"
	"testing"

	"doppelganger/internal/secure"
	"doppelganger/sim"
)

// TestContractMatrixGolden pins the measured per-scheme contract matrix:
// the unsafe baseline leaks exactly under ct-spec (its committed traces and
// architectural results are secret-independent — only transiently performed
// accesses differ), and every intact secure scheme, with and without
// doppelganger loads, satisfies the entire lattice. The golden file is the
// same one CI diffs via `leakcheck -contracts -golden`; regenerate with
// -update-golden after an intentional contract change.
//
// The swept set is the CLI default: DefaultConfigs (the paper's four
// schemes) plus the undo-based cleanup±ap rows. Cleanup stays out of
// DefaultConfigs itself because the campaign inherits that list and its
// genome space includes primed gadgets, where intact cleanup has a known
// benign divergence mode (the LRU victim-perturbation residual) that must
// not read as a security failure; the contract sweep's frozen Generate
// stream is un-primed, so these rows are exact.
func TestContractMatrixGolden(t *testing.T) {
	cfgs := DefaultConfigs()
	for _, ap := range []bool{false, true} {
		cfgs = append(cfgs, Config{Scheme: secure.Cleanup, AP: ap})
	}
	results, err := ContractSweep(context.Background(), cfgs, 0, testSeeds, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("testdata/contract_matrix.json")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ParseMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range MatrixOf(results).Diff(want) {
		t.Error(d)
	}

	// The matrix must not be vacuous: the unsafe rows have to be
	// distinguishable on every seed, through cache state and the transient
	// address trace.
	for _, r := range results {
		if r.Config.Secure() {
			continue
		}
		cell := r.cell(sim.CTSpec)
		if cell.Leaks != r.Seeds {
			t.Errorf("%s: ct-spec leaked on %d/%d seeds, want all", r.Config, cell.Leaks, r.Seeds)
		}
		found := false
		for _, c := range cell.Components {
			if c == "addr-trace-spec" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: ct-spec leak components %v missing addr-trace-spec", r.Config, cell.Components)
		}
	}
}

// TestMutationDowngradesContractCells asserts every planted weakening
// manifests as a contract downgrade — at least one lattice cell the intact
// scheme satisfies goes to leaked — and that spec-train, which trains the
// address predictor on wrong-path state that survives squash, demotes a
// committed-mode (seq) cell, not just the transient ones.
func TestMutationDowngradesContractCells(t *testing.T) {
	out, err := MutationGauntlet(context.Background(), 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if !o.Detected {
			t.Errorf("mutation %s not detected", o.Mutation)
			continue
		}
		if len(o.Downgrades) == 0 {
			t.Errorf("mutation %s detected but downgrades no contract cell", o.Mutation)
			continue
		}
		for _, c := range o.Downgrades {
			if !sim.CTSpec.Covers(c) && !sim.PCSpec.Covers(c) && !sim.CTSeq.Covers(c) {
				t.Errorf("mutation %s: downgraded clause %s outside the lattice", o.Mutation, c)
			}
		}
		if o.Mutation.String() == "spec-train" {
			seq := false
			for _, c := range o.Downgrades {
				if c.Exec == sim.ExecSeq {
					seq = true
				}
			}
			if !seq {
				t.Errorf("spec-train downgrades %v: expected a committed-mode cell (predictor trained past squash)", o.Downgrades)
			}
		}
	}
}

// TestStrongestIsMaximalAntichain exercises Strongest on a hand-built
// result: with ct-spec leaked and everything else satisfied, the maximal
// satisfied clauses are the incomparable pair {pc-spec, ct-seq}.
func TestStrongestIsMaximalAntichain(t *testing.T) {
	r := ContractResult{Seeds: 1}
	for _, c := range sim.Lattice() {
		cell := ClauseCell{Clause: c}
		if c == sim.CTSpec {
			cell.Leaks = 1
		}
		r.Cells = append(r.Cells, cell)
	}
	got := r.Strongest()
	if len(got) != 2 || got[0] != sim.PCSpec || got[1] != sim.CTSeq {
		t.Fatalf("Strongest = %v, want [pc-spec ct-seq]", got)
	}
	for _, c := range got {
		for _, d := range got {
			if c != d && c.Covers(d) {
				t.Fatalf("Strongest %v is not an antichain: %s covers %s", got, c, d)
			}
		}
	}

	// All satisfied → the single top clause.
	all := ContractResult{Seeds: 1}
	for _, c := range sim.Lattice() {
		all.Cells = append(all.Cells, ClauseCell{Clause: c})
	}
	if got := all.Strongest(); len(got) != 1 || got[0] != sim.CTSpec {
		t.Fatalf("all-satisfied Strongest = %v, want [ct-spec]", got)
	}

	// Even arch-seq leaked → empty.
	none := ContractResult{Seeds: 1}
	for _, c := range sim.Lattice() {
		none.Cells = append(none.Cells, ClauseCell{Clause: c, Leaks: 1})
	}
	if got := none.Strongest(); len(got) != 0 {
		t.Fatalf("all-leaked Strongest = %v, want empty", got)
	}
}

// TestMatrixDiff checks the golden comparator reports downgraded cells,
// strongest-set drift, and rows present on only one side.
func TestMatrixDiff(t *testing.T) {
	base := ContractMatrix{Entries: []MatrixEntry{{
		Config: "stt",
		Clauses: map[string]string{
			"arch-seq": "satisfied", "arch-spec": "satisfied",
			"pc-seq": "satisfied", "pc-spec": "satisfied",
			"ct-seq": "satisfied", "ct-spec": "satisfied",
		},
		Strongest: []string{"ct-spec"},
	}}}
	if d := base.Diff(base); len(d) != 0 {
		t.Fatalf("self-diff not empty: %v", d)
	}

	weakened := ContractMatrix{Entries: []MatrixEntry{{
		Config: "stt",
		Clauses: map[string]string{
			"arch-seq": "satisfied", "arch-spec": "satisfied",
			"pc-seq": "satisfied", "pc-spec": "satisfied",
			"ct-seq": "satisfied", "ct-spec": "leaked",
		},
		Strongest: []string{"pc-spec", "ct-seq"},
	}}}
	d := weakened.Diff(base)
	if len(d) != 2 {
		t.Fatalf("downgrade diff = %v, want cell + strongest mismatch", d)
	}

	extra := ContractMatrix{Entries: append(base.Entries, MatrixEntry{Config: "dom"})}
	if d := extra.Diff(base); len(d) != 1 {
		t.Fatalf("extra-row diff = %v, want one missing-from-golden line", d)
	}
	if d := base.Diff(extra); len(d) != 1 {
		t.Fatalf("missing-row diff = %v, want one not-swept line", d)
	}
}

// TestLeakingClausesConsistent: for an unsafe leak, the clauses reported
// by LeakingClauses must be exactly those whose Diff is non-empty, and
// must be upward closed (if a weaker observer distinguishes the pair, any
// stronger one does too).
func TestLeakingClausesConsistent(t *testing.T) {
	leak, err := Check(context.Background(), Generate(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if leak == nil {
		t.Fatal("seed 0 does not leak under unsafe")
	}
	clauses := leak.LeakingClauses()
	if len(clauses) == 0 {
		t.Fatal("leak reports no leaking clauses")
	}
	for _, lc := range clauses {
		for _, c := range sim.Lattice() {
			if c.Covers(lc) {
				if len(leak.ObsA.Diff(&leak.ObsB, c)) == 0 {
					t.Errorf("clause %s leaks but covering clause %s does not — visibility not monotone", lc, c)
				}
			}
		}
	}
}
