package leakcheck_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"doppelganger/internal/campaign"
	"doppelganger/internal/leakcheck"
	"doppelganger/internal/secure"
)

// updateCorpus regenerates testdata/corpus/ from a fixed-seed campaign
// against the unsafe baseline:
//
//	go test ./internal/leakcheck -run TestReplayCorpus -update-corpus
//
// Only do this after an intentional gadget or observation change; the
// checked-in reproducers are the regression corpus of past leaks.
var updateCorpus = flag.Bool("update-corpus", false,
	"regenerate testdata/corpus/ from a fixed-seed campaign instead of replaying it")

// corpusEntry is one checked-in minimized leak reproducer. The scheme is
// stored by name so the files stay reviewable; params marshal with their
// Go field names, matching internal/campaign's corpus records. Mutation,
// when set, names the planted weakening the reproducer exercises — those
// entries pin a gauntlet find (the leak must vanish when the same scheme
// runs intact), not a baseline channel.
type corpusEntry struct {
	Description string           `json:"description"`
	Scheme      string           `json:"scheme"`
	AP          bool             `json:"ap,omitempty"`
	Mutation    string           `json:"mutation,omitempty"`
	Params      leakcheck.Params `json:"params"`
	Components  []string         `json:"components"`
	Clauses     []string         `json:"clauses,omitempty"`
	Key         string           `json:"key"`
}

const corpusDir = "testdata/corpus"

// TestReplayCorpus replays every checked-in minimized reproducer: each
// must still leak under the config that originally caught it, through the
// same observation components, and must stay indistinguishable under every
// intact secure scheme. This is the regression net for past campaign
// finds — a simulator change that silently closes (or reroutes) one of
// these channels fails here, not in a nightly campaign three days later.
func TestReplayCorpus(t *testing.T) {
	if *updateCorpus {
		regenerateCorpus(t)
	}
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no reproducers in %s (run with -update-corpus to generate)", corpusDir)
	}
	ctx := context.Background()
	var secureCfgs []leakcheck.Config
	for _, cfg := range leakcheck.DefaultConfigs() {
		if cfg.Secure() {
			secureCfgs = append(secureCfgs, cfg)
		}
	}
	kinds := map[string]bool{}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var e corpusEntry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("bad corpus entry: %v", err)
			}
			scheme, err := secure.ParseScheme(e.Scheme)
			if err != nil {
				t.Fatalf("bad corpus scheme: %v", err)
			}
			mut := secure.MutNone
			if e.Mutation != "" {
				if mut, err = secure.ParseMutation(e.Mutation); err != nil {
					t.Fatalf("bad corpus mutation: %v", err)
				}
			}
			kinds[e.Params.Kind.String()] = true

			cfg := leakcheck.Config{Scheme: scheme, AP: e.AP, Mutation: mut}
			leak, err := leakcheck.Check(ctx, e.Params, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if leak == nil {
				t.Fatalf("reproducer no longer leaks under %s: %s", cfg, e.Params)
			}
			if mut != secure.MutNone {
				// A mutation reproducer pins the planted bug, not a baseline
				// channel: the same gadget must be silent when the scheme's
				// protection is intact.
				intact := leakcheck.Config{Scheme: scheme, AP: e.AP}
				clean, err := leakcheck.Check(ctx, e.Params, intact)
				if err != nil {
					t.Fatal(err)
				}
				if clean != nil {
					t.Errorf("mutation reproducer leaks under intact %s via %v — not the planted bug's doing",
						intact, clean.Components)
				}
			}
			if !reflect.DeepEqual(leak.Components, e.Components) {
				t.Errorf("components drifted under %s:\n  got  %v\n  want %v\n(regenerate with -update-corpus if intentional)",
					cfg, leak.Components, e.Components)
			}
			if key := campaign.LeakKey(e.Params, cfg); key != e.Key {
				t.Errorf("key drifted: got %s, want %s", key, e.Key)
			}

			for _, sc := range secureCfgs {
				leak, err := leakcheck.Check(ctx, e.Params, sc)
				if err != nil {
					t.Fatal(err)
				}
				if leak != nil {
					t.Errorf("reproducer distinguishable under intact %s via %v", sc, leak.Components)
				}
			}
		})
	}
	// The corpus must exercise every gadget family, or a family could
	// regress without any replay noticing.
	if len(kinds) < len(leakcheck.Kinds()) {
		t.Errorf("corpus covers %d gadget families, want all %d: %v",
			len(kinds), len(leakcheck.Kinds()), kinds)
	}
}

// regenerateCorpus reruns the fixed-seed campaign that produced the
// corpus and rewrites one reproducer file per gadget family.
func regenerateCorpus(t *testing.T) {
	t.Helper()
	sum, err := campaign.Run(context.Background(), campaign.Options{
		Configs: []leakcheck.Config{{Scheme: secure.Unsafe}},
		Budget:  48,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	perKind := map[string]campaign.LeakRecord{}
	for _, lk := range sum.Leaks {
		kind := lk.Params.Kind.String()
		if _, ok := perKind[kind]; !ok {
			perKind[kind] = lk
		}
	}
	if len(perKind) < len(leakcheck.Kinds()) {
		t.Fatalf("campaign found %d gadget families, want all %d — raise the budget", len(perKind), len(leakcheck.Kinds()))
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var names []string
	for kind := range perKind {
		names = append(names, kind)
	}
	sort.Strings(names)
	for _, kind := range names {
		lk := perKind[kind]
		// The campaign records the components of the original find; the
		// minimized reproducer can diverge through a narrower set, and the
		// replay asserts on what the checked-in params actually do.
		leak, err := leakcheck.Check(context.Background(), lk.Params, lk.Config)
		if err != nil {
			t.Fatal(err)
		}
		if leak == nil {
			t.Fatalf("minimized %s reproducer does not replay", kind)
		}
		var clauses []string
		for _, c := range leak.LeakingClauses() {
			clauses = append(clauses, c.String())
		}
		e := corpusEntry{
			Description: fmt.Sprintf("minimized %s reproducer from the seed-1 unsafe campaign", kind),
			Scheme:      lk.Config.Scheme.String(),
			AP:          lk.Config.AP,
			Params:      lk.Params,
			Components:  leak.Components,
			Clauses:     clauses,
			Key:         lk.Key,
		}
		data, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(corpusDir, kind+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", path, lk.Params)
	}
	regenerateCleanupReproducer(t)
}

// regenerateCleanupReproducer reruns the fixed-seed campaign against the
// planted cleanup-no-lru-undo weakening and rewrites its reproducer file.
// Unlike the per-kind stage above, the leak here is the planted rollback
// bug's doing: the entry is only checked in after verifying the same
// gadget is silent under intact Cleanup.
func regenerateCleanupReproducer(t *testing.T) {
	t.Helper()
	cfg := leakcheck.Config{Scheme: secure.Cleanup, Mutation: secure.MutCleanupNoLRUUndo}
	sum, err := campaign.Run(context.Background(), campaign.Options{
		Configs: []leakcheck.Config{cfg},
		Budget:  32,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, lk := range sum.Leaks {
		leak, err := leakcheck.Check(context.Background(), lk.Params, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if leak == nil {
			t.Fatalf("minimized cleanup reproducer does not replay: %s", lk.Params)
		}
		clean, err := leakcheck.Check(context.Background(), lk.Params, leakcheck.Config{Scheme: secure.Cleanup})
		if err != nil {
			t.Fatal(err)
		}
		if clean != nil {
			// The LRU victim-perturbation residual, not the planted bug —
			// keep hunting for a reproducer that isolates the weakening.
			continue
		}
		var clauses []string
		for _, c := range leak.LeakingClauses() {
			clauses = append(clauses, c.String())
		}
		e := corpusEntry{
			Description: "minimized cleanup-no-lru-undo reproducer from the seed-1 mutation campaign",
			Scheme:      cfg.Scheme.String(),
			Mutation:    cfg.Mutation.String(),
			Params:      lk.Params,
			Components:  leak.Components,
			Clauses:     clauses,
			Key:         lk.Key,
		}
		data, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(corpusDir, cfg.Mutation.String()+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", path, lk.Params)
		return
	}
	t.Fatal("cleanup campaign found no reproducer that is silent under intact Cleanup — raise the budget")
}
