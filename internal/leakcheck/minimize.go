package leakcheck

import "context"

// Minimize greedily shrinks a leaking gadget's parameters while the leak
// persists under the same config, returning the smallest reproducer found.
// Each pass tries, per field: jumping straight to the minimum, then
// stepping down one at a time; boolean features are simply dropped. The
// chain is seed-prefix-stable (see chainOps), so reducing ChainLen keeps
// the surviving operations identical. Passes repeat until a fixpoint.
//
// An infrastructure error (context cancellation) aborts minimization and
// returns the best reproducer found so far alongside the error.
func Minimize(ctx context.Context, leak Leak) (Params, error) {
	p := leak.Params.Normalize()
	cfg := leak.Config

	var firstErr error
	leaks := func(q Params) bool {
		if firstErr != nil {
			return false
		}
		l, err := Check(ctx, q, cfg)
		if err != nil {
			firstErr = err
			return false
		}
		return l != nil
	}

	shrinkInt := func(get func(*Params) *int, min int) bool {
		changed := false
		if f := get(&p); *f > min {
			q := p
			*get(&q) = min
			if leaks(q) {
				p = q
				return true
			}
		}
		for *get(&p) > min {
			q := p
			*get(&q)--
			if !leaks(q) {
				break
			}
			p = q
			changed = true
		}
		return changed
	}

	for changed := true; changed && firstErr == nil; {
		changed = false
		if p.DoubleTransmit {
			q := p
			q.DoubleTransmit = false
			if leaks(q) {
				p = q
				changed = true
			}
		}
		if p.Prime {
			q := p
			q.Prime = false
			if leaks(q) {
				p = q
				changed = true
			}
		}
		if shrinkInt(func(q *Params) *int { return &q.ChainLen }, 0) {
			changed = true
		}
		if shrinkInt(func(q *Params) *int { return &q.TrainLoops }, 0) {
			changed = true
		}
		if shrinkInt(func(q *Params) *int { return &q.ShadowDepth }, 0) {
			changed = true
		}
		if shrinkInt(func(q *Params) *int { return &q.Rounds }, minRounds) {
			changed = true
		}
		// Kind-specific fields shrink toward the owning kind's floor; the
		// other kinds ignore them, so there they just tidy to zero.
		minAlias, minPress := 0, 0
		if p.Kind == KindBranchPoison {
			minAlias = minAliasTrainings
		}
		if p.Kind == KindContention {
			minPress = minPressureWidth
		}
		if shrinkInt(func(q *Params) *int { return &q.AliasPad }, 0) {
			changed = true
		}
		if shrinkInt(func(q *Params) *int { return &q.AliasTrainings }, minAlias) {
			changed = true
		}
		if shrinkInt(func(q *Params) *int { return &q.PressureWidth }, minPress) {
			changed = true
		}
		if shrinkInt(func(q *Params) *int { return &q.SecretBit }, 0) {
			changed = true
		}
	}
	return p, firstErr
}
