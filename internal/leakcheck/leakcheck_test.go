package leakcheck

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"doppelganger/internal/secure"
)

// testSeeds is the per-test seed budget: large enough that both gadget
// kinds and all parameter corners appear, small enough for the tier-1 run.
const testSeeds = 32

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a != b {
			t.Fatalf("Generate(%d) not deterministic: %v vs %v", seed, a, b)
		}
		if a != a.Normalize() {
			t.Errorf("Generate(%d) = %v not normalized", seed, a)
		}
	}
	if Generate(1) == Generate(2) {
		t.Error("distinct seeds produced identical params")
	}
}

// TestDifferentialPairIdentical checks the construction invariant the whole
// oracle rests on: the two programs of a pair are identical except for the
// one initial-memory word holding the secret.
func TestDifferentialPairIdentical(t *testing.T) {
	for seed := int64(0); seed < testSeeds; seed++ {
		p := Generate(seed)
		pa, pb := p.Build(p.SecretA), p.Build(p.SecretB)
		if len(pa.Code) != len(pb.Code) {
			t.Fatalf("seed %d: code lengths differ: %d vs %d", seed, len(pa.Code), len(pb.Code))
		}
		for i := range pa.Code {
			if pa.Code[i] != pb.Code[i] {
				t.Fatalf("seed %d: code differs at pc=%d: %v vs %v", seed, i, pa.Code[i], pb.Code[i])
			}
		}
		if pa.InitRegs != pb.InitRegs {
			t.Fatalf("seed %d: initial registers differ", seed)
		}
		var diff []uint64
		for addr, v := range pa.InitMem {
			if w, ok := pb.InitMem[addr]; !ok || w != v {
				diff = append(diff, addr)
			}
		}
		for addr := range pb.InitMem {
			if _, ok := pa.InitMem[addr]; !ok {
				diff = append(diff, addr)
			}
		}
		if len(diff) != 1 {
			t.Fatalf("seed %d: initial memory differs at %d addresses %v, want exactly 1 (the secret)",
				seed, len(diff), diff)
		}
	}
}

func TestNormalizeProducesValidParams(t *testing.T) {
	cases := []Params{
		{},
		{Kind: Kind(200), Rounds: -5, ShadowDepth: 99, ChainLen: -1, TrainLoops: 77},
		{SecretA: 3, SecretB: 3},
		{SecretA: 255, SecretB: 255},
		{Rounds: 1000, SecretA: minSecret, SecretB: minSecret},
	}
	for _, c := range cases {
		p := c.Normalize()
		if p.Kind >= numKinds {
			t.Errorf("Normalize(%+v): bad kind %d", c, p.Kind)
		}
		if p.Rounds < minRounds || p.Rounds > maxRounds {
			t.Errorf("Normalize(%+v): rounds %d out of range", c, p.Rounds)
		}
		if p.ShadowDepth < 0 || p.ShadowDepth > maxShadowDepth ||
			p.ChainLen < 0 || p.ChainLen > maxChainLen ||
			p.TrainLoops < 0 || p.TrainLoops > maxTrainLoops {
			t.Errorf("Normalize(%+v): out-of-range features %+v", c, p)
		}
		if p.SecretA < minSecret || p.SecretB < minSecret || p.SecretA == p.SecretB {
			t.Errorf("Normalize(%+v): bad secrets %02x/%02x", c, p.SecretA, p.SecretB)
		}
		if p != p.Normalize() {
			t.Errorf("Normalize(%+v) not idempotent", c)
		}
	}
}

// TestUnsafeBaselineLeaks keeps the oracle non-vacuous: every generated
// gadget must visibly diverge on the unprotected baseline.
func TestUnsafeBaselineLeaks(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < testSeeds; seed++ {
		p := Generate(seed)
		leak, err := Check(ctx, p, Config{Scheme: secure.Unsafe})
		if err != nil {
			t.Fatal(err)
		}
		if leak == nil {
			t.Errorf("seed %d (%s): no divergence on the unsafe baseline — vacuous gadget", seed, p)
		}
	}
}

// TestSecureSchemesDoNotLeak is the core security assertion: under every
// intact secure scheme, with and without doppelganger loads, the
// differential pairs must be micro-architecturally indistinguishable.
func TestSecureSchemesDoNotLeak(t *testing.T) {
	res, err := Sweep(context.Background(), DefaultConfigs(), 0, testSeeds, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if v := r.Verdict(); v != "" {
			t.Error(v)
			for _, sl := range r.Leaks {
				t.Logf("reproduce: seed %d under %s\n%s", sl.Seed, r.Config, sl.Leak.Params.Disassemble())
				break
			}
		}
	}
}

// TestMutationGauntlet proves the checker catches planted protection bugs:
// each weakening of a scheme's delay/taint logic must be flagged.
func TestMutationGauntlet(t *testing.T) {
	out, err := MutationGauntlet(context.Background(), 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(secure.Mutations()) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(secure.Mutations()))
	}
	for _, o := range out {
		if !o.Detected {
			t.Errorf("planted mutation %s under %s not detected in %d seeds — the oracle is blind to it",
				o.Mutation, o.Config, o.SeedsTried)
			continue
		}
		if o.Leak == nil || len(o.Leak.Components) == 0 {
			t.Errorf("mutation %s detected but leak report empty", o.Mutation)
		}
		// Detection must be reproducible from the reported seed alone.
		again, err := Check(context.Background(), GauntletParams(o.Seed, o.Mutation), o.Config)
		if err != nil {
			t.Fatal(err)
		}
		if again == nil {
			t.Errorf("mutation %s: seed %d did not reproduce", o.Mutation, o.Seed)
		}
	}
}

// TestPrimedCleanupIntactResidual is the flip side of the gauntlet's
// prime bias: the primed gadgets that expose the planted rollback
// weakenings must stay essentially silent when Cleanup's undo journal is
// intact. With every L1 set full, each wrong-path fill evicts a valid
// victim, so this exercises eviction reinstatement (not just fill
// invalidation) on every seed, with and without address prediction.
//
// "Essentially" because undo-based schemes under LRU have a known,
// literature-documented residual that rollback cannot close: when a
// *committed* fill performs while a speculative line still occupies its
// set, the committed fill's LRU victim choice is perturbed by the
// transient resident. The speculative line itself is rolled back exactly,
// but the committed fill legitimately stays — in a different way than it
// would have landed without the speculation — so the two differential
// runs can end with genuinely different cache *content*. This is
// precisely why CleanupSpec pairs undo with L1 random replacement (the
// CacheConfig.RandomReplacement mode). The test therefore pins the
// residual's shape instead of claiming universal cleanliness: any leak
// on a primed intact-cleanup run must be confined to cache-content
// fingerprints (L1/L2/L3), with no stats, trace, MSHR, or predictor
// divergence — and the residual must stay rare across the seed range.
func TestPrimedCleanupIntactResidual(t *testing.T) {
	ctx := context.Background()
	leaky := 0
	for seed := int64(0); seed < testSeeds; seed++ {
		p := Generate(seed)
		p.Prime = true
		seedLeaked := false
		for _, ap := range []bool{false, true} {
			leak, err := Check(ctx, p, Config{Scheme: secure.Cleanup, AP: ap})
			if err != nil {
				t.Fatal(err)
			}
			if leak == nil {
				continue
			}
			seedLeaked = true
			for _, c := range leak.Components {
				switch c {
				case "L1", "L2", "L3":
				default:
					t.Errorf("seed %d ap=%v: intact cleanup leaks beyond cache content via %q (all: %v) — rollback broken, not the LRU residual (%s)",
						seed, ap, c, leak.Components, leak.Params)
				}
			}
		}
		if seedLeaked {
			leaky++
		}
	}
	// The residual is a corner case (committed fill racing a still-resident
	// speculative line in a full set), not the common case. If most primed
	// seeds diverge, the rollback itself has regressed.
	if leaky > testSeeds/4 {
		t.Errorf("victim-perturbation residual on %d/%d primed seeds — too common to be the LRU residual", leaky, testSeeds)
	}
}

// TestPrimedUnsafeStillLeaks keeps the primed gadget family non-vacuous:
// priming must not mask the transmission on the unprotected baseline.
func TestPrimedUnsafeStillLeaks(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 8; seed++ {
		p := Generate(seed)
		p.Prime = true
		leak, err := Check(ctx, p, Config{Scheme: secure.Unsafe})
		if err != nil {
			t.Fatal(err)
		}
		if leak == nil {
			t.Errorf("seed %d: primed gadget silent on the unsafe baseline", seed)
		}
	}
}

// TestGauntletParamsBias pins the gauntlet's gadget stream: undo-scheme
// mutations hunt with primed gadgets (their weakenings are invisible
// without evictions), every other mutation hunts with the frozen Generate
// stream unchanged.
func TestGauntletParamsBias(t *testing.T) {
	for _, m := range secure.Mutations() {
		p := GauntletParams(3, m)
		scheme, _ := m.Target()
		if scheme.UndoesSpeculation() {
			if !p.Prime {
				t.Errorf("%s: gauntlet params not primed for undo scheme", m)
			}
			q := p
			q.Prime = false
			if q != Generate(3) {
				t.Errorf("%s: gauntlet params diverge from Generate beyond the prime bias", m)
			}
		} else if p != Generate(3) {
			t.Errorf("%s: gauntlet params diverge from the frozen Generate stream", m)
		}
	}
}

// TestSpecTrainMutationPoisonsPredictor pins the doppelganger security
// anchor: training the address predictor speculatively must surface as a
// predictor-table divergence specifically.
func TestSpecTrainMutationPoisonsPredictor(t *testing.T) {
	cfg := Config{Scheme: secure.DoM, AP: true, Mutation: secure.MutSpecTrain}
	for seed := int64(0); seed < 16; seed++ {
		leak, err := Check(context.Background(), Generate(seed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if leak == nil {
			continue
		}
		for _, c := range leak.Components {
			if c == "stride-predictor" || c == "context-predictor" {
				return
			}
		}
		t.Fatalf("seed %d: spec-train leak via %v, expected a predictor component", seed, leak.Components)
	}
	t.Fatal("spec-train mutation never detected in 16 seeds")
}

func TestMinimizeShrinksReproducer(t *testing.T) {
	ctx := context.Background()
	// A deliberately fat reproducer.
	p := Params{Seed: 7, Kind: KindBoundsCheck, Rounds: maxRounds, ShadowDepth: maxShadowDepth,
		ChainLen: maxChainLen, TrainLoops: maxTrainLoops, DoubleTransmit: true,
		SecretA: 0xcf, SecretB: 0x31}.Normalize()
	cfg := Config{Scheme: secure.Unsafe}
	leak, err := Check(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if leak == nil {
		t.Fatal("fat reproducer does not leak under unsafe")
	}
	min, err := Minimize(ctx, *leak)
	if err != nil {
		t.Fatal(err)
	}
	if min.Rounds > p.Rounds || min.ShadowDepth > p.ShadowDepth || min.ChainLen > p.ChainLen ||
		min.TrainLoops > p.TrainLoops || (min.DoubleTransmit && !p.DoubleTransmit) {
		t.Fatalf("minimized params grew: %v from %v", min, p)
	}
	if min.ShadowDepth != 0 || min.ChainLen != 0 || min.TrainLoops != 0 || min.DoubleTransmit {
		t.Errorf("expected all optional features dropped, got %v", min)
	}
	again, err := Check(ctx, min, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again == nil {
		t.Fatalf("minimized reproducer %v no longer leaks", min)
	}
}

func TestSweepVerdictStrings(t *testing.T) {
	secureCfg := Config{Scheme: secure.DoM}
	unsafeCfg := Config{Scheme: secure.Unsafe}
	leak := SeedLeak{Seed: 3, Leak: Leak{Params: Generate(3), Config: secureCfg, Components: []string{"L1"}}}

	if v := (SweepResult{Config: secureCfg, Seeds: 8, Leaks: []SeedLeak{leak}}).Verdict(); !strings.Contains(v, "SECURITY") {
		t.Errorf("secure-leak verdict = %q, want SECURITY", v)
	}
	if v := (SweepResult{Config: unsafeCfg, Seeds: 8}).Verdict(); !strings.Contains(v, "VACUOUS") {
		t.Errorf("silent-unsafe verdict = %q, want VACUOUS", v)
	}
	if v := (SweepResult{Config: secureCfg, Seeds: 8}).Verdict(); v != "" {
		t.Errorf("clean secure verdict = %q, want empty", v)
	}
	if v := (SweepResult{Config: unsafeCfg, Seeds: 8, Leaks: []SeedLeak{leak}}).Verdict(); v != "" {
		t.Errorf("leaking unsafe verdict = %q, want empty", v)
	}
}

func TestDisassembleStable(t *testing.T) {
	p := Generate(11)
	d1, d2 := p.Disassemble(), p.Disassemble()
	if d1 != d2 {
		t.Fatal("disassembly not deterministic")
	}
	if !strings.Contains(d1, "leakcheck") && !strings.Contains(d1, "seed=11") {
		t.Errorf("disassembly missing header: %q", d1[:80])
	}
	if !strings.Contains(d1, "load") && !strings.Contains(d1, "Load") && !strings.Contains(d1, "ld") {
		t.Errorf("disassembly has no load instructions:\n%s", d1)
	}
}

func TestConfigString(t *testing.T) {
	cases := map[string]Config{
		"unsafe":            {Scheme: secure.Unsafe},
		"dom+ap":            {Scheme: secure.DoM, AP: true},
		"stt!stt-no-taint":  {Scheme: secure.STT, Mutation: secure.MutSTTNoTaint},
		"dom+ap!spec-train": {Scheme: secure.DoM, AP: true, Mutation: secure.MutSpecTrain},
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("Config.String() = %q, want %q", got, want)
		}
	}
	if !(Config{Scheme: secure.DoM}).Secure() {
		t.Error("intact DoM should be Secure")
	}
	if (Config{Scheme: secure.Unsafe}).Secure() {
		t.Error("unsafe should not be Secure")
	}
	if (Config{Scheme: secure.DoM, Mutation: secure.MutDoMIssueMiss}).Secure() {
		t.Error("mutated DoM should not be Secure")
	}
}

// TestCheckpointSweepSecureSchemes is the checkpoint subsystem's security
// assertion: routing every gadget run through snapshot/restore midway
// (warm under the target scheme, capture, fork, finish) must stay
// 0-divergent for every intact secure scheme across 256 seeds — i.e. the
// checkpoint path itself introduces no attacker-observable divergence. The
// unsafe baseline is swept too, as the non-vacuousness control: the warm
// oracle must still see its leaks.
func TestCheckpointSweepSecureSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("256-seed checkpoint sweep skipped in -short mode")
	}
	const (
		seeds  = 256
		warmup = 200 // lands mid-gadget: transient window straddles the restore
	)
	cfgs := DefaultConfigs()
	for i := range cfgs {
		cfgs[i].WarmupInsts = warmup
	}
	res, err := Sweep(context.Background(), cfgs, 0, seeds, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Config.Secure() && len(r.Leaks) > 0 {
			sl := r.Leaks[0]
			t.Errorf("checkpoint path leaks: %d/%d seeds diverge under %s (first: seed %d via %v)",
				len(r.Leaks), r.Seeds, r.Config, sl.Seed, sl.Leak.Components)
			t.Logf("reproduce: seed %d under %s with WarmupInsts=%d\n%s",
				sl.Seed, r.Config, warmup, sl.Leak.Params.Disassemble())
		}
		if !r.Config.Secure() && len(r.Leaks) == 0 {
			t.Errorf("VACUOUS: warm-started %s leaked on 0/%d seeds — the oracle saw nothing", r.Config, r.Seeds)
		}
	}
}
