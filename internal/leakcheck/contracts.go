package leakcheck

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"doppelganger/sim"
)

// ClauseCell is one contract-matrix cell for one config: how many seeds of
// the sweep were distinguishable under the clause, and through which
// components.
type ClauseCell struct {
	Clause sim.Clause
	// Leaks counts the seeds whose differential pair diverged under this
	// clause; 0 means the config satisfies the clause on the sweep.
	Leaks int
	// FirstSeed is the smallest leaking seed (valid when Leaks > 0).
	FirstSeed int64
	// Components is the union of differing component names over all
	// leaking seeds, in reporting order.
	Components []string
}

// Satisfied reports whether the config satisfied the clause: no seed's
// pair was distinguishable to this observer.
func (c ClauseCell) Satisfied() bool { return c.Leaks == 0 }

// ContractResult is one config's full contract-lattice evaluation over a
// seed range.
type ContractResult struct {
	Config Config
	Seeds  int
	// Cells holds one entry per lattice clause, in canonical order.
	Cells []ClauseCell
}

// cell returns the ClauseCell for the clause.
func (r ContractResult) cell(c sim.Clause) *ClauseCell {
	for i := range r.Cells {
		if r.Cells[i].Clause == c {
			return &r.Cells[i]
		}
	}
	return nil
}

// Satisfies reports whether the config satisfied the clause over the sweep.
func (r ContractResult) Satisfies(c sim.Clause) bool {
	if cc := r.cell(c); cc != nil {
		return cc.Satisfied()
	}
	return false
}

// Strongest returns the maximal satisfied clauses — the strongest
// contracts the scheme upholds on this sweep. Satisfaction is downward
// closed (a stronger observer sees strictly more), so the result is an
// antichain; empty means even arch-seq leaked.
func (r ContractResult) Strongest() []sim.Clause {
	var sat []sim.Clause
	for _, c := range r.Cells {
		if c.Satisfied() {
			sat = append(sat, c.Clause)
		}
	}
	var out []sim.Clause
	for _, c := range sat {
		dominated := false
		for _, d := range sat {
			if d != c && d.Covers(c) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// ContractSweep evaluates the full contract lattice for every config over
// seeds [firstSeed, firstSeed+seeds), running up to workers differential
// pairs concurrently. For each config it reports, per clause, how many
// seeds were distinguishable to that observer — the per-scheme contract
// matrix. A non-nil error aborts the sweep.
func ContractSweep(ctx context.Context, cfgs []Config, firstSeed int64, seeds, workers int) ([]ContractResult, error) {
	if workers < 1 {
		workers = 1
	}
	results := make([]ContractResult, len(cfgs))
	for i, cfg := range cfgs {
		results[i] = ContractResult{Config: cfg, Seeds: seeds}
		for _, c := range sim.Lattice() {
			results[i].Cells = append(results[i].Cells, ClauseCell{Clause: c})
		}
	}

	type job struct {
		cfg  int
		seed int64
	}
	type hit struct {
		cfg        int
		seed       int64
		clause     sim.Clause
		components []string
	}
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		hits     []hit
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := Generate(j.seed).Normalize()
				oa, err := observationOf(cctx, p, cfgs[j.cfg], p.SecretA)
				var ob sim.Observation
				if err == nil {
					ob, err = observationOf(cctx, p, cfgs[j.cfg], p.SecretB)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
						cancel()
					}
				} else {
					for _, c := range sim.Lattice() {
						if diff := oa.Diff(&ob, c); len(diff) > 0 {
							hits = append(hits, hit{cfg: j.cfg, seed: j.seed, clause: c, components: diff})
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for ci := range cfgs {
		for s := int64(0); s < int64(seeds); s++ {
			select {
			case jobs <- job{cfg: ci, seed: firstSeed + s}:
			case <-cctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	sort.Slice(hits, func(a, b int) bool { return hits[a].seed < hits[b].seed })
	for _, h := range hits {
		cc := results[h.cfg].cell(h.clause)
		if cc.Leaks == 0 {
			cc.FirstSeed = h.seed
		}
		cc.Leaks++
		for _, name := range h.components {
			found := false
			for _, have := range cc.Components {
				if have == name {
					found = true
					break
				}
			}
			if !found {
				cc.Components = append(cc.Components, name)
			}
		}
	}
	for i := range results {
		for j := range results[i].Cells {
			sort.Strings(results[i].Cells[j].Components)
		}
	}
	return results, nil
}

// MatrixEntry is one config row of the serialized contract matrix:
// per-clause verdicts plus the strongest satisfied contracts.
type MatrixEntry struct {
	Config string `json:"config"`
	// Clauses maps clause notation ("ct-spec") to "satisfied" or "leaked".
	Clauses map[string]string `json:"clauses"`
	// Strongest lists the maximal satisfied clauses in lattice order.
	Strongest []string `json:"strongest"`
}

// ContractMatrix is the serialized (and golden-comparable) form of a
// contract sweep: one row per config, verdicts only. Leak counts and
// components are deliberately excluded — they vary with seed count, while
// the verdict per cell is the stable contract property CI pins.
type ContractMatrix struct {
	Entries []MatrixEntry `json:"matrix"`
}

// MatrixOf reduces sweep results to their verdict matrix.
func MatrixOf(results []ContractResult) ContractMatrix {
	var m ContractMatrix
	for _, r := range results {
		e := MatrixEntry{Config: r.Config.String(), Clauses: map[string]string{}}
		for _, c := range r.Cells {
			v := "satisfied"
			if !c.Satisfied() {
				v = "leaked"
			}
			e.Clauses[c.Clause.String()] = v
		}
		for _, c := range r.Strongest() {
			e.Strongest = append(e.Strongest, c.String())
		}
		m.Entries = append(m.Entries, e)
	}
	return m
}

// Diff compares two matrices and describes every disagreeing cell, in
// matrix order; empty means identical verdicts. Rows present on only one
// side are reported whole.
func (m ContractMatrix) Diff(o ContractMatrix) []string {
	var out []string
	rows := map[string]MatrixEntry{}
	for _, e := range o.Entries {
		rows[e.Config] = e
	}
	seen := map[string]bool{}
	for _, e := range m.Entries {
		seen[e.Config] = true
		oe, ok := rows[e.Config]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from golden", e.Config))
			continue
		}
		for _, c := range sim.Lattice() {
			if got, want := e.Clauses[c.String()], oe.Clauses[c.String()]; got != want {
				out = append(out, fmt.Sprintf("%s/%s: %s, golden says %s", e.Config, c, got, want))
			}
		}
		if got, want := strings.Join(e.Strongest, ","), strings.Join(oe.Strongest, ","); got != want {
			out = append(out, fmt.Sprintf("%s/strongest: [%s], golden says [%s]", e.Config, got, want))
		}
	}
	for _, e := range o.Entries {
		if !seen[e.Config] {
			out = append(out, fmt.Sprintf("%s: in golden but not swept", e.Config))
		}
	}
	return out
}

// MarshalIndent renders the matrix as stable, diff-friendly JSON.
func (m ContractMatrix) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// ParseMatrix parses a serialized contract matrix.
func ParseMatrix(data []byte) (ContractMatrix, error) {
	var m ContractMatrix
	if err := json.Unmarshal(data, &m); err != nil {
		return ContractMatrix{}, fmt.Errorf("leakcheck: parsing contract matrix: %w", err)
	}
	return m, nil
}
