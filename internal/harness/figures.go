package harness

import (
	"fmt"
	"io"

	"doppelganger/internal/secure"
	"doppelganger/sim"
)

// PrintTable1 renders the system configuration (Table 1 of the paper).
func PrintTable1(w io.Writer) {
	cfg := sim.DefaultCoreConfig()
	fmt.Fprintln(w, "Table 1: System Configuration")
	fmt.Fprintln(w, "Processor")
	fmt.Fprintf(w, "  %-28s %d instructions\n", "Decode width", cfg.DecodeWidth)
	fmt.Fprintf(w, "  %-28s %d instructions\n", "Issue / Commit width", cfg.IssueWidth)
	fmt.Fprintf(w, "  %-28s %d entries\n", "Instruction queue", cfg.IQSize)
	fmt.Fprintf(w, "  %-28s %d entries\n", "Reorder buffer", cfg.ROBSize)
	fmt.Fprintf(w, "  %-28s %d entries\n", "Load queue", cfg.LQSize)
	fmt.Fprintf(w, "  %-28s %d entries\n", "Store queue/buffer", cfg.SQSize)
	fmt.Fprintf(w, "  %-28s %d entries, %d-way\n", "Address predictor/prefetcher",
		cfg.Stride.Entries, cfg.Stride.Ways)
	fmt.Fprintln(w, "Memory")
	fmt.Fprintf(w, "  %-28s %dKiB, %d ways, %d cycles, %d MSHRs\n", "L1 D cache",
		cfg.Memory.L1D.SizeBytes>>10, cfg.Memory.L1D.Ways, cfg.Memory.L1D.Latency, cfg.Memory.L1MSHRs)
	fmt.Fprintf(w, "  %-28s %dMiB, %d ways, %d cycles\n", "Private L2 cache",
		cfg.Memory.L2.SizeBytes>>20, cfg.Memory.L2.Ways, cfg.Memory.L2.Latency)
	fmt.Fprintf(w, "  %-28s %dMiB, %d ways, %d cycles\n", "Shared L3 cache",
		cfg.Memory.L3.SizeBytes>>20, cfg.Memory.L3.Ways, cfg.Memory.L3.Latency)
	fmt.Fprintf(w, "  %-28s %d cycles beyond L3 (13.5 ns at 4 GHz)\n", "Memory access time",
		cfg.Memory.MemLatency)
}

// PrintFigure1 renders the headline summary: geomean normalized performance
// per scheme with and without doppelganger loads, and the slowdown each
// recovers.
func PrintFigure1(w io.Writer, m *Matrix) {
	fmt.Fprintln(w, "Figure 1: Geomean performance normalized to the unsafe baseline")
	fmt.Fprintf(w, "  %-8s %10s %10s %22s\n", "scheme", "base", "+AP", "slowdown reduction")
	for _, s := range Schemes {
		base := m.GeomeanNormIPC(s, false)
		ap := m.GeomeanNormIPC(s, true)
		fmt.Fprintf(w, "  %-8v %9.1f%% %9.1f%% %21.1f%%   (AP-fair: %.1f%%)\n",
			s, base*100, ap*100, m.SlowdownReduction(s)*100, m.GeomeanNormIPCAPFair(s)*100)
	}
	fmt.Fprintf(w, "  paper:   nda-p 88.7%% -> 93.5%% (42.0%%), stt 90.5%% -> 95.1%% (48.2%%), dom 81.8%% -> 87.3%% (30.3%%)\n")
}

// schemeHeader renders the per-scheme column header shared by Figures 6
// and 8: one "scheme +AP" pair per evaluated scheme, pipe-separated.
func schemeHeader(w io.Writer) {
	fmt.Fprintf(w, "  %-16s", "workload")
	for i, s := range Schemes {
		fmt.Fprintf(w, " %7s %7s", s, "+AP")
		if i < len(Schemes)-1 {
			fmt.Fprint(w, " |")
		}
	}
	fmt.Fprintln(w)
}

// PrintFigure6 renders per-workload normalized IPC for every evaluated
// scheme with and without address prediction.
func PrintFigure6(w io.Writer, m *Matrix) {
	fmt.Fprintln(w, "Figure 6: Normalized IPC to baseline (per workload)")
	schemeHeader(w)
	for _, name := range m.Workloads {
		fmt.Fprintf(w, "  %-16s", name)
		for i, s := range Schemes {
			fmt.Fprintf(w, " %6.1f%% %6.1f%%", m.NormIPC(name, s, false)*100, m.NormIPC(name, s, true)*100)
			if i < len(Schemes)-1 {
				fmt.Fprint(w, " |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-16s", "GMEAN")
	for i, s := range Schemes {
		fmt.Fprintf(w, " %6.1f%% %6.1f%%", m.GeomeanNormIPC(s, false)*100, m.GeomeanNormIPC(s, true)*100)
		if i < len(Schemes)-1 {
			fmt.Fprint(w, " |")
		}
	}
	fmt.Fprintln(w)
}

// PrintFigure7 renders address-predictor coverage and accuracy per workload
// under DoM+AP (representative for all schemes, as in the paper).
func PrintFigure7(w io.Writer, m *Matrix) {
	fmt.Fprintln(w, "Figure 7: Address prediction coverage and accuracy (DoM+AP)")
	fmt.Fprintf(w, "  %-16s %9s %9s\n", "workload", "coverage", "accuracy")
	var cov, acc []float64
	for _, name := range m.Workloads {
		r := m.Get(name, secure.DoM, true)
		fmt.Fprintf(w, "  %-16s %8.1f%% %8.1f%%\n", name, r.Coverage*100, r.Accuracy*100)
		cov = append(cov, r.Coverage)
		acc = append(acc, r.Accuracy)
	}
	fmt.Fprintf(w, "  %-16s %8.1f%% %8.1f%%\n", "GMEAN", Geomean(cov)*100, Geomean(acc)*100)
}

// PrintFigure8 renders L1 and L2 access counts normalized to the unsafe
// baseline for each scheme with and without AP.
func PrintFigure8(w io.Writer, m *Matrix) {
	fmt.Fprintln(w, "Figure 8: Cache accesses normalized to baseline")
	for level, norm := range map[string]func(string, secure.Scheme, bool) float64{
		"L1": m.NormL1, "L2": m.NormL2,
	} {
		fmt.Fprintf(w, "  [%s accesses]\n", level)
		schemeHeader(w)
		for _, name := range m.Workloads {
			fmt.Fprintf(w, "  %-16s", name)
			for i, s := range Schemes {
				fmt.Fprintf(w, "  %6.2f  %6.2f", norm(name, s, false), norm(name, s, true))
				if i < len(Schemes)-1 {
					fmt.Fprint(w, " |")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// PrintBaselineAP renders the unsafe-baseline-with-AP comparison discussed
// in §7 (the paper measures a ~0.5% geomean gain).
func PrintBaselineAP(w io.Writer, m *Matrix) {
	fmt.Fprintln(w, "Unsafe baseline + address prediction (§7)")
	vals := make([]float64, 0, len(m.Workloads))
	for _, name := range m.Workloads {
		v := m.NormIPC(name, secure.Unsafe, true)
		fmt.Fprintf(w, "  %-16s %6.1f%%\n", name, v*100)
		vals = append(vals, v)
	}
	fmt.Fprintf(w, "  %-16s %6.1f%%  (paper: +0.5%%)\n", "GMEAN", Geomean(vals)*100)
}
