package harness

import (
	"context"
	"fmt"
	"io"

	"doppelganger/internal/pipeline"
	"doppelganger/internal/secure"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// ExtensionRow is one configuration in the extensions appendix.
type ExtensionRow struct {
	Label  string
	Result sim.Result
}

// RunExtensions evaluates the reproduction's beyond-the-paper variants on
// one workload: the extra schemes, DoM value prediction, and the hybrid
// predictor, against the paper's configurations. Run options (e.g.
// sim.WithMetrics) apply to every run.
func RunExtensions(workloadName string, scale workload.Scale, runOpts ...sim.RunOption) ([]ExtensionRow, error) {
	w, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", workloadName)
	}
	prog := w.Build(scale)

	type cfgGen struct {
		label string
		make  func() sim.Config
	}
	plain := func(s secure.Scheme, ap bool) func() sim.Config {
		return func() sim.Config { return sim.Config{Scheme: s, AddressPrediction: ap} }
	}
	withCore := func(s secure.Scheme, ap bool, mutate func(*pipeline.Config)) func() sim.Config {
		return func() sim.Config {
			cc := sim.DefaultCoreConfig()
			mutate(&cc)
			return sim.Config{Scheme: s, AddressPrediction: ap, Core: &cc}
		}
	}
	gens := []cfgGen{
		{"unsafe", plain(secure.Unsafe, false)},
		{"nda-p", plain(secure.NDAP, false)},
		{"nda-p+AP", plain(secure.NDAP, true)},
		{"nda-s", plain(secure.NDAS, false)},
		{"nda-s+AP", plain(secure.NDAS, true)},
		{"stt", plain(secure.STT, false)},
		{"stt+AP", plain(secure.STT, true)},
		{"stt-spectre", plain(secure.STTSpectre, false)},
		{"stt-spectre+AP", plain(secure.STTSpectre, true)},
		{"cleanup", plain(secure.Cleanup, false)},
		{"cleanup+AP", plain(secure.Cleanup, true)},
		{"dom", plain(secure.DoM, false)},
		{"dom+AP", plain(secure.DoM, true)},
		{"dom+VP", withCore(secure.DoM, false, func(c *pipeline.Config) { c.ValuePrediction = true })},
		{"dom+AP-hybrid", withCore(secure.DoM, true, func(c *pipeline.Config) {
			c.AddressPredictorKind = pipeline.PredictorHybrid
		})},
	}
	rows := make([]ExtensionRow, 0, len(gens))
	for _, g := range gens {
		res, err := sim.RunContext(context.Background(), prog, g.make(), runOpts...)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExtensionRow{Label: g.label, Result: res})
	}
	return rows, nil
}

// PrintExtensions renders the extensions appendix.
func PrintExtensions(w io.Writer, workloadName string, rows []ExtensionRow) {
	fmt.Fprintf(w, "Extensions appendix (beyond the paper), workload %q\n", workloadName)
	fmt.Fprintf(w, "  %-16s %10s %8s %10s\n", "configuration", "cycles", "IPC", "vs base")
	var base uint64
	for _, r := range rows {
		if base == 0 {
			base = r.Result.Cycles
		}
		fmt.Fprintf(w, "  %-16s %10d %8.2f %9.1f%%\n",
			r.Label, r.Result.Cycles, r.Result.IPC,
			float64(base)/float64(r.Result.Cycles)*100)
	}
}
