// Package harness runs the paper's experiment matrix — every workload under
// every scheme with and without address prediction — and renders the tables
// behind each figure of the evaluation (Figures 1, 6, 7, 8 and Table 1).
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"doppelganger/internal/engine"
	"doppelganger/internal/program"
	"doppelganger/internal/secure"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// Schemes evaluated in figure order: the paper's three delay-based
// schemes, then the undo-based Cleanup point of comparison.
var Schemes = []secure.Scheme{secure.NDAP, secure.STT, secure.DoM, secure.Cleanup}

// Key identifies one cell of the experiment matrix.
type Key struct {
	Workload string
	Scheme   secure.Scheme
	AP       bool
}

// Matrix holds the full set of results.
type Matrix struct {
	Workloads []string
	Results   map[Key]sim.Result
}

// Options configures a sweep.
type Options struct {
	// Scale selects workload sizes.
	Scale workload.Scale
	// Workloads restricts the sweep (nil = all).
	Workloads []string
	// Verify cross-checks every run's architectural state against the
	// reference interpreter.
	Verify bool
	// Progress, when non-nil, receives one line per completed run.
	// Lines are emitted from a single goroutine in matrix order
	// (workload, scheme, ±AP) regardless of parallelism, so the stream
	// is byte-identical to a serial sweep's.
	Progress io.Writer
	// Parallelism is the engine worker-pool size; <= 0 uses one worker
	// per available CPU. The matrix is deterministic at any setting:
	// every cell simulates an independent core, so parallel and serial
	// sweeps produce identical results.
	Parallelism int
	// Engine, when non-nil, executes the sweep (Parallelism is then
	// ignored). Reusing one engine across sweeps shares its result
	// cache, so repeated or overlapping matrices skip re-simulation.
	Engine *engine.Engine
	// Metrics, when non-nil, receives the sweep's simulator and engine
	// metrics. Applied only to engines this sweep creates; a caller
	// passing its own Engine attaches a registry at engine construction.
	Metrics *sim.Metrics
	// WarmupInsts, when positive, warm-starts the matrix: each workload is
	// simulated once under the unsafe baseline until this many instructions
	// commit, the complete µarch state is checkpointed, and every
	// scheme × AP cell forks from that checkpoint instead of replaying the
	// warmup. Architectural results (and Verify) are unaffected — the
	// checksum is scheme-invariant — and all cells of a workload share one
	// warmup, so relative comparisons stay self-consistent; absolute cycle
	// counts include the warmup drain and differ slightly from a cold
	// sweep's. Zero disables warm-starting (cold, bit-identical to
	// previous behaviour).
	WarmupInsts uint64
}

// Run executes the experiment matrix: each workload under the unsafe
// baseline and the three schemes, each with and without address prediction.
// Cells execute concurrently on the engine's worker pool; results, progress
// lines and errors are deterministic regardless of the worker count.
func Run(opts Options) (*Matrix, error) {
	names := opts.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	sort.Strings(names)
	m := &Matrix{Workloads: names, Results: make(map[Key]sim.Result)}
	schemes := append([]secure.Scheme{secure.Unsafe}, Schemes...)

	// Build every program up front (cheap, deterministic) and, when
	// verifying or warm-starting, the reference checksums and warmup
	// checkpoints — in parallel, since the interpreter and the warmup
	// simulation both run serially per workload.
	progs := make([]*sim.Program, len(names))
	refSums := make([]uint64, len(names))
	refErrs := make([]error, len(names))
	ckpts := make([]*sim.Checkpoint, len(names))
	ckErrs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		progs[i] = w.Build(opts.Scale)
		if opts.Verify {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				ref := program.Run(progs[i], 100_000_000)
				if !ref.Halted {
					refErrs[i] = fmt.Errorf("harness: %s reference run did not halt", name)
					return
				}
				refSums[i] = ref.Checksum()
			}(i, name)
		}
		if opts.WarmupInsts > 0 {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				ck, err := sim.Snapshot(progs[i], sim.Config{}, opts.WarmupInsts)
				if err != nil {
					ckErrs[i] = fmt.Errorf("harness: warming %s: %w", name, err)
					return
				}
				ckpts[i] = ck
			}(i, name)
		}
	}
	wg.Wait()
	for _, err := range refErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, err := range ckErrs {
		if err != nil {
			return nil, err
		}
	}

	// One job per cell, in matrix order. RunBatch's ordered callback then
	// replays completions in exactly this order.
	type cell struct {
		Key
		wi int
	}
	cells := make([]cell, 0, len(names)*len(schemes)*2)
	jobs := make([]engine.Job, 0, cap(cells))
	for i, name := range names {
		for _, s := range schemes {
			for _, ap := range []bool{false, true} {
				cells = append(cells, cell{Key{name, s, ap}, i})
				jobs = append(jobs, engine.Job{
					Program:    progs[i],
					Config:     sim.Config{Scheme: s, AddressPrediction: ap},
					Checkpoint: ckpts[i],
				})
			}
		}
	}

	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Options{Workers: opts.Parallelism, Metrics: opts.Metrics})
		defer eng.Close()
	}

	var verifyErr error
	_, err := eng.RunBatch(context.Background(), jobs, func(i int, res sim.Result, err error) {
		if err != nil || verifyErr != nil {
			return
		}
		c := cells[i]
		if opts.Verify && res.Checksum != refSums[c.wi] {
			verifyErr = fmt.Errorf("harness: %s under %v ap=%v: architectural state diverged",
				c.Workload, c.Scheme, c.AP)
			return
		}
		m.Results[c.Key] = res
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-16s %-7v ap=%-5v cycles=%9d ipc=%.3f cov=%.2f acc=%.2f\n",
				c.Workload, c.Scheme, c.AP, res.Cycles, res.IPC, res.Coverage, res.Accuracy)
		}
	})
	if err != nil {
		// Engine errors already name the program, scheme and cause.
		return nil, fmt.Errorf("harness: %w", err)
	}
	if verifyErr != nil {
		return nil, verifyErr
	}
	return m, nil
}

// Get returns the result for a cell; it panics on a missing cell, which
// indicates the matrix was built with a different workload set.
func (m *Matrix) Get(w string, s secure.Scheme, ap bool) sim.Result {
	r, ok := m.Results[Key{w, s, ap}]
	if !ok {
		panic(fmt.Sprintf("harness: no result for %s/%v/ap=%v", w, s, ap))
	}
	return r
}

// NormIPC returns the run's IPC normalized to the unsafe no-AP baseline of
// the same workload (Figure 6's metric).
func (m *Matrix) NormIPC(w string, s secure.Scheme, ap bool) float64 {
	base := m.Get(w, secure.Unsafe, false)
	r := m.Get(w, s, ap)
	if r.Cycles == 0 {
		return 0
	}
	// Same instruction count either way, so the IPC ratio is the inverse
	// cycle ratio.
	return float64(base.Cycles) / float64(r.Cycles)
}

// NormL1 returns total L1 accesses normalized to the unsafe no-AP baseline.
func (m *Matrix) NormL1(w string, s secure.Scheme, ap bool) float64 {
	base := m.Get(w, secure.Unsafe, false).Memory.L1Accesses
	if base == 0 {
		return 0
	}
	return float64(m.Get(w, s, ap).Memory.L1Accesses) / float64(base)
}

// NormL2 returns total L2 accesses normalized to the unsafe no-AP baseline.
func (m *Matrix) NormL2(w string, s secure.Scheme, ap bool) float64 {
	base := m.Get(w, secure.Unsafe, false).Memory.L2Accesses
	if base == 0 {
		return 0
	}
	return float64(m.Get(w, s, ap).Memory.L2Accesses) / float64(base)
}

// Geomean computes the geometric mean of positive values; zeros are skipped.
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// GeomeanNormIPC computes the suite geomean of normalized IPC for a cell.
func (m *Matrix) GeomeanNormIPC(s secure.Scheme, ap bool) float64 {
	vals := make([]float64, 0, len(m.Workloads))
	for _, w := range m.Workloads {
		vals = append(vals, m.NormIPC(w, s, ap))
	}
	return Geomean(vals)
}

// SlowdownReduction returns the fraction of a scheme's slowdown that
// address prediction removes (the paper's headline 42% / 48% / 30%).
func (m *Matrix) SlowdownReduction(s secure.Scheme) float64 {
	base := m.GeomeanNormIPC(s, false)
	ap := m.GeomeanNormIPC(s, true)
	if base >= 1 {
		return 0
	}
	return (ap - base) / (1 - base)
}

// GeomeanNormIPCAPFair is GeomeanNormIPC for the +AP cell, but normalized
// to the unsafe baseline *with* address prediction. On this synthetic suite
// the baseline itself gains a few percent from address prediction (the
// paper's SPEC baseline gains only 0.5%), so the AP-fair ratio isolates
// what the scheme loses relative to an equally-equipped baseline.
func (m *Matrix) GeomeanNormIPCAPFair(s secure.Scheme) float64 {
	vals := make([]float64, 0, len(m.Workloads))
	for _, w := range m.Workloads {
		baseAP := m.Get(w, secure.Unsafe, true)
		r := m.Get(w, s, true)
		if r.Cycles == 0 {
			continue
		}
		vals = append(vals, float64(baseAP.Cycles)/float64(r.Cycles))
	}
	return Geomean(vals)
}
