// Package harness runs the paper's experiment matrix — every workload under
// every scheme with and without address prediction — and renders the tables
// behind each figure of the evaluation (Figures 1, 6, 7, 8 and Table 1).
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// Schemes evaluated in figure order.
var Schemes = []secure.Scheme{secure.NDAP, secure.STT, secure.DoM}

// Key identifies one cell of the experiment matrix.
type Key struct {
	Workload string
	Scheme   secure.Scheme
	AP       bool
}

// Matrix holds the full set of results.
type Matrix struct {
	Workloads []string
	Results   map[Key]sim.Result
}

// Options configures a sweep.
type Options struct {
	// Scale selects workload sizes.
	Scale workload.Scale
	// Workloads restricts the sweep (nil = all).
	Workloads []string
	// Verify cross-checks every run's architectural state against the
	// reference interpreter.
	Verify bool
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// Run executes the experiment matrix: each workload under the unsafe
// baseline and the three schemes, each with and without address prediction.
func Run(opts Options) (*Matrix, error) {
	names := opts.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	sort.Strings(names)
	m := &Matrix{Workloads: names, Results: make(map[Key]sim.Result)}
	schemes := append([]secure.Scheme{secure.Unsafe}, Schemes...)
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		prog := w.Build(opts.Scale)
		var refSum uint64
		if opts.Verify {
			ref := program.Run(prog, 100_000_000)
			if !ref.Halted {
				return nil, fmt.Errorf("harness: %s reference run did not halt", name)
			}
			refSum = ref.Checksum()
		}
		for _, s := range schemes {
			for _, ap := range []bool{false, true} {
				cfg := sim.Config{Scheme: s, AddressPrediction: ap}
				core, err := sim.NewCore(prog, cfg)
				if err != nil {
					return nil, err
				}
				if err := core.Run(0, sim.DefaultMaxCycles); err != nil {
					return nil, fmt.Errorf("harness: %s under %v ap=%v: %w", name, s, ap, err)
				}
				if opts.Verify {
					if got := core.ArchState().Checksum(); got != refSum {
						return nil, fmt.Errorf("harness: %s under %v ap=%v: architectural state diverged",
							name, s, ap)
					}
				}
				res := sim.Summarize(prog, cfg, core)
				m.Results[Key{name, s, ap}] = res
				if opts.Progress != nil {
					fmt.Fprintf(opts.Progress, "%-16s %-7v ap=%-5v cycles=%9d ipc=%.3f cov=%.2f acc=%.2f\n",
						name, s, ap, res.Cycles, res.IPC, res.Coverage, res.Accuracy)
				}
			}
		}
	}
	return m, nil
}

// Get returns the result for a cell; it panics on a missing cell, which
// indicates the matrix was built with a different workload set.
func (m *Matrix) Get(w string, s secure.Scheme, ap bool) sim.Result {
	r, ok := m.Results[Key{w, s, ap}]
	if !ok {
		panic(fmt.Sprintf("harness: no result for %s/%v/ap=%v", w, s, ap))
	}
	return r
}

// NormIPC returns the run's IPC normalized to the unsafe no-AP baseline of
// the same workload (Figure 6's metric).
func (m *Matrix) NormIPC(w string, s secure.Scheme, ap bool) float64 {
	base := m.Get(w, secure.Unsafe, false)
	r := m.Get(w, s, ap)
	if r.Cycles == 0 {
		return 0
	}
	// Same instruction count either way, so the IPC ratio is the inverse
	// cycle ratio.
	return float64(base.Cycles) / float64(r.Cycles)
}

// NormL1 returns total L1 accesses normalized to the unsafe no-AP baseline.
func (m *Matrix) NormL1(w string, s secure.Scheme, ap bool) float64 {
	base := m.Get(w, secure.Unsafe, false).Memory.L1Accesses
	if base == 0 {
		return 0
	}
	return float64(m.Get(w, s, ap).Memory.L1Accesses) / float64(base)
}

// NormL2 returns total L2 accesses normalized to the unsafe no-AP baseline.
func (m *Matrix) NormL2(w string, s secure.Scheme, ap bool) float64 {
	base := m.Get(w, secure.Unsafe, false).Memory.L2Accesses
	if base == 0 {
		return 0
	}
	return float64(m.Get(w, s, ap).Memory.L2Accesses) / float64(base)
}

// Geomean computes the geometric mean of positive values; zeros are skipped.
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// GeomeanNormIPC computes the suite geomean of normalized IPC for a cell.
func (m *Matrix) GeomeanNormIPC(s secure.Scheme, ap bool) float64 {
	vals := make([]float64, 0, len(m.Workloads))
	for _, w := range m.Workloads {
		vals = append(vals, m.NormIPC(w, s, ap))
	}
	return Geomean(vals)
}

// SlowdownReduction returns the fraction of a scheme's slowdown that
// address prediction removes (the paper's headline 42% / 48% / 30%).
func (m *Matrix) SlowdownReduction(s secure.Scheme) float64 {
	base := m.GeomeanNormIPC(s, false)
	ap := m.GeomeanNormIPC(s, true)
	if base >= 1 {
		return 0
	}
	return (ap - base) / (1 - base)
}

// GeomeanNormIPCAPFair is GeomeanNormIPC for the +AP cell, but normalized
// to the unsafe baseline *with* address prediction. On this synthetic suite
// the baseline itself gains a few percent from address prediction (the
// paper's SPEC baseline gains only 0.5%), so the AP-fair ratio isolates
// what the scheme loses relative to an equally-equipped baseline.
func (m *Matrix) GeomeanNormIPCAPFair(s secure.Scheme) float64 {
	vals := make([]float64, 0, len(m.Workloads))
	for _, w := range m.Workloads {
		baseAP := m.Get(w, secure.Unsafe, true)
		r := m.Get(w, s, true)
		if r.Cycles == 0 {
			continue
		}
		vals = append(vals, float64(baseAP.Cycles)/float64(r.Cycles))
	}
	return Geomean(vals)
}
