package harness

import (
	"context"
	"fmt"
	"io"

	"doppelganger/internal/pipeline"
	"doppelganger/internal/secure"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// SensitivityPoint is one machine configuration in a sensitivity sweep.
type SensitivityPoint struct {
	Label   string
	DoM     sim.Result
	DoMAP   sim.Result
	Recover float64 // fraction of the DoM slowdown recovered by AP
}

// RunSensitivity sweeps a machine parameter and reports how robust the
// doppelganger recovery is to it — the reviewer question the paper's fixed
// Table 1 configuration leaves open. Supported axes: "rob", "mshrs",
// "predictor", "ports". Run options (e.g. sim.WithMetrics) apply to every
// run of the sweep.
func RunSensitivity(axis, workloadName string, scale workload.Scale, runOpts ...sim.RunOption) ([]SensitivityPoint, error) {
	w, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", workloadName)
	}
	prog := w.Build(scale)

	type variant struct {
		label  string
		mutate func(*pipeline.Config)
	}
	var variants []variant
	switch axis {
	case "rob":
		for _, n := range []int{64, 128, 352, 512} {
			n := n
			variants = append(variants, variant{fmt.Sprintf("rob=%d", n),
				func(c *pipeline.Config) { c.ROBSize = n }})
		}
	case "mshrs":
		for _, n := range []int{4, 8, 16, 32} {
			n := n
			variants = append(variants, variant{fmt.Sprintf("mshrs=%d", n),
				func(c *pipeline.Config) { c.Memory.L1MSHRs = n }})
		}
	case "predictor":
		for _, n := range []int{128, 512, 1024, 4096} {
			n := n
			variants = append(variants, variant{fmt.Sprintf("entries=%d", n),
				func(c *pipeline.Config) { c.Stride.Entries = n }})
		}
	case "ports":
		for _, n := range []int{1, 2, 4} {
			n := n
			variants = append(variants, variant{fmt.Sprintf("ports=%d", n),
				func(c *pipeline.Config) { c.LoadPorts = n }})
		}
	default:
		return nil, fmt.Errorf("harness: unknown sensitivity axis %q (rob, mshrs, predictor, ports)", axis)
	}

	run := func(mutate func(*pipeline.Config), scheme secure.Scheme, ap bool) (sim.Result, error) {
		cc := sim.DefaultCoreConfig()
		mutate(&cc)
		cfg := sim.Config{Scheme: scheme, AddressPrediction: ap, Core: &cc}
		return sim.RunContext(context.Background(), prog, cfg, runOpts...)
	}

	points := make([]SensitivityPoint, 0, len(variants))
	for _, v := range variants {
		base, err := run(v.mutate, secure.Unsafe, false)
		if err != nil {
			return nil, err
		}
		dom, err := run(v.mutate, secure.DoM, false)
		if err != nil {
			return nil, err
		}
		domAP, err := run(v.mutate, secure.DoM, true)
		if err != nil {
			return nil, err
		}
		// Only meaningful when the scheme actually pays a slowdown at
		// this point (a saturated machine can make all three equal).
		rec := 0.0
		if float64(dom.Cycles) > 1.01*float64(base.Cycles) {
			rec = (float64(dom.Cycles) - float64(domAP.Cycles)) /
				(float64(dom.Cycles) - float64(base.Cycles))
		}
		points = append(points, SensitivityPoint{Label: v.label, DoM: dom, DoMAP: domAP, Recover: rec})
	}
	return points, nil
}

// PrintSensitivity renders a sweep.
func PrintSensitivity(w io.Writer, axis, workloadName string, points []SensitivityPoint) {
	fmt.Fprintf(w, "Sensitivity of DoM+AP recovery to %s (workload %q)\n", axis, workloadName)
	fmt.Fprintf(w, "  %-16s %12s %12s %12s\n", axis, "dom cycles", "dom+AP", "recovered")
	for _, p := range points {
		fmt.Fprintf(w, "  %-16s %12d %12d %11.0f%%\n",
			p.Label, p.DoM.Cycles, p.DoMAP.Cycles, p.Recover*100)
	}
}
