package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"doppelganger/internal/secure"
)

// ShapeCheck is one qualitative claim from the paper's evaluation, tested
// against a measured matrix.
type ShapeCheck struct {
	// Name identifies the claim.
	Name string
	// Claim restates the paper's qualitative finding.
	Claim string
	// Pass reports whether the measured matrix satisfies it.
	Pass bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// CheckShape evaluates the paper's qualitative claims against a measured
// matrix: who wins, in what order, and where address prediction helps or
// hurts. It is the executable form of the EXPERIMENTS.md comparison and is
// run by the integration tests, so a regression in any scheme's behaviour
// fails the build rather than silently skewing the figures.
func CheckShape(m *Matrix) []ShapeCheck {
	gm := func(s secure.Scheme, ap bool) float64 { return m.GeomeanNormIPC(s, ap) }
	var out []ShapeCheck
	add := func(name, claim string, pass bool, detail string) {
		out = append(out, ShapeCheck{Name: name, Claim: claim, Pass: pass, Detail: detail})
	}

	nda, stt, dom := gm(secure.NDAP, false), gm(secure.STT, false), gm(secure.DoM, false)
	add("schemes-slow-down",
		"every secure scheme runs at or below baseline performance",
		nda <= 1.001 && stt <= 1.001 && dom <= 1.001,
		fmt.Sprintf("nda-p %.3f, stt %.3f, dom %.3f", nda, stt, dom))
	add("dom-slowest",
		"DoM has the largest slowdown of the three schemes (paper: 81.8% vs 88.7%/90.5%)",
		dom <= nda && dom <= stt,
		fmt.Sprintf("dom %.3f vs nda-p %.3f, stt %.3f", dom, nda, stt))
	add("stt-at-least-nda",
		"STT is at least as fast as NDA-P (it permits dependent ILP)",
		stt >= nda-0.005,
		fmt.Sprintf("stt %.3f vs nda-p %.3f", stt, nda))

	for _, s := range Schemes {
		if s.UndoesSpeculation() {
			// Undo schemes never delay loads, so there is no slowdown for
			// doppelganger loads to recover; AP is near-neutral for them.
			continue
		}
		base, ap := gm(s, false), gm(s, true)
		add("ap-helps-"+s.String(),
			fmt.Sprintf("address prediction recovers part of %v's slowdown", s),
			ap > base,
			fmt.Sprintf("%.3f -> %.3f", base, ap))
	}

	// The undo-based point of comparison: Cleanup speculates like the
	// unsafe core and pays only rollback, so it must outrun the strictest
	// delay-based scheme while staying at or below baseline.
	cleanup := gm(secure.Cleanup, false)
	add("cleanup-outruns-delay",
		"the undo-based scheme is faster than DoM (it never delays a load)",
		cleanup >= dom-0.005,
		fmt.Sprintf("cleanup %.3f vs dom %.3f", cleanup, dom))
	add("cleanup-at-most-baseline",
		"undo-based speculation runs at or below baseline performance",
		cleanup <= 1.001,
		fmt.Sprintf("cleanup %.3f", cleanup))

	// Per-benchmark signatures the paper calls out in §7.
	if has(m, "stream") && has(m, "pointer_chase") {
		sGain := m.NormIPC("stream", secure.DoM, true) - m.NormIPC("stream", secure.DoM, false)
		pGain := m.NormIPC("pointer_chase", secure.DoM, true) - m.NormIPC("pointer_chase", secure.DoM, false)
		add("libquantum-standout",
			"the streaming kernel gains far more from AP than the pointer chase (libquantum vs mcf)",
			sGain > pGain+0.05,
			fmt.Sprintf("stream +%.3f vs pointer_chase %+.3f", sGain, pGain))
	}
	if has(m, "pointer_chase") {
		cov := m.Get("pointer_chase", secure.DoM, true).Coverage
		add("mcf-low-coverage",
			"pointer chasing has near-zero stride coverage (paper: mcf 9%)",
			cov < 0.15,
			fmt.Sprintf("coverage %.3f", cov))
	}
	if has(m, "hash_irregular") {
		r := m.Get("hash_irregular", secure.DoM, true)
		add("xalancbmk-low-accuracy",
			"the hash-irregular kernel has markedly lower accuracy than the suite norm (paper: ~58%)",
			r.Stats.DoppPredictions > 0 && r.Accuracy < 0.9,
			fmt.Sprintf("accuracy %.3f over %d predictions", r.Accuracy, r.Stats.DoppPredictions))
	}
	if has(m, "stream") {
		l1 := m.NormL1("stream", secure.DoM, true)
		add("ap-raises-l1-traffic",
			"doppelganger accesses do not reduce L1 traffic (they add accesses)",
			l1 >= 0.95,
			fmt.Sprintf("normalized L1 accesses %.2f", l1))
	}
	return out
}

func has(m *Matrix, w string) bool {
	_, ok := m.Results[Key{w, secure.Unsafe, false}]
	return ok
}

// PrintShapeChecks renders the checks with PASS/FAIL verdicts and returns
// the number of failures.
func PrintShapeChecks(w io.Writer, checks []ShapeCheck) int {
	failures := 0
	fmt.Fprintln(w, "Shape checks (qualitative claims from the paper's evaluation):")
	for _, c := range checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "  [%s] %-24s %s\n         measured: %s\n", verdict, c.Name, c.Claim, c.Detail)
	}
	return failures
}

// WriteCSV exports the full matrix as CSV for external analysis: one row
// per (workload, scheme, ap) cell with the headline metrics.
func WriteCSV(w io.Writer, m *Matrix) error {
	cw := csv.NewWriter(w)
	header := []string{
		"workload", "scheme", "ap", "cycles", "instructions", "ipc",
		"norm_ipc", "coverage", "accuracy",
		"l1_accesses", "l2_accesses", "l3_accesses", "dram_accesses",
		"branch_mispredicts", "squashed", "dom_delayed", "stt_stalls",
		"dopp_issued", "dopp_verified", "dopp_mispredicted",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	schemes := append([]secure.Scheme{secure.Unsafe}, Schemes...)
	for _, name := range m.Workloads {
		for _, s := range schemes {
			for _, ap := range []bool{false, true} {
				r := m.Get(name, s, ap)
				row := []string{
					name, s.String(), strconv.FormatBool(ap),
					strconv.FormatUint(r.Cycles, 10),
					strconv.FormatUint(r.Insts, 10),
					fmt.Sprintf("%.4f", r.IPC),
					fmt.Sprintf("%.4f", m.NormIPC(name, s, ap)),
					fmt.Sprintf("%.4f", r.Coverage),
					fmt.Sprintf("%.4f", r.Accuracy),
					strconv.FormatUint(r.Memory.L1Accesses, 10),
					strconv.FormatUint(r.Memory.L2Accesses, 10),
					strconv.FormatUint(r.Memory.L3Accesses, 10),
					strconv.FormatUint(r.Memory.DRAMAccesses, 10),
					strconv.FormatUint(r.Stats.BranchMispredicts, 10),
					strconv.FormatUint(r.Stats.Squashed, 10),
					strconv.FormatUint(r.Stats.DoMDelayedMisses, 10),
					strconv.FormatUint(r.Stats.STTTaintStalls, 10),
					strconv.FormatUint(r.Stats.DoppIssued, 10),
					strconv.FormatUint(r.Stats.DoppVerified, 10),
					strconv.FormatUint(r.Stats.DoppMispredicted, 10),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
