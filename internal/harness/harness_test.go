package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"doppelganger/internal/secure"
	"doppelganger/internal/workload"
)

// smallMatrix runs a two-workload sweep once and is shared by the tests.
func smallMatrix(t *testing.T) *Matrix {
	t.Helper()
	m, err := Run(Options{
		Scale:     workload.ScaleTest,
		Workloads: []string{"matrix_blocked", "tree_search"},
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunMatrix(t *testing.T) {
	m := smallMatrix(t)
	if len(m.Workloads) != 2 {
		t.Fatalf("workloads = %v", m.Workloads)
	}
	// 2 workloads x 5 schemes (unsafe + 4) x 2 AP = 20 cells.
	if len(m.Results) != 20 {
		t.Errorf("cells = %d, want 20", len(m.Results))
	}
	for _, w := range m.Workloads {
		base := m.Get(w, secure.Unsafe, false)
		if base.Cycles == 0 || base.Insts == 0 {
			t.Errorf("%s: empty baseline", w)
		}
		if n := m.NormIPC(w, secure.Unsafe, false); n != 1.0 {
			t.Errorf("%s: baseline normalized IPC = %v, want 1", w, n)
		}
		for _, s := range Schemes {
			if n := m.NormIPC(w, s, false); n <= 0 || n > 1.5 {
				t.Errorf("%s %v: normalized IPC %v out of range", w, s, n)
			}
		}
	}
}

func TestRunMatrixUnknownWorkload(t *testing.T) {
	if _, err := Run(Options{Workloads: []string{"nope"}}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{4}, 4},
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{0, 9}, 9}, // zeros skipped
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFigurePrinters(t *testing.T) {
	m := smallMatrix(t)
	printers := []struct {
		name  string
		print func(*bytes.Buffer)
		want  string
	}{
		{"fig1", func(b *bytes.Buffer) { PrintFigure1(b, m) }, "slowdown reduction"},
		{"fig6", func(b *bytes.Buffer) { PrintFigure6(b, m) }, "GMEAN"},
		{"fig7", func(b *bytes.Buffer) { PrintFigure7(b, m) }, "coverage"},
		{"fig8", func(b *bytes.Buffer) { PrintFigure8(b, m) }, "L2 accesses"},
		{"baselineap", func(b *bytes.Buffer) { PrintBaselineAP(b, m) }, "paper"},
	}
	for _, p := range printers {
		var buf bytes.Buffer
		p.print(&buf)
		out := buf.String()
		if !strings.Contains(out, p.want) {
			t.Errorf("%s output missing %q:\n%s", p.name, p.want, out)
		}
		for _, w := range m.Workloads {
			if p.name != "fig1" && !strings.Contains(out, w) {
				t.Errorf("%s output missing workload %s", p.name, w)
			}
		}
	}
}

func TestTable1Printer(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	out := buf.String()
	for _, want := range []string{"Reorder buffer", "352", "Load queue", "128",
		"48KiB", "2MiB", "16MiB", "1024 entries", "13.5 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestNormalizationAgainstBaseline(t *testing.T) {
	m := smallMatrix(t)
	for _, w := range m.Workloads {
		if m.NormL1(w, secure.Unsafe, false) != 1.0 {
			t.Errorf("%s: baseline L1 normalization not 1", w)
		}
		if m.NormL2(w, secure.Unsafe, false) != 1.0 {
			t.Errorf("%s: baseline L2 normalization not 1", w)
		}
	}
}

func TestGetPanicsOnMissingCell(t *testing.T) {
	m := smallMatrix(t)
	defer func() {
		if recover() == nil {
			t.Error("Get on a missing cell should panic")
		}
	}()
	m.Get("not-in-matrix", secure.Unsafe, false)
}

func TestShapeChecksOnTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks need the full workload suite")
	}
	m, err := Run(Options{Scale: workload.ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	checks := CheckShape(m)
	if len(checks) < 8 {
		t.Fatalf("only %d shape checks produced", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("shape check %s failed: %s (measured: %s)", c.Name, c.Claim, c.Detail)
		}
	}
	var buf bytes.Buffer
	if failures := PrintShapeChecks(&buf, checks); failures > 0 {
		t.Errorf("%d failures reported", failures)
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Error("shape output missing verdicts")
	}
}

func TestWriteCSV(t *testing.T) {
	m := smallMatrix(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 2 workloads x 5 schemes x 2 AP
	if len(lines) != 1+20 {
		t.Errorf("CSV has %d lines, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,scheme,ap,cycles") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != strings.Count(lines[0], ",") {
			t.Errorf("ragged CSV row: %s", l)
		}
	}
}

func TestExtensionsAndSensitivityArtifacts(t *testing.T) {
	rows, err := RunExtensions("matrix_blocked", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("extensions appendix has %d rows", len(rows))
	}
	var buf bytes.Buffer
	PrintExtensions(&buf, "matrix_blocked", rows)
	if !strings.Contains(buf.String(), "dom+VP") {
		t.Error("extensions output missing dom+VP row")
	}

	points, err := RunSensitivity("ports", "matrix_blocked", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("ports sweep has %d points", len(points))
	}
	buf.Reset()
	PrintSensitivity(&buf, "ports", "matrix_blocked", points)
	if !strings.Contains(buf.String(), "ports=2") {
		t.Error("sensitivity output missing the paper point")
	}
	if _, err := RunSensitivity("bogus", "matrix_blocked", workload.ScaleTest); err == nil {
		t.Error("unknown axis should fail")
	}
}

// TestWarmStartMatchesCold pins the warm-start contract: a sweep forked
// from per-workload checkpoints reaches the same architectural results
// (checksum and instruction count) as the cold sweep in every cell, and
// Verify — which compares against the reference interpreter — passes
// unchanged.
func TestWarmStartMatchesCold(t *testing.T) {
	workloads := []string{"matrix_blocked", "tree_search"}
	cold, err := Run(Options{Scale: workload.ScaleTest, Workloads: workloads})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Options{
		Scale:       workload.ScaleTest,
		Workloads:   workloads,
		Verify:      true,
		WarmupInsts: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range cold.Results {
		w, ok := warm.Results[k]
		if !ok {
			t.Fatalf("warm sweep missing cell %+v", k)
		}
		if w.Checksum != c.Checksum {
			t.Errorf("%+v: architectural divergence: cold %x, warm %x", k, c.Checksum, w.Checksum)
		}
		if w.Insts != c.Insts {
			t.Errorf("%+v: committed %d cold vs %d warm", k, c.Insts, w.Insts)
		}
	}
}
