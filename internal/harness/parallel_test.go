package harness

import (
	"bytes"
	"reflect"
	"testing"

	"doppelganger/internal/engine"
	"doppelganger/internal/workload"
)

// TestParallelMatrixMatchesSerial is the engine-integration determinism
// guarantee: a sweep on N workers produces a Matrix identical in every
// sim.Result field to a single-worker sweep, and the progress stream is
// byte-identical (ordered callbacks) despite concurrent completion.
func TestParallelMatrixMatchesSerial(t *testing.T) {
	opts := Options{
		Scale:     workload.ScaleTest,
		Workloads: []string{"matrix_blocked", "stream", "tree_search"},
		Verify:    true,
	}

	var serialLog bytes.Buffer
	serialOpts := opts
	serialOpts.Parallelism = 1
	serialOpts.Progress = &serialLog
	serial, err := Run(serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	var parallelLog bytes.Buffer
	parallelOpts := opts
	parallelOpts.Parallelism = 4
	parallelOpts.Progress = &parallelLog
	parallel, err := Run(parallelOpts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Workloads, parallel.Workloads) {
		t.Fatalf("workload lists differ: %v vs %v", serial.Workloads, parallel.Workloads)
	}
	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for k, sres := range serial.Results {
		pres, ok := parallel.Results[k]
		if !ok {
			t.Fatalf("parallel matrix missing cell %+v", k)
		}
		if !reflect.DeepEqual(sres, pres) {
			t.Errorf("cell %+v diverges:\nserial:   %+v\nparallel: %+v", k, sres, pres)
		}
	}
	if serialLog.String() != parallelLog.String() {
		t.Errorf("progress streams differ:\nserial:\n%s\nparallel:\n%s",
			serialLog.String(), parallelLog.String())
	}
}

// TestSharedEngineCachesAcrossSweeps re-runs a sweep on one engine and
// expects every cell of the second pass to come from the result cache.
func TestSharedEngineCachesAcrossSweeps(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()
	opts := Options{
		Scale:     workload.ScaleTest,
		Workloads: []string{"matrix_blocked"},
		Engine:    eng,
	}
	first, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	runsAfterFirst := eng.Stats().JobsRun
	second, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.JobsRun != runsAfterFirst {
		t.Errorf("second sweep re-simulated: %d jobs run, want %d", st.JobsRun, runsAfterFirst)
	}
	if st.CacheHits < uint64(len(first.Results)) {
		t.Errorf("cache hits = %d, want >= %d", st.CacheHits, len(first.Results))
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("cached sweep differs from the original")
	}
}
