package cluster

import (
	"fmt"
	"strings"
	"sync"

	"doppelganger/internal/engine"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// JobSpec is the cluster's wire description of one simulation: a suite
// workload under one configuration. It is deliberately a *description*
// rather than a program image — both coordinator and workers hold the
// workload registry, build the identical deterministic program, and derive
// the identical canonical engine key, which dispatch cross-checks to catch
// version skew between cluster nodes.
type JobSpec struct {
	// Workload is a suite workload name.
	Workload string `json:"workload"`
	// Scale is "test" or "full" (default "full").
	Scale string `json:"scale,omitempty"`
	// Scheme is the secure speculation scheme name (default "unsafe").
	Scheme string `json:"scheme,omitempty"`
	// AP enables doppelganger loads.
	AP bool `json:"ap,omitempty"`
	// MaxInsts bounds committed instructions (0 = run to halt).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// MaxCycles bounds simulated cycles (0 = default budget).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// programs memoizes built workload images process-wide: programs are
// immutable and deterministic per (workload, scale), and coordinator-side
// key derivation would otherwise rebuild every image per request.
var programs sync.Map // progKey -> *sim.Program

type progKey struct {
	name  string
	scale workload.Scale
}

func buildProgram(name string, scale workload.Scale) (*sim.Program, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q; known: %s",
			name, strings.Join(workload.Names(), ", "))
	}
	k := progKey{name, scale}
	if p, ok := programs.Load(k); ok {
		return p.(*sim.Program), nil
	}
	p, _ := programs.LoadOrStore(k, w.Build(scale))
	return p.(*sim.Program), nil
}

// ParseScale maps a wire scale name to a workload scale.
func ParseScale(name string) (workload.Scale, error) {
	switch name {
	case "", "full":
		return workload.ScaleFull, nil
	case "test":
		return workload.ScaleTest, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want \"test\" or \"full\")", name)
	}
}

// Resolve validates the spec and builds the engine job it describes. The
// job's Key() is the cluster's sharding and storage key.
func (s JobSpec) Resolve() (engine.Job, error) {
	if s.Workload == "" {
		return engine.Job{}, fmt.Errorf("missing \"workload\"")
	}
	scale, err := ParseScale(s.Scale)
	if err != nil {
		return engine.Job{}, err
	}
	schemeName := s.Scheme
	if schemeName == "" {
		schemeName = "unsafe"
	}
	scheme, err := sim.ParseScheme(schemeName)
	if err != nil {
		return engine.Job{}, err
	}
	prog, err := buildProgram(s.Workload, scale)
	if err != nil {
		return engine.Job{}, err
	}
	return engine.Job{
		Program: prog,
		Config: sim.Config{
			Scheme:            scheme,
			AddressPrediction: s.AP,
			MaxInsts:          s.MaxInsts,
			MaxCycles:         s.MaxCycles,
		},
	}, nil
}

// SweepSpec describes a workload × scheme × ±AP matrix.
type SweepSpec struct {
	// Workloads restricts the sweep (empty = the full suite).
	Workloads []string `json:"workloads,omitempty"`
	// Schemes restricts the sweep by name (empty = unsafe + the paper's
	// three schemes; "all" = every scheme including extensions).
	Schemes []string `json:"schemes,omitempty"`
	// AP is "both" (default), "on", or "off".
	AP string `json:"ap,omitempty"`
	// Scale is "test" or "full" (default "full").
	Scale string `json:"scale,omitempty"`
	// MaxInsts bounds committed instructions per cell.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// MaxCycles bounds simulated cycles per cell.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Stream selects per-cell progress streaming: "" (buffered JSON),
	// "sse", or "ndjson". The Accept header can select it too.
	Stream string `json:"stream,omitempty"`
}

// Cells expands the matrix into job specs in canonical matrix order
// (workload, then scheme, then -AP/+AP) — the same order single-node
// doppeld sweeps use.
func (s SweepSpec) Cells() ([]JobSpec, error) {
	names := s.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	schemeNames := s.Schemes
	switch {
	case len(schemeNames) == 0:
		schemeNames = []string{"unsafe", "nda-p", "stt", "dom"}
	case len(schemeNames) == 1 && schemeNames[0] == "all":
		all := sim.AllSchemes()
		schemeNames = make([]string, len(all))
		for i, sc := range all {
			schemeNames[i] = sc.String()
		}
	}
	var aps []bool
	switch s.AP {
	case "", "both":
		aps = []bool{false, true}
	case "off":
		aps = []bool{false}
	case "on":
		aps = []bool{true}
	default:
		return nil, fmt.Errorf("unknown ap %q (want \"both\", \"on\" or \"off\")", s.AP)
	}
	cells := make([]JobSpec, 0, len(names)*len(schemeNames)*len(aps))
	for _, name := range names {
		for _, scheme := range schemeNames {
			for _, ap := range aps {
				cells = append(cells, JobSpec{
					Workload:  name,
					Scale:     s.Scale,
					Scheme:    scheme,
					AP:        ap,
					MaxInsts:  s.MaxInsts,
					MaxCycles: s.MaxCycles,
				})
			}
		}
	}
	return cells, nil
}
