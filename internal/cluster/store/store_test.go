package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"doppelganger/sim"
)

func testResult(i uint64) sim.Result {
	return sim.Result{
		Program:  "stream",
		Cycles:   1000 + i,
		Insts:    500 + i,
		IPC:      0.5,
		Checksum: 0xdeadbeef + i,
	}
}

func open(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	if err := s.Put("key-a", testResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-b", testResult(2)); err != nil {
		t.Fatal(err)
	}
	res, ok, err := s.Get("key-a")
	if err != nil || !ok {
		t.Fatalf("Get(key-a) = %v, %v", ok, err)
	}
	if res != testResult(1) {
		t.Errorf("Get(key-a) = %+v, want %+v", res, testResult(1))
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Error("Get(missing) reported a hit")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	for i := uint64(0); i < 20; i++ {
		if err := s.Put(string(rune('a'+i))+"-key", testResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one: last record wins after reload.
	if err := s.Put("a-key", testResult(99)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, path)
	if s2.Len() != 20 {
		t.Fatalf("reopened Len = %d, want 20", s2.Len())
	}
	res, ok, err := s2.Get("a-key")
	if err != nil || !ok {
		t.Fatalf("Get after reopen: %v, %v", ok, err)
	}
	if res != testResult(99) {
		t.Errorf("overwritten key = %+v, want the newer record", res)
	}
}

func TestCorruptRecordDetectedOnLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	if err := s.Put("key-a", testResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-b", testResult(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one byte inside the first record's value.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8+8+len("key-a")+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt file: err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptReadDetectedOnGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	if err := s.Put("key-a", testResult(1)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the live file behind the open store: the next Get re-verifies.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 8+8+int64(len("key-a"))+2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := s.Get("key-a"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupted value: err = %v, want ErrCorrupt", err)
	}
}

func TestTornTailTruncatedSilently(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	if err := s.Put("key-a", testResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-b", testResult(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Chop the file mid-way through the final record: a crash mid-append.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, path)
	if s2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", s2.Len())
	}
	if _, ok, _ := s2.Get("key-b"); ok {
		t.Error("torn record still readable")
	}
	// The store must keep working (appends land on the new boundary).
	if err := s2.Put("key-c", testResult(3)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := open(t, path)
	if s3.Len() != 2 {
		t.Errorf("Len after post-truncation append = %d, want 2", s3.Len())
	}
}

func TestBadMagicAndVersionRejected(t *testing.T) {
	dir := t.TempDir()

	badMagic := filepath.Join(dir, "magic.db")
	if err := os.WriteFile(badMagic, []byte("NOPE\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}

	badVersion := filepath.Join(dir, "version.db")
	hdr := []byte{'D', 'G', 'R', 'S', 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hdr[4:], 999)
	if err := os.WriteFile(badVersion, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badVersion); err == nil {
		t.Error("future version accepted")
	}
}

func TestCompactReclaimsDeadBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	for i := uint64(0); i < 50; i++ {
		// Rewrite the same two keys repeatedly: 96 dead records.
		if err := s.Put("hot-a", testResult(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Put("hot-b", testResult(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("rewrites produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 || after.Bytes >= before.Bytes {
		t.Errorf("compact: %+v -> %+v", before, after)
	}
	res, ok, err := s.Get("hot-a")
	if err != nil || !ok || res != testResult(49) {
		t.Errorf("post-compact Get = %+v, %v, %v", res, ok, err)
	}
	// Compacted file must reload cleanly with the same contents.
	s.Close()
	s2 := open(t, path)
	if s2.Len() != 2 {
		t.Errorf("post-compact reopen Len = %d, want 2", s2.Len())
	}
	res, ok, err = s2.Get("hot-b")
	if err != nil || !ok || res != testResult(98) {
		t.Errorf("post-compact reopen Get = %+v, %v, %v", res, ok, err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 100; i++ {
			s.Put("w-key", testResult(i))
		}
	}()
	for i := uint64(0); i < 100; i++ {
		s.Get("w-key")
		s.Put("r-key", testResult(i))
	}
	<-done
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

// TestCRCMatchesSpec pins the record checksum definition (IEEE CRC-32 over
// key‖value): the on-disk format is a cross-version contract.
func TestCRCMatchesSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.db")
	s := open(t, path)
	if err := s.Put("k", testResult(7)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	keyLen := binary.LittleEndian.Uint32(raw[8:12])
	valLen := binary.LittleEndian.Uint32(raw[12:16])
	payload := raw[16 : 16+keyLen+valLen]
	stored := binary.LittleEndian.Uint32(raw[16+keyLen+valLen:])
	if crc32.ChecksumIEEE(payload) != stored {
		t.Error("stored CRC is not IEEE CRC-32 over key‖value")
	}
}
