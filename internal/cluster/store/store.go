// Package store is the cluster's persistent result tier: a versioned,
// checksum-verified, append-only record file mapping engine cache keys to
// simulation results. A coordinator fronted by the in-memory LRU writes
// every computed result through to the store, so a restarted cluster serves
// previously-computed sweeps without simulating anything.
//
// File layout (all integers little-endian):
//
//	header:  magic "DGRS" | uint32 version
//	record:  uint32 keyLen | uint32 valLen | key | val | uint32 crc32(key‖val)
//
// The file is append-only; rewriting a key appends a newer record (last one
// wins on load). Compact rewrites only the live records. Load verifies
// every record's CRC: a torn final record (a crash mid-append) is truncated
// away silently, but a checksum mismatch on a complete record is corruption
// and fails loudly with ErrCorrupt.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"doppelganger/sim"
)

// Version is the current file-format version. Load rejects files written by
// a different version rather than guessing at their layout.
//
// Version 2: engine cache keys gained a checkpoint-digest component, so keys
// written by version-1 builds may name different simulations than the same
// bytes under this build. The record layout is unchanged; the bump exists to
// keep stale key→result mappings from being served.
const Version = 2

var magic = [4]byte{'D', 'G', 'R', 'S'}

// ErrCorrupt reports a complete record whose checksum did not verify (or a
// malformed header). It wraps position detail; test with errors.Is.
var ErrCorrupt = errors.New("store: corrupt record")

// maxRecordLen bounds a single record so a corrupt length field cannot make
// Load attempt a multi-gigabyte allocation.
const maxRecordLen = 16 << 20

// Store is a durable key→result map. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	end   int64            // append offset
	index map[string]entry // key -> newest record
	dead  int64            // bytes occupied by superseded records
}

type entry struct {
	off    int64 // offset of the value bytes
	valLen uint32
	crc    uint32 // crc32(key‖val), re-verified on every read
}

// Open opens (creating if absent) the store at path and loads its index,
// verifying every record checksum. A torn trailing record is truncated; any
// other checksum failure returns ErrCorrupt.
func Open(path string) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{path: path, f: f, index: make(map[string]entry)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load reads the header and replays every record into the index.
func (s *Store) load() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() == 0 {
		// Fresh file: write the header.
		var hdr [8]byte
		copy(hdr[:4], magic[:])
		binary.LittleEndian.PutUint32(hdr[4:], Version)
		if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.end = int64(len(hdr))
		return nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, 8), hdr[:]); err != nil {
		return fmt.Errorf("%w: short header in %s", ErrCorrupt, s.path)
	}
	if [4]byte(hdr[:4]) != magic {
		return fmt.Errorf("%w: bad magic in %s", ErrCorrupt, s.path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return fmt.Errorf("store: %s is format version %d, this build reads version %d", s.path, v, Version)
	}

	off := int64(len(hdr))
	size := info.Size()
	for off < size {
		var rec [8]byte
		if _, err := io.ReadFull(io.NewSectionReader(s.f, off, 8), rec[:]); err != nil {
			// Torn header at the tail: a crash mid-append. Truncate it away.
			return s.truncate(off)
		}
		keyLen := binary.LittleEndian.Uint32(rec[:4])
		valLen := binary.LittleEndian.Uint32(rec[4:])
		if keyLen == 0 || keyLen+valLen > maxRecordLen {
			return fmt.Errorf("%w: implausible record lengths (%d,%d) at offset %d in %s",
				ErrCorrupt, keyLen, valLen, off, s.path)
		}
		body := make([]byte, int(keyLen)+int(valLen)+4)
		if _, err := io.ReadFull(io.NewSectionReader(s.f, off+8, int64(len(body))), body); err != nil {
			// Torn body at the tail.
			return s.truncate(off)
		}
		payload := body[:keyLen+valLen]
		want := binary.LittleEndian.Uint32(body[keyLen+valLen:])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return fmt.Errorf("%w: checksum mismatch at offset %d in %s (crc %08x, want %08x)",
				ErrCorrupt, off, s.path, got, want)
		}
		key := string(payload[:keyLen])
		if old, ok := s.index[key]; ok {
			s.dead += 8 + int64(keyLen) + int64(old.valLen) + 4
		}
		s.index[key] = entry{off: off + 8 + int64(keyLen), valLen: valLen, crc: want}
		off += 8 + int64(len(body))
	}
	s.end = off
	return nil
}

// truncate drops a torn tail so future appends start on a record boundary.
func (s *Store) truncate(off int64) error {
	if err := s.f.Truncate(off); err != nil {
		return fmt.Errorf("store: truncating torn tail: %w", err)
	}
	s.end = off
	return nil
}

// Get returns the stored result for key, re-verifying its checksum on read.
func (s *Store) Get(key string) (sim.Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return sim.Result{}, false, nil
	}
	buf := make([]byte, e.valLen)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, e.off, int64(e.valLen)), buf); err != nil {
		return sim.Result{}, false, fmt.Errorf("store: reading %s: %w", key, err)
	}
	if got := crc32.ChecksumIEEE(append([]byte(key), buf...)); got != e.crc {
		return sim.Result{}, false, fmt.Errorf("%w: key %s fails checksum on read", ErrCorrupt, key)
	}
	var res sim.Result
	if err := json.Unmarshal(buf, &res); err != nil {
		return sim.Result{}, false, fmt.Errorf("store: decoding %s: %w", key, err)
	}
	return res, true, nil
}

// Put durably records key→res, superseding any prior record for key.
func (s *Store) Put(key string, res sim.Result) error {
	val, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}
	rec := make([]byte, 8+len(key)+len(val)+4)
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[8:], key)
	copy(rec[8+len(key):], val)
	crc := crc32.ChecksumIEEE(rec[8 : 8+len(key)+len(val)])
	binary.LittleEndian.PutUint32(rec[8+len(key)+len(val):], crc)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	if _, err := s.f.WriteAt(rec, s.end); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.dead += 8 + int64(len(key)) + int64(old.valLen) + 4
	}
	s.index[key] = entry{off: s.end + 8 + int64(len(key)), valLen: uint32(len(val)), crc: crc}
	s.end += int64(len(rec))
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats describes the store file.
type Stats struct {
	// Keys is the number of live keys.
	Keys int `json:"keys"`
	// Bytes is the file size.
	Bytes int64 `json:"bytes"`
	// DeadBytes counts space held by superseded records (reclaimed by
	// Compact).
	DeadBytes int64 `json:"dead_bytes"`
}

// Stats returns a snapshot of the file's live/dead occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Keys: len(s.index), Bytes: s.end, DeadBytes: s.dead}
}

// Sync flushes buffered writes to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Compact rewrites the store keeping only the newest record per key,
// atomically replacing the file (write temp, fsync, rename).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	var hdr [8]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	newIndex := make(map[string]entry, len(s.index))
	off := int64(len(hdr))
	for key, e := range s.index {
		val := make([]byte, e.valLen)
		if _, err := io.ReadFull(io.NewSectionReader(s.f, e.off, int64(e.valLen)), val); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: reading %s: %w", key, err)
		}
		rec := make([]byte, 8+len(key)+len(val)+4)
		binary.LittleEndian.PutUint32(rec[:4], uint32(len(key)))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
		copy(rec[8:], key)
		copy(rec[8+len(key):], val)
		binary.LittleEndian.PutUint32(rec[8+len(key)+len(val):], e.crc)
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		newIndex[key] = entry{off: off + 8 + int64(len(key)), valLen: e.valLen, crc: e.crc}
		off += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	s.f.Close()
	s.f, s.index, s.end, s.dead = tmp, newIndex, off, 0
	return nil
}

// Close syncs and closes the file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
