package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"doppelganger/sim"
)

// RunResult is the coordinator's answer to POST /v1/run.
type RunResult struct {
	// Key is the job's canonical engine cache key (the sharding key).
	Key string `json:"key"`
	// Source is which tier answered: memory, store, or computed.
	Source string `json:"source"`
	// Worker names the executing worker for computed results.
	Worker string     `json:"worker,omitempty"`
	Result sim.Result `json:"result"`
}

// SweepProgress is one per-cell streaming progress event.
type SweepProgress struct {
	Type string `json:"type"` // "progress"
	// Index is the cell's position in canonical matrix order; Total the
	// cell count. Events are emitted in index order.
	Index    int    `json:"index"`
	Total    int    `json:"total"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	AP       bool   `json:"ap"`
	Source   string `json:"source"`
	Worker   string `json:"worker,omitempty"`
	Cycles   uint64 `json:"cycles"`
	Checksum uint64 `json:"checksum"`
	// Error carries a per-cell failure; the sweep continues past it.
	Error string `json:"error,omitempty"`
}

// SweepCell is one completed cell in the final sweep summary.
type SweepCell struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	AP       bool   `json:"ap"`
	Source   string `json:"source"`
	Worker   string `json:"worker,omitempty"`
	// NormIPC is IPC normalized to the same workload's unsafe no-AP
	// baseline, when the sweep includes it.
	NormIPC float64    `json:"norm_ipc,omitempty"`
	Error   string     `json:"error,omitempty"`
	Result  sim.Result `json:"result"`
}

// SweepSummary is the final sweep payload (the whole response when not
// streaming; the terminal "done" event when streaming).
type SweepSummary struct {
	Type       string      `json:"type"` // "done"
	Cells      []SweepCell `json:"cells"`
	Errors     int         `json:"errors"`
	DurationMS int64       `json:"duration_ms"`
	// Sources tallies cells by serving tier.
	Sources map[string]int `json:"sources"`
}

// Handler builds the coordinator's route table: the public doppeld-shaped
// API plus the cluster control plane.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", c.handleRun)
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/cluster/register", c.handleRegister)
	mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/deregister", c.handleDeregister)
	mux.HandleFunc("GET /v1/cluster/workers", c.handleWorkers)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// clientID identifies the caller for rate limiting: the X-Doppel-Client
// header when present (lets load balancers and doppelbench tag logical
// clients), else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Doppel-Client"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit applies rate limiting and admission control; a false return means
// a 429 has been written.
func (c *Coordinator) admit(w http.ResponseWriter, r *http.Request) bool {
	if ok, retry := c.limiter.take(clientID(r)); !ok {
		if c.met != nil {
			c.met.rateLimited.Inc()
		}
		seconds := int(retry / time.Second)
		if retry%time.Second != 0 {
			seconds++
		}
		w.Header().Set("Retry-After", strconv.Itoa(seconds))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("rate limit exceeded; retry after %ds", seconds))
		return false
	}
	if c.opts.MaxQueue > 0 && c.active.Load() >= int64(c.opts.MaxQueue) {
		if c.met != nil {
			c.met.saturated.Inc()
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("dispatch queue saturated (%d active jobs); retry after 1s", c.active.Load()))
		return false
	}
	return true
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	var spec JobSpec
	if err := decodeJSON(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, source, workerID, err := c.execute(r.Context(), spec)
	if err != nil {
		c.writeExecuteError(w, err)
		return
	}
	job, _ := spec.Resolve()
	c.runs.Add(1)
	writeJSON(w, http.StatusOK, RunResult{
		Key:    string(job.Key()),
		Source: source,
		Worker: workerID,
		Result: res,
	})
}

// writeExecuteError maps an execute failure onto a status code.
func (c *Coordinator) writeExecuteError(w http.ResponseWriter, err error) {
	switch {
	case err == errNoWorkers:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case strings.Contains(err.Error(), "unknown ") ||
		strings.Contains(err.Error(), "missing "):
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// streamMode resolves the requested progress transport.
func streamMode(spec SweepSpec, r *http.Request) string {
	switch spec.Stream {
	case "sse", "ndjson":
		return spec.Stream
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "text/event-stream"):
		return "sse"
	case strings.Contains(accept, "application/x-ndjson"):
		return "ndjson"
	}
	return ""
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	var spec SweepSpec
	if err := decodeJSON(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cells, err := spec.Cells()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode := streamMode(spec, r)

	c.streams.Add(1)
	defer c.streams.Done()

	var emit func(v any) // nil when not streaming
	switch mode {
	case "sse":
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		emit = func(v any) {
			raw, _ := json.Marshal(v)
			event := "progress"
			if _, done := v.(SweepSummary); done {
				event = "done"
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
			if flusher != nil {
				flusher.Flush()
			}
		}
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		emit = func(v any) {
			enc.Encode(v)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	summary := c.runSweep(r, cells, emit)
	c.sweeps.Add(1)
	if c.met != nil {
		c.met.sweepLatency.Observe(uint64(summary.DurationMS))
	}
	if emit != nil {
		emit(summary)
		return
	}
	writeJSON(w, http.StatusOK, summary)
}

// runSweep executes every cell with bounded parallelism, emitting ordered
// per-cell progress (a reorder buffer guarantees index order regardless of
// completion interleaving), and assembles the summary. Per-cell failures
// are recorded, not fatal: one bad cell must not void 167 good ones.
func (c *Coordinator) runSweep(r *http.Request, cells []JobSpec, emit func(v any)) SweepSummary {
	start := time.Now()
	type outcome struct {
		res    sim.Result
		source string
		worker string
		err    error
	}
	outs := make([]outcome, len(cells))
	settled := make([]bool, len(cells))
	next := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.opts.DispatchParallel)
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, source, workerID, err := c.execute(r.Context(), cells[i])
			mu.Lock()
			defer mu.Unlock()
			outs[i] = outcome{res: res, source: source, worker: workerID, err: err}
			settled[i] = true
			for next < len(cells) && settled[next] {
				if emit != nil {
					o := outs[next]
					p := SweepProgress{
						Type:     "progress",
						Index:    next,
						Total:    len(cells),
						Workload: cells[next].Workload,
						Scheme:   cells[next].Scheme,
						AP:       cells[next].AP,
						Source:   o.source,
						Worker:   o.worker,
						Cycles:   o.res.Cycles,
						Checksum: o.res.Checksum,
					}
					if o.err != nil {
						p.Error = o.err.Error()
					}
					emit(p)
				}
				next++
			}
		}(i)
	}
	wg.Wait()

	summary := SweepSummary{
		Type:    "done",
		Cells:   make([]SweepCell, len(cells)),
		Sources: make(map[string]int),
	}
	base := make(map[string]uint64) // workload -> unsafe no-AP cycles
	for i, spec := range cells {
		o := outs[i]
		cell := SweepCell{
			Workload: spec.Workload,
			Scheme:   spec.Scheme,
			AP:       spec.AP,
			Source:   o.source,
			Worker:   o.worker,
			Result:   o.res,
		}
		if o.err != nil {
			cell.Error = o.err.Error()
			summary.Errors++
		} else {
			summary.Sources[o.source]++
			if (spec.Scheme == "unsafe" || spec.Scheme == "") && !spec.AP {
				base[spec.Workload] = o.res.Cycles
			}
		}
		summary.Cells[i] = cell
	}
	for i := range summary.Cells {
		cell := &summary.Cells[i]
		if b, ok := base[cell.Workload]; ok && cell.Error == "" && cell.Result.Cycles > 0 {
			cell.NormIPC = float64(b) / float64(cell.Result.Cycles)
		}
	}
	summary.DurationMS = time.Since(start).Milliseconds()
	return summary
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeError(w, http.StatusBadRequest, "register needs both \"id\" and \"addr\"")
		return
	}
	if !strings.HasPrefix(req.Addr, "http://") && !strings.HasPrefix(req.Addr, "https://") {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("addr %q must be a base URL (http://host:port)", req.Addr))
		return
	}
	n := c.register(req.ID, strings.TrimRight(req.Addr, "/"))
	writeJSON(w, http.StatusOK, RegisterResponse{
		Workers:     n,
		HeartbeatMS: c.opts.HeartbeatInterval.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !c.heartbeat(req.ID) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown worker %q (re-register)", req.ID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req DeregisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	c.remove(req.ID, "deregistered")
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.workerInfos()})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"role":      "coordinator",
		"workers":   len(c.workerInfos()),
		"uptime_ms": time.Since(c.start).Milliseconds(),
	})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"cluster": c.Stats()})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if c.met != nil {
		c.met.reg.WritePrometheus(w)
	}
}
