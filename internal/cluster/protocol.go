package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"doppelganger/sim"
)

// Control-plane and data-plane wire types shared by coordinator and worker.

// RegisterRequest announces a worker to the coordinator. Re-registering an
// existing ID replaces its address (a restarted worker), never duplicates
// it on the ring.
type RegisterRequest struct {
	// ID is the worker's stable identity (sharding is by ID, so a worker
	// that restarts under the same ID reclaims its key range).
	ID string `json:"id"`
	// Addr is the worker's advertised base address, host:port.
	Addr string `json:"addr"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// Workers is the live worker count after this registration.
	Workers int `json:"workers"`
	// HeartbeatMS is how often the coordinator expects heartbeats.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest refreshes a worker's liveness.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// DeregisterRequest removes a worker from the ring (graceful shutdown).
type DeregisterRequest struct {
	ID string `json:"id"`
}

// ExecuteRequest asks a worker to run one job.
type ExecuteRequest struct {
	Spec JobSpec `json:"spec"`
	// Key is the coordinator's canonical engine key for the spec. The
	// worker re-derives it and refuses on mismatch: a disagreement means
	// the two binaries encode cache keys differently (version skew), and
	// silently proceeding would corrupt the shared result tier.
	Key string `json:"key"`
}

// ExecuteResponse is a worker's completed job.
type ExecuteResponse struct {
	Key    string     `json:"key"`
	Worker string     `json:"worker"`
	Result sim.Result `json:"result"`
}

// WorkerInfo describes one registered worker on /v1/cluster/workers.
type WorkerInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// LastSeenMS is milliseconds since the last heartbeat or successful
	// dispatch.
	LastSeenMS int64 `json:"last_seen_ms"`
	// Jobs counts jobs dispatched to this worker.
	Jobs uint64 `json:"jobs"`
}

// errorResponse is the JSON body of every non-2xx cluster reply.
type errorResponse struct {
	Error string `json:"error"`
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
