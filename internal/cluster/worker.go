package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"doppelganger/internal/engine"
)

// Worker is the data-plane surface a doppeld worker process exposes to the
// coordinator: it resolves job specs against the local workload registry
// and executes them on the process's shared engine (worker pool, local LRU,
// in-flight dedup all apply).
type Worker struct {
	// ID is the worker's cluster identity, echoed in execute responses.
	ID string
	// Eng executes the jobs.
	Eng *engine.Engine
}

// Handler serves the worker's internal execute endpoint. Mount it alongside
// the regular doppeld API.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/v1/execute", wk.handleExecute)
	return mux
}

func (wk *Worker) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := req.Spec.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := string(job.Key())
	if req.Key != "" && req.Key != key {
		// Version skew: this worker encodes cache keys differently from the
		// coordinator. Refuse rather than poison the shared result tier.
		writeError(w, http.StatusConflict, fmt.Sprintf(
			"cache-key mismatch: coordinator derived %s, worker derived %s (mixed cluster versions?)",
			req.Key, key))
		return
	}
	res, err := wk.Eng.Submit(r.Context(), job)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusBadRequest
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ExecuteResponse{Key: key, Worker: wk.ID, Result: res})
}

// Agent maintains a worker's membership in the cluster: it registers with
// the coordinator (retrying until reachable), heartbeats on the interval
// the coordinator announced, and deregisters on shutdown so the ring stops
// routing to this worker before the process exits.
type Agent struct {
	// Coordinator is the coordinator's base URL, e.g. "http://127.0.0.1:9000".
	Coordinator string
	// ID is this worker's stable identity.
	ID string
	// Addr is the advertised base address clients of the coordinator never
	// see but the coordinator dispatches to, e.g. "http://127.0.0.1:8081".
	Addr string
	// Client overrides the HTTP client (nil = a 5s-timeout default).
	Client *http.Client
	// Logf, when non-nil, receives membership lifecycle messages.
	Logf func(format string, args ...any)
}

func (a *Agent) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// Run registers, heartbeats until ctx is cancelled, then deregisters (on a
// fresh short-lived context — the cancelled ctx must not abort the goodbye).
// It returns once deregistration has been attempted.
func (a *Agent) Run(ctx context.Context) error {
	interval, err := a.register(ctx)
	if err != nil {
		return err
	}
	a.logf("cluster: registered %s with %s (heartbeat %v)", a.ID, a.Coordinator, interval)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			dctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := a.post(dctx, "/v1/cluster/deregister", DeregisterRequest{ID: a.ID}, nil); err != nil {
				a.logf("cluster: deregister failed: %v", err)
				return err
			}
			a.logf("cluster: deregistered %s", a.ID)
			return nil
		case <-t.C:
			if err := a.post(ctx, "/v1/cluster/heartbeat", HeartbeatRequest{ID: a.ID}, nil); err != nil && ctx.Err() == nil {
				// A missed heartbeat may mean the coordinator restarted and
				// lost its view; re-register rather than fade away.
				a.logf("cluster: heartbeat failed (%v), re-registering", err)
				if _, rerr := a.register(ctx); rerr != nil && ctx.Err() == nil {
					a.logf("cluster: re-register failed: %v", rerr)
				}
			}
		}
	}
}

// register announces the worker, retrying with backoff until the
// coordinator accepts or ctx ends. It returns the heartbeat interval the
// coordinator asked for.
func (a *Agent) register(ctx context.Context) (time.Duration, error) {
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		err := a.post(ctx, "/v1/cluster/register", RegisterRequest{ID: a.ID, Addr: a.Addr}, &resp)
		if err == nil {
			interval := time.Duration(resp.HeartbeatMS) * time.Millisecond
			if interval <= 0 {
				interval = time.Second
			}
			return interval, nil
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("cluster: registering with %s: %w (last error: %v)", a.Coordinator, ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// post sends one JSON control-plane request and decodes the reply into out
// (when non-nil).
func (a *Agent) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.Coordinator+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
