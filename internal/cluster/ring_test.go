package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"doppelganger/internal/engine"
)

// testKeys derives n realistic engine-style keys (hex SHA-256 digests).
func testKeys(n int) []engine.Key {
	keys := make([]engine.Key, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = engine.Key(hex.EncodeToString(sum[:]))
	}
	return keys
}

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	r := newRing([]string{"w1", "w2", "w3"}, 64)
	for _, key := range testKeys(100) {
		owners := r.owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("owners(%s) = %v, want 3 distinct", key, owners)
		}
		seen := map[string]bool{}
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("owners(%s) repeats %s: %v", key, id, owners)
			}
			seen[id] = true
		}
		again := r.owners(key, 3)
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("owners(%s) not deterministic: %v vs %v", key, owners, again)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := newRing([]string{"w1", "w2", "w3", "w4"}, 64)
	counts := map[string]int{}
	const n = 4000
	for _, key := range testKeys(n) {
		counts[r.owners(key, 1)[0]]++
	}
	for id, got := range counts {
		// Expect n/4 each; tolerate a generous 2x spread — the point is no
		// worker is starved or doubled, not perfect uniformity.
		if got < n/8 || got > n/2 {
			t.Errorf("worker %s owns %d of %d keys (imbalanced): %v", id, got, n, counts)
		}
	}
}

// TestRingMinimalDisruption checks the consistent-hashing property the
// cluster relies on for re-sharding: removing one worker moves only keys
// that worker owned; every other key keeps its primary owner.
func TestRingMinimalDisruption(t *testing.T) {
	full := newRing([]string{"w1", "w2", "w3"}, 64)
	reduced := newRing([]string{"w1", "w3"}, 64)
	moved, kept := 0, 0
	for _, key := range testKeys(1000) {
		before := full.owners(key, 1)[0]
		after := reduced.owners(key, 1)[0]
		if before == "w2" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingFailoverOrder checks that the retry order (owner list) after a
// worker loss starts with the same successor a rebuilt ring would choose
// as primary — a retried job lands where future identical jobs will hash.
func TestRingFailoverOrder(t *testing.T) {
	full := newRing([]string{"w1", "w2", "w3"}, 64)
	for _, key := range testKeys(200) {
		owners := full.owners(key, 3)
		var survivors []string
		for _, id := range []string{"w1", "w2", "w3"} {
			if id != owners[0] {
				survivors = append(survivors, id)
			}
		}
		rebuilt := newRing(survivors, 64)
		if got, want := rebuilt.owners(key, 1)[0], owners[1]; got != want {
			t.Fatalf("key %s: rebuilt primary %s != failover successor %s", key, got, want)
		}
	}
}

func TestKeyPoint(t *testing.T) {
	cases := []struct {
		key  engine.Key
		want uint64
	}{
		{"0000000000000000ffff", 0},
		{"ffffffffffffffff0000", ^uint64(0)},
		{"0123456789abcdefrest", 0x0123456789abcdef},
		{"0123456789ABCDEF", 0x0123456789abcdef},
		{"not-hex!", 0},
	}
	for _, c := range cases {
		if got := keyPoint(c.key); got != c.want {
			t.Errorf("keyPoint(%q) = %#x, want %#x", c.key, got, c.want)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := newRing(nil, 64)
	if owners := r.owners("abcd", 3); owners != nil {
		t.Errorf("empty ring returned owners %v", owners)
	}
}
