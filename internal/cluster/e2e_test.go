package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"doppelganger/internal/cluster/store"
	"doppelganger/internal/engine"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// TestAcceptanceClusterSweep is the ISSUE's acceptance scenario end to end:
// a 3-worker cluster runs the full workload × scheme × ±AP matrix with one
// worker killed mid-run, every cell's result is checksum-identical to a
// single-node engine run, and a coordinator restarted on the same store —
// with zero workers registered — serves the identical sweep entirely from
// the persistent tier. The workerless restart is the zero-recomputation
// proof: there is nothing left that could compute.
func TestAcceptanceClusterSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix acceptance sweep skipped in -short mode")
	}
	sweep := SweepSpec{Schemes: []string{"all"}, Scale: "test"}
	if raceEnabled {
		// The race detector multiplies simulation cost ~10x; three
		// workloads still cross every scheme, both AP settings, the
		// mid-sweep kill, and the workerless restart.
		sweep.Workloads = workload.Names()[:3]
	}
	cells, err := sweep.Cells()
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(cells)
	if !raceEnabled && wantCells != 14*len(sim.AllSchemes())*2 {
		t.Fatalf("matrix has %d cells, want %d (suite drifted?)",
			wantCells, 14*len(sim.AllSchemes())*2)
	}

	// Single-node reference: the same jobs through a plain engine, keyed by
	// the canonical cache key the cluster shards and stores by.
	ref := make(map[string]sim.Result, wantCells)
	{
		eng := engine.New(engine.Options{Workers: 2})
		defer eng.Close()
		jobs := make([]engine.Job, wantCells)
		for i, spec := range cells {
			if jobs[i], err = spec.Resolve(); err != nil {
				t.Fatalf("resolving cell %d: %v", i, err)
			}
		}
		results, err := eng.RunBatch(context.Background(), jobs, nil)
		if err != nil {
			t.Fatalf("single-node reference run: %v", err)
		}
		for i, res := range results {
			ref[string(jobs[i].Key())] = res
		}
	}

	// Cluster run: three workers, persistent store, one worker killed once
	// it has computed at least one cell.
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results.dgrs"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	w1 := newTestWorker(t, "w1", 1)
	w2 := newTestWorker(t, "w2", 1)
	w3 := newTestWorker(t, "w3", 1)
	// WorkerTimeout is generous: on a CPU-saturated test box even an idle
	// worker's /healthz reply can be slow, and this scenario's failure
	// detection comes from the dispatch path, not probes (which have their
	// own test).
	c := newTestCoordinator(t, Options{Store: st, DispatchParallel: 4, WorkerTimeout: 10 * time.Second}, w1, w2, w3)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	go func() {
		for w3.served.Load() < 2 { // at least one real dispatch past /healthz
			time.Sleep(time.Millisecond)
		}
		w3.kill()
	}()

	resp, body := postSpec(t, ts.URL+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sum SweepSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("bad summary: %v", err)
	}
	if len(sum.Cells) != wantCells || sum.Errors != 0 {
		for _, cell := range sum.Cells {
			if cell.Error != "" {
				t.Logf("cell %s/%s/ap=%v: %s", cell.Workload, cell.Scheme, cell.AP, cell.Error)
			}
		}
		t.Fatalf("cluster sweep: cells=%d errors=%d, want %d complete", len(sum.Cells), sum.Errors, wantCells)
	}
	checkAgainstReference(t, "cluster", cells, sum, ref)

	st2 := c.Stats()
	if len(st2.Workers) != 2 {
		t.Errorf("live workers after kill = %d, want 2 survivors", len(st2.Workers))
	}
	if st2.WorkerFails == 0 {
		t.Error("killed worker was never detected as failed")
	}

	// Restart: a fresh coordinator on the same store with NO workers. Every
	// cell must still be answered, necessarily from the persistent tier.
	c.Close()
	ts.Close()
	c2 := newTestCoordinator(t, Options{Store: st})
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(ts2.Close)

	resp, body = postSpec(t, ts2.URL+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart sweep status %d: %s", resp.StatusCode, body)
	}
	var sum2 SweepSummary
	if err := json.Unmarshal(body, &sum2); err != nil {
		t.Fatalf("bad restart summary: %v", err)
	}
	if len(sum2.Cells) != wantCells || sum2.Errors != 0 {
		t.Fatalf("restart sweep: cells=%d errors=%d, want %d complete (workerless, store-only)",
			len(sum2.Cells), sum2.Errors, wantCells)
	}
	if got := sum2.Sources[SourceStore]; got != wantCells {
		t.Errorf("restart sources = %v, want all %d cells from %q", sum2.Sources, wantCells, SourceStore)
	}
	checkAgainstReference(t, "restart", cells, sum2, ref)
}

// checkAgainstReference asserts every sweep cell matches the single-node
// reference result for the same canonical key, checksum included.
func checkAgainstReference(t *testing.T, phase string, cells []JobSpec, sum SweepSummary, ref map[string]sim.Result) {
	t.Helper()
	mismatches := 0
	for i, cell := range sum.Cells {
		job, err := cells[i].Resolve()
		if err != nil {
			t.Fatalf("%s: re-resolving cell %d: %v", phase, i, err)
		}
		want, ok := ref[string(job.Key())]
		if !ok {
			t.Fatalf("%s: cell %d key %s missing from reference", phase, i, job.Key())
		}
		if cell.Result.Checksum != want.Checksum || cell.Result.Cycles != want.Cycles {
			t.Errorf("%s: cell %s/%s/ap=%v diverged: checksum %#x/%d cycles, reference %#x/%d",
				phase, cell.Workload, cell.Scheme, cell.AP,
				cell.Result.Checksum, cell.Result.Cycles, want.Checksum, want.Cycles)
			if mismatches++; mismatches > 5 {
				t.Fatalf("%s: more than 5 divergent cells; aborting", phase)
			}
		}
	}
}
