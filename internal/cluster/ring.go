package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"doppelganger/internal/engine"
)

// defaultVNodes is the number of virtual nodes per worker. 64 points per
// worker keeps the expected load imbalance across a handful of workers
// within a few percent while membership changes stay cheap.
const defaultVNodes = 64

// ring is an immutable consistent-hash ring: worker IDs placed at vnode
// points on a uint64 circle. Jobs map to the first point at or after their
// key's hash. Rebuilt (not mutated) on membership change.
type ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // distinct member IDs, sorted
}

type ringPoint struct {
	hash uint64
	id   string
}

// newRing places each id at vnodes points derived from SHA-256(id, vnode).
func newRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{ids: append([]string(nil), ids...)}
	sort.Strings(r.ids)
	r.points = make([]ringPoint, 0, len(ids)*vnodes)
	for _, id := range r.ids {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", id, v)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// keyPoint maps an engine cache key onto the circle. Keys are hex SHA-256
// digests, already uniformly distributed; the first 16 hex digits are the
// point. A malformed key (impossible for engine-produced keys) hashes to 0.
func keyPoint(key engine.Key) uint64 {
	var p uint64
	for i := 0; i < 16 && i < len(key); i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9':
			p = p<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			p = p<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			p = p<<4 | uint64(c-'A'+10)
		default:
			return 0
		}
	}
	return p
}

// owners returns up to n distinct worker IDs for key, in preference order:
// the key's primary owner first, then successive distinct successors
// clockwise around the ring (the retry order on worker failure).
func (r *ring) owners(key engine.Key, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	p := keyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= p })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if !seen[pt.id] {
			seen[pt.id] = true
			out = append(out, pt.id)
		}
	}
	return out
}

// members returns the distinct worker IDs on the ring, sorted.
func (r *ring) members() []string { return r.ids }
