package cluster

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is one client's rate limiter: capacity burst, refilled at
// rate tokens/second. Lazily refilled on each take.
type tokenBucket struct {
	tokens   float64
	last     time.Time
	lastUsed time.Time
}

// limiter hands out per-client token buckets. Idle clients are evicted so
// a high-cardinality client population (the "millions of users" case)
// cannot grow the map without bound.
type limiter struct {
	rate  float64 // tokens per second
	burst float64
	ttl   time.Duration
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	sweepAt time.Time
}

// newLimiter builds a limiter; rate <= 0 disables limiting (every take
// succeeds).
func newLimiter(rate float64, burst int) *limiter {
	if burst <= 0 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		ttl:     5 * time.Minute,
		now:     time.Now,
		buckets: make(map[string]*tokenBucket),
	}
}

// take attempts to consume one token for client. On refusal it returns
// ok=false and the duration after which a token will be available — the
// Retry-After the HTTP layer surfaces.
func (l *limiter) take(client string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[client]
	if !exists {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	// Refill for elapsed time, clamped at the burst capacity.
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	b.lastUsed = now
	if b.tokens >= 1 {
		b.tokens--
		l.sweepLocked(now)
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	l.sweepLocked(now)
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// sweepLocked evicts buckets idle past the TTL, at most once per TTL.
func (l *limiter) sweepLocked(now time.Time) {
	if now.Sub(l.sweepAt) < l.ttl {
		return
	}
	l.sweepAt = now
	for id, b := range l.buckets {
		if now.Sub(b.lastUsed) > l.ttl {
			delete(l.buckets, id)
		}
	}
}

// clients returns the number of tracked client buckets.
func (l *limiter) clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
