//go:build !race

package cluster

// raceEnabled reports whether the race detector is compiled in. The
// acceptance sweep shrinks its matrix under -race: the detector's ~10x
// slowdown would turn the full 168-cell matrix into minutes of wall clock
// without exercising any additional interleavings.
const raceEnabled = false
