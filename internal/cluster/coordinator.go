package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"doppelganger/internal/cluster/store"
	"doppelganger/internal/obs"
	"doppelganger/sim"
)

// Result sources, reported per cell so clients and tests can see which
// tier answered.
const (
	// SourceMemory: served from the coordinator's in-memory LRU.
	SourceMemory = "memory"
	// SourceStore: served from the persistent result tier.
	SourceStore = "store"
	// SourceComputed: dispatched to a worker (the per-cell Worker field
	// names which one).
	SourceComputed = "computed"
)

// Options configures a Coordinator.
type Options struct {
	// Store, when non-nil, is the persistent result tier. Every computed
	// result is written through; every miss of the memory LRU consults it
	// before dispatching.
	Store *store.Store
	// Metrics, when non-nil, receives cluster activity.
	Metrics *obs.Metrics
	// CacheSize bounds the memory LRU in entries (0 = 4096, negative
	// disables).
	CacheSize int
	// HeartbeatInterval is how often workers are told to heartbeat
	// (0 = 1s).
	HeartbeatInterval time.Duration
	// WorkerTimeout is how stale a worker's liveness may grow before the
	// health loop probes it and, on failure, removes it
	// (0 = 3× HeartbeatInterval).
	WorkerTimeout time.Duration
	// VNodes is the virtual nodes per worker on the ring (0 = 64).
	VNodes int
	// MaxAttempts bounds how many distinct workers one job is tried on
	// before failing (0 = 3).
	MaxAttempts int
	// DispatchParallel bounds concurrent dispatches per sweep (0 = 16).
	DispatchParallel int
	// MaxQueue bounds jobs admitted but not yet completed across all
	// requests; beyond it new work is refused 429 (0 = 1024, negative
	// disables admission control).
	MaxQueue int
	// RateLimit is the per-client request rate in requests/second
	// (0 = unlimited); RateBurst is the bucket depth (0 = 10).
	RateLimit float64
	RateBurst int
	// Client overrides the dispatch HTTP client (nil = no-timeout default;
	// per-dispatch deadlines come from the request context).
	Client *http.Client
	// Logf, when non-nil, receives cluster lifecycle messages.
	Logf func(format string, args ...any)
}

// workerState is one registered worker.
type workerState struct {
	id       string
	addr     string
	lastSeen atomic.Int64 // unix nanos
	jobs     atomic.Uint64
	inflight atomic.Int64 // dispatches currently on the wire
}

// Coordinator owns the cluster view: the worker registry, the consistent-
// hash ring, the two-level result tier, admission control and rate
// limiting. It is safe for concurrent use.
type Coordinator struct {
	opts    Options
	met     *clusterMetrics
	lru     *resultLRU
	store   *store.Store
	limiter *limiter
	client  *http.Client

	mu      sync.Mutex
	workers map[string]*workerState
	ring    *ring

	active  atomic.Int64 // admitted, not-yet-settled compute jobs
	sweeps  atomic.Uint64
	runs    atomic.Uint64
	retries atomic.Uint64
	fails   atomic.Uint64
	start   time.Time

	streams  sync.WaitGroup // in-flight streaming responses, for drain
	stopOnce sync.Once
	stopped  chan struct{}
}

// NewCoordinator builds a coordinator and starts its health-check loop.
// Call Close to stop it.
func NewCoordinator(opts Options) *Coordinator {
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = time.Second
	}
	if opts.WorkerTimeout <= 0 {
		opts.WorkerTimeout = 3 * opts.HeartbeatInterval
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.DispatchParallel <= 0 {
		opts.DispatchParallel = 16
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 1024
	}
	if opts.RateBurst <= 0 {
		opts.RateBurst = 10
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 4096
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{
		opts:    opts,
		met:     newClusterMetrics(opts.Metrics),
		lru:     newResultLRU(cacheSize),
		store:   opts.Store,
		limiter: newLimiter(opts.RateLimit, opts.RateBurst),
		client:  client,
		workers: make(map[string]*workerState),
		ring:    newRing(nil, opts.VNodes),
		start:   time.Now(),
		stopped: make(chan struct{}),
	}
	go c.healthLoop()
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Close stops the health loop and waits for in-flight streaming responses
// to drain. It does not close the store (the caller owns it).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stopped) })
	c.streams.Wait()
}

// register adds (or refreshes) a worker. A duplicate ID replaces the old
// address — one ring entry per identity, never two.
func (c *Coordinator) register(id, addr string) int {
	c.mu.Lock()
	w, existed := c.workers[id]
	if existed {
		if w.addr != addr {
			c.logf("cluster: worker %s re-registered at %s (was %s)", id, addr, w.addr)
		}
		w.addr = addr
	} else {
		w = &workerState{id: id, addr: addr}
		c.workers[id] = w
		c.rebuildRingLocked()
	}
	w.lastSeen.Store(time.Now().UnixNano())
	n := len(c.workers)
	c.mu.Unlock()
	if c.met != nil {
		c.met.registered.Inc()
		c.met.workersLive.Set(int64(n))
	}
	if !existed {
		c.logf("cluster: worker %s joined at %s (%d live)", id, addr, n)
	}
	return n
}

// heartbeat refreshes a worker's liveness; unknown IDs report false so the
// worker re-registers.
func (c *Coordinator) heartbeat(id string) bool {
	c.mu.Lock()
	w, ok := c.workers[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	w.lastSeen.Store(time.Now().UnixNano())
	return true
}

// remove drops a worker from the registry and re-shards the ring.
func (c *Coordinator) remove(id, reason string) {
	c.mu.Lock()
	w, ok := c.workers[id]
	if ok {
		delete(c.workers, id)
		c.rebuildRingLocked()
	}
	n := len(c.workers)
	c.mu.Unlock()
	if !ok {
		return
	}
	if c.met != nil {
		c.met.workersLive.Set(int64(n))
	}
	c.logf("cluster: worker %s at %s removed (%s; %d live)", id, w.addr, reason, n)
}

// fail removes a worker after a failed dispatch or probe and counts it.
func (c *Coordinator) fail(id, reason string) {
	c.fails.Add(1)
	if c.met != nil {
		c.met.failures.Inc()
	}
	c.remove(id, reason)
}

func (c *Coordinator) rebuildRingLocked() {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	c.ring = newRing(ids, c.opts.VNodes)
}

func (c *Coordinator) currentRing() *ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

func (c *Coordinator) workerByID(id string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[id]
}

// workerInfos snapshots the registry for /v1/cluster/workers.
func (c *Coordinator) workerInfos() []WorkerInfo {
	c.mu.Lock()
	ws := make([]*workerState, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, len(ws))
	for i, w := range ws {
		out[i] = WorkerInfo{
			ID:         w.id,
			Addr:       w.addr,
			LastSeenMS: now.Sub(time.Unix(0, w.lastSeen.Load())).Milliseconds(),
			Jobs:       w.jobs.Load(),
		}
	}
	sortWorkerInfos(out)
	return out
}

// healthLoop probes workers whose liveness has gone stale and removes the
// unreachable ones, re-sharding their key range onto survivors.
func (c *Coordinator) healthLoop() {
	t := time.NewTicker(c.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopped:
			return
		case <-t.C:
		}
		c.mu.Lock()
		stale := make([]*workerState, 0)
		cutoff := time.Now().Add(-c.opts.WorkerTimeout).UnixNano()
		for _, w := range c.workers {
			// A worker with a dispatch on the wire is not probed: the
			// dispatch outcome is itself the health verdict (a transport
			// failure removes the worker immediately), and long simulations
			// legitimately delay both heartbeats and probe responses.
			if w.lastSeen.Load() < cutoff && w.inflight.Load() == 0 {
				stale = append(stale, w)
			}
		}
		c.mu.Unlock()
		for _, w := range stale {
			if c.probe(w) {
				w.lastSeen.Store(time.Now().UnixNano())
				continue
			}
			c.fail(w.id, "missed heartbeats and failed health probe")
		}
	}
}

// probe performs one short health check against a worker.
func (c *Coordinator) probe(w *workerState) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.WorkerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// errNoWorkers reports an empty ring.
var errNoWorkers = errors.New("cluster: no live workers")

// jobError is a worker's definitive answer that the job itself failed (as
// opposed to the worker being unreachable): simulation is deterministic,
// so retrying on another worker would fail identically.
type jobError struct{ msg string }

func (e *jobError) Error() string { return e.msg }

// execute answers one job spec through the tiers: memory LRU, persistent
// store, then dispatch to the key's ring owners with retry/re-shard on
// worker failure. It returns the result, the serving tier (memory/store/
// computed), and the worker ID for computed results.
func (c *Coordinator) execute(ctx context.Context, spec JobSpec) (res sim.Result, source, workerID string, err error) {
	job, err := spec.Resolve()
	if err != nil {
		return sim.Result{}, "", "", err
	}
	key := string(job.Key())
	start := time.Now()
	defer func() {
		if err == nil && c.met != nil {
			c.met.jobLatency.Observe(uint64(time.Since(start).Milliseconds()))
		}
	}()

	if res, ok := c.lru.get(key); ok {
		if c.met != nil {
			c.met.memHits.Inc()
		}
		return res, SourceMemory, "", nil
	}
	if c.store != nil {
		res, ok, serr := c.store.Get(key)
		if serr != nil {
			// A failed store read (including a checksum mismatch) must not
			// take the cluster down: log, recompute, and overwrite.
			c.logf("cluster: store read for %s: %v (recomputing)", key, serr)
		} else if ok {
			c.lru.put(key, res)
			if c.met != nil {
				c.met.storeHits.Inc()
			}
			return res, SourceStore, "", nil
		}
	}

	c.active.Add(1)
	defer c.active.Add(-1)

	attempt := 0
	for {
		owners := c.currentRing().owners(job.Key(), c.opts.MaxAttempts)
		if len(owners) == 0 {
			return sim.Result{}, "", "", errNoWorkers
		}
		var lastErr error
		progressed := false
		for _, id := range owners {
			w := c.workerByID(id)
			if w == nil {
				continue // removed since the ring snapshot
			}
			if attempt > 0 {
				c.retries.Add(1)
				if c.met != nil {
					c.met.retries.Inc()
				}
			}
			attempt++
			res, derr := c.dispatch(ctx, w, spec, key)
			if derr == nil {
				c.lru.put(key, res)
				if c.store != nil {
					if perr := c.store.Put(key, res); perr != nil {
						c.logf("cluster: store write for %s: %v", key, perr)
					}
				}
				if c.met != nil {
					c.met.computed.Inc()
					c.met.routedTo(id).Inc()
				}
				return res, SourceComputed, id, nil
			}
			if ctx.Err() != nil {
				return sim.Result{}, "", "", ctx.Err()
			}
			var je *jobError
			if errors.As(derr, &je) {
				// The worker is healthy; the job itself failed. Deterministic
				// simulation fails the same way everywhere — don't retry.
				return sim.Result{}, "", "", fmt.Errorf("cluster: worker %s: %s", id, je.msg)
			}
			lastErr = derr
			progressed = true
			c.fail(id, fmt.Sprintf("dispatch failed: %v", derr))
		}
		if !progressed {
			// Every snapshot owner vanished before we reached it; re-snapshot.
			continue
		}
		// All owners in this snapshot failed; the ring has been rebuilt
		// without them. If survivors remain, one more pass covers them.
		if len(c.currentRing().members()) == 0 {
			return sim.Result{}, "", "", fmt.Errorf("cluster: all workers failed (last: %v)", lastErr)
		}
	}
}

// dispatch sends one job to one worker and decodes the result, verifying
// the worker derived the same canonical key.
func (c *Coordinator) dispatch(ctx context.Context, w *workerState, spec JobSpec, key string) (sim.Result, error) {
	raw, err := json.Marshal(ExecuteRequest{Spec: spec, Key: key})
	if err != nil {
		return sim.Result{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+"/internal/v1/execute", bytes.NewReader(raw))
	if err != nil {
		return sim.Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	w.inflight.Add(1)
	resp, err := c.client.Do(req)
	w.inflight.Add(-1)
	if err != nil {
		return sim.Result{}, err // transport failure: worker presumed dead
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		var e errorResponse
		errMsg := string(bytes.TrimSpace(msg))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			errMsg = e.Error
		}
		// A well-formed error reply proves the worker is alive and rejected
		// the job itself; an unparseable non-200 is treated as worker
		// failure.
		if resp.StatusCode == http.StatusBadRequest ||
			resp.StatusCode == http.StatusConflict ||
			resp.StatusCode == http.StatusInternalServerError {
			return sim.Result{}, &jobError{msg: fmt.Sprintf("%s: %s", resp.Status, errMsg)}
		}
		return sim.Result{}, fmt.Errorf("worker %s: %s: %s", w.id, resp.Status, errMsg)
	}
	var out ExecuteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return sim.Result{}, fmt.Errorf("worker %s: decoding response: %w", w.id, err)
	}
	if out.Key != key {
		return sim.Result{}, &jobError{msg: fmt.Sprintf(
			"cache-key mismatch: coordinator %s, worker %s (mixed cluster versions?)", key, out.Key)}
	}
	w.jobs.Add(1)
	w.lastSeen.Store(time.Now().UnixNano())
	return out.Result, nil
}

// Stats is a point-in-time snapshot of cluster activity.
type Stats struct {
	Workers       []WorkerInfo `json:"workers"`
	Runs          uint64       `json:"runs"`
	Sweeps        uint64       `json:"sweeps"`
	Retries       uint64       `json:"retries"`
	WorkerFails   uint64       `json:"worker_failures"`
	ActiveJobs    int64        `json:"active_jobs"`
	MemoryEntries int          `json:"memory_entries"`
	RateClients   int          `json:"rate_clients"`
	Store         *store.Stats `json:"store,omitempty"`
	UptimeMS      int64        `json:"uptime_ms"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Workers:       c.workerInfos(),
		Runs:          c.runs.Load(),
		Sweeps:        c.sweeps.Load(),
		Retries:       c.retries.Load(),
		WorkerFails:   c.fails.Load(),
		ActiveJobs:    c.active.Load(),
		MemoryEntries: c.lru.len(),
		RateClients:   c.limiter.clients(),
		UptimeMS:      time.Since(c.start).Milliseconds(),
	}
	if c.store != nil {
		ss := c.store.Stats()
		st.Store = &ss
	}
	return st
}

func sortWorkerInfos(ws []WorkerInfo) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
