package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"doppelganger/internal/cluster/store"
	"doppelganger/internal/engine"
	"doppelganger/internal/obs"
)

// newTestStore opens a fresh persistent tier in a temp dir and returns it
// with its path (for corruption tests).
func newTestStore(t *testing.T) (*store.Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "results.db")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, path
}

// corruptStoreValue flips a byte inside the first record's value in the
// store's backing file, behind the open handle — Get's read-time checksum
// must catch it.
func corruptStoreValue(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// header(8) + lens(8) + key(64 hex) + a few bytes into the value
	off := 8 + 8 + 64 + 4
	if len(raw) <= off {
		t.Fatalf("store file too short to corrupt (%d bytes)", len(raw))
	}
	raw[off] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func newTestMetrics() *obs.Metrics { return obs.NewMetrics() }

// testWorker is one in-process cluster worker: an engine behind the Worker
// handler plus /healthz, with a kill switch that makes every subsequent
// request abort its connection — indistinguishable from a crashed process
// to the coordinator.
type testWorker struct {
	id     string
	ts     *httptest.Server
	eng    *engine.Engine
	dead   atomic.Bool
	served atomic.Uint64
}

func newTestWorker(t *testing.T, id string, engineWorkers int) *testWorker {
	t.Helper()
	tw := &testWorker{id: id}
	tw.eng = engine.New(engine.Options{Workers: engineWorkers})
	t.Cleanup(tw.eng.Close)
	wk := &Worker{ID: id, Eng: tw.eng}
	mux := http.NewServeMux()
	mux.Handle("POST /internal/v1/execute", wk.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	tw.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tw.dead.Load() {
			panic(http.ErrAbortHandler) // sever the connection mid-flight
		}
		tw.served.Add(1)
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(tw.ts.Close)
	return tw
}

// kill makes the worker drop every future connection.
func (tw *testWorker) kill() { tw.dead.Store(true) }

// newTestCoordinator builds a coordinator with fast timeouts and registers
// the given workers directly.
func newTestCoordinator(t *testing.T, opts Options, workers ...*testWorker) *Coordinator {
	t.Helper()
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 50 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c := NewCoordinator(opts)
	t.Cleanup(c.Close)
	for _, tw := range workers {
		c.register(tw.id, tw.ts.URL)
	}
	return c
}

func postSpec(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

var testSpec = JobSpec{Workload: "stream", Scale: "test", Scheme: "dom", AP: true}

func TestRunThroughClusterAndMemoryTier(t *testing.T) {
	w1 := newTestWorker(t, "w1", 2)
	c := newTestCoordinator(t, Options{}, w1)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	resp, body := postSpec(t, ts.URL+"/v1/run", testSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var run RunResult
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatalf("bad response: %v", err)
	}
	if run.Source != SourceComputed || run.Worker != "w1" {
		t.Errorf("source = %s/%s, want computed/w1", run.Source, run.Worker)
	}
	if len(run.Key) != 64 || run.Result.Cycles == 0 || run.Result.Checksum == 0 {
		t.Errorf("suspicious result: key=%q cycles=%d", run.Key, run.Result.Cycles)
	}

	// The identical run must be answered by the memory tier, not the worker.
	before := w1.served.Load()
	resp, body = postSpec(t, ts.URL+"/v1/run", testSpec)
	var again RunResult
	json.Unmarshal(body, &again)
	if resp.StatusCode != http.StatusOK || again.Source != SourceMemory {
		t.Errorf("repeat run: status %d source %s, want 200 memory", resp.StatusCode, again.Source)
	}
	if again.Result.Checksum != run.Result.Checksum {
		t.Error("memory tier returned a different checksum")
	}
	if w1.served.Load() != before {
		t.Error("memory-tier hit still reached the worker")
	}
}

func TestNoWorkersIs503(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	resp, body := postSpec(t, ts.URL+"/v1/run", testSpec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
}

func TestBadSpecIs400(t *testing.T) {
	w1 := newTestWorker(t, "w1", 1)
	c := newTestCoordinator(t, Options{}, w1)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	for _, spec := range []JobSpec{
		{},                                      // missing workload
		{Workload: "nope", Scale: "test"},       // unknown workload
		{Workload: "stream", Scale: "galactic"}, // unknown scale
		{Workload: "stream", Scheme: "bogus", Scale: "test"}, // unknown scheme
	} {
		resp, body := postSpec(t, ts.URL+"/v1/run", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d (%s), want 400", spec, resp.StatusCode, body)
		}
	}
}

// TestWorkerDeathMidSweepRetriesOnSurvivor is the ISSUE's core failure
// path: a worker that dies mid-sweep is removed, its cells are retried on
// a surviving worker, and the sweep completes with every cell intact.
func TestWorkerDeathMidSweepRetriesOnSurvivor(t *testing.T) {
	w1 := newTestWorker(t, "w1", 2)
	w2 := newTestWorker(t, "w2", 2)
	// Generous WorkerTimeout: death detection here comes from the dispatch
	// path; tight probe deadlines flake on CPU-saturated test machines.
	c := newTestCoordinator(t, Options{DispatchParallel: 2, WorkerTimeout: 10 * time.Second}, w1, w2)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	// Kill w2 after its first served request: cells already routed to it
	// and every future one must fail over to w1.
	go func() {
		for w2.served.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		w2.kill()
	}()

	sweep := SweepSpec{
		Workloads: []string{"stream", "pointer_chase"},
		Schemes:   []string{"unsafe", "dom"},
		Scale:     "test",
	}
	resp, body := postSpec(t, ts.URL+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sum SweepSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("bad summary: %v", err)
	}
	if len(sum.Cells) != 8 || sum.Errors != 0 {
		for _, cell := range sum.Cells {
			if cell.Error != "" {
				t.Logf("cell %s/%s/ap=%v: %s", cell.Workload, cell.Scheme, cell.AP, cell.Error)
			}
		}
		t.Fatalf("cells=%d errors=%d, want 8 complete cells", len(sum.Cells), sum.Errors)
	}
	for _, cell := range sum.Cells {
		if cell.Result.Cycles == 0 || cell.Result.Checksum == 0 {
			t.Errorf("cell %s/%s/ap=%v empty after failover", cell.Workload, cell.Scheme, cell.AP)
		}
	}

	st := c.Stats()
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" {
		t.Errorf("workers after death = %+v, want only w1", st.Workers)
	}
	if st.WorkerFails == 0 {
		t.Error("worker death not counted as a failure")
	}
}

func TestDuplicateWorkerRegistration(t *testing.T) {
	// A long heartbeat interval keeps the health loop from probing the
	// fake addresses mid-test.
	c := newTestCoordinator(t, Options{HeartbeatInterval: time.Hour})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	reg := func(id, addr string) RegisterResponse {
		resp, body := postSpec(t, ts.URL+"/v1/cluster/register", RegisterRequest{ID: id, Addr: addr})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: status %d: %s", id, resp.StatusCode, body)
		}
		var rr RegisterResponse
		json.Unmarshal(body, &rr)
		return rr
	}
	_ = reg("w1", "http://127.0.0.1:1111")
	rr := reg("w1", "http://127.0.0.1:2222") // restarted worker, same identity
	if rr.Workers != 1 {
		t.Fatalf("duplicate registration inflated worker count to %d", rr.Workers)
	}
	ws := c.workerInfos()
	if len(ws) != 1 || ws[0].Addr != "http://127.0.0.1:2222" {
		t.Fatalf("registry = %+v, want one worker at the newest addr", ws)
	}
	if got := len(c.currentRing().members()); got != 1 {
		t.Fatalf("ring members = %d, want 1", got)
	}

	// Registration sanity: missing fields and non-URL addrs are rejected.
	for _, req := range []RegisterRequest{
		{ID: "", Addr: "http://x"},
		{ID: "w9", Addr: ""},
		{ID: "w9", Addr: "127.0.0.1:80"},
	} {
		resp, _ := postSpec(t, ts.URL+"/v1/cluster/register", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register %+v: status %d, want 400", req, resp.StatusCode)
		}
	}
}

// TestStoreCorruptionRecomputed: a store whose record fails its checksum
// must not poison the cluster — the coordinator logs, recomputes on a
// worker, and overwrites the bad record.
func TestStoreCorruptionRecomputed(t *testing.T) {
	st, path := newTestStore(t)
	w1 := newTestWorker(t, "w1", 2)
	c := newTestCoordinator(t, Options{Store: st, CacheSize: -1}, w1)

	res, source, _, err := c.execute(context.Background(), testSpec)
	if err != nil || source != SourceComputed {
		t.Fatalf("first execute: %v, %s", err, source)
	}
	// Sanity: with the LRU disabled, the second execute hits the store.
	if _, source, _, err = c.execute(context.Background(), testSpec); err != nil || source != SourceStore {
		t.Fatalf("second execute: %v, source %s, want store", err, source)
	}

	corruptStoreValue(t, path)

	res2, source, _, err := c.execute(context.Background(), testSpec)
	if err != nil {
		t.Fatalf("execute over corrupt store: %v", err)
	}
	if source != SourceComputed {
		t.Errorf("source = %s, want computed (corrupt record must not serve)", source)
	}
	if res2.Checksum != res.Checksum {
		t.Error("recomputed result diverges from the original")
	}
	// The rewrite must have healed the store.
	if _, source, _, err = c.execute(context.Background(), testSpec); err != nil || source != SourceStore {
		t.Errorf("post-heal execute: %v, source %s, want store", err, source)
	}
}

func TestRateLimit429WithRetryAfter(t *testing.T) {
	w1 := newTestWorker(t, "w1", 1)
	c := newTestCoordinator(t, Options{RateLimit: 0.001, RateBurst: 2}, w1)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	client := func() (*http.Response, []byte) {
		raw, _ := json.Marshal(testSpec)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(raw))
		req.Header.Set("X-Doppel-Client", "hammer")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	for i := 0; i < 2; i++ {
		if resp, body := client(); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := client()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive number of seconds", ra)
	}
	// A different client is unaffected.
	raw, _ := json.Marshal(testSpec)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(raw))
	req.Header.Set("X-Doppel-Client", "polite")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("independent client got %d", resp2.StatusCode)
	}
}

// TestAdmissionControl429WhenSaturated: with the dispatch queue bound at 1
// and a worker that blocks, a second request is refused with Retry-After.
func TestAdmissionControl429WhenSaturated(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{}, 8)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		blocked <- struct{}{}
		<-release
		writeError(w, http.StatusInternalServerError, "released")
	}))
	t.Cleanup(slow.Close)

	c := newTestCoordinator(t, Options{MaxQueue: 1})
	c.register("slow", slow.URL)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	done := make(chan struct{})
	go func() {
		defer close(done)
		postSpec(t, ts.URL+"/v1/run", testSpec)
	}()
	<-blocked // the first job is admitted and holds the only queue slot

	resp, body := postSpec(t, ts.URL+"/v1/run", JobSpec{Workload: "stream", Scale: "test"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("saturated 429 missing Retry-After")
	}
	close(release) // unblock the admitted job before waiting on it
	<-done
}

func TestStreamingSweepNDJSON(t *testing.T) {
	w1 := newTestWorker(t, "w1", 2)
	c := newTestCoordinator(t, Options{}, w1)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	sweep := SweepSpec{Workloads: []string{"stream"}, Schemes: []string{"unsafe", "dom"}, Scale: "test", Stream: "ndjson"}
	raw, _ := json.Marshal(sweep)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var progress []SweepProgress
	var done *SweepSummary
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line: %v: %s", err, sc.Text())
		}
		switch probe.Type {
		case "progress":
			var p SweepProgress
			json.Unmarshal(sc.Bytes(), &p)
			progress = append(progress, p)
		case "done":
			var s SweepSummary
			json.Unmarshal(sc.Bytes(), &s)
			done = &s
		}
	}
	if len(progress) != 4 {
		t.Fatalf("progress events = %d, want 4", len(progress))
	}
	for i, p := range progress {
		if p.Index != i || p.Total != 4 {
			t.Errorf("event %d out of order: index=%d total=%d", i, p.Index, p.Total)
		}
		if p.Checksum == 0 || p.Cycles == 0 {
			t.Errorf("event %d empty: %+v", i, p)
		}
	}
	if done == nil || len(done.Cells) != 4 || done.Errors != 0 {
		t.Fatalf("missing or incomplete done summary: %+v", done)
	}
	if done.Sources[SourceComputed] != 4 {
		t.Errorf("sources = %v, want 4 computed", done.Sources)
	}
}

func TestStreamingSweepSSE(t *testing.T) {
	w1 := newTestWorker(t, "w1", 2)
	c := newTestCoordinator(t, Options{}, w1)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	sweep := SweepSpec{Workloads: []string{"stream"}, Schemes: []string{"unsafe"}, AP: "off", Scale: "test"}
	raw, _ := json.Marshal(sweep)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(raw))
	req.Header.Set("Accept", "text/event-stream") // transport via Accept, not body
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	if !strings.Contains(out, "event: progress\ndata: ") {
		t.Errorf("no SSE progress frame in:\n%s", out)
	}
	if !strings.Contains(out, "event: done\ndata: ") {
		t.Errorf("no SSE done frame in:\n%s", out)
	}
}

// TestShutdownDrainsStream: an http.Server shutdown while a streaming
// sweep is in flight must let the stream run to its done event rather than
// severing it — the ISSUE's graceful-drain requirement.
func TestShutdownDrainsStream(t *testing.T) {
	w1 := newTestWorker(t, "w1", 2)
	c := newTestCoordinator(t, Options{}, w1)
	hs := httptest.NewServer(c.Handler())
	// Not using t.Cleanup(hs.Close): the test shuts the server down itself.

	sweep := SweepSpec{Workloads: []string{"stream", "pointer_chase"}, Schemes: []string{"unsafe", "dom"}, Scale: "test", Stream: "ndjson"}
	raw, _ := json.Marshal(sweep)
	resp, err := http.Post(hs.URL+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the first progress line so the stream is demonstrably in flight,
	// then shut down while it continues.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("stream produced no first line")
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- hs.Config.Shutdown(ctx)
	}()

	sawDone := false
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		json.Unmarshal(sc.Bytes(), &probe)
		if probe.Type == "done" {
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream severed during shutdown: %v", err)
	}
	if !sawDone {
		t.Fatal("shutdown cut the sweep stream before its done event")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("server shutdown: %v", err)
	}
	c.Close()
	hs.Listener.Close()
}

// TestHealthLoopRemovesSilentWorker: a worker that stops heartbeating and
// fails its probe is removed by the health loop without any dispatch.
func TestHealthLoopRemovesSilentWorker(t *testing.T) {
	w1 := newTestWorker(t, "w1", 1)
	c := newTestCoordinator(t, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		WorkerTimeout:     60 * time.Millisecond,
	}, w1)
	w1.kill() // health probes now abort

	deadline := time.After(5 * time.Second)
	for {
		if len(c.workerInfos()) == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("health loop never removed the dead worker")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if c.Stats().WorkerFails == 0 {
		t.Error("health-loop removal not counted as a failure")
	}
}

// TestHealthProbeRevivesQuietWorker: a worker that misses heartbeats but
// still answers /healthz stays on the ring.
func TestHealthProbeRevivesQuietWorker(t *testing.T) {
	w1 := newTestWorker(t, "w1", 1)
	c := newTestCoordinator(t, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		WorkerTimeout:     40 * time.Millisecond,
	}, w1)
	time.Sleep(200 * time.Millisecond) // several timeouts elapse, probes pass
	if len(c.workerInfos()) != 1 {
		t.Fatal("responsive worker evicted despite passing health probes")
	}
}

func TestAgentRegistersHeartbeatsAndDeregisters(t *testing.T) {
	c := newTestCoordinator(t, Options{HeartbeatInterval: 20 * time.Millisecond})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	agent := &Agent{Coordinator: ts.URL, ID: "w-agent", Addr: "http://127.0.0.1:7777", Logf: t.Logf}
	done := make(chan error, 1)
	go func() { done <- agent.Run(ctx) }()

	// Registration.
	deadline := time.After(5 * time.Second)
	for len(c.workerInfos()) == 0 {
		select {
		case <-deadline:
			t.Fatal("agent never registered")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Heartbeats keep it fresh across several intervals.
	time.Sleep(100 * time.Millisecond)
	ws := c.workerInfos()
	if len(ws) != 1 || ws[0].LastSeenMS > 80 {
		t.Fatalf("heartbeats not refreshing liveness: %+v", ws)
	}

	// Cancellation deregisters before Run returns.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("agent run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not exit on cancellation")
	}
	if n := len(c.workerInfos()); n != 0 {
		t.Fatalf("workers after deregister = %d, want 0", n)
	}
}

// TestAgentReregistersAfterCoordinatorAmnesia: heartbeats answered 404
// (coordinator restarted, lost its view) push the agent to re-register.
func TestAgentReregistersAfterCoordinatorAmnesia(t *testing.T) {
	c := newTestCoordinator(t, Options{HeartbeatInterval: 20 * time.Millisecond})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agent := &Agent{Coordinator: ts.URL, ID: "w-agent", Addr: "http://127.0.0.1:7777"}
	go agent.Run(ctx)

	deadline := time.After(5 * time.Second)
	for len(c.workerInfos()) == 0 {
		select {
		case <-deadline:
			t.Fatal("agent never registered")
		case <-time.After(5 * time.Millisecond):
		}
	}
	c.remove("w-agent", "simulated coordinator amnesia")
	for len(c.workerInfos()) == 0 {
		select {
		case <-deadline:
			t.Fatal("agent never re-registered after amnesia")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestClusterMetricsExposed(t *testing.T) {
	met := newTestMetrics()
	w1 := newTestWorker(t, "w1", 2)
	c := newTestCoordinator(t, Options{Metrics: met}, w1)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	if resp, body := postSpec(t, ts.URL+"/v1/run", testSpec); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	for _, family := range []string{
		"cluster_workers_live 1",
		`cluster_jobs_routed_total{worker="w1"} 1`,
		`cluster_result_source_total{source="computed"} 1`,
		"cluster_job_duration_ms",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("/metrics missing %q in:\n%s", family, firstLines(out, 60))
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestWorkerKeyMismatchIsConflict(t *testing.T) {
	w1 := newTestWorker(t, "w1", 1)
	raw, _ := json.Marshal(ExecuteRequest{Spec: testSpec, Key: strings.Repeat("0", 64)})
	resp, err := http.Post(w1.ts.URL+"/internal/v1/execute", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409 on key mismatch", resp.StatusCode)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e.Error, "mismatch") {
		t.Errorf("error = %q", e.Error)
	}
}

func TestHealthzAndWorkersEndpoints(t *testing.T) {
	w1 := newTestWorker(t, "w1", 1)
	c := newTestCoordinator(t, Options{}, w1)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Workers int    `json:"workers"`
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if hz.Status != "ok" || hz.Role != "coordinator" || hz.Workers != 1 {
		t.Errorf("healthz = %+v", hz)
	}

	resp, err = http.Get(ts.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	var ws struct {
		Workers []WorkerInfo `json:"workers"`
	}
	json.NewDecoder(resp.Body).Decode(&ws)
	resp.Body.Close()
	if len(ws.Workers) != 1 || ws.Workers[0].ID != "w1" {
		t.Errorf("workers = %+v", ws.Workers)
	}
}
