package cluster

import (
	"testing"
	"time"
)

// fakeClock steps time manually for deterministic limiter tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time                    { return f.t }
func (f *fakeClock) advance(d time.Duration) time.Time { f.t = f.t.Add(d); return f.t }

func newTestLimiter(rate float64, burst int) (*limiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(rate, burst)
	l.now = clk.now
	return l, clk
}

func TestLimiterBurstThenRefuse(t *testing.T) {
	l, _ := newTestLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := l.take("alice"); !ok {
			t.Fatalf("take %d refused within burst", i)
		}
	}
	ok, retry := l.take("alice")
	if ok {
		t.Fatal("4th take within burst succeeded")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want (0, 1s]", retry)
	}
}

func TestLimiterRefills(t *testing.T) {
	l, clk := newTestLimiter(2, 2) // 2 tokens/s
	l.take("bob")
	l.take("bob")
	if ok, _ := l.take("bob"); ok {
		t.Fatal("empty bucket granted a token")
	}
	clk.advance(500 * time.Millisecond) // refills one token at 2/s
	if ok, _ := l.take("bob"); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := l.take("bob"); ok {
		t.Fatal("second token granted after refilling only one")
	}
}

func TestLimiterClientsIndependent(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	if ok, _ := l.take("a"); !ok {
		t.Fatal("client a refused its burst")
	}
	if ok, _ := l.take("b"); !ok {
		t.Fatal("client b throttled by client a's bucket")
	}
	if l.clients() != 2 {
		t.Errorf("clients = %d, want 2", l.clients())
	}
}

func TestLimiterDisabled(t *testing.T) {
	l, _ := newTestLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if ok, _ := l.take("anyone"); !ok {
			t.Fatal("disabled limiter refused")
		}
	}
	if l.clients() != 0 {
		t.Error("disabled limiter tracked clients")
	}
}

func TestLimiterEvictsIdleClients(t *testing.T) {
	l, clk := newTestLimiter(10, 10)
	l.take("old")
	clk.advance(6 * time.Minute) // past the idle TTL
	l.take("fresh")              // triggers the sweep
	if l.clients() != 1 {
		t.Errorf("clients = %d after idle sweep, want 1 (only \"fresh\")", l.clients())
	}
}
