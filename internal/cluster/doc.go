// Package cluster turns doppeld into a horizontally sharded fleet. A
// coordinator process owns the cluster view: workers register with it and
// heartbeat; jobs are consistent-hashed across the live workers using the
// engine's canonical SHA-256 cache keys as the sharding function, so a
// given cell always lands on the same worker (maximizing each worker's
// local LRU hit rate) and membership changes move only the minimal key
// range. The coordinator fronts every computation with a two-level result
// tier — an in-memory LRU over a checksum-verified persistent store
// (internal/cluster/store) — so a restarted cluster replays no work.
//
// Topology:
//
//	client ──HTTP──▶ coordinator ──/internal/v1/execute──▶ worker 1..N
//	                  │  memory LRU                          (engine pool,
//	                  └─ persistent store (results.db)        local LRU)
//
// The coordinator's public surface mirrors single-node doppeld (/v1/run,
// /v1/sweep, /healthz, /stats, /metrics) and adds the cluster control plane
// (/v1/cluster/register, /heartbeat, /deregister, /workers). /v1/sweep can
// stream per-cell progress as Server-Sent Events or NDJSON. Admission
// control rejects work beyond the queue bound, and per-client token
// buckets rate-limit request ingress; both answer 429 with Retry-After.
//
// Failure model: a worker that dies mid-sweep is detected either by its
// dispatch failing or by missed heartbeats; its jobs are retried on the
// ring's next live owner and the ring is rebuilt without it (re-sharding
// only its share of the key space). Results are deterministic, so a retry
// on any worker yields the identical architecture checksum.
package cluster
