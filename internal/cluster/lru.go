package cluster

import (
	"container/list"
	"sync"

	"doppelganger/sim"
)

// resultLRU is the coordinator's memory tier in front of the persistent
// store: a bounded least-recently-used map from engine cache keys to
// results. Capacity <= 0 disables it.
type resultLRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res sim.Result
}

func newResultLRU(capacity int) *resultLRU {
	return &resultLRU{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *resultLRU) get(key string) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return sim.Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *resultLRU) put(key string, res sim.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *resultLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
