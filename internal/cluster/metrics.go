package cluster

import "doppelganger/internal/obs"

// clusterMetrics caches the coordinator's registry handles. All families
// are purely observational; nil (no registry) disables them.
type clusterMetrics struct {
	reg          *obs.Metrics
	workersLive  *obs.Gauge
	registered   *obs.Counter
	failures     *obs.Counter
	retries      *obs.Counter
	rateLimited  *obs.Counter
	saturated    *obs.Counter
	memHits      *obs.Counter
	storeHits    *obs.Counter
	computed     *obs.Counter
	jobLatency   *obs.Histogram
	sweepLatency *obs.Histogram
}

// Cluster latency bucket edges, milliseconds. Jobs span cache hits
// (sub-ms) to full-scale cells (tens of seconds); sweeps go longer.
var (
	clusterJobBuckets   = []uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
	clusterSweepBuckets = []uint64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000, 300000}
)

func newClusterMetrics(m *obs.Metrics) *clusterMetrics {
	if m == nil {
		return nil
	}
	return &clusterMetrics{
		reg:          m,
		workersLive:  m.Gauge("cluster_workers_live", "Workers currently on the ring."),
		registered:   m.Counter("cluster_worker_registrations_total", "Worker registrations accepted (including re-registrations)."),
		failures:     m.Counter("cluster_worker_failures_total", "Workers removed for failed dispatches, missed heartbeats, or failed probes."),
		retries:      m.Counter("cluster_job_retries_total", "Jobs re-dispatched to another worker after a worker failure."),
		rateLimited:  m.Counter("cluster_rate_limited_total", "Requests refused 429 by per-client token buckets."),
		saturated:    m.Counter("cluster_admission_rejected_total", "Requests refused 429 because the dispatch queue was saturated."),
		memHits:      m.Counter("cluster_result_source_total", "Results by tier.", obs.L("source", "memory")),
		storeHits:    m.Counter("cluster_result_source_total", "Results by tier.", obs.L("source", "store")),
		computed:     m.Counter("cluster_result_source_total", "Results by tier.", obs.L("source", "computed")),
		jobLatency:   m.Histogram("cluster_job_duration_ms", "End-to-end per-job latency at the coordinator in milliseconds.", clusterJobBuckets),
		sweepLatency: m.Histogram("cluster_sweep_duration_ms", "End-to-end sweep latency in milliseconds.", clusterSweepBuckets),
	}
}

// routed returns the per-worker dispatch counter (labeled series).
func (m *clusterMetrics) routedTo(worker string) *obs.Counter {
	return m.reg.Counter("cluster_jobs_routed_total", "Jobs dispatched per worker.", obs.L("worker", worker))
}
