// Package checkpoint implements serializable, versioned, checksum-verified
// snapshots of complete simulation state. A checkpoint captures everything
// a quiescent core carries forward — architectural registers and memory,
// the cache hierarchy with MSHRs and LRU state, and every predictor table —
// plus the program image it was warmed on, so a checkpoint file is
// self-contained: it can be restored standalone, shipped to a cluster
// worker, or forked into every scheme × address-prediction variant of the
// evaluation matrix without replaying warmup.
//
// The on-disk format (see file.go) follows internal/cluster/store's
// discipline: a magic number, an explicit format version that is checked
// before anything else, and a CRC per section so corruption is refused
// with a clear error instead of deserialized into a subtly wrong core.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"doppelganger/internal/isa"
	"doppelganger/internal/pipeline"
	"doppelganger/internal/program"
)

// Meta describes how a checkpoint was produced and embeds the program it
// is a checkpoint *of*. Compatibility checks compare the embedded code and
// entry point only — not initial registers or memory, which the captured
// state supersedes (two programs differing only in initial memory, e.g.
// leakcheck's secret variants, each get their own checkpoint).
type Meta struct {
	// ProgramName, ProgramEntry and Code identify and embed the program.
	ProgramName  string            `json:"program_name"`
	ProgramEntry uint64            `json:"program_entry"`
	Code         []isa.Instruction `json:"code"`

	// WarmScheme and WarmAP record the configuration the warmup ran under;
	// WarmupInsts is the commit count the snapshot was requested at (the
	// drain may commit a few more). These are provenance, not identity:
	// the digest covers them, so checkpoints warmed differently never
	// collide, but restore does not constrain them.
	WarmScheme  string `json:"warm_scheme"`
	WarmAP      bool   `json:"warm_ap,omitempty"`
	WarmupInsts uint64 `json:"warmup_insts"`

	// WarmConfig is the full core configuration of the warming run.
	// Restore-time structural checks happen component-by-component against
	// the captured tables; this is recorded so a checkpoint file is
	// self-describing.
	WarmConfig pipeline.Config `json:"warm_config"`
}

// Checkpoint is an immutable captured simulation state. Build one with New
// (from a live capture) or Decode/ReadFile (from an encoding); the
// canonical encoding and its digest are computed once at construction, so
// Digest is safe to call concurrently (the engine hashes it into cache
// keys from many workers).
type Checkpoint struct {
	meta   Meta
	state  *pipeline.CoreState
	enc    []byte
	digest string
}

// New builds a checkpoint from a captured core state, computing the
// canonical encoding and digest eagerly.
func New(meta Meta, st *pipeline.CoreState) (*Checkpoint, error) {
	if st == nil {
		return nil, fmt.Errorf("checkpoint: nil core state")
	}
	if len(meta.Code) == 0 {
		return nil, fmt.Errorf("checkpoint: meta embeds no program code")
	}
	c := &Checkpoint{meta: meta, state: st}
	enc, err := encode(c)
	if err != nil {
		return nil, err
	}
	c.enc = enc
	c.digest = digestOf(enc)
	return c, nil
}

// digestOf computes the SHA-256 hex digest of an encoding.
func digestOf(enc []byte) string {
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

// Meta returns the checkpoint's provenance metadata.
func (c *Checkpoint) Meta() Meta { return c.meta }

// State returns the captured core state. Callers must treat it as
// read-only; it is shared by every restore of this checkpoint.
func (c *Checkpoint) State() *pipeline.CoreState { return c.state }

// Digest returns the SHA-256 hex digest of the canonical encoding. It is
// the checkpoint's identity: engine cache keys, cluster references, and
// the -checkpoint-in cross-check all use it.
func (c *Checkpoint) Digest() string { return c.digest }

// Encode returns the canonical encoding. The slice is shared and must not
// be modified.
func (c *Checkpoint) Encode() []byte { return c.enc }

// Program reconstructs the embedded program image. Initial registers and
// memory are zero: the captured state supersedes them, and a restored run
// never consults them.
func (c *Checkpoint) Program() *program.Program {
	return &program.Program{
		Name:  c.meta.ProgramName,
		Entry: c.meta.ProgramEntry,
		Code:  append([]isa.Instruction(nil), c.meta.Code...),
	}
}

// CompatibleWith reports whether the checkpoint can seed a run of the
// given program: identical code and entry point. Initial register and
// memory images are deliberately not compared — the checkpointed state
// replaces them.
func (c *Checkpoint) CompatibleWith(p *program.Program) error {
	if p == nil {
		return fmt.Errorf("checkpoint: nil program")
	}
	if p.Entry != c.meta.ProgramEntry {
		return fmt.Errorf("checkpoint %q was taken at entry %d, program %q enters at %d",
			c.meta.ProgramName, c.meta.ProgramEntry, p.Name, p.Entry)
	}
	if len(p.Code) != len(c.meta.Code) {
		return fmt.Errorf("checkpoint %q embeds %d instructions, program %q has %d",
			c.meta.ProgramName, len(c.meta.Code), p.Name, len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != c.meta.Code[i] {
			return fmt.Errorf("checkpoint %q diverges from program %q at instruction %d",
				c.meta.ProgramName, p.Name, i)
		}
	}
	return nil
}

// Equal reports whether two checkpoints have identical canonical
// encodings (and therefore identical digests).
func (c *Checkpoint) Equal(o *Checkpoint) bool {
	return c != nil && o != nil && bytes.Equal(c.enc, o.enc)
}
