package checkpoint

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"doppelganger/internal/isa"
	"doppelganger/internal/pipeline"
)

// goldenMeta and goldenState build a checkpoint with fully pinned contents.
// They are hand-built literals, not captures from a simulation: a capture's
// digest would shift with every timing change in the core, but this test
// must only fail when the *encoding* changes.
func goldenMeta() Meta {
	return Meta{
		ProgramName:  "golden",
		ProgramEntry: 1,
		Code: []isa.Instruction{
			{Op: isa.Nop},
			{Op: isa.LoadI, Dst: 1, Imm: 64},
			{Op: isa.Load, Dst: 2, Src1: 1, Imm: 8},
		},
		WarmScheme:  "unsafe",
		WarmupInsts: 40,
	}
}

func goldenState() *pipeline.CoreState {
	st := &pipeline.CoreState{
		Cycle:         123,
		SeqCtr:        45,
		FetchPC:       2,
		FetchHist:     0xbeef,
		CommittedPC:   []uint64{14, 13, 13},
		ShadowsOpened: 6,
		ShadowsPeak:   2,
		TaintedWrites: 9,
	}
	st.Regs[1] = 64
	st.Regs[2] = -5
	st.TaintRoots[2] = 7
	page := pipeline.MemPageState{Key: 0}
	page.Words[8] = -5
	page.Present[0] = 1 << 8
	st.Mem = []pipeline.MemPageState{page}
	st.Stats.Cycles = 123
	st.Stats.Committed = 40
	st.Stats.CommittedLoads = 11
	return st
}

func goldenCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	ck, err := New(goldenMeta(), goldenState())
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestEncodingGolden pins the checkpoint file encoding to an exact digest.
// The digest is the checkpoint's identity everywhere — engine cache keys,
// doppeld references, the -checkpoint-in cross-check — so an unintentional
// encoding change must fail loudly here. If you change the encoding ON
// PURPOSE, update the digest AND bump Version: old checkpoint files no
// longer decode to the same simulations.
func TestEncodingGolden(t *testing.T) {
	const want = "9255e371dd8bdeaef95b1d19bc0d98b704c01a7b05c1fd90dd7116b7933c2da9"
	ck := goldenCheckpoint(t)
	if got := ck.Digest(); got != want {
		t.Errorf("golden checkpoint digest:\n  got  %s\n  want %s\n(encoding changed — see test comment before updating)", got, want)
	}
	if ck.Digest() != digestOf(ck.Encode()) {
		t.Error("Digest() does not match the digest of Encode()")
	}
}

// TestEncodingSensitivity checks that every captured field perturbs the
// digest — a field the encoding silently drops would let two different
// simulation states share an identity.
func TestEncodingSensitivity(t *testing.T) {
	base := goldenCheckpoint(t).Digest()

	stateMut := map[string]func(*pipeline.CoreState){
		"cycle":       func(st *pipeline.CoreState) { st.Cycle++ },
		"seq_ctr":     func(st *pipeline.CoreState) { st.SeqCtr++ },
		"halted":      func(st *pipeline.CoreState) { st.Halted = true },
		"fetch_pc":    func(st *pipeline.CoreState) { st.FetchPC++ },
		"fetch_hist":  func(st *pipeline.CoreState) { st.FetchHist ^= 1 },
		"reg":         func(st *pipeline.CoreState) { st.Regs[1]++ },
		"taint_root":  func(st *pipeline.CoreState) { st.TaintRoots[2]++ },
		"mem_word":    func(st *pipeline.CoreState) { st.Mem[0].Words[8]++ },
		"mem_present": func(st *pipeline.CoreState) { st.Mem[0].Present[0] |= 2 },
		"mem_key":     func(st *pipeline.CoreState) { st.Mem[0].Key += 4096 },
		"committed":   func(st *pipeline.CoreState) { st.CommittedPC[0]++ },
		"stats":       func(st *pipeline.CoreState) { st.Stats.CommittedLoads++ },
		"shadows":     func(st *pipeline.CoreState) { st.ShadowsOpened++ },
		"taint_count": func(st *pipeline.CoreState) { st.TaintedWrites++ },
	}
	for field, mutate := range stateMut {
		st := goldenState()
		mutate(st)
		ck, err := New(goldenMeta(), st)
		if err != nil {
			t.Fatalf("%s: %v", field, err)
		}
		if ck.Digest() == base {
			t.Errorf("perturbing state field %s did not change the digest", field)
		}
	}

	metaMut := map[string]func(*Meta){
		"program_name": func(m *Meta) { m.ProgramName = "golden2" },
		"entry":        func(m *Meta) { m.ProgramEntry = 0 },
		"code":         func(m *Meta) { m.Code[1].Imm = 65 },
		"warm_scheme":  func(m *Meta) { m.WarmScheme = "dom" },
		"warm_ap":      func(m *Meta) { m.WarmAP = true },
		"warmup_insts": func(m *Meta) { m.WarmupInsts = 41 },
	}
	for field, mutate := range metaMut {
		m := goldenMeta()
		mutate(&m)
		ck, err := New(m, goldenState())
		if err != nil {
			t.Fatalf("%s: %v", field, err)
		}
		if ck.Digest() == base {
			t.Errorf("perturbing meta field %s did not change the digest", field)
		}
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	ck := goldenCheckpoint(t)
	dec, err := Decode(ck.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Digest() != ck.Digest() {
		t.Errorf("digest changed across decode: %s vs %s", dec.Digest(), ck.Digest())
	}
	if !dec.Equal(ck) {
		t.Error("decoded checkpoint not Equal to the original")
	}
	if dec.Meta().ProgramName != "golden" || dec.State().Cycle != 123 {
		t.Errorf("decoded contents wrong: meta %+v, cycle %d", dec.Meta(), dec.State().Cycle)
	}
}

func TestFileRoundTrip(t *testing.T) {
	ck := goldenCheckpoint(t)
	path := filepath.Join(t.TempDir(), "golden.ckpt")
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != ck.Digest() {
		t.Errorf("digest changed across file round-trip: %s vs %s", got.Digest(), ck.Digest())
	}
}

// TestDecodeRejections is the refusal matrix: every way a checkpoint file
// can be wrong maps to the right sentinel error and never to a silently
// mis-restored core.
func TestDecodeRejections(t *testing.T) {
	good := goldenCheckpoint(t).Encode()
	clone := func() []byte { return append([]byte(nil), good...) }

	t.Run("bad magic", func(t *testing.T) {
		b := clone()
		copy(b, "NOPE")
		if _, err := Decode(b); !errors.Is(err, ErrNotCheckpoint) {
			t.Errorf("err = %v, want ErrNotCheckpoint", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); !errors.Is(err, ErrNotCheckpoint) {
			t.Errorf("err = %v, want ErrNotCheckpoint", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := clone()
		binary.LittleEndian.PutUint32(b[4:], Version+1)
		_, err := Decode(b)
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
		// The error must tell the operator both versions.
		if got := err.Error(); !strings.Contains(got, "version") {
			t.Errorf("unhelpful version error: %q", got)
		}
	})
	t.Run("implausible section count", func(t *testing.T) {
		b := clone()
		binary.LittleEndian.PutUint32(b[8:], maxSections+1)
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		b := clone()
		b[len(b)/2] ^= 0x40
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{13, len(good) / 2, len(good) - 1} {
			if _, err := Decode(good[:cut]); !errors.Is(err, ErrCorrupt) {
				t.Errorf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		b := append(clone(), 0)
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing core section", func(t *testing.T) {
		// Hand-craft a file holding only the meta section.
		ck := goldenCheckpoint(t)
		only := &Checkpoint{meta: ck.meta, state: ck.state}
		full, err := encode(only)
		if err != nil {
			t.Fatal(err)
		}
		// Re-encode with the section count dropped to 1 and the core
		// section's bytes removed: the meta section ends where the core
		// section's name length begins.
		metaEnd := 12 + 4 + len(sectionMeta) + 8 + metaPayloadLen(t, full) + 4
		b := append([]byte(nil), full[:metaEnd]...)
		binary.LittleEndian.PutUint32(b[8:], 1)
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
}

// metaPayloadLen reads the meta section's payload length out of an encoding.
func metaPayloadLen(t *testing.T, enc []byte) int {
	t.Helper()
	off := 12
	nameLen := int(binary.LittleEndian.Uint32(enc[off:]))
	off += 4 + nameLen
	return int(binary.LittleEndian.Uint64(enc[off:]))
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(goldenMeta(), nil); err == nil {
		t.Error("nil state accepted")
	}
	m := goldenMeta()
	m.Code = nil
	if _, err := New(m, goldenState()); err == nil {
		t.Error("empty code accepted")
	}
}
