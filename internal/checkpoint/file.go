package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"doppelganger/internal/pipeline"
)

// On-disk / wire layout (all integers little-endian):
//
//	[4]byte  magic "DGCK"
//	uint32   format version
//	uint32   section count
//	repeated per section:
//	    uint32  name length
//	    []byte  name
//	    uint64  payload length
//	    []byte  payload
//	    uint32  CRC-32 (IEEE) of payload
//
// Sections are JSON payloads, written in a fixed order ("meta", "core")
// so the encoding — and therefore the digest — is canonical. Readers
// locate sections by name, so a future version can append sections
// without disturbing old ones; any change to existing payload schemas
// must bump Version (the golden test pins the encoding to force this).

// Magic identifies a checkpoint file.
const Magic = "DGCK"

// Version is the checkpoint format version. Bump it on any encoding
// change; readers refuse other versions with a clear error.
const Version = 1

const (
	sectionMeta = "meta"
	sectionCore = "core"

	maxSections    = 64
	maxNameLen     = 256
	maxPayloadSize = 1 << 31 // 2 GiB; a real checkpoint is a few MiB
)

// ErrNotCheckpoint marks data that does not start with the checkpoint
// magic number.
var ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint (bad magic)")

// ErrVersion marks a checkpoint written by a different format version.
var ErrVersion = errors.New("checkpoint: format version mismatch")

// ErrCorrupt marks a structurally damaged checkpoint (truncation, bad
// section CRC, malformed payload).
var ErrCorrupt = errors.New("checkpoint: corrupt")

func encode(c *Checkpoint) ([]byte, error) {
	metaJSON, err := json.Marshal(c.meta)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding meta: %w", err)
	}
	coreJSON, err := json.Marshal(c.state)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding core state: %w", err)
	}
	sections := []struct {
		name    string
		payload []byte
	}{
		{sectionMeta, metaJSON},
		{sectionCore, coreJSON},
	}
	size := 4 + 4 + 4
	for _, s := range sections {
		size += 4 + len(s.name) + 8 + len(s.payload) + 4
	}
	buf := make([]byte, 0, size)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))
	for _, s := range sections {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.name)))
		buf = append(buf, s.name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.payload)))
		buf = append(buf, s.payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(s.payload))
	}
	return buf, nil
}

// Decode parses and verifies an encoded checkpoint: magic, format
// version, section CRCs, and the presence and validity of the required
// sections. The returned checkpoint's digest is computed over the exact
// input bytes, so Decode(Encode()) round-trips the identity.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < 12 || string(data[:4]) != Magic {
		return nil, ErrNotCheckpoint
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != Version {
		return nil, fmt.Errorf("%w: file is format version %d, this build reads version %d",
			ErrVersion, version, Version)
	}
	nSections := binary.LittleEndian.Uint32(data[8:12])
	if nSections > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, nSections)
	}
	payloads := make(map[string][]byte, nSections)
	off := 12
	for i := uint32(0); i < nSections; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated at section %d name length", ErrCorrupt, i)
		}
		nameLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if nameLen > maxNameLen || off+nameLen > len(data) {
			return nil, fmt.Errorf("%w: truncated at section %d name", ErrCorrupt, i)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		if off+8 > len(data) {
			return nil, fmt.Errorf("%w: truncated at section %q payload length", ErrCorrupt, name)
		}
		payloadLen := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if payloadLen > maxPayloadSize || off+int(payloadLen)+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated at section %q payload", ErrCorrupt, name)
		}
		payload := data[off : off+int(payloadLen)]
		off += int(payloadLen)
		sum := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("%w: section %q checksum mismatch (stored %08x, computed %08x)",
				ErrCorrupt, name, sum, got)
		}
		payloads[name] = payload
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(data)-off)
	}
	metaJSON, ok := payloads[sectionMeta]
	if !ok {
		return nil, fmt.Errorf("%w: missing %q section", ErrCorrupt, sectionMeta)
	}
	coreJSON, ok := payloads[sectionCore]
	if !ok {
		return nil, fmt.Errorf("%w: missing %q section", ErrCorrupt, sectionCore)
	}
	c := &Checkpoint{state: new(pipeline.CoreState)}
	if err := json.Unmarshal(metaJSON, &c.meta); err != nil {
		return nil, fmt.Errorf("%w: bad meta section: %v", ErrCorrupt, err)
	}
	if err := json.Unmarshal(coreJSON, c.state); err != nil {
		return nil, fmt.Errorf("%w: bad core section: %v", ErrCorrupt, err)
	}
	if len(c.meta.Code) == 0 {
		return nil, fmt.Errorf("%w: meta embeds no program code", ErrCorrupt)
	}
	c.enc = append([]byte(nil), data...)
	c.digest = digestOf(c.enc)
	return c, nil
}

// WriteFile writes the canonical encoding to path (0644), replacing any
// existing file.
func (c *Checkpoint) WriteFile(path string) error {
	if err := os.WriteFile(path, c.enc, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFile reads and verifies a checkpoint file.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	c, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}
