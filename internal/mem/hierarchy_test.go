package mem

import "testing"

func tinyHierarchy() *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		L1D:        CacheConfig{SizeBytes: 1 << 10, Ways: 2, Latency: 5},
		L2:         CacheConfig{SizeBytes: 8 << 10, Ways: 4, Latency: 15},
		L3:         CacheConfig{SizeBytes: 64 << 10, Ways: 4, Latency: 40},
		MemLatency: 54,
		L1MSHRs:    2,
	})
}

func TestHierarchyMissLatencyLadder(t *testing.T) {
	h := tinyHierarchy()
	// Cold access: full DRAM round trip.
	res := h.Access(0, 0x10000, ClassDemand, AccessOptions{})
	if res.Latency != 5+15+40+54 {
		t.Errorf("cold miss latency = %d, want 114", res.Latency)
	}
	if res.Level != LevelMem {
		t.Errorf("cold miss level = %v, want mem", res.Level)
	}
	if h.DRAMAccesses != 1 {
		t.Errorf("DRAM accesses = %d, want 1", h.DRAMAccesses)
	}
	// After the fill completes, it hits in L1.
	res = h.Access(200, 0x10000, ClassDemand, AccessOptions{})
	if res.Level != LevelL1 || res.Latency != 5 {
		t.Errorf("post-fill access = %+v, want L1/5", res)
	}
	// Evict it from L1 by filling the set; then it should hit L2.
	// L1: 8 sets, 2 ways; same set = +8*64 strides.
	h.Access(300, 0x10000+8*64, ClassDemand, AccessOptions{NoMSHR: true})
	h.Access(500, 0x10000+16*64, ClassDemand, AccessOptions{NoMSHR: true})
	res = h.Access(700, 0x10000, ClassDemand, AccessOptions{})
	if res.Level != LevelL2 || res.Latency != 5+15 {
		t.Errorf("L2 hit = %+v, want L2/20", res)
	}
}

func TestHierarchyMSHRMergeAndLimit(t *testing.T) {
	h := tinyHierarchy()
	r1 := h.Access(0, 0x20000, ClassDemand, AccessOptions{})
	if r1.Rejected || r1.Merged {
		t.Fatalf("first miss: %+v", r1)
	}
	// Same line while in flight: merged, with remaining latency.
	r2 := h.Access(10, 0x20008, ClassDemand, AccessOptions{})
	if !r2.Merged {
		t.Fatalf("same-line access should merge: %+v", r2)
	}
	if want := r1.Latency - 10; r2.Latency != want {
		t.Errorf("merged latency = %d, want remaining %d", r2.Latency, want)
	}
	// A second distinct miss takes the last MSHR.
	if r := h.Access(11, 0x30000, ClassDemand, AccessOptions{}); r.Rejected {
		t.Fatalf("second miss should be accepted: %+v", r)
	}
	// Third distinct miss: rejected (2 MSHRs).
	if r := h.Access(12, 0x40000, ClassDemand, AccessOptions{}); !r.Rejected {
		t.Fatalf("third miss should be rejected: %+v", r)
	}
	if h.RejectedMSHR != 1 {
		t.Errorf("RejectedMSHR = %d, want 1", h.RejectedMSHR)
	}
	// Rejection must leave no trace in the access statistics.
	if got := h.L1D.Accesses[ClassDemand]; got != 3 {
		t.Errorf("L1 accesses = %d, want 3 (rejection uncounted)", got)
	}
	// After the fills complete the MSHRs free up.
	if n := h.OutstandingMisses(1000); n != 0 {
		t.Errorf("outstanding misses = %d, want 0", n)
	}
	if r := h.Access(1000, 0x40000, ClassDemand, AccessOptions{}); r.Rejected {
		t.Error("miss after MSHRs freed should be accepted")
	}
}

func TestHierarchyDoMSpeculativeProbe(t *testing.T) {
	h := tinyHierarchy()
	// Speculative miss: nothing anywhere changes.
	res := h.Access(0, 0x50000, ClassDemand, AccessOptions{DoMSpeculative: true})
	if !res.DelayedMiss {
		t.Fatalf("probe of absent line should be a delayed miss: %+v", res)
	}
	if h.L1D.TotalAccesses() != 0 || h.L2.TotalAccesses() != 0 || h.DRAMAccesses != 0 {
		t.Error("delayed miss must not touch any level")
	}
	if h.L1D.Present(0x50000) {
		t.Error("delayed miss must not allocate")
	}
	// Fill it normally, then probe again: hit without recency update.
	h.Access(0, 0x50000, ClassDemand, AccessOptions{})
	res = h.Access(500, 0x50000, ClassDemand, AccessOptions{DoMSpeculative: true})
	if res.DelayedMiss || res.Level != LevelL1 {
		t.Errorf("probe of resident line = %+v, want L1 hit", res)
	}
	// A probe of a line whose fill is still in flight is a delayed miss.
	h.Access(600, 0x60000, ClassDemand, AccessOptions{})
	res = h.Access(605, 0x60000, ClassDemand, AccessOptions{DoMSpeculative: true})
	if !res.DelayedMiss {
		t.Errorf("probe during fill = %+v, want delayed miss", res)
	}
}

func TestHierarchyPrefetchSemantics(t *testing.T) {
	h := tinyHierarchy()
	// Prefetch of an absent line is performed and tracked mergeably.
	res := h.Access(0, 0x70000, ClassPrefetch, AccessOptions{Prefetch: true})
	if res.Rejected {
		t.Fatalf("prefetch rejected: %+v", res)
	}
	// Demand access during the prefetch fill merges.
	res = h.Access(50, 0x70000, ClassDemand, AccessOptions{})
	if !res.Merged {
		t.Errorf("demand during prefetch fill = %+v, want merged", res)
	}
	// Prefetch of a resident or in-flight line is dropped.
	res = h.Access(60, 0x70000, ClassPrefetch, AccessOptions{Prefetch: true})
	if !res.Rejected {
		t.Errorf("redundant prefetch = %+v, want dropped", res)
	}
	// Prefetches do not consume the demand MSHR budget.
	h2 := tinyHierarchy()
	h2.Access(0, 0x1000, ClassPrefetch, AccessOptions{Prefetch: true})
	h2.Access(0, 0x2000, ClassPrefetch, AccessOptions{Prefetch: true})
	h2.Access(0, 0x3000, ClassPrefetch, AccessOptions{Prefetch: true})
	if r := h2.Access(1, 0x4000, ClassDemand, AccessOptions{}); r.Rejected {
		t.Error("demand miss rejected although only prefetches are outstanding")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, 0x1000, ClassDemand, AccessOptions{})
	if !h.Invalidate(0x1000) {
		t.Error("invalidate of cached line should report true")
	}
	if h.PresentL1(0x1000) {
		t.Error("line still in L1 after invalidate")
	}
	res := h.Access(2000, 0x1000, ClassDemand, AccessOptions{})
	if res.Level != LevelMem {
		t.Errorf("re-access after invalidate hit %v, want mem", res.Level)
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, 0x1000, ClassDemand, AccessOptions{})
	if !h.L1D.Present(0x1000) || !h.L2.Present(0x1000) || !h.L3.Present(0x1000) {
		t.Error("DRAM fill must populate all levels")
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, 0x1000, ClassDemand, AccessOptions{})
	h.ResetStats()
	if h.L1D.TotalAccesses() != 0 || h.DRAMAccesses != 0 || h.RejectedMSHR != 0 {
		t.Error("ResetStats left counters")
	}
	if !h.L1D.Present(0x1000) {
		t.Error("ResetStats must not disturb contents")
	}
}

func TestHierarchyConfigValidate(t *testing.T) {
	bad := tinyHierarchy().Config()
	bad.L1MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MSHRs should not validate")
	}
	bad2 := tinyHierarchy().Config()
	bad2.L2.Ways = 0
	if err := bad2.Validate(); err == nil {
		t.Error("bad L2 should not validate")
	}
}

func TestClassAndLevelStrings(t *testing.T) {
	if ClassDemand.String() != "demand" || ClassDoppelganger.String() != "doppelganger" ||
		ClassPrefetch.String() != "prefetch" || ClassWriteback.String() != "writeback" {
		t.Error("class names wrong")
	}
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" ||
		LevelL3.String() != "L3" || LevelMem.String() != "mem" {
		t.Error("level names wrong")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 64 || LineAddr(0x12345) != 0x12340 {
		t.Error("LineAddr wrong")
	}
}

func TestWritebackTraffic(t *testing.T) {
	h := tinyHierarchy()
	// Dirty a line in the L1 via a store access.
	h.Access(0, 0x1000, ClassWriteback, AccessOptions{NoMSHR: true, Write: true})
	// L1: 8 sets, 2 ways. Evict 0x1000's set with two more same-set lines.
	same := func(k uint64) uint64 { return 0x1000 + k*8*64 }
	h.Access(500, same(1), ClassDemand, AccessOptions{NoMSHR: true})
	h.Access(1000, same(2), ClassDemand, AccessOptions{NoMSHR: true})
	if h.Writebacks[0] == 0 {
		t.Error("dirty L1 eviction did not produce a writeback")
	}
	// The dirty line must now be dirty in the L2 (written back, not lost).
	if !h.L2.Present(0x1000) {
		t.Error("written-back line absent from L2")
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, 0x1000, ClassDemand, AccessOptions{NoMSHR: true}) // clean
	same := func(k uint64) uint64 { return 0x1000 + k*8*64 }
	h.Access(500, same(1), ClassDemand, AccessOptions{NoMSHR: true})
	h.Access(1000, same(2), ClassDemand, AccessOptions{NoMSHR: true})
	if h.Writebacks[0] != 0 {
		t.Errorf("clean eviction produced %d writebacks", h.Writebacks[0])
	}
}

func TestMarkDirtyOnHit(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, 0x2000, ClassDemand, AccessOptions{NoMSHR: true})
	// A store hit dirties the resident line.
	h.Access(500, 0x2000, ClassWriteback, AccessOptions{NoMSHR: true, Write: true})
	same := func(k uint64) uint64 { return 0x2000 + k*8*64 }
	h.Access(600, same(1), ClassDemand, AccessOptions{NoMSHR: true})
	h.Access(1100, same(2), ClassDemand, AccessOptions{NoMSHR: true})
	if h.Writebacks[0] == 0 {
		t.Error("store-hit-dirtied line evicted without writeback")
	}
}
