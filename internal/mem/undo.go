package mem

// This file implements the rollback substrate for CleanupSpec-style undo
// schemes (secure.Cleanup): a perform-order journal of every reversible side
// effect a speculative access has on the hierarchy — fills (with the full
// prior contents of the victimised way, so evicted lines are reinstated),
// replacement-recency touches, dirty-bit transitions, per-class traffic
// counters, DRAM/write-back traffic, MSHR allocations, and MSHR-full
// rejections. The core tags speculative accesses with the issuing
// instruction's sequence number (AccessOptions.UndoSeq); a squash rolls the
// journal back past the squash boundary, and commit retires the journal
// prefix the frontier has made architectural.
//
// Two properties shape the design:
//
//   - The journal is in *perform* order, not sequence order (out-of-order
//     issue interleaves instructions arbitrarily). Rollback walks the log in
//     reverse, which is reverse mutation order — the correct stack
//     discipline for state restoration regardless of sequence numbers.
//     Retirement pops the front while the oldest record is covered by the
//     commit frontier; a younger-but-earlier-performed record blocks the pop
//     harmlessly until its own instruction commits or squashes.
//
//   - Each restoring record validates before applying: the way must still
//     hold the exact line (tag and recency stamp) the record created. A
//     surviving access that later overwrote the way invalidates the record,
//     in which case rollback conservatively leaves the current (committed)
//     state in place rather than clobbering it. Recency stamps are unique
//     (the cache clock advances once per stamp), so validation is exact.
//
// Irreversible observations are deferred instead of undone: the MSHR
// timeline digest fold for a speculative allocation is carried in the
// journal record and applied only when the record retires, so squashed
// allocations never reach the digest. The per-cycle cache clocks are
// deliberately *not* rolled back: clock values only feed LRU comparisons and
// the rank-ordered fingerprint, and a monotonic clock keeps recency stamps
// unique across rollback/refill cycles.
//
// The optional metrics registry (hierMetrics) is also not rolled back: its
// counters are operational telemetry, not part of the security oracle, so a
// Cleanup run's live metrics include transiently performed accesses.

// UndoOptions configures the rollback behaviour, including the planted
// weakenings of the mutation gauntlet (see secure.MutCleanupNoLRUUndo and
// secure.MutCleanupDropEvicted).
type UndoOptions struct {
	// SkipLRUUndo plants the incomplete-rollback bug where line *contents*
	// are restored but replacement state is not: recency touches are left in
	// place and reinstated victims keep the speculative fill's recency
	// stamp, so a squashed access still perturbs the LRU order.
	SkipLRUUndo bool
	// DropEvicted plants the bug where a squashed speculative fill is
	// invalidated but the victim it evicted is not reinstated, leaving a
	// secret-shaped hole in the set.
	DropEvicted bool
}

type undoKind uint8

const (
	// undoFill restores the full prior contents of a way that a speculative
	// insert overwrote (invalid, a victim line, or the same line's previous
	// recency/fill state).
	undoFill undoKind = iota
	// undoTouch restores a hit's replacement-recency update.
	undoTouch
	// undoDirty restores a dirty-bit transition (write hit or write-back
	// mark on a freshly inserted line).
	undoDirty
	// undoStats decrements one per-class access+hit/miss counter pair.
	undoStats
	// undoMSHR removes a speculative MSHR allocation; its timeline-digest
	// fold is deferred to retirement.
	undoMSHR
	// undoDRAM decrements the DRAM access counter.
	undoDRAM
	// undoWriteback decrements one level's write-back counter (and the DRAM
	// write counter when the victim rippled to memory).
	undoWriteback
	// undoReject decrements the MSHR-full rejection counter.
	undoReject
)

// undoRec is one journal entry. Field use varies by kind; cache-targeted
// records carry the cache pointer and way coordinates, hierarchy-level
// records leave them zero.
type undoRec struct {
	seq  uint64 // issuing instruction's sequence number (squash order)
	kind undoKind

	c        *Cache
	set, way int32

	// prev is, for undoFill, the complete prior contents of the way; for
	// undoTouch, prev.lastUse is the pre-touch recency; for undoDirty,
	// prev.dirty is the pre-transition bit.
	prev line
	// tag validates that the way still holds the line the record created
	// (the *new* line's tag for fills, the touched/dirtied line's tag
	// otherwise).
	tag uint64
	// stamp validates recency: the lastUse value the recorded operation
	// wrote. Unique per cache, so a later overwrite is always detected.
	stamp uint64

	// Stats payload.
	class Class
	hit   bool

	// Write-back payload: level index into Hierarchy.Writebacks, and
	// whether the ripple reached DRAM.
	level uint8
	dram  bool

	// MSHR payload: the allocation to remove on rollback and the deferred
	// noteMSHR fold arguments for retirement.
	now, lineAddr, doneAt uint64
	prefetch              bool
}

// undoJournal is the hierarchy's rollback buffer: a flat record slice with a
// retired-prefix head index, so retirement is O(1) amortised and rollback
// compacts in place.
type undoJournal struct {
	opts UndoOptions
	recs []undoRec
	head int
}

func (j *undoJournal) add(r undoRec) { j.recs = append(j.recs, r) }

// empty reports whether every record has been retired or rolled back.
func (j *undoJournal) empty() bool { return j.head == len(j.recs) }

// pending reports the number of live (unretired) records.
func (j *undoJournal) pending() int { return len(j.recs) - j.head }

// retireUpTo pops records from the front while the oldest record's
// instruction is covered by the commit frontier, applying deferred MSHR
// timeline folds in perform order.
func (j *undoJournal) retireUpTo(h *Hierarchy, frontier uint64) {
	for j.head < len(j.recs) && j.recs[j.head].seq <= frontier {
		r := &j.recs[j.head]
		if r.kind == undoMSHR {
			h.noteMSHR(r.now, r.lineAddr, r.doneAt, r.prefetch)
		}
		j.head++
	}
	if j.head == len(j.recs) {
		j.recs = j.recs[:0]
		j.head = 0
	}
}

// rollbackAfter undoes, in reverse perform order, every record belonging to
// an instruction younger than the survivor, then compacts the journal.
func (j *undoJournal) rollbackAfter(h *Hierarchy, survivorSeq uint64) {
	for i := len(j.recs) - 1; i >= j.head; i-- {
		if j.recs[i].seq > survivorSeq {
			j.undo(h, &j.recs[i])
		}
	}
	w := j.head
	for i := j.head; i < len(j.recs); i++ {
		if j.recs[i].seq <= survivorSeq {
			j.recs[w] = j.recs[i]
			w++
		}
	}
	j.recs = j.recs[:w]
}

// undo reverses one record, validating that the state it describes is still
// in place (a surviving access may have legitimately overwritten it, in
// which case the record is skipped and the committed state wins).
func (j *undoJournal) undo(h *Hierarchy, r *undoRec) {
	switch r.kind {
	case undoFill:
		l := &r.c.sets[r.set][r.way]
		if !l.valid || l.tag != r.tag || l.lastUse != r.stamp {
			return // overwritten by a surviving fill; leave it
		}
		switch {
		case j.opts.DropEvicted && r.prev.valid && r.prev.tag != r.tag:
			// Planted weakening: erase the speculative line but do not
			// reinstate the victim it evicted.
			*l = line{}
		case j.opts.SkipLRUUndo && r.prev.valid:
			// Planted weakening: restore the line contents but keep the
			// speculative fill's recency stamp.
			stamp := l.lastUse
			*l = r.prev
			l.lastUse = stamp
		default:
			*l = r.prev
		}
	case undoTouch:
		if j.opts.SkipLRUUndo {
			return // planted weakening: recency updates are not rolled back
		}
		l := &r.c.sets[r.set][r.way]
		if l.valid && l.tag == r.tag && l.lastUse == r.stamp {
			l.lastUse = r.prev.lastUse
		}
	case undoDirty:
		l := &r.c.sets[r.set][r.way]
		if l.valid && l.tag == r.tag {
			l.dirty = r.prev.dirty
		}
	case undoStats:
		r.c.Accesses[r.class]--
		if r.hit {
			r.c.Hits[r.class]--
		} else {
			r.c.Misses[r.class]--
		}
	case undoMSHR:
		// Remove the allocation if its fill is still outstanding (an
		// already-expired entry left the file on its own). nextExpire may
		// be left pointing earlier than the new minimum, which only costs
		// one spurious (and state-preserving) expiry sweep.
		for i := range h.mshrs {
			m := &h.mshrs[i]
			if m.lineAddr == r.lineAddr && m.doneAt == r.doneAt && m.prefetch == r.prefetch {
				h.mshrs = append(h.mshrs[:i], h.mshrs[i+1:]...)
				break
			}
		}
	case undoDRAM:
		h.DRAMAccesses--
	case undoWriteback:
		h.Writebacks[r.level]--
		if r.dram {
			h.DRAMWrites--
		}
	case undoReject:
		h.RejectedMSHR--
	}
}

// EnableUndo attaches a rollback journal to the hierarchy: subsequent
// accesses carrying a non-zero AccessOptions.UndoSeq journal every side
// effect for squash-time rollback. Call once, before the first access.
func (h *Hierarchy) EnableUndo(opts UndoOptions) {
	h.undo = &undoJournal{opts: opts, recs: make([]undoRec, 0, 256)}
}

// UndoEnabled reports whether a rollback journal is attached.
func (h *Hierarchy) UndoEnabled() bool { return h.undo != nil }

// UndoPending reports the number of live (unretired, un-rolled-back)
// journal records; zero when no journal is attached. A quiescent machine
// must always report zero: every speculative access has either committed
// (retiring its records) or squashed (rolling them back).
func (h *Hierarchy) UndoPending() int {
	if h.undo == nil {
		return 0
	}
	return h.undo.pending()
}

// RollbackAfter undoes every journaled side effect of instructions younger
// than survivorSeq, in reverse perform order: speculative fills are erased,
// their victims reinstated, recency and dirty bits restored, and traffic
// counters and MSHR allocations revoked. No-op when no journal is attached.
func (h *Hierarchy) RollbackAfter(survivorSeq uint64) {
	if h.undo != nil {
		h.undo.rollbackAfter(h, survivorSeq)
	}
}

// RetireUpTo retires the journal prefix covered by the commit frontier:
// those side effects are now architectural, so their records are dropped
// and their deferred MSHR timeline folds applied in perform order. No-op
// when no journal is attached.
func (h *Hierarchy) RetireUpTo(frontier uint64) {
	if h.undo != nil {
		h.undo.retireUpTo(h, frontier)
	}
}
