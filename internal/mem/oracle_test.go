package mem

import (
	"testing"
)

// oracleCache is a deliberately naive reference model of a set-associative
// LRU cache with fill times: per set, a slice of lines ordered by recency.
type oracleCache struct {
	sets  int
	ways  int
	lines map[uint64][]oracleLine // set -> recency-ordered (MRU first)
}

type oracleLine struct {
	tag     uint64
	readyAt uint64
}

func newOracle(cfg CacheConfig) *oracleCache {
	return &oracleCache{sets: cfg.Sets(), ways: cfg.Ways, lines: map[uint64][]oracleLine{}}
}

func (o *oracleCache) locate(addr uint64) (set, tag uint64) {
	la := LineAddr(addr) / LineSize
	return la % uint64(o.sets), la / uint64(o.sets)
}

func (o *oracleCache) contains(addr, now uint64) bool {
	set, tag := o.locate(addr)
	for _, l := range o.lines[set] {
		if l.tag == tag {
			return l.readyAt <= now
		}
	}
	return false
}

func (o *oracleCache) present(addr uint64) bool {
	set, tag := o.locate(addr)
	for _, l := range o.lines[set] {
		if l.tag == tag {
			return true
		}
	}
	return false
}

func (o *oracleCache) touch(addr uint64) {
	set, tag := o.locate(addr)
	ls := o.lines[set]
	for i, l := range ls {
		if l.tag == tag {
			copy(ls[1:i+1], ls[:i])
			ls[0] = l
			return
		}
	}
}

func (o *oracleCache) insert(addr, readyAt uint64) {
	set, tag := o.locate(addr)
	ls := o.lines[set]
	for i, l := range ls {
		if l.tag == tag {
			if readyAt < l.readyAt {
				l.readyAt = readyAt
			}
			copy(ls[1:i+1], ls[:i])
			ls[0] = l
			return
		}
	}
	if len(ls) == o.ways {
		ls = ls[:o.ways-1] // drop LRU
	}
	o.lines[set] = append([]oracleLine{{tag: tag, readyAt: readyAt}}, ls...)
}

func (o *oracleCache) invalidate(addr uint64) {
	set, tag := o.locate(addr)
	ls := o.lines[set]
	for i, l := range ls {
		if l.tag == tag {
			o.lines[set] = append(ls[:i], ls[i+1:]...)
			return
		}
	}
}

// TestCacheAgainstOracle drives the real cache and the naive model with the
// same randomized operation stream and requires identical observable
// behaviour (hit/miss, presence, eviction effects).
func TestCacheAgainstOracle(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 2048, Ways: 4, Latency: 5} // 8 sets
	c := NewCache(cfg)
	o := newOracle(cfg)

	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}

	now := uint64(0)
	const addrSpace = 64 * 64 // 64 lines over 8 sets: heavy conflict traffic
	for step := 0; step < 200000; step++ {
		now += next(3)
		addr := next(addrSpace)
		switch next(10) {
		case 0, 1, 2, 3: // access with LRU update
			got := c.Access(addr, now, ClassDemand, true)
			want := o.contains(addr, now)
			if got != want {
				t.Fatalf("step %d: Access(%#x, %d) = %v, oracle %v", step, addr, now, got, want)
			}
			if got {
				o.touch(addr)
			}
		case 4: // access without LRU update (DoM delayed replacement)
			got := c.Access(addr, now, ClassDemand, false)
			if want := o.contains(addr, now); got != want {
				t.Fatalf("step %d: no-LRU access mismatch at %#x", step, addr)
			}
		case 5, 6, 7: // fill
			fill := now + next(50)
			c.Insert(addr, fill)
			o.insert(addr, fill)
		case 8: // invalidate
			gotHad := c.Invalidate(addr)
			wantHad := o.present(addr)
			if gotHad != wantHad {
				t.Fatalf("step %d: Invalidate(%#x) = %v, oracle %v", step, addr, gotHad, wantHad)
			}
			o.invalidate(addr)
		case 9: // touch (delayed replacement update)
			c.Touch(addr)
			o.touch(addr)
		}
		// Spot-check presence agreement on a random probe.
		probe := next(addrSpace)
		if c.Present(probe) != o.present(probe) {
			t.Fatalf("step %d: Present(%#x) disagrees with oracle", step, probe)
		}
		if c.Contains(probe, now) != o.contains(probe, now) {
			t.Fatalf("step %d: Contains(%#x, %d) disagrees with oracle", step, probe, now)
		}
	}
}
