package mem

import (
	"testing"
	"testing/quick"
)

func tinyCache() *Cache {
	// 4 sets x 2 ways x 64B = 512B.
	return NewCache(CacheConfig{SizeBytes: 512, Ways: 2, Latency: 5})
}

func TestCacheConfigValidate(t *testing.T) {
	good := []CacheConfig{
		{SizeBytes: 512, Ways: 2, Latency: 1},
		{SizeBytes: 48 << 10, Ways: 12, Latency: 5},
		{SizeBytes: 2 << 20, Ways: 8, Latency: 15},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v should validate: %v", c, err)
		}
	}
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 2},
		{SizeBytes: 512, Ways: 0},
		{SizeBytes: 500, Ways: 2},        // not divisible into lines
		{SizeBytes: 3 * 64 * 2, Ways: 2}, // 3 sets: not a power of two
		{SizeBytes: -512, Ways: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should not validate", c)
		}
	}
}

func TestCacheSets(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 48 << 10, Ways: 12, Latency: 5}
	if got := cfg.Sets(); got != 64 {
		t.Errorf("48KiB/12-way: %d sets, want 64", got)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := tinyCache()
	if c.Access(0x1000, 0, ClassDemand, true) {
		t.Error("cold access should miss")
	}
	c.Insert(0x1000, 0)
	if !c.Access(0x1000, 10, ClassDemand, true) {
		t.Error("inserted line should hit")
	}
	if !c.Access(0x1020, 10, ClassDemand, true) {
		t.Error("same-line offset should hit")
	}
	if c.Access(0x2000, 10, ClassDemand, true) {
		t.Error("different line should miss")
	}
	if c.Accesses[ClassDemand] != 4 || c.Hits[ClassDemand] != 2 || c.Misses[ClassDemand] != 2 {
		t.Errorf("stats = %d/%d/%d, want 4/2/2",
			c.Accesses[ClassDemand], c.Hits[ClassDemand], c.Misses[ClassDemand])
	}
}

func TestCacheFillTime(t *testing.T) {
	c := tinyCache()
	c.Insert(0x1000, 100) // fill completes at cycle 100
	if c.Contains(0x1000, 50) {
		t.Error("line must not be usable before its fill completes")
	}
	if !c.Present(0x1000) {
		t.Error("in-flight line must be Present")
	}
	if c.Access(0x1000, 50, ClassDemand, true) {
		t.Error("access during fill must miss")
	}
	if !c.Contains(0x1000, 100) {
		t.Error("line must be usable at fill completion")
	}
	if !c.Access(0x1000, 101, ClassDemand, true) {
		t.Error("access after fill must hit")
	}
}

func TestCacheReinsertNeverDelaysFill(t *testing.T) {
	c := tinyCache()
	c.Insert(0x1000, 100)
	c.Insert(0x1000, 500) // re-insert with a later fill: must not extend
	if !c.Contains(0x1000, 100) {
		t.Error("re-insert extended the fill time")
	}
	c.Insert(0x1000, 50) // earlier fill shortens
	if !c.Contains(0x1000, 50) {
		t.Error("re-insert did not shorten the fill time")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := tinyCache() // 4 sets, 2 ways; lines 64B; set = (addr/64)%4
	// Three lines mapping to set 0: 0x000, 0x100, 0x200.
	c.Insert(0x000, 0)
	c.Insert(0x100, 0)
	c.Access(0x000, 1, ClassDemand, true) // make 0x000 most recent
	ev, evicted := c.Insert(0x200, 2)
	if !evicted {
		t.Fatal("full set must evict")
	}
	if ev != 0x100 {
		t.Errorf("evicted %#x, want LRU 0x100", ev)
	}
	if !c.Contains(0x000, 10) || c.Contains(0x100, 10) || !c.Contains(0x200, 10) {
		t.Error("wrong lines resident after eviction")
	}
}

func TestCacheNoLRUUpdateMode(t *testing.T) {
	c := tinyCache()
	c.Insert(0x000, 0)
	c.Insert(0x100, 0) // 0x000 is now LRU
	// A DoM-speculative hit on 0x000 must NOT update recency.
	c.Access(0x000, 1, ClassDemand, false)
	ev, _ := c.Insert(0x200, 2)
	if ev != 0x000 {
		t.Errorf("evicted %#x, want 0x000 (recency not updated by delayed-replacement hit)", ev)
	}
	// Touch applies the delayed update.
	c2 := tinyCache()
	c2.Insert(0x000, 0)
	c2.Insert(0x100, 0)
	c2.Touch(0x000)
	ev, _ = c2.Insert(0x200, 2)
	if ev != 0x100 {
		t.Errorf("evicted %#x, want 0x100 after Touch", ev)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := tinyCache()
	c.Insert(0x1000, 0)
	if !c.Invalidate(0x1000) {
		t.Error("invalidate of resident line should report true")
	}
	if c.Present(0x1000) {
		t.Error("invalidated line still present")
	}
	if c.Invalidate(0x1000) {
		t.Error("invalidate of absent line should report false")
	}
}

func TestCacheTotalsAndReset(t *testing.T) {
	c := tinyCache()
	c.Access(0x0, 0, ClassDemand, true)
	c.Access(0x0, 0, ClassPrefetch, true)
	c.Access(0x0, 0, ClassDoppelganger, true)
	if c.TotalAccesses() != 3 || c.TotalMisses() != 3 {
		t.Errorf("totals = %d/%d, want 3/3", c.TotalAccesses(), c.TotalMisses())
	}
	c.ResetStats()
	if c.TotalAccesses() != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

// Property: Contains implies Present, and inserting then probing at/after
// the fill time always hits.
func TestCacheContainsPresentProperty(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 4096, Ways: 4, Latency: 1})
	f := func(addr uint64, fill uint16) bool {
		a := addr % (1 << 20)
		c.Insert(a, uint64(fill))
		if c.Contains(a, uint64(fill)-1) && fill > 0 {
			// May legitimately hit if an earlier iteration inserted the
			// same line with an earlier fill; accept.
			_ = a
		}
		return c.Present(a) && c.Contains(a, uint64(fill)+1<<40)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the most recently accessed line in a set is never the one
// evicted.
func TestCacheLRUNeverEvictsMostRecent(t *testing.T) {
	c := tinyCache()
	f := func(seed uint8) bool {
		set := uint64(seed % 4)
		a := set * 64
		b := a + 4*64 // same set
		d := a + 8*64 // same set
		c.Insert(a, 0)
		c.Insert(b, 0)
		c.Access(b, 1, ClassDemand, true) // b most recent
		ev, evicted := c.Insert(d, 2)
		return !evicted || ev != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
