package mem

import "fmt"

// This file defines the serializable snapshot of the memory hierarchy, used
// by the checkpoint subsystem. The image is exact: every way of every set
// (valid or not) with its raw LRU timestamp, the per-cache recency clocks,
// the live MSHR file, and all traffic counters including the MSHR timeline
// digest. Timestamps are absolute cycle numbers; they stay meaningful
// because the core's cycle counter is restored alongside.

// LineState is one cache way.
type LineState struct {
	Tag     uint64 `json:"tag"`
	Valid   bool   `json:"valid,omitempty"`
	Dirty   bool   `json:"dirty,omitempty"`
	LastUse uint64 `json:"last_use,omitempty"`
	ReadyAt uint64 `json:"ready_at,omitempty"`
}

// CacheState is a complete snapshot of one cache level.
type CacheState struct {
	Config CacheConfig `json:"config"`
	// Lines is the full way array in row-major set order,
	// len = Sets()*Ways.
	Lines    []LineState        `json:"lines"`
	Clock    uint64             `json:"clock"`
	Accesses [numClasses]uint64 `json:"accesses"`
	Hits     [numClasses]uint64 `json:"hits"`
	Misses   [numClasses]uint64 `json:"misses"`
	// Rng is the random-replacement victim-choice stream state. Omitted
	// (and restored to the fixed seed) for LRU caches, so pre-existing
	// checkpoint digests are unchanged.
	Rng uint64 `json:"rng,omitempty"`
}

// State captures the cache.
func (c *Cache) State() *CacheState {
	st := &CacheState{
		Config:   c.cfg,
		Lines:    make([]LineState, 0, c.cfg.Sets()*c.cfg.Ways),
		Clock:    c.clock,
		Accesses: c.Accesses,
		Hits:     c.Hits,
		Misses:   c.Misses,
	}
	if c.cfg.RandomReplacement {
		st.Rng = c.rng
	}
	for _, set := range c.sets {
		for _, l := range set {
			st.Lines = append(st.Lines, LineState{
				Tag: l.tag, Valid: l.valid, Dirty: l.dirty,
				LastUse: l.lastUse, ReadyAt: l.readyAt,
			})
		}
	}
	return st
}

// Restore overwrites the cache with a captured state. The state must have
// been captured under an identical configuration.
func (c *Cache) Restore(st *CacheState) error {
	if st.Config != c.cfg {
		return fmt.Errorf("cache: checkpoint config %+v does not match this core's %+v", st.Config, c.cfg)
	}
	if want := c.cfg.Sets() * c.cfg.Ways; len(st.Lines) != want {
		return fmt.Errorf("cache: checkpoint has %d lines, cache holds %d", len(st.Lines), want)
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			l := st.Lines[i]
			set[w] = line{
				tag: l.Tag, valid: l.Valid, dirty: l.Dirty,
				lastUse: l.LastUse, readyAt: l.ReadyAt,
			}
			i++
		}
	}
	c.clock = st.Clock
	c.Accesses = st.Accesses
	c.Hits = st.Hits
	c.Misses = st.Misses
	if st.Rng != 0 {
		c.rng = st.Rng
	}
	return nil
}

// MSHRState is one outstanding L1 miss.
type MSHRState struct {
	LineAddr uint64 `json:"line_addr"`
	DoneAt   uint64 `json:"done_at"`
	Prefetch bool   `json:"prefetch,omitempty"`
}

// HierarchyState is a complete snapshot of the memory system.
type HierarchyState struct {
	Config       HierarchyConfig `json:"config"`
	L1D          *CacheState     `json:"l1d"`
	L2           *CacheState     `json:"l2"`
	L3           *CacheState     `json:"l3"`
	MSHRs        []MSHRState     `json:"mshrs"`
	NextExpire   uint64          `json:"next_expire"`
	DRAMAccesses uint64          `json:"dram_accesses"`
	DRAMWrites   uint64          `json:"dram_writes"`
	Writebacks   [3]uint64       `json:"writebacks"`
	RejectedMSHR uint64          `json:"rejected_mshr"`
	MSHRSig      uint64          `json:"mshr_sig"`
}

// State captures the hierarchy.
func (h *Hierarchy) State() *HierarchyState {
	st := &HierarchyState{
		Config:       h.cfg,
		L1D:          h.L1D.State(),
		L2:           h.L2.State(),
		L3:           h.L3.State(),
		MSHRs:        make([]MSHRState, len(h.mshrs)),
		NextExpire:   h.nextExpire,
		DRAMAccesses: h.DRAMAccesses,
		DRAMWrites:   h.DRAMWrites,
		Writebacks:   h.Writebacks,
		RejectedMSHR: h.RejectedMSHR,
		MSHRSig:      h.mshrSig,
	}
	for i, m := range h.mshrs {
		st.MSHRs[i] = MSHRState{LineAddr: m.lineAddr, DoneAt: m.doneAt, Prefetch: m.prefetch}
	}
	return st
}

// Restore overwrites the hierarchy with a captured state. The state must
// have been captured under an identical configuration.
func (h *Hierarchy) Restore(st *HierarchyState) error {
	if st.Config != h.cfg {
		return fmt.Errorf("hierarchy: checkpoint config %+v does not match this core's %+v", st.Config, h.cfg)
	}
	if st.L1D == nil || st.L2 == nil || st.L3 == nil {
		return fmt.Errorf("hierarchy: checkpoint is missing a cache level")
	}
	if err := h.L1D.Restore(st.L1D); err != nil {
		return fmt.Errorf("L1D: %w", err)
	}
	if err := h.L2.Restore(st.L2); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if err := h.L3.Restore(st.L3); err != nil {
		return fmt.Errorf("L3: %w", err)
	}
	h.mshrs = h.mshrs[:0]
	for _, m := range st.MSHRs {
		h.mshrs = append(h.mshrs, mshr{lineAddr: m.LineAddr, doneAt: m.DoneAt, prefetch: m.Prefetch})
	}
	h.nextExpire = st.NextExpire
	h.DRAMAccesses = st.DRAMAccesses
	h.DRAMWrites = st.DRAMWrites
	h.Writebacks = st.Writebacks
	h.RejectedMSHR = st.RejectedMSHR
	h.mshrSig = st.MSHRSig
	return nil
}
