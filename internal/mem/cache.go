// Package mem models the memory hierarchy: set-associative caches with LRU
// replacement, fill-time-aware lines, and MSHR-limited miss handling,
// composed into a three-level hierarchy (L1D, private L2, shared L3) in
// front of DRAM.
//
// Caches hold timing state only (tags, recency, fill time); data values
// live in the simulator's backing store. A line inserted by a miss is not
// usable until its fill completes: lookups during the fill window are
// misses, which the hierarchy satisfies by merging with the in-flight MSHR.
// This matches the paper's requirement that doppelganger accesses behave
// exactly like ordinary accesses with *no* modifications to the hierarchy —
// the only special mode is Delay-on-Miss's speculative probe, which is a
// property of how the core issues requests, not of the caches themselves.
package mem

import "fmt"

// LineSize is the cache line size in bytes. Addresses are mapped to lines
// by dropping the low bits.
const LineSize = 64

// LineAddr returns the line-aligned address.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// CacheConfig sizes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// Latency is the round-trip access latency in cycles for a hit at
	// this level.
	Latency uint64
	// RandomReplacement selects random (deterministic xorshift) victim
	// choice instead of LRU when a full set must evict. CleanupSpec pairs
	// its rollback with L1 random replacement to cheapen recency
	// restoration; this knob reproduces that design point as an opt-in
	// experiment mode (recency is still tracked for the fingerprint). The
	// field is omitted from encodings when false so existing engine cache
	// keys and checkpoints are unchanged.
	RandomReplacement bool `json:",omitempty"`
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (LineSize * c.Ways) }

// Validate reports configuration errors (non-power-of-two set counts, etc.).
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: cache size %d / ways %d must be positive", c.SizeBytes, c.Ways)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*LineSize != c.SizeBytes {
		return fmt.Errorf("mem: size %dB not divisible into %d-way sets of %dB lines",
			c.SizeBytes, c.Ways, LineSize)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: set count %d is not a power of two", sets)
	}
	return nil
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool   // written since fill; eviction produces writeback traffic
	lastUse uint64 // recency timestamp for LRU
	readyAt uint64 // cycle the fill completes; hits require readyAt <= now
}

// Cache is one set-associative, LRU-replacement cache level.
type Cache struct {
	cfg      CacheConfig
	sets     [][]line
	setMask  uint64
	tagShift uint
	clock    uint64 // monotonically increasing recency stamp
	rng      uint64 // xorshift64 victim-choice state (RandomReplacement only)

	// Stats, by access class.
	Accesses [numClasses]uint64
	Hits     [numClasses]uint64
	Misses   [numClasses]uint64
}

// NewCache builds a cache; invalid configurations panic since they are
// programming errors in experiment setup.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, sets),
		setMask: uint64(sets - 1),
		rng:     rngSeed,
	}
	for s := uint64(sets); s > 1; s >>= 1 {
		c.tagShift++
	}
	backing := make([]line, sets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	la := LineAddr(addr) / LineSize
	return la & c.setMask, la >> c.tagShift
}

func (c *Cache) find(addr uint64) *line {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return &c.sets[set][i]
		}
	}
	return nil
}

// findWay is find, additionally reporting the way coordinates the rollback
// journal validates against. way is -1 on a miss.
func (c *Cache) findWay(addr uint64) (set, way int, l *line) {
	s, tag := c.index(addr)
	ws := c.sets[s]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return int(s), i, &ws[i]
		}
	}
	return int(s), -1, nil
}

// rngSeed starts every cache's xorshift64 victim-choice stream at the same
// well-mixed point, so random-replacement runs are reproducible.
const rngSeed = 0x9E3779B97F4A7C15

// nextRand steps the deterministic xorshift64 stream (RandomReplacement).
func (c *Cache) nextRand() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x
}

// Contains probes for a usable (fill-complete) line without changing any
// state — no recency update, no statistics. Used for DoM's speculative L1
// probe, prefetch filtering, and tests.
func (c *Cache) Contains(addr uint64, now uint64) bool {
	l := c.find(addr)
	return l != nil && l.readyAt <= now
}

// Present reports whether the line is resident or in flight, regardless of
// fill completion. No state changes.
func (c *Cache) Present(addr uint64) bool { return c.find(addr) != nil }

// MarkDirty flags the line as modified, if present.
func (c *Cache) MarkDirty(addr uint64) {
	c.markDirty(addr, nil, 0)
}

// markDirty is MarkDirty with an optional rollback journal recording the
// dirty-bit transition of a tagged speculative access.
func (c *Cache) markDirty(addr uint64, j *undoJournal, seq uint64) {
	set, way, l := c.findWay(addr)
	if l == nil {
		return
	}
	if j != nil && !l.dirty {
		j.add(undoRec{seq: seq, kind: undoDirty, c: c, set: int32(set), way: int32(way),
			tag: l.tag, prev: line{dirty: false}})
	}
	l.dirty = true
}

// Touch updates the recency of the line if present and reports whether it
// was. Used to apply DoM's delayed replacement updates at commit.
func (c *Cache) Touch(addr uint64) bool {
	if l := c.find(addr); l != nil {
		c.clock++
		l.lastUse = c.clock
		return true
	}
	return false
}

// Access looks the line up at cycle now, counting statistics for the given
// class. A line whose fill has not completed counts as a miss (the caller
// merges with the in-flight MSHR). On a hit the recency is updated unless
// updateLRU is false (DoM delayed replacement). It reports whether the
// access hit.
func (c *Cache) Access(addr uint64, now uint64, class Class, updateLRU bool) bool {
	return c.access(addr, now, class, updateLRU, nil, 0)
}

// access is Access with an optional rollback journal: a tagged speculative
// access (j non-nil) journals its counter update and recency touch so a
// squash can revoke them.
func (c *Cache) access(addr, now uint64, class Class, updateLRU bool, j *undoJournal, seq uint64) bool {
	set, way, l := c.findWay(addr)
	if l != nil && l.readyAt <= now {
		c.countHit(l, set, way, class, updateLRU, j, seq)
		return true
	}
	c.countMiss(class, j, seq)
	return false
}

// countHit records a hit for a line already located via findWay, optionally
// refreshing its recency. Together with countMiss it is the counting half
// of Access, for callers that probe once and branch on the outcome
// themselves instead of paying a second set walk. A non-nil journal records
// the counter update and the touch for squash-time rollback.
func (c *Cache) countHit(l *line, set, way int, class Class, updateLRU bool, j *undoJournal, seq uint64) {
	c.Accesses[class]++
	if updateLRU {
		if j != nil {
			j.add(undoRec{seq: seq, kind: undoTouch, c: c, set: int32(set), way: int32(way),
				tag: l.tag, stamp: c.clock + 1, prev: line{lastUse: l.lastUse}})
		}
		c.clock++
		l.lastUse = c.clock
	}
	c.Hits[class]++
	if j != nil {
		j.add(undoRec{seq: seq, kind: undoStats, c: c, class: class, hit: true})
	}
}

// countMiss records a miss for callers that already probed with find.
func (c *Cache) countMiss(class Class, j *undoJournal, seq uint64) {
	c.Accesses[class]++
	c.Misses[class]++
	if j != nil {
		j.add(undoRec{seq: seq, kind: undoStats, c: c, class: class, hit: false})
	}
}

// Insert fills the line with the given fill-completion time, evicting the
// LRU way if the set is full. It returns the evicted line address and
// whether the eviction was of a dirty line (a writeback). Re-inserting a
// present line refreshes its recency and, if the line was still in flight,
// moves its ready time earlier (never later).
func (c *Cache) Insert(addr uint64, readyAt uint64) (evicted uint64, wasEvicted bool) {
	ev, was, _ := c.InsertDirtyInfo(addr, readyAt)
	return ev, was
}

// InsertDirtyInfo is Insert, additionally reporting whether the evicted
// line was dirty (needs writing back to the next level).
func (c *Cache) InsertDirtyInfo(addr uint64, readyAt uint64) (evicted uint64, wasEvicted, evictedDirty bool) {
	return c.insert(addr, readyAt, nil, 0)
}

// insert is the one fill path, shared by the plain and journaled callers so
// their semantics cannot drift. The three outcomes — refreshing a present
// line (which may only ever move an in-flight readyAt *earlier*, matching
// the MSHR-merge rule that a second requester shares, never delays, an
// existing fill), taking an invalid way, or evicting a victim — all record
// a single undoFill carrying the way's complete prior contents, so rollback
// uniformly re-invalidates, un-refreshes, or reinstates.
func (c *Cache) insert(addr, readyAt uint64, j *undoJournal, seq uint64) (evicted uint64, wasEvicted, evictedDirty bool) {
	set, tag := c.index(addr)
	ways := c.sets[set]
	c.clock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			if j != nil {
				j.add(undoRec{seq: seq, kind: undoFill, c: c, set: int32(set), way: int32(i),
					tag: tag, stamp: c.clock, prev: ways[i]})
			}
			ways[i].lastUse = c.clock
			if readyAt < ways[i].readyAt {
				ways[i].readyAt = readyAt
			}
			return 0, false, false
		}
	}
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		if c.cfg.RandomReplacement {
			victim = int(c.nextRand() % uint64(len(ways)))
		} else {
			victim = 0
			for i := 1; i < len(ways); i++ {
				if ways[i].lastUse < ways[victim].lastUse {
					victim = i
				}
			}
		}
		evicted = c.lineAddr(set, ways[victim].tag)
		evictedDirty = ways[victim].dirty
		wasEvicted = true
	}
	if j != nil {
		j.add(undoRec{seq: seq, kind: undoFill, c: c, set: int32(set), way: int32(victim),
			tag: tag, stamp: c.clock, prev: ways[victim]})
	}
	ways[victim] = line{tag: tag, valid: true, lastUse: c.clock, readyAt: readyAt}
	return evicted, wasEvicted, evictedDirty
}

// Invalidate removes the line if present (coherence invalidation), and
// reports whether it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	if l := c.find(addr); l != nil {
		l.valid = false
		return true
	}
	return false
}

func (c *Cache) lineAddr(set, tag uint64) uint64 {
	return ((tag << c.tagShift) | set) * LineSize
}

// TotalAccesses sums accesses over all classes.
func (c *Cache) TotalAccesses() uint64 {
	var t uint64
	for _, v := range c.Accesses {
		t += v
	}
	return t
}

// TotalMisses sums misses over all classes.
func (c *Cache) TotalMisses() uint64 {
	var t uint64
	for _, v := range c.Misses {
		t += v
	}
	return t
}

// Fingerprint digests the attacker-observable contents of the cache at
// cycle now: for every resident line, its set, tag, dirty bit, LRU rank
// within the set, and whether its fill is still in flight. This is exactly
// the state a prime+probe/flush+reload attacker can reconstruct — presence,
// eviction order, and write-back behaviour — so two runs with equal
// fingerprints are indistinguishable through this cache. Raw recency
// timestamps are deliberately reduced to ranks: absolute access counts are
// already captured by the access statistics.
//
// Lines fold in recency-rank order within each set, not physical way order:
// the way a line happens to occupy is invisible to a prime+probe attacker,
// and under an undo scheme a rolled-back speculative fill can legitimately
// shift which way a later (architectural) fill lands in without changing
// anything observable. Rank order is well-defined because recency stamps
// are unique per cache (the clock advances once per stamp, and rollback
// only ever resurrects a stamp whose holder was evicted).
func (c *Cache) Fingerprint(now uint64) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for si, set := range c.sets {
		valid := 0
		for wi := range set {
			if set[wi].valid {
				valid++
			}
		}
		prevUse := uint64(0)
		for rank := 0; rank < valid; rank++ {
			var l *line
			for wi := range set {
				cand := &set[wi]
				if !cand.valid || (rank > 0 && cand.lastUse <= prevUse) {
					continue
				}
				if l == nil || cand.lastUse < l.lastUse {
					l = cand
				}
			}
			prevUse = l.lastUse
			mix(uint64(si))
			mix(l.tag)
			mix(uint64(rank))
			var bits uint64
			if l.dirty {
				bits |= 1
			}
			if l.readyAt > now {
				bits |= 2
			}
			mix(bits)
		}
	}
	return h
}

// OccupiedSets folds the cache's valid-line footprint into a 64-bit set
// bitmap: bit (s mod 64) is set when set s holds at least one valid line.
// It is a post-run coverage summary for campaign-mode fuzzing — *where* in
// the cache a run left state, at far coarser grain than Fingerprint — and
// costs nothing on the access path.
func (c *Cache) OccupiedSets() uint64 {
	var bits uint64
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				bits |= 1 << (uint(si) % 64)
				break
			}
		}
	}
	return bits
}

// StatsFingerprint digests the per-class access counters — the traffic an
// attacker sharing the cache can observe through contention.
func (c *Cache) StatsFingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for cl := 0; cl < int(numClasses); cl++ {
		mix(c.Accesses[cl])
		mix(c.Hits[cl])
		mix(c.Misses[cl])
	}
	return h
}

// ResetStats zeroes the statistics counters without disturbing contents,
// so warmup traffic can be excluded from measurement.
func (c *Cache) ResetStats() {
	c.Accesses = [numClasses]uint64{}
	c.Hits = [numClasses]uint64{}
	c.Misses = [numClasses]uint64{}
}
