package mem

import "testing"

// undoHierarchy is tinyHierarchy with the rollback journal armed. Committed
// traffic goes through untagged accesses (UndoSeq 0, unjournaled);
// speculative traffic tags a sequence number.
func undoHierarchy(opts UndoOptions) *Hierarchy {
	h := tinyHierarchy()
	h.EnableUndo(opts)
	return h
}

// hierPrint captures everything rollback promises to restore: per-level
// content fingerprints, per-level stats counters, traffic totals, and the
// MSHR timeline digest.
type hierPrint struct {
	l1, l2, l3  uint64
	s1, s2, s3  uint64
	dram, dramW uint64
	wb          [3]uint64
	rejected    uint64
	sig         uint64
	outstanding int
}

func printOf(h *Hierarchy, now uint64) hierPrint {
	return hierPrint{
		l1: h.L1D.Fingerprint(now), l2: h.L2.Fingerprint(now), l3: h.L3.Fingerprint(now),
		s1: h.L1D.StatsFingerprint(), s2: h.L2.StatsFingerprint(), s3: h.L3.StatsFingerprint(),
		dram: h.DRAMAccesses, dramW: h.DRAMWrites,
		wb: h.Writebacks, rejected: h.RejectedMSHR,
		sig: h.MSHRTimeline(), outstanding: h.OutstandingMisses(now),
	}
}

// TestInsertDirtyInfoFillWindowInvariant pins the fill-window invariant of
// the shared insert path: re-inserting a present line may only ever move an
// in-flight readyAt EARLIER, mirroring the MSHR-merge rule that a second
// requester shares — and never delays — an existing fill. It also pins that
// the refresh reports no eviction, bumps recency, and leaves the dirty bit
// alone (the line's contents were not replaced).
func TestInsertDirtyInfoFillWindowInvariant(t *testing.T) {
	c := tinyCache()
	c.InsertDirtyInfo(0x1000, 100)
	// A later re-insert must not extend the in-flight window.
	if ev, was, dirty := c.InsertDirtyInfo(0x1000, 500); was || ev != 0 || dirty {
		t.Errorf("present-line re-insert reported an eviction: %#x/%t/%t", ev, was, dirty)
	}
	if !c.Contains(0x1000, 100) {
		t.Error("re-insert with a later readyAt delayed the in-flight fill")
	}
	// An earlier re-insert shortens the window.
	c.InsertDirtyInfo(0x1000, 50)
	if !c.Contains(0x1000, 50) {
		t.Error("re-insert with an earlier readyAt did not shorten the fill")
	}
	// The refresh counts as a use: the refreshed line must not be the
	// next victim. 0x1000 and 0x1100 share set 0 of the 4-set cache.
	c.InsertDirtyInfo(0x1100, 60)
	c.InsertDirtyInfo(0x1000, 70) // refresh: 0x1100 is now LRU
	if ev, was, _ := c.InsertDirtyInfo(0x1200, 80); !was || ev != 0x1100 {
		t.Errorf("evicted %#x (evicted=%t), want refresh-protected victim 0x1100", ev, was)
	}
	// A refresh preserves the dirty bit: refresh the dirty line, then age
	// it back to LRU and evict it — the eviction must still report dirty.
	c.MarkDirty(0x1000)
	c.InsertDirtyInfo(0x1000, 90)
	c.Access(0x1200, 92, ClassDemand, true) // 0x1000 back to LRU
	if ev, was, dirty := c.InsertDirtyInfo(0x1300, 95); !was || ev != 0x1000 || !dirty {
		t.Errorf("evicting refreshed dirty line: %#x/%t/dirty=%t, want 0x1000/true/true", ev, was, dirty)
	}

	// The same invariant observed through the hierarchy: an access that
	// merges into an in-flight MSHR sees the residual latency of the
	// original fill, and the fill completes at the original time.
	h := tinyHierarchy()
	r1 := h.Access(0, 0x20000, ClassDemand, AccessOptions{})
	r2 := h.Access(10, 0x20000, ClassDemand, AccessOptions{})
	if !r2.Merged {
		t.Fatalf("second access should merge: %+v", r2)
	}
	if want := r1.Latency - 10; r2.Latency != want {
		t.Errorf("merged latency = %d, want residual %d", r2.Latency, want)
	}
	if !h.ContainsL1(0x20000, r1.Latency) {
		t.Error("merge delayed the original fill completion")
	}
}

// TestUndoRollbackExactRestore drives journaled speculative traffic over a
// warmed hierarchy — LRU touches, fills into invalid ways, evictions of
// clean and dirty victims, writeback ripples, MSHR allocations, DRAM trips
// — and checks that RollbackAfter restores every observable exactly.
func TestUndoRollbackExactRestore(t *testing.T) {
	h := undoHierarchy(UndoOptions{})
	// Committed warm: fill L1 set 0 (8 sets x 2 ways; stride 512) and one
	// unrelated line; dirty one way so rollback must restore dirty bits.
	h.Access(0, 0x10000, ClassDemand, AccessOptions{})
	h.Access(200, 0x10200, ClassDemand, AccessOptions{})
	h.Access(400, 0x10000, ClassDemand, AccessOptions{Write: true, NoMSHR: true})
	h.Access(600, 0x30000, ClassDemand, AccessOptions{})

	const now = 5000 // all warm fills long complete, MSHRs expired
	before := printOf(h, now)

	// Speculative epoch seq=42: touch a resident line's recency, evict the
	// dirty LRU with a conflicting fill (writeback ripple into L2), miss to
	// a fresh region (DRAM trip), and dirty a resident line.
	spec := AccessOptions{UndoSeq: 42}
	h.Access(now, 0x10200, ClassDemand, spec)                                                    // L1 hit, LRU touch
	h.Access(now+1, 0x10400, ClassDemand, spec)                                                  // set-0 fill, evicts dirty victim
	h.Access(now+2, 0x50000, ClassDemand, spec)                                                  // cold miss, DRAM
	h.Access(now+3, 0x30000, ClassDemand, AccessOptions{UndoSeq: 42, Write: true, NoMSHR: true}) // dirty transition
	if h.UndoPending() == 0 {
		t.Fatal("speculative accesses recorded nothing")
	}

	h.RollbackAfter(41)
	if h.UndoPending() != 0 {
		t.Errorf("%d journal records survive a full rollback", h.UndoPending())
	}
	after := printOf(h, now)
	if after != before {
		t.Errorf("rollback did not restore the hierarchy:\nbefore %+v\nafter  %+v", before, after)
	}
	if h.PresentL1(0x10400) || h.PresentL1(0x50000) {
		t.Error("speculative fills survive rollback")
	}
	if !h.PresentL1(0x10000) {
		t.Error("evicted victim not reinstated")
	}
}

// TestUndoNestedEpochsOutOfOrderSquash rolls back two nested speculative
// epochs with two separate partial rollbacks — the younger epoch squashed
// first, then the older — and checks the state walks back exactly to each
// boundary.
func TestUndoNestedEpochsOutOfOrderSquash(t *testing.T) {
	h := undoHierarchy(UndoOptions{})
	h.Access(0, 0x10000, ClassDemand, AccessOptions{})
	h.Access(200, 0x10200, ClassDemand, AccessOptions{})

	const now = 5000
	base := printOf(h, now)

	// Epoch seq=10: evict 0x10000 (the set-0 LRU).
	h.Access(now, 0x10400, ClassDemand, AccessOptions{UndoSeq: 10})
	mid := printOf(h, now+1)

	// Nested epoch seq=20: evict again and touch.
	h.Access(now+1, 0x10600, ClassDemand, AccessOptions{UndoSeq: 20})
	h.Access(now+2, 0x10400, ClassDemand, AccessOptions{UndoSeq: 20})

	// Inner squash first: only epoch 20 unwinds.
	h.RollbackAfter(10)
	if got := printOf(h, now+1); got != mid {
		t.Errorf("inner rollback missed the epoch boundary:\nwant %+v\ngot  %+v", mid, got)
	}
	if !h.PresentL1(0x10400) {
		t.Error("outer epoch's fill must survive the inner rollback")
	}

	// Outer squash: back to the committed base.
	h.RollbackAfter(9)
	if got := printOf(h, now); got != base {
		t.Errorf("outer rollback missed the committed state:\nwant %+v\ngot  %+v", base, got)
	}
	if !h.PresentL1(0x10000) || h.PresentL1(0x10400) {
		t.Error("outer rollback restored the wrong lines")
	}
}

// TestUndoEvictAndRefillSameEpoch covers the reverse-walk discipline: within
// one epoch a resident line is evicted by a speculative fill and then
// re-filled by a later speculative miss. Undoing in reverse perform order
// must land back on the original contents.
func TestUndoEvictAndRefillSameEpoch(t *testing.T) {
	h := undoHierarchy(UndoOptions{})
	// Fill set 0 completely so every further fill evicts.
	h.Access(0, 0x10000, ClassDemand, AccessOptions{})
	h.Access(200, 0x10200, ClassDemand, AccessOptions{})

	const now = 5000
	base := printOf(h, now)

	spec := AccessOptions{UndoSeq: 7}
	h.Access(now, 0x10400, ClassDemand, spec)   // evicts LRU 0x10000
	h.Access(now+1, 0x10600, ClassDemand, spec) // evicts LRU 0x10200
	h.Access(now+2, 0x10000, ClassDemand, spec) // re-fills the first victim, evicting again
	if h.L1D.TotalMisses() < 3 {
		t.Fatalf("scenario expects three speculative misses, got %d", h.L1D.TotalMisses())
	}

	h.RollbackAfter(6)
	if got := printOf(h, now); got != base {
		t.Errorf("evict-and-refill rollback diverged:\nwant %+v\ngot  %+v", base, got)
	}
	if !h.PresentL1(0x10000) || !h.PresentL1(0x10200) || h.PresentL1(0x10400) || h.PresentL1(0x10600) {
		t.Error("wrong lines resident after evict-and-refill rollback")
	}
}

// TestUndoRetireUpTo pins retirement: records at or below the commit
// frontier pop (their deferred MSHR-timeline folds apply), younger records
// stay, and a retired prefix is no longer undoable.
func TestUndoRetireUpTo(t *testing.T) {
	h := undoHierarchy(UndoOptions{})
	h.Access(0, 0x10000, ClassDemand, AccessOptions{UndoSeq: 5})
	h.Access(10, 0x20000, ClassDemand, AccessOptions{UndoSeq: 9})
	if h.MSHRTimeline() != 0 {
		t.Error("MSHR timeline folded before retirement under undo")
	}
	pending := h.UndoPending()

	h.RetireUpTo(5)
	if h.UndoPending() >= pending {
		t.Errorf("retirement kept the journal at %d records", h.UndoPending())
	}
	if h.MSHRTimeline() == 0 {
		t.Error("retired MSHR allocation did not fold into the timeline")
	}
	sigAfterFirst := h.MSHRTimeline()

	// Rolling back now must keep the retired fill and undo the younger one.
	h.RollbackAfter(5)
	if !h.PresentL1(0x10000) {
		t.Error("retired fill was rolled back")
	}
	if h.PresentL1(0x20000) {
		t.Error("unretired fill survived rollback")
	}
	if h.MSHRTimeline() != sigAfterFirst {
		t.Error("rollback disturbed the retired MSHR timeline")
	}
}

// TestUndoMutationSkipLRUUndo pins the planted cleanup-no-lru-undo
// weakening: rollback restores contents but leaves speculative recency in
// place, so the victim-order fingerprint moves while the line set does not.
func TestUndoMutationSkipLRUUndo(t *testing.T) {
	h := undoHierarchy(UndoOptions{SkipLRUUndo: true})
	h.Access(0, 0x10000, ClassDemand, AccessOptions{})
	h.Access(200, 0x10200, ClassDemand, AccessOptions{})
	// Committed recency order: 0x10000 is LRU.
	const now = 5000
	before := h.L1D.Fingerprint(now)

	// Speculative hit on the LRU line bumps it to MRU; the weakened
	// rollback keeps that stamp.
	h.Access(now, 0x10000, ClassDemand, AccessOptions{UndoSeq: 3})
	h.RollbackAfter(2)
	if h.UndoPending() != 0 {
		t.Fatalf("%d records left", h.UndoPending())
	}
	if !h.PresentL1(0x10000) || !h.PresentL1(0x10200) {
		t.Error("contents must be intact under skip-lru-undo")
	}
	if h.L1D.Fingerprint(now) == before {
		t.Error("speculative recency must survive the weakened rollback (rank change expected)")
	}

	// The honest journal restores the rank too.
	h2 := undoHierarchy(UndoOptions{})
	h2.Access(0, 0x10000, ClassDemand, AccessOptions{})
	h2.Access(200, 0x10200, ClassDemand, AccessOptions{})
	ref := h2.L1D.Fingerprint(now)
	h2.Access(now, 0x10000, ClassDemand, AccessOptions{UndoSeq: 3})
	h2.RollbackAfter(2)
	if h2.L1D.Fingerprint(now) != ref {
		t.Error("intact rollback must restore the recency rank")
	}
}

// TestUndoMutationDropEvicted pins the planted cleanup-drop-evicted
// weakening: rollback of an evicting fill invalidates the way instead of
// reinstating the victim, leaving a hole where the victim was.
func TestUndoMutationDropEvicted(t *testing.T) {
	h := undoHierarchy(UndoOptions{DropEvicted: true})
	h.Access(0, 0x10000, ClassDemand, AccessOptions{})
	h.Access(200, 0x10200, ClassDemand, AccessOptions{})

	const now = 5000
	h.Access(now, 0x10400, ClassDemand, AccessOptions{UndoSeq: 3}) // evicts 0x10000
	h.RollbackAfter(2)
	if h.PresentL1(0x10400) {
		t.Error("speculative fill itself must still be undone")
	}
	if h.PresentL1(0x10000) {
		t.Error("dropped victim must NOT be reinstated under drop-evicted")
	}
	if !h.PresentL1(0x10200) {
		t.Error("uninvolved line disturbed")
	}
	// A fill into an invalid way rolls back identically to the intact
	// scheme (nothing was evicted, so there is nothing to drop).
	h.Access(now+100, 0x31000, ClassDemand, AccessOptions{UndoSeq: 5})
	h.RollbackAfter(4)
	if h.PresentL1(0x31000) {
		t.Error("invalid-way fill must be undone under drop-evicted")
	}
}

// TestUndoRandomReplacementRollback runs the eviction rollback under the
// L1 random-replacement experiment mode: whichever way the xorshift stream
// picked, the journal must reinstate that exact victim.
func TestUndoRandomReplacementRollback(t *testing.T) {
	cfg := tinyHierarchy().Config()
	cfg.L1D.RandomReplacement = true
	h := NewHierarchy(cfg)
	h.EnableUndo(UndoOptions{})

	h.Access(0, 0x10000, ClassDemand, AccessOptions{})
	h.Access(200, 0x10200, ClassDemand, AccessOptions{})
	const now = 5000
	before := printOf(h, now)

	h.Access(now, 0x10400, ClassDemand, AccessOptions{UndoSeq: 3}) // evicts a random way
	h.RollbackAfter(2)
	if got := printOf(h, now); got != before {
		t.Errorf("random-replacement rollback diverged:\nwant %+v\ngot  %+v", before, got)
	}
	if !h.PresentL1(0x10000) || !h.PresentL1(0x10200) || h.PresentL1(0x10400) {
		t.Error("wrong lines resident after random-replacement rollback")
	}
}
