package mem

import (
	"fmt"

	"doppelganger/internal/obs"
)

// Class labels the origin of an access for statistics. The hierarchy treats
// all classes identically (the paper's point: doppelganger accesses are
// ordinary accesses); the labels exist only for the Figure 8 access counts.
type Class uint8

// Access classes.
const (
	ClassDemand       Class = iota // architecturally required load/store
	ClassDoppelganger              // address-predicted preload access
	ClassPrefetch                  // stride prefetcher access
	ClassWriteback                 // committed store traffic

	numClasses
)

// String names the class for stats output.
func (c Class) String() string {
	switch c {
	case ClassDemand:
		return "demand"
	case ClassDoppelganger:
		return "doppelganger"
	case ClassPrefetch:
		return "prefetch"
	case ClassWriteback:
		return "writeback"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Level identifies where in the hierarchy a request was satisfied.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "mem"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// HierarchyConfig sizes the whole memory system. The defaults used by the
// experiments come from Table 1 of the paper (see core.DefaultConfig).
type HierarchyConfig struct {
	L1D CacheConfig
	L2  CacheConfig
	L3  CacheConfig
	// MemLatency is the additional round-trip latency of a DRAM access
	// beyond the L3 lookup, in cycles.
	MemLatency uint64
	// L1MSHRs bounds the number of outstanding L1 misses; further misses
	// are rejected and must be retried (the load stays in the queue).
	L1MSHRs int
}

// Validate checks all levels.
func (c HierarchyConfig) Validate() error {
	if err := c.L1D.Validate(); err != nil {
		return fmt.Errorf("L1D: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if err := c.L3.Validate(); err != nil {
		return fmt.Errorf("L3: %w", err)
	}
	if c.L1MSHRs <= 0 {
		return fmt.Errorf("L1MSHRs must be positive, got %d", c.L1MSHRs)
	}
	return nil
}

// mshr tracks one outstanding L1 miss. Prefetch fills are tracked so demand
// accesses can merge with them, but they do not count against the MSHR
// occupancy limit (modelling a separate prefetch queue).
type mshr struct {
	lineAddr uint64
	doneAt   uint64 // cycle at which the fill completes
	prefetch bool
}

// AccessResult describes the outcome of a memory request.
type AccessResult struct {
	// Latency is the round-trip latency in cycles (0 when Rejected or
	// DelayedMiss).
	Latency uint64
	// Level is where the request was satisfied.
	Level Level
	// Rejected means no MSHR was available; retry later.
	Rejected bool
	// DelayedMiss means a DoM speculative access missed in the L1 and was
	// therefore not performed (no state anywhere changed).
	DelayedMiss bool
	// Merged means the request hit an in-flight MSHR and shares its fill.
	Merged bool
}

// Hierarchy is the three-level cache system plus DRAM timing and L1 MSHRs.
// It is mostly-inclusive: fills insert into every level on the path.
type Hierarchy struct {
	cfg HierarchyConfig
	L1D *Cache
	L2  *Cache
	L3  *Cache

	mshrs []mshr
	// nextExpire caches the earliest doneAt among live MSHRs (^uint64(0)
	// when none), so the per-access expiry sweep is skipped until a fill
	// actually completes instead of walking the file on every request.
	nextExpire uint64

	// DRAMAccesses counts requests that reached main memory.
	DRAMAccesses uint64
	// DRAMWrites counts dirty lines written back to main memory.
	DRAMWrites uint64
	// Writebacks counts dirty-line evictions at each level (L1, L2, L3).
	Writebacks [3]uint64
	// RejectedMSHR counts requests turned away by a full MSHR file.
	RejectedMSHR uint64

	// mshrSig is a running digest of the MSHR allocation timeline: every
	// allocation folds in (cycle, line, completion, prefetch). Equal
	// digests mean the two runs' miss-handling occupancy was identical at
	// every cycle, since expiry is a deterministic function of the
	// allocations. See MSHRTimeline.
	mshrSig uint64

	// undo is the rollback journal for CleanupSpec-style undo schemes; nil
	// (the default) disables journaling entirely. See undo.go.
	undo *undoJournal

	// met holds optional live registry instruments; nil when no metrics
	// registry is attached (the default, and the zero-overhead path).
	met *hierMetrics
}

// hierMetrics caches direct instrument pointers so the Access hot path
// never performs a registry lookup. Counts accumulate in plain local
// accumulators and fold into the shared counters on FlushMetrics, so the
// hot path performs no atomic operations either.
type hierMetrics struct {
	hits   [4]*obs.Counter // satisfied at L1/L2/L3/mem
	misses [3]*obs.Counter // missed at L1/L2/L3
	hitN   [4]uint64       // pending (unflushed) hit counts
	missN  [3]uint64       // pending (unflushed) miss counts
}

// SetMetrics attaches a metrics registry: every subsequent access counts
// into sim_cache_hits_total / sim_cache_misses_total by level. Pass nil to
// detach (pending batched counts are flushed first).
func (h *Hierarchy) SetMetrics(m *obs.Metrics) {
	if m == nil {
		h.FlushMetrics()
		h.met = nil
		return
	}
	hm := &hierMetrics{}
	for lvl, name := range [...]string{"L1", "L2", "L3", "mem"} {
		hm.hits[lvl] = m.Counter("sim_cache_hits_total",
			"Memory requests satisfied at each hierarchy level.", obs.L("level", name))
	}
	for lvl, name := range [...]string{"L1", "L2", "L3"} {
		hm.misses[lvl] = m.Counter("sim_cache_misses_total",
			"Memory requests that missed at each cache level.", obs.L("level", name))
	}
	h.met = hm
}

// countAccess records a satisfied request into the live metrics, if any.
func (h *Hierarchy) countAccess(level Level) {
	hm := h.met
	if hm == nil {
		return
	}
	hm.hitN[level]++
	for l := LevelL1; l < level && int(l) < len(hm.missN); l++ {
		hm.missN[l]++
	}
}

// FlushMetrics folds the locally accumulated hit/miss counts into the
// registry counters. The core does this on every Run exit.
func (h *Hierarchy) FlushMetrics() {
	hm := h.met
	if hm == nil {
		return
	}
	for i, n := range hm.hitN {
		if n != 0 {
			hm.hits[i].Add(n)
			hm.hitN[i] = 0
		}
	}
	for i, n := range hm.missN {
		if n != 0 {
			hm.misses[i].Add(n)
			hm.missN[i] = 0
		}
	}
}

// NewHierarchy builds the memory system; invalid configuration panics.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("mem: %v", err))
	}
	return &Hierarchy{
		cfg: cfg,
		L1D: NewCache(cfg.L1D),
		L2:  NewCache(cfg.L2),
		L3:  NewCache(cfg.L3),
		// Room for the demand MSHRs plus a cushion of prefetch fills
		// (which do not count against the limit).
		mshrs:      make([]mshr, 0, cfg.L1MSHRs+16),
		nextExpire: ^uint64(0),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// expire releases MSHRs whose fills have completed by cycle now. The sweep
// only runs once the earliest outstanding fill is actually due, so the
// common hit-stream case costs a single comparison.
func (h *Hierarchy) expire(now uint64) {
	if now < h.nextExpire {
		return
	}
	live := h.mshrs[:0]
	next := ^uint64(0)
	for _, m := range h.mshrs {
		if m.doneAt > now {
			live = append(live, m)
			if m.doneAt < next {
				next = m.doneAt
			}
		}
	}
	h.mshrs = live
	h.nextExpire = next
}

// findMSHR returns the in-flight miss covering the line, if any.
func (h *Hierarchy) findMSHR(lineAddr uint64) (mshr, bool) {
	for _, m := range h.mshrs {
		if m.lineAddr == lineAddr {
			return m, true
		}
	}
	return mshr{}, false
}

// OutstandingMisses reports the number of occupied demand L1 MSHRs at cycle
// now (prefetch fills excluded, as they do not count against the limit).
func (h *Hierarchy) OutstandingMisses(now uint64) int {
	h.expire(now)
	return h.demandMSHRs()
}

func (h *Hierarchy) demandMSHRs() int {
	n := 0
	for _, m := range h.mshrs {
		if !m.prefetch {
			n++
		}
	}
	return n
}

// AccessOptions modifies how a request is performed.
type AccessOptions struct {
	// DoMSpeculative makes the access a Delay-on-Miss speculative access:
	// an L1 miss is not performed at all (DelayedMiss result), and an L1
	// hit does not update replacement state (the core applies the update
	// at commit via TouchL1).
	DoMSpeculative bool
	// NoMSHR performs the access without allocating (or being limited by)
	// an L1 MSHR. Used for committed-store traffic, which this model
	// treats as bandwidth-free.
	NoMSHR bool
	// Write marks the access as a store: the L1 line is dirtied, and its
	// eventual eviction produces write-back traffic down the hierarchy.
	Write bool
	// Prefetch marks a prefetcher-initiated fill: it is dropped if the
	// line is already resident or in flight, and its fill is tracked in a
	// mergeable but non-limiting MSHR entry (a prefetch queue).
	Prefetch bool
	// UndoSeq, when non-zero on a hierarchy with an attached rollback
	// journal (EnableUndo), tags the access with the issuing instruction's
	// sequence number: every side effect is journaled so RollbackAfter can
	// revoke it on squash and RetireUpTo can finalise it at commit.
	// Instruction sequence numbers start at 1, so zero means untagged.
	UndoSeq uint64
}

// Access performs a memory request for the line containing addr at cycle
// now. Hits and misses update the caches; misses allocate an MSHR and fill
// all levels on the path, with the fill completing only after the full miss
// latency — lookups during the fill window merge with the in-flight MSHR.
// Writes are modelled with read-for-ownership timing (write-allocate),
// which is symmetric to reads at this fidelity.
func (h *Hierarchy) Access(now, addr uint64, class Class, opts AccessOptions) AccessResult {
	la := LineAddr(addr)
	h.expire(now)

	// j is non-nil only for a tagged speculative access on a hierarchy
	// with rollback journaling enabled; every state change below then
	// records its inverse.
	j := h.undo
	seq := opts.UndoSeq
	if seq == 0 {
		j = nil
	}

	// One L1 probe serves every decision below: the old flow re-walked the
	// set up to three times (Contains, Present, Access) per request.
	set1, way1, l1 := h.L1D.findWay(la)
	usable := l1 != nil && l1.readyAt <= now

	if opts.DoMSpeculative {
		// Probe only: on miss nothing anywhere may change (that is the
		// entire DoM guarantee), on hit the replacement update is delayed.
		if usable {
			h.L1D.countHit(l1, set1, way1, class, false, j, seq)
			h.countAccess(LevelL1)
			return AccessResult{Latency: h.cfg.L1D.Latency, Level: LevelL1}
		}
		return AccessResult{DelayedMiss: true}
	}

	if opts.Prefetch && l1 != nil {
		// The line is resident or already being filled: drop the prefetch.
		return AccessResult{Rejected: true}
	}

	// Decide miss handling before counting anything, so rejected requests
	// leave no trace in the access statistics.
	if !usable {
		if m, ok := h.findMSHR(la); ok {
			// Merge with the in-flight fill.
			h.L1D.countMiss(class, j, seq)
			lat := m.doneAt - now
			if lat < h.cfg.L1D.Latency {
				lat = h.cfg.L1D.Latency
			}
			h.countAccess(LevelL2)
			return AccessResult{Latency: lat, Level: LevelL2, Merged: true}
		}
		if !opts.NoMSHR && !opts.Prefetch && h.demandMSHRs() >= h.cfg.L1MSHRs {
			h.RejectedMSHR++
			if j != nil {
				j.add(undoRec{seq: seq, kind: undoReject})
			}
			return AccessResult{Rejected: true}
		}
	}

	if usable {
		h.L1D.countHit(l1, set1, way1, class, true, j, seq)
		if opts.Write {
			if j != nil && !l1.dirty {
				j.add(undoRec{seq: seq, kind: undoDirty, c: h.L1D,
					set: int32(set1), way: int32(way1), tag: l1.tag, prev: line{dirty: false}})
			}
			l1.dirty = true
		}
		h.countAccess(LevelL1)
		return AccessResult{Latency: h.cfg.L1D.Latency, Level: LevelL1}
	}
	h.L1D.countMiss(class, j, seq)

	latency := h.cfg.L1D.Latency
	level := LevelMem
	switch {
	case h.L2.access(la, now, class, true, j, seq):
		latency += h.cfg.L2.Latency
		level = LevelL2
	case h.L3.access(la, now, class, true, j, seq):
		latency += h.cfg.L2.Latency + h.cfg.L3.Latency
		level = LevelL3
	default:
		latency += h.cfg.L2.Latency + h.cfg.L3.Latency + h.cfg.MemLatency
		h.DRAMAccesses++
		if j != nil {
			j.add(undoRec{seq: seq, kind: undoDRAM})
		}
	}

	// Fill the path (mostly-inclusive); copies become usable when the data
	// arrives at the core. Dirty victims ripple write-back traffic down.
	fillAt := now + latency
	if ev, was, dirty := h.L1D.insert(la, fillAt, j, seq); was && dirty {
		h.noteWriteback(0, false, j, seq)
		h.writebackInto(h.L2, ev, fillAt, 1, j, seq)
	}
	if level == LevelL3 || level == LevelMem {
		if ev, was, dirty := h.L2.insert(la, fillAt, j, seq); was && dirty {
			h.noteWriteback(1, false, j, seq)
			h.writebackInto(h.L3, ev, fillAt, 2, j, seq)
		}
	}
	if level == LevelMem {
		if _, was, dirty := h.L3.insert(la, fillAt, j, seq); was && dirty {
			h.noteWriteback(2, true, j, seq)
		}
	}
	if opts.Write {
		h.L1D.markDirty(la, j, seq)
	}
	if !opts.NoMSHR {
		h.mshrs = append(h.mshrs, mshr{lineAddr: la, doneAt: fillAt, prefetch: opts.Prefetch})
		if fillAt < h.nextExpire {
			h.nextExpire = fillAt
		}
		if j != nil {
			// The timeline digest cannot be unfolded, so the fold is
			// deferred: it applies when the record retires and is simply
			// dropped when the allocation is rolled back.
			j.add(undoRec{seq: seq, kind: undoMSHR,
				now: now, lineAddr: la, doneAt: fillAt, prefetch: opts.Prefetch})
		} else {
			h.noteMSHR(now, la, fillAt, opts.Prefetch)
		}
	}
	h.countAccess(level)
	return AccessResult{Latency: latency, Level: level}
}

// noteWriteback counts one dirty-line eviction at the given level (dram
// additionally counting the DRAM write), journaling the increments for a
// tagged speculative access.
func (h *Hierarchy) noteWriteback(level int, dram bool, j *undoJournal, seq uint64) {
	h.Writebacks[level]++
	if dram {
		h.DRAMWrites++
	}
	if j != nil {
		j.add(undoRec{seq: seq, kind: undoWriteback, level: uint8(level), dram: dram})
	}
}

// writebackInto deposits a dirty victim into the next level (marking it
// dirty there); if the next level misses, the line goes to memory. The
// ripple — nested inserts, their own victims, the dirty marks — journals
// under the same sequence number as the access that evicted the victim.
func (h *Hierarchy) writebackInto(next *Cache, addr, fillAt uint64, level int, j *undoJournal, seq uint64) {
	if next.Present(addr) {
		next.markDirty(addr, j, seq)
		return
	}
	if ev, was, dirty := next.insert(addr, fillAt, j, seq); was && dirty {
		if level == 1 {
			h.noteWriteback(level, false, j, seq)
			h.writebackInto(h.L3, ev, fillAt, 2, j, seq)
		} else {
			h.noteWriteback(level, true, j, seq)
		}
	}
	next.markDirty(addr, j, seq)
}

// noteMSHR folds one MSHR allocation into the timeline digest.
func (h *Hierarchy) noteMSHR(now, lineAddr, doneAt uint64, prefetch bool) {
	const prime = 1099511628211
	sig := h.mshrSig
	if sig == 0 {
		sig = 1469598103934665603
	}
	mix := func(v uint64) {
		sig ^= v
		sig *= prime
	}
	mix(now)
	mix(lineAddr)
	mix(doneAt)
	if prefetch {
		mix(1)
	} else {
		mix(2)
	}
	h.mshrSig = sig
}

// MSHRTimeline returns the MSHR allocation-timeline digest: a fingerprint
// of when every miss was allocated, which line it covered, and when its
// fill completed. An attacker co-resident on the core can observe MSHR
// occupancy through rejection back-pressure, so two runs must agree on this
// digest to be indistinguishable.
func (h *Hierarchy) MSHRTimeline() uint64 { return h.mshrSig }

// TrafficFingerprint digests the contention-observable traffic counters of
// the whole memory system: per-class access/hit/miss counts at every level,
// DRAM reads and writes, write-back traffic, and MSHR rejections.
func (h *Hierarchy) TrafficFingerprint() uint64 {
	const prime = 1099511628211
	sig := uint64(1469598103934665603)
	mix := func(v uint64) {
		sig ^= v
		sig *= prime
	}
	mix(h.L1D.StatsFingerprint())
	mix(h.L2.StatsFingerprint())
	mix(h.L3.StatsFingerprint())
	mix(h.DRAMAccesses)
	mix(h.DRAMWrites)
	for _, w := range h.Writebacks {
		mix(w)
	}
	mix(h.RejectedMSHR)
	return sig
}

// TouchL1 applies a delayed replacement update for a DoM speculative hit
// that has become non-speculative.
func (h *Hierarchy) TouchL1(addr uint64) { h.L1D.Touch(LineAddr(addr)) }

// ContainsL1 probes the L1 at cycle now without side effects.
func (h *Hierarchy) ContainsL1(addr uint64, now uint64) bool {
	return h.L1D.Contains(LineAddr(addr), now)
}

// PresentL1 reports whether the line is resident or being filled, without
// side effects (used to filter redundant prefetches).
func (h *Hierarchy) PresentL1(addr uint64) bool { return h.L1D.Present(LineAddr(addr)) }

// Invalidate removes the line from every level (external coherence
// invalidation) and reports whether any level held it.
func (h *Hierarchy) Invalidate(addr uint64) bool {
	la := LineAddr(addr)
	any := h.L1D.Invalidate(la)
	any = h.L2.Invalidate(la) || any
	return h.L3.Invalidate(la) || any
}

// ResetStats clears all statistics counters (but not cache contents), so
// warmup traffic is excluded from measurement.
func (h *Hierarchy) ResetStats() {
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.L3.ResetStats()
	h.DRAMAccesses = 0
	h.DRAMWrites = 0
	h.Writebacks = [3]uint64{}
	h.RejectedMSHR = 0
}
