package program

import (
	"testing"
	"testing/quick"

	"doppelganger/internal/isa"
)

func TestAlignAddr(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0}, {1, 0}, {7, 0}, {8, 8}, {15, 8}, {0x1001, 0x1000},
	}
	for _, c := range cases {
		if got := AlignAddr(c.in); got != c.want {
			t.Errorf("AlignAddr(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestFetchOutOfRange(t *testing.T) {
	p := NewBuilder("t").Nop().Halt().MustBuild()
	if in := p.Fetch(0); in.Op != isa.Nop {
		t.Errorf("Fetch(0) = %v", in)
	}
	if in := p.Fetch(100); in.Op != isa.Nop {
		t.Errorf("Fetch past end should read as nop, got %v", in)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Program
	}{
		{"empty", Program{Name: "e"}},
		{"entry out of range", Program{Name: "e", Code: []isa.Instruction{{Op: isa.Halt}}, Entry: 5}},
		{"bad op", Program{Name: "e", Code: []isa.Instruction{{Op: isa.Op(200)}}}},
		{"branch target out of range", Program{Name: "e", Code: []isa.Instruction{
			{Op: isa.Beq, Imm: 77}, {Op: isa.Halt}}}},
		{"negative branch target", Program{Name: "e", Code: []isa.Instruction{
			{Op: isa.Jmp, Imm: -1}, {Op: isa.Halt}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate() should fail", c.name)
		}
	}
}

func TestInterpreterArithmetic(t *testing.T) {
	b := NewBuilder("arith")
	b.LoadI(1, 6)
	b.LoadI(2, 7)
	b.Mul(3, 1, 2)   // 42
	b.AddI(3, 3, -2) // 40
	b.ShrI(4, 3, 3)  // 5
	b.Slt(5, 4, 3)   // 1
	b.Halt()
	st := Run(b.MustBuild(), 100)
	if !st.Halted {
		t.Fatal("did not halt")
	}
	if st.Regs[3] != 40 || st.Regs[4] != 5 || st.Regs[5] != 1 {
		t.Errorf("regs = %d %d %d, want 40 5 1", st.Regs[3], st.Regs[4], st.Regs[5])
	}
	if st.Insts != 7 {
		t.Errorf("executed %d instructions, want 7", st.Insts)
	}
}

func TestInterpreterMemoryAndBranches(t *testing.T) {
	b := NewBuilder("membr")
	b.InitMem(0x100, 11)
	b.InitMem(0x108, 22)
	b.LoadI(1, 0x100)
	b.Load(2, 1, 0) // 11
	b.Load(3, 1, 8) // 22
	b.Add(4, 2, 3)  // 33
	b.Store(4, 1, 16)
	taken := b.NewLabel()
	b.Blt(2, 3, taken)
	b.LoadI(5, 999) // skipped
	b.Bind(taken)
	b.Halt()
	st := Run(b.MustBuild(), 100)
	if st.ReadMem(0x110) != 33 {
		t.Errorf("mem[0x110] = %d, want 33", st.ReadMem(0x110))
	}
	if st.Regs[5] == 999 {
		t.Error("branch not taken: r5 overwritten")
	}
	if st.Loads != 2 || st.Stores != 1 {
		t.Errorf("loads=%d stores=%d, want 2/1", st.Loads, st.Stores)
	}
}

func TestInterpreterLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.LoadI(1, 0)
	b.LoadI(2, 10)
	b.LoadI(3, 0)
	loop := b.Here()
	b.Add(3, 3, 1)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Halt()
	st := Run(b.MustBuild(), 1000)
	if st.Regs[3] != 45 {
		t.Errorf("sum 0..9 = %d, want 45", st.Regs[3])
	}
}

func TestRunInstructionBudget(t *testing.T) {
	b := NewBuilder("inf")
	l := b.Here()
	b.Jmp(l)
	b.Halt()
	st := Run(b.MustBuild(), 50)
	if st.Halted {
		t.Error("infinite loop should not halt")
	}
	if st.Insts != 50 {
		t.Errorf("executed %d instructions, want 50 (budget)", st.Insts)
	}
}

func TestStepAfterHaltIsNoop(t *testing.T) {
	p := NewBuilder("h").Halt().MustBuild()
	st := NewArchState(p)
	st.Step(p)
	before := *st
	st.Step(p)
	if st.Insts != before.Insts || !st.Halted {
		t.Error("stepping a halted machine should not change state")
	}
}

func TestChecksumDistinguishesStates(t *testing.T) {
	p := NewBuilder("c").Halt().MustBuild()
	a := NewArchState(p)
	b := NewArchState(p)
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical states must have identical checksums")
	}
	b.Regs[7] = 1
	if a.Checksum() == b.Checksum() {
		t.Error("register change not reflected in checksum")
	}
	b.Regs[7] = 0
	b.WriteMem(0x40, 9)
	if a.Checksum() == b.Checksum() {
		t.Error("memory change not reflected in checksum")
	}
}

// Property: the checksum ignores zero-valued memory entries, so writing an
// explicit zero is indistinguishable from an absent entry.
func TestChecksumZeroMemory(t *testing.T) {
	f := func(addr uint64) bool {
		p := NewBuilder("z").Halt().MustBuild()
		a := NewArchState(p)
		b := NewArchState(p)
		b.WriteMem(addr, 0)
		return a.Checksum() == b.Checksum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interpreter memory ops round-trip through alignment.
func TestMemRoundTrip(t *testing.T) {
	f := func(addr uint64, v int64) bool {
		p := NewBuilder("rt").Halt().MustBuild()
		st := NewArchState(p)
		st.WriteMem(addr, v)
		return st.ReadMem(addr) == v && st.ReadMem(AlignAddr(addr)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
