package program

import (
	"fmt"

	"doppelganger/internal/isa"
)

// Region is a half-open byte range [Base, Base+Len) of data memory. Regions
// label memory that holds secrets: the contract oracle treats the initial
// contents of every labeled word as secret and tracks how secrets flow
// through architectural execution.
type Region struct {
	Base uint64
	Len  uint64
}

// Contains reports whether the (aligned) word at addr overlaps the region.
func (r Region) Contains(addr uint64) bool {
	a := AlignAddr(addr)
	return a+WordSize > r.Base && a < r.Base+r.Len
}

// String renders the region as [base,base+len).
func (r Region) String() string {
	return fmt.Sprintf("[0x%x,0x%x)", r.Base, r.Base+r.Len)
}

// TaintState is the result of running the taint-tracking reference
// interpreter: the final architectural state plus, for every register and
// memory word, whether its value is secret-derived. Taint seeds from the
// program's Secrets regions and propagates through data flow: an ALU result
// is tainted when any source is, a load result when the loaded word or the
// address register is, a stored word when the stored value or the address
// register is. Overwriting a word with a public value clears its taint
// (declassification by overwrite, as in ProSpeCT).
type TaintState struct {
	Arch *ArchState
	// RegTaint[i] is true when register i's final value is secret-derived.
	RegTaint [isa.NumRegs]bool
	// MemTaint holds the (aligned) addresses of secret-derived words.
	MemTaint map[uint64]bool
	// BranchOnSecret is set when any committed branch predicate read a
	// tainted register: the program's architectural control flow depends on
	// a secret, so it is not constant-time.
	BranchOnSecret bool
	// AddrOnSecret is set when any committed load or store computed its
	// address from a tainted register: the program's architectural memory
	// trace depends on a secret.
	AddrOnSecret bool
}

// ConstantTime reports whether architectural control flow and the
// architectural memory-address trace are independent of the labeled
// secrets — the classic constant-time programming discipline.
func (t *TaintState) ConstantTime() bool {
	return !t.BranchOnSecret && !t.AddrOnSecret
}

// RunTainted executes the program functionally until Halt or maxInsts
// instructions — like Run — while tracking secret taint from the program's
// Secrets labels.
func RunTainted(p *Program, maxInsts uint64) *TaintState {
	t := &TaintState{
		Arch:     NewArchState(p),
		MemTaint: make(map[uint64]bool, len(p.Secrets)),
	}
	for _, r := range p.Secrets {
		for a := AlignAddr(r.Base); a < r.Base+r.Len; a += WordSize {
			t.MemTaint[a] = true
		}
	}
	st := t.Arch
	for !st.Halted && st.Insts < maxInsts {
		in := p.Fetch(st.PC)
		srcs, n := in.Sources()
		var srcTaint bool
		for i := 0; i < n; i++ {
			srcTaint = srcTaint || t.RegTaint[srcs[i]]
		}
		switch in.Op.Kind() {
		case isa.KindALU:
			t.RegTaint[in.Dst] = srcTaint
		case isa.KindLoad:
			addr := AlignAddr(uint64(st.Regs[in.Src1] + in.Imm))
			if t.RegTaint[in.Src1] {
				t.AddrOnSecret = true
			}
			t.RegTaint[in.Dst] = t.MemTaint[addr] || t.RegTaint[in.Src1]
		case isa.KindStore:
			addr := AlignAddr(uint64(st.Regs[in.Src1] + in.Imm))
			if t.RegTaint[in.Src1] {
				t.AddrOnSecret = true
			}
			if w := t.RegTaint[in.Src2] || t.RegTaint[in.Src1]; w {
				t.MemTaint[addr] = true
			} else {
				delete(t.MemTaint, addr)
			}
		case isa.KindBranch:
			if srcTaint {
				t.BranchOnSecret = true
			}
		}
		st.Step(p)
	}
	return t
}

// PubChecksum digests the final architectural state visible to an observer
// who cannot read secrets: the same order-independent FNV fold as
// ArchState.Checksum, but skipping every tainted register and memory word.
// Two runs of a program that differ only in labeled secret values produce
// equal PubChecksums exactly when no secret leaked into public
// architectural state.
func (t *TaintState) PubChecksum() uint64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	mix := func(h, v uint64) uint64 {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
		return h
	}
	h := uint64(offset)
	for i, v := range t.Arch.Regs {
		if t.RegTaint[i] {
			continue
		}
		h = mix(h, uint64(i))
		h = mix(h, uint64(v))
	}
	var memSum uint64
	for a, v := range t.Arch.Mem {
		if v == 0 || t.MemTaint[a] {
			continue
		}
		memSum += mix(mix(offset, a), uint64(v))
	}
	return mix(h, memSum)
}
