package program

import (
	"testing"

	"doppelganger/internal/isa"
)

func TestBuilderForwardLabels(t *testing.T) {
	b := NewBuilder("fwd")
	end := b.NewLabel()
	b.LoadI(1, 1)
	b.Jmp(end)
	b.LoadI(1, 2) // skipped
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()
	st := Run(p, 100)
	if st.Regs[1] != 1 {
		t.Errorf("r1 = %d, want 1 (jump skipped the overwrite)", st.Regs[1])
	}
	if p.Code[1].Op != isa.Jmp || p.Code[1].Imm != 3 {
		t.Errorf("jump not fixed up: %v", p.Code[1])
	}
}

func TestBuilderBackwardLabels(t *testing.T) {
	b := NewBuilder("bwd")
	b.LoadI(1, 0)
	b.LoadI(2, 3)
	loop := b.Here()
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Halt()
	st := Run(b.MustBuild(), 100)
	if st.Regs[1] != 3 {
		t.Errorf("r1 = %d, want 3", st.Regs[1])
	}
}

func TestBuilderUnboundLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with unbound label should panic")
		}
	}()
	b := NewBuilder("ub")
	l := b.NewLabel()
	b.Jmp(l)
	b.Halt()
	b.Build() //nolint:errcheck // panics before returning
}

func TestBuilderDoubleBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double Bind should panic")
		}
	}()
	b := NewBuilder("db")
	l := b.NewLabel()
	b.Bind(l)
	b.Bind(l)
}

func TestBuilderInitState(t *testing.T) {
	b := NewBuilder("init")
	b.InitReg(5, -42)
	b.InitMem(0x1001, 7) // misaligned: stored at 0x1000
	b.InitWords(0x2000, []int64{1, 2, 3})
	b.Halt()
	p := b.MustBuild()
	if p.InitRegs[5] != -42 {
		t.Errorf("InitRegs[5] = %d", p.InitRegs[5])
	}
	if p.InitMem[0x1000] != 7 {
		t.Errorf("InitMem[0x1000] = %d, want 7 (aligned down)", p.InitMem[0x1000])
	}
	for i, want := range []int64{1, 2, 3} {
		if got := p.InitMem[0x2000+uint64(i)*8]; got != want {
			t.Errorf("InitWords[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestBuilderAllOps(t *testing.T) {
	b := NewBuilder("ops")
	l := b.NewLabel()
	b.Nop().LoadI(1, 5).Add(2, 1, 1).Sub(3, 2, 1).Mul(4, 2, 2).Div(5, 4, 1)
	b.Xor(6, 4, 5).And(7, 4, 5).Or(8, 4, 5).Slt(9, 1, 2)
	b.AddI(10, 1, 1).MulI(11, 1, 2).AndI(12, 4, 3).ShlI(13, 1, 1).ShrI(14, 4, 1)
	b.Load(15, 1, 0).Store(15, 1, 8)
	b.Beq(1, 1, l).Bne(1, 2, l).Blt(1, 2, l).Bge(2, 1, l)
	b.Bind(l)
	b.Jmp(b.Here())
	_ = b.PC()
	b.Halt()
	if _, err := b.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
}
