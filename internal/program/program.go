// Package program represents executable programs for the simulator: the
// static instruction stream, initial architectural state, and a functional
// reference interpreter used as the correctness oracle for the out-of-order
// pipeline.
package program

import (
	"fmt"

	"doppelganger/internal/isa"
)

// WordSize is the memory access granularity in bytes. All loads and stores
// operate on naturally aligned 64-bit words; effective addresses are aligned
// down to a word boundary, mirroring the aligned accesses the workloads emit.
const WordSize = 8

// AlignAddr aligns a byte address down to a word boundary.
func AlignAddr(addr uint64) uint64 { return addr &^ (WordSize - 1) }

// Program is a static instruction stream plus initial state. The zero value
// is an empty program; use Builder or Assemble to construct one.
type Program struct {
	// Code is the instruction memory, indexed by PC.
	Code []isa.Instruction
	// Entry is the initial program counter.
	Entry uint64
	// InitRegs holds initial architectural register values.
	InitRegs [isa.NumRegs]int64
	// InitMem is the initial data memory image (word-aligned byte address
	// to 64-bit value).
	InitMem map[uint64]int64
	// Secrets labels the memory regions whose initial contents are secret.
	// The contract oracle (sim.Observe, internal/leakcheck) seeds taint
	// tracking from these labels; execution is unaffected.
	Secrets []Region
	// Name labels the program in statistics output.
	Name string
}

// Fetch returns the instruction at pc. PCs outside the code region read as
// Nop, so wrong-path fetch beyond the program end is harmless (the real
// machine would fetch whatever bytes are there; Nops keep the model simple
// without hiding any mechanism under study).
func (p *Program) Fetch(pc uint64) isa.Instruction {
	if pc < uint64(len(p.Code)) {
		return p.Code[pc]
	}
	return isa.Instruction{Op: isa.Nop}
}

// Validate checks static well-formedness: defined opcodes, in-range
// registers, and branch targets inside the code region.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q: empty code", p.Name)
	}
	if p.Entry >= uint64(len(p.Code)) {
		return fmt.Errorf("program %q: entry %d outside code (len %d)", p.Name, p.Entry, len(p.Code))
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("program %q pc=%d: invalid op %d", p.Name, pc, uint8(in.Op))
		}
		if in.HasDst() && !in.Dst.Valid() {
			return fmt.Errorf("program %q pc=%d: invalid dst %d", p.Name, pc, uint8(in.Dst))
		}
		srcs, n := in.Sources()
		for i := 0; i < n; i++ {
			if !srcs[i].Valid() {
				return fmt.Errorf("program %q pc=%d: invalid src %d", p.Name, pc, uint8(srcs[i]))
			}
		}
		if in.IsBranch() {
			if in.Imm < 0 || in.Imm >= int64(len(p.Code)) {
				return fmt.Errorf("program %q pc=%d: branch target %d outside code (len %d)",
					p.Name, pc, in.Imm, len(p.Code))
			}
		}
	}
	return nil
}

// ArchState is the architectural machine state evolved by the reference
// interpreter (and reached by the pipeline at commit).
type ArchState struct {
	Regs [isa.NumRegs]int64
	Mem  map[uint64]int64
	PC   uint64
	// Halted is set once a Halt instruction has been executed.
	Halted bool
	// Insts counts architecturally executed (committed) instructions,
	// including the Halt itself.
	Insts uint64
	// Loads and Stores count architecturally executed memory operations.
	Loads  uint64
	Stores uint64
}

// NewArchState initialises architectural state from the program image.
func NewArchState(p *Program) *ArchState {
	st := &ArchState{
		Mem: make(map[uint64]int64, len(p.InitMem)),
		PC:  p.Entry,
	}
	st.Regs = p.InitRegs
	for a, v := range p.InitMem {
		st.Mem[AlignAddr(a)] = v
	}
	return st
}

// ReadMem returns the word at the (aligned) address; absent addresses read
// as zero, matching zero-initialised memory.
func (st *ArchState) ReadMem(addr uint64) int64 { return st.Mem[AlignAddr(addr)] }

// WriteMem stores the word at the (aligned) address.
func (st *ArchState) WriteMem(addr uint64, v int64) { st.Mem[AlignAddr(addr)] = v }

// Step executes one instruction, updating state. It returns the executed
// instruction. Stepping a halted machine is a no-op.
func (st *ArchState) Step(p *Program) isa.Instruction {
	if st.Halted {
		return isa.Instruction{Op: isa.Halt}
	}
	in := p.Fetch(st.PC)
	next := st.PC + 1
	switch in.Op.Kind() {
	case isa.KindNop:
	case isa.KindALU:
		a := st.Regs[in.Src1]
		b := st.Regs[in.Src2]
		st.Regs[in.Dst] = isa.EvalALU(in.Op, a, b, in.Imm)
	case isa.KindLoad:
		addr := uint64(st.Regs[in.Src1] + in.Imm)
		st.Regs[in.Dst] = st.ReadMem(addr)
		st.Loads++
	case isa.KindStore:
		addr := uint64(st.Regs[in.Src1] + in.Imm)
		st.WriteMem(addr, st.Regs[in.Src2])
		st.Stores++
	case isa.KindBranch:
		if isa.BranchTaken(in.Op, st.Regs[in.Src1], st.Regs[in.Src2]) {
			next = uint64(in.Imm)
		}
	case isa.KindJump:
		next = uint64(in.Imm)
	case isa.KindHalt:
		st.Halted = true
	}
	st.PC = next
	st.Insts++
	return in
}

// Run executes the program functionally until Halt or maxInsts instructions,
// whichever comes first, and returns the final state.
func Run(p *Program, maxInsts uint64) *ArchState {
	st := NewArchState(p)
	for !st.Halted && st.Insts < maxInsts {
		st.Step(p)
	}
	return st
}

// Checksum produces an order-independent digest of registers and memory,
// used to compare pipeline results against the reference interpreter.
func (st *ArchState) Checksum() uint64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	mix := func(h, v uint64) uint64 {
		// FNV-style mix of each 64-bit quantity.
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
		return h
	}
	h := uint64(offset)
	for i, v := range st.Regs {
		h = mix(h, uint64(i))
		h = mix(h, uint64(v))
	}
	// Memory is summed commutatively so map iteration order is irrelevant.
	var memSum uint64
	for a, v := range st.Mem {
		if v == 0 {
			continue // zero values are indistinguishable from absent entries
		}
		memSum += mix(mix(offset, a), uint64(v))
	}
	return mix(h, memSum)
}
