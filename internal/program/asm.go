package program

import (
	"fmt"
	"strconv"
	"strings"

	"doppelganger/internal/isa"
)

// Assemble parses a textual assembly listing into a Program. The syntax is
// line-oriented:
//
//	; comment (also "#")
//	.entry label            ; optional, defaults to first instruction
//	.reg r4 = 100           ; initial register value
//	.mem 0x1000 = 42        ; initial memory word
//	label:
//	    loadi r1, 7
//	    add   r3, r1, r2
//	    addi  r3, r1, 4
//	    load  r2, [r1+8]
//	    store r2, [r1-8]
//	    bne   r1, r2, label
//	    jmp   label
//	    halt
//
// Numbers may be decimal or 0x-hex, optionally negative.
func Assemble(name, src string) (*Program, error) {
	a := &assembler{
		name:   name,
		labels: make(map[string]int),
		mem:    make(map[uint64]int64),
		entry:  "",
	}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
		}
	}
	return a.finish()
}

// MustAssemble is Assemble that panics on error, for tests and examples.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type asmFixup struct {
	pc    int
	label string
	line  string
}

type assembler struct {
	name   string
	code   []isa.Instruction
	labels map[string]int
	fixups []asmFixup
	regs   [isa.NumRegs]int64
	mem    map[uint64]int64
	entry  string
}

func (a *assembler) line(raw string) error {
	line := raw
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Labels, possibly followed by an instruction on the same line.
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(line[:i])
		if !isIdent(label) {
			return fmt.Errorf("invalid label %q", label)
		}
		if _, dup := a.labels[label]; dup {
			return fmt.Errorf("duplicate label %q", label)
		}
		a.labels[label] = len(a.code)
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.instruction(line)
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".entry":
		if len(fields) != 2 {
			return fmt.Errorf(".entry wants a label: %q", line)
		}
		a.entry = fields[1]
		return nil
	case ".reg":
		// .reg rN = value
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".reg"))
		lhs, rhs, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf(".reg wants 'rN = value': %q", line)
		}
		r, err := parseReg(strings.TrimSpace(lhs))
		if err != nil {
			return err
		}
		v, err := parseInt(strings.TrimSpace(rhs))
		if err != nil {
			return err
		}
		a.regs[r] = v
		return nil
	case ".mem":
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".mem"))
		lhs, rhs, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf(".mem wants 'addr = value': %q", line)
		}
		addr, err := parseInt(strings.TrimSpace(lhs))
		if err != nil {
			return err
		}
		v, err := parseInt(strings.TrimSpace(rhs))
		if err != nil {
			return err
		}
		a.mem[AlignAddr(uint64(addr))] = v
		return nil
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

var threeRegOps = map[string]isa.Op{
	"add": isa.Add, "sub": isa.Sub, "mul": isa.Mul, "div": isa.Div,
	"and": isa.And, "or": isa.Or, "xor": isa.Xor,
	"shl": isa.Shl, "shr": isa.Shr, "slt": isa.Slt,
}

var regImmOps = map[string]isa.Op{
	"addi": isa.AddI, "muli": isa.MulI, "andi": isa.AndI,
	"shli": isa.ShlI, "shri": isa.ShrI,
}

var branchOps = map[string]isa.Op{
	"beq": isa.Beq, "bne": isa.Bne, "blt": isa.Blt, "bge": isa.Bge,
}

func (a *assembler) instruction(line string) error {
	mnem, rest, _ := strings.Cut(line, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	args := splitArgs(rest)
	emit := func(in isa.Instruction) { a.code = append(a.code, in) }

	switch {
	case mnem == "nop":
		if len(args) != 0 {
			return fmt.Errorf("nop takes no operands: %q", line)
		}
		emit(isa.Instruction{Op: isa.Nop})
	case mnem == "halt":
		if len(args) != 0 {
			return fmt.Errorf("halt takes no operands: %q", line)
		}
		emit(isa.Instruction{Op: isa.Halt})
	case mnem == "loadi":
		if len(args) != 2 {
			return fmt.Errorf("loadi wants 2 operands: %q", line)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseInt(args[1])
		if err != nil {
			return err
		}
		emit(isa.Instruction{Op: isa.LoadI, Dst: dst, Imm: imm})
	case mnem == "load":
		if len(args) != 2 {
			return fmt.Errorf("load wants 'dst, [base+off]': %q", line)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		emit(isa.Instruction{Op: isa.Load, Dst: dst, Src1: base, Imm: off})
	case mnem == "store":
		if len(args) != 2 {
			return fmt.Errorf("store wants 'src, [base+off]': %q", line)
		}
		src, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		emit(isa.Instruction{Op: isa.Store, Src1: base, Src2: src, Imm: off})
	case mnem == "jmp":
		if len(args) != 1 || !isIdent(args[0]) {
			return fmt.Errorf("jmp wants a label: %q", line)
		}
		a.fixups = append(a.fixups, asmFixup{pc: len(a.code), label: args[0], line: line})
		emit(isa.Instruction{Op: isa.Jmp})
	default:
		if op, ok := threeRegOps[mnem]; ok {
			if len(args) != 3 {
				return fmt.Errorf("%s wants 3 registers: %q", mnem, line)
			}
			dst, err := parseReg(args[0])
			if err != nil {
				return err
			}
			s1, err := parseReg(args[1])
			if err != nil {
				return err
			}
			s2, err := parseReg(args[2])
			if err != nil {
				return err
			}
			emit(isa.Instruction{Op: op, Dst: dst, Src1: s1, Src2: s2})
			return nil
		}
		if op, ok := regImmOps[mnem]; ok {
			if len(args) != 3 {
				return fmt.Errorf("%s wants 'dst, src, imm': %q", mnem, line)
			}
			dst, err := parseReg(args[0])
			if err != nil {
				return err
			}
			s1, err := parseReg(args[1])
			if err != nil {
				return err
			}
			imm, err := parseInt(args[2])
			if err != nil {
				return err
			}
			emit(isa.Instruction{Op: op, Dst: dst, Src1: s1, Imm: imm})
			return nil
		}
		if op, ok := branchOps[mnem]; ok {
			if len(args) != 3 || !isIdent(args[2]) {
				return fmt.Errorf("%s wants 'r1, r2, label': %q", mnem, line)
			}
			s1, err := parseReg(args[0])
			if err != nil {
				return err
			}
			s2, err := parseReg(args[1])
			if err != nil {
				return err
			}
			a.fixups = append(a.fixups, asmFixup{pc: len(a.code), label: args[2], line: line})
			emit(isa.Instruction{Op: op, Src1: s1, Src2: s2})
			return nil
		}
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return nil
}

func (a *assembler) finish() (*Program, error) {
	for _, f := range a.fixups {
		pc, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("%s: undefined label %q in %q", a.name, f.label, f.line)
		}
		a.code[f.pc].Imm = int64(pc)
	}
	var entry uint64
	if a.entry != "" {
		pc, ok := a.labels[a.entry]
		if !ok {
			return nil, fmt.Errorf("%s: undefined .entry label %q", a.name, a.entry)
		}
		entry = uint64(pc)
	}
	p := &Program{
		Code:     a.code,
		Entry:    entry,
		InitRegs: a.regs,
		InitMem:  a.mem,
		Name:     a.name,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (isa.Reg, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("invalid register %q", s)
	}
	return isa.Reg(n), nil
}

func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow large unsigned hex addresses.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("invalid integer %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMemOperand parses "[base+off]", "[base-off]", or "[base]".
func parseMemOperand(s string) (isa.Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("invalid memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	// Accept whitespace around the sign: "[r1 - 16]".
	offStr := strings.ReplaceAll(inner[sep:], " ", "")
	offStr = strings.ReplaceAll(offStr, "\t", "")
	off, err := parseInt(strings.TrimPrefix(offStr, "+"))
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
