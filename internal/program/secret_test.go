package program

import (
	"testing"

	"doppelganger/internal/isa"
)

const (
	secAddr = uint64(0x1000)
	pubAddr = uint64(0x2000)
	outAddr = uint64(0x3000)
)

// buildLeakProg builds a program that loads a secret and a public word, and
// optionally copies the secret to outAddr.
func buildLeakProg(secret int64, leak bool) *Program {
	b := NewBuilder("taint-test")
	b.SecretWord(secAddr, secret)
	b.InitMem(pubAddr, 7)
	b.LoadI(1, int64(secAddr))
	b.Load(2, 1, 0) // r2 = secret
	b.LoadI(3, int64(pubAddr))
	b.Load(4, 3, 0) // r4 = public
	b.AddI(5, 4, 1) // r5 = public+1
	b.LoadI(6, int64(outAddr))
	if leak {
		b.Store(2, 6, 0) // mem[out] = secret
	} else {
		b.Store(5, 6, 0) // mem[out] = public+1
	}
	b.Halt()
	return b.MustBuild()
}

func TestTaintPropagation(t *testing.T) {
	ts := RunTainted(buildLeakProg(42, true), 1<<20)
	if !ts.Arch.Halted {
		t.Fatal("program did not halt")
	}
	if !ts.RegTaint[2] {
		t.Error("r2 holds the secret but is untainted")
	}
	if ts.RegTaint[4] || ts.RegTaint[5] {
		t.Error("public loads tainted")
	}
	if !ts.MemTaint[outAddr] {
		t.Error("secret stored to outAddr but word untainted")
	}
	if !ts.MemTaint[secAddr] {
		t.Error("labeled secret word lost its taint")
	}
	if ts.BranchOnSecret || ts.AddrOnSecret {
		t.Error("straight-line data copy flagged as non-constant-time")
	}
	if !ts.ConstantTime() {
		t.Error("ConstantTime false for straight-line program")
	}
}

// PubChecksum must be secret-independent exactly when no secret reaches
// public state.
func TestPubChecksumSecretIndependence(t *testing.T) {
	cleanA := RunTainted(buildLeakProg(42, false), 1<<20)
	cleanB := RunTainted(buildLeakProg(99, false), 1<<20)
	if cleanA.PubChecksum() != cleanB.PubChecksum() {
		t.Error("PubChecksum differs across secrets with no architectural leak")
	}
	// The full checksum must still differ (the secret word itself differs).
	if cleanA.Arch.Checksum() == cleanB.Arch.Checksum() {
		t.Error("full Checksum identical across different secrets — test is vacuous")
	}

	leakA := RunTainted(buildLeakProg(42, true), 1<<20)
	leakB := RunTainted(buildLeakProg(99, true), 1<<20)
	// The leaked copy is tainted, so PubChecksum stays equal — the taint
	// tracker correctly classifies the copy as secret-derived...
	if leakA.PubChecksum() != leakB.PubChecksum() {
		t.Error("tainted copy included in PubChecksum")
	}
	// ...and MemTaint records where it went.
	if !leakA.MemTaint[outAddr] {
		t.Error("leak destination not tainted")
	}
}

// Overwriting a tainted word with a public value declassifies it.
func TestDeclassifyByOverwrite(t *testing.T) {
	b := NewBuilder("declassify")
	b.SecretWord(secAddr, 5)
	b.LoadI(1, int64(secAddr))
	b.Load(2, 1, 0)  // r2 = secret
	b.LoadI(3, 1234) // public constant
	b.Store(3, 1, 0) // overwrite the secret word with a public value
	b.LoadI(2, 0)    // overwrite the secret register too
	b.Halt()
	p := b.MustBuild()
	ts := RunTainted(p, 1<<20)
	if ts.MemTaint[secAddr] {
		t.Error("public overwrite did not clear word taint")
	}
	if ts.RegTaint[2] {
		t.Error("LoadI did not clear register taint")
	}
	if len(ts.MemTaint) != 0 {
		t.Errorf("residual taint: %v", ts.MemTaint)
	}
}

// Branching on a secret and addressing by a secret must set the
// constant-time violation flags.
func TestNonConstantTimeFlags(t *testing.T) {
	b := NewBuilder("branch-on-secret")
	b.SecretWord(secAddr, 1)
	b.LoadI(1, int64(secAddr))
	b.Load(2, 1, 0)
	b.LoadI(3, 0)
	done := b.NewLabel()
	b.Beq(2, 3, done)
	b.AddI(3, 3, 1)
	b.Bind(done)
	b.Halt()
	ts := RunTainted(b.MustBuild(), 1<<20)
	if !ts.BranchOnSecret {
		t.Error("branch on secret not flagged")
	}
	if ts.ConstantTime() {
		t.Error("ConstantTime true despite secret branch")
	}

	b2 := NewBuilder("addr-on-secret")
	b2.SecretWord(secAddr, 8)
	b2.LoadI(1, int64(secAddr))
	b2.Load(2, 1, 0)
	b2.Load(3, 2, int64(pubAddr)) // address = pub + secret
	b2.Halt()
	ts2 := RunTainted(b2.MustBuild(), 1<<20)
	if !ts2.AddrOnSecret {
		t.Error("secret-indexed load not flagged")
	}
}

// RunTainted's architectural state must match the plain interpreter.
func TestRunTaintedMatchesRun(t *testing.T) {
	p := buildLeakProg(42, true)
	ref := Run(p, 1<<20)
	ts := RunTainted(p, 1<<20)
	if ref.Checksum() != ts.Arch.Checksum() {
		t.Error("RunTainted architectural state diverges from Run")
	}
	if ref.Insts != ts.Arch.Insts {
		t.Errorf("Insts mismatch: %d vs %d", ref.Insts, ts.Arch.Insts)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x100, Len: 16}
	for _, tc := range []struct {
		addr uint64
		want bool
	}{
		{0x0f8, false}, {0x100, true}, {0x108, true}, {0x110, false},
		{0x104, true}, // unaligned address inside the region
	} {
		if got := r.Contains(tc.addr); got != tc.want {
			t.Errorf("Contains(0x%x) = %v, want %v", tc.addr, got, tc.want)
		}
	}
	if isa.NumRegs < 8 {
		t.Fatal("tests assume at least 8 registers")
	}
}
