package program

import (
	"strings"
	"testing"

	"doppelganger/internal/isa"
)

const sumSource = `
; sum the numbers 1..5
.reg r2 = 5
.mem 0x100 = 77
        loadi r1, 0     ; counter
        loadi r3, 0     # acc (hash comments too)
loop:   addi  r1, r1, 1
        add   r3, r3, r1
        blt   r1, r2, loop
        loadi r4, 0x100
        load  r5, [r4]
        store r3, [r4+8]
        halt
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble("sum", sumSource)
	if err != nil {
		t.Fatal(err)
	}
	st := Run(p, 1000)
	if !st.Halted {
		t.Fatal("did not halt")
	}
	if st.Regs[3] != 15 {
		t.Errorf("r3 = %d, want 15", st.Regs[3])
	}
	if st.Regs[5] != 77 {
		t.Errorf("r5 = %d, want 77 (from .mem)", st.Regs[5])
	}
	if st.ReadMem(0x108) != 15 {
		t.Errorf("mem[0x108] = %d, want 15", st.ReadMem(0x108))
	}
}

func TestAssembleEveryMnemonic(t *testing.T) {
	src := `
start:  nop
        loadi r1, 2
        loadi r2, 3
        add  r3, r1, r2
        sub  r3, r3, r1
        mul  r3, r3, r2
        div  r3, r3, r1
        and  r4, r3, r1
        or   r4, r4, r2
        xor  r4, r4, r1
        shl  r5, r1, r2
        shr  r5, r5, r1
        slt  r6, r1, r2
        addi r7, r1, 1
        muli r7, r7, 2
        andi r7, r7, 0xff
        shli r7, r7, 1
        shri r7, r7, 1
        load r8, [r1+0x10]
        load r9, [r1]
        store r8, [r1-8]
        beq  r1, r1, next
next:   bne  r1, r2, n2
n2:     blt  r1, r2, n3
n3:     bge  r2, r1, n4
n4:     jmp  end
        nop
end:    halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	if st := Run(p, 1000); !st.Halted {
		t.Error("did not halt")
	}
}

func TestAssembleEntryDirective(t *testing.T) {
	src := `
dead:   loadi r1, 99
        halt
.entry main
main:   loadi r1, 1
        halt
`
	p, err := Assemble("entry", src)
	if err != nil {
		t.Fatal(err)
	}
	st := Run(p, 10)
	if st.Regs[1] != 1 {
		t.Errorf("r1 = %d, want 1 (entry skipped dead code)", st.Regs[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "frob r1, r2, r3\nhalt", "unknown mnemonic"},
		{"bad register", "loadi r99, 1\nhalt", "invalid register"},
		{"bad operand count", "add r1, r2\nhalt", "wants 3 registers"},
		{"undefined label", "jmp nowhere\nhalt", "undefined label"},
		{"duplicate label", "a:\na:\nhalt", "duplicate label"},
		{"bad memory operand", "load r1, r2\nhalt", "invalid memory operand"},
		{"bad directive", ".frob 1\nhalt", "unknown directive"},
		{"bad integer", "loadi r1, xyz\nhalt", "invalid integer"},
		{"bad entry", ".entry nowhere\nhalt", "undefined .entry"},
		{"reg wants equals", ".reg r1 5\nhalt", ".reg wants"},
		{"branch wants label", "beq r1, r2, 5\nhalt", "wants 'r1, r2, label'"},
	}
	for _, c := range cases {
		_, err := Assemble(c.name, c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestAssembleNegativeOffsets(t *testing.T) {
	p, err := Assemble("neg", "loadi r1, 0x20\nload r2, [r1-8]\nstore r2, [r1 - 16]\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Imm != -8 {
		t.Errorf("offset = %d, want -8", p.Code[1].Imm)
	}
	if p.Code[2].Imm != -16 {
		t.Errorf("offset = %d, want -16", p.Code[2].Imm)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bad", "frob\nhalt")
}

// Assembled text and builder output must agree for equivalent programs.
func TestAssemblerBuilderEquivalence(t *testing.T) {
	src := `
        loadi r1, 10
        loadi r2, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r3, loop
        halt
`
	asm := MustAssemble("a", src)

	b := NewBuilder("b")
	b.LoadI(1, 10)
	b.LoadI(2, 0)
	loop := b.Here()
	b.Add(2, 2, 1)
	b.AddI(1, 1, -1)
	b.Bne(1, 3, loop)
	b.Halt()
	built := b.MustBuild()

	sa := Run(asm, 1000)
	sb := Run(built, 1000)
	if sa.Checksum() != sb.Checksum() {
		t.Error("assembler and builder produced different behaviour")
	}
	if len(asm.Code) != len(built.Code) {
		t.Errorf("code lengths differ: %d vs %d", len(asm.Code), len(built.Code))
	}
	for i := range asm.Code {
		if asm.Code[i] != built.Code[i] {
			t.Errorf("instruction %d differs: %v vs %v", i, asm.Code[i], built.Code[i])
		}
	}
	_ = isa.NumRegs
}
