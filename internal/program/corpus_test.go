package program_test

import (
	"os"
	"path/filepath"
	"testing"

	"doppelganger/internal/program"
)

// TestAssemblyCorpus assembles and functionally runs every .asm file
// shipped under examples/asm, pinning their architectural results.
func TestAssemblyCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "asm")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("corpus directory unavailable: %v", err)
	}
	expected := map[string]struct {
		addr uint64
		want int64
	}{
		"fib.asm":    {0x1000, 832040}, // fib(30)
		"memcpy.asm": {0x6000, 66},     // 11+22+33
		"chase.asm":  {0x2000, 5},      // five hops
	}
	seen := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".asm" {
			continue
		}
		seen++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := program.Assemble(e.Name(), string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		st := program.Run(p, 10_000_000)
		if !st.Halted {
			t.Errorf("%s: did not halt", e.Name())
			continue
		}
		if exp, ok := expected[e.Name()]; ok {
			if got := st.ReadMem(exp.addr); got != exp.want {
				t.Errorf("%s: mem[%#x] = %d, want %d", e.Name(), exp.addr, got, exp.want)
			}
		}
	}
	if seen < 3 {
		t.Errorf("corpus has %d programs, expected at least 3", seen)
	}
}
