package program

import (
	"fmt"

	"doppelganger/internal/isa"
)

// Label is a position in the instruction stream that branches can target
// before it is bound, enabling forward references.
type Label struct {
	pc    int
	bound bool
	name  string
}

// Builder constructs programs imperatively with label-based control flow.
// Methods panic on misuse (unbound labels at Build, invalid registers);
// builders run at test/setup time where a panic is the clearest failure.
type Builder struct {
	name    string
	code    []isa.Instruction
	labels  []*Label
	fixups  []fixup // instructions whose Imm awaits a label
	regs    [isa.NumRegs]int64
	mem     map[uint64]int64
	secrets []Region
	entry   uint64
	nlabels int
}

type fixup struct {
	pc    int
	label *Label
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, mem: make(map[uint64]int64)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

// NewLabel creates an unbound label.
func (b *Builder) NewLabel() *Label {
	b.nlabels++
	l := &Label{name: fmt.Sprintf("L%d", b.nlabels)}
	b.labels = append(b.labels, l)
	return l
}

// Bind attaches the label to the current position.
func (b *Builder) Bind(l *Label) {
	if l.bound {
		panic(fmt.Sprintf("program: label %s bound twice", l.name))
	}
	l.pc = len(b.code)
	l.bound = true
}

// Here creates a label bound to the current position.
func (b *Builder) Here() *Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

// InitReg sets the initial value of an architectural register.
func (b *Builder) InitReg(r isa.Reg, v int64) *Builder {
	b.regs[r] = v
	return b
}

// InitMem sets an initial memory word at the (aligned) byte address.
func (b *Builder) InitMem(addr uint64, v int64) *Builder {
	b.mem[AlignAddr(addr)] = v
	return b
}

// Secret labels the byte range [base, base+length) as holding secret data.
// Labeling is metadata for the contract oracle — it does not initialise the
// memory; combine with InitMem/InitWords to plant the secret values.
func (b *Builder) Secret(base, length uint64) *Builder {
	b.secrets = append(b.secrets, Region{Base: base, Len: length})
	return b
}

// SecretWord labels the single word at the (aligned) byte address as secret
// and initialises it to v.
func (b *Builder) SecretWord(addr uint64, v int64) *Builder {
	b.InitMem(addr, v)
	return b.Secret(AlignAddr(addr), WordSize)
}

// InitWords lays out a slice of words starting at base.
func (b *Builder) InitWords(base uint64, vals []int64) *Builder {
	for i, v := range vals {
		b.InitMem(base+uint64(i)*WordSize, v)
	}
	return b
}

func (b *Builder) emit(in isa.Instruction) *Builder {
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitBranch(op isa.Op, s1, s2 isa.Reg, l *Label) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: l})
	return b.emit(isa.Instruction{Op: op, Src1: s1, Src2: s2})
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.Instruction{Op: isa.Nop}) }

// LoadI emits dst = imm.
func (b *Builder) LoadI(dst isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.LoadI, Dst: dst, Imm: imm})
}

// Op3 emits a three-register ALU operation dst = s1 <op> s2.
func (b *Builder) Op3(op isa.Op, dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Add, dst, s1, s2) }

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Sub, dst, s1, s2) }

// Mul emits dst = s1 * s2.
func (b *Builder) Mul(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Mul, dst, s1, s2) }

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Xor, dst, s1, s2) }

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.And, dst, s1, s2) }

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Or, dst, s1, s2) }

// Slt emits dst = (s1 < s2) ? 1 : 0 (signed).
func (b *Builder) Slt(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Slt, dst, s1, s2) }

// OpI emits a register-immediate ALU operation dst = s1 <op> imm.
func (b *Builder) OpI(op isa.Op, dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: op, Dst: dst, Src1: s1, Imm: imm})
}

// AddI emits dst = s1 + imm.
func (b *Builder) AddI(dst, s1 isa.Reg, imm int64) *Builder { return b.OpI(isa.AddI, dst, s1, imm) }

// MulI emits dst = s1 * imm.
func (b *Builder) MulI(dst, s1 isa.Reg, imm int64) *Builder { return b.OpI(isa.MulI, dst, s1, imm) }

// AndI emits dst = s1 & imm.
func (b *Builder) AndI(dst, s1 isa.Reg, imm int64) *Builder { return b.OpI(isa.AndI, dst, s1, imm) }

// ShlI emits dst = s1 << imm.
func (b *Builder) ShlI(dst, s1 isa.Reg, imm int64) *Builder { return b.OpI(isa.ShlI, dst, s1, imm) }

// ShrI emits dst = s1 >> imm (logical).
func (b *Builder) ShrI(dst, s1 isa.Reg, imm int64) *Builder { return b.OpI(isa.ShrI, dst, s1, imm) }

// Load emits dst = mem[base+off].
func (b *Builder) Load(dst, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.Load, Dst: dst, Src1: base, Imm: off})
}

// Store emits mem[base+off] = src.
func (b *Builder) Store(src, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.Store, Src1: base, Src2: src, Imm: off})
}

// Beq emits a branch to l if s1 == s2.
func (b *Builder) Beq(s1, s2 isa.Reg, l *Label) *Builder { return b.emitBranch(isa.Beq, s1, s2, l) }

// Bne emits a branch to l if s1 != s2.
func (b *Builder) Bne(s1, s2 isa.Reg, l *Label) *Builder { return b.emitBranch(isa.Bne, s1, s2, l) }

// Blt emits a branch to l if s1 < s2 (signed).
func (b *Builder) Blt(s1, s2 isa.Reg, l *Label) *Builder { return b.emitBranch(isa.Blt, s1, s2, l) }

// Bge emits a branch to l if s1 >= s2 (signed).
func (b *Builder) Bge(s1, s2 isa.Reg, l *Label) *Builder { return b.emitBranch(isa.Bge, s1, s2, l) }

// Branch emits a conditional branch with the given comparison to l; op must
// be one of Beq, Bne, Blt, Bge (it panics otherwise).
func (b *Builder) Branch(op isa.Op, s1, s2 isa.Reg, l *Label) *Builder {
	if op.Kind() != isa.KindBranch {
		panic(fmt.Sprintf("program: Branch called with non-branch op %v", op))
	}
	return b.emitBranch(op, s1, s2, l)
}

// Jmp emits an unconditional jump to l.
func (b *Builder) Jmp(l *Label) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: l})
	return b.emit(isa.Instruction{Op: isa.Jmp})
}

// Halt emits the halt instruction.
func (b *Builder) Halt() *Builder { return b.emit(isa.Instruction{Op: isa.Halt}) }

// Build resolves labels and returns the finished program. It panics if a
// referenced label was never bound, and returns any validation error.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		if !f.label.bound {
			panic(fmt.Sprintf("program %q: branch at pc=%d targets unbound label %s",
				b.name, f.pc, f.label.name))
		}
		b.code[f.pc].Imm = int64(f.label.pc)
	}
	p := &Program{
		Code:     append([]isa.Instruction(nil), b.code...),
		Entry:    b.entry,
		InitRegs: b.regs,
		InitMem:  b.mem,
		Secrets:  append([]Region(nil), b.secrets...),
		Name:     b.name,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for tests and workload setup.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Div emits dst = s1 / s2 (signed; division by zero yields 0).
func (b *Builder) Div(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Div, dst, s1, s2) }

// Shl emits dst = s1 << (s2 & 63).
func (b *Builder) Shl(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Shl, dst, s1, s2) }

// Shr emits dst = s1 >> (s2 & 63) (logical).
func (b *Builder) Shr(dst, s1, s2 isa.Reg) *Builder { return b.Op3(isa.Shr, dst, s1, s2) }
