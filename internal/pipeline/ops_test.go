package pipeline

import (
	"testing"

	"doppelganger/internal/isa"
	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// TestEveryOpThroughPipeline exercises each ISA operation through the full
// out-of-order machine (not just the interpreter) under every scheme, with
// operand values chosen to hit edge cases (negatives, zero divisors, shift
// overflow).
func TestEveryOpThroughPipeline(t *testing.T) {
	type opCase struct {
		name  string
		build func(b *program.Builder)
	}
	cases := []opCase{
		{"add-neg", func(b *program.Builder) { b.LoadI(1, -5); b.LoadI(2, 3); b.Add(3, 1, 2) }},
		{"sub-underflow", func(b *program.Builder) { b.LoadI(1, -1<<62); b.LoadI(2, 1<<62-1); b.Sub(3, 1, 2) }},
		{"mul-overflow", func(b *program.Builder) { b.LoadI(1, 1<<40); b.LoadI(2, 1<<40); b.Mul(3, 1, 2) }},
		{"div-zero", func(b *program.Builder) { b.LoadI(1, 42); b.LoadI(2, 0); b.Div(3, 1, 2) }},
		{"div-neg", func(b *program.Builder) { b.LoadI(1, -42); b.LoadI(2, 5); b.Div(3, 1, 2) }},
		{"and-or-xor", func(b *program.Builder) {
			b.LoadI(1, 0x0ff0)
			b.LoadI(2, 0x00ff)
			b.And(3, 1, 2)
			b.Or(4, 1, 2)
			b.Xor(5, 1, 2)
		}},
		{"shl-overflow", func(b *program.Builder) { b.LoadI(1, 1); b.LoadI(2, 100); b.Shl(3, 1, 2) }},
		{"shr-logical", func(b *program.Builder) { b.LoadI(1, -8); b.LoadI(2, 1); b.Shr(3, 1, 2) }},
		{"slt-both", func(b *program.Builder) {
			b.LoadI(1, -1)
			b.LoadI(2, 1)
			b.Slt(3, 1, 2)
			b.Slt(4, 2, 1)
		}},
		{"addi-muli", func(b *program.Builder) { b.LoadI(1, 7); b.AddI(2, 1, -9); b.MulI(3, 2, 11) }},
		{"andi-shifts", func(b *program.Builder) { b.LoadI(1, 0x1234); b.AndI(2, 1, 0xff); b.ShlI(3, 2, 4); b.ShrI(4, 3, 2) }},
		{"load-store-roundtrip", func(b *program.Builder) {
			b.LoadI(1, 0x9000)
			b.LoadI(2, -123456789)
			b.Store(2, 1, 0)
			b.Load(3, 1, 0)
			b.Store(3, 1, 8)
			b.Load(4, 1, 8)
		}},
		{"load-neg-offset", func(b *program.Builder) {
			b.InitMem(0x8ff8, 55)
			b.LoadI(1, 0x9000)
			b.Load(2, 1, -8)
		}},
		{"beq-bne", func(b *program.Builder) {
			b.LoadI(1, 4)
			b.LoadI(2, 4)
			l1 := b.NewLabel()
			b.Beq(1, 2, l1)
			b.LoadI(3, 111) // skipped
			b.Bind(l1)
			l2 := b.NewLabel()
			b.Bne(1, 2, l2)
			b.LoadI(4, 222) // executed
			b.Bind(l2)
		}},
		{"blt-bge-negative", func(b *program.Builder) {
			b.LoadI(1, -3)
			b.LoadI(2, 2)
			l1 := b.NewLabel()
			b.Blt(1, 2, l1)
			b.LoadI(3, 111)
			b.Bind(l1)
			l2 := b.NewLabel()
			b.Bge(1, 2, l2)
			b.LoadI(4, 222)
			b.Bind(l2)
		}},
		{"jmp-over", func(b *program.Builder) {
			l := b.NewLabel()
			b.LoadI(1, 1)
			b.Jmp(l)
			b.LoadI(1, 999)
			b.Bind(l)
		}},
		{"nop-chain", func(b *program.Builder) { b.Nop(); b.Nop(); b.LoadI(1, 3); b.Nop() }},
	}
	for _, c := range cases {
		b := program.NewBuilder(c.name)
		c.build(b)
		b.Halt()
		p := b.MustBuild()
		ref := program.Run(p, 10_000)
		if !ref.Halted {
			t.Fatalf("%s: reference did not halt", c.name)
		}
		for _, scheme := range secure.AllSchemes() {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.SelfCheck = true
			core, err := New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Run(0, 1_000_000); err != nil {
				t.Fatalf("%s under %v: %v", c.name, scheme, err)
			}
			if core.ArchState().Checksum() != ref.Checksum() {
				t.Errorf("%s under %v: pipeline disagrees with the interpreter", c.name, scheme)
			}
		}
	}
	// Ensure the case list covers every operation.
	covered := map[isa.Op]bool{}
	for _, c := range cases {
		b := program.NewBuilder("probe")
		c.build(b)
		b.Halt()
		for _, in := range b.MustBuild().Code {
			covered[in.Op] = true
		}
	}
	for op := isa.Nop; op.Valid(); op++ {
		if !covered[op] {
			t.Errorf("operation %v not covered by the differential op tests", op)
		}
	}
}
