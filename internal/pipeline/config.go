// Package pipeline implements the cycle-level out-of-order core: fetch with
// branch prediction and real wrong-path execution, register renaming, a
// reorder buffer, instruction/load/store queues, store-to-load forwarding,
// memory-dependence speculation with violation squash, and in-order commit.
//
// The secure speculation schemes (NDA-P, STT, DoM) and the doppelganger
// load mechanism are implemented as issue/propagation/resolution gates over
// these structures, exactly as the paper describes: none of them modify the
// memory hierarchy.
package pipeline

import (
	"fmt"

	"doppelganger/internal/mem"
	"doppelganger/internal/predictor"
	"doppelganger/internal/secure"
)

// Config parameterises the core. DefaultConfig matches Table 1 of the paper
// (IceLake-like gem5 o3 configuration).
type Config struct {
	// Front end and windows.
	DecodeWidth int // instructions renamed/dispatched per cycle
	IssueWidth  int // instructions issued to execution per cycle
	CommitWidth int // instructions committed per cycle
	ROBSize     int
	IQSize      int
	LQSize      int
	SQSize      int
	LoadPorts   int // memory reads started per cycle (shared by doppelgangers)

	// Execution latencies in cycles.
	ALULatency uint64
	MulLatency uint64
	DivLatency uint64
	AGULatency uint64
	// STLFLatency is the store-to-load forwarding latency.
	STLFLatency uint64

	// Scheme selects the secure speculation scheme.
	Scheme secure.Scheme
	// AddressPrediction enables doppelganger loads.
	AddressPrediction bool
	// AddressPredictorKind selects the table(s) consulted in address
	// prediction mode: the paper's stride table, a first-order Markov
	// (context) table, or a hybrid that falls back from stride to context
	// — the "more advanced predictor" direction the paper leaves open.
	AddressPredictorKind AddressPredictorKind
	// ValuePrediction enables DoM+VP: delayed loads propagate a predicted
	// *value* and are validated (squashing on mismatch) when the real
	// access completes. Mutually exclusive with AddressPrediction and
	// only meaningful for DoM — it reproduces the paper's §2.3 point that
	// value prediction under-performed for Delay-on-Miss.
	ValuePrediction bool
	// BranchPredictorKind selects the direction predictor.
	BranchPredictorKind BranchPredictorKind
	// MemDepPrediction enables a store-set memory dependence predictor:
	// loads that have previously violated against a store wait for it
	// instead of speculating past its unresolved address (§4.4 assumes
	// memory dependence prediction is present).
	MemDepPrediction bool
	// ExceptionShadows additionally treats every load as a shadow caster
	// until its address translates (the E-shadows of Ghost Loads / DoM);
	// the paper's evaluation tracks control and store-address shadows
	// only, so this defaults to off.
	ExceptionShadows bool
	// SelfCheck validates pipeline invariants every cycle (rename map
	// consistency, queue cross-links, shadow-tracker agreement). Slow;
	// meant for tests and debugging.
	SelfCheck bool
	// Mutation plants a deliberate weakening of the active scheme's
	// delay/taint logic, so the leakage checker can prove it detects
	// broken protections. Must stay MutNone outside leakcheck's mutation
	// mode and tests.
	Mutation secure.Mutation
	// PrefetchDegree is how many consecutive stride targets the prefetcher
	// issues per triggering access (0 disables prefetching). The
	// prefetcher and address predictor share one table, trained only at
	// commit (the paper's security requirement).
	PrefetchDegree int
	// PrefetchDistance is how many strides ahead of the triggering access
	// the first prefetch target lies, giving the fill time to complete
	// before the stream arrives.
	PrefetchDistance int

	// Memory hierarchy configuration.
	Memory mem.HierarchyConfig
	// Stride configures the shared prefetcher/address-predictor table.
	Stride predictor.StrideConfig
	// Context configures the Markov address predictor (context/hybrid
	// kinds only).
	Context predictor.ContextConfig
	// Value configures the load value predictor (ValuePrediction only).
	Value predictor.ValueConfig
	// Branch configures the bimodal direction predictor.
	Branch predictor.BimodalConfig
	// GShare configures the gshare direction predictor.
	GShare predictor.GShareConfig
	// StoreSets configures the memory dependence predictor.
	StoreSets predictor.StoreSetsConfig
}

// AddressPredictorKind selects the address-prediction structure.
type AddressPredictorKind uint8

// Address predictor kinds.
const (
	// PredictorStride is the paper's PC-stride table shared with the
	// prefetcher.
	PredictorStride AddressPredictorKind = iota
	// PredictorContext is a first-order Markov table over addresses.
	PredictorContext
	// PredictorHybrid consults the stride table first and falls back to
	// the context table (a minimal "bouquet").
	PredictorHybrid
)

// BranchPredictorKind selects the direction predictor.
type BranchPredictorKind uint8

// Branch predictor kinds.
const (
	// BranchBimodal is a PC-indexed 2-bit-counter table.
	BranchBimodal BranchPredictorKind = iota
	// BranchGShare XORs a global history register into the index; the
	// core keeps a speculative history and repairs it on squashes.
	BranchGShare
)

// DefaultConfig returns the paper's Table 1 system configuration. The clock
// is nominally 4 GHz, making the 13.5 ns DRAM access 54 cycles beyond the
// L3 lookup.
func DefaultConfig() Config {
	return Config{
		DecodeWidth: 5,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     352,
		IQSize:      160,
		LQSize:      128,
		SQSize:      72,
		LoadPorts:   2,

		ALULatency:  1,
		MulLatency:  3,
		DivLatency:  12,
		AGULatency:  1,
		STLFLatency: 2,

		Scheme:            secure.Unsafe,
		AddressPrediction: false,
		PrefetchDegree:    2,
		PrefetchDistance:  12,

		Memory: mem.HierarchyConfig{
			L1D:        mem.CacheConfig{SizeBytes: 48 << 10, Ways: 12, Latency: 5},
			L2:         mem.CacheConfig{SizeBytes: 2 << 20, Ways: 8, Latency: 15},
			L3:         mem.CacheConfig{SizeBytes: 16 << 20, Ways: 16, Latency: 40},
			MemLatency: 54,
			L1MSHRs:    16,
		},
		Stride:    predictor.DefaultStrideConfig(),
		Context:   predictor.DefaultContextConfig(),
		Value:     predictor.DefaultValueConfig(),
		Branch:    predictor.DefaultBimodalConfig(),
		GShare:    predictor.DefaultGShareConfig(),
		StoreSets: predictor.DefaultStoreSetsConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("pipeline: widths must be positive (decode %d, issue %d, commit %d)",
			c.DecodeWidth, c.IssueWidth, c.CommitWidth)
	}
	if c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0 {
		return fmt.Errorf("pipeline: queue sizes must be positive (rob %d, iq %d, lq %d, sq %d)",
			c.ROBSize, c.IQSize, c.LQSize, c.SQSize)
	}
	if c.LoadPorts <= 0 {
		return fmt.Errorf("pipeline: load ports must be positive, got %d", c.LoadPorts)
	}
	if !c.Scheme.Valid() {
		return fmt.Errorf("pipeline: invalid scheme %d", uint8(c.Scheme))
	}
	if !c.Mutation.Valid() {
		return fmt.Errorf("pipeline: invalid mutation %d", uint8(c.Mutation))
	}
	if c.ALULatency == 0 || c.AGULatency == 0 {
		return fmt.Errorf("pipeline: ALU/AGU latencies must be at least 1 cycle")
	}
	if err := c.Memory.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if err := c.Stride.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if c.AddressPredictorKind != PredictorStride {
		if err := c.Context.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.ValuePrediction {
		if c.AddressPrediction {
			return fmt.Errorf("pipeline: value prediction and address prediction are mutually exclusive")
		}
		if c.Scheme != secure.DoM {
			return fmt.Errorf("pipeline: value prediction is a DoM optimization (got %v)", c.Scheme)
		}
		if err := c.Value.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.BranchPredictorKind == BranchGShare {
		if err := c.GShare.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.MemDepPrediction {
		if err := c.StoreSets.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	return nil
}

// inOrderBranchResolution reports whether branches must resolve in order
// (only once non-speculative). The paper requires this for DoM enhanced
// with doppelganger loads (§5.3) to close the implicit channels that
// doppelganger misses would otherwise open.
func (c Config) inOrderBranchResolution() bool {
	return c.Scheme == secure.DoM && c.AddressPrediction
}
