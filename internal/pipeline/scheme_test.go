package pipeline

import (
	"testing"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// gatedDependentOp builds: a load under a slow-resolving shadow feeding an
// ALU chain — NDA-P must delay the dependents, STT must not.
func gatedDependentOp() *program.Program {
	b := program.NewBuilder("gated-dep")
	const (
		guard = 0x8000  // cold line per iteration: slow branch resolution
		data  = 0x20000 // warm data
	)
	for i := 0; i < 64; i++ {
		b.InitMem(guard+uint64(i)*64, 1)
		b.InitMem(data+uint64(i)*8, int64(i))
	}
	b.LoadI(1, 0)     // counter
	b.LoadI(2, 64)    // iterations
	b.LoadI(3, guard) // guard pointer
	b.LoadI(4, data)  // data pointer
	b.LoadI(9, 0)
	loop := b.Here()
	b.Load(5, 3, 0) // guard load: cold miss
	skip := b.NewLabel()
	b.Blt(5, 9, skip) // never taken, but resolves only when the miss returns
	b.Load(6, 4, 0)   // data load: under the guard's shadow
	// Dependent ALU chain on the speculative load.
	b.Mul(7, 6, 6)
	b.Add(8, 7, 6)
	b.Xor(9, 9, 8)
	b.LoadI(9, 0)
	b.Bind(skip)
	b.AddI(3, 3, 64)
	b.AddI(4, 4, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Halt()
	return b.MustBuild()
}

// TestNDADelaysPropagationSTTDoesNot: on load-dependent ALU work under long
// shadows, NDA-P must be slower than STT (STT executes dependent
// non-transmitters; NDA-P blocks them).
func TestNDADelaysPropagationSTTDoesNot(t *testing.T) {
	p := gatedDependentOp()
	run := func(s secure.Scheme) uint64 {
		cfg := DefaultConfig()
		cfg.Scheme = s
		cfg.PrefetchDegree = 0
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 50_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats.Cycles
	}
	unsafe := run(secure.Unsafe)
	nda := run(secure.NDAP)
	stt := run(secure.STT)
	if nda <= unsafe {
		t.Errorf("NDA-P (%d) not slower than unsafe (%d) with dependent work under shadows", nda, unsafe)
	}
	if stt >= nda {
		t.Errorf("STT (%d) not faster than NDA-P (%d): dependent ILP not permitted", stt, nda)
	}
}

// TestSTTBlocksTaintedTransmitter: a load whose address derives from a
// speculatively loaded value must issue later under STT than unsafe.
func TestSTTBlocksTaintedTransmitter(t *testing.T) {
	b := program.NewBuilder("taint-gate")
	const (
		guard = 0x8000
		idxT  = 0x20000
		data  = 0x40000
	)
	for i := 0; i < 32; i++ {
		b.InitMem(guard+uint64(i)*64, 1)
		b.InitMem(idxT+uint64(i)*8, int64(i*7%32))
		b.InitMem(data+uint64(i)*8, int64(i))
	}
	b.LoadI(1, 0)
	b.LoadI(2, 32)
	b.LoadI(3, guard)
	b.LoadI(4, idxT)
	b.LoadI(9, 0)
	loop := b.Here()
	b.Load(5, 3, 0) // slow guard
	skip := b.NewLabel()
	b.Blt(5, 9, skip) // never taken; slow resolution
	b.Load(6, 4, 0)   // idx: speculative, tainted under STT
	b.ShlI(7, 6, 3)
	b.AddI(7, 7, data)
	b.Load(8, 7, 0) // transmitter: tainted address
	b.Bind(skip)
	b.AddI(3, 3, 64)
	b.AddI(4, 4, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Halt()
	p := b.MustBuild()

	run := func(s secure.Scheme) (uint64, uint64) {
		cfg := DefaultConfig()
		cfg.Scheme = s
		cfg.PrefetchDegree = 0
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 50_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats.Cycles, c.Stats.STTTaintStalls
	}
	unsafe, unsafeStalls := run(secure.Unsafe)
	stt, sttStalls := run(secure.STT)
	if sttStalls == 0 {
		t.Error("STT recorded no taint stalls although transmitters had tainted addresses")
	}
	if unsafeStalls != 0 {
		t.Errorf("unsafe baseline recorded %d taint stalls", unsafeStalls)
	}
	if stt < unsafe {
		t.Errorf("STT (%d cycles) faster than unsafe (%d)", stt, unsafe)
	}
}

// TestDoMDelaysSpeculativeMisses: speculative L1 misses must be delayed
// (counter visible) and cost cycles; without speculation there is nothing
// to delay.
func TestDoMDelaysSpeculativeMisses(t *testing.T) {
	p := gatedDependentOp() // data loads sit under guard shadows
	cfg := DefaultConfig()
	cfg.Scheme = secure.DoM
	cfg.PrefetchDegree = 0
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Stats.DoMDelayedMisses == 0 {
		t.Error("no delayed misses recorded although speculative loads miss the L1")
	}

	// A branch-free program has no control shadows: nothing may be delayed.
	b := program.NewBuilder("nobranch")
	b.LoadI(1, 0x9000)
	for i := 0; i < 16; i++ {
		b.Load(2, 1, int64(i*64))
	}
	b.Halt()
	c2, err := New(cfg, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if c2.Stats.DoMDelayedMisses != 0 {
		t.Errorf("%d delayed misses in a branch-free program", c2.Stats.DoMDelayedMisses)
	}
}

// TestDoMAPInOrderBranchResolution: under DoM+AP branches resolve in order
// (§5.3), so a mispredicting young branch behind a slow older branch is
// discovered late — observable as more wrong-path uops squashed per
// misprediction than under plain DoM.
func TestDoMAPInOrderBranchResolution(t *testing.T) {
	b := program.NewBuilder("inorder")
	const guard = 0x8000
	// Guard lines in a shuffled order, pointed to by an index table, so the
	// guard loads are dependent and unpredictable: no doppelganger can
	// stand in, isolating the cost of in-order branch resolution.
	st := uint64(4242)
	for i := 0; i < 48; i++ {
		st = st*6364136223846793005 + 1442695040888963407
		line := st % 4096
		b.InitMem(0x30000+uint64(i)*8, int64(guard+line*64))
		b.InitMem(guard+line*64, 1)
		// 50/50 values for the young branch.
		b.InitMem(0x20000+uint64(i)*8, int64((i*2654435761)%100))
	}
	b.LoadI(1, 0)
	b.LoadI(2, 48)
	b.LoadI(3, 0x30000) // guard index table
	b.LoadI(4, 0x20000)
	b.LoadI(9, 0)
	b.LoadI(10, 50)
	loop := b.Here()
	b.Load(5, 3, 0) // guard pointer (L1 after warm)
	b.Load(5, 5, 0) // slow older branch predicate at an unpredictable line
	s1 := b.NewLabel()
	b.Blt(5, 9, s1) // never taken, slow to resolve
	b.Bind(s1)
	b.Load(6, 4, 0) // fast 50/50 predicate (L1 after warm)
	s2 := b.NewLabel()
	b.Blt(6, 10, s2) // mispredicts often
	b.AddI(9, 9, 0)
	b.Bind(s2)
	b.AddI(3, 3, 8)
	b.AddI(4, 4, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Halt()
	p := b.MustBuild()

	run := func(ap bool) (perMispredict float64) {
		cfg := DefaultConfig()
		cfg.Scheme = secure.DoM
		cfg.AddressPrediction = ap
		cfg.PrefetchDegree = 0
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 50_000_000); err != nil {
			t.Fatal(err)
		}
		if c.Stats.BranchMispredicts == 0 {
			t.Fatal("pattern produced no mispredicts")
		}
		return float64(c.Stats.Squashed) / float64(c.Stats.BranchMispredicts)
	}
	dom := run(false)
	domAP := run(true)
	// In-order resolution delays mispredict discovery behind the slow
	// older branch, so the wrong path runs longer and more uops are
	// squashed per misprediction.
	if domAP <= dom {
		t.Errorf("DoM+AP squashed %.1f uops/mispredict, DoM %.1f: in-order resolution not delaying discovery", domAP, dom)
	}
}

// TestUnsafeSchemeFastest: by construction every secure scheme can only
// add delays — no scheme may beat the unsafe baseline on any fuzz program.
func TestUnsafeSchemeFastest(t *testing.T) {
	for seed := 1; seed <= 6; seed++ {
		p := randomProgram(uint64(seed)*77, 14, 80)
		var unsafeCycles uint64
		for _, scheme := range secure.Schemes() {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			c, err := New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(0, 100_000_000); err != nil {
				t.Fatal(err)
			}
			if scheme == secure.Unsafe {
				unsafeCycles = c.Stats.Cycles
				continue
			}
			// Allow 2% slack for second-order interactions (replacement
			// state differs slightly between schemes).
			if float64(c.Stats.Cycles) < 0.98*float64(unsafeCycles) {
				t.Errorf("seed %d: %v (%d cycles) beat the unsafe baseline (%d)",
					seed, scheme, c.Stats.Cycles, unsafeCycles)
			}
		}
	}
}
