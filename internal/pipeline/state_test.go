package pipeline

import (
	"strings"
	"testing"

	"doppelganger/internal/secure"
)

// drainedCore runs sumLoop partway under cfg and drains it to quiescence.
func drainedCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	c, err := New(cfg, sumLoop(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(0); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDrainQuiesces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = secure.DoM
	cfg.AddressPrediction = true
	c := drainedCore(t, cfg)
	if err := c.quiescent(); err != nil {
		t.Fatalf("core not quiescent after Drain: %v", err)
	}
	// Fetch was re-enabled: the core runs on to the architectural result.
	ref := referenceState(t)
	if err := c.Run(0, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if got := c.ArchState().Checksum(); got != ref {
		t.Errorf("post-drain run diverged: checksum %x, want %x", got, ref)
	}
}

func referenceState(t *testing.T) uint64 {
	t.Helper()
	c, err := New(DefaultConfig(), sumLoop(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 50_000_000); err != nil {
		t.Fatal(err)
	}
	return c.ArchState().Checksum()
}

func TestDrainBudgetIsEnforced(t *testing.T) {
	c, err := New(DefaultConfig(), sumLoop(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Something is in flight right after an instruction-bounded stop
	// (fetch runs ahead of commit); a one-cycle budget cannot drain it.
	if c.rob.len() == 0 && len(c.fetchBuf) == 0 {
		t.Skip("window happened to be empty at the stop point")
	}
	if err := c.Drain(1); err == nil {
		t.Error("Drain(1) succeeded with instructions in flight")
	} else if !strings.Contains(err.Error(), "quiesce") {
		t.Errorf("unhelpful drain-budget error: %v", err)
	}
}

func TestCaptureRefusesNonQuiescent(t *testing.T) {
	c, err := New(DefaultConfig(), sumLoop(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.rob.len() == 0 && len(c.fetchBuf) == 0 {
		t.Skip("window happened to be empty at the stop point")
	}
	if _, err := c.CaptureState(); err == nil {
		t.Error("CaptureState succeeded on a non-quiescent core")
	} else if !strings.Contains(err.Error(), "quiescent") {
		t.Errorf("unhelpful capture error: %v", err)
	}
}

// TestCaptureRestoreRoundTrip is the core equivalence property at the
// pipeline layer: capture a drained core, rebuild from the snapshot, and
// both must reach an identical architectural result — and identical Stats,
// since the restored core carries the warmup's counters forward.
func TestCaptureRestoreRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = secure.STT
	cfg.AddressPrediction = true
	prog := sumLoop(200)
	orig := drainedCore(t, cfg)
	st, err := orig.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromState(cfg, prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Cycle() != orig.Cycle() {
		t.Errorf("restored cycle %d, want %d", restored.Cycle(), orig.Cycle())
	}
	if err := orig.Run(0, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := restored.Run(0, 50_000_000); err != nil {
		t.Fatal(err)
	}
	a, b := orig.ArchState(), restored.ArchState()
	if a.Checksum() != b.Checksum() {
		t.Errorf("architectural divergence after restore: %x vs %x", a.Checksum(), b.Checksum())
	}
	if orig.Stats != restored.Stats {
		t.Errorf("stats diverged after restore:\noriginal %+v\nrestored %+v", orig.Stats, restored.Stats)
	}
}

func TestRestoreRejectsStructuralMismatch(t *testing.T) {
	cfg := DefaultConfig()
	st, err := drainedCore(t, cfg).CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	bad := DefaultConfig()
	bad.Memory.L1D.Ways *= 2
	if _, err := NewFromState(bad, sumLoop(200), st); err == nil {
		t.Error("restore accepted a core with different L1D geometry")
	}

	bad = DefaultConfig()
	bad.Stride.Entries *= 2
	if _, err := NewFromState(bad, sumLoop(200), st); err == nil {
		t.Error("restore accepted a core with a different stride table size")
	}
}

func TestRestoreRejectsMalformedState(t *testing.T) {
	cfg := DefaultConfig()
	st, err := drainedCore(t, cfg).CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	short := *st
	short.CommittedPC = st.CommittedPC[:len(st.CommittedPC)-1]
	if _, err := NewFromState(cfg, sumLoop(200), &short); err == nil {
		t.Error("restore accepted a committed-PC table of the wrong length")
	}

	noHier := *st
	noHier.Hier = nil
	if _, err := NewFromState(cfg, sumLoop(200), &noHier); err == nil {
		t.Error("restore accepted a snapshot with no memory hierarchy")
	}
}

// TestRestoreAcrossSchemes pins the forking property at the pipeline
// layer: state captured under one scheme restores under another and still
// reaches the same architectural result.
func TestRestoreAcrossSchemes(t *testing.T) {
	warm := DefaultConfig() // unsafe baseline
	st, err := drainedCore(t, warm).CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceState(t)
	for _, scheme := range []secure.Scheme{secure.DoM, secure.STT, secure.NDAP} {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		c, err := NewFromState(cfg, sumLoop(200), st)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if err := c.Run(0, 50_000_000); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if got := c.ArchState().Checksum(); got != ref {
			t.Errorf("%v: architectural divergence: %x, want %x", scheme, got, ref)
		}
	}
}
