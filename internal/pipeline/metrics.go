package pipeline

import "doppelganger/internal/obs"

// StatsSnapshot returns the run's statistics with the shadow and taint
// census folded in from the live trackers. Use it instead of reading the
// Stats field directly when the census matters (sim.Summarize does).
func (c *Core) StatsSnapshot() Stats {
	st := c.Stats
	st.ShadowsCast = c.shadows.Opened()
	st.ShadowPeak = uint64(c.shadows.Peak())
	if c.taints != nil {
		st.TaintedWrites = c.taints.TaintedWrites()
	}
	return st
}

// RecordStats flushes end-of-run counters into a metrics registry. It is
// cumulative: each completed run adds its totals, so a long-lived registry
// (e.g. the doppeld process registry) aggregates across runs. Live per-event
// histograms and cache hit/miss counters are attached separately via
// Core.SetMetrics.
func RecordStats(m *obs.Metrics, st Stats, ms MemoryStats) {
	if m == nil {
		return
	}
	add := func(name, help string, v uint64) {
		if v != 0 {
			m.Counter(name, help).Add(v)
		} else {
			m.Counter(name, help) // register so the family is always exposed
		}
	}
	add("sim_cycles_total", "Simulated cycles across completed runs.", st.Cycles)
	add("sim_instructions_total", "Committed instructions.", st.Committed)
	add("sim_loads_total", "Committed loads.", st.CommittedLoads)
	add("sim_stores_total", "Committed stores.", st.CommittedStores)
	add("sim_branches_total", "Committed branches.", st.CommittedBranches)
	add("sim_branch_mispredicts_total", "Branch mispredict squashes.", st.BranchMispredicts)
	add("sim_squashed_uops_total", "Uops removed by any squash.", st.Squashed)
	add("sim_mem_order_violations_total", "Load-store memory-order violation squashes.", st.MemOrderViolations)
	add("sim_stlf_forwards_total", "Store-to-load forwards.", st.STLFForwards)
	add("sim_prefetches_total", "Prefetch accesses issued.", st.PrefetchesIssued)
	add("sim_dopp_predictions_total", "Address predictions produced at dispatch.", st.DoppPredictions)
	add("sim_dopp_issued_total", "Doppelganger memory accesses sent.", st.DoppIssued)
	add("sim_dopp_verified_total", "Doppelganger predictions that verified.", st.DoppVerified)
	add("sim_dopp_mispredicted_total", "Doppelganger predictions refuted.", st.DoppMispredicted)
	add("sim_dom_delayed_misses_total", "DoM speculative misses delayed.", st.DoMDelayedMisses)
	add("sim_stt_taint_stalls_total", "Load issues blocked on a tainted address.", st.STTTaintStalls)
	add("sim_shadows_cast_total", "Speculation shadows opened.", st.ShadowsCast)
	add("sim_tainted_reg_writes_total", "Register writes carrying taint.", st.TaintedWrites)
	m.Gauge("sim_shadow_peak", "High-water mark of simultaneously open shadows.").
		SetMax(int64(st.ShadowPeak))
	add("sim_dram_reads_total", "DRAM read accesses.", ms.DRAMAccesses)
	add("sim_dram_writes_total", "DRAM write accesses.", ms.DRAMWrites)
}
