package pipeline

import (
	"fmt"
	"math/bits"

	"doppelganger/internal/isa"
	"doppelganger/internal/mem"
	"doppelganger/internal/predictor"
	"doppelganger/internal/program"
)

// This file implements the core's side of the checkpoint subsystem: drain
// the pipeline to a quiescent point, capture the complete simulation state
// as a serializable CoreState, and rebuild a core from one.
//
// The snapshot is taken at quiescence — the in-flight window is drained
// first (fetch suppressed, everything in the ROB commits or squashes) — so
// no uop, load-queue, store-queue, or shadow-tracker contents ever need
// serializing: the capture records their occupancies and restore asserts
// they are zero. This is the gem5 drain-before-checkpoint discipline, and
// it is what makes the format stable: the on-disk image is architectural
// state plus the long-lived µarch tables (caches, MSHRs, predictors),
// not a dump of transient pipeline plumbing.

// DrainBudget is the default cycle allowance for draining the in-flight
// window. The window is bounded by the ROB, and every entry completes in
// bounded time (worst case a chain of DRAM misses), so a healthy pipeline
// drains in well under this.
const DrainBudget = 1_000_000

// Drain suppresses fetch and steps the core until the pipeline is empty:
// every in-flight instruction has committed or squashed. Mispredicted
// branches resolve and repair the front end during the drain, so fetchPC
// and the branch history are architecturally correct afterwards. Fetch is
// re-enabled on success, so the core can continue running.
func (c *Core) Drain(maxCycles uint64) error {
	if maxCycles == 0 {
		maxCycles = DrainBudget
	}
	c.fetchStalled = true
	start := c.cycle
	for !c.halted && (c.rob.len() > 0 || len(c.fetchBuf) > 0) {
		if c.cycle-start >= maxCycles {
			return fmt.Errorf("pipeline: drain did not quiesce within %d cycles (%d in flight)",
				maxCycles, c.rob.len())
		}
		c.Step()
	}
	c.fetchStalled = false
	return nil
}

// MemPageState is one 4 KiB page of the committed memory image.
type MemPageState struct {
	Key     uint64                 `json:"key"`
	Words   [pageWords]int64       `json:"words"`
	Present [pageWords / 64]uint64 `json:"present"`
}

// CoreState is the complete serializable simulation state at a quiescent
// point. Predictor and hierarchy sections are nil when the captured core
// did not instantiate that component; restoring a nil section leaves the
// new core's component cold (freshly initialized), which is the correct
// reading of "the warm run never trained it".
type CoreState struct {
	Cycle       uint64 `json:"cycle"`
	SeqCtr      uint64 `json:"seq_ctr"`
	Halted      bool   `json:"halted,omitempty"`
	HaltFetched bool   `json:"halt_fetched,omitempty"`
	FetchPC     uint64 `json:"fetch_pc"`
	FetchHist   uint64 `json:"fetch_hist,omitempty"`

	// Regs is the architectural register file; TaintRoots the YRoT taint
	// root of each architectural register (restored so STT's taint
	// propagation census evolves identically to a straight-line run —
	// stale roots are never *live* at quiescence, but they do propagate).
	Regs       [isa.NumRegs]int64  `json:"regs"`
	TaintRoots [isa.NumRegs]uint64 `json:"taint_roots"`

	// Mem is the committed memory image, pages sorted by key for a
	// deterministic encoding.
	Mem []MemPageState `json:"mem"`

	// CommittedPC is the per-PC committed-instance count (predictor
	// occurrence rebasing); its length is the program length.
	CommittedPC []uint64 `json:"committed_pc"`

	Stats Stats `json:"stats"`

	// Shadow/taint tracker census (the trackers themselves are empty at
	// quiescence; StatsSnapshot reads these live).
	ShadowsOpened     uint64 `json:"shadows_opened"`
	ShadowsPeak       int    `json:"shadows_peak"`
	CtrlShadowsOpened uint64 `json:"ctrl_shadows_opened"`
	CtrlShadowsPeak   int    `json:"ctrl_shadows_peak"`
	TaintedWrites     uint64 `json:"tainted_writes"`

	Hier      *mem.HierarchyState       `json:"hier,omitempty"`
	Stride    *predictor.StrideState    `json:"stride,omitempty"`
	Context   *predictor.ContextState   `json:"context,omitempty"`
	Bimodal   *predictor.BimodalState   `json:"bimodal,omitempty"`
	GShare    *predictor.GShareState    `json:"gshare,omitempty"`
	Value     *predictor.ValueState     `json:"value,omitempty"`
	StoreSets *predictor.StoreSetsState `json:"store_sets,omitempty"`
}

// quiescent returns nil when no transient pipeline state is in flight.
func (c *Core) quiescent() error {
	switch {
	case c.rob.len() > 0:
		return fmt.Errorf("%d ROB entries in flight", c.rob.len())
	case len(c.fetchBuf) > 0:
		return fmt.Errorf("%d fetched instructions buffered", len(c.fetchBuf))
	case len(c.iq) > 0 || len(c.inflightExec) > 0 || len(c.pendingResolve) > 0:
		return fmt.Errorf("issue/execute queues not empty")
	case c.lq.len() > 0 || c.sq.len() > 0:
		return fmt.Errorf("load/store queues not empty")
	case c.shadows.Outstanding() > 0 || c.ctrlShadows.Outstanding() > 0:
		return fmt.Errorf("unresolved shadows outstanding")
	case c.hier.UndoPending() > 0:
		return fmt.Errorf("%d unretired undo-journal records", c.hier.UndoPending())
	case len(c.specLog) > 0:
		return fmt.Errorf("%d buffered speculative-trace folds", len(c.specLog))
	}
	for pc, n := range c.inflight {
		if n != 0 {
			return fmt.Errorf("pc %d has %d in-flight loads", pc, n)
		}
	}
	return nil
}

// CaptureState snapshots the core. The core must be quiescent (Drain
// first, or halted); capturing mid-flight is refused because transient
// pipeline state is deliberately not serializable.
func (c *Core) CaptureState() (*CoreState, error) {
	if err := c.quiescent(); err != nil {
		return nil, fmt.Errorf("pipeline: cannot capture a non-quiescent core: %v", err)
	}
	st := &CoreState{
		Cycle:             c.cycle,
		SeqCtr:            c.seqCtr,
		Halted:            c.halted,
		HaltFetched:       c.haltFetched,
		FetchPC:           c.fetchPC,
		FetchHist:         c.fetchHist,
		Regs:              c.ArchRegs(),
		CommittedPC:       append([]uint64(nil), c.committedPC...),
		Stats:             c.Stats,
		ShadowsOpened:     c.shadows.Opened(),
		ShadowsPeak:       c.shadows.Peak(),
		CtrlShadowsOpened: c.ctrlShadows.Opened(),
		CtrlShadowsPeak:   c.ctrlShadows.Peak(),
		TaintedWrites:     c.taints.TaintedWrites(),
		Hier:              c.hier.State(),
		Stride:            c.stride.State(),
	}
	for r := 0; r < isa.NumRegs; r++ {
		st.TaintRoots[r] = c.taints.Root(c.renameMap[r])
	}
	st.Mem = c.backing.state()
	if c.ctx != nil {
		st.Context = c.ctx.State()
	}
	if c.bpBim != nil {
		st.Bimodal = c.bpBim.State()
	}
	if c.bpG != nil {
		st.GShare = c.bpG.State()
	}
	if c.vp != nil {
		st.Value = c.vp.State()
	}
	if c.sset != nil {
		st.StoreSets = c.sset.State()
	}
	return st, nil
}

// state serializes the memory image with pages sorted by key.
func (m *memImage) state() []MemPageState {
	out := make([]MemPageState, 0, len(m.pages))
	for key, p := range m.pages {
		out = append(out, MemPageState{Key: key, Words: p.words, Present: p.present})
	}
	// Insertion sort by key: page counts are small (sparse workload
	// footprints) and this keeps the file free of a sort import.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Key > out[j].Key; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// restoreState rebuilds the memory image from captured pages.
func (m *memImage) restoreState(pages []MemPageState) {
	m.pages = make(map[uint64]*memPage, len(pages))
	m.lastKey, m.lastPage = 0, nil
	m.slab = nil
	m.count = 0
	for i := range pages {
		ps := &pages[i]
		if len(m.slab) == 0 {
			m.slab = make([]memPage, slabPages)
		}
		p := &m.slab[0]
		m.slab = m.slab[1:]
		p.words = ps.Words
		p.present = ps.Present
		m.pages[ps.Key] = p
		for _, w := range ps.Present {
			m.count += bits.OnesCount64(w)
		}
	}
}

// NewFromState builds a core for the given program and configuration, then
// overwrites its long-lived state with a captured snapshot. The
// configuration may differ from the capturing core's in Scheme and
// AddressPrediction — that is the entire point of warm-start forking —
// but structural parameters (cache geometry, predictor tables) must
// match; component restores verify their own configurations and refuse
// mismatches. A section absent from the snapshot (the warm core did not
// instantiate that component) leaves the new core's component cold.
func NewFromState(cfg Config, prog *program.Program, st *CoreState) (*Core, error) {
	c, err := New(cfg, prog)
	if err != nil {
		return nil, err
	}
	if len(st.CommittedPC) != len(prog.Code) {
		return nil, fmt.Errorf("pipeline: checkpoint covers a %d-instruction program, this program has %d",
			len(st.CommittedPC), len(prog.Code))
	}
	if st.Hier == nil {
		return nil, fmt.Errorf("pipeline: checkpoint has no memory hierarchy section")
	}
	if err := c.hier.Restore(st.Hier); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if st.Stride != nil {
		if err := c.stride.Restore(st.Stride); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.ctx != nil && st.Context != nil {
		if err := c.ctx.Restore(st.Context); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.bpBim != nil && st.Bimodal != nil {
		if err := c.bpBim.Restore(st.Bimodal); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.bpG != nil && st.GShare != nil {
		if err := c.bpG.Restore(st.GShare); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.vp != nil && st.Value != nil {
		if err := c.vp.Restore(st.Value); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	if c.sset != nil && st.StoreSets != nil {
		if err := c.sset.Restore(st.StoreSets); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	// New() set up the identity rename mapping, so writing architectural
	// values through it is exact. Physical register numbering differs from
	// the capturing core's, which is unobservable: at quiescence only the
	// architecturally mapped registers carry state, and nothing keys off
	// physical register identity.
	for r := 0; r < isa.NumRegs; r++ {
		c.regVal[r] = st.Regs[r]
		if st.TaintRoots[r] != 0 {
			c.taints.SetRoot(r, st.TaintRoots[r])
		}
	}
	c.taints.SetWrites(st.TaintedWrites)
	c.shadows.SetCensus(st.ShadowsOpened, st.ShadowsPeak)
	c.ctrlShadows.SetCensus(st.CtrlShadowsOpened, st.CtrlShadowsPeak)
	c.backing.restoreState(st.Mem)
	copy(c.committedPC, st.CommittedPC)
	c.cycle = st.Cycle
	c.seqCtr = st.SeqCtr
	c.halted = st.Halted
	c.haltFetched = st.HaltFetched
	c.fetchPC = st.FetchPC
	c.fetchHist = st.FetchHist
	c.Stats = st.Stats
	return c, nil
}
