package pipeline

import (
	"fmt"
	"strings"

	"doppelganger/internal/isa"
)

// DumpState renders the oldest n reorder-buffer entries with their full
// load/store/branch state — the first tool to reach for when diagnosing a
// stall or a deadlock (doppelsim exposes it indirectly via -trace).
func (c *Core) DumpState(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle=%d committed=%d shadows=%d iq=%d lq=%d sq=%d pendResolve=%d\n",
		c.cycle, c.Stats.Committed, c.shadows.Outstanding(), len(c.iq), c.lq.len(), c.sq.len(), len(c.pendingResolve))
	if f, ok := c.shadows.Frontier(); ok {
		fmt.Fprintf(&sb, "shadow frontier seq=%d\n", f)
	}
	for i := 0; i < c.rob.len() && i < n; i++ {
		u := &c.robEntries[c.rob.at(i)]
		fmt.Fprintf(&sb, "rob[%d] seq=%d pc=%d %-24s issued=%v exec=%v prop=%v resolved=%v shadowRes=%v",
			i, u.seq, u.pc, u.in.String(), u.issued, u.executed, u.propagated, u.resolved, u.shadowResolved)
		if u.lqIdx >= 0 {
			e := &c.lqEntries[u.lqIdx]
			fmt.Fprintf(&sb, " | LQ addrValid=%v addr=%#x issued=%v valValid=%v pred=%v predAddr=%#x doppIss=%v preld=%v verif=%v mispred=%v delayed=%v pendStore=%d taintRoot=%d rootSpec=%v",
				e.addrValid, e.addr, e.issued, e.valueValid, e.predicted, e.predAddr, e.doppIssued,
				e.preloaded, e.verified, e.mispredicted, e.delayedMiss, e.pendingStoreSeq,
				e.addrTaintRoot, c.taints.RootSpeculative(e.addrTaintRoot))
		}
		if u.sqIdx >= 0 {
			e := &c.sqEntries[u.sqIdx]
			fmt.Fprintf(&sb, " | SQ addrValid=%v dataValid=%v taintRoot=%d", e.addrValid, e.dataValid, e.addrTaintRoot)
		}
		if u.kind == isa.KindBranch {
			fmt.Fprintf(&sb, " | BR outcome=%v brRoot=%d rootSpec=%v", u.outcomeReady, u.brTaintRoot, c.taints.RootSpeculative(u.brTaintRoot))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
