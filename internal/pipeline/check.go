package pipeline

import "fmt"

// CheckInvariants validates the machine's structural invariants: rename-map
// consistency, physical-register accounting, queue cross-links, and
// shadow-tracker agreement with the reorder buffer. It returns the first
// violation found, or nil.
//
// With Config.SelfCheck set, Step runs this every cycle and panics on a
// violation — slow, but it turns silent state corruption into an immediate,
// attributable failure. The fuzz tests run small machines in this mode.
func (c *Core) CheckInvariants() error {
	nPhys := len(c.regVal)

	// Reorder buffer: strictly increasing sequence numbers, well-formed
	// cross-links into the load and store queues.
	var prevSeq uint64
	loads, stores := 0, 0
	inROBDst := make(map[int]bool, c.rob.len())
	shadowCasters := make(map[uint64]bool)
	for i := 0; i < c.rob.len(); i++ {
		u := &c.robEntries[c.rob.at(i)]
		if u.seq <= prevSeq {
			return fmt.Errorf("rob[%d]: seq %d not increasing (prev %d)", i, u.seq, prevSeq)
		}
		prevSeq = u.seq
		if u.dst != noReg {
			if u.dst < 0 || u.dst >= nPhys {
				return fmt.Errorf("rob[%d] seq %d: dst %d out of range", i, u.seq, u.dst)
			}
			if inROBDst[u.dst] {
				return fmt.Errorf("rob[%d] seq %d: dst %d already used by an in-flight uop", i, u.seq, u.dst)
			}
			inROBDst[u.dst] = true
		}
		if u.lqIdx >= 0 {
			loads++
			e := &c.lqEntries[u.lqIdx]
			if !e.valid || e.u != u {
				return fmt.Errorf("rob[%d] seq %d: broken LQ cross-link", i, u.seq)
			}
		}
		if u.sqIdx >= 0 {
			stores++
			e := &c.sqEntries[u.sqIdx]
			if !e.valid || e.u != u {
				return fmt.Errorf("rob[%d] seq %d: broken SQ cross-link", i, u.seq)
			}
		}
		if u.castsShadow && !u.shadowResolved {
			shadowCasters[u.seq] = true
		}
	}
	if loads != c.lq.len() {
		return fmt.Errorf("%d loads in ROB but %d LQ entries", loads, c.lq.len())
	}
	if stores != c.sq.len() {
		return fmt.Errorf("%d stores in ROB but %d SQ entries", stores, c.sq.len())
	}

	// Load/store queues must be in ROB (age) order.
	var lastLoadSeq uint64
	for i := 0; i < c.lq.len(); i++ {
		e := &c.lqEntries[c.lq.at(i)]
		if e.u.seq <= lastLoadSeq {
			return fmt.Errorf("lq[%d]: out of age order", i)
		}
		lastLoadSeq = e.u.seq
	}
	var lastStoreSeq uint64
	for i := 0; i < c.sq.len(); i++ {
		e := &c.sqEntries[c.sq.at(i)]
		if e.u.seq <= lastStoreSeq {
			return fmt.Errorf("sq[%d]: out of age order", i)
		}
		lastStoreSeq = e.u.seq
	}

	// Rename map: in range, pairwise distinct, disjoint from the free list
	// and from in-flight destinations.
	seen := make(map[int]string, nPhys)
	for arch, phys := range c.renameMap {
		if phys < 0 || phys >= nPhys {
			return fmt.Errorf("renameMap[r%d] = %d out of range", arch, phys)
		}
		if who, dup := seen[phys]; dup {
			return fmt.Errorf("renameMap[r%d] and %s share physical register %d", arch, who, phys)
		}
		seen[phys] = fmt.Sprintf("renameMap[r%d]", arch)
	}
	for _, phys := range c.freeList {
		if who, dup := seen[phys]; dup {
			return fmt.Errorf("free list and %s share physical register %d", who, phys)
		}
		seen[phys] = "freeList"
		if inROBDst[phys] {
			return fmt.Errorf("free physical register %d is an in-flight destination", phys)
		}
	}

	// Physical register accounting: every register is exactly one of
	// {current mapping, free, in-flight destination, pending-free oldDst}.
	// oldDst registers are counted implicitly: they are the remainder.
	mapped := len(c.renameMap) + len(c.freeList)
	inflightDsts := len(inROBDst)
	if mapped+inflightDsts > nPhys {
		return fmt.Errorf("register accounting overflow: %d mapped + %d in flight > %d",
			mapped, inflightDsts, nPhys)
	}

	// Shadow tracker agreement: its unresolved set must be exactly the
	// unresolved shadow casters in the ROB.
	if got, want := c.shadows.Outstanding(), len(shadowCasters); got != want {
		return fmt.Errorf("shadow tracker holds %d shadows, ROB has %d unresolved casters", got, want)
	}
	for seq := range shadowCasters {
		// Frontier-based check: the tracker must consider seq+1 speculative.
		if !c.shadows.Speculative(seq + 1) {
			return fmt.Errorf("shadow %d missing from the tracker", seq)
		}
	}

	// IQ entries must reference live ROB uops.
	for _, u := range c.iq {
		if u.seq > prevSeq || (c.rob.len() > 0 && u.seq < c.robEntries[c.rob.headIdx()].seq) {
			return fmt.Errorf("iq holds stale uop seq %d", u.seq)
		}
	}
	return nil
}
