package pipeline

import "testing"

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{
		Cycles:                    200,
		Committed:                 500,
		CommittedLoads:            100,
		CommittedBranches:         50,
		BranchMispredicts:         5,
		CommittedPredictedLoads:   40,
		CommittedCorrectPredicted: 30,
	}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	if got := s.Coverage(); got != 0.3 {
		t.Errorf("Coverage = %v, want 0.3", got)
	}
	if got := s.Accuracy(); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	if got := s.BranchMispredictRate(); got != 0.1 {
		t.Errorf("BranchMispredictRate = %v, want 0.1", got)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.Coverage() != 0 || s.Accuracy() != 0 || s.BranchMispredictRate() != 0 {
		t.Error("zero stats must yield zero metrics, not NaN")
	}
}

func TestSnapshotMemoryClasses(t *testing.T) {
	p := strideTrainer(100, 0)
	cfg := DefaultConfig()
	cfg.AddressPrediction = true
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 10_000_000); err != nil {
		t.Fatal(err)
	}
	ms := SnapshotMemory(c.Hierarchy())
	if ms.L1Accesses == 0 {
		t.Error("no L1 accesses recorded")
	}
	sum := ms.L1Demand + ms.L1Doppelganger + ms.L1Prefetch + ms.L1Writeback
	if sum != ms.L1Accesses {
		t.Errorf("class breakdown %d does not sum to total %d", sum, ms.L1Accesses)
	}
}
