package pipeline

import "doppelganger/internal/mem"

// Stats accumulates raw event counts over a run. All counters are
// monotonic; derived metrics (IPC, coverage, accuracy) are computed by the
// accessor methods.
type Stats struct {
	Cycles    uint64
	Committed uint64

	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranches uint64
	// CommittedLoadLevel histograms where committed loads were satisfied.
	CommittedLoadLevel [4]uint64

	BranchMispredicts    uint64
	Squashed             uint64 // uops removed by any squash
	MemOrderViolations   uint64
	InvalidationSquashes uint64

	STLFForwards     uint64
	DoMDelayedMisses uint64
	// MemDepStalls counts cycles a load waited for a same-store-set
	// unresolved store instead of speculating past it.
	MemDepStalls uint64
	// STTTaintStalls counts cycles in which a load with a resolved but
	// still-tainted address was prevented from issuing.
	STTTaintStalls   uint64
	PrefetchesIssued uint64
	// MaxInflightPerPC tracks the deepest per-PC in-flight load count seen
	// at dispatch (diagnostic for occurrence-based prediction).
	MaxInflightPerPC uint64

	// Value prediction events (DoM+VP).
	VPPredictions  uint64
	VPCorrect      uint64
	VPMispredicted uint64

	// Doppelganger events.
	DoppPredictions  uint64 // predictions produced at dispatch
	DoppIssued       uint64 // doppelganger memory accesses sent
	DoppVerified     uint64 // predictions that matched the resolved address
	DoppMispredicted uint64 // predictions refuted by the resolved address

	// Commit-level address prediction quality (the paper's Figure 7
	// definitions: coverage is correctly predicted loads over all loads,
	// accuracy is correct predictions over predictions made).
	CommittedPredictedLoads   uint64
	CommittedCorrectPredicted uint64

	// Speculation-shadow and taint census, filled in by StatsSnapshot (the
	// trackers own the live counts).
	ShadowsCast   uint64 // shadows ever opened
	ShadowPeak    uint64 // maximum simultaneously open shadows
	TaintedWrites uint64 // register writes carrying a non-zero taint root
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Coverage returns the fraction of committed loads whose address was
// correctly predicted.
func (s *Stats) Coverage() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.CommittedCorrectPredicted) / float64(s.CommittedLoads)
}

// Accuracy returns the fraction of predictions that were correct, measured
// over committed loads that carried a prediction.
func (s *Stats) Accuracy() float64 {
	if s.CommittedPredictedLoads == 0 {
		return 0
	}
	return float64(s.CommittedCorrectPredicted) / float64(s.CommittedPredictedLoads)
}

// BranchMispredictRate returns mispredict squashes per committed branch.
func (s *Stats) BranchMispredictRate() float64 {
	if s.CommittedBranches == 0 {
		return 0
	}
	return float64(s.BranchMispredicts) / float64(s.CommittedBranches)
}

// MemoryStats snapshots the per-level access counts from a hierarchy.
type MemoryStats struct {
	L1Accesses, L1Misses uint64
	L2Accesses, L2Misses uint64
	L3Accesses, L3Misses uint64
	DRAMAccesses         uint64
	DRAMWrites           uint64
	// WritebacksL1/L2/L3 count dirty-line evictions per level.
	WritebacksL1, WritebacksL2, WritebacksL3 uint64
	// Per-class L1 accesses for traffic attribution.
	L1Demand, L1Doppelganger, L1Prefetch, L1Writeback uint64
}

// SnapshotMemory collects memory statistics from the hierarchy.
func SnapshotMemory(h *mem.Hierarchy) MemoryStats {
	return MemoryStats{
		L1Accesses:     h.L1D.TotalAccesses(),
		L1Misses:       h.L1D.TotalMisses(),
		L2Accesses:     h.L2.TotalAccesses(),
		L2Misses:       h.L2.TotalMisses(),
		L3Accesses:     h.L3.TotalAccesses(),
		L3Misses:       h.L3.TotalMisses(),
		DRAMAccesses:   h.DRAMAccesses,
		DRAMWrites:     h.DRAMWrites,
		WritebacksL1:   h.Writebacks[0],
		WritebacksL2:   h.Writebacks[1],
		WritebacksL3:   h.Writebacks[2],
		L1Demand:       h.L1D.Accesses[mem.ClassDemand],
		L1Doppelganger: h.L1D.Accesses[mem.ClassDoppelganger],
		L1Prefetch:     h.L1D.Accesses[mem.ClassPrefetch],
		L1Writeback:    h.L1D.Accesses[mem.ClassWriteback],
	}
}
