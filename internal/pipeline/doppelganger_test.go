package pipeline

import (
	"testing"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// strideTrainer builds a program whose single load walks stride 8 for
// enough iterations to train the predictor, then continues; extraIters can
// break the stride to exercise the misprediction path.
func strideTrainer(iters int, breakAt int) *program.Program {
	b := program.NewBuilder("trainer")
	const data = 0x20000
	for i := 0; i < iters+8; i++ {
		b.InitMem(data+uint64(i)*8, int64(i*3))
	}
	// Index table: mostly sequential; a break jumps backwards.
	const idxT = 0x40000
	for i := 0; i < iters; i++ {
		v := int64(i)
		if breakAt > 0 && i >= breakAt {
			v = int64((i * 13) % iters) // breaks the stride
		}
		b.InitMem(idxT+uint64(i)*8, v)
	}
	b.LoadI(1, 0)
	b.LoadI(2, int64(iters))
	b.LoadI(3, idxT)
	b.LoadI(6, 0)
	loop := b.Here()
	b.Load(4, 3, 0) // idx
	b.ShlI(5, 4, 3)
	b.AddI(5, 5, data)
	b.Load(5, 5, 0) // dependent load: predictable until breakAt
	b.Add(6, 6, 5)
	b.AddI(3, 3, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Store(6, 3, 0)
	b.Halt()
	return b.MustBuild()
}

// TestDoppelgangerVerifiedPath: a perfectly-strided dependent load gets
// predictions, issues doppelgangers, verifies them, and never mispredicts.
func TestDoppelgangerVerifiedPath(t *testing.T) {
	p := strideTrainer(200, 0)
	cfg := DefaultConfig()
	cfg.Scheme = secure.NDAP
	cfg.AddressPrediction = true
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Stats.DoppPredictions == 0 || c.Stats.DoppVerified == 0 {
		t.Errorf("no verified doppelgangers: preds=%d verified=%d",
			c.Stats.DoppPredictions, c.Stats.DoppVerified)
	}
	if c.Stats.DoppMispredicted > c.Stats.DoppVerified/10 {
		t.Errorf("too many mispredictions on a perfect stride: %d vs %d verified",
			c.Stats.DoppMispredicted, c.Stats.DoppVerified)
	}
	ref := program.Run(p, 10_000_000)
	if c.ArchState().Checksum() != ref.Checksum() {
		t.Error("architectural state mismatch")
	}
}

// TestDoppelgangerMispredictedPath: a stride break forces mispredictions;
// the machine must discard preloads, reissue correctly, and commit the
// right values.
func TestDoppelgangerMispredictedPath(t *testing.T) {
	p := strideTrainer(200, 60)
	for _, scheme := range secure.Schemes() {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.AddressPrediction = true
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 50_000_000); err != nil {
			t.Fatal(err)
		}
		if scheme != secure.Unsafe && c.Stats.DoppMispredicted == 0 {
			t.Errorf("%v: stride break produced no mispredicted doppelgangers", scheme)
		}
		ref := program.Run(p, 10_000_000)
		if c.ArchState().Checksum() != ref.Checksum() {
			t.Errorf("%v: architectural state mismatch after mispredictions", scheme)
		}
	}
}

// TestStoreForwardsIntoPreload (§4.4): an older store whose address matches
// a doppelganger's predicted address must override the preloaded value —
// transparently, without suppressing the doppelganger's memory access.
func TestStoreForwardsIntoPreload(t *testing.T) {
	b := program.NewBuilder("stlf-dopp")
	const (
		guard = 0x8000
		data  = 0x20000
	)
	const iters = 120
	for i := 0; i < iters; i++ {
		b.InitMem(guard+uint64(i)*64, 1)
		b.InitMem(data+uint64(i)*8, 100+int64(i))
	}
	b.LoadI(1, 0)
	b.LoadI(2, iters)
	b.LoadI(3, guard)
	b.LoadI(4, data)
	b.LoadI(9, 0)
	b.LoadI(10, 7777)
	loop := b.Here()
	b.Load(5, 3, 0) // slow guard keeps everything below speculative
	skip := b.NewLabel()
	b.Blt(5, 9, skip)
	b.Bind(skip)
	b.Store(10, 4, 0) // store to the exact address the next load reads
	b.Load(6, 4, 0)   // must get 7777 via forwarding, never stale memory
	b.Add(9, 9, 6)
	b.AddI(3, 3, 64)
	b.AddI(4, 4, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Store(9, 4, 0)
	b.Halt()
	p := b.MustBuild()

	ref := program.Run(p, 10_000_000)
	for _, scheme := range secure.Schemes() {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.AddressPrediction = true
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 50_000_000); err != nil {
			t.Fatal(err)
		}
		if c.ArchState().Checksum() != ref.Checksum() {
			t.Errorf("%v: store-to-load forwarding into preloads produced wrong state", scheme)
		}
	}
}

// TestMemoryOrderViolationSquash: a load that speculates past an older
// store with an unresolved address and consumes the wrong value must be
// squashed and re-executed when the store resolves.
func TestMemoryOrderViolationSquash(t *testing.T) {
	b := program.NewBuilder("violation")
	const data = 0x20000
	const iters = 60
	for i := 0; i < iters; i++ {
		b.InitMem(data+uint64(i)*8, int64(i))
		// Cold lines to make the store's address computation slow.
		b.InitMem(0x8000+uint64(i)*64, int64(i))
	}
	b.LoadI(1, 0)
	b.LoadI(2, iters)
	b.LoadI(3, 0x8000)
	b.LoadI(4, data)
	b.LoadI(9, 0)
	b.LoadI(10, 5555)
	loop := b.Here()
	b.Load(5, 3, 0)   // slow load
	b.AndI(5, 5, 0)   // always zero, but data-dependent (resolves late)
	b.Add(6, 4, 5)    // store address = r4 + slow-zero
	b.Store(10, 6, 0) // address resolves late
	b.Load(7, 4, 0)   // same address: issues early, must be fixed up
	b.Add(9, 9, 7)
	b.AddI(3, 3, 64)
	b.AddI(4, 4, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Store(9, 4, 0)
	b.Halt()
	p := b.MustBuild()

	ref := program.Run(p, 10_000_000)
	if ref.Regs[9] != 5555*iters {
		t.Fatalf("reference r9 = %d, want %d", ref.Regs[9], 5555*iters)
	}
	for _, scheme := range secure.Schemes() {
		for _, ap := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.AddressPrediction = ap
			c, err := New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(0, 50_000_000); err != nil {
				t.Fatal(err)
			}
			if c.ArchState().Checksum() != ref.Checksum() {
				t.Errorf("%v ap=%v: wrong state after store-load aliasing", scheme, ap)
			}
		}
	}
}

// TestInvalidationSnoop (§4.5): an external invalidation matching an
// in-flight load is noted and takes effect at propagation; the final state
// remains correct and the squash is visible in the statistics.
func TestInvalidationSnoop(t *testing.T) {
	b := program.NewBuilder("inval")
	const data = 0x20000
	b.InitMem(data, 42)
	b.LoadI(1, data)
	// A long prefix so the load sits in flight when we inject.
	for i := 0; i < 12; i++ {
		b.Mul(2, 1, 1)
		b.Div(2, 2, 1)
	}
	b.Load(3, 1, 0)
	b.AddI(3, 3, 1)
	b.Halt()
	p := b.MustBuild()

	cfg := DefaultConfig()
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// Step until the load is in the LQ, then invalidate its line.
	injected := false
	for !c.Halted() && c.Cycle() < 100000 {
		c.Step()
		if !injected && c.Cycle() == 20 {
			injected = c.InjectInvalidation(data)
		}
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	if !injected {
		t.Skip("load was not in flight at injection time")
	}
	if got := c.ArchRegs()[3]; got != 43 {
		t.Errorf("r3 = %d, want 43 (invalidation must not corrupt results)", got)
	}
}

func TestRingBuffer(t *testing.T) {
	r := newRing(4)
	if !r.empty() || r.full() {
		t.Fatal("fresh ring state wrong")
	}
	a := r.push()
	b := r.push()
	c := r.push()
	d := r.push()
	if !r.full() || r.len() != 4 {
		t.Fatal("ring should be full")
	}
	if r.headIdx() != a || r.tailIdx() != d {
		t.Fatal("head/tail wrong")
	}
	if r.at(0) != a || r.at(1) != b || r.at(3) != d {
		t.Fatal("at() wrong")
	}
	if got := r.popHead(); got != a {
		t.Fatalf("popHead = %d, want %d", got, a)
	}
	if got := r.popTail(); got != d {
		t.Fatalf("popTail = %d, want %d", got, d)
	}
	e := r.push() // wraps
	if r.len() != 3 || r.tailIdx() != e {
		t.Fatal("wraparound push wrong")
	}
	if r.at(0) != b || r.at(1) != c || r.at(2) != e {
		t.Fatal("order after wrap wrong")
	}
}

func TestRingPanics(t *testing.T) {
	r := newRing(1)
	r.push()
	func() {
		defer func() { _ = recover() }()
		r.push()
		t.Error("push on full ring should panic")
	}()
	r.popHead()
	func() {
		defer func() { _ = recover() }()
		r.popHead()
		t.Error("pop on empty ring should panic")
	}()
}

func TestDumpState(t *testing.T) {
	p := strideTrainer(50, 0)
	cfg := DefaultConfig()
	cfg.AddressPrediction = true
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		c.Step()
	}
	out := c.DumpState(8)
	if len(out) == 0 {
		t.Error("DumpState produced no output")
	}
}

func TestConfigValidation(t *testing.T) {
	p := strideTrainer(10, 0)
	bad := []func(*Config){
		func(c *Config) { c.DecodeWidth = 0 },
		func(c *Config) { c.ROBSize = 0 },
		func(c *Config) { c.LoadPorts = 0 },
		func(c *Config) { c.Scheme = secure.Scheme(99) },
		func(c *Config) { c.ALULatency = 0 },
		func(c *Config) { c.Memory.L1MSHRs = 0 },
		func(c *Config) { c.Stride.Entries = 7 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, p); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunCycleLimit(t *testing.T) {
	b := program.NewBuilder("spin")
	l := b.Here()
	b.Jmp(l)
	b.Halt()
	c, err := New(DefaultConfig(), b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 1000); err == nil {
		t.Error("cycle limit should surface as an error")
	}
}

func TestRunInstructionLimit(t *testing.T) {
	p := strideTrainer(1000, 0)
	c, err := New(DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(500, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Committed < 500 || c.Stats.Committed > 520 {
		t.Errorf("committed %d instructions, want ~500", c.Stats.Committed)
	}
}
