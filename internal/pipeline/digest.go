package pipeline

// MicroDigest fingerprints the attacker-observable micro-architectural
// state of a finished run, component by component. It is the oracle of the
// differential leakage checker (internal/leakcheck): two runs that differ
// only in secret data must produce identical digests under every secure
// speculation scheme, or the secret has leaked into state a co-resident
// attacker can measure.
//
// What each component captures:
//
//   - Cycles: end-to-end execution time (the timing channel).
//   - L1/L2/L3: cache tag + LRU-rank + dirty contents at each level
//     (prime+probe / flush+reload channels).
//   - MSHR: the miss-handling allocation timeline (occupancy back-pressure
//     channel).
//   - Traffic: per-class access/hit/miss counts, DRAM and write-back
//     traffic, MSHR rejections (contention channels).
//   - Stride/Context/Branch: predictor table contents (predictor-state
//     channels; the doppelganger security anchor requires these to be
//     trained on committed execution only).
//
// Architectural state (registers, memory values) is deliberately excluded:
// a victim may legitimately compute on its own secret, and values are not
// observable through the micro-architectural side channels modelled here —
// only addresses and timing are.
type MicroDigest struct {
	Cycles  uint64
	L1      uint64
	L2      uint64
	L3      uint64
	MSHR    uint64
	Traffic uint64
	Stride  uint64
	Context uint64
	Branch  uint64
}

// MicroDigest assembles the digest of the core's current state. Call it on
// a quiescent (halted) core; intermediate digests are well-defined but
// compare meaningfully only at identical cycle counts.
func (c *Core) MicroDigest() MicroDigest {
	h := c.hier
	d := MicroDigest{
		Cycles:  c.cycle,
		L1:      h.L1D.Fingerprint(c.cycle),
		L2:      h.L2.Fingerprint(c.cycle),
		L3:      h.L3.Fingerprint(c.cycle),
		MSHR:    h.MSHRTimeline(),
		Traffic: h.TrafficFingerprint(),
		Stride:  c.stride.Snapshot(),
	}
	if c.ctx != nil {
		d.Context = c.ctx.Snapshot()
	}
	if c.bpG != nil {
		d.Branch = c.bpG.Snapshot()
	} else if s, ok := c.bp.(interface{ Snapshot() uint64 }); ok {
		d.Branch = s.Snapshot()
	}
	return d
}

// digestComponents pairs each component with its name, in reporting order.
func (d MicroDigest) components() [9]struct {
	Name string
	V    uint64
} {
	return [9]struct {
		Name string
		V    uint64
	}{
		{"cycles", d.Cycles},
		{"L1", d.L1},
		{"L2", d.L2},
		{"L3", d.L3},
		{"mshr-timeline", d.MSHR},
		{"traffic", d.Traffic},
		{"stride-predictor", d.Stride},
		{"context-predictor", d.Context},
		{"branch-predictor", d.Branch},
	}
}

// Diff returns the names of the components in which the two digests
// disagree, in reporting order; an empty slice means the runs are
// indistinguishable under this oracle.
func (d MicroDigest) Diff(o MicroDigest) []string {
	var out []string
	a, b := d.components(), o.components()
	for i := range a {
		if a[i].V != b[i].V {
			out = append(out, a[i].Name)
		}
	}
	return out
}
