package pipeline

import (
	"testing"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// TestFuzzRandomConfigurations runs random programs on randomly shaped
// machines (widths, window sizes, latencies, predictor kinds, schemes) with
// the invariant checker enabled — the broadest structural stress in the
// suite. Architectural state must always match the interpreter.
func TestFuzzRandomConfigurations(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	r := fuzzRNG(0xfeedface)
	for round := 0; round < rounds; round++ {
		cfg := DefaultConfig()
		cfg.DecodeWidth = 1 + r.intn(6)
		cfg.IssueWidth = 1 + r.intn(8)
		cfg.CommitWidth = 1 + r.intn(8)
		cfg.ROBSize = 8 + r.intn(64)
		cfg.IQSize = 4 + r.intn(32)
		cfg.LQSize = 2 + r.intn(16)
		cfg.SQSize = 2 + r.intn(12)
		cfg.LoadPorts = 1 + r.intn(3)
		cfg.MulLatency = 1 + uint64(r.intn(5))
		cfg.DivLatency = 1 + uint64(r.intn(20))
		cfg.PrefetchDegree = r.intn(4)
		cfg.PrefetchDistance = 1 + r.intn(24)
		cfg.Scheme = secure.AllSchemes()[r.intn(len(secure.AllSchemes()))]
		cfg.AddressPrediction = r.intn(2) == 0
		cfg.AddressPredictorKind = AddressPredictorKind(r.intn(3))
		cfg.BranchPredictorKind = BranchPredictorKind(r.intn(2))
		cfg.MemDepPrediction = r.intn(2) == 0
		cfg.ExceptionShadows = r.intn(2) == 0
		cfg.SelfCheck = true
		if cfg.Scheme == secure.DoM && !cfg.AddressPrediction && r.intn(2) == 0 {
			cfg.ValuePrediction = true
		}

		p := randomProgram(uint64(round)*1013+7, 8+r.intn(16), 40+r.intn(60))
		ref := program.Run(p, 5_000_000)
		c, err := New(cfg, p)
		if err != nil {
			t.Fatalf("round %d: %v (config %+v)", round, err, cfg)
		}
		if err := c.Run(0, 500_000_000); err != nil {
			t.Fatalf("round %d (%v ap=%v vp=%v): %v",
				round, cfg.Scheme, cfg.AddressPrediction, cfg.ValuePrediction, err)
		}
		if c.ArchState().Checksum() != ref.Checksum() {
			t.Errorf("round %d (%v ap=%v vp=%v, rob=%d iq=%d lq=%d sq=%d): state mismatch",
				round, cfg.Scheme, cfg.AddressPrediction, cfg.ValuePrediction,
				cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize)
		}
	}
}
