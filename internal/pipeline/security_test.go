package pipeline

import (
	"testing"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// spectreGadget builds a Spectre-v1 universal-read gadget. A bounds-checked
// table walk is trained in-bounds; the final access is out of bounds, so
// the (mispredicted) speculative path loads the secret and transmits it by
// touching probe[secret*line]. The attacker's observation is whether the
// secret-selected probe line ended up cached.
//
// Layout:
//
//	idxTable: attacker-controlled indices, in-bounds except the last
//	array1:   8 public words; the secret lives out of bounds at array1+64*8
//	probe:    256 cache lines, never touched architecturally
func spectreGadget() (*program.Program, uint64, int64) {
	const secret = int64(37) // value the attacker tries to read
	p, probe := spectreGadgetWithSecret(secret)
	return p, probe, secret
}

// spectreGadgetWithSecret builds the gadget with a chosen secret value, so
// tests can compare the microarchitectural traces of two different secrets.
func spectreGadgetWithSecret(secret int64) (*program.Program, uint64) {
	const (
		idxTable = 0x10_000
		array1   = 0x20_000
		probe    = 0x40_000
		rounds   = 24
	)
	const guard = 0x60_000 // one cold line per round; every word holds 8
	b := program.NewBuilder("spectre")
	for i := 0; i < rounds; i++ {
		v := int64(i % 8) // in bounds
		if i == rounds-1 {
			v = 64 // out of bounds: array1+64*8 holds the secret
		}
		b.InitMem(idxTable+uint64(i)*8, v)
		b.InitMem(guard+uint64(i)*64, 8) // the bound, on a cold line
	}
	for i := 0; i < 8; i++ {
		b.InitMem(array1+uint64(i)*8, int64(i))
	}
	b.InitMem(array1+64*8, secret)

	const (
		pidx  = 1
		end   = 2
		idx   = 3
		bound = 4
		t1    = 5
		x     = 6
		y     = 7
		acc   = 8
		pg    = 9
		vic   = 10
	)
	// Victim phase: the victim legitimately touches its own secret, so the
	// secret line is warm in the cache (the classic Spectre setup).
	b.LoadI(vic, array1)
	b.Load(vic, vic, 64*8)
	b.LoadI(pidx, idxTable)
	b.LoadI(end, idxTable+rounds*8)
	b.LoadI(pg, guard)
	b.LoadI(acc, 0)
	loop := b.Here()
	b.Load(idx, pidx, 0)
	// The bound is re-loaded from a cold line every round, so the bounds
	// check resolves only after a full miss: a wide speculation window.
	b.Load(bound, pg, 0)
	skip := b.NewLabel()
	b.Bge(idx, bound, skip) // bounds check: trained not-taken, mispredicts last
	b.ShlI(t1, idx, 3)
	b.AddI(t1, t1, array1)
	b.Load(x, t1, 0) // speculative secret access
	b.ShlI(t1, x, 6) // x * 64: selects a probe line
	b.AddI(t1, t1, probe)
	b.Load(y, t1, 0) // transmitter: caches probe[x*64]
	b.Add(acc, acc, y)
	b.Bind(skip)
	b.AddI(pidx, pidx, 8)
	b.AddI(pg, pg, 64)
	b.Blt(pidx, end, loop)
	b.Store(acc, end, 0)
	b.Halt()
	return b.MustBuild(), probe
}

// TestSpectreLeaksOnUnsafeBaseline confirms the attack works against the
// unprotected core: the secret-selected probe line is fetched by the
// squashed wrong path and remains observable in the cache.
func TestSpectreLeaksOnUnsafeBaseline(t *testing.T) {
	for _, ap := range []bool{false, true} {
		p, probe, secret := spectreGadget()
		cfg := DefaultConfig()
		cfg.Scheme = secure.Unsafe
		cfg.AddressPrediction = ap
		cfg.PrefetchDegree = 0 // keep prefetch extrapolation out of the probe region
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 10_000_000); err != nil {
			t.Fatal(err)
		}
		leakLine := probe + uint64(secret)*64
		if !c.Hierarchy().L1D.Present(leakLine) && !c.Hierarchy().L2.Present(leakLine) {
			t.Errorf("ap=%v: unsafe baseline did not leak — the gadget is broken, so the security tests prove nothing", ap)
		}
		// The architectural result must still be correct (wrong path squashed).
		ref := program.Run(p, 1_000_000)
		if c.ArchState().Checksum() != ref.Checksum() {
			t.Errorf("ap=%v: architectural state corrupted by speculation", ap)
		}
	}
}

// probeTrace runs the gadget with the given secret and returns which probe
// lines are observable anywhere in the hierarchy afterwards — exactly what
// a cache-timing attacker can measure.
func probeTrace(t *testing.T, scheme secure.Scheme, ap bool, secret int64, mutate ...func(*Config)) [256]bool {
	t.Helper()
	p, probe := spectreGadgetWithSecret(secret)
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.AddressPrediction = ap
	cfg.PrefetchDegree = 0 // keep prefetch extrapolation out of the probe region
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 10_000_000); err != nil {
		t.Fatal(err)
	}
	var present [256]bool
	h := c.Hierarchy()
	for line := uint64(0); line < 256; line++ {
		la := probe + line*64
		present[line] = h.L1D.Present(la) || h.L2.Present(la) || h.L3.Present(la)
	}
	return present
}

// TestSpectreBlockedBySchemes is the paper's threat-model-transparency
// claim in executable form: under NDA-P, STT, and DoM — with or without
// doppelganger loads — the attacker-visible cache state must be *identical*
// for two different secrets. Doppelgangers may touch predictor-extrapolated
// lines, but those addresses are trained on committed execution only and so
// cannot depend on the secret.
func TestSpectreBlockedBySchemes(t *testing.T) {
	const altSecret = 91
	for _, scheme := range []secure.Scheme{secure.NDAP, secure.STT, secure.DoM, secure.NDAS, secure.STTSpectre} {
		for _, ap := range []bool{false, true} {
			a := probeTrace(t, scheme, ap, 37)
			b := probeTrace(t, scheme, ap, altSecret)
			if a != b {
				t.Errorf("%v ap=%v: observable cache state depends on the secret", scheme, ap)
			}
			if a[37] || b[altSecret] {
				t.Errorf("%v ap=%v: the secret-selected probe line itself is observable", scheme, ap)
			}
		}
	}
	// Sanity: the same comparison on the unsafe baseline must differ,
	// otherwise this test has no teeth.
	a := probeTrace(t, secure.Unsafe, false, 37)
	b := probeTrace(t, secure.Unsafe, false, altSecret)
	if a == b {
		t.Error("unsafe baseline traces identical: the gadget no longer leaks and the test is vacuous")
	}
}

// TestPredictorUnaffectedBySpeculation proves the doppelganger security
// anchor: squashed (wrong-path) loads never train the address predictor.
// Two programs differ only in code that executes speculatively and is
// always squashed; their stride tables must be identical afterwards.
func TestPredictorUnaffectedBySpeculation(t *testing.T) {
	build := func(wrongPathLoads bool) *program.Program {
		b := program.NewBuilder("iso")
		const data = 0x8000
		for i := 0; i < 64; i++ {
			b.InitMem(data+uint64(i)*8, int64(i))
		}
		b.LoadI(1, 0)  // counter
		b.LoadI(2, 40) // iterations
		b.LoadI(3, data)
		b.LoadI(6, 1)
		b.LoadI(9, 1)
		loop := b.Here()
		b.Load(4, 3, 0) // trained load: stride 8
		skip := b.NewLabel()
		// Always-taken branch on two constant registers: with the forced
		// not-taken predictor below, the block only ever executes on the
		// wrong path and is always squashed.
		b.Beq(6, 9, skip) // always taken -> block below is wrong-path only
		if wrongPathLoads {
			// Wrong-path-only loads at attacker-chosen addresses.
			b.Load(5, 3, 0x4000)
			b.Load(5, 3, 0x4800)
			b.Load(5, 3, 0x5000)
		} else {
			b.Nop()
			b.Nop()
			b.Nop()
		}
		b.Bind(skip)
		b.AddI(3, 3, 8)
		b.AddI(1, 1, 1)
		b.Blt(1, 2, loop)
		b.Halt()
		return b.MustBuild()
	}

	snapshots := make([]uint64, 2)
	for i, wrong := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.AddressPrediction = true
		c, err := New(cfg, build(wrong))
		if err != nil {
			t.Fatal(err)
		}
		// Force wrong-path execution of the block: predict not-taken.
		c.SetBranchPredictor(forceNotTaken{})
		if err := c.Run(0, 10_000_000); err != nil {
			t.Fatal(err)
		}
		snapshots[i] = c.Stride().Snapshot()
	}
	if snapshots[0] != snapshots[1] {
		t.Error("wrong-path loads changed the address predictor state: speculative training leak")
	}
}

// forceNotTaken drives every conditional branch down its fall-through path,
// maximising wrong-path execution in the isolation test.
type forceNotTaken struct{}

func (forceNotTaken) Predict(uint64) bool { return false }
func (forceNotTaken) Train(uint64, bool)  {}

// TestSpectreBlockedWithExtensions re-proves secret independence for the
// extension configurations: the hybrid (context) address predictor, the
// gshare branch predictor, and DoM with value prediction. Every predictor
// is trained only at commit, so the guarantee must survive all of them.
func TestSpectreBlockedWithExtensions(t *testing.T) {
	muts := map[string]func(*Config){
		"hybrid-ap": func(c *Config) {
			c.AddressPrediction = true
			c.AddressPredictorKind = PredictorHybrid
		},
		"context-ap": func(c *Config) {
			c.AddressPrediction = true
			c.AddressPredictorKind = PredictorContext
		},
		"gshare": func(c *Config) { c.BranchPredictorKind = BranchGShare },
	}
	for name, mut := range muts {
		for _, scheme := range []secure.Scheme{secure.NDAP, secure.STT, secure.DoM} {
			a := probeTrace(t, scheme, false, 37, mut)
			b := probeTrace(t, scheme, false, 91, mut)
			if a != b {
				t.Errorf("%v with %s: observable cache state depends on the secret", scheme, name)
			}
		}
	}
	// DoM+VP: value prediction may roll back, but the cache trace must
	// still be secret-independent.
	vp := func(c *Config) { c.ValuePrediction = true; c.AddressPrediction = false }
	a := probeTrace(t, secure.DoM, false, 37, vp)
	b := probeTrace(t, secure.DoM, false, 91, vp)
	if a != b {
		t.Error("DoM+VP: observable cache state depends on the secret")
	}
}

// TestContextPredictorUnaffectedBySpeculation extends the predictor
// isolation proof to the Markov table: wrong-path loads must not create or
// alter transitions.
func TestContextPredictorUnaffectedBySpeculation(t *testing.T) {
	build := func(wrongPathLoads bool) *program.Program {
		b := program.NewBuilder("ctxiso")
		const data = 0x8000
		for i := 0; i < 64; i++ {
			b.InitMem(data+uint64(i)*8, int64(i))
		}
		b.LoadI(1, 0)
		b.LoadI(2, 40)
		b.LoadI(3, data)
		b.LoadI(6, 1)
		b.LoadI(9, 1)
		loop := b.Here()
		b.Load(4, 3, 0)
		skip := b.NewLabel()
		b.Beq(6, 9, skip) // always taken; block below is wrong-path only
		if wrongPathLoads {
			b.Load(5, 3, 0x4000)
			b.Load(5, 3, 0x4800)
			b.Load(5, 3, 0x5000)
		} else {
			b.Nop()
			b.Nop()
			b.Nop()
		}
		b.Bind(skip)
		b.AddI(3, 3, 8)
		b.AddI(1, 1, 1)
		b.Blt(1, 2, loop)
		b.Halt()
		return b.MustBuild()
	}
	snaps := make([]uint64, 2)
	for i, wrong := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.AddressPrediction = true
		cfg.AddressPredictorKind = PredictorHybrid
		c, err := New(cfg, build(wrong))
		if err != nil {
			t.Fatal(err)
		}
		c.SetBranchPredictor(forceNotTaken{})
		if err := c.Run(0, 10_000_000); err != nil {
			t.Fatal(err)
		}
		snaps[i] = c.ContextPredictor().Snapshot()
	}
	if snaps[0] != snaps[1] {
		t.Error("wrong-path loads changed the context predictor state")
	}
}
