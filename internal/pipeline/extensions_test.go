package pipeline

import (
	"testing"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// TestExtensionsCorrectness runs the fuzz corpus through every extension
// configuration: the extra schemes, the context/hybrid predictors, gshare,
// and DoM+VP. Architectural state must always match the interpreter.
func TestExtensionsCorrectness(t *testing.T) {
	type variant struct {
		name   string
		mutate func(*Config)
	}
	variants := []variant{
		{"nda-s", func(c *Config) { c.Scheme = secure.NDAS }},
		{"nda-s+ap", func(c *Config) { c.Scheme = secure.NDAS; c.AddressPrediction = true }},
		{"stt-spectre", func(c *Config) { c.Scheme = secure.STTSpectre }},
		{"stt-spectre+ap", func(c *Config) { c.Scheme = secure.STTSpectre; c.AddressPrediction = true }},
		{"dom+vp", func(c *Config) { c.Scheme = secure.DoM; c.ValuePrediction = true }},
		{"gshare", func(c *Config) { c.BranchPredictorKind = BranchGShare }},
		{"gshare+ap", func(c *Config) { c.BranchPredictorKind = BranchGShare; c.AddressPrediction = true }},
		{"context+ap", func(c *Config) {
			c.AddressPrediction = true
			c.AddressPredictorKind = PredictorContext
		}},
		{"hybrid+ap", func(c *Config) {
			c.AddressPrediction = true
			c.AddressPredictorKind = PredictorHybrid
		}},
		{"hybrid+ap+gshare+dom", func(c *Config) {
			c.Scheme = secure.DoM
			c.AddressPrediction = true
			c.AddressPredictorKind = PredictorHybrid
			c.BranchPredictorKind = BranchGShare
		}},
	}
	for seed := 1; seed <= 8; seed++ {
		p := randomProgram(uint64(seed)*555, 12+seed, 60)
		ref := program.Run(p, 5_000_000)
		refSum := ref.Checksum()
		for _, v := range variants {
			cfg := DefaultConfig()
			cfg.SelfCheck = seed <= 2 // full invariant checking on a subset
			v.mutate(&cfg)
			c, err := New(cfg, p)
			if err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			if err := c.Run(0, 200_000_000); err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			if c.ArchState().Checksum() != refSum {
				t.Errorf("seed %d %s: architectural state mismatch", seed, v.name)
			}
		}
	}
}

// TestNDAStrictSlowerThanPermissive: strict propagation can only delay more.
func TestNDAStrictSlowerThanPermissive(t *testing.T) {
	p := gatedDependentOp()
	run := func(s secure.Scheme) uint64 {
		cfg := DefaultConfig()
		cfg.Scheme = s
		cfg.PrefetchDegree = 0
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 100_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats.Cycles
	}
	ndap := run(secure.NDAP)
	ndas := run(secure.NDAS)
	if ndas <= ndap {
		t.Errorf("NDA-S (%d cycles) should be slower than NDA-P (%d)", ndas, ndap)
	}
}

// TestSTTSpectreWeakerThanFuturistic: under the Spectre taint model, loads
// made speculative only by unresolved store addresses are untainted, so a
// store-shadow-heavy pattern runs faster than under full STT.
func TestSTTSpectreWeakerThanFuturistic(t *testing.T) {
	b := program.NewBuilder("store-shadows")
	const (
		slow = 0x8000
		data = 0x20000
		side = 0x60000
	)
	const iters = 64
	for i := 0; i < iters; i++ {
		b.InitMem(slow+uint64(i)*64, 0)
		b.InitMem(data+uint64(i)*8, int64(i%32))
	}
	b.LoadI(1, 0)
	b.LoadI(2, iters)
	b.LoadI(3, slow)
	b.LoadI(4, data)
	b.LoadI(10, 1)
	loop := b.Here()
	// A store whose address depends on a slow load: a long data shadow
	// with no control speculation involved.
	b.Load(5, 3, 0) // slow (cold line)
	b.AndI(5, 5, 0) // always 0, resolves late
	b.Add(6, 4, 5)  // store address
	b.Store(10, 6, 0)
	// Under the data shadow: a load feeding a dependent (transmitter) load.
	b.Load(7, 4, 8)
	b.ShlI(8, 7, 3)
	b.AddI(8, 8, side)
	b.Load(9, 8, 0) // transmitter: tainted under STT, clean under Spectre model
	b.AddI(3, 3, 64)
	b.AddI(4, 4, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Halt()
	p := b.MustBuild()

	run := func(s secure.Scheme) (uint64, uint64) {
		cfg := DefaultConfig()
		cfg.Scheme = s
		cfg.PrefetchDegree = 0
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 100_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats.Cycles, c.Stats.STTTaintStalls
	}
	stt, sttStalls := run(secure.STT)
	spectre, spectreStalls := run(secure.STTSpectre)
	if spectreStalls >= sttStalls {
		t.Errorf("Spectre-model stalls (%d) should be fewer than futuristic (%d)", spectreStalls, sttStalls)
	}
	if float64(spectre) > 1.02*float64(stt) {
		t.Errorf("STT-Spectre (%d cycles) should not be materially slower than STT (%d)", spectre, stt)
	}
}

// TestDoMValuePrediction: on value-predictable delayed loads, DoM+VP makes
// predictions, validates them, and squashes mispredictions — and the paper's
// claim holds: address prediction beats value prediction on the same kernel
// when values are unpredictable but addresses are not.
func TestDoMValuePrediction(t *testing.T) {
	// Kernel: gated stream whose *values* are a clean counter (value-
	// predictable) — VP's best case.
	build := func(valueStride int64, noisy bool) *program.Program {
		b := program.NewBuilder("vp-kernel")
		const data = 0x100000
		st := uint64(7)
		for i := 0; i < 4000; i++ {
			v := int64(i) * valueStride
			if noisy {
				st = st*6364136223846793005 + 1
				v = int64(st % 1000)
			}
			b.InitMem(data+uint64(i)*64, v)
		}
		b.LoadI(1, data)
		b.LoadI(2, data+4000*64)
		b.LoadI(3, 0)
		b.LoadI(4, -1)
		loop := b.Here()
		b.Load(5, 1, 0)
		skip := b.NewLabel()
		b.Blt(5, 4, skip) // never taken; resolution waits the load
		b.Add(3, 3, 5)
		b.Bind(skip)
		b.AddI(1, 1, 64)
		b.Blt(1, 2, loop)
		b.Store(3, 2, 0)
		b.Halt()
		return b.MustBuild()
	}

	run := func(p *program.Program, vp, ap bool) (*Core, uint64) {
		cfg := DefaultConfig()
		cfg.Scheme = secure.DoM
		cfg.ValuePrediction = vp
		cfg.AddressPrediction = ap
		cfg.PrefetchDegree = 0
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 200_000_000); err != nil {
			t.Fatal(err)
		}
		ref := program.Run(p, 10_000_000)
		if c.ArchState().Checksum() != ref.Checksum() {
			t.Fatal("architectural state mismatch")
		}
		return c, c.Stats.Cycles
	}

	clean := build(3, false)
	cVP, vpCycles := run(clean, true, false)
	if cVP.Stats.VPPredictions == 0 || cVP.Stats.VPCorrect == 0 {
		t.Errorf("no value predictions on a counter-valued stream: pred=%d correct=%d",
			cVP.Stats.VPPredictions, cVP.Stats.VPCorrect)
	}
	_, domCycles := run(clean, false, false)
	if vpCycles >= domCycles {
		t.Errorf("DoM+VP (%d cycles) should beat plain DoM (%d) on value-predictable data", vpCycles, domCycles)
	}

	// Noisy values, strided addresses: VP mispredicts (and must squash,
	// staying correct), AP wins.
	noisy := build(0, true)
	cVPn, vpNoisy := run(noisy, true, false)
	if cVPn.Stats.VPPredictions > 0 && cVPn.Stats.VPMispredicted == 0 {
		t.Error("noisy values produced predictions but no mispredictions")
	}
	_, apNoisy := run(noisy, false, true)
	if apNoisy >= vpNoisy {
		t.Errorf("DoM+AP (%d cycles) should beat DoM+VP (%d) when values are noisy but addresses stride (§2.3)",
			apNoisy, vpNoisy)
	}
}

// TestHybridPredictorCoversPointerChains: the context predictor covers a
// fixed pointer chain the stride table cannot — the paper's future-work
// direction quantified.
func TestHybridPredictorCoversPointerChains(t *testing.T) {
	p := buildSerialChain(400, false)
	run := func(kind AddressPredictorKind) *Core {
		cfg := DefaultConfig()
		cfg.Scheme = secure.NDAP
		cfg.AddressPrediction = true
		cfg.AddressPredictorKind = kind
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 200_000_000); err != nil {
			t.Fatal(err)
		}
		return c
	}
	stride := run(PredictorStride)
	hybrid := run(PredictorHybrid)
	if stride.Stats.Coverage() > 0.05 {
		t.Errorf("stride coverage %.2f on a random chain, want ~0", stride.Stats.Coverage())
	}
	// The chain repeats after the walk? It does not (single traversal), so
	// the context predictor only helps once transitions repeat; run a
	// two-lap chain instead for the positive case.
	p2 := buildTwoLapChain(300)
	strideTwo := runOn(t, p2, PredictorStride)
	hybridTwo := runOn(t, p2, PredictorHybrid)
	if hybridTwo.Stats.Coverage() <= strideTwo.Stats.Coverage()+0.2 {
		t.Errorf("hybrid coverage %.2f not clearly above stride %.2f on a repeating chain",
			hybridTwo.Stats.Coverage(), strideTwo.Stats.Coverage())
	}
	if hybridTwo.Stats.Cycles >= strideTwo.Stats.Cycles {
		t.Errorf("hybrid (%d cycles) should beat stride (%d) on a repeating pointer chain",
			hybridTwo.Stats.Cycles, strideTwo.Stats.Cycles)
	}
	_ = hybrid
}

func runOn(t *testing.T, p *program.Program, kind AddressPredictorKind) *Core {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scheme = secure.NDAP
	cfg.AddressPrediction = true
	cfg.AddressPredictorKind = kind
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 500_000_000); err != nil {
		t.Fatal(err)
	}
	ref := program.Run(p, 50_000_000)
	if c.ArchState().Checksum() != ref.Checksum() {
		t.Fatal("architectural state mismatch")
	}
	return c
}

// buildTwoLapChain walks a randomised pointer cycle twice, so address
// transitions repeat and a Markov predictor can learn them.
func buildTwoLapChain(nodes int) *program.Program {
	b := program.NewBuilder("twolap")
	const arena = 0x400_0000
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	st := uint64(777)
	for i := nodes - 1; i > 0; i-- {
		st = st*6364136223846793005 + 1442695040888963407
		j := int(st % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	addrOf := func(k int) uint64 { return arena + uint64(perm[k])*64 }
	for k := 0; k < nodes; k++ {
		b.InitMem(addrOf(k), int64(addrOf((k+1)%nodes))) // cycle
	}
	b.InitReg(1, int64(addrOf(0)))
	b.LoadI(2, 0)
	b.LoadI(3, int64(2*nodes)) // two laps
	loop := b.Here()
	b.Load(1, 1, 0)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, loop)
	b.Halt()
	return b.MustBuild()
}

// TestGShareBeatsBimodalOnCorrelatedBranches: a strictly alternating branch
// defeats a bimodal counter but is perfectly predictable from one bit of
// history.
func TestGShareBeatsBimodalOnCorrelatedBranches(t *testing.T) {
	b := program.NewBuilder("alternating")
	b.LoadI(1, 0)
	b.LoadI(2, 4000)
	b.LoadI(3, 0)
	loop := b.Here()
	b.AndI(4, 1, 1) // parity of the counter
	skip := b.NewLabel()
	b.Beq(4, 3, skip) // taken on even iterations: strict alternation
	b.AddI(3, 3, 0)
	b.Bind(skip)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Halt()
	p := b.MustBuild()

	run := func(kind BranchPredictorKind) uint64 {
		cfg := DefaultConfig()
		cfg.BranchPredictorKind = kind
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 100_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats.BranchMispredicts
	}
	bimodal := run(BranchBimodal)
	gshare := run(BranchGShare)
	if gshare*4 > bimodal {
		t.Errorf("gshare mispredicts (%d) should be far below bimodal (%d) on alternating branches",
			gshare, bimodal)
	}
}

// TestVPConfigExclusions: value prediction refuses invalid combinations.
func TestVPConfigExclusions(t *testing.T) {
	p := buildSerialChain(10, false)
	cfg := DefaultConfig()
	cfg.Scheme = secure.DoM
	cfg.ValuePrediction = true
	cfg.AddressPrediction = true
	if _, err := New(cfg, p); err == nil {
		t.Error("VP+AP should be rejected")
	}
	cfg = DefaultConfig()
	cfg.Scheme = secure.STT
	cfg.ValuePrediction = true
	if _, err := New(cfg, p); err == nil {
		t.Error("VP outside DoM should be rejected")
	}
}
