package pipeline

import (
	"fmt"

	"doppelganger/internal/isa"
	"doppelganger/internal/mem"
	"doppelganger/internal/obs"
	"doppelganger/internal/predictor"
	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// fetched is a decoded instruction waiting in the fetch/decode buffer.
type fetched struct {
	pc         uint64
	in         isa.Instruction
	predTaken  bool
	predTarget uint64
	hist       uint64 // speculative global history at fetch (gshare)
}

// Core is the out-of-order processor. Create one per program run with New;
// a Core is single-use (Run once) and not safe for concurrent use.
type Core struct {
	cfg  Config
	prog *program.Program

	hier   *mem.Hierarchy
	bp     predictor.BranchPredictor
	bpBim  *predictor.Bimodal // non-nil when bp is the bimodal (devirtualized)
	bpG    *predictor.GShare  // non-nil when BranchGShare is selected
	stride *predictor.Stride
	ctx    *predictor.Context   // non-nil for context/hybrid address prediction
	vp     *predictor.Value     // non-nil when value prediction is enabled
	sset   *predictor.StoreSets // non-nil when memory dependence prediction is on
	// shadows tracks all shadow casters; ctrlShadows tracks only branches
	// (the Spectre taint model's visibility definition).
	shadows     secure.ShadowTracker
	ctrlShadows secure.ShadowTracker
	taints      *secure.TaintTracker

	cycle  uint64
	seqCtr uint64
	halted bool

	// Physical register file: 32 architectural + ROBSize rename registers.
	regVal    []int64
	regReady  []bool
	renameMap [isa.NumRegs]int
	freeList  []int

	rob        ring
	robEntries []uop

	iq             []*uop // dispatch order
	inflightExec   []*uop // ALU executions awaiting completion
	pendingResolve []*uop // branches awaiting resolution

	lq        ring
	lqEntries []lqEntry
	sq        ring
	sqEntries []sqEntry

	// Per-lq-entry wait on a specific store's data (0 = none).
	// Kept in lqEntry via pendingStoreSeq; see memory.go.

	// backing is committed architectural memory.
	backing *memImage

	fetchPC     uint64
	fetchBuf    []fetched
	haltFetched bool
	// fetchStalled suppresses fetch entirely; Drain uses it to let the
	// in-flight window complete without admitting new instructions.
	fetchStalled bool
	// fetchHist is the speculative global branch history (gshare only),
	// repaired on every squash.
	fetchHist uint64

	// inflight counts dispatched-but-not-committed dynamic instances per
	// load PC, for the predictor's address-prediction mode; committedPC
	// counts total committed instances per PC so late predictions (value
	// prediction fires at delayed-miss time, not dispatch) can rebase
	// their occurrence numbers. Both are indexed by PC: loads only ever
	// dispatch from in-range PCs (out-of-range fetch reads as Nop).
	inflight    []int32
	committedPC []uint64

	prefetchBuf []uint64

	// Observability: attached trace sink (tracing caches sink != nil for the
	// hot path), optional cycle window, and cached metric handles. When the
	// sink supports batch delivery, events accumulate in traceBuf and are
	// handed over in chunks (and on every Run exit).
	sink           obs.TraceSink
	batchSink      obs.BatchSink
	traceBuf       []obs.Event
	tracing        bool
	winOn          bool
	winFrom, winTo uint64
	met            *coreMetrics

	// Observation trace capture (observe.go): rolling digests of committed
	// and transient-inclusive address/control traces for the contract
	// oracle. Off unless EnableObsTraces is called.
	obsOn       bool
	obsAddrSeq  uint64
	obsCtrlSeq  uint64
	obsAddrSpec uint64
	obsCtrlSpec uint64

	// Undo-scheme state (secure.Cleanup): undoOn caches the scheme
	// predicate for the hot path; specLog buffers speculative-trace folds
	// of tagged accesses in perform order until their instruction commits
	// (fold) or squashes (drop), because under an undo scheme a squashed
	// access's hierarchy footprint is erased and must not appear in the
	// observable address trace either.
	undoOn  bool
	specLog []specAcc

	// Stats accumulates raw event counts for the run.
	Stats Stats
}

// New builds a core for the given program. The program is validated; the
// configuration must be valid too.
func New(cfg Config, prog *program.Program) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	nPhys := isa.NumRegs + cfg.ROBSize
	c := &Core{
		cfg:         cfg,
		prog:        prog,
		hier:        mem.NewHierarchy(cfg.Memory),
		bp:          predictor.NewBimodal(cfg.Branch),
		stride:      predictor.NewStride(cfg.Stride),
		regVal:      make([]int64, nPhys),
		regReady:    make([]bool, nPhys),
		robEntries:  make([]uop, cfg.ROBSize),
		rob:         newRing(cfg.ROBSize),
		lqEntries:   make([]lqEntry, cfg.LQSize),
		lq:          newRing(cfg.LQSize),
		sqEntries:   make([]sqEntry, cfg.SQSize),
		sq:          newRing(cfg.SQSize),
		backing:     newMemImage(),
		fetchPC:     prog.Entry,
		inflight:    make([]int32, len(prog.Code)),
		committedPC: make([]uint64, len(prog.Code)),
	}
	c.bpBim, _ = c.bp.(*predictor.Bimodal)
	// Pre-size every structure the cycle loop appends to, so steady-state
	// simulation never grows a slice: queue contents are bounded by the
	// structure sizes (anything in flight occupies a ROB slot).
	c.iq = make([]*uop, 0, cfg.IQSize)
	c.inflightExec = make([]*uop, 0, cfg.ROBSize)
	c.pendingResolve = make([]*uop, 0, cfg.ROBSize)
	c.fetchBuf = make([]fetched, 0, 2*cfg.DecodeWidth)
	c.prefetchBuf = make([]uint64, 0, cfg.PrefetchDegree)
	c.shadows.Reserve(cfg.ROBSize)
	c.ctrlShadows.Reserve(cfg.ROBSize)
	if cfg.Scheme.ControlOnlyTaint() {
		c.taints = secure.NewTaintTracker(nPhys, &c.ctrlShadows)
	} else {
		c.taints = secure.NewTaintTracker(nPhys, &c.shadows)
	}
	if cfg.BranchPredictorKind == BranchGShare {
		c.bpG = predictor.NewGShare(cfg.GShare)
	}
	if cfg.AddressPredictorKind != PredictorStride {
		c.ctx = predictor.NewContext(cfg.Context)
	}
	if cfg.ValuePrediction {
		c.vp = predictor.NewValue(cfg.Value)
	}
	if cfg.MemDepPrediction {
		c.sset = predictor.NewStoreSets(cfg.StoreSets)
	}
	if cfg.Scheme.UndoesSpeculation() {
		// CleanupSpec-style undo: the hierarchy journals every tagged
		// speculative side effect; squashes roll the journal back (see
		// squashAfter) and commit retires it (see commit). The planted
		// weakenings selectively disable parts of the rollback.
		c.undoOn = true
		c.hier.EnableUndo(mem.UndoOptions{
			SkipLRUUndo: cfg.Mutation.SkipsLRUUndo(),
			DropEvicted: cfg.Mutation.DropsEvictedLines(),
		})
		c.specLog = make([]specAcc, 0, cfg.ROBSize)
	}
	for r := 0; r < isa.NumRegs; r++ {
		c.renameMap[r] = r
		c.regVal[r] = prog.InitRegs[r]
		c.regReady[r] = true
	}
	c.freeList = make([]int, 0, cfg.ROBSize)
	for p := nPhys - 1; p >= isa.NumRegs; p-- {
		c.freeList = append(c.freeList, p)
	}
	for a, v := range prog.InitMem {
		c.backing.store(program.AlignAddr(a), v)
	}
	return c, nil
}

// Hierarchy exposes the memory system (for statistics and tests).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Stride exposes the shared prefetcher/address-predictor table (for
// statistics and the security tests that fingerprint its state).
func (c *Core) Stride() *predictor.Stride { return c.stride }

// ContextPredictor exposes the Markov address predictor, or nil when the
// stride-only configuration is active.
func (c *Core) ContextPredictor() *predictor.Context { return c.ctx }

// apPredict runs address-prediction mode across the configured tables.
func (c *Core) apPredict(pc uint64, occurrence int) (uint64, bool) {
	switch c.cfg.AddressPredictorKind {
	case PredictorContext:
		if c.ctx == nil {
			return 0, false
		}
		return c.ctx.Predict(pc, occurrence)
	case PredictorHybrid:
		if addr, ok := c.stride.Predict(pc, occurrence); ok {
			return addr, ok
		}
		if c.ctx == nil {
			return 0, false
		}
		return c.ctx.Predict(pc, occurrence)
	default:
		return c.stride.Predict(pc, occurrence)
	}
}

// SetBranchPredictor replaces the branch direction predictor. It must be
// called before Run; tests use static predictors for deterministic
// misprediction patterns.
func (c *Core) SetBranchPredictor(bp predictor.BranchPredictor) {
	c.bp = bp
	c.bpBim, _ = bp.(*predictor.Bimodal)
}

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Halted reports whether the program has committed its Halt.
func (c *Core) Halted() bool { return c.halted }

// Run simulates until the program halts, maxInsts instructions have
// committed (0 = unlimited), or maxCycles cycles have elapsed. It returns
// an error only if the cycle limit was hit without halting, which indicates
// a deadlocked pipeline or a runaway program.
func (c *Core) Run(maxInsts, maxCycles uint64) error {
	defer c.flushObs()
	for !c.halted {
		if maxInsts > 0 && c.Stats.Committed >= maxInsts {
			return nil
		}
		if maxCycles > 0 && c.cycle >= maxCycles {
			return fmt.Errorf("pipeline: cycle limit %d reached at %d committed instructions (possible deadlock)",
				maxCycles, c.Stats.Committed)
		}
		c.Step()
	}
	return nil
}

// Step advances the machine by one cycle.
func (c *Core) Step() {
	c.cycle++
	c.commit()
	if c.halted {
		return
	}
	c.writeback()
	c.resolveBranches()
	c.storeQueuePass()
	c.loadQueuePass()
	c.issue()
	c.dispatch()
	c.fetch()
	if c.cfg.SelfCheck {
		if err := c.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("pipeline: invariant violated at cycle %d: %v", c.cycle, err))
		}
	}
	c.Stats.Cycles = c.cycle
	if c.met != nil {
		c.met.robOcc.Observe(uint64(c.rob.len()))
		c.met.iqOcc.Observe(uint64(len(c.iq)))
	}
}

// ArchRegs returns the current architectural register values (the committed
// rename mapping).
func (c *Core) ArchRegs() [isa.NumRegs]int64 {
	var regs [isa.NumRegs]int64
	for r := 0; r < isa.NumRegs; r++ {
		regs[r] = c.regVal[c.renameMap[r]]
	}
	return regs
}

// ArchState assembles the committed architectural state for comparison with
// the reference interpreter. Callers must only rely on it when the core is
// quiescent (halted), since speculative rename mappings are not rolled back
// here.
func (c *Core) ArchState() *program.ArchState {
	st := &program.ArchState{
		Mem:    c.backing.toMap(),
		Halted: c.halted,
		Insts:  c.Stats.Committed,
		Loads:  c.Stats.CommittedLoads,
		Stores: c.Stats.CommittedStores,
	}
	st.Regs = c.ArchRegs()
	return st
}

// ReadMem returns the committed value of the memory word at addr.
func (c *Core) ReadMem(addr uint64) int64 { return c.backing.load(program.AlignAddr(addr)) }

// InjectInvalidation models an external coherence invalidation reaching the
// core (§4.5): the line is removed from the caches and the load queue is
// snooped. Live doppelganger entries are marked rather than squashed; the
// mark takes effect at propagation only if the prediction verifies.
// Returns whether any LQ entry matched.
func (c *Core) InjectInvalidation(addr uint64) bool {
	c.hier.Invalidate(addr)
	la := mem.LineAddr(addr)
	matched := false
	for i := 0; i < c.lq.len(); i++ {
		e := &c.lqEntries[c.lq.at(i)]
		if !e.valid {
			continue
		}
		if a, ok := e.matchAddr(); ok && mem.LineAddr(a) == la {
			e.invalidated = true
			matched = true
		}
	}
	return matched
}

// alloc pops a free physical register; the free list is sized so this can
// never fail while the ROB has space.
func (c *Core) alloc() int {
	n := len(c.freeList)
	if n == 0 {
		panic("pipeline: physical register file exhausted")
	}
	p := c.freeList[n-1]
	c.freeList = c.freeList[:n-1]
	return p
}

func (c *Core) free(p int) {
	c.freeList = append(c.freeList, p)
	c.taints.Clear(p)
}

// squashAfter removes every uop younger than survivorSeq, restores the
// rename map and branch history, and redirects fetch to newPC.
func (c *Core) squashAfter(survivorSeq, newPC, newHist uint64) {
	for !c.rob.empty() {
		u := &c.robEntries[c.rob.tailIdx()]
		if u.seq <= survivorSeq {
			break
		}
		if u.dst != noReg {
			c.renameMap[u.in.Dst] = u.oldDst
			c.regReady[u.dst] = false
			c.free(u.dst)
		}
		if u.lqIdx >= 0 {
			if got := c.lq.tailIdx(); got != u.lqIdx {
				panic(fmt.Sprintf("pipeline: LQ squash mismatch: tail %d, uop %d", got, u.lqIdx))
			}
			c.lqEntries[u.lqIdx] = lqEntry{}
			c.lq.popTail()
			c.inflight[u.pc]--
		}
		if u.sqIdx >= 0 {
			if got := c.sq.tailIdx(); got != u.sqIdx {
				panic(fmt.Sprintf("pipeline: SQ squash mismatch: tail %d, uop %d", got, u.sqIdx))
			}
			c.sqEntries[u.sqIdx] = sqEntry{}
			c.sq.popTail()
		}
		c.rob.popTail()
		c.Stats.Squashed++
	}
	c.shadows.SquashAfter(survivorSeq)
	c.ctrlShadows.SquashAfter(survivorSeq)
	if c.undoOn {
		// Undo scheme: erase the squashed instructions' hierarchy footprint
		// (fills, recency, counters, MSHRs) and drop their buffered
		// speculative-trace folds — retrospective protection happens here.
		c.hier.RollbackAfter(survivorSeq)
		c.dropSpecAfter(survivorSeq)
	}
	c.fetchHist = newHist
	c.iq = filterYounger(c.iq, survivorSeq)
	c.inflightExec = filterYounger(c.inflightExec, survivorSeq)
	c.pendingResolve = filterYounger(c.pendingResolve, survivorSeq)
	c.fetchBuf = c.fetchBuf[:0]
	c.fetchPC = newPC
	c.haltFetched = false
}

func filterYounger(list []*uop, survivorSeq uint64) []*uop {
	out := list[:0]
	for _, u := range list {
		if u.seq <= survivorSeq {
			out = append(out, u)
		}
	}
	return out
}

// speculative reports whether the instruction is under any shadow.
func (c *Core) speculative(seq uint64) bool { return c.shadows.Speculative(seq) }
