package pipeline

import (
	"fmt"

	"doppelganger/internal/isa"
	"doppelganger/internal/mem"
	"doppelganger/internal/obs"
)

// commit retires up to CommitWidth finished instructions in program order.
// Commit is where all the non-speculative training happens: the stride
// table (address predictor / prefetcher) and the branch predictor learn
// only here, which is the security anchor of the doppelganger mechanism.
// Under an undo scheme it is also where the rollback journal's retired
// prefix is finalised (the committed instructions' side effects are now
// architectural) and their buffered speculative-trace folds apply.
func (c *Core) commit() {
	frontier := c.commitCycle()
	if c.undoOn && frontier != 0 {
		c.drainSpecAt(frontier)
		c.hier.RetireUpTo(frontier)
	}
}

// commitCycle runs one cycle's in-order retirement and returns the highest
// committed sequence number (0 when nothing committed).
func (c *Core) commitCycle() (frontier uint64) {
	for n := 0; n < c.cfg.CommitWidth && !c.rob.empty(); n++ {
		u := &c.robEntries[c.rob.headIdx()]
		if !c.canCommit(u) {
			return frontier
		}
		switch u.kind {
		case isa.KindHalt:
			c.halted = true
		case isa.KindLoad:
			c.commitLoad(u)
		case isa.KindStore:
			c.commitStore(u)
		case isa.KindBranch:
			if c.bpG != nil {
				c.bpG.TrainWithHistory(u.pc, u.hist, u.actTaken)
			} else if c.bpBim != nil {
				c.bpBim.Train(u.pc, u.actTaken)
			} else {
				c.bp.Train(u.pc, u.actTaken)
			}
			if c.obsOn {
				c.obsCommitBranch(u.pc, u.actTaken, u.actTarget)
			}
			c.Stats.CommittedBranches++
		}
		if u.oldDst != noReg {
			c.free(u.oldDst)
		}
		frontier = u.seq
		c.rob.popHead()
		c.Stats.Committed++
		if c.halted {
			return frontier
		}
	}
	return frontier
}

func (c *Core) canCommit(u *uop) bool {
	switch u.kind {
	case isa.KindNop, isa.KindJump, isa.KindHalt:
		return true
	case isa.KindALU:
		return u.propagated
	case isa.KindLoad:
		if !u.propagated {
			return false
		}
		// A value-predicted load must be validated before it may commit.
		e := &c.lqEntries[u.lqIdx]
		return !e.vpUsed || e.valueValid
	case isa.KindBranch:
		return u.resolved
	case isa.KindStore:
		e := &c.sqEntries[u.sqIdx]
		return e.addrValid && e.dataValid && u.shadowResolved
	default:
		panic(fmt.Sprintf("pipeline: cannot commit kind %d", u.kind))
	}
}

func (c *Core) commitLoad(u *uop) {
	if got := c.lq.headIdx(); got != u.lqIdx {
		panic(fmt.Sprintf("pipeline: LQ commit mismatch: head %d, uop %d", got, u.lqIdx))
	}
	e := &c.lqEntries[u.lqIdx]

	if c.obsOn {
		c.obsCommitMem(obsTagLoad, e.addr)
	}
	c.Stats.CommittedLoads++
	if e.hadPrediction {
		c.Stats.CommittedPredictedLoads++
		if e.predAddr == e.addr {
			c.Stats.CommittedCorrectPredicted++
		}
	}
	c.Stats.CommittedLoadLevel[e.level]++

	// DoM delayed replacement update for speculative hits.
	if e.needsL1Touch {
		c.hier.TouchL1(e.addr)
	}

	// Non-speculative predictor training (prefetches fire at access time,
	// in prefetching mode, from this commit-trained table).
	c.stride.Train(u.pc, e.addr)
	if c.ctx != nil {
		c.ctx.Train(u.pc, e.addr)
	}
	if c.vp != nil {
		c.vp.Train(u.pc, u.result)
	}

	c.committedPC[u.pc]++
	c.inflight[u.pc]--

	c.lqEntries[u.lqIdx] = lqEntry{}
	c.lq.popHead()
}

func (c *Core) commitStore(u *uop) {
	if got := c.sq.headIdx(); got != u.sqIdx {
		panic(fmt.Sprintf("pipeline: SQ commit mismatch: head %d, uop %d", got, u.sqIdx))
	}
	e := &c.sqEntries[u.sqIdx]

	c.backing.store(e.addr, e.data)
	res := c.hier.Access(c.cycle, e.addr, mem.ClassWriteback, mem.AccessOptions{NoMSHR: true, Write: true})
	if c.obsOn {
		c.obsCommitMem(obsTagStore, e.addr)
		c.obsSpecAccess(uint8(mem.ClassWriteback), e.addr)
	}
	c.Stats.CommittedStores++
	if c.tracing {
		c.emit(obs.Event{Kind: obs.KindCacheAccess, Seq: u.seq, PC: u.pc, Addr: e.addr,
			Level: uint8(res.Level), Class: uint8(mem.ClassWriteback), Lat: res.Latency})
	}

	c.sqEntries[u.sqIdx] = sqEntry{}
	c.sq.popHead()
}
