package pipeline

import "fmt"

// SetTraceWindow enables event tracing (load issues, doppelganger issues,
// propagations, mispredict squashes) for cycles in [from, to]. Events are
// written to standard output; pass 0, 0 to disable. Intended for debugging
// and the CLI's -trace flag.
func (c *Core) SetTraceWindow(from, to uint64) {
	c.traceFrom, c.traceTo = from, to
}

// trace emits one event line when tracing is enabled for the current cycle.
func (c *Core) trace(format string, args ...any) {
	if c.traceFrom == 0 || c.cycle < c.traceFrom || c.cycle > c.traceTo {
		return
	}
	fmt.Printf("[%6d] ", c.cycle)
	fmt.Printf(format+"\n", args...)
}
