package pipeline

import "doppelganger/internal/obs"

// Tracing: the core emits typed obs.Events to an attached TraceSink. With
// no sink attached (the default), every emission site costs one predictable
// branch on c.tracing — the nil fast path benchmarked by
// BenchmarkSimulatorThroughput.

// SetTraceSink attaches a trace sink; pass nil to detach. Must be called
// before Run (the core is single-use and not safe for concurrent use).
// Sinks implementing obs.BatchSink receive events in buffered batches;
// buffered events are delivered at every Run exit (see FlushTrace).
func (c *Core) SetTraceSink(s obs.TraceSink) {
	c.FlushTrace()
	c.sink = s
	c.tracing = s != nil
	c.batchSink, _ = s.(obs.BatchSink)
	if c.batchSink != nil && c.traceBuf == nil {
		c.traceBuf = make([]obs.Event, 0, traceBatchSize)
	}
}

// traceBatchSize is how many events accumulate before a batched sink gets a
// delivery.
const traceBatchSize = 256

// FlushTrace delivers buffered trace events to the sink. Run flushes on
// every exit, so a sink read after a completed run always holds the full
// trace; call this directly only when inspecting the sink between manual
// Steps.
func (c *Core) FlushTrace() {
	if len(c.traceBuf) > 0 {
		c.batchSink.EmitBatch(c.traceBuf)
		c.traceBuf = c.traceBuf[:0]
	}
}

// SetCycleWindow restricts event emission to cycles in [from, to]
// (inclusive). A window may start at cycle 0; it limits which events reach
// the sink but does not itself enable tracing — attach a sink for that.
func (c *Core) SetCycleWindow(from, to uint64) {
	c.winOn, c.winFrom, c.winTo = true, from, to
}

// ClearCycleWindow removes the cycle window, so an attached sink sees every
// event.
func (c *Core) ClearCycleWindow() { c.winOn = false }

// SetTraceWindow enables event tracing for cycles in [from, to]; pass 0, 0
// to disable. If no sink is attached it installs a human-readable sink on
// standard output, preserving this method's historical behaviour.
//
// Deprecated: use SetTraceSink plus SetCycleWindow (or the sim package's
// WithTracer and WithTraceWindow run options). Note the historical contract
// makes a window starting at cycle 0 unreachable — 0, 0 means "disable" —
// which SetCycleWindow fixes with an explicit enabled flag.
func (c *Core) SetTraceWindow(from, to uint64) {
	if from == 0 && to == 0 {
		c.ClearCycleWindow()
		c.SetTraceSink(nil)
		return
	}
	c.SetCycleWindow(from, to)
	if c.sink == nil {
		c.SetTraceSink(obs.Stdout)
	}
}

// emit stamps the current cycle and forwards the event to the sink,
// applying the cycle window. Callers must check c.tracing first.
func (c *Core) emit(e obs.Event) {
	if c.winOn && (c.cycle < c.winFrom || c.cycle > c.winTo) {
		return
	}
	e.Cycle = c.cycle
	if c.batchSink != nil {
		c.traceBuf = append(c.traceBuf, e)
		if len(c.traceBuf) == cap(c.traceBuf) {
			c.FlushTrace()
		}
		return
	}
	c.sink.Emit(e)
}

// noteShadowOpen records that u began casting a speculation shadow.
func (c *Core) noteShadowOpen(u *uop) {
	u.shadowAt = c.cycle
	if c.tracing {
		c.emit(obs.Event{Kind: obs.KindShadowOpen, Seq: u.seq, PC: u.pc})
	}
}

// noteShadowClose records that u's shadow resolved, observing its lifetime.
// Shadows removed by a squash never reach here (their lifetime is not a
// resolution).
func (c *Core) noteShadowClose(u *uop) {
	life := c.cycle - u.shadowAt
	if c.met != nil {
		c.met.shadowLifetime.Observe(life)
	}
	if c.tracing {
		c.emit(obs.Event{Kind: obs.KindShadowClose, Seq: u.seq, PC: u.pc, Lat: life})
	}
}

// coreMetrics caches per-run histogram batches for the per-event and
// per-cycle observations; nil when no registry is attached. Batches
// accumulate without atomics and fold into the shared registry on
// FlushMetrics (every Run exit does this).
type coreMetrics struct {
	shadowLifetime *obs.HistogramBatch
	loadLatency    *obs.HistogramBatch
	robOcc         *obs.HistogramBatch
	iqOcc          *obs.HistogramBatch
}

// SetMetrics attaches a metrics registry: the core observes shadow
// lifetimes, demand-load latencies and per-cycle ROB/IQ occupancy into
// scheme/ap-labeled histograms, and the memory hierarchy counts per-level
// hits and misses. Pass nil to detach (pending batched observations are
// flushed first). End-of-run counters are flushed separately via
// RecordStats (the sim package does both).
func (c *Core) SetMetrics(m *obs.Metrics) {
	if m == nil {
		c.FlushMetrics()
		c.met = nil
		c.hier.SetMetrics(nil)
		return
	}
	ap := "false"
	if c.cfg.AddressPrediction {
		ap = "true"
	}
	ls := []obs.Label{obs.L("scheme", c.cfg.Scheme.String()), obs.L("ap", ap)}
	c.met = &coreMetrics{
		shadowLifetime: m.Histogram("sim_shadow_lifetime_cycles",
			"Cycles each speculation shadow stayed open, from cast to resolution.",
			obs.LifetimeBuckets, ls...).Batch(),
		loadLatency: m.Histogram("sim_load_latency_cycles",
			"Round-trip latency of issued demand loads.",
			obs.LatencyBuckets, ls...).Batch(),
		robOcc: m.Histogram("sim_rob_occupancy",
			"Per-cycle reorder-buffer occupancy.",
			obs.OccupancyBuckets, ls...).Batch(),
		iqOcc: m.Histogram("sim_iq_occupancy",
			"Per-cycle issue-queue occupancy.",
			obs.OccupancyBuckets, ls...).Batch(),
	}
	c.hier.SetMetrics(m)
}

// FlushMetrics folds the core's and the hierarchy's locally batched
// observations into the attached registry. Run does this on every exit;
// call it directly only when scraping the registry between manual Steps.
func (c *Core) FlushMetrics() {
	if c.met != nil {
		c.met.shadowLifetime.Flush()
		c.met.loadLatency.Flush()
		c.met.robOcc.Flush()
		c.met.iqOcc.Flush()
	}
	c.hier.FlushMetrics()
}

// flushObs delivers all buffered observability state (trace events and
// batched metrics) at the end of a run segment.
func (c *Core) flushObs() {
	c.FlushTrace()
	c.FlushMetrics()
}
