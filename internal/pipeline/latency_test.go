package pipeline

import (
	"testing"

	"doppelganger/internal/program"
)

// buildSerialChain lays out a randomised pointer chain, one node per cache
// line, optionally inserting a 50/50 data-dependent branch per hop.
func buildSerialChain(nodes int, withBranch bool) *program.Program {
	b := program.NewBuilder("serial_chain")
	const arena = 0x400_0000
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	st := uint64(12345)
	for i := nodes - 1; i > 0; i-- {
		st = st*6364136223846793005 + 1442695040888963407
		j := int(st % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	addrOf := func(k int) uint64 { return arena + uint64(perm[k])*64 }
	for k := 0; k < nodes-1; k++ {
		b.InitMem(addrOf(k), int64(addrOf(k+1)))
		st = st*6364136223846793005 + 1
		b.InitMem(addrOf(k)+8, int64(st%100))
	}
	b.InitMem(addrOf(nodes-1), 0)
	b.InitReg(1, int64(addrOf(0)))
	b.LoadI(2, 0)
	b.LoadI(4, 50)
	b.LoadI(3, 0)
	loop := b.Here()
	if withBranch {
		b.Load(5, 1, 8) // payload (same line as the pointer)
		skip := b.NewLabel()
		b.Blt(5, 4, skip)
		b.Add(3, 3, 5)
		b.Bind(skip)
	}
	b.Load(1, 1, 0)
	b.Bne(1, 2, loop)
	b.Halt()
	return b.MustBuild()
}

// missLatency is the full L1-miss-to-DRAM round trip under DefaultConfig.
func missLatency(cfg Config) uint64 {
	return cfg.Memory.L1D.Latency + cfg.Memory.L2.Latency +
		cfg.Memory.L3.Latency + cfg.Memory.MemLatency
}

// TestSerialChainLatency pins the core's fundamental timing: a dependent
// pointer chain through DRAM must take at least the miss latency per hop —
// no mechanism may leak the next address early.
func TestSerialChainLatency(t *testing.T) {
	const nodes = 1000
	p := buildSerialChain(nodes, false)
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 100_000_000); err != nil {
		t.Fatal(err)
	}
	perHop := float64(c.Stats.Cycles) / nodes
	if min := float64(missLatency(cfg)); perHop < min {
		t.Errorf("chain ran at %.1f cycles/hop, below the %v-cycle miss latency: dependency enforcement broken", perHop, min)
	}
	if perHop > float64(missLatency(cfg))+10 {
		t.Errorf("chain ran at %.1f cycles/hop, far above the miss latency: pipelining broken", perHop)
	}
}

// TestBranchChainLatency extends the chain with a same-line payload branch:
// the branch may not accelerate the chain (a regression test for the
// instant-cache-fill bug where a same-line access bypassed the in-flight
// miss).
func TestBranchChainLatency(t *testing.T) {
	const nodes = 800
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0

	run := func(withBranch bool) uint64 {
		p := buildSerialChain(nodes, withBranch)
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 100_000_000); err != nil {
			t.Fatal(err)
		}
		ref := program.Run(p, 10_000_000)
		if got := c.ArchState().Checksum(); got != ref.Checksum() {
			t.Fatalf("architectural state mismatch (withBranch=%v)", withBranch)
		}
		return c.Stats.Cycles
	}

	plain := run(false)
	branched := run(true)
	if branched < plain {
		t.Errorf("adding a dependent branch made the chain faster (%d < %d cycles): timing leak", branched, plain)
	}
}
