package pipeline

import (
	"testing"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// aliasingLoop builds a loop in which a load repeatedly aliases a store
// whose address resolves late: without memory dependence prediction the
// load speculates past the store, violates, and squashes every iteration.
func aliasingLoop(iters int) *program.Program {
	b := program.NewBuilder("aliasing")
	const (
		slow = 0x8000
		data = 0x20000
	)
	for i := 0; i < iters; i++ {
		b.InitMem(slow+uint64(i)*64, 0)
	}
	b.LoadI(1, 0)
	b.LoadI(2, int64(iters))
	b.LoadI(3, slow)
	b.LoadI(4, data)
	b.LoadI(9, 0)
	b.LoadI(10, 777)
	loop := b.Here()
	b.Load(5, 3, 0)   // cold line: slow
	b.AndI(5, 5, 0)   // always zero, resolves late
	b.Add(6, 4, 5)    // store address = data (late)
	b.Store(10, 6, 0) // the aliasing store
	b.Load(7, 4, 0)   // same address: violates without memdep prediction
	b.Add(9, 9, 7)
	b.AddI(3, 3, 64)
	b.AddI(4, 4, 8)
	b.AddI(1, 1, 1)
	b.Blt(1, 2, loop)
	b.Store(9, 4, 0)
	b.Halt()
	return b.MustBuild()
}

// TestStoreSetPredictorKillsViolations: memory dependence prediction must
// learn the aliasing pair and eliminate the recurring violation squashes,
// with identical architectural results.
func TestStoreSetPredictorKillsViolations(t *testing.T) {
	p := aliasingLoop(80)
	ref := program.Run(p, 10_000_000)

	run := func(memdep bool) *Core {
		cfg := DefaultConfig()
		cfg.MemDepPrediction = memdep
		cfg.PrefetchDegree = 0
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 100_000_000); err != nil {
			t.Fatal(err)
		}
		if c.ArchState().Checksum() != ref.Checksum() {
			t.Fatalf("memdep=%v: architectural state mismatch", memdep)
		}
		return c
	}
	off := run(false)
	on := run(true)
	if off.Stats.MemOrderViolations < 10 {
		t.Fatalf("test premise broken: only %d violations without prediction", off.Stats.MemOrderViolations)
	}
	if on.Stats.MemOrderViolations*4 > off.Stats.MemOrderViolations {
		t.Errorf("memdep prediction left %d violations (baseline %d)",
			on.Stats.MemOrderViolations, off.Stats.MemOrderViolations)
	}
	if on.Stats.MemDepStalls == 0 {
		t.Error("no memdep stalls recorded although the predictor should be gating the load")
	}
	if on.Stats.Cycles >= off.Stats.Cycles {
		t.Errorf("memdep prediction (%d cycles) should beat recurring squashes (%d)",
			on.Stats.Cycles, off.Stats.Cycles)
	}
}

// TestStoreSetAcrossSchemes: the predictor must preserve correctness under
// every scheme, with and without doppelgangers.
func TestStoreSetAcrossSchemes(t *testing.T) {
	p := aliasingLoop(40)
	ref := program.Run(p, 10_000_000)
	for _, scheme := range secure.AllSchemes() {
		for _, ap := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.AddressPrediction = ap
			cfg.MemDepPrediction = true
			cfg.SelfCheck = true
			c, err := New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(0, 200_000_000); err != nil {
				t.Fatalf("%v ap=%v: %v", scheme, ap, err)
			}
			if c.ArchState().Checksum() != ref.Checksum() {
				t.Errorf("%v ap=%v: state mismatch with memdep prediction", scheme, ap)
			}
		}
	}
}

// TestExceptionShadows: with E-shadows on, loads cast shadows until their
// addresses translate, so DoM delays more misses and NDA delays more
// propagations; correctness is unaffected.
func TestExceptionShadows(t *testing.T) {
	p := gatedDependentOp()
	ref := program.Run(p, 10_000_000)
	run := func(eshadows bool) *Core {
		cfg := DefaultConfig()
		cfg.Scheme = secure.DoM
		cfg.ExceptionShadows = eshadows
		cfg.PrefetchDegree = 0
		cfg.SelfCheck = true
		c, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0, 100_000_000); err != nil {
			t.Fatal(err)
		}
		if c.ArchState().Checksum() != ref.Checksum() {
			t.Fatal("architectural state mismatch")
		}
		return c
	}
	off := run(false)
	on := run(true)
	if on.Stats.Cycles < off.Stats.Cycles {
		t.Errorf("E-shadows (%d cycles) should not be faster than C+D shadows only (%d)",
			on.Stats.Cycles, off.Stats.Cycles)
	}
	if on.Stats.DoMDelayedMisses < off.Stats.DoMDelayedMisses {
		t.Errorf("E-shadows should delay at least as many misses (%d vs %d)",
			on.Stats.DoMDelayedMisses, off.Stats.DoMDelayedMisses)
	}
}

// TestCheckInvariantsDetectsCorruption: the self-checker must actually
// catch broken state, not just pass on healthy machines.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	p := aliasingLoop(20)
	cfg := DefaultConfig()
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		c.Step()
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("healthy machine failed the check: %v", err)
	}
	// Corrupt the rename map: alias two architectural registers.
	c.renameMap[1] = c.renameMap[2]
	if err := c.CheckInvariants(); err == nil {
		t.Error("aliased rename map not detected")
	}
	c.renameMap[1] = c.freeList[0]
	if err := c.CheckInvariants(); err == nil {
		t.Error("rename map pointing into the free list not detected")
	}
}
