package pipeline

import (
	"testing"

	"doppelganger/internal/isa"
	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// sumLoop builds: sum array of n words at base into r3, store result, halt.
func sumLoop(n int) *program.Program {
	b := program.NewBuilder("sumloop")
	const base = 0x1000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	b.InitWords(base, vals)
	b.LoadI(1, base)            // r1 = ptr
	b.LoadI(2, base+int64(n)*8) // r2 = end
	b.LoadI(3, 0)               // r3 = sum
	loop := b.Here()
	b.Load(4, 1, 0)   // r4 = *ptr
	b.Add(3, 3, 4)    // sum += r4
	b.AddI(1, 1, 8)   // ptr += 8
	b.Blt(1, 2, loop) // while ptr < end
	b.Store(3, 1, 0)  // mem[end] = sum
	b.Halt()
	return b.MustBuild()
}

func runBoth(t *testing.T, p *program.Program, cfg Config) (*program.ArchState, *Core) {
	t.Helper()
	ref := program.Run(p, 10_000_000)
	if !ref.Halted {
		t.Fatalf("reference interpreter did not halt")
	}
	c, err := New(cfg, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Run(0, 50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := c.ArchState()
	if got.Insts != ref.Insts {
		t.Errorf("committed %d instructions, reference executed %d", got.Insts, ref.Insts)
	}
	if got.Checksum() != ref.Checksum() {
		for r := 0; r < isa.NumRegs; r++ {
			if got.Regs[r] != ref.Regs[r] {
				t.Errorf("r%d = %d, want %d", r, got.Regs[r], ref.Regs[r])
			}
		}
		for a, v := range ref.Mem {
			if got.Mem[a] != v {
				t.Errorf("mem[%#x] = %d, want %d", a, got.Mem[a], v)
			}
		}
		t.Fatalf("architectural state mismatch")
	}
	return ref, c
}

func TestSmokeAllSchemes(t *testing.T) {
	p := sumLoop(64)
	for _, scheme := range secure.Schemes() {
		for _, ap := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.AddressPrediction = ap
			name := scheme.String()
			if ap {
				name += "+ap"
			}
			t.Run(name, func(t *testing.T) {
				_, c := runBoth(t, p, cfg)
				if c.Stats.CommittedLoads != 64 {
					t.Errorf("committed loads = %d, want 64", c.Stats.CommittedLoads)
				}
				t.Logf("%s: cycles=%d IPC=%.3f cov=%.2f acc=%.2f dopp=%d",
					name, c.Stats.Cycles, c.Stats.IPC(), c.Stats.Coverage(),
					c.Stats.Accuracy(), c.Stats.DoppIssued)
			})
		}
	}
}
