package pipeline

// Observation trace capture: rolling digests of the address and control
// traces an attacker-observer sees, at two execution modes each. The
// committed (seq) traces fold only architecturally retired operations; the
// speculative (spec) traces fold everything the machine *performs* —
// wrong-path fetches and every cache-hierarchy access that changes state,
// including transient ones. Accesses the hierarchy refuses (MSHR-full
// rejections) and DoM delayed misses change nothing anywhere, and
// store-to-load forwarded values never reach the hierarchy, so none of them
// fold.
//
// Capture is off by default and costs one predictable branch per site when
// off; sim.Observe enables it for runs that request trace-visible clauses.

const (
	obsOffset = 1469598103934665603
	obsPrime  = 1099511628211
)

// obsMix folds one 64-bit quantity into the rolling FNV-style digest,
// byte-by-byte, matching the mixing discipline of the other fingerprints.
func obsMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= obsPrime
	}
	return h
}

// Tags distinguishing operation kinds within one trace digest, so e.g. a
// committed load and a committed store to the same address do not collide.
const (
	obsTagLoad  = 1
	obsTagStore = 2
)

// EnableObsTraces switches on observation trace capture. Call before the
// first Step; the digests seed to a non-zero offset so an enabled empty
// trace is distinguishable from a disabled one.
func (c *Core) EnableObsTraces() {
	c.obsOn = true
	c.obsAddrSeq = obsOffset
	c.obsCtrlSeq = obsOffset
	c.obsAddrSpec = obsOffset
	c.obsCtrlSpec = obsOffset
}

// ObsTraces returns the four rolling trace digests: committed address
// trace, committed control trace, transient-inclusive address trace, and
// transient-inclusive control (fetch PC) trace. All zero unless
// EnableObsTraces was called.
func (c *Core) ObsTraces() (addrSeq, ctrlSeq, addrSpec, ctrlSpec uint64) {
	return c.obsAddrSeq, c.obsCtrlSeq, c.obsAddrSpec, c.obsCtrlSpec
}

// obsCommitMem folds one committed memory operation (in commit order) into
// the committed address trace.
func (c *Core) obsCommitMem(tag, addr uint64) {
	c.obsAddrSeq = obsMix(obsMix(c.obsAddrSeq, tag), addr)
}

// obsCommitBranch folds one committed branch outcome into the committed
// control trace.
func (c *Core) obsCommitBranch(pc uint64, taken bool, target uint64) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	c.obsCtrlSeq = obsMix(obsMix(obsMix(c.obsCtrlSeq, pc), bit), target)
}

// obsSpecAccess folds one performed cache-hierarchy access (any class,
// committed or transient) into the speculative address trace.
func (c *Core) obsSpecAccess(class uint8, addr uint64) {
	c.obsAddrSpec = obsMix(obsMix(c.obsAddrSpec, uint64(class)), addr)
}

// specAcc is one buffered speculative-trace fold under an undo scheme: the
// access was performed, but whether it becomes observable is decided by its
// instruction's fate (commit folds it, squash drops it alongside the
// hierarchy rollback).
type specAcc struct {
	seq   uint64
	addr  uint64
	class uint8
}

// obsSpecAccessAt is obsSpecAccess for a load-path access under a possible
// undo scheme: with undo active the fold is buffered against the issuing
// instruction instead of applied immediately.
func (c *Core) obsSpecAccessAt(seq uint64, class uint8, addr uint64) {
	if c.undoOn {
		c.specLog = append(c.specLog, specAcc{seq: seq, addr: addr, class: class})
		return
	}
	c.obsSpecAccess(class, addr)
}

// drainSpecAt folds the buffered speculative accesses whose instructions
// the commit frontier has retired, in perform order. The buffer is in
// perform order, not sequence order, so the drain stops at the first entry
// belonging to a still-in-flight instruction — it folds on a later commit
// or is dropped by a squash.
func (c *Core) drainSpecAt(frontier uint64) {
	i := 0
	for i < len(c.specLog) && c.specLog[i].seq <= frontier {
		c.obsSpecAccess(c.specLog[i].class, c.specLog[i].addr)
		i++
	}
	if i > 0 {
		c.specLog = append(c.specLog[:0], c.specLog[i:]...)
	}
}

// dropSpecAfter discards buffered folds of squashed instructions.
func (c *Core) dropSpecAfter(survivorSeq uint64) {
	out := c.specLog[:0]
	for _, a := range c.specLog {
		if a.seq <= survivorSeq {
			out = append(out, a)
		}
	}
	c.specLog = out
}

// obsSpecFetch folds one fetched PC — right or wrong path — into the
// speculative control trace.
func (c *Core) obsSpecFetch(pc uint64) {
	c.obsCtrlSpec = obsMix(c.obsCtrlSpec, pc)
}
