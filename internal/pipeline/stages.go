package pipeline

import (
	"doppelganger/internal/isa"
	"doppelganger/internal/obs"
	"doppelganger/internal/program"
)

// fetch brings up to DecodeWidth instructions into the fetch buffer,
// following predicted control flow. Fetch continues down mispredicted
// (wrong) paths until the branch resolves and squashes — wrong-path
// instructions really execute and really touch the caches.
func (c *Core) fetch() {
	if c.haltFetched || c.fetchStalled {
		return
	}
	limit := 2 * c.cfg.DecodeWidth
	for n := 0; n < c.cfg.DecodeWidth && len(c.fetchBuf) < limit; n++ {
		in := c.prog.Fetch(c.fetchPC)
		f := fetched{pc: c.fetchPC, in: in}
		if c.obsOn {
			c.obsSpecFetch(f.pc)
		}
		switch in.Op.Kind() {
		case isa.KindBranch:
			f.hist = c.fetchHist
			if c.bpG != nil {
				f.predTaken = c.bpG.PredictWithHistory(c.fetchPC, c.fetchHist)
				bit := uint64(0)
				if f.predTaken {
					bit = 1
				}
				c.fetchHist = ((c.fetchHist << 1) | bit) & c.bpG.HistoryMask()
			} else if c.bpBim != nil {
				f.predTaken = c.bpBim.Predict(c.fetchPC)
			} else {
				f.predTaken = c.bp.Predict(c.fetchPC)
			}
			if f.predTaken {
				f.predTarget = uint64(in.Imm)
			} else {
				f.predTarget = c.fetchPC + 1
			}
			c.fetchPC = f.predTarget
		case isa.KindJump:
			f.predTaken = true
			f.predTarget = uint64(in.Imm)
			c.fetchPC = f.predTarget
		case isa.KindHalt:
			c.haltFetched = true
			c.fetchBuf = append(c.fetchBuf, f)
			return
		default:
			c.fetchPC++
		}
		c.fetchBuf = append(c.fetchBuf, f)
	}
}

// dispatch renames and dispatches instructions from the fetch buffer into
// the ROB (and IQ/LQ/SQ as needed), up to DecodeWidth per cycle.
func (c *Core) dispatch() {
	n := 0
	for n < c.cfg.DecodeWidth && n < len(c.fetchBuf) {
		f := c.fetchBuf[n]
		kind := f.in.Op.Kind()
		if c.rob.full() {
			break
		}
		needsIQ := kind == isa.KindALU || kind == isa.KindLoad ||
			kind == isa.KindStore || kind == isa.KindBranch
		if needsIQ && len(c.iq) >= c.cfg.IQSize {
			break
		}
		if kind == isa.KindLoad && c.lq.full() {
			break
		}
		if kind == isa.KindStore && c.sq.full() {
			break
		}

		c.seqCtr++
		idx := c.rob.push()
		u := &c.robEntries[idx]
		*u = uop{
			seq:        c.seqCtr,
			pc:         f.pc,
			in:         f.in,
			kind:       kind,
			dst:        noReg,
			oldDst:     noReg,
			lqIdx:      -1,
			sqIdx:      -1,
			predTaken:  f.predTaken,
			predTarget: f.predTarget,
			hist:       f.hist,
		}

		srcs, nsrc := f.in.Sources()
		u.nsrc = nsrc
		for i := 0; i < nsrc; i++ {
			u.src[i] = c.renameMap[srcs[i]]
		}
		if f.in.HasDst() {
			u.oldDst = c.renameMap[f.in.Dst]
			u.dst = c.alloc()
			c.regReady[u.dst] = false
			c.renameMap[f.in.Dst] = u.dst
		}

		switch kind {
		case isa.KindNop, isa.KindHalt:
			u.executed = true
			u.propagated = true
			u.resolved = true
		case isa.KindJump:
			// Direct target, known at fetch: never speculative, nothing
			// to execute.
			u.executed = true
			u.propagated = true
			u.resolved = true
		case isa.KindALU:
			c.iq = append(c.iq, u)
		case isa.KindBranch:
			u.castsShadow = true
			c.shadows.Add(u.seq)
			c.ctrlShadows.Add(u.seq)
			c.noteShadowOpen(u)
			c.iq = append(c.iq, u)
		case isa.KindLoad:
			li := c.lq.push()
			u.lqIdx = li
			e := &c.lqEntries[li]
			*e = lqEntry{u: u, valid: true}
			if c.cfg.ExceptionShadows {
				u.castsShadow = true
				c.shadows.Add(u.seq)
				c.noteShadowOpen(u)
			}
			c.inflight[u.pc]++
			if n := uint64(c.inflight[u.pc]); n > c.Stats.MaxInflightPerPC {
				c.Stats.MaxInflightPerPC = n
			}
			e.occ = int(c.inflight[u.pc])
			e.commitBase = c.committedPC[u.pc]
			if c.cfg.AddressPrediction {
				if addr, ok := c.apPredict(u.pc, e.occ); ok {
					e.hadPrediction = true
					e.predicted = true
					e.predAddr = program.AlignAddr(addr)
					c.Stats.DoppPredictions++
				}
			}
			c.iq = append(c.iq, u)
		case isa.KindStore:
			si := c.sq.push()
			u.sqIdx = si
			c.sqEntries[si] = sqEntry{u: u, valid: true}
			// A store casts a data shadow until its address resolves.
			u.castsShadow = true
			c.shadows.Add(u.seq)
			c.noteShadowOpen(u)
			c.iq = append(c.iq, u)
		}
		n++
	}
	c.fetchBuf = c.fetchBuf[:copy(c.fetchBuf, c.fetchBuf[n:])]
}

func (c *Core) opLatency(op isa.Op) uint64 {
	switch op {
	case isa.Mul, isa.MulI:
		return c.cfg.MulLatency
	case isa.Div:
		return c.cfg.DivLatency
	default:
		return c.cfg.ALULatency
	}
}

// issue selects up to IssueWidth ready instructions from the IQ, oldest
// first, and starts their execution (ALU ops, branch outcome computation,
// and the AGU part of loads and stores).
func (c *Core) issue() {
	issued := 0
	out := c.iq[:0]
	for _, u := range c.iq {
		if issued >= c.cfg.IssueWidth || !c.ready(u) {
			out = append(out, u)
			continue
		}
		issued++
		u.issued = true
		switch u.kind {
		case isa.KindALU:
			a := c.regVal[u.src[0]]
			var b int64
			if u.nsrc > 1 {
				b = c.regVal[u.src[1]]
			}
			u.result = isa.EvalALU(u.in.Op, a, b, u.in.Imm)
			u.doneAt = c.cycle + c.opLatency(u.in.Op)
			u.inFlight = true
			c.inflightExec = append(c.inflightExec, u)
			if c.cfg.Scheme.TracksTaint() {
				c.taints.SetCombined(u.dst, u.src[:u.nsrc]...)
				if c.tracing {
					if root := c.taints.Root(u.dst); root != 0 {
						c.emit(obs.Event{Kind: obs.KindTaintSet, Seq: u.seq, PC: u.pc, Aux: root})
					}
				}
			}
		case isa.KindBranch:
			a := c.regVal[u.src[0]]
			b := c.regVal[u.src[1]]
			u.actTaken = isa.BranchTaken(u.in.Op, a, b)
			if u.actTaken {
				u.actTarget = uint64(u.in.Imm)
			} else {
				u.actTarget = u.pc + 1
			}
			u.outcomeAt = c.cycle + c.cfg.ALULatency
			if c.cfg.Scheme.TracksTaint() {
				u.brTaintRoot = c.taints.Combine(u.src[0], u.src[1])
			}
			c.pendingResolve = append(c.pendingResolve, u)
		case isa.KindLoad:
			e := &c.lqEntries[u.lqIdx]
			e.addr = program.AlignAddr(uint64(c.regVal[u.src[0]] + u.in.Imm))
			e.addrValidAt = c.cycle + c.cfg.AGULatency
			e.addrPending = true
			if c.cfg.Scheme.TracksTaint() {
				e.addrTaintRoot = c.taints.Root(u.src[0])
			}
		case isa.KindStore:
			e := &c.sqEntries[u.sqIdx]
			e.addr = program.AlignAddr(uint64(c.regVal[u.src[0]] + u.in.Imm))
			e.addrValidAt = c.cycle + c.cfg.AGULatency
			e.addrPending = true
			if c.cfg.Scheme.TracksTaint() {
				e.addrTaintRoot = c.taints.Root(u.src[0])
			}
		}
	}
	c.iq = out
}

// ready reports whether the uop's issue-time operands are available. Loads
// and stores only need their base register to start address generation;
// the store's data operand is captured separately by the store queue.
// Under STT a load is additionally a transmitter: it may not issue its
// memory access with a tainted address, but address *generation* is
// unobservable and allowed — the gate is applied at memory issue.
func (c *Core) ready(u *uop) bool {
	switch u.kind {
	case isa.KindLoad, isa.KindStore:
		return c.regReady[u.src[0]]
	default:
		for i := 0; i < u.nsrc; i++ {
			if !c.regReady[u.src[i]] {
				return false
			}
		}
		return true
	}
}

// writeback completes in-flight ALU executions, propagating results to
// dependents. ALU results always propagate immediately: NDA-P delays only
// speculatively *loaded* values; STT relies on taint; DoM delays only
// memory effects.
func (c *Core) writeback() {
	out := c.inflightExec[:0]
	for _, u := range c.inflightExec {
		if c.cycle < u.doneAt {
			out = append(out, u)
			continue
		}
		u.inFlight = false
		u.executed = true
		c.regVal[u.dst] = u.result
		c.regReady[u.dst] = true
		u.propagated = true
	}
	c.inflightExec = out
}

// resolveBranches applies branch outcomes. Resolution is the observable
// event (shadow lift plus squash on mispredict); the schemes gate it:
// STT delays resolution while the predicate is tainted, and DoM+AP
// resolves branches in order (only when non-speculative).
func (c *Core) resolveBranches() {
	for _, u := range c.pendingResolve {
		if u.resolved || c.cycle < u.outcomeAt {
			continue
		}
		u.outcomeReady = true
		if !c.canResolveBranch(u) {
			continue
		}
		u.resolved = true
		u.executed = true
		u.shadowResolved = true
		c.shadows.Resolve(u.seq)
		c.ctrlShadows.Resolve(u.seq)
		c.noteShadowClose(u)
		if u.actTarget != u.predTarget {
			c.Stats.BranchMispredicts++
			bit := uint64(0)
			if u.actTaken {
				bit = 1
			}
			newHist := u.hist
			if c.bpG != nil {
				newHist = ((u.hist << 1) | bit) & c.bpG.HistoryMask()
			}
			preSquashed := c.Stats.Squashed
			c.squashAfter(u.seq, u.actTarget, newHist)
			if c.tracing {
				c.emit(obs.Event{Kind: obs.KindBranchSquash, Seq: u.seq, PC: u.pc,
					Addr: u.actTarget, Aux: c.Stats.Squashed - preSquashed})
			}
			// The squash rebuilt pendingResolve in place; stop and let
			// the filter below drop this (now resolved) branch.
			break
		}
	}
	// Drop resolved entries.
	out := c.pendingResolve[:0]
	for _, u := range c.pendingResolve {
		if !u.resolved {
			out = append(out, u)
		}
	}
	c.pendingResolve = out
}

func (c *Core) canResolveBranch(u *uop) bool {
	switch {
	case c.cfg.Scheme.TracksTaint():
		return !c.taints.RootSpeculative(u.brTaintRoot)
	case c.cfg.inOrderBranchResolution():
		return !c.speculative(u.seq)
	default:
		return true
	}
}
