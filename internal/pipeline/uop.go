package pipeline

import (
	"doppelganger/internal/isa"
	"doppelganger/internal/mem"
)

// noReg marks an absent physical register operand.
const noReg = -1

// uop is one in-flight dynamic instruction (a reorder-buffer entry).
type uop struct {
	seq  uint64
	pc   uint64
	in   isa.Instruction
	kind isa.Kind

	// Renaming.
	dst    int // physical destination, noReg if none
	oldDst int // previous mapping of the architectural destination
	src    [2]int
	nsrc   int

	// Execution status.
	issued     bool   // left the IQ (execution started / AGU issued)
	executed   bool   // result computed or memory value final
	doneAt     uint64 // cycle the in-flight execution completes
	inFlight   bool   // on the execution completion list
	propagated bool   // destination marked ready for dependents
	result     int64

	// hist is the speculative global branch history at fetch (gshare).
	hist uint64

	// Branch state.
	predTaken    bool
	predTarget   uint64
	actTaken     bool
	actTarget    uint64
	outcomeAt    uint64 // cycle the outcome becomes known
	outcomeReady bool
	resolved     bool   // shadow lifted, squash (if any) applied
	brTaintRoot  uint64 // taint root of the predicate (STT)

	// Shadow bookkeeping.
	castsShadow    bool
	shadowResolved bool
	shadowAt       uint64 // cycle the shadow was cast (lifetime census)

	// Memory bookkeeping: index into the core's lq/sq ring, or -1.
	lqIdx int
	sqIdx int
}

func (u *uop) isLoad() bool  { return u.kind == isa.KindLoad }
func (u *uop) isStore() bool { return u.kind == isa.KindStore }

// lqEntry is a load-queue slot. It carries both the real load's state and,
// when address prediction is enabled, the doppelganger's state (the paper's
// point: a load and its doppelganger share one LQ entry and one physical
// destination register).
type lqEntry struct {
	u     *uop
	valid bool

	// Real address state.
	addr          uint64 // effective address (word aligned)
	addrValid     bool
	addrValidAt   uint64 // cycle the AGU result arrives
	addrPending   bool   // AGU issued, result not yet arrived
	addrTaintRoot uint64 // taint root of the address operands (STT)

	// Real access state.
	issued      bool // memory access (or forwarding) performed
	valueAt     uint64
	valueValid  bool
	value       int64
	level       mem.Level
	delayedMiss bool   // DoM: speculative L1 miss; retry when non-speculative
	fwdStore    uint64 // sequence of the store that forwarded the value (0 = memory)

	// Doppelganger state.
	hadPrediction  bool // a prediction was produced for this load
	predicted      bool // prediction still live (not yet verified/refuted)
	predAddr       uint64
	doppIssued     bool
	doppDoneAt     uint64
	doppLevel      mem.Level
	doppHitL1      bool
	preloaded      bool // preload value present in preValue
	preValue       int64
	storeForwarded bool // preValue supplied/overridden by an older store
	verified       bool // predicted address matched the real address
	mispredicted   bool

	// occ is the in-flight occurrence number of this load's PC at
	// dispatch (the predictor's extrapolation distance); commitBase is
	// the PC's committed-instance count at dispatch, so a later
	// prediction can subtract instances that have committed since.
	occ        int
	commitBase uint64

	// doppUsed marks that the final value came from the doppelganger
	// preload (needed for DoM's hit-vs-miss propagation rule).
	doppUsed bool

	// Value prediction (DoM+VP): a predicted value was propagated
	// speculatively and must be validated against the real access.
	vpUsed  bool
	vpValue int64

	// pendingStoreSeq names an older store whose data this entry awaits
	// (store-to-load forwarding with not-yet-ready data). 0 = none.
	pendingStoreSeq uint64

	// DoM delayed replacement update owed at commit.
	needsL1Touch bool
	// Invalidation snoop hit (memory consistency, §4.5): the snooped line.
	invalidated bool
	invalLine   uint64
}

// matchAddr returns the address this entry would be snooped on: the real
// address once known, else the predicted address for a live doppelganger.
func (e *lqEntry) matchAddr() (uint64, bool) {
	if e.addrValid {
		return e.addr, true
	}
	if e.predicted {
		return e.predAddr, true
	}
	return 0, false
}

// sqEntry is a store-queue slot.
type sqEntry struct {
	u     *uop
	valid bool

	addr          uint64
	addrValid     bool
	addrValidAt   uint64
	addrPending   bool
	addrTaintRoot uint64

	data      int64
	dataValid bool

	// violationChecked marks that the resolve-time load-queue snoop ran.
	violationChecked bool
}

// ring is a bounded FIFO of uops backed by a fixed slice (the ROB, LQ and
// SQ are all rings). Entries are addressed by absolute index so other
// structures can hold stable references.
type ring struct {
	head, count int
	size        int
}

func newRing(size int) ring { return ring{size: size} }

func (r *ring) full() bool  { return r.count == r.size }
func (r *ring) empty() bool { return r.count == 0 }
func (r *ring) len() int    { return r.count }

// push allocates the next slot and returns its index.
func (r *ring) push() int {
	if r.full() {
		panic("pipeline: ring overflow")
	}
	i := (r.head + r.count) % r.size
	r.count++
	return i
}

// popHead releases the oldest slot and returns its index.
func (r *ring) popHead() int {
	if r.empty() {
		panic("pipeline: ring underflow")
	}
	i := r.head
	r.head = (r.head + 1) % r.size
	r.count--
	return i
}

// popTail releases the youngest slot and returns its index (squash path).
func (r *ring) popTail() int {
	if r.empty() {
		panic("pipeline: ring underflow")
	}
	r.count--
	return (r.head + r.count) % r.size
}

// headIdx returns the index of the oldest slot.
func (r *ring) headIdx() int { return r.head }

// tailIdx returns the index of the youngest slot.
func (r *ring) tailIdx() int { return (r.head + r.count - 1 + r.size) % r.size }

// at returns the absolute index of the i-th oldest element (0 = head).
func (r *ring) at(i int) int { return (r.head + i) % r.size }
