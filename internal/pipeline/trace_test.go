package pipeline

import (
	"testing"

	"doppelganger/internal/obs"
	"doppelganger/internal/secure"
)

func tracedConfig() Config {
	cfg := DefaultConfig()
	cfg.Scheme = secure.DoM
	cfg.AddressPrediction = true
	return cfg
}

func runTraced(t *testing.T, sink obs.TraceSink, window func(*Core)) *Core {
	t.Helper()
	c, err := New(tracedConfig(), sumLoop(64))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.SetTraceSink(sink)
	if window != nil {
		window(c)
	}
	if err := c.Run(0, 10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c
}

// TestCycleWindowAtZero pins the trace-window bug fix: a window starting at
// cycle 0 must capture the run's earliest events (the old SetTraceWindow
// contract made from == 0 mean "disabled", so such a window was
// unreachable).
func TestCycleWindowAtZero(t *testing.T) {
	ring := obs.NewRingSink(1 << 16)
	runTraced(t, ring, func(c *Core) { c.SetCycleWindow(0, 10) })
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("window [0, 10] captured no events; windows starting at cycle 0 must work")
	}
	for _, e := range events {
		if e.Cycle > 10 {
			t.Errorf("event %v at cycle %d escaped window [0, 10]", e.Kind, e.Cycle)
		}
	}
}

func TestCycleWindowBounds(t *testing.T) {
	ring := obs.NewRingSink(1 << 16)
	runTraced(t, ring, func(c *Core) { c.SetCycleWindow(20, 40) })
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("window [20, 40] captured no events")
	}
	for _, e := range events {
		if e.Cycle < 20 || e.Cycle > 40 {
			t.Errorf("event %v at cycle %d escaped window [20, 40]", e.Kind, e.Cycle)
		}
	}
}

// TestSetTraceWindowCompat pins the deprecated method's contract: (0, 0)
// disables tracing entirely, and a non-zero window keeps an already-attached
// sink rather than installing the stdout one.
func TestSetTraceWindowCompat(t *testing.T) {
	ring := obs.NewRingSink(1 << 16)
	runTraced(t, ring, func(c *Core) { c.SetTraceWindow(0, 0) })
	if got := ring.Len(); got != 0 {
		t.Errorf("SetTraceWindow(0, 0) still traced %d events", got)
	}

	ring = obs.NewRingSink(1 << 16)
	runTraced(t, ring, func(c *Core) { c.SetTraceWindow(5, 15) })
	if ring.Len() == 0 {
		t.Fatal("SetTraceWindow(5, 15) with an attached sink captured nothing")
	}
	for _, e := range ring.Events() {
		if e.Cycle < 5 || e.Cycle > 15 {
			t.Errorf("event %v at cycle %d escaped window [5, 15]", e.Kind, e.Cycle)
		}
	}
}

// TestTracingPreservesBehaviour: attaching a sink and a metrics registry
// must not change a single architectural or microarchitectural outcome.
func TestTracingPreservesBehaviour(t *testing.T) {
	plain, err := New(tracedConfig(), sumLoop(64))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := plain.Run(0, 10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}

	ring := obs.NewRingSink(1 << 20)
	traced, err := New(tracedConfig(), sumLoop(64))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	traced.SetTraceSink(ring)
	traced.SetMetrics(obs.NewMetrics())
	if err := traced.Run(0, 10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if ring.Len() == 0 {
		t.Error("traced run emitted no events")
	}
	if got, want := traced.ArchState().Checksum(), plain.ArchState().Checksum(); got != want {
		t.Errorf("traced checksum %#x != untraced %#x", got, want)
	}
	if got, want := traced.StatsSnapshot(), plain.StatsSnapshot(); got != want {
		t.Errorf("traced stats diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestShadowCensus checks the Stats snapshot picks up the trackers' counts.
func TestShadowCensus(t *testing.T) {
	c := runTraced(t, obs.NewRingSink(16), nil)
	st := c.StatsSnapshot()
	if st.ShadowsCast == 0 {
		t.Error("ShadowsCast = 0; branches and stores must have cast shadows")
	}
	if st.ShadowPeak == 0 || st.ShadowPeak > uint64(tracedConfig().ROBSize) {
		t.Errorf("ShadowPeak = %d, want within (0, ROBSize]", st.ShadowPeak)
	}
}

// TestShadowLifetimeHistogram checks the per-event histogram fills in and
// its total matches resolved (not squashed) shadows.
func TestShadowLifetimeHistogram(t *testing.T) {
	m := obs.NewMetrics()
	c, err := New(tracedConfig(), sumLoop(64))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.SetMetrics(m)
	if err := c.Run(0, 10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := m.Histogram("sim_shadow_lifetime_cycles", "", obs.LifetimeBuckets,
		obs.L("scheme", "dom"), obs.L("ap", "true"))
	if h.Count() == 0 {
		t.Fatal("shadow-lifetime histogram is empty")
	}
	if h.Count() > c.StatsSnapshot().ShadowsCast {
		t.Errorf("histogram count %d exceeds shadows cast %d", h.Count(), c.StatsSnapshot().ShadowsCast)
	}
}
