package pipeline

import "doppelganger/internal/isa"

// The committed memory image is paged: a word-aligned byte address selects a
// 4 KiB page (512 words) by its upper bits. Pages are sparse — workloads
// touch a handful of regions — and a one-entry page cache makes the common
// same-page access a couple of shifts instead of a map lookup.
const (
	pageWords = 512
	pageShift = 12 // log2(pageWords * program.WordSize)
	wordShift = 3  // log2(program.WordSize)
)

// memPage holds one page of words plus a presence bitmap. The bitmap
// distinguishes a stored zero from a never-written word, so the exact
// key set of the old map representation can be reconstructed for
// architectural-state comparison.
type memPage struct {
	words   [pageWords]int64
	present [pageWords / 64]uint64
}

// memImage is the committed architectural memory: the replacement for a
// map[uint64]int64 keyed by aligned addresses, with allocation-free loads
// and stores on the pipeline's per-cycle path.
type memImage struct {
	pages map[uint64]*memPage
	// One-entry cache of the last page touched.
	lastKey  uint64
	lastPage *memPage
	// slab is an arena new pages are carved from, so building the image
	// costs one allocation per slabPages pages instead of one per page.
	slab []memPage
	// count is the number of present (ever-stored) words, used to size the
	// reconstructed map.
	count int
}

// slabPages is the arena granularity (64 KiB per slab).
const slabPages = 16

func newMemImage() *memImage {
	return &memImage{pages: make(map[uint64]*memPage, 64)}
}

// page returns the page for the key, or nil when absent.
func (m *memImage) page(key uint64) *memPage {
	if m.lastPage != nil && m.lastKey == key {
		return m.lastPage
	}
	p := m.pages[key]
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// load returns the word at the aligned address; never-written words read as
// zero, matching zero-initialised memory.
func (m *memImage) load(addr uint64) int64 {
	p := m.page(addr >> pageShift)
	if p == nil {
		return 0
	}
	return p.words[(addr>>wordShift)&(pageWords-1)]
}

// store writes the word at the aligned address, marking it present.
func (m *memImage) store(addr uint64, v int64) {
	key := addr >> pageShift
	p := m.page(key)
	if p == nil {
		if len(m.slab) == 0 {
			m.slab = make([]memPage, slabPages)
		}
		p = &m.slab[0]
		m.slab = m.slab[1:]
		m.pages[key] = p
		m.lastKey, m.lastPage = key, p
	}
	wi := (addr >> wordShift) & (pageWords - 1)
	if w := &p.present[wi>>6]; *w&(1<<(wi&63)) == 0 {
		*w |= 1 << (wi & 63)
		m.count++
	}
	p.words[wi] = v
}

// toMap reconstructs the memory image as an address→value map with exactly
// the key set the map representation would have had (stored zeros included).
func (m *memImage) toMap() map[uint64]int64 {
	out := make(map[uint64]int64, m.count)
	for key, p := range m.pages {
		base := key << pageShift
		for wi := uint64(0); wi < pageWords; wi++ {
			if p.present[wi>>6]&(1<<(wi&63)) != 0 {
				out[base|wi<<wordShift] = p.words[wi]
			}
		}
	}
	return out
}

// Checksum digests the committed architectural state (registers and memory),
// producing the same value as ArchState().Checksum() without materialising
// the memory map. The memory term is commutative and skips zero values —
// exactly the reference digest's rules, which make page iteration order and
// present-but-zero words irrelevant.
func (c *Core) Checksum() uint64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	mix := func(h, v uint64) uint64 {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
		return h
	}
	h := uint64(offset)
	for r := 0; r < isa.NumRegs; r++ {
		h = mix(h, uint64(r))
		h = mix(h, uint64(c.regVal[c.renameMap[r]]))
	}
	var memSum uint64
	for key, p := range c.backing.pages {
		base := key << pageShift
		for wi, v := range p.words {
			if v != 0 {
				memSum += mix(mix(offset, base|uint64(wi)<<wordShift), uint64(v))
			}
		}
	}
	return mix(h, memSum)
}
