package pipeline

import (
	"fmt"
	"testing"

	"doppelganger/internal/isa"
	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// fuzzRNG is a deterministic generator for reproducible random programs.
type fuzzRNG uint64

func (r *fuzzRNG) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = fuzzRNG(x)
	return x * 0x2545f4914f6cdd1d
}

func (r *fuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// randomProgram builds a terminating random program: an outer counted loop
// whose body is a random mix of ALU ops, masked loads and stores into a
// bounded region, and forward data-dependent branches. Every construct the
// pipeline supports is exercised: dependent loads, store-to-load
// forwarding, aliasing, 50/50 and skewed branches, multiply/divide
// latencies.
func randomProgram(seed uint64, bodyLen, iters int) *program.Program {
	r := fuzzRNG(seed)
	b := program.NewBuilder(fmt.Sprintf("fuzz-%d", seed))
	const (
		memBase  = 0x10000
		memWords = 256 // bounded region keeps addresses valid
	)
	for i := 0; i < memWords; i++ {
		b.InitMem(memBase+uint64(i)*8, int64(r.intn(1000))-500)
	}
	// r1..r11: scratch; r12: loop counter; r13: limit; r14: addr mask;
	// r15: memBase.
	for reg := isa.Reg(1); reg <= 11; reg++ {
		b.InitReg(reg, int64(r.intn(64)))
	}
	b.LoadI(12, 0)
	b.LoadI(13, int64(iters))
	b.LoadI(14, int64(memWords-1))
	b.LoadI(15, memBase)

	scratch := func() isa.Reg { return isa.Reg(1 + r.intn(11)) }

	loop := b.Here()
	var pendingJoin *program.Label
	joinAt := -1
	for i := 0; i < bodyLen; i++ {
		if pendingJoin != nil && i >= joinAt {
			b.Bind(pendingJoin)
			pendingJoin = nil
		}
		switch r.intn(12) {
		case 0, 1, 2: // ALU reg-reg
			ops := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Xor, isa.And, isa.Or, isa.Slt, isa.Div, isa.Shl, isa.Shr}
			b.Op3(ops[r.intn(len(ops))], scratch(), scratch(), scratch())
		case 3, 4: // ALU immediate
			ops := []isa.Op{isa.AddI, isa.MulI, isa.AndI, isa.ShlI, isa.ShrI}
			b.OpI(ops[r.intn(len(ops))], scratch(), scratch(), int64(r.intn(16)))
		case 5: // constant
			b.LoadI(scratch(), int64(r.intn(200))-100)
		case 6, 7, 8: // load via masked address
			base := scratch()
			addrReg := scratch()
			b.And(addrReg, base, 14) // bound the index
			b.ShlI(addrReg, addrReg, 3)
			b.Add(addrReg, addrReg, 15)
			b.Load(scratch(), addrReg, int64(r.intn(4))*8)
		case 9: // store via masked address
			base := scratch()
			addrReg := scratch()
			b.And(addrReg, base, 14)
			b.ShlI(addrReg, addrReg, 3)
			b.Add(addrReg, addrReg, 15)
			b.Store(scratch(), addrReg, 0)
		case 10, 11: // forward data-dependent branch over a short span
			if pendingJoin == nil {
				pendingJoin = b.NewLabel()
				joinAt = i + 1 + r.intn(4)
				ops := []isa.Op{isa.Beq, isa.Bne, isa.Blt, isa.Bge}
				b.Branch(ops[r.intn(len(ops))], scratch(), scratch(), pendingJoin)
			} else {
				b.Nop()
			}
		}
	}
	if pendingJoin != nil {
		b.Bind(pendingJoin)
	}
	b.AddI(12, 12, 1)
	b.Blt(12, 13, loop)
	b.Store(1, 15, 0)
	b.Halt()
	return b.MustBuild()
}

// TestFuzzAgainstInterpreter is the correctness anchor: for many random
// programs, the out-of-order core must reach exactly the architectural
// state of the functional interpreter under every scheme, with and without
// doppelganger loads.
func TestFuzzAgainstInterpreter(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 1; seed <= seeds; seed++ {
		p := randomProgram(uint64(seed)*0x9e3779b9, 12+seed%14, 60+seed*7)
		ref := program.Run(p, 5_000_000)
		if !ref.Halted {
			t.Fatalf("seed %d: reference did not halt", seed)
		}
		refSum := ref.Checksum()
		for _, scheme := range secure.Schemes() {
			for _, ap := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.Scheme = scheme
				cfg.AddressPrediction = ap
				c, err := New(cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Run(0, 200_000_000); err != nil {
					t.Fatalf("seed %d %v ap=%v: %v", seed, scheme, ap, err)
				}
				got := c.ArchState()
				if got.Insts != ref.Insts {
					t.Errorf("seed %d %v ap=%v: committed %d, reference %d",
						seed, scheme, ap, got.Insts, ref.Insts)
				}
				if got.Checksum() != refSum {
					t.Errorf("seed %d %v ap=%v: architectural state mismatch", seed, scheme, ap)
				}
				if got.Loads != ref.Loads || got.Stores != ref.Stores {
					t.Errorf("seed %d %v ap=%v: loads/stores %d/%d, reference %d/%d",
						seed, scheme, ap, got.Loads, got.Stores, ref.Loads, ref.Stores)
				}
			}
		}
	}
}

// TestFuzzSmallWindows re-runs a subset of random programs on a tiny
// machine (small ROB/IQ/LQ/SQ, one load port) to stress structural-hazard
// paths: stalls, full queues, and squash at every boundary.
func TestFuzzSmallWindows(t *testing.T) {
	cfgSmall := DefaultConfig()
	cfgSmall.ROBSize = 16
	cfgSmall.IQSize = 8
	cfgSmall.LQSize = 4
	cfgSmall.SQSize = 3
	cfgSmall.LoadPorts = 1
	cfgSmall.DecodeWidth = 2
	cfgSmall.IssueWidth = 2
	cfgSmall.CommitWidth = 2
	cfgSmall.SelfCheck = true
	for seed := 1; seed <= 10; seed++ {
		p := randomProgram(uint64(seed)*31337, 10+seed, 50)
		ref := program.Run(p, 5_000_000)
		refSum := ref.Checksum()
		for _, scheme := range secure.Schemes() {
			for _, ap := range []bool{false, true} {
				cfg := cfgSmall
				cfg.Scheme = scheme
				cfg.AddressPrediction = ap
				c, err := New(cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Run(0, 200_000_000); err != nil {
					t.Fatalf("seed %d %v ap=%v: %v", seed, scheme, ap, err)
				}
				if c.ArchState().Checksum() != refSum {
					t.Errorf("seed %d %v ap=%v: state mismatch on small machine", seed, scheme, ap)
				}
			}
		}
	}
}
