package pipeline

import (
	"fmt"

	"doppelganger/internal/mem"
	"doppelganger/internal/obs"
	"doppelganger/internal/secure"
)

// storeQueuePass advances store state each cycle: AGU results arrive, data
// operands are captured, and store-address shadows resolve. Resolution is
// the observable event: it lifts the data shadow and snoops the load queue
// for memory-order violations and forwarding overrides. Under STT it is
// delayed until the store's address operand is untainted (store-to-load
// forwarding is an implicit channel).
func (c *Core) storeQueuePass() {
	for i := 0; i < c.sq.len(); i++ {
		e := &c.sqEntries[c.sq.at(i)]
		if !e.valid {
			continue
		}
		if e.addrPending && c.cycle >= e.addrValidAt {
			e.addrPending = false
			e.addrValid = true
		}
		if !e.dataValid && c.regReady[e.u.src[1]] {
			e.data = c.regVal[e.u.src[1]]
			e.dataValid = true
		}
		if e.u.castsShadow && !e.u.shadowResolved && e.addrValid && c.storeAddrSafe(e) {
			e.u.shadowResolved = true
			c.shadows.Resolve(e.u.seq)
			c.noteShadowClose(e.u)
			if c.storeResolveScan(e) {
				// A violation squash rewrote the young end of both
				// queues; the loop bound re-reads sq.len() so
				// continuing is safe, but the squash already redirected
				// fetch — finish the pass normally.
				continue
			}
		}
	}
}

func (c *Core) storeAddrSafe(e *sqEntry) bool {
	if c.cfg.Scheme.TracksTaint() {
		return !c.taints.RootSpeculative(e.addrTaintRoot)
	}
	return true
}

// storeResolveScan snoops the load queue when a store's address resolves.
// Younger loads that already consumed a conflicting value are squashed
// (memory-order violation); unpropagated values are transparently
// overridden — in particular doppelganger preloads, which are never
// squashed or suppressed by forwarding (§4.4). It reports whether a squash
// happened.
func (c *Core) storeResolveScan(s *sqEntry) bool {
	for i := 0; i < c.lq.len(); i++ {
		l := &c.lqEntries[c.lq.at(i)]
		if !l.valid || l.u.seq < s.u.seq {
			continue
		}
		switch {
		case l.addrValid && l.addr == s.addr:
			// Real (or verified-doppelganger) address matches. The load's
			// value must come from this store unless a younger store
			// already supplied it.
			if l.fwdStore >= s.u.seq {
				continue
			}
			if l.u.propagated {
				c.Stats.MemOrderViolations++
				if c.sset != nil {
					c.sset.Assign(l.u.pc, s.u.pc)
				}
				c.squashAfter(l.u.seq-1, l.u.pc, l.u.hist)
				return true
			}
			c.overrideFromStore(l, s)
		case l.predicted && !l.addrValid && l.predAddr == s.addr:
			// Live doppelganger with a matching predicted address: the
			// store value overrides the preload; the doppelganger's
			// memory access is unaffected (it must still appear in
			// memory).
			if l.fwdStore >= s.u.seq {
				continue
			}
			c.overrideFromStore(l, s)
		}
	}
	return false
}

// overrideFromStore redirects an unpropagated load (or doppelganger
// preload) to take its value from the given store.
func (c *Core) overrideFromStore(l *lqEntry, s *sqEntry) {
	l.fwdStore = s.u.seq
	l.storeForwarded = true
	if s.dataValid {
		c.deliverStoreData(l, s.data)
		return
	}
	l.pendingStoreSeq = s.u.seq
	// Any value in flight or already present is stale.
	if l.issued || l.verified {
		l.valueValid = false
	}
}

// deliverStoreData installs forwarded store data into whichever phase the
// load is in.
func (c *Core) deliverStoreData(l *lqEntry, data int64) {
	l.pendingStoreSeq = 0
	if l.issued || l.verified {
		l.value = data
		l.valueValid = true
		return
	}
	l.preValue = data
}

// tryPendingStoreData completes a forwarding whose store data was not ready
// at override time.
func (c *Core) tryPendingStoreData(l *lqEntry) {
	for i := 0; i < c.sq.len(); i++ {
		s := &c.sqEntries[c.sq.at(i)]
		if !s.valid || s.u.seq != l.pendingStoreSeq {
			continue
		}
		if s.dataValid {
			c.deliverStoreData(l, s.data)
		}
		return
	}
	panic(fmt.Sprintf("pipeline: load %d waits on vanished store %d", l.u.seq, l.pendingStoreSeq))
}

// loadQueuePass advances every load through its lifecycle: address arrival,
// doppelganger verification, real and doppelganger memory issue, value
// arrival, and propagation — each gated by the active secure speculation
// scheme.
func (c *Core) loadQueuePass() {
	ports := c.cfg.LoadPorts
	for i := 0; i < c.lq.len(); i++ {
		e := &c.lqEntries[c.lq.at(i)]
		if !e.valid {
			continue
		}
		u := e.u

		// Fast path: a propagated load whose value is final has nothing
		// left to do here — it is only waiting in the queue for commit.
		// (A final value implies the address resolved and any pending
		// store forwarding completed; invalidation marks only matter
		// before propagation.)
		if u.propagated && e.valueValid && e.pendingStoreSeq == 0 {
			continue
		}

		if e.addrPending && c.cycle >= e.addrValidAt {
			e.addrPending = false
			e.addrValid = true
			if u.castsShadow && !u.shadowResolved {
				// Exception shadow: lifted once the address translates.
				u.shadowResolved = true
				c.shadows.Resolve(u.seq)
				c.noteShadowClose(u)
			}
			if c.cfg.Mutation.TrainsSpeculatively() {
				// Planted weakening (leakcheck mutation mode): train the
				// address predictor the moment the address resolves —
				// speculatively, including wrong-path loads — instead of
				// only at commit.
				c.stride.Train(u.pc, e.addr)
				if c.ctx != nil {
					c.ctx.Train(u.pc, e.addr)
				}
			}
		}
		if e.pendingStoreSeq != 0 {
			c.tryPendingStoreData(e)
		}

		// Doppelganger verification: compare the predicted address with
		// the resolved one. The resolution of this implicit channel is
		// delayed until the address is safe (untainted under STT); its
		// effects (reissue, propagation) follow the per-scheme rules.
		if e.predicted && e.addrValid && c.canVerify(e) {
			e.predicted = false
			if e.predAddr == e.addr {
				e.verified = true
				c.Stats.DoppVerified++
				if c.tracing {
					c.emit(obs.Event{Kind: obs.KindDoppVerify, Seq: u.seq, PC: u.pc, Addr: e.addr})
				}
			} else {
				e.mispredicted = true
				e.storeForwarded = false
				e.pendingStoreSeq = 0
				e.fwdStore = 0
				c.Stats.DoppMispredicted++
				if c.tracing {
					c.emit(obs.Event{Kind: obs.KindDoppMispredict, Seq: u.seq, PC: u.pc,
						Addr: e.addr, Aux: e.predAddr})
				}
			}
		}

		// Real-path memory issue: the prediction has been refuted, or was
		// never made, or verified without a doppelganger access in flight
		// to supply the value.
		if !e.issued && !e.valueValid && !e.predicted && e.addrValid &&
			!(e.verified && e.doppIssued) && c.canIssueLoad(e) {
			c.issueRealLoad(e, &ports)
		}

		// Value arrival for the real path.
		if e.issued && !e.valueValid && e.pendingStoreSeq == 0 && c.cycle >= e.valueAt {
			e.valueValid = true
			// DoM+VP validation: the speculatively propagated predicted
			// value is compared against the real one; a mismatch squashes
			// from the load (the rollback cost the paper's §2.3 cites).
			if e.vpUsed {
				if e.value == e.vpValue {
					c.Stats.VPCorrect++
				} else {
					c.Stats.VPMispredicted++
					c.squashAfter(u.seq-1, u.pc, u.hist)
					return
				}
			}
		}

		// DoM+VP: a delayed miss may propagate a predicted *value*
		// speculatively; the real access still happens (and validates)
		// once the load is non-speculative.
		if c.vp != nil && e.delayedMiss && !e.issued && !e.vpUsed && !u.propagated {
			// The prediction fires later than dispatch, so rebase the
			// occurrence by the instances that have committed since.
			occ := e.occ - int(c.committedPC[u.pc]-e.commitBase)
			if v, ok := c.vp.Predict(u.pc, occ); ok {
				e.vpUsed = true
				e.vpValue = v
				c.Stats.VPPredictions++
				c.regVal[u.dst] = v
				c.regReady[u.dst] = true
				u.result = v
				u.propagated = true
			}
		}

		// Doppelganger memory issue. A doppelganger stands in whenever the
		// real access cannot proceed: its address is still unresolved, or
		// the scheme blocks the real access (DoM's delayed miss, STT's
		// tainted address). Real loads were given priority above — older
		// entries and real issues consume ports first.
		if c.cfg.AddressPrediction && e.hadPrediction && !e.doppIssued &&
			!e.mispredicted && !e.issued && !e.valueValid && ports > 0 &&
			(!e.addrValid || c.realLoadBlocked(e)) {
			c.issueDoppelganger(e, &ports)
		}

		// Doppelganger preload arrival.
		if e.doppIssued && !e.preloaded && c.cycle >= e.doppDoneAt {
			e.preloaded = true
		}

		// Promote a verified preload to the load's final value.
		if e.verified && !e.issued && e.preloaded && e.pendingStoreSeq == 0 && !e.valueValid {
			e.value = e.preValue
			e.level = e.doppLevel
			e.valueValid = true
			e.doppUsed = true
		}

		// Propagation: make the value architecturally visible to
		// dependents, under the scheme's release rule.
		if !u.propagated && e.valueValid && c.canPropagateLoad(e) {
			if e.invalidated && mem.LineAddr(e.addr) == e.invalLine {
				// §4.5: a snooped invalidation takes effect when the
				// preloaded data would propagate; mispredicted
				// doppelganger snoops were discarded at verification.
				c.Stats.InvalidationSquashes++
				c.squashAfter(u.seq-1, u.pc, u.hist)
				return
			}
			if c.tracing {
				c.emit(obs.Event{Kind: obs.KindLoadPropagate, Seq: u.seq, PC: u.pc,
					Addr: e.addr, Value: e.value})
			}
			c.regVal[u.dst] = e.value
			c.regReady[u.dst] = true
			u.result = e.value
			u.executed = true
			u.propagated = true
			if c.cfg.Scheme.TracksTaint() && !c.cfg.Mutation.DisablesTaint() {
				c.taints.SetRoot(u.dst, u.seq)
			}
		}
	}
}

func (c *Core) canVerify(e *lqEntry) bool {
	if c.cfg.Scheme.TracksTaint() {
		return !c.taints.RootSpeculative(e.addrTaintRoot)
	}
	return true
}

// realLoadBlocked reports whether the scheme currently prevents the real
// (resolved-address) access from being performed, making a doppelganger
// stand-in worthwhile.
func (c *Core) realLoadBlocked(e *lqEntry) bool {
	switch {
	case c.cfg.Scheme.TracksTaint():
		return c.taints.RootSpeculative(e.addrTaintRoot)
	case c.cfg.Scheme == secure.DoM:
		return e.delayedMiss && c.speculative(e.u.seq)
	default:
		return false
	}
}

// canIssueLoad gates the real memory access of a load.
func (c *Core) canIssueLoad(e *lqEntry) bool {
	switch {
	case c.cfg.Scheme.TracksTaint():
		// Loads are transmitters: a tainted address may not reach memory.
		if c.taints.RootSpeculative(e.addrTaintRoot) {
			c.Stats.STTTaintStalls++
			return false
		}
		return true
	case c.cfg.Scheme == secure.DoM:
		if c.cfg.Mutation.DisablesDelayOnMiss() {
			return true
		}
		// A delayed miss retries, and a mispredicted doppelganger
		// reissues, only once the load is non-speculative (§5.3).
		if e.delayedMiss || e.mispredicted {
			return !c.speculative(e.u.seq)
		}
		return true
	default:
		return true
	}
}

// issueRealLoad performs store-to-load forwarding or a memory access for
// the resolved load address.
func (c *Core) issueRealLoad(e *lqEntry, ports *int) {
	// Memory dependence prediction: wait for older unresolved stores the
	// load has violated against before, instead of speculating past them.
	if c.sset != nil && c.blockedByStoreSet(e.u) {
		c.Stats.MemDepStalls++
		return
	}
	if s := c.youngestOlderStore(e.u.seq, e.addr); s != nil {
		if !s.dataValid {
			return // wait for the store's data, retry next cycle
		}
		e.issued = true
		e.fwdStore = s.u.seq
		e.value = s.data
		e.valueAt = c.cycle + c.cfg.STLFLatency
		e.level = mem.LevelL1
		c.Stats.STLFForwards++
		return
	}
	if *ports == 0 {
		return
	}
	opts := mem.AccessOptions{
		DoMSpeculative: c.cfg.Scheme == secure.DoM && c.speculative(e.u.seq) &&
			!c.cfg.Mutation.DisablesDelayOnMiss(),
	}
	if c.undoOn {
		// Undo scheme: every load access is journaled unconditionally — a
		// load can be squashed by an older instruction (or squash itself),
		// so even "safe-looking" accesses must be reversible.
		opts.UndoSeq = e.u.seq
	}
	res := c.hier.Access(c.cycle, e.addr, mem.ClassDemand, opts)
	if res.Rejected {
		return // MSHR full, retry
	}
	*ports--
	if res.DelayedMiss {
		// Nothing was performed: a DoM delayed miss changes no cache, MSHR
		// or DRAM state, so it leaves no mark on the speculative trace.
		e.delayedMiss = true
		c.Stats.DoMDelayedMisses++
		return
	}
	if c.obsOn {
		c.obsSpecAccessAt(e.u.seq, uint8(mem.ClassDemand), e.addr)
	}
	e.issued = true
	e.delayedMiss = false
	e.valueAt = c.cycle + res.Latency
	e.level = res.Level
	e.value = c.backing.load(e.addr)
	if c.met != nil {
		c.met.loadLatency.Observe(res.Latency)
	}
	c.firePrefetches(e.u.seq, e.u.pc, e.addr)
	if c.tracing {
		var fl uint8
		if res.Merged {
			fl = obs.FlagMerged
		}
		c.emit(obs.Event{Kind: obs.KindLoadIssue, Seq: e.u.seq, PC: e.u.pc, Addr: e.addr,
			Level: uint8(res.Level), Lat: res.Latency, Flags: fl})
	}
	if opts.DoMSpeculative && res.Level == mem.LevelL1 {
		e.needsL1Touch = true
	}
}

// issueDoppelganger sends the address-predicted access to memory. The
// access is an ordinary access — allowed to miss and fill caches even under
// DoM, because the predicted address cannot depend on speculative values.
// An older resolved store with a matching address forwards its value into
// the preload, but the memory access still happens (a store must never make
// a doppelganger invisible, §4.4).
func (c *Core) issueDoppelganger(e *lqEntry, ports *int) {
	opts := mem.AccessOptions{}
	if c.undoOn {
		opts.UndoSeq = e.u.seq
	}
	res := c.hier.Access(c.cycle, e.predAddr, mem.ClassDoppelganger, opts)
	if res.Rejected {
		return // MSHR full, retry
	}
	*ports--
	if c.obsOn {
		c.obsSpecAccessAt(e.u.seq, uint8(mem.ClassDoppelganger), e.predAddr)
	}
	e.doppIssued = true
	e.doppDoneAt = c.cycle + res.Latency
	e.doppLevel = res.Level
	e.doppHitL1 = res.Level == mem.LevelL1
	c.Stats.DoppIssued++
	c.firePrefetches(e.u.seq, e.u.pc, e.predAddr)
	if c.tracing {
		var fl uint8
		if res.Merged {
			fl = obs.FlagMerged
		}
		c.emit(obs.Event{Kind: obs.KindDoppIssue, Seq: e.u.seq, PC: e.u.pc, Addr: e.predAddr,
			Level: uint8(res.Level), Lat: res.Latency, Flags: fl})
	}
	if s := c.youngestOlderStore(e.u.seq, e.predAddr); s != nil {
		e.storeForwarded = true
		e.fwdStore = s.u.seq
		if s.dataValid {
			e.preValue = s.data
		} else {
			e.pendingStoreSeq = s.u.seq
		}
		return
	}
	e.preValue = c.backing.load(e.predAddr)
}

// firePrefetches runs the shared table in prefetching mode: the resolved
// access at (pc, addr) triggers fills for future stride targets. The table
// itself is only ever trained at commit; prefetching from the address of an
// access the active scheme has already allowed preserves each scheme's
// guarantees. Under an undo scheme the prefetch fills are journaled against
// the triggering load's sequence number: they exist only because that load
// was performed, so its squash must unwind them too.
func (c *Core) firePrefetches(seq, pc, addr uint64) {
	if c.cfg.PrefetchDegree <= 0 {
		return
	}
	c.prefetchBuf = c.stride.PrefetchTargets(pc, addr, c.cfg.PrefetchDistance, c.cfg.PrefetchDegree, c.prefetchBuf)
	for _, t := range c.prefetchBuf {
		opts := mem.AccessOptions{Prefetch: true}
		if c.undoOn {
			opts.UndoSeq = seq
		}
		res := c.hier.Access(c.cycle, t, mem.ClassPrefetch, opts)
		if !res.Rejected {
			if c.obsOn {
				c.obsSpecAccessAt(seq, uint8(mem.ClassPrefetch), t)
			}
			c.Stats.PrefetchesIssued++
			if c.tracing {
				var fl uint8
				if res.Merged {
					fl = obs.FlagMerged
				}
				c.emit(obs.Event{Kind: obs.KindCacheAccess, PC: pc, Addr: t,
					Level: uint8(res.Level), Class: uint8(mem.ClassPrefetch),
					Lat: res.Latency, Flags: fl})
			}
		}
	}
}

// blockedByStoreSet reports whether an older store with an unresolved
// address shares a store set with the load.
func (c *Core) blockedByStoreSet(u *uop) bool {
	for i := c.sq.len() - 1; i >= 0; i-- {
		s := &c.sqEntries[c.sq.at(i)]
		if !s.valid || s.u.seq >= u.seq || s.addrValid {
			continue
		}
		if c.sset.SameSet(u.pc, s.u.pc) {
			return true
		}
	}
	return false
}

// youngestOlderStore returns the youngest store older than seq whose
// resolved address matches addr, or nil. Older stores with unresolved
// addresses are speculated past (no-alias prediction); violations are
// caught by storeResolveScan.
func (c *Core) youngestOlderStore(seq, addr uint64) *sqEntry {
	for i := c.sq.len() - 1; i >= 0; i-- {
		s := &c.sqEntries[c.sq.at(i)]
		if !s.valid || s.u.seq >= seq {
			continue
		}
		if s.addrValid && s.addr == addr {
			return s
		}
	}
	return nil
}

// canPropagateLoad applies the scheme's release rule to a load whose value
// is present.
func (c *Core) canPropagateLoad(e *lqEntry) bool {
	switch {
	case c.cfg.Scheme.DelaysPropagation() && c.cfg.Mutation.DisablesPropagationDelay():
		// Planted weakening (leakcheck mutation mode): NDA's propagation
		// delay is gone, values release as on the unsafe baseline.
		return true
	case c.cfg.Scheme == secure.NDAS:
		// Strict propagation: only the oldest in-flight instruction may
		// release a loaded value.
		return !c.rob.empty() && c.robEntries[c.rob.headIdx()].seq == e.u.seq
	case c.cfg.Scheme == secure.NDAP:
		// Speculatively loaded values never propagate until the load is
		// bound to commit.
		return !c.speculative(e.u.seq)
	case c.cfg.Scheme == secure.DoM:
		// Values obtained via a doppelganger that missed in the L1 only
		// propagate once non-speculative — matching when a conventional
		// DoM load that missed would have produced them (§5.3). Hits and
		// real-path values (already DoM-gated at issue) release
		// immediately.
		if e.doppUsed && !e.doppHitL1 {
			return !c.speculative(e.u.seq)
		}
		return true
	default:
		// Unsafe propagates freely; STT propagates and taints.
		return true
	}
}
