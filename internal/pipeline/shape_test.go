package pipeline

import (
	"testing"

	"doppelganger/internal/program"
	"doppelganger/internal/secure"
)

// streamWithGate builds an independent strided sweep over an L2/L3 region
// with a data-dependent branch per element — the canonical pattern where
// DoM loses MLP and address prediction recovers it.
func streamWithGate(n int) *program.Program {
	b := program.NewBuilder("streamgate")
	const base = 0x100000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i*2654435761 + 12345) % 100)
	}
	b.InitWords(base, vals)
	b.LoadI(1, base)
	b.LoadI(2, base+int64(n)*8)
	b.LoadI(3, 0)
	b.LoadI(4, 97)
	loop := b.Here()
	b.Load(5, 1, 0)
	skip := b.NewLabel()
	b.Blt(5, 4, skip)
	b.Add(3, 3, 5)
	b.Bind(skip)
	b.AddI(1, 1, 8)
	b.Blt(1, 2, loop)
	b.Store(3, 1, 0)
	b.Halt()
	return b.MustBuild()
}

// gatedGatherProgram builds the dependent-gather pattern: an L1-resident
// index stream feeds a missing gather whose address is stride-predictable,
// gated by branches on the gathered values. This is where all three schemes
// lose dependent-load MLP and doppelgangers recover it.
func gatedGatherProgram(iters int) *program.Program {
	b := program.NewBuilder("gatedgather")
	const (
		baseI = 0x100_0000
		baseD = 0x800_0000
	)
	for i := 0; i < iters; i++ {
		b.InitMem(baseI+uint64(i)*8, int64(i)*8)
	}
	const (
		pi, end, idx, t, y, acc, thr = 1, 2, 3, 4, 5, 6, 7
	)
	b.LoadI(pi, baseI)
	b.LoadI(end, baseI+int64(iters)*8)
	b.LoadI(acc, 0)
	b.LoadI(thr, 97)
	loop := b.Here()
	b.Load(idx, pi, 0)
	b.ShlI(t, idx, 3)
	b.AddI(t, t, baseD)
	b.Load(y, t, 0)
	skip := b.NewLabel()
	b.Blt(y, thr, skip)
	b.AddI(acc, acc, 5)
	b.Bind(skip)
	b.AddI(acc, acc, 1)
	b.AddI(pi, pi, 8)
	b.Blt(pi, end, loop)
	b.Store(acc, end, 0)
	b.Halt()
	return b.MustBuild()
}

func cyclesFor(t *testing.T, p *program.Program, scheme secure.Scheme, ap bool) (uint64, *Core) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.AddressPrediction = ap
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, 500_000_000); err != nil {
		t.Fatal(err)
	}
	ref := program.Run(p, 50_000_000)
	if got := c.ArchState().Checksum(); got != ref.Checksum() {
		t.Fatalf("%v ap=%v: architectural state mismatch", scheme, ap)
	}
	return c.Stats.Cycles, c
}

// TestSchemeShapeGatedStream checks the paper's qualitative ordering on the
// load-gated stream: DoM is the slowest scheme, and address prediction
// recovers a substantial part of its slowdown.
func TestSchemeShapeGatedStream(t *testing.T) {
	p := streamWithGate(20000)
	base, _ := cyclesFor(t, p, secure.Unsafe, false)
	dom, _ := cyclesFor(t, p, secure.DoM, false)
	domAP, _ := cyclesFor(t, p, secure.DoM, true)
	if dom <= base {
		t.Errorf("DoM (%d cycles) not slower than baseline (%d)", dom, base)
	}
	if domAP >= dom {
		t.Errorf("DoM+AP (%d cycles) not faster than DoM (%d)", domAP, dom)
	}
	// AP must recover at least a third of the DoM slowdown here.
	recovered := float64(dom-domAP) / float64(dom-base)
	if recovered < 0.33 {
		t.Errorf("DoM+AP recovered only %.0f%% of the slowdown", recovered*100)
	}
}

// TestSchemeShapeGatedGather checks that NDA-P and STT lose dependent-load
// MLP on the gated gather and that doppelgangers recover most of it, while
// STT stays at least as fast as NDA-P (it permits dependent ILP).
func TestSchemeShapeGatedGather(t *testing.T) {
	p := gatedGatherProgram(12000)
	base, _ := cyclesFor(t, p, secure.Unsafe, false)
	nda, _ := cyclesFor(t, p, secure.NDAP, false)
	ndaAP, c := cyclesFor(t, p, secure.NDAP, true)
	stt, _ := cyclesFor(t, p, secure.STT, false)
	sttAP, _ := cyclesFor(t, p, secure.STT, true)

	if float64(nda) < 1.2*float64(base) {
		t.Errorf("NDA-P (%d cycles) should be at least 20%% slower than baseline (%d)", nda, base)
	}
	if stt > nda+nda/20 {
		t.Errorf("STT (%d cycles) should not be materially slower than NDA-P (%d)", stt, nda)
	}
	if ndaAP >= nda || sttAP >= stt {
		t.Errorf("AP did not speed up the schemes: nda %d->%d, stt %d->%d", nda, ndaAP, stt, sttAP)
	}
	if cov := c.Stats.Coverage(); cov < 0.5 {
		t.Errorf("gather coverage %.2f, want >= 0.5 (stride-predictable dependent load)", cov)
	}
	if acc := c.Stats.Accuracy(); acc < 0.9 {
		t.Errorf("gather accuracy %.2f, want >= 0.9", acc)
	}
}

// TestDoppelgangerNeverFasterSerial: on a pure pointer chain with no
// learnable stride, AP must not change performance materially in any scheme
// (predictions either absent or useless, and mispredictions must stay
// cheap).
func TestDoppelgangerHarmlessOnRandomChain(t *testing.T) {
	p := buildSerialChain(600, true)
	for _, scheme := range secure.Schemes() {
		off, _ := cyclesFor(t, p, scheme, false)
		on, _ := cyclesFor(t, p, scheme, true)
		ratio := float64(on) / float64(off)
		if ratio > 1.10 || ratio < 0.90 {
			t.Errorf("%v: AP changed random-chain cycles by %.1f%% (off=%d on=%d)",
				scheme, (ratio-1)*100, off, on)
		}
	}
}
