package predictor

import "fmt"

// ContextConfig sizes the first-order Markov (context) address predictor —
// the kind of "more advanced predictor" the paper leaves to future work
// (§9): it learns address-to-address transitions per load PC, covering
// pointer chains the stride table cannot.
type ContextConfig struct {
	Entries int // total transition entries; must be a multiple of Ways
	Ways    int
	// ConfidenceThreshold gates predictions.
	ConfidenceThreshold int
	MaxConfidence       int
	// MaxWalk bounds how many transitions a multi-occurrence prediction
	// may chain through the table.
	MaxWalk int
}

// DefaultContextConfig sizes the table at 4K transitions.
func DefaultContextConfig() ContextConfig {
	return ContextConfig{Entries: 4096, Ways: 4, ConfidenceThreshold: 1, MaxConfidence: 3, MaxWalk: 256}
}

// Validate reports configuration errors.
func (c ContextConfig) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("context predictor: entries %d must be a positive multiple of ways %d",
			c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("context predictor: set count %d is not a power of two", sets)
	}
	if c.ConfidenceThreshold <= 0 || c.MaxConfidence < c.ConfidenceThreshold || c.MaxWalk <= 0 {
		return fmt.Errorf("context predictor: bad bounds")
	}
	return nil
}

type contextEntry struct {
	key        uint64 // full (pc, fromAddr) key to prevent aliasing
	valid      bool
	toAddr     uint64
	confidence int
	lastUse    uint64
}

// Context predicts the next address of a load from its previous address:
// a per-PC first-order Markov table. Trained strictly at commit; read-only
// predictions, full-key tags — the same security discipline as the stride
// table.
type Context struct {
	cfg     ContextConfig
	sets    [][]contextEntry
	setMask uint64
	clock   uint64

	// last committed address per PC (the prediction starting point),
	// keyed by full PC.
	last map[uint64]uint64

	// Trainings counts Train calls.
	Trainings uint64
}

// NewContext builds the predictor; invalid configuration panics.
func NewContext(cfg ContextConfig) *Context {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Entries / cfg.Ways
	c := &Context{
		cfg:     cfg,
		sets:    make([][]contextEntry, nsets),
		setMask: uint64(nsets - 1),
		last:    make(map[uint64]uint64),
	}
	backing := make([]contextEntry, cfg.Entries)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// Config returns the predictor configuration.
func (c *Context) Config() ContextConfig { return c.cfg }

// key mixes (pc, from) into a well-distributed 64-bit tag (splitmix64
// finalizer). Line-aligned addresses have empty low bits, so a weak mix
// would concentrate entries into a handful of sets.
func key(pc, from uint64) uint64 {
	x := pc ^ (from * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *Context) find(k uint64) *contextEntry {
	set := c.sets[k&c.setMask]
	for i := range set {
		if set[i].valid && set[i].key == k {
			return &set[i]
		}
	}
	return nil
}

// Train records a committed transition: the load at pc followed its
// previous committed address with addr. Only ever call at commit.
func (c *Context) Train(pc, addr uint64) {
	c.Trainings++
	c.clock++
	prev, seen := c.last[pc]
	c.last[pc] = addr
	if !seen {
		return
	}
	k := key(pc, prev)
	e := c.find(k)
	if e == nil {
		set := c.sets[k&c.setMask]
		victim := 0
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		set[victim] = contextEntry{key: k, valid: true, toAddr: addr, confidence: 1, lastUse: c.clock}
		return
	}
	if e.toAddr == addr {
		if e.confidence < c.cfg.MaxConfidence {
			e.confidence++
		}
	} else {
		e.confidence--
		if e.confidence <= 0 {
			e.toAddr = addr
			e.confidence = 1
		}
	}
	e.lastUse = c.clock
}

// Predict walks occurrence transitions forward from the last committed
// address of pc. Every step must be a confident transition. Read-only.
func (c *Context) Predict(pc uint64, occurrence int) (uint64, bool) {
	if occurrence < 1 || occurrence > c.cfg.MaxWalk {
		return 0, false
	}
	cur, ok := c.last[pc]
	if !ok {
		return 0, false
	}
	for i := 0; i < occurrence; i++ {
		e := c.find(key(pc, cur))
		if e == nil || e.confidence < c.cfg.ConfidenceThreshold {
			return 0, false
		}
		cur = e.toAddr
	}
	return cur, true
}

// Snapshot fingerprints the table and per-PC state, for the security tests
// that prove speculation cannot influence predictor state.
func (c *Context) Snapshot() uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for si, set := range c.sets {
		for _, e := range set {
			if !e.valid {
				continue
			}
			mix(uint64(si))
			mix(e.key)
			mix(e.toAddr)
			mix(uint64(e.confidence))
		}
	}
	// The per-PC last map is summed commutatively (iteration order varies).
	var sum uint64
	for pc, a := range c.last {
		x := uint64(1469598103934665603)
		x ^= pc
		x *= prime
		x ^= a
		x *= prime
		sum += x
	}
	mix(sum)
	return h
}
