package predictor

import "testing"

func TestStoreSetsAssignAndLookup(t *testing.T) {
	s := NewStoreSets(StoreSetsConfig{Entries: 64})
	if s.SameSet(10, 20) {
		t.Error("untrained PCs should not alias")
	}
	s.Assign(10, 20)
	if !s.SameSet(10, 20) {
		t.Error("assigned pair should alias")
	}
	if s.SameSet(10, 21) {
		t.Error("unrelated store should not alias")
	}
	// Merging: a second store violating against the same load joins the set.
	s.Assign(10, 30)
	if !s.SameSet(10, 30) || !s.SameSet(10, 20) {
		t.Error("second store should join the load's set without evicting the first")
	}
	set10, _ := s.Lookup(10)
	set30, _ := s.Lookup(30)
	if set10 != set30 {
		t.Error("merged PCs should share a set id")
	}
	// A load joining an existing store's set.
	s.Assign(40, 30)
	if !s.SameSet(40, 30) {
		t.Error("load should adopt the store's existing set")
	}
}

func TestStoreSetsDistinctSets(t *testing.T) {
	s := NewStoreSets(DefaultStoreSetsConfig())
	s.Assign(1, 2)
	s.Assign(3, 4)
	if s.SameSet(1, 4) || s.SameSet(3, 2) {
		t.Error("independent violations must form distinct sets")
	}
	if s.Assignments != 2 {
		t.Errorf("Assignments = %d, want 2", s.Assignments)
	}
}

func TestStoreSetsConfigValidate(t *testing.T) {
	if err := (StoreSetsConfig{Entries: 12}).Validate(); err == nil {
		t.Error("non-power-of-two should not validate")
	}
	if err := DefaultStoreSetsConfig().Validate(); err != nil {
		t.Error(err)
	}
}
