package predictor

import "fmt"

// ValueConfig sizes the load value predictor used by the DoM+VP comparison
// (the paper's §2.3: Delay-on-Miss originally used value prediction, which
// under-performed because mispredictions squash and validation is
// in-order).
type ValueConfig struct {
	Entries int // total entries; must be a multiple of Ways
	Ways    int
	// ConfidenceThreshold gates predictions, exactly like the stride
	// table's.
	ConfidenceThreshold int
	MaxConfidence       int
}

// DefaultValueConfig matches the address predictor's capacity so the
// comparison is apples-to-apples.
func DefaultValueConfig() ValueConfig {
	return ValueConfig{Entries: 1024, Ways: 8, ConfidenceThreshold: 2, MaxConfidence: 7}
}

// Validate reports configuration errors.
func (c ValueConfig) Validate() error {
	sc := StrideConfig{Entries: c.Entries, Ways: c.Ways,
		ConfidenceThreshold: c.ConfidenceThreshold, MaxConfidence: c.MaxConfidence}
	if err := sc.Validate(); err != nil {
		return fmt.Errorf("value predictor: %w", err)
	}
	return nil
}

type valueEntry struct {
	pc         uint64 // full tag (aliasing between PCs would be a channel)
	valid      bool
	lastValue  int64
	stride     int64 // value stride: covers constants and counters
	confidence int
	lastUse    uint64
}

// Value is a stride-based load value predictor (a VTAGE-lite): it predicts
// the value of the occurrence-th in-flight instance of a load as
// lastValue + valueStride*occurrence. Like the address predictor it is
// trained strictly at commit and predictions are read-only.
type Value struct {
	cfg     ValueConfig
	sets    [][]valueEntry
	setMask uint64
	clock   uint64

	// Trainings counts Train calls.
	Trainings uint64
}

// NewValue builds the predictor; invalid configuration panics.
func NewValue(cfg ValueConfig) *Value {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Entries / cfg.Ways
	v := &Value{cfg: cfg, sets: make([][]valueEntry, nsets), setMask: uint64(nsets - 1)}
	backing := make([]valueEntry, cfg.Entries)
	for i := range v.sets {
		v.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return v
}

// Config returns the predictor configuration.
func (v *Value) Config() ValueConfig { return v.cfg }

func (v *Value) find(pc uint64) *valueEntry {
	set := v.sets[pc&v.setMask]
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			return &set[i]
		}
	}
	return nil
}

// Train records a committed load's value. Only ever call at commit.
func (v *Value) Train(pc uint64, value int64) {
	v.Trainings++
	v.clock++
	e := v.find(pc)
	if e == nil {
		set := v.sets[pc&v.setMask]
		victim := 0
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		set[victim] = valueEntry{pc: pc, valid: true, lastValue: value, lastUse: v.clock}
		return
	}
	stride := value - e.lastValue
	switch {
	case stride == e.stride:
		if e.confidence < v.cfg.MaxConfidence {
			e.confidence++
		}
	case e.confidence > 0:
		e.confidence--
	default:
		e.stride = stride
	}
	e.lastValue = value
	e.lastUse = v.clock
}

// Predict returns the predicted value for the occurrence-th in-flight
// instance of pc, if the entry is confident. Read-only.
func (v *Value) Predict(pc uint64, occurrence int) (int64, bool) {
	if occurrence < 1 {
		return 0, false
	}
	e := v.find(pc)
	if e == nil || e.confidence < v.cfg.ConfidenceThreshold {
		return 0, false
	}
	return e.lastValue + e.stride*int64(occurrence), true
}
