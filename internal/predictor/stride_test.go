package predictor

import (
	"testing"
	"testing/quick"
)

func newTestStride() *Stride {
	return NewStride(StrideConfig{Entries: 64, Ways: 4, ConfidenceThreshold: 2, MaxConfidence: 7})
}

func TestStrideConfigValidate(t *testing.T) {
	bad := []StrideConfig{
		{Entries: 0, Ways: 4, ConfidenceThreshold: 2, MaxConfidence: 7},
		{Entries: 10, Ways: 4, ConfidenceThreshold: 2, MaxConfidence: 7}, // not multiple
		{Entries: 24, Ways: 4, ConfidenceThreshold: 2, MaxConfidence: 7}, // 6 sets
		{Entries: 64, Ways: 4, ConfidenceThreshold: 0, MaxConfidence: 7},
		{Entries: 64, Ways: 4, ConfidenceThreshold: 8, MaxConfidence: 7},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should not validate", c)
		}
	}
	if err := DefaultStrideConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestStrideTrainAndPredict(t *testing.T) {
	s := newTestStride()
	const pc = 0x42
	// No prediction before training.
	if _, ok := s.Predict(pc, 1); ok {
		t.Error("untrained PC must not predict")
	}
	// Train a stride-8 stream.
	for i := 0; i < 5; i++ {
		s.Train(pc, 0x1000+uint64(i)*8)
	}
	addr, ok := s.Predict(pc, 1)
	if !ok || addr != 0x1020+8 {
		t.Errorf("Predict occ=1 = %#x/%v, want 0x1028", addr, ok)
	}
	addr, ok = s.Predict(pc, 3)
	if !ok || addr != 0x1020+24 {
		t.Errorf("Predict occ=3 = %#x/%v, want 0x1038", addr, ok)
	}
	if _, ok := s.Predict(pc, 0); ok {
		t.Error("occurrence 0 must not predict")
	}
}

func TestStrideConfidenceBuildsAndDecays(t *testing.T) {
	s := newTestStride()
	const pc = 7
	s.Train(pc, 100<<3)
	s.Train(pc, 101<<3) // establishes stride 8, conf 0
	s.Train(pc, 102<<3) // conf 1
	if _, ok := s.Predict(pc, 1); ok {
		t.Error("conf 1 below threshold must not predict")
	}
	s.Train(pc, 103<<3) // conf 2
	if _, ok := s.Predict(pc, 1); !ok {
		t.Error("conf 2 must predict")
	}
	// A break decays confidence but keeps the stride.
	s.Train(pc, 0x999000)
	if _, stride, conf, _ := s.Lookup(pc); stride != 8 || conf != 1 {
		t.Errorf("after break: stride=%d conf=%d, want 8/1", stride, conf)
	}
	// Confidence saturates at MaxConfidence.
	last := uint64(0x999000)
	for i := 0; i < 20; i++ {
		last += 8
		s.Train(pc, last)
	}
	if _, _, conf, _ := s.Lookup(pc); conf != 7 {
		t.Errorf("conf = %d, want saturation at 7", conf)
	}
}

func TestStrideFullPCTagsNoAliasing(t *testing.T) {
	s := newTestStride() // 16 sets
	pcA := uint64(0x10)
	pcB := pcA + 16 // same set, different full tag
	for i := 0; i < 4; i++ {
		s.Train(pcA, uint64(i)*8)
	}
	// pcB must not see pcA's entry.
	if _, ok := s.Predict(pcB, 1); ok {
		t.Error("different PC in the same set predicted from an aliased entry")
	}
	if _, _, _, ok := s.Lookup(pcB); ok {
		t.Error("Lookup(pcB) found pcA's entry")
	}
}

func TestStrideLRUVictim(t *testing.T) {
	s := NewStride(StrideConfig{Entries: 8, Ways: 2, ConfidenceThreshold: 2, MaxConfidence: 7})
	// 4 sets; PCs 0, 4, 8 share set 0.
	s.Train(0, 100)
	s.Train(4, 200)
	s.Train(0, 108) // refresh PC 0
	s.Train(8, 300) // evicts PC 4 (LRU)
	if _, _, _, ok := s.Lookup(0); !ok {
		t.Error("PC 0 evicted despite being recent")
	}
	if _, _, _, ok := s.Lookup(4); ok {
		t.Error("PC 4 should have been the LRU victim")
	}
	if _, _, _, ok := s.Lookup(8); !ok {
		t.Error("PC 8 not allocated")
	}
}

func TestStridePrefetchTargets(t *testing.T) {
	s := newTestStride()
	const pc = 9
	for i := 0; i < 5; i++ {
		s.Train(pc, uint64(0x4000+i*64))
	}
	buf := s.PrefetchTargets(pc, 0x4100, 2, 3, nil)
	want := []uint64{0x4100 + 2*64, 0x4100 + 3*64, 0x4100 + 4*64}
	if len(buf) != 3 {
		t.Fatalf("got %d targets, want 3", len(buf))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Errorf("target[%d] = %#x, want %#x", i, buf[i], want[i])
		}
	}
	// Zero stride produces nothing.
	s2 := newTestStride()
	for i := 0; i < 5; i++ {
		s2.Train(3, 0x7000)
	}
	if got := s2.PrefetchTargets(3, 0x7000, 1, 4, nil); len(got) != 0 {
		t.Errorf("zero-stride prefetch produced %d targets", len(got))
	}
}

// Property: Predict and PrefetchTargets are read-only — the table snapshot
// never changes, which is the security anchor for doppelganger loads.
func TestStridePredictionIsReadOnly(t *testing.T) {
	s := newTestStride()
	for pc := uint64(0); pc < 32; pc++ {
		for i := 0; i < 4; i++ {
			s.Train(pc, uint64(i)*16)
		}
	}
	snap := s.Snapshot()
	f := func(pc uint64, occ uint8) bool {
		s.Predict(pc%64, int(occ%8)+1)
		s.PrefetchTargets(pc%64, pc*8, 4, 4, nil)
		return s.Snapshot() == snap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after training a perfect stride stream, every in-window
// occurrence predicts exactly lastAddr + stride*occ.
func TestStridePredictionLinearity(t *testing.T) {
	f := func(base uint32, strideRaw int16, occ uint8) bool {
		stride := int64(strideRaw)
		if stride == 0 {
			return true
		}
		s := newTestStride()
		last := uint64(int64(base))
		for i := 0; i < 6; i++ {
			s.Train(1, last)
			last = uint64(int64(last) + stride)
		}
		last = uint64(int64(last) - stride) // final trained address
		o := int(occ%16) + 1
		got, ok := s.Predict(1, o)
		return ok && got == uint64(int64(last)+stride*int64(o))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrideSnapshotSensitivity(t *testing.T) {
	a := newTestStride()
	b := newTestStride()
	if a.Snapshot() != b.Snapshot() {
		t.Fatal("empty tables must have equal snapshots")
	}
	a.Train(5, 0x1234)
	if a.Snapshot() == b.Snapshot() {
		t.Error("training must change the snapshot")
	}
}

func TestBimodalPredictor(t *testing.T) {
	bp := NewBimodal(BimodalConfig{Entries: 16})
	const pc = 3
	// Initialised weakly taken.
	if !bp.Predict(pc) {
		t.Error("initial prediction should be taken")
	}
	bp.Train(pc, false)
	if bp.Predict(pc) {
		t.Error("one not-taken should flip a weak counter")
	}
	// Saturation: many takens, then one not-taken keeps predicting taken.
	for i := 0; i < 5; i++ {
		bp.Train(pc, true)
	}
	bp.Train(pc, false)
	if !bp.Predict(pc) {
		t.Error("single not-taken should not flip a saturated counter")
	}
}

func TestBimodalBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size should panic")
		}
	}()
	NewBimodal(BimodalConfig{Entries: 12})
}

func TestStaticPredictors(t *testing.T) {
	if !(StaticTaken{}).Predict(0) || (StaticNotTaken{}).Predict(0) {
		t.Error("static predictors wrong")
	}
	(StaticTaken{}).Train(0, false)
	(StaticNotTaken{}).Train(0, true)
}
