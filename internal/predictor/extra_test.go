package predictor

import (
	"testing"
	"testing/quick"
)

func TestValuePredictorConstantsAndCounters(t *testing.T) {
	v := NewValue(ValueConfig{Entries: 64, Ways: 4, ConfidenceThreshold: 2, MaxConfidence: 7})
	const pc = 11
	// Constant values: stride 0.
	for i := 0; i < 5; i++ {
		v.Train(pc, 42)
	}
	got, ok := v.Predict(pc, 3)
	if !ok || got != 42 {
		t.Errorf("constant prediction = %d/%v, want 42", got, ok)
	}
	// Counter values: stride 5.
	const pc2 = 12
	for i := 0; i < 5; i++ {
		v.Train(pc2, int64(100+i*5))
	}
	got, ok = v.Predict(pc2, 2)
	if !ok || got != 120+10 {
		t.Errorf("counter prediction = %d/%v, want 130", got, ok)
	}
	// Unstable values never gain confidence.
	const pc3 = 13
	vals := []int64{3, 99, -7, 1234, 8}
	for _, x := range vals {
		v.Train(pc3, x)
	}
	if _, ok := v.Predict(pc3, 1); ok {
		t.Error("unstable values should not predict")
	}
	if _, ok := v.Predict(pc, 0); ok {
		t.Error("occurrence 0 must not predict")
	}
}

func TestValueConfigValidate(t *testing.T) {
	if err := DefaultValueConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ValueConfig{Entries: 10, Ways: 4, ConfidenceThreshold: 2, MaxConfidence: 7}
	if err := bad.Validate(); err == nil {
		t.Error("bad config validated")
	}
}

func TestContextPredictorChains(t *testing.T) {
	c := NewContext(DefaultContextConfig())
	const pc = 5
	// A fixed 4-element pointer cycle: A -> B -> C -> D -> A.
	cycle := []uint64{0x1000, 0x77c0, 0x2300, 0x9980}
	for lap := 0; lap < 3; lap++ {
		for _, a := range cycle {
			c.Train(pc, a)
		}
	}
	// After training, the next address (occurrence 1) continues the cycle.
	last := cycle[len(cycle)-1]
	_ = last
	got, ok := c.Predict(pc, 1)
	if !ok || got != cycle[0] {
		t.Errorf("Predict(1) = %#x/%v, want %#x", got, ok, cycle[0])
	}
	// Multi-step walks chain through the table.
	got, ok = c.Predict(pc, 3)
	if !ok || got != cycle[2] {
		t.Errorf("Predict(3) = %#x/%v, want %#x", got, ok, cycle[2])
	}
	// Beyond MaxWalk: refused.
	if _, ok := c.Predict(pc, c.Config().MaxWalk+1); ok {
		t.Error("walk beyond MaxWalk should refuse")
	}
	// Unknown PC: refused.
	if _, ok := c.Predict(999, 1); ok {
		t.Error("unknown PC should refuse")
	}
}

func TestContextPredictorRelearnsChangedLinks(t *testing.T) {
	c := NewContext(DefaultContextConfig())
	const pc = 7
	for i := 0; i < 4; i++ {
		c.Train(pc, 0x100)
		c.Train(pc, 0x200) // 0x100 -> 0x200
	}
	if got, ok := c.Predict(pc, 2); !ok || got != 0x200 {
		// last=0x200; 0x200->0x100 (trained by the loop), then 0x100->0x200.
		t.Errorf("Predict(2) = %#x/%v, want 0x200", got, ok)
	}
	// Redirect 0x100 -> 0x300 repeatedly; the old link must decay.
	for i := 0; i < 8; i++ {
		c.Train(pc, 0x100)
		c.Train(pc, 0x300)
	}
	if got, ok := c.Predict(pc, 2); !ok || got != 0x300 {
		t.Errorf("after relearn, Predict(2) = %#x/%v, want 0x300", got, ok)
	}
}

// Property: context predictions are read-only (the doppelganger security
// requirement applies to every predictor variant).
func TestContextPredictionReadOnly(t *testing.T) {
	c := NewContext(DefaultContextConfig())
	for i := 0; i < 64; i++ {
		c.Train(3, uint64(0x4000+(i%8)*0x100))
	}
	snap := c.Snapshot()
	f := func(pc uint64, occ uint8) bool {
		c.Predict(pc%16, int(occ%8)+1)
		return c.Snapshot() == snap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContextConfigValidate(t *testing.T) {
	bad := []ContextConfig{
		{Entries: 0, Ways: 4, ConfidenceThreshold: 1, MaxConfidence: 3, MaxWalk: 8},
		{Entries: 24, Ways: 4, ConfidenceThreshold: 1, MaxConfidence: 3, MaxWalk: 8},
		{Entries: 64, Ways: 4, ConfidenceThreshold: 0, MaxConfidence: 3, MaxWalk: 8},
		{Entries: 64, Ways: 4, ConfidenceThreshold: 1, MaxConfidence: 3, MaxWalk: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should not validate", c)
		}
	}
}

func TestGShareHistorySensitivity(t *testing.T) {
	g := NewGShare(GShareConfig{Entries: 256, HistoryBits: 4})
	const pc = 9
	// Teach: after history 0b1010 the branch is taken; after 0b0101 not.
	for i := 0; i < 4; i++ {
		g.TrainWithHistory(pc, 0b1010, true)
		g.TrainWithHistory(pc, 0b0101, false)
	}
	if !g.PredictWithHistory(pc, 0b1010) {
		t.Error("pattern 1010 should predict taken")
	}
	if g.PredictWithHistory(pc, 0b0101) {
		t.Error("pattern 0101 should predict not-taken")
	}
}

func TestGShareConfigValidate(t *testing.T) {
	if err := DefaultGShareConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []GShareConfig{{Entries: 12, HistoryBits: 4}, {Entries: 64, HistoryBits: 0}, {Entries: 64, HistoryBits: 40}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v should not validate", bad)
		}
	}
}
