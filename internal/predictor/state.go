package predictor

import "fmt"

// This file defines the serializable snapshot of every predictor, used by
// the checkpoint subsystem. Each State carries the configuration it was
// captured under and an exact, deterministic image of the table — every
// way, valid or not, in row-major set order, including the LRU clocks —
// so a restored predictor is bit-identical to the captured one and a
// restored run trains and evicts exactly like the straight-line run.
//
// Restore refuses a state captured under a different configuration: a
// checkpoint never silently reshapes a table.

// StrideEntryState is one stride-table way.
type StrideEntryState struct {
	PC         uint64 `json:"pc"`
	Valid      bool   `json:"valid,omitempty"`
	LastAddr   uint64 `json:"last_addr,omitempty"`
	Stride     int64  `json:"stride,omitempty"`
	Confidence int    `json:"confidence,omitempty"`
	LastUse    uint64 `json:"last_use,omitempty"`
}

// StrideState is a complete stride-table snapshot.
type StrideState struct {
	Config      StrideConfig       `json:"config"`
	Entries     []StrideEntryState `json:"entries"` // row-major, len = Config.Entries
	Clock       uint64             `json:"clock"`
	Trainings   uint64             `json:"trainings"`
	Allocations uint64             `json:"allocations"`
}

// State captures the table.
func (s *Stride) State() *StrideState {
	st := &StrideState{
		Config:      s.cfg,
		Entries:     make([]StrideEntryState, 0, s.cfg.Entries),
		Clock:       s.clock,
		Trainings:   s.Trainings,
		Allocations: s.Allocations,
	}
	for _, set := range s.sets {
		for _, e := range set {
			st.Entries = append(st.Entries, StrideEntryState{
				PC: e.pc, Valid: e.valid, LastAddr: e.lastAddr,
				Stride: e.stride, Confidence: e.confidence, LastUse: e.lastUse,
			})
		}
	}
	return st
}

// Restore overwrites the table with a captured state. The state must have
// been captured under an identical configuration.
func (s *Stride) Restore(st *StrideState) error {
	if st.Config != s.cfg {
		return fmt.Errorf("stride predictor: checkpoint config %+v does not match this core's %+v", st.Config, s.cfg)
	}
	if len(st.Entries) != s.cfg.Entries {
		return fmt.Errorf("stride predictor: checkpoint has %d entries, table holds %d", len(st.Entries), s.cfg.Entries)
	}
	i := 0
	for _, set := range s.sets {
		for w := range set {
			e := st.Entries[i]
			set[w] = strideEntry{
				pc: e.PC, valid: e.Valid, lastAddr: e.LastAddr,
				stride: e.Stride, confidence: e.Confidence, lastUse: e.LastUse,
			}
			i++
		}
	}
	s.clock = st.Clock
	s.Trainings = st.Trainings
	s.Allocations = st.Allocations
	return nil
}

// ContextEntryState is one context-table way.
type ContextEntryState struct {
	Key        uint64 `json:"key"`
	Valid      bool   `json:"valid,omitempty"`
	ToAddr     uint64 `json:"to_addr,omitempty"`
	Confidence int    `json:"confidence,omitempty"`
	LastUse    uint64 `json:"last_use,omitempty"`
}

// ContextLastState is one entry of the per-PC last-committed-address map,
// serialized as a sorted slice so the encoding is deterministic.
type ContextLastState struct {
	PC   uint64 `json:"pc"`
	Addr uint64 `json:"addr"`
}

// ContextState is a complete context-predictor snapshot.
type ContextState struct {
	Config    ContextConfig       `json:"config"`
	Entries   []ContextEntryState `json:"entries"`
	Last      []ContextLastState  `json:"last"` // sorted by PC
	Clock     uint64              `json:"clock"`
	Trainings uint64              `json:"trainings"`
}

// State captures the predictor.
func (c *Context) State() *ContextState {
	st := &ContextState{
		Config:    c.cfg,
		Entries:   make([]ContextEntryState, 0, c.cfg.Entries),
		Last:      make([]ContextLastState, 0, len(c.last)),
		Clock:     c.clock,
		Trainings: c.Trainings,
	}
	for _, set := range c.sets {
		for _, e := range set {
			st.Entries = append(st.Entries, ContextEntryState{
				Key: e.key, Valid: e.valid, ToAddr: e.toAddr,
				Confidence: e.confidence, LastUse: e.lastUse,
			})
		}
	}
	for pc, a := range c.last {
		st.Last = append(st.Last, ContextLastState{PC: pc, Addr: a})
	}
	sortLast(st.Last)
	return st
}

func sortLast(s []ContextLastState) {
	// Insertion sort: the per-PC map is small (distinct load PCs in the
	// program) and this avoids importing sort for one call site.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].PC > s[j].PC; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// Restore overwrites the predictor with a captured state.
func (c *Context) Restore(st *ContextState) error {
	if st.Config != c.cfg {
		return fmt.Errorf("context predictor: checkpoint config %+v does not match this core's %+v", st.Config, c.cfg)
	}
	if len(st.Entries) != c.cfg.Entries {
		return fmt.Errorf("context predictor: checkpoint has %d entries, table holds %d", len(st.Entries), c.cfg.Entries)
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			e := st.Entries[i]
			set[w] = contextEntry{
				key: e.Key, valid: e.Valid, toAddr: e.ToAddr,
				confidence: e.Confidence, lastUse: e.LastUse,
			}
			i++
		}
	}
	c.last = make(map[uint64]uint64, len(st.Last))
	for _, l := range st.Last {
		c.last[l.PC] = l.Addr
	}
	c.clock = st.Clock
	c.Trainings = st.Trainings
	return nil
}

// BimodalState is a complete bimodal-predictor snapshot. Counters is the
// raw 2-bit counter array (one byte each; json marshals []byte as base64).
type BimodalState struct {
	Entries     int    `json:"entries"`
	Counters    []byte `json:"counters"`
	Predictions uint64 `json:"predictions"`
}

// State captures the predictor.
func (b *Bimodal) State() *BimodalState {
	st := &BimodalState{
		Entries:     len(b.counters),
		Counters:    make([]byte, len(b.counters)),
		Predictions: b.Predictions,
	}
	copy(st.Counters, b.counters)
	return st
}

// Restore overwrites the predictor with a captured state.
func (b *Bimodal) Restore(st *BimodalState) error {
	if st.Entries != len(b.counters) || len(st.Counters) != len(b.counters) {
		return fmt.Errorf("bimodal predictor: checkpoint has %d counters, table holds %d", len(st.Counters), len(b.counters))
	}
	copy(b.counters, st.Counters)
	b.Predictions = st.Predictions
	return nil
}

// GShareState is a complete gshare snapshot. The core's speculative and
// architectural history registers live in the core's own state, not here.
type GShareState struct {
	Config   GShareConfig `json:"config"`
	Counters []byte       `json:"counters"`
}

// State captures the predictor.
func (g *GShare) State() *GShareState {
	st := &GShareState{
		Config: GShareConfig{
			Entries:     len(g.counters),
			HistoryBits: histBits(g.histMask),
		},
		Counters: make([]byte, len(g.counters)),
	}
	copy(st.Counters, g.counters)
	return st
}

func histBits(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Restore overwrites the predictor with a captured state.
func (g *GShare) Restore(st *GShareState) error {
	if st.Config.Entries != len(g.counters) || uint64(1)<<uint(st.Config.HistoryBits)-1 != g.histMask {
		return fmt.Errorf("gshare predictor: checkpoint config %+v does not match this core's %d entries / mask %#x",
			st.Config, len(g.counters), g.histMask)
	}
	if len(st.Counters) != len(g.counters) {
		return fmt.Errorf("gshare predictor: checkpoint has %d counters, table holds %d", len(st.Counters), len(g.counters))
	}
	copy(g.counters, st.Counters)
	return nil
}

// ValueEntryState is one value-table way.
type ValueEntryState struct {
	PC         uint64 `json:"pc"`
	Valid      bool   `json:"valid,omitempty"`
	LastValue  int64  `json:"last_value,omitempty"`
	Stride     int64  `json:"stride,omitempty"`
	Confidence int    `json:"confidence,omitempty"`
	LastUse    uint64 `json:"last_use,omitempty"`
}

// ValueState is a complete value-predictor snapshot.
type ValueState struct {
	Config    ValueConfig       `json:"config"`
	Entries   []ValueEntryState `json:"entries"`
	Clock     uint64            `json:"clock"`
	Trainings uint64            `json:"trainings"`
}

// State captures the predictor.
func (v *Value) State() *ValueState {
	st := &ValueState{
		Config:    v.cfg,
		Entries:   make([]ValueEntryState, 0, v.cfg.Entries),
		Clock:     v.clock,
		Trainings: v.Trainings,
	}
	for _, set := range v.sets {
		for _, e := range set {
			st.Entries = append(st.Entries, ValueEntryState{
				PC: e.pc, Valid: e.valid, LastValue: e.lastValue,
				Stride: e.stride, Confidence: e.confidence, LastUse: e.lastUse,
			})
		}
	}
	return st
}

// Restore overwrites the predictor with a captured state.
func (v *Value) Restore(st *ValueState) error {
	if st.Config != v.cfg {
		return fmt.Errorf("value predictor: checkpoint config %+v does not match this core's %+v", st.Config, v.cfg)
	}
	if len(st.Entries) != v.cfg.Entries {
		return fmt.Errorf("value predictor: checkpoint has %d entries, table holds %d", len(st.Entries), v.cfg.Entries)
	}
	i := 0
	for _, set := range v.sets {
		for w := range set {
			e := st.Entries[i]
			set[w] = valueEntry{
				pc: e.PC, valid: e.Valid, lastValue: e.LastValue,
				stride: e.Stride, confidence: e.Confidence, lastUse: e.LastUse,
			}
			i++
		}
	}
	v.clock = st.Clock
	v.Trainings = st.Trainings
	return nil
}

// StoreSetsEntryState is one store-set table slot.
type StoreSetsEntryState struct {
	PC    uint64 `json:"pc"`
	Valid bool   `json:"valid,omitempty"`
	Set   uint32 `json:"set,omitempty"`
}

// StoreSetsState is a complete store-set predictor snapshot.
type StoreSetsState struct {
	Config      StoreSetsConfig       `json:"config"`
	Table       []StoreSetsEntryState `json:"table"`
	NextSet     uint32                `json:"next_set"`
	Assignments uint64                `json:"assignments"`
}

// State captures the predictor.
func (s *StoreSets) State() *StoreSetsState {
	st := &StoreSetsState{
		Config:      s.cfg,
		Table:       make([]StoreSetsEntryState, len(s.table)),
		NextSet:     s.nextSet,
		Assignments: s.Assignments,
	}
	for i, e := range s.table {
		st.Table[i] = StoreSetsEntryState{PC: e.pc, Valid: e.valid, Set: e.set}
	}
	return st
}

// Restore overwrites the predictor with a captured state.
func (s *StoreSets) Restore(st *StoreSetsState) error {
	if st.Config != s.cfg {
		return fmt.Errorf("store sets: checkpoint config %+v does not match this core's %+v", st.Config, s.cfg)
	}
	if len(st.Table) != len(s.table) {
		return fmt.Errorf("store sets: checkpoint has %d slots, table holds %d", len(st.Table), len(s.table))
	}
	for i, e := range st.Table {
		s.table[i] = ssEntry{pc: e.PC, valid: e.Valid, set: e.Set}
	}
	s.nextSet = st.NextSet
	s.Assignments = st.Assignments
	return nil
}
