// Package predictor implements the prediction structures used by the core:
// the PC-indexed stride table that serves simultaneously as a conventional
// prefetcher ("prefetching mode") and as the doppelganger address predictor
// ("address prediction mode"), and a bimodal branch direction predictor.
//
// Security requirement (paper §5): the stride table is trained strictly on
// committed, non-speculative load addresses, uses full PC tags to prevent
// aliasing, and predictions never update predictor state. All of that is
// enforced here: Predict is read-only and Train is the only mutator.
package predictor

import "fmt"

// StrideConfig sizes the shared prefetcher / address predictor table.
// The paper's configuration (Table 1) is 1024 entries, 8-way set
// associative, full PC tags (~13.5 KiB of storage).
type StrideConfig struct {
	Entries int // total entries; must be a multiple of Ways
	Ways    int // set associativity
	// ConfidenceThreshold is the training confirmations required before
	// the entry produces predictions.
	ConfidenceThreshold int
	// MaxConfidence saturates the confidence counter.
	MaxConfidence int
}

// DefaultStrideConfig returns the paper's predictor configuration.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{Entries: 1024, Ways: 8, ConfidenceThreshold: 2, MaxConfidence: 7}
}

// Validate reports configuration errors.
func (c StrideConfig) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("predictor: entries %d must be a positive multiple of ways %d", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("predictor: set count %d is not a power of two", sets)
	}
	if c.ConfidenceThreshold <= 0 || c.MaxConfidence < c.ConfidenceThreshold {
		return fmt.Errorf("predictor: bad confidence bounds %d/%d", c.ConfidenceThreshold, c.MaxConfidence)
	}
	return nil
}

type strideEntry struct {
	pc         uint64 // full tag
	valid      bool
	lastAddr   uint64
	stride     int64
	confidence int
	lastUse    uint64
}

// Stride is the shared stride table. The zero value is not usable; call
// NewStride.
type Stride struct {
	cfg     StrideConfig
	sets    [][]strideEntry
	setMask uint64
	clock   uint64

	// Trainings counts Train calls; Allocations counts new-entry fills.
	Trainings   uint64
	Allocations uint64
}

// NewStride builds the table; invalid configuration panics (setup error).
func NewStride(cfg StrideConfig) *Stride {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Entries / cfg.Ways
	s := &Stride{cfg: cfg, sets: make([][]strideEntry, nsets), setMask: uint64(nsets - 1)}
	backing := make([]strideEntry, cfg.Entries)
	for i := range s.sets {
		s.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return s
}

// Config returns the table configuration.
func (s *Stride) Config() StrideConfig { return s.cfg }

func (s *Stride) find(pc uint64) *strideEntry {
	set := s.sets[pc&s.setMask]
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			return &set[i]
		}
	}
	return nil
}

// Train updates the table with a committed (non-speculative) load: the load
// at pc accessed addr. This is the only mutating operation; it must only be
// called at commit, never with speculative addresses.
func (s *Stride) Train(pc, addr uint64) {
	s.Trainings++
	s.clock++
	e := s.find(pc)
	if e == nil {
		e = s.victim(pc)
		*e = strideEntry{pc: pc, valid: true, lastAddr: addr, lastUse: s.clock}
		s.Allocations++
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	switch {
	case stride == e.stride:
		if e.confidence < s.cfg.MaxConfidence {
			e.confidence++
		}
	case e.confidence > 0:
		// One-off disruption: lose confidence but keep the stride
		// hypothesis so a single irregular access does not destroy a
		// well-established stream.
		e.confidence--
	default:
		e.stride = stride
	}
	e.lastAddr = addr
	e.lastUse = s.clock
}

// victim selects the replacement entry in pc's set: an invalid way if one
// exists, otherwise the least recently used.
func (s *Stride) victim(pc uint64) *strideEntry {
	set := s.sets[pc&s.setMask]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
	}
	v := 0
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < set[v].lastUse {
			v = i
		}
	}
	return &set[v]
}

// Predict runs in address-prediction mode: it predicts the address of the
// occurrence-th dynamic instance of the load at pc following the last
// committed one (occurrence >= 1 counts in-flight instances of the same PC,
// including the one being predicted). It is read-only.
func (s *Stride) Predict(pc uint64, occurrence int) (addr uint64, ok bool) {
	if occurrence < 1 {
		return 0, false
	}
	e := s.find(pc)
	if e == nil || e.confidence < s.cfg.ConfidenceThreshold {
		return 0, false
	}
	return uint64(int64(e.lastAddr) + e.stride*int64(occurrence)), true
}

// PrefetchTargets runs in prefetching mode: given the resolved access at
// (pc, addr), it returns up to degree future stride addresses to prefetch,
// starting distance strides ahead. Zero strides produce no targets. It is
// read-only; call Train separately (and only with committed addresses).
func (s *Stride) PrefetchTargets(pc, addr uint64, distance, degree int, buf []uint64) []uint64 {
	e := s.find(pc)
	if e == nil || e.confidence < s.cfg.ConfidenceThreshold || e.stride == 0 {
		return buf[:0]
	}
	buf = buf[:0]
	for d := 0; d < degree; d++ {
		buf = append(buf, uint64(int64(addr)+e.stride*int64(distance+d)))
	}
	return buf
}

// Lookup exposes the entry state for a PC (for tests and introspection):
// the last trained address, stride, confidence, and presence.
func (s *Stride) Lookup(pc uint64) (lastAddr uint64, stride int64, confidence int, ok bool) {
	e := s.find(pc)
	if e == nil {
		return 0, 0, 0, false
	}
	return e.lastAddr, e.stride, e.confidence, true
}

// Snapshot returns a deterministic fingerprint of the whole table state,
// used by security tests to prove that speculative execution cannot
// influence the predictor.
func (s *Stride) Snapshot() uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for si, set := range s.sets {
		for _, e := range set {
			if !e.valid {
				continue
			}
			mix(uint64(si))
			mix(e.pc)
			mix(e.lastAddr)
			mix(uint64(e.stride))
			mix(uint64(e.confidence))
		}
	}
	return h
}
