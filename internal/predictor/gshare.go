package predictor

import "fmt"

// GShareConfig sizes a gshare direction predictor.
type GShareConfig struct {
	Entries     int // 2-bit counters; must be a power of two
	HistoryBits int // global history length (<= 32)
}

// DefaultGShareConfig returns a 4096-counter, 12-bit-history gshare.
func DefaultGShareConfig() GShareConfig { return GShareConfig{Entries: 4096, HistoryBits: 12} }

// Validate reports configuration errors.
func (c GShareConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("gshare: entries %d not a power of two", c.Entries)
	}
	if c.HistoryBits <= 0 || c.HistoryBits > 32 {
		return fmt.Errorf("gshare: history bits %d out of range", c.HistoryBits)
	}
	return nil
}

// GShare is a global-history direction predictor. Unlike Bimodal it is
// history-sensitive, so the core must supply the speculative global history
// at prediction time and the architectural history at training time — and
// repair its history register on squashes. See pipeline's gshare glue.
type GShare struct {
	counters []uint8
	mask     uint64
	histMask uint64
}

// NewGShare builds the predictor; invalid configuration panics.
func NewGShare(cfg GShareConfig) *GShare {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &GShare{
		counters: make([]uint8, cfg.Entries),
		mask:     uint64(cfg.Entries - 1),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
	}
	for i := range g.counters {
		g.counters[i] = 2 // weakly taken
	}
	return g
}

func (g *GShare) index(pc, hist uint64) uint64 {
	return (pc ^ (hist & g.histMask)) & g.mask
}

// PredictWithHistory returns the predicted direction for pc under the given
// (speculative) global history.
func (g *GShare) PredictWithHistory(pc, hist uint64) bool {
	return g.counters[g.index(pc, hist)] >= 2
}

// TrainWithHistory updates the counter selected by (pc, hist) with the
// committed outcome.
func (g *GShare) TrainWithHistory(pc, hist uint64, taken bool) {
	c := &g.counters[g.index(pc, hist)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// HistoryMask exposes the history length for the core's shift register.
func (g *GShare) HistoryMask() uint64 { return g.histMask }

// Snapshot fingerprints the counter table, for the leakage tests that prove
// committed-only training keeps the predictor free of secret-dependent
// state.
func (g *GShare) Snapshot() uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	for i, c := range g.counters {
		h ^= uint64(i)<<8 | uint64(c)
		h *= prime
	}
	return h
}
