package predictor

import "fmt"

// BranchPredictor predicts conditional branch directions. Implementations
// are trained only on committed outcomes, which keeps predictor state free
// of speculative influence in every scheme (STT requires this; the other
// schemes simply benefit from the uniformity).
type BranchPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Train records the committed outcome of the branch at pc.
	Train(pc uint64, taken bool)
}

// BimodalConfig sizes a bimodal predictor.
type BimodalConfig struct {
	Entries int // number of 2-bit counters; must be a power of two
}

// DefaultBimodalConfig returns a 4096-counter bimodal predictor.
func DefaultBimodalConfig() BimodalConfig { return BimodalConfig{Entries: 4096} }

// Bimodal is a classic PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	counters []uint8
	mask     uint64

	// Predictions and Correct are bookkeeping for accuracy statistics
	// maintained by the caller via Train (Correct is updated by comparing
	// Predict's output to Train's outcome at the call sites).
	Predictions uint64
}

// NewBimodal builds the predictor; a non-power-of-two size panics.
func NewBimodal(cfg BimodalConfig) *Bimodal {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic(fmt.Sprintf("predictor: bimodal entries %d not a power of two", cfg.Entries))
	}
	b := &Bimodal{counters: make([]uint8, cfg.Entries), mask: uint64(cfg.Entries - 1)}
	// Initialise to weakly taken: loop branches warm up faster.
	for i := range b.counters {
		b.counters[i] = 2
	}
	return b
}

// Predict returns true if the branch at pc is predicted taken.
func (b *Bimodal) Predict(pc uint64) bool {
	b.Predictions++
	return b.counters[pc&b.mask] >= 2
}

// Train updates the 2-bit counter with a committed outcome.
func (b *Bimodal) Train(pc uint64, taken bool) {
	c := &b.counters[pc&b.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Snapshot fingerprints the counter table, for the leakage tests that prove
// committed-only training keeps the predictor free of secret-dependent
// state.
func (b *Bimodal) Snapshot() uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	for i, c := range b.counters {
		h ^= uint64(i)<<8 | uint64(c)
		h *= prime
	}
	return h
}

// StaticTaken always predicts taken; useful in tests to force deterministic
// misprediction patterns.
type StaticTaken struct{}

// Predict always returns true.
func (StaticTaken) Predict(uint64) bool { return true }

// Train is a no-op.
func (StaticTaken) Train(uint64, bool) {}

// StaticNotTaken always predicts not-taken.
type StaticNotTaken struct{}

// Predict always returns false.
func (StaticNotTaken) Predict(uint64) bool { return false }

// Train is a no-op.
func (StaticNotTaken) Train(uint64, bool) {}
