package predictor

import "fmt"

// StoreSetsConfig sizes the memory-dependence predictor (a simplified
// Chrysos/Emer store-set predictor, the mechanism the paper assumes when
// discussing store-to-load forwarding as an implicit channel, §4.4).
type StoreSetsConfig struct {
	// Entries bounds the PC-to-set table; must be a power of two.
	Entries int
}

// DefaultStoreSetsConfig returns a 2048-entry table.
func DefaultStoreSetsConfig() StoreSetsConfig { return StoreSetsConfig{Entries: 2048} }

// Validate reports configuration errors.
func (c StoreSetsConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("store sets: entries %d not a power of two", c.Entries)
	}
	return nil
}

type ssEntry struct {
	pc    uint64 // full tag
	valid bool
	set   uint32
}

// StoreSets learns which (load PC, store PC) pairs alias: after a
// memory-order violation the pair is merged into a common store set, and
// the core then makes future instances of that load wait for unresolved
// older stores in the same set instead of speculating past them.
//
// Training happens at violation detection, which every scheme already
// gates on safe (shadow-resolved) store addresses; predictions are
// read-only lookups.
type StoreSets struct {
	cfg     StoreSetsConfig
	table   []ssEntry
	mask    uint64
	nextSet uint32

	// Assignments counts violation-driven merges.
	Assignments uint64
}

// NewStoreSets builds the predictor; invalid configuration panics.
func NewStoreSets(cfg StoreSetsConfig) *StoreSets {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &StoreSets{
		cfg:   cfg,
		table: make([]ssEntry, cfg.Entries),
		mask:  uint64(cfg.Entries - 1),
	}
}

// Config returns the predictor configuration.
func (s *StoreSets) Config() StoreSetsConfig { return s.cfg }

func (s *StoreSets) slot(pc uint64) *ssEntry {
	e := &s.table[pc&s.mask]
	if e.valid && e.pc == pc {
		return e
	}
	return nil
}

// Lookup returns the store set of pc, if any.
func (s *StoreSets) Lookup(pc uint64) (uint32, bool) {
	if e := s.slot(pc); e != nil {
		return e.set, true
	}
	return 0, false
}

// Assign merges the load and store PCs into one store set after a
// violation. If either already belongs to a set, the other joins it
// (the classic store-set merge rule, simplified to adopt the load's set).
func (s *StoreSets) Assign(loadPC, storePC uint64) {
	s.Assignments++
	le := &s.table[loadPC&s.mask]
	se := &s.table[storePC&s.mask]
	switch {
	case le.valid && le.pc == loadPC:
		*se = ssEntry{pc: storePC, valid: true, set: le.set}
	case se.valid && se.pc == storePC:
		*le = ssEntry{pc: loadPC, valid: true, set: se.set}
	default:
		s.nextSet++
		*le = ssEntry{pc: loadPC, valid: true, set: s.nextSet}
		*se = ssEntry{pc: storePC, valid: true, set: s.nextSet}
	}
}

// SameSet reports whether the load and store PCs are known to alias.
func (s *StoreSets) SameSet(loadPC, storePC uint64) bool {
	le := s.slot(loadPC)
	if le == nil {
		return false
	}
	se := s.slot(storePC)
	return se != nil && se.set == le.set
}
