package secure

// TaintTracker implements STT's register taint propagation using the
// youngest-root-of-taint (YRoT) representation: each physical register
// carries the sequence number of the youngest speculative load whose value
// flows into it (0 = untainted). Because "speculative" is monotonic in
// sequence number — if a younger instruction is non-speculative then so is
// every older one — a register is tainted exactly when its YRoT load is
// still speculative, and combining taints is a plain max. Untainting is
// therefore implicit: when the root load reaches its visibility point the
// dynamic check flips, with no broadcast walk required.
type TaintTracker struct {
	root    []uint64 // per physical register: YRoT sequence, 0 = none
	shadows *ShadowTracker

	// writes counts register writes that carried a non-zero taint root —
	// the taint-propagation traffic STT's hardware would broadcast.
	writes uint64
}

// NewTaintTracker sizes the tracker for a physical register file and binds
// it to the shadow tracker that defines visibility points.
func NewTaintTracker(physRegs int, shadows *ShadowTracker) *TaintTracker {
	return &TaintTracker{root: make([]uint64, physRegs), shadows: shadows}
}

// SetRoot records that register r was written by the load with sequence seq
// (the load taints its own output; whether that taint is live is decided
// dynamically against the shadow frontier).
func (t *TaintTracker) SetRoot(r int, seq uint64) {
	t.root[r] = seq
	if seq != 0 {
		t.writes++
	}
}

// Combine computes the output taint root of an instruction reading the
// given registers: the maximum (youngest) root among the sources.
func (t *TaintTracker) Combine(srcs ...int) uint64 {
	var m uint64
	for _, r := range srcs {
		if t.root[r] > m {
			m = t.root[r]
		}
	}
	return m
}

// SetCombined writes the combined taint of the sources into dst, modelling
// taint flow through a non-load instruction.
func (t *TaintTracker) SetCombined(dst int, srcs ...int) {
	root := t.Combine(srcs...)
	t.root[dst] = root
	if root != 0 {
		t.writes++
	}
}

// TaintedWrites returns the number of register writes that propagated a
// non-zero taint root (observability census).
func (t *TaintTracker) TaintedWrites() uint64 { return t.writes }

// SetWrites overwrites the tainted-write census. Used when a core is
// rebuilt from a checkpoint so restored-run stats match a straight-line
// run; taint roots themselves are empty at a quiescent snapshot point.
func (t *TaintTracker) SetWrites(n uint64) { t.writes = n }

// Clear untaints a register (e.g. when it is rewritten by a non-load with
// untainted sources, or freed).
func (t *TaintTracker) Clear(r int) { t.root[r] = 0 }

// Root returns the raw YRoT of the register (0 = never tainted).
func (t *TaintTracker) Root(r int) uint64 { return t.root[r] }

// Tainted reports whether the register currently holds a tainted value:
// its root load exists and is still speculative.
func (t *TaintTracker) Tainted(r int) bool { return t.RootSpeculative(t.root[r]) }

// TaintedAny reports whether any of the registers is tainted.
func (t *TaintTracker) TaintedAny(regs ...int) bool {
	for _, r := range regs {
		if t.Tainted(r) {
			return true
		}
	}
	return false
}

// RootSpeculative reports whether a taint root (sequence number) is still
// speculative, i.e. whether the taint it denotes is live.
func (t *TaintTracker) RootSpeculative(root uint64) bool {
	return root != 0 && t.shadows.Speculative(root)
}

// Reset untaints every register and clears the census.
func (t *TaintTracker) Reset() {
	for i := range t.root {
		t.root[i] = 0
	}
	t.writes = 0
}
