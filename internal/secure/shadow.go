package secure

import "fmt"

// ShadowTracker tracks unresolved shadow-casting instructions by sequence
// number. A shadow is cast by a control-flow instruction from dispatch until
// its resolution, and by a store from dispatch until its address is resolved
// (and, under STT, untainted). An instruction is *speculative* while any
// older shadow is unresolved.
//
// Shadows are registered in dispatch (program) order, so the internal slice
// stays sorted by construction; resolution may remove from the middle, and a
// squash truncates the young end.
//
// The zero value is an empty tracker ready for use.
type ShadowTracker struct {
	seqs []uint64 // sorted ascending; unresolved shadow casters

	// Observability census (monotonic over the tracker's lifetime, except
	// peak which is a high-water mark; Reset clears both).
	opened uint64
	peak   int
}

// Add registers an unresolved shadow cast by the instruction with the given
// sequence number. Sequence numbers must be registered in increasing order
// (dispatch order); Add panics otherwise, as that indicates a pipeline bug.
func (t *ShadowTracker) Add(seq uint64) {
	if n := len(t.seqs); n > 0 && t.seqs[n-1] >= seq {
		panic(fmt.Sprintf("secure: shadow %d added out of order (last %d)", seq, t.seqs[n-1]))
	}
	t.seqs = append(t.seqs, seq)
	t.opened++
	if n := len(t.seqs); n > t.peak {
		t.peak = n
	}
}

// Reserve grows the tracker's capacity to hold at least n outstanding
// shadows without reallocating. Outstanding shadows are bounded by the
// reorder-buffer size, so a core can reserve once at construction and keep
// the per-dispatch Add allocation-free.
func (t *ShadowTracker) Reserve(n int) {
	if cap(t.seqs) >= n {
		return
	}
	seqs := make([]uint64, len(t.seqs), n)
	copy(seqs, t.seqs)
	t.seqs = seqs
}

// Opened returns the total number of shadows ever registered.
func (t *ShadowTracker) Opened() uint64 { return t.opened }

// Peak returns the maximum number of simultaneously outstanding shadows.
func (t *ShadowTracker) Peak() int { return t.peak }

// Resolve removes the shadow cast by seq, reporting whether it was present.
func (t *ShadowTracker) Resolve(seq uint64) bool {
	i := t.search(seq)
	if i == len(t.seqs) || t.seqs[i] != seq {
		return false
	}
	t.seqs = append(t.seqs[:i], t.seqs[i+1:]...)
	return true
}

// SquashAfter removes all shadows with sequence numbers strictly greater
// than seq (the squash survivor).
func (t *ShadowTracker) SquashAfter(seq uint64) {
	i := t.search(seq + 1)
	t.seqs = t.seqs[:i]
}

// Speculative reports whether the instruction with the given sequence number
// is under any shadow, i.e. whether an older shadow is unresolved. An
// instruction's own shadow does not make it speculative.
func (t *ShadowTracker) Speculative(seq uint64) bool {
	return len(t.seqs) > 0 && t.seqs[0] < seq
}

// Frontier returns the oldest unresolved shadow sequence and true, or 0 and
// false if no shadow is outstanding. All instructions with seq <= frontier
// are non-speculative.
func (t *ShadowTracker) Frontier() (uint64, bool) {
	if len(t.seqs) == 0 {
		return 0, false
	}
	return t.seqs[0], true
}

// Outstanding returns the number of unresolved shadows.
func (t *ShadowTracker) Outstanding() int { return len(t.seqs) }

// SetCensus overwrites the observability census. Used when a core is
// rebuilt from a checkpoint: the tracker itself must be empty (the core
// drains to quiescence before snapshotting), but the lifetime counters
// carry across so restored-run stats match a straight-line run.
func (t *ShadowTracker) SetCensus(opened uint64, peak int) {
	t.opened = opened
	t.peak = peak
}

// Reset clears all shadows and the observability census.
func (t *ShadowTracker) Reset() {
	t.seqs = t.seqs[:0]
	t.opened = 0
	t.peak = 0
}

// search returns the first index i with seqs[i] >= seq.
func (t *ShadowTracker) search(seq uint64) int {
	lo, hi := 0, len(t.seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.seqs[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
