// Package secure implements the building blocks of the three secure
// speculation schemes the paper evaluates — Non-speculative Data Access with
// permissive propagation (NDA-P), Speculative Taint Tracking (STT), and
// Delay-on-Miss (DoM) — plus the unsafe baseline.
//
// The schemes share a common notion of speculation: an instruction is
// speculative while an older *shadow-casting* instruction is unresolved
// (unresolved control flow, or a store with an unresolved address). This is
// the shadow tracking of Ghost Loads / Delay-on-Miss, which the paper uses
// for all evaluated schemes. ShadowTracker implements it. TaintTracker
// implements STT's youngest-root-of-taint propagation over physical
// registers.
package secure

import "fmt"

// Scheme selects a secure speculation scheme.
type Scheme uint8

// The evaluated schemes.
const (
	// Unsafe is the unprotected out-of-order baseline: speculatively
	// loaded values propagate freely and can leak.
	Unsafe Scheme = iota
	// NDAP is NDA with permissive propagation: speculative loads issue
	// and complete, but their values do not propagate to dependents until
	// the load is non-speculative.
	NDAP
	// STT taints speculatively loaded values and delays only tainted
	// transmitters (loads, branch resolution); dependent non-transmitters
	// execute freely.
	STT
	// DoM (Delay-on-Miss) lets speculative loads that hit in the L1
	// proceed (with delayed replacement update) and delays L1 misses
	// until the load is non-speculative.
	DoM
	// NDAS is NDA with strict propagation: a load's value propagates only
	// once the load is the oldest instruction in flight, the conservative
	// variant the NDA paper offers for stronger threat models.
	NDAS
	// STTSpectre is STT under the Spectre threat model: only loads that
	// are control-speculative (younger than an unresolved branch) taint
	// their outputs; loads speculative merely through unresolved store
	// addresses do not. The paper's STT evaluation uses the futuristic
	// model (our STT); this variant reproduces the weaker model from the
	// STT paper for comparison.
	STTSpectre
	// Cleanup is a CleanupSpec-style *undo* scheme — the field's other
	// major design point next to the delay-based schemes above. Speculative
	// loads issue, propagate and fill caches exactly as on the unsafe
	// baseline; the hierarchy instead journals every speculative side
	// effect (fills, evictions, replacement-recency touches, MSHR
	// allocations, traffic counters) and a squash rolls the journal back
	// past the squash boundary, reinstating evicted victims. Protection is
	// therefore retrospective: the wrong path runs at full speed, and its
	// micro-architectural footprint is erased before non-transient code can
	// observe it.
	Cleanup

	numSchemes
)

var schemeNames = [numSchemes]string{
	Unsafe:     "unsafe",
	NDAP:       "nda-p",
	STT:        "stt",
	DoM:        "dom",
	NDAS:       "nda-s",
	STTSpectre: "stt-spectre",
	Cleanup:    "cleanup",
}

// String returns the scheme's short name.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Valid reports whether the scheme is defined.
func (s Scheme) Valid() bool { return s < numSchemes }

// ParseScheme maps a name (as produced by String) back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for i, n := range schemeNames {
		if n == name {
			return Scheme(i), nil
		}
	}
	return 0, fmt.Errorf("secure: unknown scheme %q", name)
}

// Schemes lists the paper's evaluated schemes in evaluation order.
func Schemes() []Scheme { return []Scheme{Unsafe, NDAP, STT, DoM} }

// AllSchemes additionally includes the variants this reproduction adds
// beyond the paper's evaluation (strict NDA, Spectre-model STT, and the
// CleanupSpec-style undo scheme).
func AllSchemes() []Scheme {
	return []Scheme{Unsafe, NDAP, STT, DoM, NDAS, STTSpectre, Cleanup}
}

// DelaysPropagation reports whether the scheme withholds a speculative
// load's result from dependents until the load is safe (NDA variants).
func (s Scheme) DelaysPropagation() bool { return s == NDAP || s == NDAS }

// PropagatesAtHead reports whether loads may only propagate once they are
// the oldest in-flight instruction (NDA strict propagation).
func (s Scheme) PropagatesAtHead() bool { return s == NDAS }

// TracksTaint reports whether the scheme uses taint tracking (STT models).
func (s Scheme) TracksTaint() bool { return s == STT || s == STTSpectre }

// ControlOnlyTaint reports whether taint liveness considers only control
// speculation (the Spectre threat model) rather than all shadows.
func (s Scheme) ControlOnlyTaint() bool { return s == STTSpectre }

// DelaysOnMiss reports whether speculative loads that miss in the L1 are
// delayed until non-speculative (DoM).
func (s Scheme) DelaysOnMiss() bool { return s == DoM }

// UndoesSpeculation reports whether the scheme lets speculative accesses
// change the cache hierarchy freely and rolls the changes back on squash
// (the CleanupSpec design point), rather than delaying them up front.
func (s Scheme) UndoesSpeculation() bool { return s == Cleanup }
