package secure

import "fmt"

// Mutation deliberately weakens one scheme's delay/taint logic. Mutations
// exist solely so the differential leakage checker (internal/leakcheck) can
// prove its oracle has teeth: a planted weakening must be reported as a
// leak. They must never be enabled outside tests and the leakcheck
// mutation mode.
type Mutation uint8

// The planted weakenings, one per protection mechanism.
const (
	// MutNone leaves the scheme intact.
	MutNone Mutation = iota
	// MutNDAFreeProp breaks NDA's propagation delay: speculatively loaded
	// values reach dependents immediately, as on the unsafe baseline.
	MutNDAFreeProp
	// MutSTTNoTaint breaks STT's taint sourcing: loads no longer taint
	// their outputs, so every transmitter sees untainted operands.
	MutSTTNoTaint
	// MutDoMIssueMiss breaks Delay-on-Miss: speculative loads that miss in
	// the L1 are performed as ordinary accesses instead of being delayed.
	MutDoMIssueMiss
	// MutSpecTrain breaks the doppelganger security anchor: the address
	// predictor is trained at address resolution (speculatively, including
	// wrong-path loads) instead of only at commit.
	MutSpecTrain
	// MutCleanupNoLRUUndo breaks half of Cleanup's rollback: speculative
	// fills are still undone on squash, but replacement-recency touches are
	// not, so a wrong-path hit leaves its line promoted in the LRU stack —
	// the classic incomplete-rollback bug an undo scheme can ship with.
	MutCleanupNoLRUUndo
	// MutCleanupDropEvicted breaks the other half: on squash the
	// speculative fill is invalidated, but the victim line it evicted is
	// not reinstated, so a wrong-path miss still leaves a secret-dependent
	// hole in the cache.
	MutCleanupDropEvicted

	numMutations
)

var mutationNames = [numMutations]string{
	MutNone:         "none",
	MutNDAFreeProp:  "nda-free-prop",
	MutSTTNoTaint:   "stt-no-taint",
	MutDoMIssueMiss: "dom-issue-miss",
	MutSpecTrain:    "spec-train",

	MutCleanupNoLRUUndo:   "cleanup-no-lru-undo",
	MutCleanupDropEvicted: "cleanup-drop-evicted",
}

// String returns the mutation's short name.
func (m Mutation) String() string {
	if int(m) < len(mutationNames) {
		return mutationNames[m]
	}
	return fmt.Sprintf("mutation(%d)", uint8(m))
}

// Valid reports whether the mutation is defined.
func (m Mutation) Valid() bool { return m < numMutations }

// ParseMutation maps a name (as produced by String) back to a Mutation.
func ParseMutation(name string) (Mutation, error) {
	for i, n := range mutationNames {
		if n == name {
			return Mutation(i), nil
		}
	}
	return 0, fmt.Errorf("secure: unknown mutation %q", name)
}

// Mutations lists the planted weakenings (excluding MutNone).
func Mutations() []Mutation {
	return []Mutation{MutNDAFreeProp, MutSTTNoTaint, MutDoMIssueMiss, MutSpecTrain,
		MutCleanupNoLRUUndo, MutCleanupDropEvicted}
}

// DisablesPropagationDelay reports whether NDA's propagation delay is
// disabled.
func (m Mutation) DisablesPropagationDelay() bool { return m == MutNDAFreeProp }

// DisablesTaint reports whether STT's load-output tainting is disabled.
func (m Mutation) DisablesTaint() bool { return m == MutSTTNoTaint }

// DisablesDelayOnMiss reports whether DoM's miss delay is disabled.
func (m Mutation) DisablesDelayOnMiss() bool { return m == MutDoMIssueMiss }

// TrainsSpeculatively reports whether the address predictor is trained on
// speculative (pre-commit, possibly wrong-path) addresses.
func (m Mutation) TrainsSpeculatively() bool { return m == MutSpecTrain }

// SkipsLRUUndo reports whether Cleanup's rollback skips undoing
// replacement-recency touches (fills still roll back).
func (m Mutation) SkipsLRUUndo() bool { return m == MutCleanupNoLRUUndo }

// DropsEvictedLines reports whether Cleanup's rollback invalidates the
// speculative fill without reinstating the victim line it evicted.
func (m Mutation) DropsEvictedLines() bool { return m == MutCleanupDropEvicted }

// Target returns the scheme configuration the mutation is designed to
// weaken: the scheme whose protection it removes, and whether address
// prediction must be enabled for the weakening to be reachable.
func (m Mutation) Target() (s Scheme, needAP bool) {
	switch m {
	case MutNDAFreeProp:
		return NDAP, false
	case MutSTTNoTaint:
		return STT, false
	case MutDoMIssueMiss:
		return DoM, false
	case MutSpecTrain:
		// Speculative training only matters when the poisoned table is
		// consulted, i.e. with doppelganger loads enabled; DoM is the
		// scheme that lets a speculatively loaded value compute the
		// wrong-path address that poisons the table (L1-hit propagation).
		return DoM, true
	case MutCleanupNoLRUUndo, MutCleanupDropEvicted:
		return Cleanup, false
	default:
		return Unsafe, false
	}
}
