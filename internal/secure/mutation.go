package secure

import "fmt"

// Mutation deliberately weakens one scheme's delay/taint logic. Mutations
// exist solely so the differential leakage checker (internal/leakcheck) can
// prove its oracle has teeth: a planted weakening must be reported as a
// leak. They must never be enabled outside tests and the leakcheck
// mutation mode.
type Mutation uint8

// The planted weakenings, one per protection mechanism.
const (
	// MutNone leaves the scheme intact.
	MutNone Mutation = iota
	// MutNDAFreeProp breaks NDA's propagation delay: speculatively loaded
	// values reach dependents immediately, as on the unsafe baseline.
	MutNDAFreeProp
	// MutSTTNoTaint breaks STT's taint sourcing: loads no longer taint
	// their outputs, so every transmitter sees untainted operands.
	MutSTTNoTaint
	// MutDoMIssueMiss breaks Delay-on-Miss: speculative loads that miss in
	// the L1 are performed as ordinary accesses instead of being delayed.
	MutDoMIssueMiss
	// MutSpecTrain breaks the doppelganger security anchor: the address
	// predictor is trained at address resolution (speculatively, including
	// wrong-path loads) instead of only at commit.
	MutSpecTrain

	numMutations
)

var mutationNames = [numMutations]string{
	MutNone:         "none",
	MutNDAFreeProp:  "nda-free-prop",
	MutSTTNoTaint:   "stt-no-taint",
	MutDoMIssueMiss: "dom-issue-miss",
	MutSpecTrain:    "spec-train",
}

// String returns the mutation's short name.
func (m Mutation) String() string {
	if int(m) < len(mutationNames) {
		return mutationNames[m]
	}
	return fmt.Sprintf("mutation(%d)", uint8(m))
}

// Valid reports whether the mutation is defined.
func (m Mutation) Valid() bool { return m < numMutations }

// ParseMutation maps a name (as produced by String) back to a Mutation.
func ParseMutation(name string) (Mutation, error) {
	for i, n := range mutationNames {
		if n == name {
			return Mutation(i), nil
		}
	}
	return 0, fmt.Errorf("secure: unknown mutation %q", name)
}

// Mutations lists the planted weakenings (excluding MutNone).
func Mutations() []Mutation {
	return []Mutation{MutNDAFreeProp, MutSTTNoTaint, MutDoMIssueMiss, MutSpecTrain}
}

// DisablesPropagationDelay reports whether NDA's propagation delay is
// disabled.
func (m Mutation) DisablesPropagationDelay() bool { return m == MutNDAFreeProp }

// DisablesTaint reports whether STT's load-output tainting is disabled.
func (m Mutation) DisablesTaint() bool { return m == MutSTTNoTaint }

// DisablesDelayOnMiss reports whether DoM's miss delay is disabled.
func (m Mutation) DisablesDelayOnMiss() bool { return m == MutDoMIssueMiss }

// TrainsSpeculatively reports whether the address predictor is trained on
// speculative (pre-commit, possibly wrong-path) addresses.
func (m Mutation) TrainsSpeculatively() bool { return m == MutSpecTrain }

// Target returns the scheme configuration the mutation is designed to
// weaken: the scheme whose protection it removes, and whether address
// prediction must be enabled for the weakening to be reachable.
func (m Mutation) Target() (s Scheme, needAP bool) {
	switch m {
	case MutNDAFreeProp:
		return NDAP, false
	case MutSTTNoTaint:
		return STT, false
	case MutDoMIssueMiss:
		return DoM, false
	case MutSpecTrain:
		// Speculative training only matters when the poisoned table is
		// consulted, i.e. with doppelganger loads enabled; DoM is the
		// scheme that lets a speculatively loaded value compute the
		// wrong-path address that poisons the table (L1-hit propagation).
		return DoM, true
	default:
		return Unsafe, false
	}
}
