package secure

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme should reject unknown names")
	}
	if Scheme(99).Valid() {
		t.Error("out-of-range scheme should be invalid")
	}
}

func TestSchemeFlags(t *testing.T) {
	if !NDAP.DelaysPropagation() || STT.DelaysPropagation() || DoM.DelaysPropagation() || Unsafe.DelaysPropagation() {
		t.Error("DelaysPropagation must be NDA-P only")
	}
	if !STT.TracksTaint() || NDAP.TracksTaint() {
		t.Error("TracksTaint must be STT only")
	}
	if !DoM.DelaysOnMiss() || STT.DelaysOnMiss() {
		t.Error("DelaysOnMiss must be DoM only")
	}
}

func TestShadowTrackerBasics(t *testing.T) {
	var tr ShadowTracker
	if tr.Speculative(100) {
		t.Error("empty tracker: nothing is speculative")
	}
	tr.Add(10)
	tr.Add(20)
	tr.Add(30)
	if tr.Speculative(10) {
		t.Error("an instruction is not shadowed by itself")
	}
	if !tr.Speculative(11) || !tr.Speculative(31) {
		t.Error("younger instructions must be speculative")
	}
	if f, ok := tr.Frontier(); !ok || f != 10 {
		t.Errorf("frontier = %d/%v, want 10", f, ok)
	}
	// Out-of-order resolution from the middle.
	if !tr.Resolve(20) {
		t.Error("resolve of present shadow should succeed")
	}
	if tr.Resolve(20) {
		t.Error("double resolve should report false")
	}
	if !tr.Speculative(15) {
		t.Error("seq 15 still shadowed by 10")
	}
	tr.Resolve(10)
	if tr.Speculative(25) {
		t.Error("seq 25 no longer shadowed (only 30 outstanding)")
	}
	if !tr.Speculative(31) {
		t.Error("seq 31 still shadowed by 30")
	}
}

func TestShadowTrackerSquash(t *testing.T) {
	var tr ShadowTracker
	for _, s := range []uint64{5, 10, 15, 20} {
		tr.Add(s)
	}
	tr.SquashAfter(12)
	if tr.Outstanding() != 2 {
		t.Errorf("outstanding = %d, want 2", tr.Outstanding())
	}
	if tr.Speculative(13) != true {
		t.Error("seq 13 still shadowed by 5 and 10")
	}
	tr.SquashAfter(0)
	if tr.Outstanding() != 0 {
		t.Error("SquashAfter(0) should clear everything")
	}
}

func TestShadowTrackerOutOfOrderAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add should panic")
		}
	}()
	var tr ShadowTracker
	tr.Add(10)
	tr.Add(5)
}

// Property: the tracker agrees with a naive map-based oracle under random
// operation sequences.
func TestShadowTrackerAgainstOracle(t *testing.T) {
	type op struct {
		Kind    uint8
		Operand uint16
	}
	f := func(ops []op) bool {
		var tr ShadowTracker
		oracle := map[uint64]bool{}
		next := uint64(1)
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // add a new youngest shadow
				tr.Add(next)
				oracle[next] = true
				next += uint64(o.Operand%7) + 1
			case 1: // resolve a random existing shadow
				keys := make([]uint64, 0, len(oracle))
				for k := range oracle {
					keys = append(keys, k)
				}
				if len(keys) == 0 {
					continue
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				k := keys[int(o.Operand)%len(keys)]
				tr.Resolve(k)
				delete(oracle, k)
			case 2: // squash after some sequence
				cut := uint64(o.Operand)
				tr.SquashAfter(cut)
				for k := range oracle {
					if k > cut {
						delete(oracle, k)
					}
				}
			}
			// Compare speculative-ness for a few probes.
			for _, probe := range []uint64{1, next / 2, next} {
				want := false
				for k := range oracle {
					if k < probe {
						want = true
						break
					}
				}
				if tr.Speculative(probe) != want {
					return false
				}
			}
			if tr.Outstanding() != len(oracle) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaintTrackerBasics(t *testing.T) {
	var sh ShadowTracker
	tt := NewTaintTracker(8, &sh)
	sh.Add(5) // unresolved branch at seq 5

	tt.SetRoot(1, 10) // register 1 written by speculative load 10
	if !tt.Tainted(1) {
		t.Error("register with speculative root must be tainted")
	}
	// Propagation through an ALU op.
	tt.SetCombined(2, 1)
	if !tt.Tainted(2) {
		t.Error("taint must propagate through Combine")
	}
	if tt.Root(2) != 10 {
		t.Errorf("combined root = %d, want 10", tt.Root(2))
	}
	// Untainting is implicit: resolve the shadow and taint disappears.
	sh.Resolve(5)
	if tt.Tainted(1) || tt.Tainted(2) {
		t.Error("registers must untaint when the root load becomes non-speculative")
	}
}

func TestTaintCombineTakesYoungest(t *testing.T) {
	var sh ShadowTracker
	tt := NewTaintTracker(8, &sh)
	sh.Add(1)
	tt.SetRoot(1, 10)
	tt.SetRoot(2, 20)
	if got := tt.Combine(1, 2); got != 20 {
		t.Errorf("Combine = %d, want youngest root 20", got)
	}
	if !tt.TaintedAny(1, 3) {
		t.Error("TaintedAny should see register 1")
	}
	tt.Clear(1)
	tt.Clear(2)
	if tt.TaintedAny(1, 2) {
		t.Error("cleared registers must be untainted")
	}
}

// Property: speculative-ness is monotonic in sequence number — if a younger
// root is non-speculative, every older root is too. This is what makes
// max-combining taint roots sound.
func TestSpeculativeMonotonicity(t *testing.T) {
	f := func(shadows []uint16, a, b uint16) bool {
		var tr ShadowTracker
		last := uint64(0)
		for _, s := range shadows {
			last += uint64(s%100) + 1
			tr.Add(last)
		}
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		// If the older is speculative, the younger must be as well.
		return !tr.Speculative(lo) || tr.Speculative(hi) || lo == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaintTrackerReset(t *testing.T) {
	var sh ShadowTracker
	tt := NewTaintTracker(4, &sh)
	sh.Add(1)
	tt.SetRoot(0, 5)
	tt.SetRoot(3, 9)
	tt.Reset()
	for r := 0; r < 4; r++ {
		if tt.Root(r) != 0 {
			t.Errorf("register %d still rooted after Reset", r)
		}
	}
}
