// Package obs is the simulator's observability layer: typed trace events
// emitted through pluggable sinks, and a metrics registry (counters, gauges,
// fixed-bucket histograms) with Prometheus text exposition. The pipeline,
// memory hierarchy and execution engine all report through this package;
// the public surface is re-exported by package sim.
//
// The layer is designed around a zero-overhead disabled path: a core with no
// sink attached pays a single predictable branch per potential event, and a
// nil metrics registry costs one pointer comparison per site.
package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Kind identifies the type of a trace event.
type Kind uint8

// The trace event kinds. One event is emitted per microarchitectural
// occurrence; see each constant's comment for the populated Event fields
// beyond Cycle/Kind.
const (
	// KindLoadIssue: a real (resolved-address) load accessed memory.
	// Seq, PC, Addr, Level, Lat; FlagMerged if it joined an in-flight fill.
	KindLoadIssue Kind = iota
	// KindLoadPropagate: a load's value became visible to dependents.
	// Seq, PC, Addr, Value.
	KindLoadPropagate
	// KindDoppIssue: a doppelganger (address-predicted) access was sent.
	// Seq, PC, Addr (predicted), Level, Lat.
	KindDoppIssue
	// KindDoppVerify: a prediction matched the resolved address. Seq, PC,
	// Addr.
	KindDoppVerify
	// KindDoppMispredict: a prediction was refuted by the resolved address.
	// Seq, PC, Addr (real), Aux (predicted address).
	KindDoppMispredict
	// KindTaintSet: STT taint propagated into a destination register.
	// Seq, PC, Aux (youngest-root-of-taint sequence).
	KindTaintSet
	// KindShadowOpen: an instruction began casting a speculation shadow.
	// Seq, PC.
	KindShadowOpen
	// KindShadowClose: a shadow resolved. Seq, PC, Lat (lifetime in
	// cycles). Shadows removed by a squash close silently.
	KindShadowClose
	// KindCacheAccess: the hierarchy performed an access. Addr, Level
	// (where satisfied), Class, Lat; FlagMerged for MSHR merges.
	KindCacheAccess
	// KindBranchSquash: a mispredicted branch squashed younger work.
	// Seq, PC, Addr (redirect target), Aux (uops squashed).
	KindBranchSquash

	numKinds
)

// NumKinds is the number of defined event kinds (for per-kind tables).
const NumKinds = int(numKinds)

var kindNames = [...]string{
	KindLoadIssue:      "load_issue",
	KindLoadPropagate:  "load_propagate",
	KindDoppIssue:      "dopp_issue",
	KindDoppVerify:     "dopp_verify",
	KindDoppMispredict: "dopp_mispredict",
	KindTaintSet:       "taint_set",
	KindShadowOpen:     "shadow_open",
	KindShadowClose:    "shadow_close",
	KindCacheAccess:    "cache_access",
	KindBranchSquash:   "branch_squash",
}

// String names the kind as it appears in JSONL output.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Event flags.
const (
	// FlagMerged marks a memory access that merged with an in-flight MSHR.
	FlagMerged uint8 = 1 << iota
)

// levelNames mirror mem.Level values without importing package mem (mem
// depends on obs, not the other way around).
var levelNames = [...]string{"L1", "L2", "L3", "mem"}

// classNames mirror mem.Class values.
var classNames = [...]string{"demand", "doppelganger", "prefetch", "writeback"}

// Event is one structured trace record. Cycle and Kind are always set; the
// remaining fields are populated per kind (see the Kind constants). The
// struct is plain data, safe to copy and retain.
type Event struct {
	// Cycle is the simulation cycle the event occurred in.
	Cycle uint64
	// Kind is the event type.
	Kind Kind
	// Seq is the dynamic instruction sequence number (0 when not tied to
	// an instruction, e.g. prefetch cache accesses).
	Seq uint64
	// PC is the instruction's program counter.
	PC uint64
	// Addr is the memory address involved.
	Addr uint64
	// Value is the data value involved (load propagation).
	Value int64
	// Lat is a duration in cycles: access latency or shadow lifetime.
	Lat uint64
	// Aux is kind-specific extra data (predicted address, taint root,
	// squashed-uop count).
	Aux uint64
	// Level is the cache level (mem.Level numeric value) for memory events.
	Level uint8
	// Class is the access class (mem.Class numeric value) for cache events.
	Class uint8
	// Flags holds boolean event properties (FlagMerged).
	Flags uint8
}

// AppendJSON appends the event as a single-line JSON object (no trailing
// newline). Zero-valued optional fields are omitted; Cycle and Kind always
// appear. The encoding is hand-rolled so tracing does not allocate per
// event.
func (e Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"cycle":`...)
	b = strconv.AppendUint(b, e.Cycle, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, e.Seq, 10)
	}
	if e.PC != 0 || e.Seq != 0 {
		b = append(b, `,"pc":`...)
		b = strconv.AppendUint(b, e.PC, 10)
	}
	if e.Addr != 0 {
		b = append(b, `,"addr":`...)
		b = strconv.AppendUint(b, e.Addr, 10)
	}
	if e.Value != 0 {
		b = append(b, `,"value":`...)
		b = strconv.AppendInt(b, e.Value, 10)
	}
	if e.Lat != 0 {
		b = append(b, `,"lat":`...)
		b = strconv.AppendUint(b, e.Lat, 10)
	}
	if e.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendUint(b, e.Aux, 10)
	}
	if e.Kind == KindLoadIssue || e.Kind == KindDoppIssue || e.Kind == KindCacheAccess {
		b = append(b, `,"level":"`...)
		if int(e.Level) < len(levelNames) {
			b = append(b, levelNames[e.Level]...)
		} else {
			b = strconv.AppendUint(b, uint64(e.Level), 10)
		}
		b = append(b, '"')
	}
	if e.Kind == KindCacheAccess {
		b = append(b, `,"class":"`...)
		if int(e.Class) < len(classNames) {
			b = append(b, classNames[e.Class]...)
		} else {
			b = strconv.AppendUint(b, uint64(e.Class), 10)
		}
		b = append(b, '"')
	}
	if e.Flags&FlagMerged != 0 {
		b = append(b, `,"merged":true`...)
	}
	return append(b, '}')
}

// MarshalJSON implements json.Marshaler with the same encoding as
// AppendJSON, so events embedded in API responses match JSONL trace lines.
func (e Event) MarshalJSON() ([]byte, error) {
	return e.AppendJSON(make([]byte, 0, 96)), nil
}

// KindByName resolves a kind from its JSONL name.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

func indexOf(names []string, s string) (uint8, bool) {
	for i, n := range names {
		if n == s {
			return uint8(i), true
		}
	}
	return 0, false
}

// UnmarshalJSON implements json.Unmarshaler, inverting MarshalJSON so
// clients of the doppeld API (and trace post-processors) can decode events
// back into the typed form.
func (e *Event) UnmarshalJSON(data []byte) error {
	var raw struct {
		Cycle  uint64 `json:"cycle"`
		Kind   string `json:"kind"`
		Seq    uint64 `json:"seq"`
		PC     uint64 `json:"pc"`
		Addr   uint64 `json:"addr"`
		Value  int64  `json:"value"`
		Lat    uint64 `json:"lat"`
		Aux    uint64 `json:"aux"`
		Level  string `json:"level"`
		Class  string `json:"class"`
		Merged bool   `json:"merged"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	k, ok := KindByName(raw.Kind)
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", raw.Kind)
	}
	*e = Event{Cycle: raw.Cycle, Kind: k, Seq: raw.Seq, PC: raw.PC,
		Addr: raw.Addr, Value: raw.Value, Lat: raw.Lat, Aux: raw.Aux}
	if raw.Level != "" {
		lv, ok := indexOf(levelNames[:], raw.Level)
		if !ok {
			return fmt.Errorf("obs: unknown level %q", raw.Level)
		}
		e.Level = lv
	}
	if raw.Class != "" {
		cl, ok := indexOf(classNames[:], raw.Class)
		if !ok {
			return fmt.Errorf("obs: unknown class %q", raw.Class)
		}
		e.Class = cl
	}
	if raw.Merged {
		e.Flags |= FlagMerged
	}
	return nil
}
