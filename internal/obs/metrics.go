package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named instruments: monotonic counters, gauges,
// and fixed-bucket histograms, each optionally labeled. Registration is
// idempotent — asking for an existing (name, labels) series returns the
// same instrument — so independent components can share one registry
// without coordination. Registration takes a lock; the instruments
// themselves are lock-free atomics, safe for concurrent use on hot paths.
type Metrics struct {
	mu       sync.Mutex
	families map[string]*family
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{name, value} }

// family groups all series sharing a metric name.
type family struct {
	name, help, typ string
	buckets         []uint64 // histograms only; shared by all series
	series          map[string]any
	order           []string
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{families: make(map[string]*family)}
}

// labelString renders labels canonically ({a="x",b="y"}, sorted by name),
// or "" when unlabeled.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the (family, series) slot, enforcing type
// consistency. make builds a new instrument.
func (m *Metrics) lookup(name, help, typ string, buckets []uint64, labels []Label, make func() any) any {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]any{}}
		m.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	ls := labelString(labels)
	if s, ok := f.series[ls]; ok {
		return s
	}
	s := make()
	f.series[ls] = s
	f.order = append(f.order, ls)
	sort.Strings(f.order)
	return s
}

// Counter registers (or finds) a monotonic counter.
func (m *Metrics) Counter(name, help string, labels ...Label) *Counter {
	return m.lookup(name, help, "counter", nil, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) a gauge.
func (m *Metrics) Gauge(name, help string, labels ...Label) *Gauge {
	return m.lookup(name, help, "gauge", nil, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or finds) a fixed-bucket histogram. Bucket edges are
// inclusive upper bounds in ascending order; an implicit +Inf bucket is
// added. The first registration of a name fixes the edges; later
// registrations reuse them (differing edges panic — edges are part of the
// metric's identity).
func (m *Metrics) Histogram(name, help string, buckets []uint64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bucket edges not ascending: %v", name, buckets))
		}
	}
	h := m.lookup(name, help, "histogram", buckets, labels, func() any {
		return newHistogram(buckets)
	}).(*Histogram)
	if len(h.edges) != len(buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	for i := range buckets {
		if h.edges[i] != buckets[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
		}
	}
	return h
}

// Counter is a lock-free monotonic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v is greater (monotonic high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of uint64 observations (cycle
// counts, latencies, occupancies). Buckets are inclusive upper bounds plus
// an implicit +Inf; observation is lock-free.
type Histogram struct {
	edges  []uint64
	counts []atomic.Uint64 // len(edges)+1; last is +Inf
	sum    atomic.Uint64
	count  atomic.Uint64
}

func newHistogram(edges []uint64) *Histogram {
	return &Histogram{
		edges:  append([]uint64(nil), edges...),
		counts: make([]atomic.Uint64, len(edges)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Edges returns the configured bucket upper bounds (without +Inf).
func (h *Histogram) Edges() []uint64 { return append([]uint64(nil), h.edges...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the final
// element is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Standard bucket edge sets, in cycles, shared so dashboards can compare
// runs. Edges are powers of two spanning an L1 hit to a DRAM round trip
// (latency), a branch-resolution to a long-stall shadow (lifetime), and the
// paper's Table 1 structure sizes (occupancy).
var (
	// LatencyBuckets grade memory access latencies.
	LatencyBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	// LifetimeBuckets grade speculation shadow lifetimes.
	LifetimeBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// OccupancyBuckets grade ROB/IQ/queue occupancies.
	OccupancyBuckets = []uint64{0, 4, 8, 16, 32, 64, 96, 128, 192, 256, 384}
)
