package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotent(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("x_total", "help")
	b := m.Counter("x_total", "other help ignored")
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	l1 := m.Counter("y_total", "h", L("level", "L1"))
	l2 := m.Counter("y_total", "h", L("level", "L2"))
	if l1 == l2 {
		t.Error("different labels must return different series")
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch on an existing name must panic")
		}
	}()
	m.Gauge("x_total", "now a gauge")
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat", "h", LatencyBuckets)

	// Golden bucket edges: these are the published schema of the latency,
	// lifetime and occupancy histograms; changing them breaks dashboards.
	if want := []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}; !reflect.DeepEqual(LatencyBuckets, want) {
		t.Errorf("LatencyBuckets = %v, want %v", LatencyBuckets, want)
	}
	if want := []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}; !reflect.DeepEqual(LifetimeBuckets, want) {
		t.Errorf("LifetimeBuckets = %v, want %v", LifetimeBuckets, want)
	}
	if want := []uint64{0, 4, 8, 16, 32, 64, 96, 128, 192, 256, 384}; !reflect.DeepEqual(OccupancyBuckets, want) {
		t.Errorf("OccupancyBuckets = %v, want %v", OccupancyBuckets, want)
	}

	for _, v := range []uint64{0, 1, 2, 3, 600} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	// 0 and 1 land in le=1; 2 in le=2; 3 in le=4; 600 in +Inf.
	want := []uint64{2, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("bucket counts = %v, want %v", counts, want)
	}
	if h.Count() != 5 || h.Sum() != 606 {
		t.Errorf("count=%d sum=%d, want 5, 606", h.Count(), h.Sum())
	}
	if !reflect.DeepEqual(h.Edges(), LatencyBuckets) {
		t.Errorf("Edges = %v", h.Edges())
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering with different buckets must panic")
		}
	}()
	m.Histogram("lat", "h", []uint64{5, 10})
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Errorf("SetMax lowered the gauge: %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("SetMax did not raise the gauge: %d", g.Value())
	}
}

// TestPrometheusGolden pins the exact exposition text for a small registry:
// family ordering (sorted by name), label rendering, histogram cumulative
// buckets with +Inf, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("sim_cycles_total", "Total simulated cycles.")
	c.Add(123)
	m.Counter("sim_cache_accesses_total", "Cache accesses by level.", L("level", "L1")).Add(10)
	m.Counter("sim_cache_accesses_total", "Cache accesses by level.", L("level", "L2")).Add(4)
	g := m.Gauge("engine_queue_depth", "Jobs waiting for a worker.")
	g.Set(2)
	h := m.Histogram("sim_shadow_lifetime_cycles", "Shadow lifetimes.", []uint64{1, 4, 16})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP engine_queue_depth Jobs waiting for a worker.
# TYPE engine_queue_depth gauge
engine_queue_depth 2
# HELP sim_cache_accesses_total Cache accesses by level.
# TYPE sim_cache_accesses_total counter
sim_cache_accesses_total{level="L1"} 10
sim_cache_accesses_total{level="L2"} 4
# HELP sim_cycles_total Total simulated cycles.
# TYPE sim_cycles_total counter
sim_cycles_total 123
# HELP sim_shadow_lifetime_cycles Shadow lifetimes.
# TYPE sim_shadow_lifetime_cycles histogram
sim_shadow_lifetime_cycles_bucket{le="1"} 1
sim_shadow_lifetime_cycles_bucket{le="4"} 2
sim_shadow_lifetime_cycles_bucket{le="16"} 2
sim_shadow_lifetime_cycles_bucket{le="+Inf"} 3
sim_shadow_lifetime_cycles_sum 104
sim_shadow_lifetime_cycles_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("Prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusLabeledHistogram checks le splices into an existing label
// set.
func TestPrometheusLabeledHistogram(t *testing.T) {
	m := NewMetrics()
	m.Histogram("h", "", []uint64{10}, L("kind", "dopp")).Observe(5)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`h_bucket{kind="dopp",le="10"} 1`,
		`h_bucket{kind="dopp",le="+Inf"} 1`,
		`h_sum{kind="dopp"} 5`,
		`h_count{kind="dopp"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestMetricsConcurrency(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Counter("c_total", "").Inc()
				m.Histogram("h", "", LatencyBuckets).Observe(uint64(j % 700))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c_total", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := m.Histogram("h", "", LatencyBuckets).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
