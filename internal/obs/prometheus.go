package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families are sorted by name and series by label
// string, so output is deterministic — golden tests and diff-based
// monitoring both rely on that.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.families))
	for name := range m.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = m.families[n]
	}
	m.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, ls := range f.order {
			switch s := f.series[ls].(type) {
			case *Counter:
				b.WriteString(f.name)
				b.WriteString(ls)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(s.Value(), 10))
				b.WriteByte('\n')
			case *Gauge:
				b.WriteString(f.name)
				b.WriteString(ls)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.Value(), 10))
				b.WriteByte('\n')
			case *Histogram:
				writeHistogram(&b, f.name, ls, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with an
// le label, then _sum and _count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	counts := h.BucketCounts()
	var cum uint64
	for i, edge := range h.edges {
		cum += counts[i]
		writeBucket(b, name, labels, strconv.FormatUint(edge, 10), cum)
	}
	cum += counts[len(counts)-1]
	writeBucket(b, name, labels, "+Inf", cum)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, labels, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

// writeBucket renders one cumulative bucket line, merging the le label into
// any existing label set.
func writeBucket(b *strings.Builder, name, labels, le string, cum uint64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if labels == "" {
		b.WriteString(`{le="`)
		b.WriteString(le)
		b.WriteString(`"}`)
	} else {
		// labels is "{...}": splice le before the closing brace.
		b.WriteString(labels[:len(labels)-1])
		b.WriteString(`,le="`)
		b.WriteString(le)
		b.WriteString(`"}`)
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}
