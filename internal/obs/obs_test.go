package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEventJSON(t *testing.T) {
	e := Event{Cycle: 42, Kind: KindLoadIssue, Seq: 7, PC: 3, Addr: 0x100, Lat: 12, Level: 1, Flags: FlagMerged}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("event JSON does not parse: %v\n%s", err, raw)
	}
	for k, want := range map[string]any{
		"cycle": 42.0, "kind": "load_issue", "seq": 7.0, "pc": 3.0,
		"addr": 256.0, "lat": 12.0, "level": "L2", "merged": true,
	} {
		if got := m[k]; got != want {
			t.Errorf("field %q = %v, want %v", k, got, want)
		}
	}
	// Optional zero fields are omitted.
	if _, ok := m["value"]; ok {
		t.Errorf("zero value field not omitted: %s", raw)
	}
	// A minimal event still carries cycle and kind.
	raw2, _ := json.Marshal(Event{Kind: KindShadowOpen})
	if want := `{"cycle":0,"kind":"shadow_open"}`; string(raw2) != want {
		t.Errorf("minimal event = %s, want %s", raw2, want)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 42, Kind: KindLoadIssue, Seq: 7, PC: 3, Addr: 0x100, Lat: 12, Level: 1, Flags: FlagMerged},
		{Cycle: 1, Kind: KindCacheAccess, Addr: 64, Level: 3, Class: 2, Lat: 200},
		{Cycle: 9, Kind: KindLoadPropagate, Seq: 2, PC: 5, Addr: 8, Value: -17},
		{Kind: KindShadowOpen},
		{Cycle: 100, Kind: KindBranchSquash, Seq: 50, PC: 12, Addr: 16, Aux: 30},
	}
	for _, e := range events {
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		var got Event
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if got != e {
			t.Errorf("round trip of %s:\n got %+v\nwant %+v", raw, got, e)
		}
	}
	var e Event
	if err := json.Unmarshal([]byte(`{"cycle":1,"kind":"nope"}`), &e); err == nil {
		t.Error("unknown kind unmarshalled without error")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); int(k) < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for i := 0; i < 10; i++ {
		s.Emit(Event{Cycle: uint64(i), Kind: KindCacheAccess, Addr: 64 * uint64(i), Class: 1})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q does not parse: %v", ln, err)
		}
		if m["kind"] != "cache_access" {
			t.Fatalf("line %q has kind %v", ln, m["kind"])
		}
	}
}

func TestRingSink(t *testing.T) {
	s := NewRingSink(4)
	for i := 1; i <= 10; i++ {
		s.Emit(Event{Cycle: uint64(i)})
	}
	ev := s.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(7 + i); e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest-first order)", i, e.Cycle, want)
		}
	}
	if s.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped())
	}
	// Under capacity: no wrap, no drops.
	s2 := NewRingSink(8)
	s2.Emit(Event{Cycle: 1})
	if got := s2.Events(); len(got) != 1 || got[0].Cycle != 1 || s2.Dropped() != 0 {
		t.Errorf("unwrapped ring wrong: %v dropped=%d", got, s2.Dropped())
	}
}

func TestCountingSink(t *testing.T) {
	ring := NewRingSink(16)
	s := NewCountingSink(ring)
	s.Emit(Event{Kind: KindDoppIssue})
	s.Emit(Event{Kind: KindDoppIssue})
	s.Emit(Event{Kind: KindDoppVerify})
	if s.Count(KindDoppIssue) != 2 || s.Count(KindDoppVerify) != 1 || s.Total() != 3 {
		t.Errorf("counts wrong: issue=%d verify=%d total=%d",
			s.Count(KindDoppIssue), s.Count(KindDoppVerify), s.Total())
	}
	if ring.Len() != 3 {
		t.Errorf("events not forwarded: %d", ring.Len())
	}
	// Pure counter (nil next) must not panic.
	NewCountingSink(nil).Emit(Event{Kind: KindTaintSet})
}

func TestFilterSink(t *testing.T) {
	ring := NewRingSink(16)
	f := NewFilterSink(ring, Kinds(KindLoadIssue)).SetWindow(0, 10)
	f.Emit(Event{Cycle: 0, Kind: KindLoadIssue})  // in window: cycle 0 must work
	f.Emit(Event{Cycle: 5, Kind: KindDoppIssue})  // wrong kind
	f.Emit(Event{Cycle: 11, Kind: KindLoadIssue}) // past window
	f.Emit(Event{Cycle: 10, Kind: KindLoadIssue}) // inclusive upper edge
	if ring.Len() != 2 {
		t.Fatalf("filtered to %d events, want 2", ring.Len())
	}
	for _, e := range ring.Events() {
		if e.Kind != KindLoadIssue || e.Cycle > 10 {
			t.Errorf("event escaped filter: %+v", e)
		}
	}
	// Zero kind set passes all kinds.
	ring2 := NewRingSink(4)
	NewFilterSink(ring2, 0).Emit(Event{Kind: KindBranchSquash})
	if ring2.Len() != 1 {
		t.Error("zero kind set should pass all kinds")
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	m := Multi(a, nil, b)
	m.Emit(Event{Cycle: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("multi did not fan out: a=%d b=%d", a.Len(), b.Len())
	}
	if Multi() != nil {
		t.Error("empty Multi should be nil")
	}
	if Multi(a) != TraceSink(a) {
		t.Error("single Multi should unwrap")
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	s.Emit(Event{Cycle: 1234, Kind: KindLoadIssue, Seq: 9, PC: 4, Addr: 0x40, Lat: 3, Level: 0})
	got := buf.String()
	for _, want := range []string{"[  1234]", "load_issue", "seq=9", "pc=4", "addr=0x40", "level=L1", "lat=3"} {
		if !strings.Contains(got, want) {
			t.Errorf("text line %q missing %q", got, want)
		}
	}
}
