package obs

import (
	"sync"
	"testing"
)

// TestCountingSinkConcurrentEmit hammers one shared CountingSink from many
// goroutines: the per-kind and total counters must account for every event
// exactly once (and the race detector must stay quiet).
func TestCountingSinkConcurrentEmit(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10_000
	)
	cs := NewCountingSink(nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				cs.Emit(Event{Kind: Kind((g + i) % NumKinds), Cycle: uint64(i)})
			}
		}(g)
	}
	wg.Wait()

	if got, want := cs.Total(), uint64(goroutines*perG); got != want {
		t.Fatalf("Total() = %d, want %d", got, want)
	}
	var sum uint64
	for k := 0; k < NumKinds; k++ {
		sum += cs.Count(Kind(k))
	}
	if sum != cs.Total() {
		t.Fatalf("per-kind sum %d != total %d", sum, cs.Total())
	}
}

// TestFilterMultiCompositionConcurrent drives a realistic composed pipeline
// — Filter(kinds+window) fanning out via Multi to two counting sinks —
// from concurrent emitters, checking both the filtering arithmetic and
// that the stateless stages are safe to share.
func TestFilterMultiCompositionConcurrent(t *testing.T) {
	// perG is a multiple of the 400-cycle sweep so the expected filtered
	// count below needs no partial-sweep correction.
	const (
		goroutines = 8
		perG       = 4_800
		from, to   = 100, 199
	)
	all := NewCountingSink(nil)
	filtered := NewCountingSink(nil)
	pipeline := Multi(
		all,
		NewFilterSink(filtered, Kinds(KindLoadIssue, KindDoppIssue)).SetWindow(from, to),
	)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Alternate between a kind the filter passes and one it
				// drops; cycle sweeps across the window boundary.
				k := KindLoadIssue
				if i%2 == 1 {
					k = KindCacheAccess
				}
				pipeline.Emit(Event{Kind: k, Cycle: uint64(i % 400)})
			}
		}(g)
	}
	wg.Wait()

	if got, want := all.Total(), uint64(goroutines*perG); got != want {
		t.Fatalf("unfiltered sink total = %d, want %d", got, want)
	}
	// KindLoadIssue events have cycles 0,2,...,398; those in [100,199] are
	// 100,102,...,198 = 50 per 400-cycle sweep. Each goroutine runs
	// perG/400 full sweeps of 200 KindLoadIssue events each.
	want := uint64(goroutines * (perG / 400) * 50)
	if got := filtered.Total(); got != want {
		t.Fatalf("filtered sink total = %d, want %d", got, want)
	}
	if filtered.Count(KindCacheAccess) != 0 {
		t.Fatal("filter passed an excluded kind")
	}
	if filtered.Count(KindDoppIssue) != 0 {
		t.Fatal("filtered sink counted events never emitted")
	}
	if filtered.Count(KindLoadIssue) != filtered.Total() {
		t.Fatal("filtered counts inconsistent")
	}
}
