package obs

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"sync/atomic"
)

// TraceSink receives trace events. Implementations need not be safe for
// concurrent use unless documented otherwise: a Core emits from a single
// goroutine, and each run should be given its own sink (or a sink that
// documents concurrency, like CountingSink).
type TraceSink interface {
	Emit(e Event)
}

// BatchSink is an optional TraceSink extension for sinks that can absorb a
// slice of events in one call. Emitters that buffer events internally (the
// pipeline core) detect it and deliver batches, amortising the per-event
// interface dispatch; the events slice is only valid for the duration of
// the call.
type BatchSink interface {
	TraceSink
	EmitBatch(events []Event)
}

// KindSet is a bit set of event kinds for filtering.
type KindSet uint32

// Kinds builds a set from the given kinds.
func Kinds(ks ...Kind) KindSet {
	var s KindSet
	for _, k := range ks {
		s |= 1 << k
	}
	return s
}

// Has reports whether the set contains k. The zero set is treated as
// "all kinds" by FilterSink.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// JSONLSink writes one JSON object per event to a buffered writer. Call
// Close (or Flush) when done; events buffered but not flushed are lost
// otherwise. Not safe for concurrent use.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	n   uint64
}

// NewJSONLSink wraps w in a buffered JSONL event writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 128)}
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(e Event) {
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
	s.n++
}

// Count returns the number of events written.
func (s *JSONLSink) Count() uint64 { return s.n }

// Flush forces buffered lines to the underlying writer.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// Close flushes the sink. It implements io.Closer so callers can defer a
// generic cleanup.
func (s *JSONLSink) Close() error { return s.Flush() }

// RingSink retains the most recent events in a bounded ring buffer, so a
// long run can be traced with bounded memory and the tail inspected
// afterwards. Not safe for concurrent use.
type RingSink struct {
	events  []Event
	next    int
	wrapped bool
	dropped uint64
	// droppedC mirrors dropped into a registry counter when attached via
	// AttachMetrics, so silent eviction becomes observable on dashboards.
	droppedC *Counter
}

// NewRingSink builds a ring retaining up to capacity events; capacity must
// be positive.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		panic("obs: RingSink capacity must be positive")
	}
	return &RingSink{events: make([]Event, 0, capacity)}
}

// Emit records the event, evicting the oldest once the ring is full.
func (s *RingSink) Emit(e Event) {
	if len(s.events) < cap(s.events) {
		s.events = append(s.events, e)
		return
	}
	s.events[s.next] = e
	s.next = (s.next + 1) % cap(s.events)
	s.wrapped = true
	s.dropped++
	if s.droppedC != nil {
		s.droppedC.Inc()
	}
}

// EmitBatch records a batch of events in order (implementing BatchSink).
func (s *RingSink) EmitBatch(events []Event) {
	for _, e := range events {
		s.Emit(e)
	}
}

// AttachMetrics registers the ring's eviction count with the registry as
// obs_trace_ring_dropped_events_total: every event silently dropped to make
// room after the attachment increments the counter. Drops that happened
// before attachment are folded in immediately, so the counter always equals
// Dropped() for a single attached ring.
func (s *RingSink) AttachMetrics(m *Metrics, labels ...Label) {
	s.droppedC = m.Counter("obs_trace_ring_dropped_events_total",
		"Trace events evicted from a bounded ring sink to make room for newer ones.",
		labels...)
	if s.dropped > 0 {
		s.droppedC.Add(s.dropped)
	}
}

// Events returns the retained events in emission order (oldest first).
func (s *RingSink) Events() []Event {
	if !s.wrapped {
		out := make([]Event, len(s.events))
		copy(out, s.events)
		return out
	}
	out := make([]Event, 0, len(s.events))
	out = append(out, s.events[s.next:]...)
	out = append(out, s.events[:s.next]...)
	return out
}

// Dropped returns how many events were evicted to make room.
func (s *RingSink) Dropped() uint64 { return s.dropped }

// Len returns the number of retained events.
func (s *RingSink) Len() int { return len(s.events) }

// CountingSink counts events per kind, optionally forwarding to a next
// sink. A nil next makes it a pure counter. The counters are atomic, so a
// CountingSink may be shared across concurrently emitting runs (the
// forwarding target must then be concurrency-safe too); counts may also be
// read while runs are still emitting.
type CountingSink struct {
	next   TraceSink
	counts [NumKinds]atomic.Uint64
	total  atomic.Uint64
}

// NewCountingSink builds a counting sink forwarding to next (nil = none).
func NewCountingSink(next TraceSink) *CountingSink {
	return &CountingSink{next: next}
}

// Emit counts the event and forwards it.
func (s *CountingSink) Emit(e Event) {
	if int(e.Kind) < NumKinds {
		s.counts[e.Kind].Add(1)
	}
	s.total.Add(1)
	if s.next != nil {
		s.next.Emit(e)
	}
}

// EmitBatch counts a batch with one atomic add per kind present instead of
// two per event, then forwards it (as a batch, when the next sink supports
// that).
func (s *CountingSink) EmitBatch(events []Event) {
	var perKind [NumKinds]uint64
	for i := range events {
		if int(events[i].Kind) < NumKinds {
			perKind[events[i].Kind]++
		}
	}
	for k := range perKind {
		if perKind[k] != 0 {
			s.counts[k].Add(perKind[k])
		}
	}
	s.total.Add(uint64(len(events)))
	switch next := s.next.(type) {
	case nil:
	case BatchSink:
		next.EmitBatch(events)
	default:
		for _, e := range events {
			next.Emit(e)
		}
	}
}

// Count returns the number of events seen of the given kind.
func (s *CountingSink) Count(k Kind) uint64 {
	if int(k) >= NumKinds {
		return 0
	}
	return s.counts[k].Load()
}

// Total returns the number of events seen across all kinds.
func (s *CountingSink) Total() uint64 { return s.total.Load() }

// FilterSink forwards only events matching a kind set and an optional cycle
// window. The zero Kinds set passes every kind; the window is inclusive and
// only applied when enabled via SetWindow (so a window may legitimately
// start at cycle 0).
type FilterSink struct {
	next     TraceSink
	kinds    KindSet
	windowed bool
	from, to uint64
}

// NewFilterSink builds a filter forwarding to next. A zero kinds set
// passes all kinds.
func NewFilterSink(next TraceSink, kinds KindSet) *FilterSink {
	if next == nil {
		panic("obs: FilterSink requires a next sink")
	}
	return &FilterSink{next: next, kinds: kinds}
}

// SetWindow restricts forwarding to events with from <= Cycle <= to.
func (s *FilterSink) SetWindow(from, to uint64) *FilterSink {
	s.windowed, s.from, s.to = true, from, to
	return s
}

// Emit forwards the event if it passes the filters.
func (s *FilterSink) Emit(e Event) {
	if s.kinds != 0 && !s.kinds.Has(e.Kind) {
		return
	}
	if s.windowed && (e.Cycle < s.from || e.Cycle > s.to) {
		return
	}
	s.next.Emit(e)
}

// multiSink fans out to several sinks.
type multiSink []TraceSink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi fans events out to every sink in order. Nil sinks are skipped; a
// single non-nil sink is returned unwrapped.
func Multi(sinks ...TraceSink) TraceSink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

// TextSink writes human-readable one-line summaries, the successor of the
// old printf tracing. Intended for interactive debugging only; machine
// consumers should use JSONLSink.
type TextSink struct {
	w   io.Writer
	buf []byte
}

// NewTextSink builds a text sink on w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w, buf: make([]byte, 0, 128)} }

// Stdout is a shared text sink on standard output, used by the deprecated
// Core.SetTraceWindow stdout behaviour.
var Stdout TraceSink = NewTextSink(os.Stdout)

// Emit writes "[cycle] kind seq=… pc=… …".
func (s *TextSink) Emit(e Event) {
	b := s.buf[:0]
	b = append(b, '[')
	b = pad6(b, e.Cycle)
	b = append(b, "] "...)
	b = append(b, e.Kind.String()...)
	if e.Seq != 0 {
		b = append(b, " seq="...)
		b = strconv.AppendUint(b, e.Seq, 10)
	}
	if e.Seq != 0 || e.PC != 0 {
		b = append(b, " pc="...)
		b = strconv.AppendUint(b, e.PC, 10)
	}
	if e.Addr != 0 {
		b = append(b, " addr=0x"...)
		b = strconv.AppendUint(b, e.Addr, 16)
	}
	if e.Value != 0 {
		b = append(b, " val="...)
		b = strconv.AppendInt(b, e.Value, 10)
	}
	if e.Kind == KindLoadIssue || e.Kind == KindDoppIssue || e.Kind == KindCacheAccess {
		b = append(b, " level="...)
		if int(e.Level) < len(levelNames) {
			b = append(b, levelNames[e.Level]...)
		}
	}
	if e.Lat != 0 {
		b = append(b, " lat="...)
		b = strconv.AppendUint(b, e.Lat, 10)
	}
	if e.Aux != 0 {
		b = append(b, " aux="...)
		b = strconv.AppendUint(b, e.Aux, 10)
	}
	if e.Flags&FlagMerged != 0 {
		b = append(b, " merged"...)
	}
	b = append(b, '\n')
	s.buf = b
	s.w.Write(b)
}

// pad6 right-aligns v in a 6-character field (matching the old trace
// format's cycle column).
func pad6(b []byte, v uint64) []byte {
	n := 1
	for x := v; x >= 10; x /= 10 {
		n++
	}
	for ; n < 6; n++ {
		b = append(b, ' ')
	}
	return strconv.AppendUint(b, v, 10)
}
