package obs

import (
	"strings"
	"testing"
)

// A batched histogram must be observationally identical to direct atomic
// observation once flushed.
func TestHistogramBatchEquivalence(t *testing.T) {
	direct := NewMetrics()
	batched := NewMetrics()
	buckets := []uint64{1, 10, 100}
	hd := direct.Histogram("h", "help", buckets)
	hb := batched.Histogram("h", "help", buckets)
	b := hb.Batch()
	values := []uint64{0, 1, 2, 9, 10, 11, 100, 101, 1 << 40}
	for _, v := range values {
		hd.Observe(v)
		b.Observe(v)
	}

	var before strings.Builder
	batched.WritePrometheus(&before)
	if strings.Contains(before.String(), `le="1"} 2`) {
		t.Fatal("batched observations reached the histogram before Flush")
	}
	b.Flush()
	b.Flush() // idempotent: an empty batch folds nothing

	var want, got strings.Builder
	direct.WritePrometheus(&want)
	batched.WritePrometheus(&got)
	if want.String() != got.String() {
		t.Errorf("batched exposition differs from direct:\n--- direct\n%s--- batched\n%s",
			want.String(), got.String())
	}
}

// EmitBatch on a CountingSink must count exactly like per-event Emit and
// forward batches onward when the next sink supports them.
func TestCountingSinkEmitBatch(t *testing.T) {
	events := []Event{
		{Kind: KindLoadIssue}, {Kind: KindLoadIssue}, {Kind: KindShadowOpen},
		{Kind: KindCacheAccess}, {Kind: KindLoadIssue},
	}
	ring := NewRingSink(3)
	s := NewCountingSink(ring)
	s.EmitBatch(events)
	if got := s.Count(KindLoadIssue); got != 3 {
		t.Errorf("Count(LoadIssue) = %d, want 3", got)
	}
	if got := s.Total(); got != uint64(len(events)) {
		t.Errorf("Total() = %d, want %d", got, len(events))
	}
	if ring.Len() != 3 || ring.Dropped() != 2 {
		t.Errorf("forwarded ring: len=%d dropped=%d, want 3 retained 2 dropped",
			ring.Len(), ring.Dropped())
	}
}

// The ring's eviction count must surface through an attached metrics
// registry as obs_trace_ring_dropped_events_total.
func TestRingSinkDroppedCounterMetrics(t *testing.T) {
	m := NewMetrics()
	s := NewRingSink(2)
	s.Emit(Event{Seq: 1}) // pre-attachment: fills, no drop
	s.Emit(Event{Seq: 2})
	s.Emit(Event{Seq: 3}) // pre-attachment drop, folded in by AttachMetrics

	s.AttachMetrics(m)
	c := m.Counter("obs_trace_ring_dropped_events_total",
		"Trace events evicted from a bounded ring sink to make room for newer ones.")
	if got := c.Value(); got != 1 {
		t.Fatalf("counter after attach = %d, want the 1 pre-attachment drop folded in", got)
	}

	s.EmitBatch([]Event{{Seq: 4}, {Seq: 5}, {Seq: 6}})
	if got, want := c.Value(), s.Dropped(); got != want {
		t.Errorf("counter = %d, want %d (= Dropped())", got, want)
	}
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4 total evictions", got)
	}

	var out strings.Builder
	m.WritePrometheus(&out)
	if !strings.Contains(out.String(), "obs_trace_ring_dropped_events_total 4") {
		t.Errorf("exposition missing dropped-events counter:\n%s", out.String())
	}
}
