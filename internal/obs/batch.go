package obs

// HistogramBatch accumulates observations into plain (non-atomic) local
// state and folds them into the shared histogram on Flush. A simulator core
// observes from a single goroutine every cycle; batching turns the three
// atomic operations per observation into plain adds, leaving one atomic
// fold at the end of the run.
type HistogramBatch struct {
	h      *Histogram
	counts []uint64
	sum    uint64
	count  uint64
}

// Batch returns a local accumulator for the histogram. A batch must not be
// shared across goroutines; the histogram itself may keep serving other
// observers while batches are outstanding.
func (h *Histogram) Batch() *HistogramBatch {
	return &HistogramBatch{h: h, counts: make([]uint64, len(h.counts))}
}

// Observe records one value locally.
func (b *HistogramBatch) Observe(v uint64) {
	edges := b.h.edges
	i := 0
	for i < len(edges) && v > edges[i] {
		i++
	}
	b.counts[i]++
	b.sum += v
	b.count++
}

// Flush folds the accumulated observations into the underlying histogram
// and resets the batch. Flushing an empty batch is a no-op, so it is safe
// to flush at every run exit.
func (b *HistogramBatch) Flush() {
	if b.count == 0 {
		return
	}
	for i, n := range b.counts {
		if n != 0 {
			b.h.counts[i].Add(n)
			b.counts[i] = 0
		}
	}
	b.h.sum.Add(b.sum)
	b.h.count.Add(b.count)
	b.sum, b.count = 0, 0
}
