// Package campaign is the coverage-guided leak-hunting layer over
// internal/leakcheck. A blind sweep samples gadget parameters uniformly; a
// campaign instead treats each differential pair as a fuzzing input, maps
// every evaluation onto micro-architectural coverage cells (where in the
// machine the pair put pressure: shadow depths, cache sets, MSHR/DRAM
// traffic bins, predictor deltas, per-clause contract outcomes), and feeds
// an AFL-style power-schedule mutator that spends its budget on the inputs
// that keep finding new cells. Leaks are minimized, deduplicated by their
// minimized reproducer, and persisted — together with the coverage-bearing
// inputs — in an on-disk corpus a later invocation resumes from.
package campaign

import (
	"encoding/binary"
	"hash/fnv"
	"math/bits"
	"sort"
	"strings"

	"doppelganger/internal/leakcheck"
	"doppelganger/sim"
)

// Map is the campaign's coverage map: a set of cells, each naming one
// observed micro-architectural behaviour bucket. Cells are opaque 64-bit
// ids (FNV-1a over a typed feature encoding); the map only ever grows.
type Map struct {
	cells map[uint64]uint64 // cell id -> times hit
}

// NewMap returns an empty coverage map.
func NewMap() *Map { return &Map{cells: make(map[uint64]uint64)} }

// Add records the cells of one evaluation and returns how many were new.
func (m *Map) Add(cells []uint64) int {
	fresh := 0
	for _, c := range cells {
		if m.cells[c] == 0 {
			fresh++
		}
		m.cells[c]++
	}
	return fresh
}

// Count returns the number of distinct cells ever observed.
func (m *Map) Count() int { return len(m.cells) }

// Cells returns the distinct cell ids in ascending order (for tests and
// reports; the order is deterministic, not meaningful).
func (m *Map) Cells() []uint64 {
	out := make([]uint64, 0, len(m.cells))
	for c := range m.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cell hashes a typed feature into a cell id. The tag keeps feature spaces
// disjoint; the config name keeps the same behaviour under different
// schemes distinct (a DoM-delayed miss and an unsafe miss are different
// discoveries).
func cell(tag string, cfg string, vals ...uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tag))
	h.Write([]byte{0})
	h.Write([]byte(cfg))
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// logBucket compresses a counter into its bit length (0, 1, 2, 4-7, 8-15,
// ...), so "more of the same pressure" is one cell but an order of
// magnitude more is a new one.
func logBucket(v uint64) uint64 { return uint64(bits.Len64(v)) }

// PairEval is everything one differential-pair evaluation under one config
// produced; Cells projects it onto the coverage map.
type PairEval struct {
	Params leakcheck.Params
	Config leakcheck.Config
	ResA   sim.Result
	ResB   sim.Result
	ObsA   sim.Observation
	ObsB   sim.Observation
}

// Leaked reports whether the pair is distinguishable, and via which digest
// components.
func (e *PairEval) Leaked() []string { return e.ObsA.DiffAll(&e.ObsB) }

// Cells maps the evaluation onto coverage cells:
//
//   - the gadget family exercised,
//   - speculation-shadow pressure (peak and cast-count buckets),
//   - squash/mispredict/memory-order activity buckets,
//   - per-level miss, DRAM and writeback traffic buckets,
//   - scheme-mechanism activity (DoM delayed misses, STT taint stalls,
//     doppelganger issues) buckets,
//   - the occupied-set bitmap of every cache level (which sets of the
//     hierarchy the run left state in),
//   - which predictor tables ended the pair in differing states,
//   - the per-clause contract outcome of the pair.
//
// Everything is computed from run A except the explicit A/B deltas: run B
// differs only in the secret byte, so its solo features are (on a secure
// scheme) identical by construction.
func (e *PairEval) Cells() []uint64 {
	cfg := e.Config.String()
	st := e.ResA.Stats
	ms := e.ResA.Memory
	out := []uint64{
		cell("kind", "", uint64(e.Params.Kind)),
		cell("kind-cfg", cfg, uint64(e.Params.Kind)),
		cell("shadow-peak", cfg, st.ShadowPeak),
		cell("shadows-cast", cfg, logBucket(st.ShadowsCast)),
		cell("squashed", cfg, logBucket(st.Squashed)),
		cell("mispredicts", cfg, logBucket(st.BranchMispredicts)),
		cell("mem-order", cfg, logBucket(st.MemOrderViolations)),
		cell("l1-miss", cfg, logBucket(ms.L1Misses)),
		cell("l2-miss", cfg, logBucket(ms.L2Misses)),
		cell("l3-miss", cfg, logBucket(ms.L3Misses)),
		cell("dram", cfg, logBucket(ms.DRAMAccesses)),
		cell("writebacks", cfg, logBucket(ms.WritebacksL1+ms.WritebacksL2+ms.WritebacksL3)),
		cell("dom-delayed", cfg, logBucket(st.DoMDelayedMisses)),
		cell("stt-stalls", cfg, logBucket(st.STTTaintStalls)),
		cell("dopp-issued", cfg, logBucket(st.DoppIssued)),
		cell("stlf", cfg, logBucket(st.STLFForwards)),
		// Exact-count features. Unlike the log buckets these vary smoothly
		// with the gadget parameters (one more round, one more shadow), so
		// stepping a parameter reaches a neighbouring cell — the landscape
		// the mutation scheduler hill-climbs.
		cell("shadows-exact", cfg, st.ShadowsCast),
		cell("mispredicts-exact", cfg, st.BranchMispredicts),
		cell("shape", cfg, e.ResA.Insts/16),
	}

	// Which digest components the pair diverges in, individually and as a
	// combination: each distinct divergence shape is its own discovery.
	if comps := e.Leaked(); len(comps) > 0 {
		for _, c := range comps {
			out = append(out, cell("leak-"+c, cfg))
		}
		out = append(out, cell("leak-shape:"+strings.Join(comps, ","), cfg))
	}

	// Occupied cache sets, one cell per (level, set-bit).
	for level, bm := range map[string]uint64{
		"set-l1": e.ObsA.Cover.L1, "set-l2": e.ObsA.Cover.L2, "set-l3": e.ObsA.Cover.L3,
	} {
		for b := bm; b != 0; b &= b - 1 {
			out = append(out, cell(level, cfg, uint64(bits.TrailingZeros64(b))))
		}
	}

	// Predictor-state deltas between the two runs: which tables can tell
	// the pair apart at all (trained-at-commit tables differing is a much
	// rarer — and more alarming — behaviour than transient state differing).
	da, db := e.ObsA.Micro, e.ObsB.Micro
	for _, d := range []struct {
		name string
		diff bool
	}{
		{"stride", da.Stride != db.Stride},
		{"context", da.Context != db.Context},
		{"branch", da.Branch != db.Branch},
		{"mshr", da.MSHR != db.MSHR},
		{"traffic", da.Traffic != db.Traffic},
	} {
		if d.diff {
			out = append(out, cell("delta-"+d.name, cfg))
		}
	}

	// Per-clause contract outcome of the pair under this config.
	for _, cl := range sim.Lattice() {
		leaked := uint64(0)
		if len(e.ObsA.Diff(&e.ObsB, cl)) > 0 {
			leaked = 1
		}
		out = append(out, cell("clause-"+cl.String(), cfg, leaked))
	}
	return out
}
