package campaign

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"doppelganger/internal/engine"
	"doppelganger/internal/leakcheck"
	"doppelganger/sim"
)

// Options configures one campaign run.
type Options struct {
	// Configs is the scheme matrix each genome's differential pair is
	// evaluated under. Defaults to leakcheck.DefaultConfigs(). Mutation
	// configs are legitimate targets: a campaign over them is the
	// coverage-guided version of the mutation gauntlet.
	Configs []leakcheck.Config
	// Budget is the number of genome evaluations (each is one
	// differential pair simulated under every config).
	Budget int
	// BatchSize is how many genomes are fanned through the engine per
	// batch; defaults to 8.
	BatchSize int
	// Seed drives the scheduler and mutators. A fixed seed makes the
	// whole campaign deterministic.
	Seed int64
	// CorpusPath, when non-empty, persists the corpus (and resumes from
	// it). Empty runs fully in memory.
	CorpusPath string
	// Engine, when non-nil, is used for all simulations (sharing its
	// cache and worker pool); otherwise a private engine is created for
	// the run.
	Engine *engine.Engine
	// Blind disables coverage feedback and draws genomes from the
	// historical sweep generator (leakcheck.Generate) instead — the
	// pre-campaign status quo. Coverage is still recorded, so a blind run
	// is the baseline a campaign's guidance is measured against: the
	// campaign must reach behaviours (whole gadget families, the
	// kind-specific parameter corners) that generator's frozen stream
	// never samples.
	Blind bool
	// NoMinimize stores raw reproducers instead of shrinking them first.
	NoMinimize bool
	// Logf, when non-nil, receives one progress line per batch.
	Logf func(format string, args ...any)
}

// Summary is what a campaign run produced (and, via Leaks, everything the
// corpus now holds).
type Summary struct {
	Evals         int `json:"evals"`
	Pairs         int `json:"pairs"`
	Cells         int `json:"cells"`
	CorpusInputs  int `json:"corpus_inputs"`
	ResumedInputs int `json:"resumed_inputs,omitempty"`
	NewLeaks      int `json:"new_leaks"`
	DupLeaks      int `json:"dup_leaks"`
	// Leaks is the corpus's full minimized-reproducer set, pre-existing
	// ones included, sorted by config then kind.
	Leaks []LeakRecord `json:"leaks"`
}

// Run executes a campaign: resume the corpus, then spend the budget on
// scheduler-chosen genomes, folding every evaluation into the coverage map
// and every novel leak — behaviour-deduped, minimized, reproducer-deduped —
// into the corpus.
func Run(ctx context.Context, opts Options) (*Summary, error) {
	cfgs := opts.Configs
	if len(cfgs) == 0 {
		cfgs = leakcheck.DefaultConfigs()
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("campaign: budget must be positive")
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 8
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Options{})
		defer eng.Close()
	}

	var corpus *Corpus
	var err error
	if opts.CorpusPath != "" {
		if corpus, err = OpenCorpus(opts.CorpusPath); err != nil {
			return nil, err
		}
		defer corpus.Close()
	} else {
		corpus = NewCorpus()
	}

	cov := NewMap()
	sched := NewScheduler(opts.Seed)
	for _, in := range corpus.Inputs {
		// Simulation-free resume: the stored cells rebuild the coverage
		// map and the scheduler's energies exactly as the original
		// evaluations did.
		sched.Add(in.Params, cov.Add(in.Cells))
	}
	resumed := len(corpus.Inputs)
	if resumed > 0 {
		logf("campaign: resumed %d inputs, %d leaks, %d cells from corpus",
			resumed, len(corpus.Leaks), cov.Count())
	}
	blindRng := rand.New(rand.NewSource(opts.Seed))

	// Evaluated-genome filter. Mutate + Normalize can reproduce a genome
	// that was already evaluated (ops on fields the kind ignores clamp
	// away); re-simulating one is pure budget waste, so guided draws retry
	// a few times for novelty. Blind draws stay unfiltered — the baseline
	// is the raw random sweep, not random-with-campaign-bookkeeping.
	seen := make(map[string]bool)
	for _, in := range corpus.Inputs {
		seen[in.Params.String()] = true
	}

	sum := &Summary{ResumedInputs: resumed}
	lattice := sim.Lattice()
	for sum.Evals < opts.Budget {
		n := opts.Budget - sum.Evals
		if n > batch {
			n = batch
		}
		genomes := make([]leakcheck.Params, n)
		for i := range genomes {
			if opts.Blind {
				genomes[i] = leakcheck.Generate(blindRng.Int63())
				continue
			}
			g := sched.Next()
			for tries := 0; seen[g.String()] && tries < 8; tries++ {
				sched.Forget(g)
				g = sched.Next()
			}
			seen[g.String()] = true
			genomes[i] = g
		}

		jobs := make([]engine.Job, 0, 2*n*len(cfgs))
		for _, g := range genomes {
			pa, pb := g.Build(g.SecretA), g.Build(g.SecretB)
			for _, cfg := range cfgs {
				sc := cfg.SimConfig(g)
				jobs = append(jobs,
					engine.Job{Program: pa, Config: sc, Observe: lattice},
					engine.Job{Program: pb, Config: sc, Observe: lattice})
			}
		}
		results, obses, err := eng.RunBatchObserved(ctx, jobs, nil)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}

		ji := 0
		for _, g := range genomes {
			var cells []uint64
			for _, cfg := range cfgs {
				ev := PairEval{
					Params: g, Config: cfg,
					ResA: results[ji], ResB: results[ji+1],
					ObsA: obses[ji], ObsB: obses[ji+1],
				}
				ji += 2
				cells = append(cells, ev.Cells()...)
				sum.Pairs++
				comps := ev.Leaked()
				if len(comps) == 0 {
					continue
				}
				if err := recordLeak(ctx, corpus, &ev, comps, opts.NoMinimize, sum, logf); err != nil {
					return nil, err
				}
			}
			fresh := cov.Add(cells)
			if !opts.Blind {
				// Feed back even zero-yield evaluations: the bandit needs
				// to know when an arm stops paying.
				sched.Add(g, fresh)
			}
			if fresh > 0 {
				if _, err := corpus.AddInput(InputRecord{Params: g, Cells: uniqCells(cells)}); err != nil {
					return nil, err
				}
			}
			sum.Evals++
		}
		logf("campaign: %d/%d evals, %d cells, %d inputs, %d new + %d dup leaks",
			sum.Evals, opts.Budget, cov.Count(), len(corpus.Inputs), sum.NewLeaks, sum.DupLeaks)
	}

	sum.Cells = cov.Count()
	sum.CorpusInputs = len(corpus.Inputs)
	sum.Leaks = append([]LeakRecord(nil), corpus.Leaks...)
	sort.Slice(sum.Leaks, func(i, j int) bool {
		a, b := sum.Leaks[i], sum.Leaks[j]
		if ac, bc := a.Config.String(), b.Config.String(); ac != bc {
			return ac < bc
		}
		return a.Key < b.Key
	})
	return sum, nil
}

// recordLeak folds one leaking pair evaluation into the corpus: drop it if
// its behavioural signature is already represented, otherwise minimize the
// reproducer and store it (unless a checksum-identical reproducer arrived
// through another path first).
func recordLeak(ctx context.Context, corpus *Corpus, ev *PairEval, comps []string,
	noMinimize bool, sum *Summary, logf func(string, ...any)) error {
	clauses := leakingClauses(ev)
	sig := LeakSig(ev.Config, ev.Params.Kind, comps, clauses)
	if corpus.HasLeakSig(sig) {
		sum.DupLeaks++
		return nil
	}
	params := ev.Params
	if !noMinimize {
		leak := leakcheck.Leak{
			Params: ev.Params, Config: ev.Config, Components: comps,
			DigestA: ev.ObsA.Micro, DigestB: ev.ObsB.Micro,
			ObsA: ev.ObsA, ObsB: ev.ObsB,
		}
		min, err := leakcheck.Minimize(ctx, leak)
		if err != nil {
			return fmt.Errorf("campaign: minimizing %s: %w", ev.Params, err)
		}
		params = min
	}
	added, err := corpus.AddLeak(LeakRecord{
		Params: params.Normalize(), Config: ev.Config,
		Components: comps, Clauses: clauses,
		Sig: sig, Key: LeakKey(params, ev.Config),
	})
	if err != nil {
		return err
	}
	if added {
		sum.NewLeaks++
		logf("campaign: new leak under %s via %v (%s)", ev.Config, comps, params)
	} else {
		sum.DupLeaks++
	}
	return nil
}

func leakingClauses(ev *PairEval) []string {
	var out []string
	for _, cl := range sim.Lattice() {
		if len(ev.ObsA.Diff(&ev.ObsB, cl)) > 0 {
			out = append(out, cl.String())
		}
	}
	return out
}

func uniqCells(cells []uint64) []uint64 {
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	out := cells[:0]
	for i, c := range cells {
		if i == 0 || c != cells[i-1] {
			out = append(out, c)
		}
	}
	return append([]uint64(nil), out...)
}
