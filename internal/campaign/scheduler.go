package campaign

import (
	"math/rand"

	"doppelganger/internal/leakcheck"
)

// Scheduler decides what to evaluate next. It runs two arms — fresh random
// genomes and mutants of coverage-bearing parents — as a yield-tracked
// bandit: each draw goes to the arm currently paying more fresh cells per
// evaluation, with a fixed exploration fraction keeping both arms alive.
// Early on the random arm dominates (an empty map pays any draw); as the
// broad features saturate, the mutation arm's hill-climbing over the
// smooth features overtakes it and the budget follows. Parents are drawn
// by energy-weighted roulette, energy being the fresh coverage the input
// found. Deterministic for a fixed seed and feedback order.
type Scheduler struct {
	rng    *rand.Rand
	inputs []queued
	total  int

	arms  [2]armStats
	armOf map[string]int

	visits map[string]map[int]int

	// draws remembers what each outstanding Next() charged against the
	// bookkeeping above (parent energy decrement, balanced-field visit
	// bumps), so Forget can refund a drawn-but-never-evaluated genome
	// instead of leaving the charges to accumulate. inputs is append-only,
	// so the recorded parent index stays valid.
	draws map[string]drawRecord
	// pendingVisits collects the balanced() bumps of the draw in progress.
	pendingVisits []fieldVisit
}

type queued struct {
	params leakcheck.Params
	energy int
}

type drawRecord struct {
	parent      int // index into inputs; -1 for the random arm
	decremented bool
	visits      []fieldVisit
}

type fieldVisit struct {
	field string
	val   int
}

type armStats struct {
	pulls float64
	yield float64 // fresh cells credited to this arm's draws
}

const (
	armRandom = 0
	armMutate = 1
)

// baseEnergy is every input's floor, so old inputs keep a nonzero chance
// of selection after the map around them saturates.
const baseEnergy = 1

// NewScheduler returns an empty scheduler drawing from the given seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		rng:    rand.New(rand.NewSource(seed)),
		armOf:  make(map[string]int),
		visits: make(map[string]map[int]int),
		draws:  make(map[string]drawRecord),
	}
}

// Len returns the number of queued inputs.
func (s *Scheduler) Len() int { return len(s.inputs) }

// armDecay discounts both arms' statistics at every credited evaluation,
// so the bandit compares *recent* fresh-cells-per-pull, not lifetime. The
// random arm's enormous empty-map-era payoff must not keep its ratio
// inflated after that regime ends; with decay the effective window is a
// few dozen evaluations.
const armDecay = 0.9

// Add feeds back the result of evaluating a genome: it discovered newCells
// fresh coverage cells. The genome's arm is credited either way; the
// genome itself is queued as a mutation parent only if it found something
// (an input that found nothing new is already represented by an earlier
// one and is not worth mutating).
func (s *Scheduler) Add(p leakcheck.Params, newCells int) {
	key := p.String()
	delete(s.draws, key) // the draw's charges are now spent, not refundable
	if arm, ok := s.armOf[key]; ok {
		delete(s.armOf, key)
		for i := range s.arms {
			s.arms[i].pulls *= armDecay
			s.arms[i].yield *= armDecay
		}
		s.arms[arm].pulls++
		if newCells > 0 {
			s.arms[arm].yield += float64(newCells)
		}
	}
	if newCells <= 0 {
		return
	}
	e := baseEnergy + newCells
	s.inputs = append(s.inputs, queued{params: p, energy: e})
	s.total += e
}

// Pick draws a parent genome by energy-weighted roulette and decays the
// winner's energy by one (down to the floor). Early inputs discover huge
// cell counts simply because the map is empty; without decay their energy
// would dominate the roulette forever and the campaign would fixate on one
// basin. Decay spends that initial advantage across picks, shifting the
// budget toward whichever inputs keep earning fresh energy.
func (s *Scheduler) Pick() leakcheck.Params {
	i, _ := s.pick()
	return s.inputs[i].params
}

// pick is the roulette draw behind Pick, additionally reporting which
// input won and whether its energy was decremented — what Forget needs to
// refund the draw.
func (s *Scheduler) pick() (idx int, decremented bool) {
	t := s.rng.Intn(s.total)
	for i := range s.inputs {
		t -= s.inputs[i].energy
		if t < 0 {
			if s.inputs[i].energy > baseEnergy {
				s.inputs[i].energy--
				s.total--
				return i, true
			}
			return i, false
		}
	}
	return len(s.inputs) - 1, false
}

// Forget cancels a drawn-but-never-evaluated genome (e.g. a duplicate the
// campaign filtered out before simulating). Pulls are only counted when
// the evaluation is credited back via Add, but the roulette already
// decremented the parent's energy and the exploration arm already bumped
// its balanced-field visit counts — without a refund those charges
// accumulate across every filtered duplicate, silently starving exactly
// the high-coverage parents dedup hits most often.
func (s *Scheduler) Forget(p leakcheck.Params) {
	key := p.String()
	delete(s.armOf, key)
	rec, ok := s.draws[key]
	if !ok {
		return
	}
	delete(s.draws, key)
	if rec.decremented {
		s.inputs[rec.parent].energy++
		s.total++
	}
	for _, v := range rec.visits {
		if m := s.visits[v.field]; m[v.val] > 0 {
			m[v.val]--
		}
	}
}

// pickArm chooses which arm the next draw spends its evaluation on: 1/8
// exploration, otherwise the arm with the better recent
// fresh-cells-per-pull ratio (optimistically smoothed, so an idle arm
// stays worth probing).
func (s *Scheduler) pickArm() int {
	if s.rng.Intn(8) == 0 {
		return s.rng.Intn(2)
	}
	r0 := (s.arms[armRandom].yield + 1) / (s.arms[armRandom].pulls + 1)
	r1 := (s.arms[armMutate].yield + 1) / (s.arms[armMutate].pulls + 1)
	if r1 > r0 {
		return armMutate
	}
	return armRandom
}

// balanced draws one field value by power-of-two-choices: two uniform
// candidates, keep the one this campaign has evaluated less often. The
// field visit counts come from the scheduler's own draws, so the
// exploration arm spreads itself across the parameter space instead of
// coupon-collecting it — same marginal range as a uniform draw, far fewer
// collisions on the nearly-exhausted values.
func (s *Scheduler) balanced(field string, lo, hi int) int {
	a := lo + s.rng.Intn(hi-lo+1)
	b := lo + s.rng.Intn(hi-lo+1)
	m := s.visits[field]
	if m == nil {
		m = make(map[int]int)
		s.visits[field] = m
	}
	if m[b] < m[a] {
		a = b
	}
	m[a]++
	s.pendingVisits = append(s.pendingVisits, fieldVisit{field: field, val: a})
	return a
}

// spread is the exploration arm's generator: every field drawn balanced
// over its post-Normalize working range, the seed fully random.
func (s *Scheduler) spread() leakcheck.Params {
	kinds := leakcheck.Kinds()
	return leakcheck.Params{
		Seed:           s.rng.Int63(),
		Kind:           kinds[s.balanced("kind", 0, len(kinds)-1)],
		Rounds:         s.balanced("rounds", leakcheck.MinRounds, leakcheck.MaxRounds),
		ShadowDepth:    s.balanced("depth", 0, leakcheck.MaxShadowDepth),
		ChainLen:       s.balanced("chain", 0, leakcheck.MaxChainLen),
		TrainLoops:     s.balanced("train", 0, leakcheck.MaxTrainLoops),
		DoubleTransmit: s.balanced("double", 0, 1) == 1,
		Prime:          s.balanced("prime", 0, 1) == 1,
		AliasTrainings: s.balanced("alias", 0, leakcheck.MaxAliasTrainings),
		AliasPad:       s.balanced("pad", 0, leakcheck.MaxAliasPad),
		PressureWidth:  s.balanced("width", 0, leakcheck.MaxPressureWidth),
		SecretBit:      s.balanced("bit", 0, 7),
		SecretA:        uint8(s.rng.Intn(256)),
		SecretB:        uint8(s.rng.Intn(256)),
	}.Normalize()
}

// Next produces the next genome to evaluate and remembers which arm it
// came from, so the Add feedback can credit that arm's yield.
func (s *Scheduler) Next() leakcheck.Params {
	arm := armMutate
	if s.Len() == 0 {
		arm = armRandom
	} else {
		arm = s.pickArm()
	}
	s.pendingVisits = s.pendingVisits[:0]
	parent, decremented := -1, false
	var p leakcheck.Params
	if arm == armRandom {
		p = s.spread()
	} else {
		parent, decremented = s.pick()
		p = Mutate(s.inputs[parent].params, s.rng)
	}
	key := p.String()
	s.armOf[key] = arm
	s.draws[key] = drawRecord{
		parent:      parent,
		decremented: decremented,
		visits:      append([]fieldVisit(nil), s.pendingVisits...),
	}
	return p
}
