package campaign

import (
	"math/rand"

	"doppelganger/internal/leakcheck"
)

// Mutate derives a child gadget genome from a parent. A stacked number of
// typed mutation operators (1, 2, or 4) is applied (AFL's havoc in
// miniature — occasional heavy stacks escape the parent's basin), then the
// result is normalized so any combination is buildable. Operators cover
// every Params field — including the kind flips that are the only road
// into the families Generate's frozen seed stream never samples.
func Mutate(p leakcheck.Params, rng *rand.Rand) leakcheck.Params {
	kinds := leakcheck.Kinds()
	ops := []func(*leakcheck.Params){
		func(q *leakcheck.Params) { q.Kind = kinds[rng.Intn(len(kinds))] },
		func(q *leakcheck.Params) { q.Seed = rng.Int63() },
		func(q *leakcheck.Params) { q.Seed += int64(rng.Intn(7)) - 3 },
		func(q *leakcheck.Params) { q.Rounds += rng.Intn(9) - 4 },
		func(q *leakcheck.Params) { q.ShadowDepth += rng.Intn(3) - 1 },
		func(q *leakcheck.Params) { q.ChainLen += rng.Intn(5) - 2 },
		func(q *leakcheck.Params) { q.TrainLoops += rng.Intn(3) - 1 },
		func(q *leakcheck.Params) { q.DoubleTransmit = !q.DoubleTransmit },
		func(q *leakcheck.Params) { q.Prime = !q.Prime },
		func(q *leakcheck.Params) { q.AliasTrainings += rng.Intn(3) - 1 },
		func(q *leakcheck.Params) { q.AliasPad += rng.Intn(9) - 4 },
		func(q *leakcheck.Params) { q.PressureWidth += rng.Intn(5) - 2 },
		func(q *leakcheck.Params) { q.SecretBit = rng.Intn(8) },
		func(q *leakcheck.Params) { q.SecretA = uint8(rng.Intn(256)) },
		func(q *leakcheck.Params) { q.SecretB = uint8(rng.Intn(256)) },
		func(q *leakcheck.Params) { q.SecretA ^= 1 << uint(rng.Intn(8)) },
		func(q *leakcheck.Params) { q.SecretB ^= 1 << uint(rng.Intn(8)) },
		// Doubling and halving cross the log-bucket boundaries the counter
		// cells are keyed on; the small deltas above usually cannot.
		func(q *leakcheck.Params) { q.Rounds *= 2 },
		func(q *leakcheck.Params) { q.Rounds /= 2 },
		func(q *leakcheck.Params) { q.ChainLen *= 2 },
		func(q *leakcheck.Params) { q.ChainLen /= 2 },
		func(q *leakcheck.Params) { q.ShadowDepth *= 2 },
		func(q *leakcheck.Params) { q.AliasPad *= 2 },
	}
	n := 1 << rng.Intn(3)
	for i := 0; i < n; i++ {
		ops[rng.Intn(len(ops))](&p)
	}
	return p.Normalize()
}

// Random draws an unbiased genome: every field sampled uniformly from its
// (pre-Normalize) range, independent of any parent. Used to seed fresh
// exploration and as the blind baseline's generator.
func Random(rng *rand.Rand) leakcheck.Params {
	kinds := leakcheck.Kinds()
	return leakcheck.Params{
		Seed:           rng.Int63(),
		Kind:           kinds[rng.Intn(len(kinds))],
		Rounds:         rng.Intn(32),
		ShadowDepth:    rng.Intn(5),
		ChainLen:       rng.Intn(8),
		TrainLoops:     rng.Intn(4),
		DoubleTransmit: rng.Intn(2) == 1,
		Prime:          rng.Intn(2) == 1,
		AliasTrainings: rng.Intn(6),
		AliasPad:       rng.Intn(20),
		PressureWidth:  rng.Intn(8),
		SecretBit:      rng.Intn(8),
		SecretA:        uint8(rng.Intn(256)),
		SecretB:        uint8(rng.Intn(256)),
	}.Normalize()
}
