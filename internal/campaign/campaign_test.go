package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"doppelganger/internal/leakcheck"
	"doppelganger/internal/secure"
)

func TestSchedulerDeterministic(t *testing.T) {
	build := func() []string {
		s := NewScheduler(42)
		s.Add(leakcheck.Generate(1), 5)
		s.Add(leakcheck.Generate(2), 1)
		s.Add(leakcheck.Generate(3), 12)
		var out []string
		for i := 0; i < 20; i++ {
			out = append(out, s.Next().String())
		}
		return out
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed and corpus produced different schedules:\n%v\n%v", a, b)
	}
	s2 := NewScheduler(43)
	s2.Add(leakcheck.Generate(1), 5)
	s2.Add(leakcheck.Generate(2), 1)
	s2.Add(leakcheck.Generate(3), 12)
	var c []string
	for i := 0; i < 20; i++ {
		c = append(c, s2.Next().String())
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different scheduler seeds produced identical schedules")
	}
}

// TestSchedulerForgetRefunds pins the draw-refund invariant: a genome that
// is drawn and then Forgotten (the campaign's dedup filter) must leave the
// scheduler's bookkeeping exactly as it was — parent energies, the energy
// total, and the exploration arm's balanced-field visit counts. Before the
// refund, every filtered duplicate permanently decremented its parent's
// roulette energy and inflated the visit counters, starving exactly the
// high-coverage parents dedup hits most often.
func TestSchedulerForgetRefunds(t *testing.T) {
	s := NewScheduler(7)
	s.Add(leakcheck.Generate(1), 5)
	s.Add(leakcheck.Generate(2), 9)

	snapVisits := func() map[string]map[int]int {
		out := make(map[string]map[int]int)
		for f, m := range s.visits {
			cp := make(map[int]int)
			for v, n := range m {
				if n != 0 {
					cp[v] = n
				}
			}
			if len(cp) > 0 {
				out[f] = cp
			}
		}
		return out
	}
	// Exercise both arms many times; each draw+Forget must be a no-op.
	for i := 0; i < 200; i++ {
		energies := make([]int, len(s.inputs))
		for j := range s.inputs {
			energies[j] = s.inputs[j].energy
		}
		total := s.total
		visits := snapVisits()

		p := s.Next()
		s.Forget(p)

		if s.total != total {
			t.Fatalf("draw %d: total %d after Forget, want %d", i, s.total, total)
		}
		for j := range s.inputs {
			if s.inputs[j].energy != energies[j] {
				t.Fatalf("draw %d: input %d energy %d after Forget, want %d",
					i, j, s.inputs[j].energy, energies[j])
			}
		}
		if got := snapVisits(); !reflect.DeepEqual(got, visits) {
			t.Fatalf("draw %d: visit counts not refunded:\n got %v\nwant %v", i, got, visits)
		}
		if _, ok := s.armOf[p.String()]; ok {
			t.Fatalf("draw %d: arm attribution survived Forget", i)
		}
	}
}

func TestSchedulerDropsCoverageFreeInputs(t *testing.T) {
	s := NewScheduler(1)
	s.Add(leakcheck.Generate(1), 0)
	if s.Len() != 0 {
		t.Errorf("input with no fresh coverage was queued (len=%d)", s.Len())
	}
	s.Add(leakcheck.Generate(1), 3)
	if s.Len() != 1 {
		t.Errorf("coverage-bearing input not queued (len=%d)", s.Len())
	}
}

func TestCoverageMapMonotonic(t *testing.T) {
	m := NewMap()
	if fresh := m.Add([]uint64{1, 2, 3}); fresh != 3 {
		t.Errorf("first add: fresh = %d, want 3", fresh)
	}
	if fresh := m.Add([]uint64{2, 3, 4}); fresh != 1 {
		t.Errorf("overlapping add: fresh = %d, want 1", fresh)
	}
	if fresh := m.Add([]uint64{1, 2, 3, 4}); fresh != 0 {
		t.Errorf("replayed add: fresh = %d, want 0", fresh)
	}
	if m.Count() != 4 {
		t.Errorf("Count = %d, want 4", m.Count())
	}
	// Population never shrinks, whatever is replayed.
	before := m.Count()
	m.Add(nil)
	m.Add([]uint64{1})
	if m.Count() != before {
		t.Errorf("Count moved from %d to %d on replayed cells", before, m.Count())
	}
}

func TestCorpusPersistsAndDedups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.dgcf")
	c, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	in := InputRecord{Params: leakcheck.Generate(7).Normalize(), Cells: []uint64{1, 9, 4}}
	if added, err := c.AddInput(in); err != nil || !added {
		t.Fatalf("first AddInput = %v, %v", added, err)
	}
	if added, _ := c.AddInput(in); added {
		t.Error("duplicate input was not dropped")
	}
	lp := leakcheck.Generate(3).Normalize()
	cfg := leakcheck.Config{Scheme: secure.Unsafe}
	lk := LeakRecord{
		Params: lp, Config: cfg,
		Components: []string{"L1"}, Clauses: []string{"ct-spec"},
		Sig: LeakSig(cfg, lp.Kind, []string{"L1"}, []string{"ct-spec"}),
		Key: LeakKey(lp, cfg),
	}
	if added, err := c.AddLeak(lk); err != nil || !added {
		t.Fatalf("first AddLeak = %v, %v", added, err)
	}
	// A checksum-identical reproducer arriving via a different behavioural
	// signature is still a duplicate.
	lk2 := lk
	lk2.Sig = "other-sig"
	if added, _ := c.AddLeak(lk2); added {
		t.Error("checksum-identical minimized reproducer was not dropped")
	}
	if !c.HasLeakSig(lk.Sig) || !c.HasLeakSig("other-sig") {
		t.Error("leak signatures not registered")
	}
	c.Close()

	// Reopen: everything replays.
	c2, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if len(c2.Inputs) != 1 || len(c2.Leaks) != 1 {
		t.Fatalf("reopened corpus has %d inputs, %d leaks; want 1, 1", len(c2.Inputs), len(c2.Leaks))
	}
	if !reflect.DeepEqual(c2.Inputs[0], in) {
		t.Errorf("input round-trip mismatch:\n got %+v\nwant %+v", c2.Inputs[0], in)
	}
	if c2.Leaks[0].Key != lk.Key || !c2.HasLeakSig(lk.Sig) {
		t.Error("leak record did not round-trip")
	}
	if added, _ := c2.AddLeak(lk); added {
		t.Error("reopened corpus re-admitted a stored reproducer")
	}
}

func TestCorpusRefusesCorruptionAndWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.dgcf")
	c, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddInput(InputRecord{Params: leakcheck.Generate(1).Normalize(), Cells: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Flip one payload byte: loud ErrCorrupt, not silent acceptance.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt corpus: err = %v, want ErrCorrupt", err)
	}

	// Wrong format version: refused with a version message, not ErrCorrupt.
	verbad := append([]byte(nil), data...)
	verbad[4] = 0xEE
	if err := os.WriteFile(path, verbad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(path); err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong-version corpus: err = %v, want version refusal", err)
	}

	// Torn tail (crash mid-append): truncated away, earlier records kept.
	torn := append([]byte(nil), data...)
	torn = append(torn, 0x01, 0xff, 0x00)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("torn tail should truncate, got %v", err)
	}
	if len(c3.Inputs) != 1 {
		t.Errorf("torn-tail corpus has %d inputs, want 1", len(c3.Inputs))
	}
	c3.Close()
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(data)) {
		t.Errorf("torn tail not truncated: size %d, want %d", fi.Size(), len(data))
	}
}

// TestCampaignBeatsBlindCoverage is the guidance acceptance check: at equal
// budget, the coverage-guided campaign must populate strictly more coverage
// cells than the blind sweep (the pre-campaign Generate-stream sampler).
// The config is a secure scheme so neither run pays for minimization,
// isolating the exploration comparison, and the budget is past the point
// where the broad hash-like cell families saturate — the regime where the
// campaign's reach into the never-sampled families is what pays. Every
// component is deterministic under the fixed seed, so the margin is pinned,
// not flaky.
func TestCampaignBeatsBlindCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("192-eval campaign pair in -short mode")
	}
	cfgs := []leakcheck.Config{{Scheme: secure.DoM}}
	run := func(blind bool) int {
		sum, err := Run(context.Background(), Options{
			Configs: cfgs, Budget: 192, Seed: 1, Blind: blind,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum.Cells
	}
	blind := run(true)
	guided := run(false)
	t.Logf("cells at equal budget: guided %d, blind %d", guided, blind)
	if guided <= blind {
		t.Errorf("guided campaign found %d cells, blind sweep %d — guidance is not earning its keep",
			guided, blind)
	}
}

// TestCampaignFindsAllPlantedMutations runs the coverage-guided campaign
// against every planted scheme weakening: each must be exposed, and each
// exposure must come with a minimized reproducer in the corpus.
func TestCampaignFindsAllPlantedMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config campaign in -short mode")
	}
	var cfgs []leakcheck.Config
	for _, m := range secure.Mutations() {
		scheme, needAP := m.Target()
		cfgs = append(cfgs, leakcheck.Config{Scheme: scheme, AP: needAP, Mutation: m})
	}
	sum, err := Run(context.Background(), Options{
		Configs: cfgs, Budget: 40, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[string]LeakRecord)
	for _, lk := range sum.Leaks {
		found[lk.Config.Mutation.String()] = lk
	}
	for _, m := range secure.Mutations() {
		lk, ok := found[m.String()]
		if !ok {
			t.Errorf("mutation %s not exposed by the campaign", m)
			continue
		}
		// The reproducer must be minimized: re-minimizing it is a fixpoint.
		min, err := leakcheck.Minimize(context.Background(),
			leakcheck.Leak{Params: lk.Params, Config: lk.Config})
		if err != nil {
			t.Fatal(err)
		}
		if min != lk.Params {
			t.Errorf("mutation %s: stored reproducer is not minimal:\nstored %s\nminimal %s",
				m, lk.Params, min)
		}
	}
}

// TestCampaignResume kills a campaign after a small budget and restarts it
// from the corpus: the second run must rebuild its coverage and leak
// knowledge from disk (no re-minimizing known reproducers) and continue
// discovering, not start over.
func TestCampaignResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.dgcf")
	cfgs := []leakcheck.Config{{Scheme: secure.Unsafe}}

	first, err := Run(context.Background(), Options{
		Configs: cfgs, Budget: 16, Seed: 3, CorpusPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.NewLeaks == 0 || first.CorpusInputs == 0 {
		t.Fatalf("first run found nothing (leaks=%d inputs=%d); resume test is vacuous",
			first.NewLeaks, first.CorpusInputs)
	}

	second, err := Run(context.Background(), Options{
		Configs: cfgs, Budget: 8, Seed: 3, CorpusPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.ResumedInputs != first.CorpusInputs {
		t.Errorf("second run resumed %d inputs, want the first run's %d",
			second.ResumedInputs, first.CorpusInputs)
	}
	if len(second.Leaks) < len(first.Leaks) {
		t.Errorf("second run reports %d leaks, first had %d — corpus knowledge was lost",
			len(second.Leaks), len(first.Leaks))
	}
	// Every leak the second run re-encountered must have been deduped
	// against the corpus, not re-stored: reproducer keys are unique.
	seen := make(map[string]bool)
	for _, lk := range second.Leaks {
		if seen[lk.Key] {
			t.Errorf("duplicate reproducer key %s survived resume", lk.Key)
		}
		seen[lk.Key] = true
	}
}

// TestCampaignDeterministic pins that a fixed seed reproduces the entire
// campaign: same cells, same corpus, same leaks.
func TestCampaignDeterministic(t *testing.T) {
	run := func() *Summary {
		sum, err := Run(context.Background(), Options{
			Configs: []leakcheck.Config{{Scheme: secure.Unsafe}},
			Budget:  12, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	if a.Cells != b.Cells || a.NewLeaks != b.NewLeaks || a.CorpusInputs != b.CorpusInputs {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.Leaks, b.Leaks) {
		t.Error("same seed produced different leak sets")
	}
}
