package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"doppelganger/internal/leakcheck"
)

// CorpusVersion is the on-disk corpus format version. OpenCorpus rejects
// files written by a different version rather than guessing at their
// layout — a campaign resumed onto a stale corpus must fail loudly, not
// silently re-explore (or worse, trust cells computed by an incompatible
// coverage encoding).
const CorpusVersion = 1

var corpusMagic = [4]byte{'D', 'G', 'C', 'F'}

// ErrCorrupt reports a complete corpus record whose checksum did not
// verify (or a malformed header). Test with errors.Is.
var ErrCorrupt = errors.New("campaign: corrupt corpus record")

// maxRecordLen bounds one record so a corrupt length field cannot make
// OpenCorpus attempt a huge allocation.
const maxRecordLen = 4 << 20

// Record types.
const (
	recInput byte = 1 // a coverage-bearing gadget genome + its cells
	recLeak  byte = 2 // a minimized, deduplicated leak reproducer
)

// InputRecord is one coverage-bearing genome. Cells is the full cell set
// its evaluation produced, persisted so a resumed campaign rebuilds its
// coverage map — and therefore its novelty judgments — without
// re-simulating anything.
type InputRecord struct {
	Params leakcheck.Params `json:"params"`
	Cells  []uint64         `json:"cells"`
}

// LeakRecord is one minimized leak reproducer.
type LeakRecord struct {
	// Params is the minimized reproducer (already normalized).
	Params leakcheck.Params `json:"params"`
	Config leakcheck.Config `json:"config"`
	// Components are the diverging digest components; Clauses the leaked
	// contract clauses, both as reported at detection time.
	Components []string `json:"components"`
	Clauses    []string `json:"clauses,omitempty"`
	// Sig is the behavioural signature (config x family x divergence
	// shape) used to dedup before paying for minimization; Key identifies
	// the minimized reproducer itself.
	Sig string `json:"sig"`
	Key string `json:"key"`
}

// LeakSig is the pre-minimization behavioural signature of a leak: two
// finds with the same signature are the same underlying channel, so only
// the first is worth minimizing and storing.
func LeakSig(cfg leakcheck.Config, kind leakcheck.Kind, components, clauses []string) string {
	return cfg.String() + "|" + kind.String() + "|" +
		strings.Join(components, ",") + "|" + strings.Join(clauses, ",")
}

// LeakKey identifies a minimized reproducer: the hash of its canonical
// parameter rendering under its config. Checksum-identical reproducers are
// duplicates regardless of which input mutated into them.
func LeakKey(p leakcheck.Params, cfg leakcheck.Config) string {
	sum := sha256.Sum256([]byte(p.Normalize().String() + "|" + cfg.String()))
	return hex.EncodeToString(sum[:])
}

// Corpus is the campaign's persistent state: every coverage-bearing input
// and every minimized leak, in one append-only versioned file. Appends are
// durable record-by-record, so a killed campaign resumes from everything
// it had fully evaluated. Safe for concurrent use.
type Corpus struct {
	mu     sync.Mutex
	f      *os.File // nil for an in-memory corpus
	Inputs []InputRecord
	Leaks  []LeakRecord

	inputSeen map[string]bool
	leakSigs  map[string]bool
	leakKeys  map[string]bool
}

// NewCorpus returns an empty in-memory corpus (no persistence).
func NewCorpus() *Corpus {
	return &Corpus{
		inputSeen: make(map[string]bool),
		leakSigs:  make(map[string]bool),
		leakKeys:  make(map[string]bool),
	}
}

// OpenCorpus opens (creating if absent) the corpus file at path and replays
// it, verifying the format version and every record checksum. A torn final
// record — a crash mid-append — is truncated away; any other corruption
// fails with ErrCorrupt.
func OpenCorpus(path string) (*Corpus, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	c := NewCorpus()
	c.f = f
	if err := c.load(path); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the underlying file (no-op for in-memory corpora).
func (c *Corpus) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

func (c *Corpus) load(path string) error {
	info, err := c.f.Stat()
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if info.Size() == 0 {
		var hdr [8]byte
		copy(hdr[:4], corpusMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:], CorpusVersion)
		if _, err := c.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		return nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(io.NewSectionReader(c.f, 0, 8), hdr[:]); err != nil {
		return fmt.Errorf("%w: short header in %s", ErrCorrupt, path)
	}
	if [4]byte(hdr[:4]) != corpusMagic {
		return fmt.Errorf("%w: bad magic in %s", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != CorpusVersion {
		return fmt.Errorf("campaign: %s is corpus format version %d, this build reads version %d",
			path, v, CorpusVersion)
	}

	off := int64(8)
	size := info.Size()
	for off < size {
		var rec [5]byte
		if _, err := io.ReadFull(io.NewSectionReader(c.f, off, 5), rec[:]); err != nil {
			return c.truncate(off) // torn header at the tail
		}
		typ := rec[0]
		n := binary.LittleEndian.Uint32(rec[1:])
		if n == 0 || n > maxRecordLen {
			return fmt.Errorf("%w: implausible record length %d at offset %d in %s",
				ErrCorrupt, n, off, path)
		}
		body := make([]byte, int(n)+4)
		if _, err := io.ReadFull(io.NewSectionReader(c.f, off+5, int64(len(body))), body); err != nil {
			return c.truncate(off) // torn body at the tail
		}
		payload := body[:n]
		want := binary.LittleEndian.Uint32(body[n:])
		if got := crcRecord(typ, payload); got != want {
			return fmt.Errorf("%w: checksum mismatch at offset %d in %s (crc %08x, want %08x)",
				ErrCorrupt, off, path, got, want)
		}
		switch typ {
		case recInput:
			var in InputRecord
			if err := json.Unmarshal(payload, &in); err != nil {
				return fmt.Errorf("%w: undecodable input record at offset %d in %s: %v",
					ErrCorrupt, off, path, err)
			}
			c.replayInput(in)
		case recLeak:
			var lk LeakRecord
			if err := json.Unmarshal(payload, &lk); err != nil {
				return fmt.Errorf("%w: undecodable leak record at offset %d in %s: %v",
					ErrCorrupt, off, path, err)
			}
			c.replayLeak(lk)
		default:
			return fmt.Errorf("%w: unknown record type %d at offset %d in %s",
				ErrCorrupt, typ, off, path)
		}
		off += 5 + int64(len(body))
	}
	return nil
}

func (c *Corpus) truncate(off int64) error {
	if err := c.f.Truncate(off); err != nil {
		return fmt.Errorf("campaign: truncating torn corpus tail: %w", err)
	}
	return nil
}

func crcRecord(typ byte, payload []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	return crc.Sum32()
}

func (c *Corpus) replayInput(in InputRecord) {
	key := in.Params.String()
	if c.inputSeen[key] {
		return
	}
	c.inputSeen[key] = true
	c.Inputs = append(c.Inputs, in)
}

func (c *Corpus) replayLeak(lk LeakRecord) {
	if c.leakKeys[lk.Key] {
		return
	}
	c.leakKeys[lk.Key] = true
	c.leakSigs[lk.Sig] = true
	c.Leaks = append(c.Leaks, lk)
}

// append writes one record through to disk (no-op for in-memory corpora).
func (c *Corpus) append(typ byte, v any) error {
	if c.f == nil {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: encoding corpus record: %w", err)
	}
	buf := make([]byte, 5+len(payload)+4)
	buf[0] = typ
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	copy(buf[5:], payload)
	binary.LittleEndian.PutUint32(buf[5+len(payload):], crcRecord(typ, payload))
	if _, err := c.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if _, err := c.f.Write(buf); err != nil {
		return fmt.Errorf("campaign: appending corpus record: %w", err)
	}
	return nil
}

// AddInput records a coverage-bearing genome. Returns false (and writes
// nothing) if an identical genome is already present.
func (c *Corpus) AddInput(in InputRecord) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := in.Params.String()
	if c.inputSeen[key] {
		return false, nil
	}
	if err := c.append(recInput, in); err != nil {
		return false, err
	}
	c.inputSeen[key] = true
	c.Inputs = append(c.Inputs, in)
	return true, nil
}

// HasLeakSig reports whether a leak with this behavioural signature is
// already known (so the caller can skip minimizing a duplicate find).
func (c *Corpus) HasLeakSig(sig string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leakSigs[sig]
}

// AddLeak records a minimized leak. Returns false (and writes nothing) if
// a checksum-identical reproducer is already present.
func (c *Corpus) AddLeak(lk LeakRecord) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leakKeys[lk.Key] {
		c.leakSigs[lk.Sig] = true
		return false, nil
	}
	if err := c.append(recLeak, lk); err != nil {
		return false, err
	}
	c.leakKeys[lk.Key] = true
	c.leakSigs[lk.Sig] = true
	c.Leaks = append(c.Leaks, lk)
	return true, nil
}
