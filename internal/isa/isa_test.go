package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", Add: "add", Sub: "sub", Mul: "mul", Div: "div",
		And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Slt: "slt",
		AddI: "addi", MulI: "muli", AndI: "andi", ShlI: "shli", ShrI: "shri",
		LoadI: "loadi", Load: "load", Store: "store",
		Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge", Jmp: "jmp", Halt: "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(op), got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q, want it to include the code", got)
	}
}

func TestOpValid(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if !op.Valid() {
			t.Errorf("op %v should be valid", op)
		}
	}
	if Op(numOps).Valid() || Op(255).Valid() {
		t.Error("out-of-range ops should be invalid")
	}
}

func TestKindClassification(t *testing.T) {
	cases := map[Op]Kind{
		Nop: KindNop, Halt: KindHalt, Jmp: KindJump,
		Load: KindLoad, Store: KindStore,
		Beq: KindBranch, Bne: KindBranch, Blt: KindBranch, Bge: KindBranch,
		Add: KindALU, LoadI: KindALU, Div: KindALU, ShrI: KindALU,
	}
	for op, want := range cases {
		if got := op.Kind(); got != want {
			t.Errorf("%v.Kind() = %v, want %v", op, got, want)
		}
	}
}

func TestHasDst(t *testing.T) {
	with := []Op{Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Slt,
		AddI, MulI, AndI, ShlI, ShrI, LoadI, Load}
	without := []Op{Nop, Store, Beq, Bne, Blt, Bge, Jmp, Halt}
	for _, op := range with {
		if !(Instruction{Op: op}).HasDst() {
			t.Errorf("%v should have a destination", op)
		}
	}
	for _, op := range without {
		if (Instruction{Op: op}).HasDst() {
			t.Errorf("%v should not have a destination", op)
		}
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in   Instruction
		want []Reg
	}{
		{Instruction{Op: Nop}, nil},
		{Instruction{Op: LoadI, Dst: 1}, nil},
		{Instruction{Op: Jmp}, nil},
		{Instruction{Op: Halt}, nil},
		{Instruction{Op: Load, Dst: 1, Src1: 2}, []Reg{2}},
		{Instruction{Op: AddI, Dst: 1, Src1: 3}, []Reg{3}},
		{Instruction{Op: Add, Dst: 1, Src1: 2, Src2: 3}, []Reg{2, 3}},
		{Instruction{Op: Store, Src1: 4, Src2: 5}, []Reg{4, 5}},
		{Instruction{Op: Beq, Src1: 6, Src2: 7}, []Reg{6, 7}},
	}
	for _, c := range cases {
		srcs, n := c.in.Sources()
		if n != len(c.want) {
			t.Errorf("%v: got %d sources, want %d", c.in, n, len(c.want))
			continue
		}
		for i := 0; i < n; i++ {
			if srcs[i] != c.want[i] {
				t.Errorf("%v: source %d = %v, want %v", c.in, i, srcs[i], c.want[i])
			}
		}
	}
}

func TestEvalALUTable(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, i int64
		want    int64
	}{
		{Add, 2, 3, 0, 5},
		{Sub, 2, 3, 0, -1},
		{Mul, -4, 3, 0, -12},
		{Div, 7, 2, 0, 3},
		{Div, 7, 0, 0, 0}, // division by zero yields 0
		{Div, -7, 2, 0, -3},
		{And, 0b1100, 0b1010, 0, 0b1000},
		{Or, 0b1100, 0b1010, 0, 0b1110},
		{Xor, 0b1100, 0b1010, 0, 0b0110},
		{Shl, 1, 4, 0, 16},
		{Shl, 1, 64, 0, 1},   // shift amount masked to 6 bits
		{Shr, -1, 60, 0, 15}, // logical shift
		{Slt, -1, 0, 0, 1},
		{Slt, 0, 0, 0, 0},
		{AddI, 10, 0, -3, 7},
		{MulI, 10, 0, 3, 30},
		{AndI, 0xff, 0, 0x0f, 0x0f},
		{ShlI, 3, 0, 2, 12},
		{ShrI, 16, 0, 2, 4},
		{LoadI, 99, 99, 42, 42},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.i); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.i, got, c.want)
		}
	}
}

func TestEvalALUPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EvalALU(Load, ...) should panic")
		}
	}()
	EvalALU(Load, 0, 0, 0)
}

func TestBranchTakenTable(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{Beq, 1, 1, true}, {Beq, 1, 2, false},
		{Bne, 1, 1, false}, {Bne, 1, 2, true},
		{Blt, -1, 0, true}, {Blt, 0, 0, false}, {Blt, 1, 0, false},
		{Bge, 0, 0, true}, {Bge, 1, 0, true}, {Bge, -1, 0, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestBranchTakenPanicsOnNonBranch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BranchTaken(Add, ...) should panic")
		}
	}()
	BranchTaken(Add, 0, 0)
}

// Property: Blt and Bge are exact complements, as are Beq and Bne.
func TestBranchComplements(t *testing.T) {
	f := func(a, b int64) bool {
		return BranchTaken(Blt, a, b) != BranchTaken(Bge, a, b) &&
			BranchTaken(Beq, a, b) != BranchTaken(Bne, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Xor is self-inverse and Add/Sub invert each other.
func TestALUAlgebra(t *testing.T) {
	f := func(a, b int64) bool {
		x := EvalALU(Xor, a, b, 0)
		if EvalALU(Xor, x, b, 0) != a {
			return false
		}
		s := EvalALU(Add, a, b, 0)
		return EvalALU(Sub, s, b, 0) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: Nop}, "nop"},
		{Instruction{Op: Halt}, "halt"},
		{Instruction{Op: LoadI, Dst: 3, Imm: -7}, "loadi r3, -7"},
		{Instruction{Op: Load, Dst: 2, Src1: 1, Imm: 8}, "load r2, [r1+8]"},
		{Instruction{Op: Store, Src1: 1, Src2: 4, Imm: -8}, "store r4, [r1-8]"},
		{Instruction{Op: Beq, Src1: 1, Src2: 2, Imm: 5}, "beq r1, r2, @5"},
		{Instruction{Op: Jmp, Imm: 9}, "jmp @9"},
		{Instruction{Op: AddI, Dst: 1, Src1: 2, Imm: 3}, "addi r1, r2, 3"},
		{Instruction{Op: Add, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRegValid(t *testing.T) {
	if !Reg(0).Valid() || !Reg(NumRegs-1).Valid() {
		t.Error("in-range registers should be valid")
	}
	if Reg(NumRegs).Valid() {
		t.Error("out-of-range register should be invalid")
	}
	if got := Reg(5).String(); got != "r5" {
		t.Errorf("Reg(5).String() = %q", got)
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range []Op{Beq, Bne, Blt, Bge, Jmp} {
		if !(Instruction{Op: op}).IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	for _, op := range []Op{Add, Load, Store, Nop, Halt} {
		if (Instruction{Op: op}).IsBranch() {
			t.Errorf("%v should not be a branch", op)
		}
	}
}
