// Package isa defines the register-transfer instruction set executed by the
// simulator: a small RISC-like, 64-bit, load/store architecture with 32
// general-purpose registers.
//
// The ISA is deliberately minimal but complete enough to express the control
// and data behaviour that secure-speculation schemes care about: conditional
// branches (control speculation), register-indirect loads and stores (data
// speculation and dependent-load chains), and plain ALU work (taint
// propagation paths).
package isa

import "fmt"

// NumRegs is the number of architectural general-purpose registers.
const NumRegs = 32

// Reg names an architectural register. R0 is a normal, writable register
// (there is no hardwired zero register; use LOADI to materialise constants).
type Reg uint8

// String returns the conventional "r<N>" register name.
func (r Reg) String() string { return fmt.Sprintf("r%d", r) }

// Valid reports whether the register index is in range.
func (r Reg) Valid() bool { return int(r) < NumRegs }

// Op identifies an operation.
type Op uint8

// Operations. Arithmetic is 64-bit two's complement. Comparisons used by
// branches are signed.
const (
	Nop Op = iota

	// ALU register-register: Dst = Src1 <op> Src2.
	Add
	Sub
	Mul
	Div // Dst = Src1 / Src2; division by zero yields 0 (no traps in this ISA).
	And
	Or
	Xor
	Shl // shift amount is Src2 & 63
	Shr // logical shift right, amount is Src2 & 63
	Slt // set-less-than (signed): Dst = 1 if Src1 < Src2 else 0

	// ALU register-immediate: Dst = Src1 <op> Imm.
	AddI
	MulI
	AndI
	ShlI
	ShrI

	// LoadI materialises a 64-bit immediate: Dst = Imm.
	LoadI

	// Memory: effective address = Src1 + Imm (byte address, 8-byte words).
	Load  // Dst = mem[Src1+Imm]
	Store // mem[Src1+Imm] = Src2

	// Control flow. Branch targets are absolute instruction indices (PCs)
	// held in Imm. Conditional branches compare Src1 against Src2.
	Beq // branch if Src1 == Src2
	Bne // branch if Src1 != Src2
	Blt // branch if Src1 <  Src2 (signed)
	Bge // branch if Src1 >= Src2 (signed)
	Jmp // unconditional jump to Imm

	// Halt stops the program; architecturally it is the last committed
	// instruction.
	Halt

	numOps // sentinel; keep last
)

var opNames = [numOps]string{
	Nop:   "nop",
	Add:   "add",
	Sub:   "sub",
	Mul:   "mul",
	Div:   "div",
	And:   "and",
	Or:    "or",
	Xor:   "xor",
	Shl:   "shl",
	Shr:   "shr",
	Slt:   "slt",
	AddI:  "addi",
	MulI:  "muli",
	AndI:  "andi",
	ShlI:  "shli",
	ShrI:  "shri",
	LoadI: "loadi",
	Load:  "load",
	Store: "store",
	Beq:   "beq",
	Bne:   "bne",
	Blt:   "blt",
	Bge:   "bge",
	Jmp:   "jmp",
	Halt:  "halt",
}

// String returns the assembly mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the op code is defined.
func (o Op) Valid() bool { return o < numOps }

// Kind classifies operations by their pipeline behaviour.
type Kind uint8

// Instruction kinds as seen by the pipeline.
const (
	KindNop Kind = iota
	KindALU
	KindLoad
	KindStore
	KindBranch // conditional branch
	KindJump   // unconditional
	KindHalt
)

// Kind returns the pipeline class of the operation.
func (o Op) Kind() Kind {
	switch o {
	case Nop:
		return KindNop
	case Load:
		return KindLoad
	case Store:
		return KindStore
	case Beq, Bne, Blt, Bge:
		return KindBranch
	case Jmp:
		return KindJump
	case Halt:
		return KindHalt
	default:
		return KindALU
	}
}

// Instruction is one static instruction. Fields that an operation does not
// use are ignored (and should be zero).
type Instruction struct {
	Op   Op
	Dst  Reg   // destination register (ALU, LoadI, Load)
	Src1 Reg   // first source (ALU, Load/Store base, branch lhs)
	Src2 Reg   // second source (ALU, Store data, branch rhs)
	Imm  int64 // immediate / displacement / branch target
}

// HasDst reports whether the instruction writes a destination register.
func (in Instruction) HasDst() bool {
	switch in.Op.Kind() {
	case KindALU, KindLoad:
		return true
	default:
		return false
	}
}

// Sources returns the architectural source registers the instruction reads,
// in a fixed-size array plus a count (avoiding allocation on hot paths).
func (in Instruction) Sources() (srcs [2]Reg, n int) {
	switch in.Op {
	case Nop, LoadI, Jmp, Halt:
		return srcs, 0
	case Load, AddI, MulI, AndI, ShlI, ShrI:
		srcs[0] = in.Src1
		return srcs, 1
	case Store, Beq, Bne, Blt, Bge,
		Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Slt:
		srcs[0], srcs[1] = in.Src1, in.Src2
		return srcs, 2
	default:
		return srcs, 0
	}
}

// IsBranch reports whether the instruction redirects control flow
// conditionally or unconditionally.
func (in Instruction) IsBranch() bool {
	k := in.Op.Kind()
	return k == KindBranch || k == KindJump
}

// String renders the instruction in assembly-like syntax.
func (in Instruction) String() string {
	switch in.Op {
	case Nop:
		return "nop"
	case Halt:
		return "halt"
	case LoadI:
		return fmt.Sprintf("loadi %s, %d", in.Dst, in.Imm)
	case Load:
		return fmt.Sprintf("load %s, [%s%+d]", in.Dst, in.Src1, in.Imm)
	case Store:
		return fmt.Sprintf("store %s, [%s%+d]", in.Src2, in.Src1, in.Imm)
	case Beq, Bne, Blt, Bge:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Imm)
	case Jmp:
		return fmt.Sprintf("jmp @%d", in.Imm)
	case AddI, MulI, AndI, ShlI, ShrI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}

// EvalALU computes the result of an ALU-class operation (including LoadI)
// given its resolved operand values. It panics if called for a non-ALU op.
func EvalALU(op Op, a, b, imm int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case Slt:
		if a < b {
			return 1
		}
		return 0
	case AddI:
		return a + imm
	case MulI:
		return a * imm
	case AndI:
		return a & imm
	case ShlI:
		return a << (uint64(imm) & 63)
	case ShrI:
		return int64(uint64(a) >> (uint64(imm) & 63))
	case LoadI:
		return imm
	default:
		panic(fmt.Sprintf("isa: EvalALU called with non-ALU op %v", op))
	}
}

// BranchTaken evaluates a conditional branch predicate given resolved
// operands. It panics if called for a non-branch op.
func BranchTaken(op Op, a, b int64) bool {
	switch op {
	case Beq:
		return a == b
	case Bne:
		return a != b
	case Blt:
		return a < b
	case Bge:
		return a >= b
	default:
		panic(fmt.Sprintf("isa: BranchTaken called with non-branch op %v", op))
	}
}
