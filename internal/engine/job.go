// Package engine is a job-based execution engine for simulation runs: it
// turns the simulator into a batch platform with a bounded worker pool, an
// in-memory LRU result cache keyed by a canonical fingerprint of each run,
// in-flight deduplication, context cancellation, per-job timeouts and
// aggregate throughput statistics. The paper harness and the doppeld
// service both drive their experiment matrices through it.
package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"doppelganger/sim"
)

// Job is one simulation run: a program under a configuration. Two jobs with
// the same Key are interchangeable — the simulator is deterministic, so the
// engine may serve either from a cached result of the other.
type Job struct {
	// Program is the program image to simulate (required).
	Program *sim.Program
	// Config selects the scheme, address prediction, run bounds and
	// optional core overrides.
	Config sim.Config
	// Checkpoint, when non-nil, makes the run a warm start: the core is
	// rebuilt from the checkpoint's captured state instead of the
	// program's initial state, and Config.MaxInsts counts total committed
	// instructions including the checkpoint's warmup. The checkpoint's
	// digest is part of the cache key — a warm-started run and a cold run
	// are different simulations and must never share a cached result.
	Checkpoint *sim.Checkpoint
	// Observe, when non-empty, requests a contract observation alongside
	// the result: the engine enables trace capture for the run and fills
	// an Observation for the named clauses, returned by SubmitObserved and
	// RunBatchObserved. The canonical clause set is part of the cache key —
	// an observed run carries trace digests a blind run never captured, so
	// the two must not share a cached entry.
	Observe []sim.Clause
	// Timeout bounds this job's wall-clock execution; zero uses the
	// engine's default (which may be none). Timeouts do not contribute
	// to the cache key — they are an execution detail, not an identity.
	Timeout time.Duration
}

// Key canonically identifies a job: a hex digest over the full program
// image and the fully-resolved configuration. Any change to an instruction,
// an initial register or memory word, a run bound, or any core-config field
// (including those reached through Config.Core) produces a different key.
type Key string

// Key derives the job's canonical cache key.
func (j Job) Key() Key {
	h := sha256.New()
	fingerprintProgram(h, j.Program)
	fingerprintConfig(h, j.Config)
	if j.Checkpoint != nil {
		// Folded in only when present, so every pre-checkpoint key (and the
		// result tiers stored under them) is unchanged.
		fmt.Fprintf(h, "|ckpt|%s|", j.Checkpoint.Digest())
	}
	if len(j.Observe) > 0 {
		// Same only-when-present discipline as Checkpoint: blind jobs keep
		// their historical keys.
		io.WriteString(h, "|obs|")
		for _, c := range sim.CanonicalClauses(j.Observe) {
			io.WriteString(h, c.String())
			io.WriteString(h, ",")
		}
		io.WriteString(h, "|")
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// fingerprintProgram writes a canonical encoding of the program image:
// name, entry point, every instruction, initial registers, and the initial
// memory image in sorted address order (map iteration order must not leak
// into the key).
func fingerprintProgram(w io.Writer, p *sim.Program) {
	if p == nil {
		io.WriteString(w, "prog|nil")
		return
	}
	fmt.Fprintf(w, "prog|%s|entry=%d|code=%d|", p.Name, p.Entry, len(p.Code))
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		w.Write(buf[:])
	}
	for _, in := range p.Code {
		put(uint64(in.Op))
		put(uint64(in.Dst))
		put(uint64(in.Src1))
		put(uint64(in.Src2))
		put(uint64(in.Imm))
	}
	for _, r := range p.InitRegs {
		put(uint64(r))
	}
	addrs := make([]uint64, 0, len(p.InitMem))
	for a := range p.InitMem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		put(a)
		put(uint64(p.InitMem[a]))
	}
}

// fingerprintConfig writes a canonical encoding of the run configuration.
// The core configuration is resolved first (nil Core means the default with
// Scheme and AddressPrediction applied), so a job that spells the default
// out explicitly and one that leaves Core nil hash identically, and every
// core field participates in the key. JSON marshalling of a struct is
// deterministic in Go (declaration order), which makes it a convenient
// canonical encoding.
func fingerprintConfig(w io.Writer, cfg sim.Config) {
	eff := resolveCore(cfg)
	enc, err := json.Marshal(eff)
	if err != nil {
		// Config structs are plain exported data; this cannot fail.
		panic(fmt.Sprintf("engine: config fingerprint: %v", err))
	}
	fmt.Fprintf(w, "|cfg|insts=%d|cycles=%d|", cfg.MaxInsts, cfg.MaxCycles)
	w.Write(enc)
}

// resolveCore returns the effective core configuration for a run: the
// explicit override or the paper default, with the top-level scheme and
// address-prediction selections applied (mirroring sim.NewCore).
func resolveCore(cfg sim.Config) sim.CoreConfig {
	var eff sim.CoreConfig
	if cfg.Core != nil {
		eff = *cfg.Core
	} else {
		eff = sim.DefaultCoreConfig()
	}
	eff.Scheme = cfg.Scheme
	eff.AddressPrediction = cfg.AddressPrediction
	return eff
}
