package engine

import (
	"regexp"
	"testing"

	"doppelganger/internal/checkpoint"
	"doppelganger/internal/isa"
	"doppelganger/internal/pipeline"
	"doppelganger/sim"
)

// goldenProgram is a small fixed program image exercising every field the
// fingerprint covers: name, entry, instructions (all operand slots), an
// initial register, and a multi-entry initial memory image.
func goldenProgram() *sim.Program {
	p := &sim.Program{
		Name:  "golden",
		Entry: 1,
		Code: []isa.Instruction{
			{Op: isa.Nop},
			{Op: isa.LoadI, Dst: 1, Imm: 64},
			{Op: isa.Load, Dst: 2, Src1: 1, Imm: 8},
		},
		InitMem: map[uint64]int64{72: -5, 64: 7},
	}
	p.InitRegs[3] = 42
	return p
}

// goldenCheckpoint builds a synthetic checkpoint with fully pinned contents,
// so its digest — and therefore the cache key of any job referencing it — is
// deterministic. The core state is hand-built rather than captured from a
// simulation on purpose: a capture's digest would shift with every timing
// change, but the key encoding must only shift when the encoding itself does.
func goldenCheckpoint(t *testing.T) *sim.Checkpoint {
	t.Helper()
	p := goldenProgram()
	st := &pipeline.CoreState{
		Cycle:       123,
		SeqCtr:      45,
		FetchPC:     1,
		CommittedPC: []uint64{0, 1, 2},
	}
	st.Stats.Committed = 40
	ck, err := checkpoint.New(checkpoint.Meta{
		ProgramName:  p.Name,
		ProgramEntry: p.Entry,
		Code:         p.Code,
		WarmScheme:   "unsafe",
		WarmupInsts:  40,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestKeyGolden pins the canonical cache-key encoding to exact digests.
// These keys are the cluster's sharding function, the persistent result
// tier's record keys, and the coordinator/worker version-skew cross-check:
// a stored result tier written by one build must be readable by the next,
// so an unintentional encoding change must fail loudly here. If you change
// the encoding ON PURPOSE, update these digests AND bump the store format
// version (internal/cluster/store) — old stored keys no longer name the
// same simulations.
func TestKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		job  Job
		want Key
	}{
		{
			name: "nil program, zero config",
			job:  Job{},
			want: "131312a89f192192dbab37d5dbe6e489e214d9f1242ae5e9d568c483f0a2e8a8",
		},
		{
			name: "golden program, zero config",
			job:  Job{Program: goldenProgram()},
			want: "b79cbacfceadd61b943b2561c8d01354371fbacbafeab69d7a6e5cc8b23db491",
		},
		{
			name: "golden program, dom with address prediction",
			job: Job{
				Program: goldenProgram(),
				Config:  sim.Config{Scheme: sim.DoM, AddressPrediction: true},
			},
			want: "204dce054a2c79032968a9d903c8b07d2a38d370e7cd2839f38426e1f2d29652",
		},
		{
			name: "golden program, run bounds",
			job: Job{
				Program: goldenProgram(),
				Config:  sim.Config{MaxInsts: 1000, MaxCycles: 5000},
			},
			want: "c6dcc01827230e1cdd282688cfc3faac25d280294206e7effeb1afd3fb2157cf",
		},
		{
			// The first four cases predate checkpoints and their digests are
			// unchanged: a nil Checkpoint contributes nothing to the key, so
			// cold-run keys (and results stored under them) survive the
			// feature's introduction.
			name: "golden program, warm-started from golden checkpoint",
			job: Job{
				Program:    goldenProgram(),
				Config:     sim.Config{Scheme: sim.DoM, AddressPrediction: true},
				Checkpoint: goldenCheckpoint(t),
			},
			want: "c77f0790d1d7e2d0d40d43683f7e7ff72e2a99bb2ceddd0a8147aff073bb9479",
		},
		{
			// Like Checkpoint, an empty Observe set contributes nothing, so
			// every blind job's key (all cases above) predates and survives
			// observed jobs. The clause set is canonicalised before hashing:
			// listing CTSpec once, twice, or alongside a covered clause in
			// any order yields this same key.
			name: "golden program, full-lattice observation",
			job: Job{
				Program: goldenProgram(),
				Config:  sim.Config{Scheme: sim.DoM, AddressPrediction: true},
				Observe: []sim.Clause{sim.CTSpec},
			},
			want: "d24edbd738db76a9f75f4e7bb1be22a09c4b9ac465ee3f4383339be0c0691a95",
		},
	}
	for _, c := range cases {
		if got := c.job.Key(); got != c.want {
			t.Errorf("%s:\n  got  %s\n  want %s\n(cache-key encoding changed — see test comment before updating)",
				c.name, got, c.want)
		}
	}
}

func TestKeyShape(t *testing.T) {
	hex64 := regexp.MustCompile(`^[0-9a-f]{64}$`)
	if key := (Job{Program: goldenProgram()}).Key(); !hex64.MatchString(string(key)) {
		t.Errorf("key %q is not 64 lowercase hex chars", key)
	}
}

// TestKeyExplicitDefaultCoreMatchesNil pins the resolution rule: a job
// spelling out the default core config hashes identically to one leaving
// Core nil, so callers can't accidentally fork the cache by being explicit.
func TestKeyExplicitDefaultCoreMatchesNil(t *testing.T) {
	core := sim.DefaultCoreConfig()
	implicit := Job{Program: goldenProgram(), Config: sim.Config{Scheme: sim.STT}}
	explicit := Job{Program: goldenProgram(), Config: sim.Config{Scheme: sim.STT, Core: &core}}
	if implicit.Key() != explicit.Key() {
		t.Errorf("explicit default core forked the key:\n  implicit %s\n  explicit %s",
			implicit.Key(), explicit.Key())
	}
}

// TestKeySensitivity checks that each identity-bearing field perturbs the
// key, and that non-identity fields (Timeout) and map iteration order
// do not.
func TestKeySensitivity(t *testing.T) {
	base := Job{Program: goldenProgram()}.Key()

	perturb := map[string]func(*sim.Program){
		"name":      func(p *sim.Program) { p.Name = "golden2" },
		"entry":     func(p *sim.Program) { p.Entry = 0 },
		"opcode":    func(p *sim.Program) { p.Code[2].Op = isa.Nop },
		"immediate": func(p *sim.Program) { p.Code[1].Imm = 65 },
		"register":  func(p *sim.Program) { p.InitRegs[3] = 43 },
		"memory":    func(p *sim.Program) { p.InitMem[64] = 8 },
	}
	for field, mutate := range perturb {
		p := goldenProgram()
		mutate(p)
		if got := (Job{Program: p}).Key(); got == base {
			t.Errorf("perturbing %s did not change the key", field)
		}
	}

	if got := (Job{Program: goldenProgram(), Timeout: 1e9}).Key(); got != base {
		t.Error("Timeout leaked into the key; it is an execution detail, not identity")
	}

	reordered := goldenProgram()
	reordered.InitMem = map[uint64]int64{64: 7, 72: -5}
	if got := (Job{Program: reordered}).Key(); got != base {
		t.Error("InitMem insertion order leaked into the key")
	}

	if got := (Job{Program: goldenProgram(), Config: sim.Config{AddressPrediction: true}}).Key(); got == base {
		t.Error("AddressPrediction did not change the key")
	}

	ck := goldenCheckpoint(t)
	warm := Job{Program: goldenProgram(), Checkpoint: ck}.Key()
	if warm == base {
		t.Error("Checkpoint did not change the key; a warm start must never share a cold run's cached result")
	}
	if again := (Job{Program: goldenProgram(), Checkpoint: ck}).Key(); again != warm {
		t.Error("same checkpoint produced different keys")
	}
	st2 := &pipeline.CoreState{Cycle: 124}
	p := goldenProgram()
	ck2, err := checkpoint.New(checkpoint.Meta{
		ProgramName:  p.Name,
		ProgramEntry: p.Entry,
		Code:         p.Code,
		WarmScheme:   "unsafe",
		WarmupInsts:  40,
	}, st2)
	if err != nil {
		t.Fatal(err)
	}
	if got := (Job{Program: goldenProgram(), Checkpoint: ck2}).Key(); got == warm {
		t.Error("checkpoints with different captured state produced the same key")
	}

	observed := Job{Program: goldenProgram(), Observe: []sim.Clause{sim.CTSpec}}.Key()
	if observed == base {
		t.Error("Observe did not change the key; an observed run must never share a blind run's cached result")
	}
	if got := (Job{Program: goldenProgram(), Observe: []sim.Clause{sim.ArchSeq}}).Key(); got == observed {
		t.Error("different observed clause sets produced the same key")
	}
	canon := Job{Program: goldenProgram(), Observe: []sim.Clause{sim.CTSpec, sim.CTSpec, sim.ArchSeq, sim.CTSpec}}.Key()
	reorderedObs := Job{Program: goldenProgram(), Observe: []sim.Clause{sim.ArchSeq, sim.CTSpec, sim.CTSpec, sim.CTSpec}}.Key()
	if canon != reorderedObs {
		t.Error("clause order/duplication leaked into the key; Observe must canonicalise before hashing")
	}
}
