package engine

import (
	"sync/atomic"
	"time"
)

// Stats is a point-in-time snapshot of engine activity.
type Stats struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Submitted counts Submit calls (including cache hits).
	Submitted uint64 `json:"submitted"`
	// JobsRun counts simulations actually executed to completion.
	JobsRun uint64 `json:"jobs_run"`
	// Errors counts jobs that finished with an error (including
	// cancellations and timeouts).
	Errors uint64 `json:"errors"`
	// CacheHits counts submissions served from the result cache.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts submissions that had to enqueue a run.
	CacheMisses uint64 `json:"cache_misses"`
	// Coalesced counts submissions that attached to an identical
	// already-in-flight job instead of enqueueing a duplicate.
	Coalesced uint64 `json:"coalesced"`
	// CacheEntries is the current number of cached results.
	CacheEntries int `json:"cache_entries"`
	// SimCycles is the total simulated cycles across completed jobs.
	SimCycles uint64 `json:"sim_cycles"`
	// SimWall is the summed wall-clock execution time across workers
	// (exceeds Uptime when the pool runs in parallel).
	SimWall time.Duration `json:"sim_wall_ns"`
	// Uptime is the time since the engine started.
	Uptime time.Duration `json:"uptime_ns"`
	// CyclesPerSec is the aggregate simulation throughput: SimCycles
	// divided by SimWall.
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// counters holds the engine's atomic event counts.
type counters struct {
	submitted atomic.Uint64
	jobsRun   atomic.Uint64
	errors    atomic.Uint64
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64
	coalesced atomic.Uint64
	simCycles atomic.Uint64
	simWallNS atomic.Int64
}

// snapshot assembles a Stats from the counters.
func (c *counters) snapshot(workers, cacheEntries int, uptime time.Duration) Stats {
	s := Stats{
		Workers:      workers,
		Submitted:    c.submitted.Load(),
		JobsRun:      c.jobsRun.Load(),
		Errors:       c.errors.Load(),
		CacheHits:    c.cacheHits.Load(),
		CacheMisses:  c.cacheMiss.Load(),
		Coalesced:    c.coalesced.Load(),
		CacheEntries: cacheEntries,
		SimCycles:    c.simCycles.Load(),
		SimWall:      time.Duration(c.simWallNS.Load()),
		Uptime:       uptime,
	}
	if s.SimWall > 0 {
		s.CyclesPerSec = float64(s.SimCycles) / s.SimWall.Seconds()
	}
	return s
}
