package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"doppelganger/sim"
)

// TestCancellationMidRunDoesNotPoisonCache cancels a job while the worker
// is actively simulating it, then resubmits the identical job (same cache
// key) with a live context. The cancelled attempt must surface
// context.Canceled, must not be recorded as a completed job, and — the
// point — must not leave anything in the result cache: the resubmission
// has to simulate fresh and succeed, after which a third submission is a
// genuine cache hit.
func TestCancellationMidRunDoesNotPoisonCache(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	// A spin loop bounded by instruction count: long enough to still be
	// mid-run when we cancel (tens of stepChunk slices), short enough
	// that the fresh rerun finishes quickly.
	job := Job{Program: spinProgram(t), Config: sim.Config{MaxInsts: 2_000_000}}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Submit(ctx, job)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the worker start simulating
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled submit error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled submission did not return")
	}
	if st := e.Stats(); st.JobsRun != 0 {
		t.Fatalf("JobsRun = %d after cancellation, want 0", st.JobsRun)
	}

	// Identical job, live context: must miss the cache and succeed.
	res, err := e.Submit(context.Background(), job)
	if err != nil {
		t.Fatalf("resubmit after cancellation failed: %v", err)
	}
	if res.Insts < job.Config.MaxInsts {
		t.Fatalf("resubmit committed %d instructions, want >= %d", res.Insts, job.Config.MaxInsts)
	}
	st := e.Stats()
	if st.JobsRun != 1 {
		t.Fatalf("JobsRun = %d after resubmit, want 1", st.JobsRun)
	}
	if st.CacheHits != 0 {
		t.Fatalf("CacheHits = %d, want 0 — the cancelled attempt must not populate the cache", st.CacheHits)
	}

	// Now the success is cached: a third submission is a pure hit.
	res2, err := e.Submit(context.Background(), job)
	if err != nil {
		t.Fatalf("cached submit failed: %v", err)
	}
	if res2.Checksum != res.Checksum {
		t.Fatal("cached result differs from the fresh run")
	}
	st = e.Stats()
	if st.CacheHits != 1 || st.JobsRun != 1 {
		t.Fatalf("after cached submit: CacheHits = %d, JobsRun = %d, want 1 and 1", st.CacheHits, st.JobsRun)
	}
}
