package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"doppelganger/internal/obs"
	"doppelganger/sim"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine.
type Options struct {
	// Workers is the worker-pool size; values <= 0 use
	// runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize bounds the LRU result cache in entries. Zero uses
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// JobTimeout bounds each job's wall-clock execution unless the job
	// carries its own Timeout. Zero means no limit.
	JobTimeout time.Duration
	// Metrics, when non-nil, receives engine activity (queue depth, cache
	// hits and misses, job latency) and every executed job's simulator
	// metrics (live histograms plus end-of-run counters). The registry
	// never influences results or cache keys.
	Metrics *obs.Metrics
}

// DefaultCacheSize is the result-cache capacity when Options.CacheSize is
// zero. A full paper sweep is 8 cells per workload, so this comfortably
// holds many sweeps' worth of results.
const DefaultCacheSize = 4096

// Engine executes simulation jobs on a bounded worker pool with result
// caching and in-flight deduplication. It is safe for concurrent use.
type Engine struct {
	workers    int
	jobTimeout time.Duration
	cache      *lruCache
	queue      chan *task
	quit       chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup

	mu       sync.Mutex
	inflight map[Key]*task

	start time.Time
	ctr   counters
	met   *engineMetrics
}

// engineMetrics caches the engine's registry handles.
type engineMetrics struct {
	reg        *obs.Metrics
	queueDepth *obs.Gauge
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	jobs       *obs.Counter
	jobErrors  *obs.Counter
	jobLatency *obs.Histogram
}

// jobLatencyBuckets are milliseconds; paper-harness jobs run from
// sub-millisecond (cached microbenchmarks) to tens of seconds (full
// workload sweeps).
var jobLatencyBuckets = []uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

func newEngineMetrics(m *obs.Metrics) *engineMetrics {
	if m == nil {
		return nil
	}
	return &engineMetrics{
		reg:        m,
		queueDepth: m.Gauge("engine_queue_depth", "Submissions waiting for a free worker."),
		cacheHits:  m.Counter("engine_cache_hits_total", "Submissions served from the result cache."),
		cacheMiss:  m.Counter("engine_cache_misses_total", "Submissions that had to enqueue a run."),
		jobs:       m.Counter("engine_jobs_total", "Simulations executed to completion."),
		jobErrors:  m.Counter("engine_job_errors_total", "Jobs that finished with an error."),
		jobLatency: m.Histogram("engine_job_duration_ms", "Wall-clock job execution time in milliseconds.", jobLatencyBuckets),
	}
}

// task is one queued execution; done is closed once res/err are set.
type task struct {
	job  Job
	key  Key
	ctx  context.Context
	done chan struct{}
	res  sim.Result
	obs  sim.Observation
	err  error
}

// New starts an engine and its worker pool.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	e := &Engine{
		workers:    workers,
		jobTimeout: opts.JobTimeout,
		cache:      newLRUCache(cacheSize),
		queue:      make(chan *task),
		quit:       make(chan struct{}),
		inflight:   make(map[Key]*task),
		start:      time.Now(),
		met:        newEngineMetrics(opts.Metrics),
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close stops the worker pool and waits for in-progress jobs to wind down.
// Submissions waiting on queued-but-unstarted jobs return ErrClosed.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// Stats returns a snapshot of engine activity.
func (e *Engine) Stats() Stats {
	return e.ctr.snapshot(e.workers, e.cache.Len(), time.Since(e.start))
}

// Submit runs one job and returns its result. Identical jobs (same Key) hit
// the result cache, and an identical job already executing is joined rather
// than duplicated. Submit blocks until the job completes, ctx is cancelled,
// or the engine closes.
func (e *Engine) Submit(ctx context.Context, job Job) (sim.Result, error) {
	res, _, err := e.SubmitObserved(ctx, job)
	return res, err
}

// SubmitObserved is Submit for jobs that also request a contract
// observation (Job.Observe). The observation is captured by the executing
// worker and cached alongside the result; for a job with an empty Observe
// set it is zero.
func (e *Engine) SubmitObserved(ctx context.Context, job Job) (sim.Result, sim.Observation, error) {
	if job.Program == nil {
		return sim.Result{}, sim.Observation{}, errors.New("engine: job has no program")
	}
	e.ctr.submitted.Add(1)
	key := job.Key()
	if res, obsv, ok := e.cache.Get(key); ok {
		e.ctr.cacheHits.Add(1)
		if e.met != nil {
			e.met.cacheHits.Inc()
		}
		return res, obsv, nil
	}
	e.ctr.cacheMiss.Add(1)
	if e.met != nil {
		e.met.cacheMiss.Inc()
	}

	e.mu.Lock()
	if t, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		e.ctr.coalesced.Add(1)
		res, obsv, err := e.wait(ctx, t)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The joined task died of its owner's context, not ours. Its
			// failure is not this submission's answer (and is never
			// cached), so run the job properly under the live context.
			return e.SubmitObserved(ctx, job)
		}
		return res, obsv, err
	}
	t := &task{job: job, key: key, ctx: ctx, done: make(chan struct{})}
	e.inflight[key] = t
	e.mu.Unlock()

	if e.met != nil {
		e.met.queueDepth.Inc()
	}
	select {
	case e.queue <- t:
	case <-ctx.Done():
		if e.met != nil {
			e.met.queueDepth.Dec()
		}
		e.abandon(t)
		return sim.Result{}, sim.Observation{}, ctx.Err()
	case <-e.quit:
		if e.met != nil {
			e.met.queueDepth.Dec()
		}
		e.abandon(t)
		return sim.Result{}, sim.Observation{}, ErrClosed
	}
	return e.wait(ctx, t)
}

// wait blocks until the task settles or the caller gives up.
func (e *Engine) wait(ctx context.Context, t *task) (sim.Result, sim.Observation, error) {
	select {
	case <-t.done:
		return t.res, t.obs, t.err
	case <-ctx.Done():
		return sim.Result{}, sim.Observation{}, ctx.Err()
	case <-e.quit:
		return sim.Result{}, sim.Observation{}, ErrClosed
	}
}

// abandon removes a never-enqueued task from the in-flight index so a later
// identical submission does not join a task no worker will ever run.
func (e *Engine) abandon(t *task) {
	e.mu.Lock()
	if cur, ok := e.inflight[t.key]; ok && cur == t {
		delete(e.inflight, t.key)
	}
	e.mu.Unlock()
}
