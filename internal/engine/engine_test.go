package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"doppelganger/internal/workload"
	"doppelganger/sim"
)

func testProgram(t *testing.T, name string) *sim.Program {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return w.Build(workload.ScaleTest)
}

// spinProgram runs forever (a branch to itself); only a cycle bound or a
// cancellation stops it.
func spinProgram(t *testing.T) *sim.Program {
	t.Helper()
	p, err := sim.Assemble("spin", "loop:\n  beq r0, r0, loop\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKeyStability(t *testing.T) {
	prog := testProgram(t, "stream")
	base := Job{Program: prog, Config: sim.Config{Scheme: sim.DoM, AddressPrediction: true}}
	if base.Key() != base.Key() {
		t.Fatal("key is not deterministic across calls")
	}
	if got := (Job{Program: prog, Config: base.Config, Timeout: time.Hour}).Key(); got != base.Key() {
		t.Error("timeout must not contribute to the key")
	}

	// A nil Core must hash like an explicitly spelled-out default.
	def := sim.DefaultCoreConfig()
	explicit := Job{Program: prog, Config: sim.Config{Scheme: sim.DoM, AddressPrediction: true, Core: &def}}
	if explicit.Key() != base.Key() {
		t.Error("explicit default core config should hash identically to nil")
	}

	mutations := map[string]Job{
		"scheme":    {Program: prog, Config: sim.Config{Scheme: sim.STT, AddressPrediction: true}},
		"ap":        {Program: prog, Config: sim.Config{Scheme: sim.DoM}},
		"max_insts": {Program: prog, Config: sim.Config{Scheme: sim.DoM, AddressPrediction: true, MaxInsts: 1000}},
		"max_cycles": {Program: prog, Config: sim.Config{Scheme: sim.DoM, AddressPrediction: true,
			MaxCycles: 1 << 30}},
		"program": {Program: testProgram(t, "pointer_chase"),
			Config: sim.Config{Scheme: sim.DoM, AddressPrediction: true}},
	}
	cc := sim.DefaultCoreConfig()
	cc.ROBSize++
	mutations["core_field"] = Job{Program: prog,
		Config: sim.Config{Scheme: sim.DoM, AddressPrediction: true, Core: &cc}}

	seen := map[Key]string{base.Key(): "base"}
	for name, j := range mutations {
		k := j.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

func TestCacheHitAndStats(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	job := Job{Program: testProgram(t, "matrix_blocked"), Config: sim.Config{Scheme: sim.NDAP}}
	first, err := e.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached result differs from the original")
	}
	st := e.Stats()
	if st.JobsRun != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = run %d, hits %d, misses %d; want 1, 1, 1",
			st.JobsRun, st.CacheHits, st.CacheMisses)
	}
	if st.SimCycles != first.Cycles {
		t.Errorf("SimCycles = %d, want %d", st.SimCycles, first.Cycles)
	}
	if st.CacheEntries != 1 {
		t.Errorf("CacheEntries = %d, want 1", st.CacheEntries)
	}
}

// TestParallelMatchesSerial is the determinism guarantee: a pool of N
// workers must reproduce sim.Run exactly, field for field.
func TestParallelMatchesSerial(t *testing.T) {
	prog := testProgram(t, "tree_search")
	var jobs []Job
	for _, s := range []sim.Scheme{sim.Unsafe, sim.DoM} {
		for _, ap := range []bool{false, true} {
			jobs = append(jobs, Job{Program: prog, Config: sim.Config{Scheme: s, AddressPrediction: ap}})
		}
	}
	e := New(Options{Workers: 4})
	defer e.Close()
	parallel, err := e.RunBatch(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		serial, err := sim.Run(j.Program, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel[i]) {
			t.Errorf("job %d (%v ap=%v): parallel result diverges from serial\nserial:   %+v\nparallel: %+v",
				i, j.Config.Scheme, j.Config.AddressPrediction, serial, parallel[i])
		}
	}
}

func TestRunBatchOrderedCallbacks(t *testing.T) {
	prog := testProgram(t, "stream")
	var jobs []Job
	for _, s := range []sim.Scheme{sim.Unsafe, sim.NDAP, sim.STT, sim.DoM} {
		for _, ap := range []bool{false, true} {
			jobs = append(jobs, Job{Program: prog, Config: sim.Config{Scheme: s, AddressPrediction: ap}})
		}
	}
	e := New(Options{Workers: 4})
	defer e.Close()
	var order []int
	if _, err := e.RunBatch(context.Background(), jobs, func(i int, _ sim.Result, err error) {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
		order = append(order, i)
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("callback order = %v, want ascending indices", order)
		}
	}
	if len(order) != len(jobs) {
		t.Fatalf("%d callbacks for %d jobs", len(order), len(jobs))
	}
}

// TestCancellationStopsQueuedJobs submits more eternal jobs than workers
// and cancels: submissions must return promptly and queued jobs must not
// simulate after the running one settles.
func TestCancellationStopsQueuedJobs(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	spin := spinProgram(t)
	ctx, cancel := context.WithCancel(context.Background())

	const n = 4
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		// Distinct MaxInsts values defeat key-based coalescing so the
		// queue really holds distinct jobs.
		job := Job{Program: spin, Config: sim.Config{MaxInsts: uint64(1 << 40 << i)}}
		go func() {
			_, err := e.Submit(ctx, job)
			errc <- err
		}()
	}

	time.Sleep(50 * time.Millisecond) // let the worker start spinning
	cancel()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("submit error = %v, want context.Canceled", err)
			}
		case <-deadline:
			t.Fatal("cancelled submissions did not return promptly")
		}
	}
	if st := e.Stats(); st.JobsRun != 0 {
		t.Errorf("%d jobs ran to completion despite cancellation", st.JobsRun)
	}
}

func TestJobTimeout(t *testing.T) {
	e := New(Options{Workers: 1, JobTimeout: 50 * time.Millisecond})
	defer e.Close()
	_, err := e.Submit(context.Background(), Job{Program: spinProgram(t)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if st := e.Stats(); st.Errors != 1 {
		t.Errorf("Errors = %d, want 1", st.Errors)
	}
}

func TestCycleLimitError(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	_, err := e.Submit(context.Background(), Job{
		Program: spinProgram(t),
		Config:  sim.Config{MaxCycles: 10 * stepChunk},
	})
	if err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Fatalf("error = %v, want cycle-limit error", err)
	}
}

func TestInflightCoalescing(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	job := Job{Program: testProgram(t, "hash_irregular"), Config: sim.Config{Scheme: sim.STT}}
	const n = 4
	results := make(chan sim.Result, n)
	for i := 0; i < n; i++ {
		go func() {
			r, err := e.Submit(context.Background(), job)
			if err != nil {
				t.Error(err)
			}
			results <- r
		}()
	}
	var first sim.Result
	for i := 0; i < n; i++ {
		r := <-results
		if i == 0 {
			first = r
		} else if !reflect.DeepEqual(first, r) {
			t.Error("coalesced submissions returned different results")
		}
	}
	st := e.Stats()
	if st.JobsRun+st.Coalesced+st.CacheHits != n || st.JobsRun < 1 {
		t.Errorf("stats = %+v: want %d submissions accounted for with >= 1 run", st, n)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", sim.Result{Cycles: 1}, sim.Observation{})
	c.Put("b", sim.Result{Cycles: 2}, sim.Observation{})
	if _, _, ok := c.Get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.Put("c", sim.Result{Cycles: 3}, sim.Observation{}) // evicts b (least recently used)
	if _, _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []Key{"a", "c"} {
		if _, _, ok := c.Get(k); !ok {
			t.Errorf("%s should be cached", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestSubmitNilProgram(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	if _, err := e.Submit(context.Background(), Job{}); err == nil {
		t.Fatal("nil program should fail")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Close()
	_, err := e.Submit(context.Background(), Job{Program: spinProgram(t)})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("error = %v, want ErrClosed", err)
	}
}

// TestCheckpointJob exercises the warm-start path through the engine: a
// checkpoint-bearing job restores instead of cold-starting, reproduces the
// cold run's architectural result, and caches under its own key.
func TestCheckpointJob(t *testing.T) {
	prog := testProgram(t, "stream")
	ck, err := sim.Snapshot(prog, sim.Config{}, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	defer e.Close()

	cfg := sim.Config{Scheme: sim.STT, AddressPrediction: true}
	cold, err := e.Submit(context.Background(), Job{Program: prog, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Submit(context.Background(), Job{Program: prog, Config: cfg, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Checksum != cold.Checksum || warm.Insts != cold.Insts {
		t.Errorf("warm-started job diverged architecturally: cold %+v, warm %+v", cold, warm)
	}
	if st := e.Stats(); st.JobsRun != 2 {
		t.Errorf("JobsRun = %d, want 2 — the warm and cold jobs must not share a cache entry", st.JobsRun)
	}
	// Resubmitting the warm job is a cache hit.
	if _, err := e.Submit(context.Background(), Job{Program: prog, Config: cfg, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.JobsRun != 2 || st.CacheHits != 1 {
		t.Errorf("stats after resubmit = run %d, hits %d; want 2, 1", st.JobsRun, st.CacheHits)
	}
}
