package engine

import (
	"container/list"
	"sync"

	"doppelganger/sim"
)

// lruCache is a bounded, mutex-protected least-recently-used result cache.
// A capacity of zero or less disables caching entirely (every Get misses,
// every Put is dropped).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
}

type lruEntry struct {
	key Key
	res sim.Result
	// obs is the run's contract observation for observed jobs (Job.Observe
	// non-empty; the clause set is part of the key, so a hit always carries
	// the observation the caller asked for). Zero for blind jobs.
	obs sim.Observation
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}
}

// Get returns the cached result (and, for observed jobs, its observation)
// for key, promoting it to most recently used.
func (c *lruCache) Get(key Key) (sim.Result, sim.Observation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return sim.Result{}, sim.Observation{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*lruEntry)
	return e.res, e.obs, true
}

// Put inserts or refreshes a result, evicting the least recently used entry
// when over capacity.
func (c *lruCache) Put(key Key, res sim.Result, obs sim.Observation) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		e.res, e.obs = res, obs
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res, obs: obs})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached results.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
