package engine

import (
	"container/list"
	"sync"

	"doppelganger/sim"
)

// lruCache is a bounded, mutex-protected least-recently-used result cache.
// A capacity of zero or less disables caching entirely (every Get misses,
// every Put is dropped).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
}

type lruEntry struct {
	key Key
	res sim.Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}
}

// Get returns the cached result for key, promoting it to most recently
// used.
func (c *lruCache) Get(key Key) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return sim.Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// Put inserts or refreshes a result, evicting the least recently used entry
// when over capacity.
func (c *lruCache) Put(key Key, res sim.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached results.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
