package engine

import (
	"context"
	"fmt"
	"time"

	"doppelganger/sim"
)

// stepChunk is how many cycles a worker simulates between cancellation
// checks. At the simulator's typical hundreds of kilocycles per millisecond
// this bounds cancellation latency to well under a second without touching
// the hot loop itself.
const stepChunk = 1 << 16

// worker drains the queue until the engine closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case t := <-e.queue:
			e.execute(t)
		}
	}
}

// execute runs one task, settles it, and publishes the result.
func (e *Engine) execute(t *task) {
	if e.met != nil {
		e.met.queueDepth.Dec()
	}
	if err := t.ctx.Err(); err != nil {
		// The submitter gave up while the task sat in the queue; settle
		// without simulating so cancellation stops queued work promptly.
		t.err = err
		e.ctr.errors.Add(1)
		e.finish(t)
		return
	}
	start := time.Now()
	res, obsv, err := e.runJob(t.ctx, t.job)
	elapsed := time.Since(start)
	e.ctr.simWallNS.Add(elapsed.Nanoseconds())
	t.res, t.obs, t.err = res, obsv, err
	if err != nil {
		e.ctr.errors.Add(1)
		if e.met != nil {
			e.met.jobErrors.Inc()
		}
	} else {
		e.ctr.jobsRun.Add(1)
		e.ctr.simCycles.Add(res.Cycles)
		e.cache.Put(t.key, res, obsv)
		if e.met != nil {
			e.met.jobs.Inc()
			sim.RecordMetrics(e.met.reg, res)
		}
	}
	if e.met != nil {
		e.met.jobLatency.Observe(uint64(elapsed.Milliseconds()))
	}
	e.finish(t)
}

// finish removes the task from the in-flight index and wakes all waiters.
func (e *Engine) finish(t *task) {
	e.mu.Lock()
	if cur, ok := e.inflight[t.key]; ok && cur == t {
		delete(e.inflight, t.key)
	}
	e.mu.Unlock()
	close(t.done)
}

// runJob simulates a job to completion. The run is identical to sim.Run —
// Core.Run enforces the instruction and cycle bounds with the same checks —
// but proceeds in stepChunk-cycle slices so the worker can observe context
// cancellation and the job timeout between slices. Jobs with a non-empty
// Observe set additionally get a contract observation captured from the
// finished core, exactly as sim.Observe would have.
func (e *Engine) runJob(ctx context.Context, job Job) (sim.Result, sim.Observation, error) {
	timeout := job.Timeout
	if timeout == 0 {
		timeout = e.jobTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var core *sim.Core
	var err error
	if job.Checkpoint != nil {
		core, _, err = sim.NewCoreFromCheckpoint(job.Program, job.Config, job.Checkpoint)
	} else {
		core, err = sim.NewCore(job.Program, job.Config)
	}
	if err != nil {
		return sim.Result{}, sim.Observation{}, err
	}
	if e.met != nil {
		// Live histograms (shadow lifetime, load latency, occupancy) and
		// cache hit/miss counters; purely observational, so the cached
		// result stays interchangeable with an unobserved run's.
		core.SetMetrics(e.met.reg)
	}
	if len(job.Observe) > 0 && sim.ClausesNeedTraces(job.Observe) {
		core.EnableObsTraces()
	}
	maxCycles := job.Config.MaxCycles
	if maxCycles == 0 {
		maxCycles = sim.DefaultMaxCycles
	}
	for {
		if err := ctx.Err(); err != nil {
			return sim.Result{}, sim.Observation{}, fmt.Errorf("engine: %q under %v at cycle %d: %w",
				job.Program.Name, job.Config.Scheme, core.Cycle(), err)
		}
		target := core.Cycle() + stepChunk
		if target > maxCycles {
			target = maxCycles
		}
		err := core.Run(job.Config.MaxInsts, target)
		if err == nil {
			// Halted or hit the instruction bound.
			break
		}
		if core.Cycle() >= maxCycles {
			// The genuine cycle budget, not just this slice's target.
			return sim.Result{}, sim.Observation{}, fmt.Errorf("engine: %q under %v: %w",
				job.Program.Name, job.Config.Scheme, err)
		}
	}
	res := sim.Summarize(job.Program, job.Config, core)
	var obsv sim.Observation
	if len(job.Observe) > 0 {
		sim.CaptureObservation(&obsv, core, job.Program, job.Observe...)
	}
	return res, obsv, nil
}
