package engine

import (
	"context"
	"errors"
	"sync"

	"doppelganger/sim"
)

// RunBatch submits every job concurrently (parallelism bounded by the
// worker pool) and waits for all of them. Results are returned positionally.
//
// onDone, when non-nil, is invoked exactly once per job — serialized, and
// in job-index order (job i's callback fires only after 0..i-1 have) — so
// callers can stream progress or fill ordered output without their own
// locking, and a batch's observable output is deterministic regardless of
// how execution interleaves across workers.
//
// The first job failure cancels the rest of the batch. The returned error
// is the lowest-indexed genuine failure; cancellations induced by it are
// reported to onDone but never mask it.
func (e *Engine) RunBatch(ctx context.Context, jobs []Job, onDone func(i int, res sim.Result, err error)) ([]sim.Result, error) {
	var wrapped func(i int, res sim.Result, obs sim.Observation, err error)
	if onDone != nil {
		wrapped = func(i int, res sim.Result, _ sim.Observation, err error) { onDone(i, res, err) }
	}
	results, _, err := e.runBatch(ctx, jobs, wrapped)
	return results, err
}

// RunBatchObserved is RunBatch for jobs that request contract observations
// (Job.Observe): observations are returned positionally alongside the
// results, with the same ordered-callback discipline. Jobs with an empty
// Observe set get a zero Observation.
func (e *Engine) RunBatchObserved(ctx context.Context, jobs []Job, onDone func(i int, res sim.Result, obs sim.Observation, err error)) ([]sim.Result, []sim.Observation, error) {
	return e.runBatch(ctx, jobs, onDone)
}

func (e *Engine) runBatch(ctx context.Context, jobs []Job, onDone func(i int, res sim.Result, obs sim.Observation, err error)) ([]sim.Result, []sim.Observation, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]sim.Result, len(jobs))
	obses := make([]sim.Observation, len(jobs))
	errs := make([]error, len(jobs))
	settled := make([]bool, len(jobs))
	next := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, obsv, err := e.SubmitObserved(ctx, jobs[i])
			mu.Lock()
			defer mu.Unlock()
			results[i], obses[i], errs[i], settled[i] = res, obsv, err, true
			if err != nil {
				cancel()
			}
			// Flush the completed prefix in order (a reorder buffer for
			// callbacks).
			for next < len(jobs) && settled[next] {
				if onDone != nil {
					onDone(next, results[next], obses[next], errs[next])
				}
				next++
			}
		}(i)
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			// Prefer the root cause over knock-on cancellations.
			firstErr = err
			break
		}
	}
	return results, obses, firstErr
}
