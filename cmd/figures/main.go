// Command figures runs the full experiment matrix and regenerates every
// table and figure of the paper's evaluation:
//
//	figures               # everything, full scale
//	figures -scale test   # quick (small workload instances)
//	figures -only fig6    # a single artifact: table1, fig1, fig6, fig7, fig8, baselineap
//	figures -workloads stream,pointer_chase
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"doppelganger/internal/harness"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

func main() {
	scale := flag.String("scale", "full", "workload scale: full or test")
	only := flag.String("only", "", "render one artifact: table1, fig1, fig6, fig7, fig8, baselineap, extensions")
	names := flag.String("workloads", "", "comma-separated workload subset (default all)")
	verify := flag.Bool("verify", true, "cross-check architectural state against the reference interpreter")
	quiet := flag.Bool("quiet", false, "suppress per-run progress lines")
	parallel := flag.Int("parallel", 0, "engine worker-pool size for the sweep (0 = one per CPU)")
	csvPath := flag.String("csv", "", "also export the full matrix as CSV to this file")
	metricsPath := flag.String("metrics", "", "export sweep metrics in Prometheus text format to this file (\"-\" = stdout)")
	check := flag.Bool("check", false, "run the qualitative shape checks and exit non-zero on failure")
	warmup := flag.Uint64("warmup", 0, "warm-start: snapshot each workload once after N committed instructions and fork every scheme cell from it (0 = cold)")
	flag.Parse()

	var met *sim.Metrics
	if *metricsPath != "" {
		met = sim.NewMetrics()
	}
	writeMetrics := func() {
		if met == nil {
			return
		}
		out := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := met.WritePrometheus(out); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	var runOpts []sim.RunOption
	if met != nil {
		runOpts = append(runOpts, sim.WithMetrics(met))
	}

	if *only == "table1" {
		harness.PrintTable1(os.Stdout)
		return
	}
	if len(*only) > 12 && (*only)[:12] == "sensitivity-" {
		sc := workload.ScaleFull
		if *scale == "test" {
			sc = workload.ScaleTest
		}
		name := "stream"
		if *names != "" {
			name = strings.Split(*names, ",")[0]
		}
		axis := (*only)[12:]
		points, err := harness.RunSensitivity(axis, name, sc, runOpts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		harness.PrintSensitivity(os.Stdout, axis, name, points)
		writeMetrics()
		return
	}
	if *only == "extensions" {
		sc := workload.ScaleFull
		if *scale == "test" {
			sc = workload.ScaleTest
		}
		name := "stream"
		if *names != "" {
			name = strings.Split(*names, ",")[0]
		}
		rows, err := harness.RunExtensions(name, sc, runOpts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		harness.PrintExtensions(os.Stdout, name, rows)
		writeMetrics()
		return
	}

	var sc workload.Scale
	switch *scale {
	case "full":
		sc = workload.ScaleFull
	case "test":
		sc = workload.ScaleTest
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	opts := harness.Options{Scale: sc, Verify: *verify, Parallelism: *parallel, Metrics: met, WarmupInsts: *warmup}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *names != "" {
		opts.Workloads = strings.Split(*names, ",")
	}
	m, err := harness.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	writeMetrics()

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := harness.WriteCSV(f, m); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if *check {
		if failures := harness.PrintShapeChecks(os.Stdout, harness.CheckShape(m)); failures > 0 {
			os.Exit(1)
		}
		return
	}

	artifacts := []struct {
		name  string
		print func()
	}{
		{"table1", func() { harness.PrintTable1(os.Stdout) }},
		{"fig1", func() { harness.PrintFigure1(os.Stdout, m) }},
		{"fig6", func() { harness.PrintFigure6(os.Stdout, m) }},
		{"fig7", func() { harness.PrintFigure7(os.Stdout, m) }},
		{"fig8", func() { harness.PrintFigure8(os.Stdout, m) }},
		{"baselineap", func() { harness.PrintBaselineAP(os.Stdout, m) }},
	}
	found := false
	for _, a := range artifacts {
		if *only == "" || *only == a.name {
			a.print()
			fmt.Println()
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "figures: unknown artifact %q\n", *only)
		os.Exit(2)
	}
}
