package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-target", "http://x:1", "-mode", "run", "-duration", "1s",
		"-concurrency", "3", "-workloads", " a, b ,", "-schemes", "dom",
		"-ap", "on", "-rps", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Concurrency != 3 || cfg.RPS != 7 || cfg.AP != "on" {
		t.Errorf("cfg = %+v", cfg)
	}
	if len(cfg.Workloads) != 2 || cfg.Workloads[1] != "b" {
		t.Errorf("workloads = %v, want [a b]", cfg.Workloads)
	}

	for _, bad := range [][]string{
		{"-mode", "flood"},
		{"-concurrency", "0"},
		{"-workloads", ""},
		{"-ap", "maybe"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) accepted", bad)
		}
	}
}

// TestBenchAgainstFakeCoordinator drives the real bench loop against a
// coordinator-shaped stub that alternates tiers and throttles one in four
// requests, then checks the report's accounting.
func TestBenchAgainstFakeCoordinator(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if !strings.HasPrefix(r.Header.Get("X-Doppel-Client"), "bench-test-") {
			t.Errorf("missing client tag, got %q", r.Header.Get("X-Doppel-Client"))
		}
		var spec struct {
			Workload string `json:"workload"`
		}
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.Workload == "" {
			t.Errorf("bad request body: %v", err)
		}
		switch i := n.Add(1); {
		case i%4 == 0:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
		case i%2 == 0:
			json.NewEncoder(w).Encode(map[string]any{"source": "memory", "result": map[string]any{"cycles": 1}})
		default:
			json.NewEncoder(w).Encode(map[string]any{"source": "computed", "result": map[string]any{"cycles": 1}})
		}
	}))
	defer ts.Close()

	rep := runBench(context.Background(), config{
		Target:      ts.URL,
		Mode:        "run",
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		Workloads:   []string{"stream"},
		Schemes:     []string{"unsafe", "dom"},
		AP:          "both",
		Scale:       "test",
		Client:      "bench-test",
		Seed:        1,
	})
	if rep.Completed == 0 {
		t.Fatal("no completed requests against fake coordinator")
	}
	if rep.Limited == 0 {
		t.Error("429s were served but not counted")
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d, want 0", rep.Failed)
	}
	if rep.RetryAfterMax != 2*time.Second {
		t.Errorf("RetryAfterMax = %v, want 2s", rep.RetryAfterMax)
	}
	if rep.Sources["memory"] == 0 || rep.Sources["computed"] == 0 {
		t.Errorf("sources = %v, want both memory and computed", rep.Sources)
	}
	if len(rep.Latencies) != rep.Completed {
		t.Errorf("latencies %d != completed %d", len(rep.Latencies), rep.Completed)
	}

	var sb strings.Builder
	rep.write(&sb)
	out := sb.String()
	for _, want := range []string{"p50=", "429=", "memory=", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := percentile(sorted, 99); got != 9 {
		t.Errorf("p99 = %v, want 9", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %v, want 0", got)
	}
}

// TestBenchPacing checks -rps actually paces: at 20 rps for ~500ms the
// bench should complete roughly 10 requests, not thousands.
func TestBenchPacing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"result": map[string]any{"cycles": 1}})
	}))
	defer ts.Close()
	rep := runBench(context.Background(), config{
		Target:      ts.URL,
		Mode:        "run",
		Duration:    500 * time.Millisecond,
		Concurrency: 4,
		RPS:         20,
		Workloads:   []string{"stream"},
		Schemes:     []string{"unsafe"},
		AP:          "off",
		Scale:       "test",
		Client:      "bench-test",
	})
	if rep.Completed == 0 || rep.Completed > 30 {
		t.Errorf("completed = %d with 20 rps over 500ms, want ~10", rep.Completed)
	}
}
