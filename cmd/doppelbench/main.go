// Command doppelbench is a load generator for doppeld (any role): it fires
// a configurable mix of /v1/run requests — or repeated /v1/sweep matrices —
// at a target for a fixed duration and reports throughput, a latency
// distribution (p50/p90/p99 plus an ASCII histogram), result-tier sources,
// and admission-control behaviour (429s and Retry-After).
//
//	doppelbench -target http://127.0.0.1:9000 -duration 10s -concurrency 8
//	doppelbench -target http://127.0.0.1:9000 -rps 50 \
//	    -workloads stream,pointer_chase -schemes unsafe,dom
//	doppelbench -target http://127.0.0.1:9000 -mode sweep -concurrency 2
//
// Each logical client tags requests with X-Doppel-Client so the
// coordinator's per-client rate limiting applies per bench client, not per
// source host.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatalf("doppelbench: %v", err)
	}
	rep := runBench(ctx, cfg)
	rep.write(os.Stdout)
	if rep.Completed == 0 {
		os.Exit(1)
	}
}

// config is one bench run, fully resolved from flags.
type config struct {
	Target      string
	Mode        string // "run" or "sweep"
	Duration    time.Duration
	Concurrency int
	RPS         float64 // total request pacing across all clients (0 = unpaced)
	Workloads   []string
	Schemes     []string
	AP          string // "both", "on", "off"
	Scale       string
	Client      string // X-Doppel-Client prefix; each goroutine appends -N
	Seed        int64
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("doppelbench", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.Target, "target", "http://127.0.0.1:8080", "doppeld base URL")
	fs.StringVar(&cfg.Mode, "mode", "run", `request mode: "run" (single cells) or "sweep" (whole matrices)`)
	fs.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to generate load")
	fs.IntVar(&cfg.Concurrency, "concurrency", 4, "concurrent logical clients")
	fs.Float64Var(&cfg.RPS, "rps", 0, "total request rate across clients (0 = as fast as possible)")
	workloads := fs.String("workloads", "stream,pointer_chase,stencil", "comma-separated workload mix")
	schemes := fs.String("schemes", "unsafe,nda-p,stt,dom", "comma-separated scheme mix")
	fs.StringVar(&cfg.AP, "ap", "both", `address prediction: "both", "on" or "off"`)
	fs.StringVar(&cfg.Scale, "scale", "test", `workload scale: "test" or "full"`)
	fs.StringVar(&cfg.Client, "client", "doppelbench", "X-Doppel-Client prefix (per-goroutine suffix added)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "mix-selection seed (same seed, same request sequence)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg.Workloads = splitList(*workloads)
	cfg.Schemes = splitList(*schemes)
	if cfg.Mode != "run" && cfg.Mode != "sweep" {
		return config{}, fmt.Errorf("unknown -mode %q (want \"run\" or \"sweep\")", cfg.Mode)
	}
	if cfg.Concurrency < 1 {
		return config{}, fmt.Errorf("-concurrency must be at least 1")
	}
	if len(cfg.Workloads) == 0 || len(cfg.Schemes) == 0 {
		return config{}, fmt.Errorf("-workloads and -schemes must be non-empty")
	}
	switch cfg.AP {
	case "both", "on", "off":
	default:
		return config{}, fmt.Errorf(`unknown -ap %q (want "both", "on" or "off")`, cfg.AP)
	}
	return cfg, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
