package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"doppelganger/api"
)

// report is what one bench run produces. All counters are totals across
// clients; latencies cover completed (HTTP 200) requests only.
type report struct {
	Mode      string
	Duration  time.Duration
	Clients   int
	Completed int
	Limited   int // 429 responses
	Failed    int // transport errors and non-200/429 statuses
	Statuses  map[int]int
	Sources   map[string]int // result tier per 200 (run mode)
	Latencies []time.Duration
	// RetryAfterMax is the largest Retry-After the target asked for.
	RetryAfterMax time.Duration
}

// runBench drives the configured load until the duration elapses or ctx is
// cancelled, whichever comes first.
func runBench(ctx context.Context, cfg config) *report {
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Pacing: one shared interval ticker approximates a total request rate
	// across all clients; each client takes ticks from the channel.
	var pace <-chan time.Time
	if cfg.RPS > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.RPS))
		defer t.Stop()
		pace = t.C
	}

	rep := &report{
		Mode:     cfg.Mode,
		Clients:  cfg.Concurrency,
		Statuses: make(map[int]int),
		Sources:  make(map[string]int),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-client derived seed: deterministic overall, distinct per
			// client so the mixes interleave rather than march in lockstep.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			client := &http.Client{}
			name := fmt.Sprintf("%s-%d", cfg.Client, i)
			for ctx.Err() == nil {
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				}
				lat, status, source, retryAfter, err := fire(ctx, client, cfg, rng, name)
				mu.Lock()
				switch {
				case err != nil:
					if ctx.Err() == nil {
						rep.Failed++
					}
				case status == http.StatusOK:
					rep.Completed++
					rep.Statuses[status]++
					rep.Latencies = append(rep.Latencies, lat)
					if source != "" {
						rep.Sources[source]++
					}
				case status == http.StatusTooManyRequests:
					rep.Limited++
					rep.Statuses[status]++
					if retryAfter > rep.RetryAfterMax {
						rep.RetryAfterMax = retryAfter
					}
				default:
					rep.Failed++
					rep.Statuses[status]++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	rep.Duration = time.Since(start)
	return rep
}

// fire issues one request per the configured mode and mix.
func fire(ctx context.Context, client *http.Client, cfg config, rng *rand.Rand, name string) (lat time.Duration, status int, source string, retryAfter time.Duration, err error) {
	var path string
	var body any
	if cfg.Mode == "sweep" {
		path = "/v1/sweep"
		body = api.SweepRequest{
			Workloads: cfg.Workloads,
			Schemes:   cfg.Schemes,
			AP:        cfg.AP,
			Scale:     cfg.Scale,
		}
	} else {
		path = "/v1/run"
		ap := rng.Intn(2) == 1
		if cfg.AP == "on" {
			ap = true
		} else if cfg.AP == "off" {
			ap = false
		}
		body = api.RunRequest{
			Workload: cfg.Workloads[rng.Intn(len(cfg.Workloads))],
			Scheme:   cfg.Schemes[rng.Intn(len(cfg.Schemes))],
			AP:       ap,
			Scale:    cfg.Scale,
		}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, 0, "", 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+path, bytes.NewReader(raw))
	if err != nil {
		return 0, 0, "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Doppel-Client", name)
	begin := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out struct {
			Source string `json:"source"`
		}
		// Drain fully so the connection is reused; source is present when
		// the target is a coordinator, absent from single-node doppeld.
		dec := json.NewDecoder(resp.Body)
		dec.Decode(&out)
		io.Copy(io.Discard, resp.Body)
		source = out.Source
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	lat = time.Since(begin)
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return lat, resp.StatusCode, source, retryAfter, nil
}

// percentile returns the p-th percentile (0-100) of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// write renders the human report: totals, percentiles, tier sources, and a
// log-bucketed ASCII latency histogram.
func (r *report) write(w io.Writer) {
	fmt.Fprintf(w, "doppelbench: mode=%s clients=%d duration=%v\n", r.Mode, r.Clients, r.Duration.Round(time.Millisecond))
	total := r.Completed + r.Limited + r.Failed
	rate := float64(r.Completed) / r.Duration.Seconds()
	fmt.Fprintf(w, "requests: %d total, %d ok (%.1f/s), %d rate-limited, %d failed\n",
		total, r.Completed, rate, r.Limited, r.Failed)
	if len(r.Statuses) > 0 {
		codes := make([]int, 0, len(r.Statuses))
		for c := range r.Statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		fmt.Fprintf(w, "status:  ")
		for _, c := range codes {
			fmt.Fprintf(w, " %d=%d", c, r.Statuses[c])
		}
		fmt.Fprintln(w)
	}
	if r.RetryAfterMax > 0 {
		fmt.Fprintf(w, "max Retry-After: %v\n", r.RetryAfterMax)
	}
	if len(r.Sources) > 0 {
		fmt.Fprintf(w, "sources: ")
		for _, s := range []string{"memory", "store", "computed"} {
			if n := r.Sources[s]; n > 0 {
				fmt.Fprintf(w, " %s=%d", s, n)
			}
		}
		fmt.Fprintln(w)
	}
	if len(r.Latencies) == 0 {
		fmt.Fprintln(w, "no completed requests; no latency distribution")
		return
	}
	sorted := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Fprintf(w, "latency: p50=%v p90=%v p99=%v max=%v\n",
		percentile(sorted, 50).Round(time.Microsecond),
		percentile(sorted, 90).Round(time.Microsecond),
		percentile(sorted, 99).Round(time.Microsecond),
		sorted[len(sorted)-1].Round(time.Microsecond))
	fmt.Fprint(w, histogram(sorted))
}

// histogram renders latencies into power-of-two millisecond buckets with
// proportional bars, mirroring the coordinator's sweep-latency families.
func histogram(sorted []time.Duration) string {
	buckets := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 5 * time.Second,
	}
	counts := make([]int, len(buckets)+1)
	for _, lat := range sorted {
		placed := false
		for i, b := range buckets {
			if lat <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(buckets)]++
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b bytes.Buffer
	for i, c := range counts {
		if c == 0 {
			continue
		}
		label := "   >5s"
		if i < len(buckets) {
			label = fmt.Sprintf("%6s", "≤"+buckets[i].String())
		}
		bar := strings.Repeat("#", max(1, 50*c/maxCount))
		fmt.Fprintf(&b, "  %s  %-50s %d\n", label, bar, c)
	}
	return b.String()
}
