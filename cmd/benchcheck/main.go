// Command benchcheck is a dependency-free benchmark-regression gate in the
// spirit of benchstat: it parses `go test -bench` text, reduces repeated
// counts to per-benchmark medians, and either writes a JSON baseline or
// compares against one, failing when the geometric-mean slowdown across the
// gated benchmarks exceeds a threshold.
//
// Write a baseline (commit the output as BENCH_baseline.json):
//
//	go test -run '^$' -bench . -count=6 ./sim | benchcheck -write BENCH_baseline.json
//
// Gate a change against it:
//
//	go test -run '^$' -bench . -count=6 ./sim | benchcheck -baseline BENCH_baseline.json
//
// Medians of several counts damp scheduler noise; the geomean (rather than
// any single benchmark) damps it further. Benchmarks present on only one
// side are reported but do not affect the verdict.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference: median ns/op per benchmark, with the
// machine context that produced it recorded for humans reading diffs.
type Baseline struct {
	// Note is free-form provenance (host CPU line from the bench output).
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to the
	// median ns/op across counts.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkRunUntraced-8   	       9	 127850275 ns/op	11328728 B/op	     246 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	var (
		write     = flag.String("write", "", "write a baseline JSON to this path instead of comparing")
		baseline  = flag.String("baseline", "", "baseline JSON to compare the piped bench output against")
		threshold = flag.Float64("threshold", 1.10, "fail when geomean(new/old) exceeds this ratio")
		filter    = flag.String("filter", "", "regexp restricting which benchmarks participate in the gate")
	)
	flag.Parse()
	if (*write == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -write or -baseline is required")
		os.Exit(2)
	}

	samples, note, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin (pipe `go test -bench` output)")
		os.Exit(2)
	}
	medians := make(map[string]float64, len(samples))
	for name, s := range samples {
		medians[name] = median(s)
	}

	if *write != "" {
		b := Baseline{Note: note, NsPerOp: medians}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: wrote %d benchmark medians to %s\n", len(medians), *write)
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	var keep *regexp.Regexp
	if *filter != "" {
		keep, err = regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	names := make([]string, 0, len(medians))
	for name := range medians {
		names = append(names, name)
	}
	sort.Strings(names)

	var logSum float64
	var gated int
	for _, name := range names {
		now := medians[name]
		old, ok := base.NsPerOp[name]
		if !ok {
			fmt.Printf("%-40s %12.0f ns/op  (no baseline, ignored)\n", name, now)
			continue
		}
		ratio := now / old
		mark := ""
		if keep == nil || keep.MatchString(name) {
			logSum += math.Log(ratio)
			gated++
		} else {
			mark = "  (not gated)"
		}
		fmt.Printf("%-40s %12.0f -> %12.0f ns/op  %+6.1f%%%s\n",
			name, old, now, (ratio-1)*100, mark)
	}
	for name := range base.NsPerOp {
		if _, ok := medians[name]; !ok {
			fmt.Printf("%-40s missing from this run (ignored)\n", name)
		}
	}
	if gated == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmarks in common with the baseline")
		os.Exit(2)
	}
	geomean := math.Exp(logSum / float64(gated))
	fmt.Printf("geomean over %d gated benchmark(s): %+.1f%% (threshold %+.1f%%)\n",
		gated, (geomean-1)*100, (*threshold-1)*100)
	if geomean > *threshold {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: geomean slowdown %.3f exceeds %.3f\n", geomean, *threshold)
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// parse collects ns/op samples per benchmark from `go test -bench` text and
// returns the cpu: line (if any) as provenance.
func parse(f *os.File) (map[string][]float64, string, error) {
	samples := make(map[string][]float64)
	var note string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu:") {
			note = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	return samples, note, sc.Err()
}

// median of the samples (mean of the middle two for even counts).
func median(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
